package lvf2

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"lvf2/internal/faultinject"
	"lvf2/internal/liberty"
	"lvf2/internal/mc"
	"lvf2/internal/spice"
)

// End-to-end fault tolerance: every rung of the degradation ladder fires
// on genuinely faulty inputs, and the pipeline still emits a valid,
// lint-clean Liberty file whose fallback provenance survives a round trip.

// expClusters draws two exponential clusters — per-cluster skewness ≈ 2,
// far beyond what a skew-normal can represent, so the LVF²/LVF rungs rail
// their skew clamps and validation degrades the fit to Norm².
func expClusters(n int, seed uint64) []float64 {
	rng := mc.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		c := 1.0
		if i%2 == 1 {
			c = 2.0
		}
		xs[i] = c + 0.05*(-math.Log(rng.Float64()+1e-300))
	}
	return xs
}

func TestPipelineEveryRungToLintCleanLibrary(t *testing.T) {
	cases := []struct {
		name       string
		xs         []float64
		want       ModelKind
		degenerate bool
	}{
		{"nan_contaminated_bimodal", faultinject.ContaminateNaN(bimodalSamples(4000, 21), 0.01, 5), KindLVF2, false},
		{"railed_skew_clusters", expClusters(4000, 11), KindNorm2, false},
		{"tiny_sample", []float64{1.0, 1.1, 1.3, 1.02, 1.2}, KindLVF, false},
		{"two_samples", []float64{1.0, 1.2}, KindGaussian, false},
		{"identical_samples", faultinject.Identical(10, 3), KindGaussian, true},
	}

	idx1 := make([]float64, len(cases))
	idx2 := []float64{0.002}
	models := make([][]Model, len(cases))
	nominal := make([][]float64, len(cases))
	var notes []string
	usedRungs := map[ModelKind]bool{}
	sawDegenerate := false

	for i, tc := range cases {
		m, rep, err := FitRobust(tc.xs, RobustOptions{})
		if err != nil {
			t.Fatalf("%s: FitRobust: %v", tc.name, err)
		}
		if rep.Used != tc.want {
			t.Errorf("%s: rung %v, want %v (report: %s)", tc.name, rep.Used, tc.want, rep)
		}
		if rep.Degenerate != tc.degenerate {
			t.Errorf("%s: Degenerate = %v, want %v", tc.name, rep.Degenerate, tc.degenerate)
		}
		if i == 0 && rep.Dropped == 0 {
			t.Errorf("%s: contaminated set must report dropped samples", tc.name)
		}
		usedRungs[rep.Used] = true
		sawDegenerate = sawDegenerate || rep.Degenerate
		idx1[i] = 0.01 * float64(i+1)
		models[i] = []Model{m}
		nominal[i] = []float64{m.Mean()}
		if rep.Fallback || rep.Degenerate || rep.Dropped > 0 {
			notes = append(notes, fmt.Sprintf("(%d,0): %s", i, rep))
		}
	}
	for _, k := range []ModelKind{KindLVF2, KindNorm2, KindLVF, KindGaussian} {
		if !usedRungs[k] {
			t.Fatalf("rung %v never fired", k)
		}
	}
	if !sawDegenerate {
		t.Fatal("degenerate salvage never fired")
	}

	// Emit all five rungs' models into one Liberty table and lint it.
	tt := TimingTablesFromModels("cell_rise", idx1, idx2, nominal, models)
	tt.FallbackNote = strings.Join(notes, "; ")
	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{
		Name: "robust_pipeline", Voltage: 0.8, TempC: 25,
	}, "tpl_5x1", idx1, idx2)
	out := liberty.AddCell(lib, "INV", []string{"A"}, 0.0009, "ZN", "!A")
	timing := liberty.AddTiming(out, "A", "positive_unate")
	tt.AppendTo(timing, "tpl_5x1", true)

	var buf bytes.Buffer
	if err := liberty.WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLiberty(buf.String())
	if err != nil {
		t.Fatalf("emitted library must parse: %v", err)
	}
	if issues := LintLibrary(parsed); LintHasErrors(issues) {
		t.Fatalf("emitted library must lint clean: %v", issues)
	}

	// Fallback provenance and every model survive the round trip.
	cellG, _ := parsed.Group("cell")
	var timingG *LibertyGroup
	for _, p := range cellG.GroupsNamed("pin") {
		if tg, ok := p.Group("timing"); ok {
			timingG = tg
		}
	}
	if timingG == nil {
		t.Fatal("no timing group in parsed library")
	}
	tt2, err := ExtractTimingTables(timingG, "cell_rise")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tt2.FallbackNote, "Norm2") || !strings.Contains(tt2.FallbackNote, "degenerate salvage") {
		t.Errorf("fallback note lost in round trip: %q", tt2.FallbackNote)
	}
	for i := range cases {
		m, err := tt2.ModelAt(i, 0)
		if err != nil {
			t.Fatalf("ModelAt(%d,0): %v", i, err)
		}
		if mean := m.Dist().Mean(); math.IsNaN(mean) || math.IsInf(mean, 0) {
			t.Errorf("point %d: non-finite mean after round trip", i)
		}
	}
}

func TestPipelineFaultyCharacterisationToLintCleanLibrary(t *testing.T) {
	inv, ok := CellByName("INV")
	if !ok {
		t.Fatal("INV missing")
	}
	victim := inv.Arcs()[1].Label
	panicky := faultinject.PanicOnArcs(victim)
	corrupt := faultinject.CorruptingEval(0.05, 9)
	cfg := CharConfig{
		Samples: 300, GridStride: 7, Workers: 4, Seed: 3,
		Eval: func(arc CellArc, corner Corner, rng *mc.RNG, n int, slewNS, loadPF float64, s spice.Sampler) spice.MCResult {
			if arc.Label == victim {
				return panicky(arc, corner, rng, n, slewNS, loadPF, s)
			}
			return corrupt(arc, corner, rng, n, slewNS, loadPF, s)
		},
	}
	results, err := CharacterizeLibrary(context.Background(), cfg, []CellType{inv})
	if err != nil {
		t.Fatal(err)
	}

	var healthy *ArcResult
	faulty := 0
	for i := range results {
		r := &results[i]
		if r.Arc.Label == victim {
			faulty++
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("victim arc error %v, want PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("%s: unexpected error %v", r.Arc.Label, r.Err)
		}
		if healthy == nil {
			healthy = r
		}
	}
	if faulty != 1 || healthy == nil {
		t.Fatalf("faulty=%d healthy=%v", faulty, healthy != nil)
	}

	// Robust-fit the surviving arc's NaN-flooded distributions and emit.
	grid := DefaultGrid()
	idx1 := []float64{grid.Slews[0], grid.Slews[7]}
	idx2 := []float64{grid.Loads[0], grid.Loads[7]}
	mk := func() ([][]float64, [][]Model) {
		return [][]float64{make([]float64, 2), make([]float64, 2)},
			[][]Model{make([]Model, 2), make([]Model, 2)}
	}
	nomD, modD := mk()
	nomT, modT := mk()
	var notes []string
	dropped := 0
	for _, d := range healthy.Dists {
		i, j := d.SlewIdx/7, d.LoadIdx/7
		m, rep, err := FitRobust(d.Samples, RobustOptions{})
		if err != nil {
			t.Fatalf("%s (%d,%d): %v", d.Arc.Label, i, j, err)
		}
		dropped += rep.Dropped
		if rep.Fallback || rep.Degenerate || rep.Dropped > 0 {
			notes = append(notes, fmt.Sprintf("(%d,%d): %s", i, j, rep))
		}
		if d.Kind == DelayKind {
			nomD[i][j], modD[i][j] = d.NomDelay, m
		} else {
			nomT[i][j], modT[i][j] = d.NomDelay, m
		}
	}
	if dropped == 0 {
		t.Error("corrupting evaluator must force dropped samples")
	}

	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{
		Name: "faulty_char", Voltage: 0.8, TempC: 25,
	}, "tpl_2x2", idx1, idx2)
	out := liberty.AddCell(lib, "INV", []string{"A"}, inv.Base.CapIn, "ZN", "!A")
	timing := liberty.AddTiming(out, "A", "positive_unate")
	ttD := TimingTablesFromModels("cell_rise", idx1, idx2, nomD, modD)
	ttD.FallbackNote = strings.Join(notes, "; ")
	ttD.AppendTo(timing, "tpl_2x2", true)
	TimingTablesFromModels("rise_transition", idx1, idx2, nomT, modT).
		AppendTo(timing, "tpl_2x2", true)

	var buf bytes.Buffer
	if err := liberty.WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLiberty(buf.String())
	if err != nil {
		t.Fatalf("emitted library must parse: %v", err)
	}
	if issues := LintLibrary(parsed); LintHasErrors(issues) {
		t.Fatalf("emitted library must lint clean: %v", issues)
	}
}
