package lvf2

import (
	"context"

	"lvf2/internal/cells"
	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/pool"
)

// Fault-tolerant facade: robust fitting with graceful model degradation
// (LVF² → Norm² → LVF → Gaussian) and hardened parallel characterisation
// with panic confinement, cancellation and per-arc deadlines.

// FitReport is the provenance record of a robust fit: the requested model,
// the rung that actually produced the accepted fit, and every attempt on
// the way down the ladder.
type FitReport = fit.FitReport

// FitAttempt records one try of the robust ladder.
type FitAttempt = fit.Attempt

// RobustOptions tunes FitRobust: base fitter options plus the number of
// perturbed restarts per rung and the restart seed.
type RobustOptions = fit.RobustOptions

// KindGaussian is the terminal rung of the degradation ladder — a plain
// Gaussian, the model every sample set with two distinct finite values
// supports.
const KindGaussian = fit.ModelGaussian

// Typed fitting failures, matchable with errors.Is through wrapped and
// joined errors.
var (
	ErrNotEnoughData   = fit.ErrNotEnoughData
	ErrEmptyData       = fit.ErrEmptyData
	ErrNonFinite       = fit.ErrNonFinite
	ErrDegenerateData  = fit.ErrDegenerateData
	ErrInvalidFit      = fit.ErrInvalidFit
	ErrNonMonotoneCDF  = fit.ErrNonMonotoneCDF
	ErrNonConvergence  = fit.ErrNonConvergence
	ErrAllModelsFailed = fit.ErrAllModelsFailed
)

// FitRobust fits the LVF² model through the full retry/degradation
// ladder: failed fits are retried from perturbed deterministic starts
// with an escalating iteration budget, then degraded one model rung at a
// time, and a sample set too degenerate even for the Gaussian fitter is
// salvaged as a floored moment-matched Gaussian. The report records which
// rung produced the returned model; the model never carries NaN
// parameters.
func FitRobust(samples []float64, o RobustOptions) (Model, FitReport, error) {
	return core.FitModelRobust(samples, o)
}

// FitKindRobust is FitRobust starting from an arbitrary rung.
func FitKindRobust(kind ModelKind, samples []float64, o RobustOptions) (Model, FitReport, error) {
	return core.FitKindRobust(kind, samples, o)
}

// ArcResult is one arc's outcome from CharacterizeLibrary: its
// distributions, or the typed error (including recovered evaluator
// panics) that prevented them.
type ArcResult = cells.ArcResult

// EvalFunc is the electrical-evaluation seam of the characterisation
// pipeline; replace it to inject faults or alternative simulators.
type EvalFunc = cells.EvalFunc

// PanicError is a recovered worker panic, carrying the task label, the
// panic value and the stack trace.
type PanicError = pool.PanicError

// CharacterizeLibrary characterises every arc of the given cell types in
// parallel (cfg.Workers, cfg.ArcTimeout). A panicking or failing arc is
// confined to its ArcResult; cancelling the context aborts the run with
// ctx.Err().
func CharacterizeLibrary(ctx context.Context, cfg CharConfig, types []CellType) ([]ArcResult, error) {
	return cells.CharacterizeLibrary(ctx, cfg, types)
}

// CharacterizeArcCtx is CharacterizeArc with cooperative cancellation and
// deadline support.
func CharacterizeArcCtx(ctx context.Context, cfg CharConfig, arc CellArc) ([]TimingDistribution, error) {
	return cells.CharacterizeArcCtx(ctx, cfg, arc)
}
