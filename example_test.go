package lvf2_test

import (
	"fmt"
	"math"
	"math/rand"

	"lvf2"
)

// bimodal draws a deterministic two-regime delay population (ns).
func bimodal(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		if rng.Float64() < 0.7 {
			xs[i] = 0.100 + 0.004*rng.NormFloat64()
		} else {
			xs[i] = 0.130 + 0.004*rng.NormFloat64()
		}
	}
	return xs
}

// ExampleFit fits the LVF² model to a bimodal Monte-Carlo population and
// prints the mixture weight.
func ExampleFit() {
	samples := bimodal(20000)
	model, err := lvf2.Fit(samples, lvf2.FitOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("two components: %v\n", !model.IsLVF())
	fmt.Printf("λ ≈ %.1f\n", model.Lambda)
	// Output:
	// two components: true
	// λ ≈ 0.3
}

// ExampleFromLVF shows the eq. (10) backward-compatibility rule: a plain
// LVF moments vector is a valid LVF² model with λ = 0.
func ExampleFromLVF() {
	m := lvf2.FromLVF(lvf2.Theta{Mean: 0.1, Sigma: 0.005, Skew: 0.3})
	fmt.Println(m.IsLVF(), m.Lambda)
	// Output: true 0
}

// ExampleSigmaBoundaries bins a fitted distribution into the paper's
// eight speed bins.
func ExampleSigmaBoundaries() {
	m := lvf2.FromLVF(lvf2.Theta{Mean: 1.0, Sigma: 0.1})
	probs := lvf2.BinProbabilities(m.Dist(), lvf2.SigmaBoundaries(1.0, 0.1))
	fmt.Printf("bins: %d, innermost ≈ %.3f\n", len(probs), probs[3])
	// Output: bins: 8, innermost ≈ 0.341
}

// ExampleErrorReduction computes the eq. (12) normalisation used
// throughout the paper's tables.
func ExampleErrorReduction() {
	fmt.Printf("%.0fx\n", lvf2.ErrorReduction(0.08, 0.01))
	// Output: 8x
}

// ExampleParseLiberty parses a Liberty fragment and reads a timing model
// back out of it.
func ExampleParseLiberty() {
	lib, err := lvf2.ParseLiberty(`library (demo) {
	  cell (INV) {
	    pin (ZN) {
	      direction : output;
	      timing () {
	        related_pin : "A";
	        cell_rise (tpl) { index_1("0.01"); index_2("0.002"); values ("0.10"); }
	        ocv_std_dev_cell_rise (tpl) { values ("0.008"); }
	      }
	    }
	  }
	}`)
	if err != nil {
		panic(err)
	}
	cell, _ := lib.Group("cell")
	pin, _ := cell.Group("pin")
	timing, _ := pin.Group("timing")
	tt, err := lvf2.ExtractTimingTables(timing, "cell_rise")
	if err != nil {
		panic(err)
	}
	m, _ := tt.ModelAt(0, 0)
	fmt.Printf("λ=%v mean=%.2f σ=%.3f\n", m.Lambda, m.Theta1.Mean, m.Theta1.Sigma)
	// Output: λ=0 mean=0.10 σ=0.008
}

// ExampleNewTimingVar demonstrates the SSTA sum operator: variances of
// independent stages add exactly.
func ExampleNewTimingVar() {
	v, err := lvf2.NewTimingVar(lvf2.KindLVF2, bimodal(8000), lvf2.FitOptions{})
	if err != nil {
		panic(err)
	}
	sum, err := v.Sum(v)
	if err != nil {
		panic(err)
	}
	ratio := sum.Dist().Variance() / v.Dist().Variance()
	fmt.Printf("variance ratio after self-sum: %.1f\n", ratio)
	// Output: variance ratio after self-sum: 2.0
}

// ExampleBerryEsseenBound evaluates Theorem 1's O(1/√n) convergence bound.
func ExampleBerryEsseenBound() {
	rho := 1.6
	fmt.Printf("n=4: %.3f  n=16: %.3f\n",
		lvf2.BerryEsseenBound(rho, 4), lvf2.BerryEsseenBound(rho, 16))
	// Output: n=4: 0.380  n=16: 0.190
}

// ExampleRunSTA runs netlist-level statistical timing against a
// hand-written constant-table library.
func ExampleRunSTA() {
	lib, err := lvf2.ParseLiberty(`library (demo) {
	  cell (INV) {
	    pin (A) { direction : input; capacitance : 0.001; }
	    pin (ZN) {
	      direction : output;
	      timing () {
	        related_pin : "A";
	        cell_rise (tpl) {
	          index_1("0.001, 1"); index_2("0.0001, 1");
	          values ("0.1, 0.1", "0.1, 0.1");
	        }
	        ocv_std_dev_cell_rise (tpl) {
	          index_1("0.001, 1"); index_2("0.0001, 1");
	          values ("0.01, 0.01", "0.01, 0.01");
	        }
	      }
	    }
	  }
	}`)
	if err != nil {
		panic(err)
	}
	sem, err := lvf2.LoadSemanticLibrary(lib)
	if err != nil {
		panic(err)
	}
	mod := lvf2.ChainNetlist("c", "INV", 4)
	res, err := lvf2.RunSTA(sem, mod, lvf2.STAOptions{})
	if err != nil {
		panic(err)
	}
	a := res.Critical()
	d := a.Vars[lvf2.KindLVF].Dist()
	fmt.Printf("nominal %.1f ns, σ %.2f ns\n", a.Nominal, math.Sqrt(d.Variance()))
	// Output: nominal 0.4 ns, σ 0.02 ns
}
