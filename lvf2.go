// Package lvf2 is a statistical timing library implementing LVF² — the
// Gaussian-mixture extension of the Liberty Variation Format proposed in
// Zhou et al., "LVF²: A Statistical Timing Model based on Gaussian Mixture
// for Yield Estimation and Speed Binning" (DAC 2024) — together with
// everything needed to use and evaluate it:
//
//   - the LVF² model itself (a weighted mixture of two skew-normals,
//     fitted by EM with K-means + method-of-moments initialisation) and
//     the three comparator models of the paper (LVF, Norm², LESN);
//   - speed binning and yield estimation (bin probabilities over μ±kσ
//     boundaries, 3σ-yield, CDF RMSE, error-reduction scoring);
//   - a Liberty (.lib) parser/writer with the classic LVF OCV attributes
//     and the seven backward-compatible LVF² attributes of the paper;
//   - block-based SSTA with per-model sum/max algebra and the CLT
//     convergence bound that governs when LVF² stops paying off;
//   - a synthetic 25-type standard-cell library and variation-aware
//     electrical model standing in for the paper's TSMC 22nm + SPICE MC
//     characterisation flow (see DESIGN.md for the substitution rationale).
//
// This root package is the stable facade: it re-exports the user-level
// API from the internal packages. See the examples/ directory for
// runnable walkthroughs and cmd/ for the command-line tools.
package lvf2

import (
	"lvf2/internal/binning"
	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// Model is the LVF² statistical timing model of eq. (4): a mixture of two
// weighted skew-normal distributions parameterised by statistical-moment
// vectors. λ = 0 degenerates to the industry-standard LVF (eq. 10).
type Model = core.Model

// Theta is an LVF moments vector θ = (μ, σ, γ).
type Theta = core.Theta

// FitOptions tunes the iterative fitters.
type FitOptions = fit.Options

// Dist is a univariate continuous distribution (PDF/CDF/moments).
type Dist = stats.Dist

// ModelKind selects one of the four timing models of the paper's
// comparison.
type ModelKind = fit.Model

// The four timing models.
const (
	KindLVF   = fit.ModelLVF   // single skew-normal (industry baseline)
	KindNorm2 = fit.ModelNorm2 // two-component Gaussian mixture
	KindLESN  = fit.ModelLESN  // log-extended-skew-normal
	KindLVF2  = fit.ModelLVF2  // the paper's contribution
)

// Fit fits the LVF² model to delay or transition samples using the EM
// algorithm of the paper's §3.2.
func Fit(samples []float64, o FitOptions) (Model, error) {
	return core.FitModel(samples, o)
}

// FitLVF fits the single-skew-normal industry baseline by the method of
// moments.
func FitLVF(samples []float64) (Model, error) {
	return core.FitLVFModel(samples)
}

// FitKind fits any of the four models and returns its distribution.
func FitKind(kind ModelKind, samples []float64, o FitOptions) (Dist, error) {
	r, err := fit.Fit(kind, samples, o)
	if err != nil {
		return nil, err
	}
	return r.Dist, nil
}

// FromLVF lifts a classic LVF moments vector into LVF² (λ = 0).
func FromLVF(t Theta) Model { return core.FromLVF(t) }

// ---------------------------------------------------------------- binning

// Boundaries is a sorted list of speed-bin thresholds.
type Boundaries = binning.Boundaries

// Metrics bundles the paper's three evaluation metrics.
type Metrics = binning.Metrics

// SigmaBoundaries returns the paper's eight-bin boundaries
// μ±3σ, μ±2σ, μ±σ, μ.
func SigmaBoundaries(mean, sd float64) Boundaries {
	return binning.SigmaBoundaries(mean, sd)
}

// BinProbabilities evaluates eq. (1) for a fitted distribution.
func BinProbabilities(d Dist, b Boundaries) []float64 {
	return binning.DistProbabilities(d, b)
}

// Yield3Sigma returns P(t ≤ μ+3σ) under the model CDF, with μ, σ taken
// from the golden distribution.
func Yield3Sigma(d Dist, goldenMean, goldenSd float64) float64 {
	return binning.Yield3Sigma(d.CDF, goldenMean, goldenSd)
}

// EvaluateAgainst scores a model distribution against golden samples,
// returning binning error, 3σ-yield error and CDF RMSE.
func EvaluateAgainst(model Dist, goldenSamples []float64) Metrics {
	return binning.Evaluate(model, stats.NewEmpirical(goldenSamples))
}

// ErrorReduction is the eq. (12) normalisation:
// |baselineError| / |resultError|.
func ErrorReduction(baselineErr, resultErr float64) float64 {
	return binning.ErrorReduction(baselineErr, resultErr)
}

// ExpectedRevenue prices a binned distribution (Fig. 2's economics):
// Σ P(binᵢ)·priceᵢ.
func ExpectedRevenue(probs, prices []float64) float64 {
	return binning.ExpectedRevenue(probs, prices)
}
