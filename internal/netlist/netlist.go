// Package netlist implements a structural gate-level Verilog subset —
// modules, scalar ports, wires and named-connection cell instances — which
// is all a combinational SSTA flow needs. It is the input format of the
// internal/sta engine and of cmd/sta.
//
// Supported grammar (comments // and /* */ are skipped):
//
//	module NAME (port, port, ...);
//	  input  a, b;
//	  output y;
//	  wire   n1, n2;
//	  CELLTYPE instName (.PIN(net), .PIN(net), ...);
//	endmodule
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// PortDir is a module port direction.
type PortDir int

// Port directions.
const (
	Input PortDir = iota
	Output
)

// String names the direction as in Verilog.
func (d PortDir) String() string {
	if d == Input {
		return "input"
	}
	return "output"
}

// Port is a scalar module port.
type Port struct {
	Name string
	Dir  PortDir
}

// Instance is one cell instantiation with named pin connections.
type Instance struct {
	Name string
	Cell string
	// Conns maps cell pin names to net names.
	Conns map[string]string
	// PinOrder preserves the connection order for writing.
	PinOrder []string
}

// Module is a flat structural module.
type Module struct {
	Name      string
	Ports     []Port
	Wires     []string
	Instances []Instance
}

// PortDirOf returns the direction of a port, or ok=false for internal
// nets.
func (m *Module) PortDirOf(net string) (PortDir, bool) {
	for _, p := range m.Ports {
		if p.Name == net {
			return p.Dir, true
		}
	}
	return 0, false
}

// Inputs returns the module's input port names.
func (m *Module) Inputs() []string {
	var out []string
	for _, p := range m.Ports {
		if p.Dir == Input {
			out = append(out, p.Name)
		}
	}
	return out
}

// Outputs returns the module's output port names.
func (m *Module) Outputs() []string {
	var out []string
	for _, p := range m.Ports {
		if p.Dir == Output {
			out = append(out, p.Name)
		}
	}
	return out
}

// Nets returns every net name referenced by the module, sorted.
func (m *Module) Nets() []string {
	set := map[string]bool{}
	for _, p := range m.Ports {
		set[p.Name] = true
	}
	for _, w := range m.Wires {
		set[w] = true
	}
	for _, inst := range m.Instances {
		for _, n := range inst.Conns {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural sanity: unique instance names, connections
// referencing declared nets, and no port both input and output.
func (m *Module) Validate() error {
	seen := map[string]bool{}
	for _, p := range m.Ports {
		if seen[p.Name] {
			return fmt.Errorf("netlist: duplicate port %q", p.Name)
		}
		seen[p.Name] = true
	}
	declared := map[string]bool{}
	for _, p := range m.Ports {
		declared[p.Name] = true
	}
	for _, w := range m.Wires {
		if declared[w] {
			return fmt.Errorf("netlist: wire %q redeclares a port", w)
		}
		declared[w] = true
	}
	instNames := map[string]bool{}
	for _, inst := range m.Instances {
		if instNames[inst.Name] {
			return fmt.Errorf("netlist: duplicate instance %q", inst.Name)
		}
		instNames[inst.Name] = true
		for pin, net := range inst.Conns {
			if !declared[net] {
				return fmt.Errorf("netlist: instance %q pin %s connects to undeclared net %q",
					inst.Name, pin, net)
			}
		}
	}
	return nil
}

// String emits the module as Verilog.
func (m *Module) String() string {
	var b strings.Builder
	names := make([]string, len(m.Ports))
	for i, p := range m.Ports {
		names[i] = p.Name
	}
	fmt.Fprintf(&b, "module %s (%s);\n", m.Name, strings.Join(names, ", "))
	for _, p := range m.Ports {
		fmt.Fprintf(&b, "  %s %s;\n", p.Dir, p.Name)
	}
	if len(m.Wires) > 0 {
		fmt.Fprintf(&b, "  wire %s;\n", strings.Join(m.Wires, ", "))
	}
	for _, inst := range m.Instances {
		conns := make([]string, 0, len(inst.Conns))
		order := inst.PinOrder
		if len(order) == 0 {
			for pin := range inst.Conns {
				order = append(order, pin)
			}
			sort.Strings(order)
		}
		for _, pin := range order {
			conns = append(conns, fmt.Sprintf(".%s(%s)", pin, inst.Conns[pin]))
		}
		fmt.Fprintf(&b, "  %s %s (%s);\n", inst.Cell, inst.Name, strings.Join(conns, ", "))
	}
	b.WriteString("endmodule\n")
	return b.String()
}
