package netlist

import "fmt"

// Builders for the benchmark netlists used by the SSTA validation flow.

// Chain builds an n-stage single-input-cell chain (e.g. INV or BUFF):
// in -> u0 -> n0 -> u1 -> ... -> out.
func Chain(name, cellType string, n int) *Module {
	m := &Module{
		Name: name,
		Ports: []Port{
			{Name: "in", Dir: Input},
			{Name: "out", Dir: Output},
		},
	}
	prev := "in"
	for i := 0; i < n; i++ {
		net := "out"
		if i < n-1 {
			net = fmt.Sprintf("n%d", i)
			m.Wires = append(m.Wires, net)
		}
		m.Instances = append(m.Instances, Instance{
			Name:     fmt.Sprintf("u%d", i),
			Cell:     cellType,
			Conns:    map[string]string{"A": prev, "ZN": net},
			PinOrder: []string{"A", "ZN"},
		})
		prev = net
	}
	return m
}

// RippleCarryAdder builds the NAND2-decomposed carry chain of an n-bit
// ripple-carry adder (the circuit behind Fig. 5's first benchmark):
// per bit, g = NAND(aᵢ, bᵢ) and c' = NAND(g, NAND(p, c)). For timing
// purposes the propagate signal is modelled by the bit inputs themselves.
func RippleCarryAdder(bits int) *Module {
	m := &Module{Name: fmt.Sprintf("rca%d", bits)}
	m.Ports = append(m.Ports, Port{Name: "cin", Dir: Input})
	for i := 0; i < bits; i++ {
		m.Ports = append(m.Ports,
			Port{Name: fmt.Sprintf("a%d", i), Dir: Input},
			Port{Name: fmt.Sprintf("b%d", i), Dir: Input})
	}
	m.Ports = append(m.Ports, Port{Name: "cout", Dir: Output})

	carry := "cin"
	for i := 0; i < bits; i++ {
		g := fmt.Sprintf("g%d", i)
		t := fmt.Sprintf("t%d", i)
		next := "cout"
		if i < bits-1 {
			next = fmt.Sprintf("c%d", i+1)
			m.Wires = append(m.Wires, next)
		}
		m.Wires = append(m.Wires, g, t)
		m.Instances = append(m.Instances,
			Instance{
				Name: fmt.Sprintf("u_g%d", i), Cell: "NAND2",
				Conns:    map[string]string{"A": fmt.Sprintf("a%d", i), "B": fmt.Sprintf("b%d", i), "ZN": g},
				PinOrder: []string{"A", "B", "ZN"},
			},
			Instance{
				Name: fmt.Sprintf("u_t%d", i), Cell: "NAND2",
				Conns:    map[string]string{"A": fmt.Sprintf("b%d", i), "B": carry, "ZN": t},
				PinOrder: []string{"A", "B", "ZN"},
			},
			Instance{
				Name: fmt.Sprintf("u_c%d", i), Cell: "NAND2",
				Conns:    map[string]string{"A": g, "B": t, "ZN": next},
				PinOrder: []string{"A", "B", "ZN"},
			})
		carry = next
	}
	return m
}

// BufferTree builds a balanced binary buffer tree of the given depth
// (2^depth leaves), the netlist analogue of the H-tree benchmark.
func BufferTree(depth int) *Module {
	m := &Module{
		Name:  fmt.Sprintf("buftree%d", depth),
		Ports: []Port{{Name: "clk", Dir: Input}},
	}
	level := []string{"clk"}
	id := 0
	for d := 0; d < depth; d++ {
		var next []string
		for _, src := range level {
			for c := 0; c < 2; c++ {
				var net string
				if d == depth-1 {
					net = fmt.Sprintf("leaf%d", len(next))
					m.Ports = append(m.Ports, Port{Name: net, Dir: Output})
				} else {
					net = fmt.Sprintf("n%d", id)
					m.Wires = append(m.Wires, net)
				}
				m.Instances = append(m.Instances, Instance{
					Name:     fmt.Sprintf("buf%d", id),
					Cell:     "BUFF",
					Conns:    map[string]string{"A": src, "ZN": net},
					PinOrder: []string{"A", "ZN"},
				})
				id++
				next = append(next, net)
			}
		}
		level = next
	}
	return m
}
