package netlist

import "fmt"

// ParseError is a positional structural-Verilog syntax error, mirroring
// liberty.ParseError so both frontends fail the same way: callers
// errors.As for position instead of string-matching, and the fuzz
// harness asserts every malformed input lands here rather than in a
// panic. Line 0 marks errors without a usable position (empty input).
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("netlist: line %d: %s", e.Line, e.Msg)
}

// nperr builds a ParseError at a line.
func nperr(line int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
