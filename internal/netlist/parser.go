package netlist

import (
	"strings"
	"unicode"
)

// Parse reads one structural Verilog module.
func Parse(src string) (*Module, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &vparser{toks: toks}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, nperr(p.toks[p.pos].line, "trailing tokens after endmodule: %q", p.toks[p.pos].text)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

type vtoken struct {
	text string
	line int
}

func tokenize(src string) ([]vtoken, error) {
	var toks []vtoken
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, nperr(line, "unterminated comment")
			}
			i += 2
		case strings.ContainsRune("();,.", rune(c)):
			toks = append(toks, vtoken{string(c), line})
			i++
		case isVIdent(rune(c)):
			start := i
			for i < len(src) && isVIdent(rune(src[i])) {
				i++
			}
			toks = append(toks, vtoken{src[start:i], line})
		default:
			return nil, nperr(line, "unexpected character %q", c)
		}
	}
	return toks, nil
}

func isVIdent(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$' || r == '\\' || r == '[' || r == ']'
}

type vparser struct {
	toks []vtoken
	pos  int
}

func (p *vparser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *vparser) line() int {
	if p.pos >= len(p.toks) {
		if len(p.toks) > 0 {
			return p.toks[len(p.toks)-1].line
		}
		return 0
	}
	return p.toks[p.pos].line
}

func (p *vparser) next() (string, error) {
	if p.pos >= len(p.toks) {
		return "", nperr(p.line(), "unexpected end of input")
	}
	t := p.toks[p.pos].text
	p.pos++
	return t, nil
}

func (p *vparser) expect(want string) error {
	got, err := p.next()
	if err != nil {
		return err
	}
	if got != want {
		return nperr(p.line(), "expected %q, got %q", want, got)
	}
	return nil
}

// identList parses `a, b, c` terminated by `;` (consumed).
func (p *vparser) identList() ([]string, error) {
	var out []string
	for {
		id, err := p.next()
		if err != nil {
			return nil, err
		}
		if id == ";" || id == "," || id == "(" || id == ")" {
			return nil, nperr(p.line(), "expected identifier, got %q", id)
		}
		out = append(out, id)
		sep, err := p.next()
		if err != nil {
			return nil, err
		}
		if sep == ";" {
			return out, nil
		}
		if sep != "," {
			return nil, nperr(p.line(), "expected ',' or ';', got %q", sep)
		}
	}
}

func (p *vparser) parseModule() (*Module, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	// Header port list (directions resolved by the input/output decls).
	var header []string
	for p.peek() != ")" {
		id, err := p.next()
		if err != nil {
			return nil, err
		}
		if id == "," {
			continue
		}
		header = append(header, id)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	dirs := map[string]PortDir{}
	for {
		switch p.peek() {
		case "endmodule":
			p.pos++
			// Assemble ports in header order.
			for _, h := range header {
				d, ok := dirs[h]
				if !ok {
					return nil, nperr(p.line(), "port %q has no direction declaration", h)
				}
				m.Ports = append(m.Ports, Port{Name: h, Dir: d})
			}
			return m, nil
		case "input", "output":
			kw, _ := p.next()
			ids, err := p.identList()
			if err != nil {
				return nil, err
			}
			d := Input
			if kw == "output" {
				d = Output
			}
			for _, id := range ids {
				dirs[id] = d
			}
		case "wire":
			p.pos++
			ids, err := p.identList()
			if err != nil {
				return nil, err
			}
			m.Wires = append(m.Wires, ids...)
		case "":
			return nil, nperr(p.line(), "missing endmodule")
		default:
			inst, err := p.parseInstance()
			if err != nil {
				return nil, err
			}
			m.Instances = append(m.Instances, *inst)
		}
	}
}

// parseInstance parses `CELL name (.PIN(net), ...);`.
func (p *vparser) parseInstance() (*Instance, error) {
	cell, err := p.next()
	if err != nil {
		return nil, err
	}
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	inst := &Instance{Name: name, Cell: cell, Conns: map[string]string{}}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" {
		if p.peek() == "," {
			p.pos++
			continue
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		pin, err := p.next()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		net, err := p.next()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, dup := inst.Conns[pin]; dup {
			return nil, nperr(p.line(), "instance %q connects pin %s twice", name, pin)
		}
		inst.Conns[pin] = net
		inst.PinOrder = append(inst.PinOrder, pin)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return inst, p.expect(";")
}
