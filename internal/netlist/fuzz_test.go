package netlist

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseNetlist drives Parse with mutated structural Verilog. The
// invariants:
//
//   - Parse never panics — every malformed input returns an error, and
//     syntax errors are typed (*ParseError) with a usable line number;
//   - an accepted module is a String/Parse fixpoint: re-emitting and
//     re-parsing converges to identical text.
func FuzzParseNetlist(f *testing.F) {
	f.Add(Chain("chain8", "INV", 8).String())
	f.Add(RippleCarryAdder(4).String())
	f.Add(BufferTree(3).String())
	f.Add("module m (a, y);\n input a;\n output y;\n INV u0 (.A(a), .ZN(y));\nendmodule\n")
	f.Add("module m (a);\n input a;\nendmodule trailing")
	f.Add("module m (a, y);\n input a;\n output y;\n wire w;\n /* unterminated")
	f.Add("module m (\x00);")
	f.Add("")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if errors.As(err, &pe) {
				if pe.Line < 0 {
					t.Errorf("ParseError with negative line %d: %v", pe.Line, pe)
				}
			} else if !strings.HasPrefix(err.Error(), "netlist: ") {
				t.Errorf("untyped, unprefixed parse failure: %v", err)
			}
			return
		}
		out := m.String()
		m2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of emitted module failed: %v\n%s", err, out)
		}
		if out2 := m2.String(); out2 != out {
			t.Errorf("String/Parse not a fixpoint:\n--- first\n%s\n--- second\n%s", out, out2)
		}
	})
}

func TestParseErrorTyped(t *testing.T) {
	cases := []struct {
		name, src string
		wantLine  int
	}{
		{"unexpected char", "module m (a);\n input a;\n#\nendmodule", 3},
		{"unterminated comment", "module m (a);\n/* no end", 2},
		{"missing endmodule", "module m (a);\n input a;\n", 2},
		{"bad separator", "module m (a);\n input a b;\nendmodule", 2},
		{"trailing tokens", "module m (a);\n input a;\nendmodule x", 3},
		{"empty input", "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("malformed module accepted")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ParseError", err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("line = %d, want %d (%v)", pe.Line, tc.wantLine, pe)
			}
		})
	}
}
