package netlist

import (
	"strings"
	"testing"
)

const demoVerilog = `
// two-gate demo
module demo (a, b, y);
  input a, b;
  output y;
  wire n1;
  /* first gate */
  NAND2 u1 (.A(a), .B(b), .ZN(n1));
  INV u2 (.A(n1), .ZN(y));
endmodule
`

func TestParseDemo(t *testing.T) {
	m, err := Parse(demoVerilog)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "demo" {
		t.Errorf("name %q", m.Name)
	}
	if len(m.Ports) != 3 || m.Ports[0].Name != "a" || m.Ports[2].Dir != Output {
		t.Fatalf("ports: %+v", m.Ports)
	}
	if len(m.Wires) != 1 || m.Wires[0] != "n1" {
		t.Fatalf("wires: %v", m.Wires)
	}
	if len(m.Instances) != 2 {
		t.Fatalf("instances: %d", len(m.Instances))
	}
	u1 := m.Instances[0]
	if u1.Cell != "NAND2" || u1.Conns["ZN"] != "n1" || u1.Conns["A"] != "a" {
		t.Errorf("u1: %+v", u1)
	}
	if got := m.Inputs(); len(got) != 2 {
		t.Errorf("inputs %v", got)
	}
	if got := m.Outputs(); len(got) != 1 || got[0] != "y" {
		t.Errorf("outputs %v", got)
	}
	nets := m.Nets()
	if len(nets) != 4 {
		t.Errorf("nets %v", nets)
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	m, err := Parse(demoVerilog)
	if err != nil {
		t.Fatal(err)
	}
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if m2.String() != text {
		t.Error("writer not a fixed point")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no module", `wire x;`},
		{"missing endmodule", `module m (a); input a;`},
		{"undeclared net", `module m (a); input a; INV u (.A(zz), .ZN(a)); endmodule`},
		{"missing dir", `module m (a); wire b; endmodule`},
		{"dup pin", `module m (a, y); input a; output y; INV u (.A(a), .A(a), .ZN(y)); endmodule`},
		{"dup instance", `module m (a, y); input a; output y; INV u (.A(a), .ZN(y)); INV u (.A(a), .ZN(y)); endmodule`},
		{"garbage char", `module m (a); input a; # endmodule`},
		{"unterminated comment", `module m (a); /* input a; endmodule`},
		{"trailing tokens", `module m (a); input a; endmodule extra`},
		{"bad ident list", `module m (a); input ,; endmodule`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestChainBuilder(t *testing.T) {
	m := Chain("c4", "INV", 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Instances) != 4 || len(m.Wires) != 3 {
		t.Fatalf("chain shape: %d inst %d wires", len(m.Instances), len(m.Wires))
	}
	// Connectivity: u0 input is "in", u3 output is "out".
	if m.Instances[0].Conns["A"] != "in" || m.Instances[3].Conns["ZN"] != "out" {
		t.Error("chain endpoints wrong")
	}
	// Round trip through the parser.
	if _, err := Parse(m.String()); err != nil {
		t.Fatalf("chain verilog invalid: %v", err)
	}
}

func TestRippleCarryAdderBuilder(t *testing.T) {
	m := RippleCarryAdder(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 NAND2 per bit.
	if len(m.Instances) != 12 {
		t.Fatalf("instances %d", len(m.Instances))
	}
	if _, err := Parse(m.String()); err != nil {
		t.Fatalf("rca verilog invalid: %v", err)
	}
	// Carry chain connectivity: u_c0 output feeds u_t1 input B.
	var found bool
	for _, inst := range m.Instances {
		if inst.Name == "u_t1" && inst.Conns["B"] == "c1" {
			found = true
		}
	}
	if !found {
		t.Error("carry chain broken")
	}
}

func TestBufferTreeBuilder(t *testing.T) {
	m := BufferTree(3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 + 4 + 8 buffers.
	if len(m.Instances) != 14 {
		t.Fatalf("instances %d", len(m.Instances))
	}
	// 8 leaves.
	if got := len(m.Outputs()); got != 8 {
		t.Fatalf("leaves %d", got)
	}
	if _, err := Parse(m.String()); err != nil {
		t.Fatalf("tree verilog invalid: %v", err)
	}
}

func TestValidateCatchesBadStructures(t *testing.T) {
	m := &Module{
		Name:  "bad",
		Ports: []Port{{Name: "a", Dir: Input}, {Name: "a", Dir: Output}},
	}
	if err := m.Validate(); err == nil {
		t.Error("duplicate port accepted")
	}
	m2 := &Module{
		Name:  "bad2",
		Ports: []Port{{Name: "a", Dir: Input}},
		Wires: []string{"a"},
	}
	if err := m2.Validate(); err == nil {
		t.Error("wire redeclaring port accepted")
	}
}

func TestPortDirString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" {
		t.Error("dir names")
	}
	if !strings.Contains(Chain("x", "INV", 1).String(), "module x") {
		t.Error("writer header")
	}
}
