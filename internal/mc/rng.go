// Package mc implements the Monte-Carlo machinery that substitutes for
// the paper's SPICE MC runs: a deterministic splittable RNG, Gaussian
// variates, and Latin Hypercube Sampling (LHS) over the process-parameter
// space. The paper generated 50k LHS samples per timing distribution; the
// same sampler drives the synthetic electrical model in internal/spice.
package mc

import "math"

// RNG is a small, fast, deterministic generator (SplitMix64 core). It
// implements the stats.Source interface (Float64, NormFloat64) so the
// distribution types can sample from it directly.
type RNG struct {
	state uint64
	// Cached second Box-Muller variate.
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 advances the SplitMix64 state.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller, cached pair).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mc: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Split derives an independent child generator; useful for giving each
// slew-load grid point its own reproducible stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	return r.PermInto(make([]int, n))
}

// PermInto fills p with a random permutation of [0, len(p)), consuming the
// same variate stream as Perm.
func (r *RNG) PermInto(p []int) []int {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
