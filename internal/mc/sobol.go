package mc

import "lvf2/internal/stats"

// Sobol quasi-Monte-Carlo sequence, an alternative to LHS for the
// characterisation sampler. The implementation uses the classic
// direction numbers from Joe & Kuo for the first dimensions handled here
// (the process-parameter space is 6-dimensional) with Gray-code ordering.
//
// QMC converges as O(log^d(n)/n) for smooth integrands versus O(1/√n)
// for plain MC, which matters when characterising thousands of grid
// points; BenchmarkAblationLHS-style comparisons can swap samplers.

// sobolDim holds primitive polynomial degree s, coefficient a, and the
// initial direction numbers m for one dimension (Joe & Kuo tables).
type sobolDim struct {
	s int
	a uint32
	m []uint32
}

// The first 7 dimensions after the van-der-Corput dimension (which needs
// no table) — enough for NumParams with one to spare.
var sobolDims = []sobolDim{
	{s: 1, a: 0, m: []uint32{1}},
	{s: 2, a: 1, m: []uint32{1, 3}},
	{s: 3, a: 1, m: []uint32{1, 3, 1}},
	{s: 3, a: 2, m: []uint32{1, 1, 1}},
	{s: 4, a: 1, m: []uint32{1, 1, 3, 3}},
	{s: 4, a: 4, m: []uint32{1, 3, 5, 13}},
	{s: 5, a: 2, m: []uint32{1, 1, 5, 5, 17}},
}

const sobolBits = 31

// Sobol is a d-dimensional Sobol sequence generator.
type Sobol struct {
	d     int
	v     [][]uint32 // direction vectors per dimension
	x     []uint32   // current state per dimension
	count uint32
}

// NewSobol builds a generator for d dimensions (1 ≤ d ≤ 8).
func NewSobol(d int) *Sobol {
	if d < 1 {
		d = 1
	}
	if d > len(sobolDims)+1 {
		d = len(sobolDims) + 1
	}
	s := &Sobol{d: d, x: make([]uint32, d)}
	s.v = make([][]uint32, d)
	// Dimension 0: van der Corput — v[k] = 2^(bits-1-k).
	s.v[0] = make([]uint32, sobolBits)
	for k := 0; k < sobolBits; k++ {
		s.v[0][k] = 1 << (sobolBits - 1 - k)
	}
	for j := 1; j < d; j++ {
		dim := sobolDims[j-1]
		v := make([]uint32, sobolBits)
		for k := 0; k < dim.s && k < sobolBits; k++ {
			v[k] = dim.m[k] << (sobolBits - 1 - k)
		}
		for k := dim.s; k < sobolBits; k++ {
			v[k] = v[k-dim.s] ^ (v[k-dim.s] >> dim.s)
			for l := 1; l < dim.s; l++ {
				if (dim.a>>(dim.s-1-l))&1 == 1 {
					v[k] ^= v[k-l]
				}
			}
		}
		s.v[j] = v
	}
	return s
}

// Next returns the next point in [0,1)^d (Gray-code order; the first
// returned point is the sequence's index-1 point, skipping the origin).
func (s *Sobol) Next() []float64 {
	return s.NextInto(make([]float64, s.d))
}

// NextInto writes the next point into dst (which must have length ≥ d)
// and returns dst[:d].
func (s *Sobol) NextInto(dst []float64) []float64 {
	// Position of the lowest zero bit of count.
	c := s.count
	k := 0
	for c&1 == 1 {
		c >>= 1
		k++
	}
	if k >= sobolBits {
		k = sobolBits - 1
	}
	dst = dst[:s.d]
	for j := 0; j < s.d; j++ {
		s.x[j] ^= s.v[j][k]
		dst[j] = float64(s.x[j]) / (1 << sobolBits)
	}
	s.count++
	return dst
}

// Dim returns the (clamped) dimensionality of the sequence.
func (s *Sobol) Dim() int { return s.d }

// SobolPoints returns the first n points of a d-dimensional sequence.
func SobolPoints(n, d int) [][]float64 {
	return SobolPointsInto(n, d, &Matrix{})
}

// SobolPointsInto is SobolPoints writing into a reusable matrix. The rows
// are Dim() wide (d clamped to the supported range).
func SobolPointsInto(n, d int, m *Matrix) [][]float64 {
	s := NewSobol(d)
	if n <= 0 {
		return nil
	}
	out := m.Rows(n, s.d)
	for i := range out {
		s.NextInto(out[i])
	}
	return out
}

// GaussianSobol maps a scrambled-shifted Sobol sequence through the normal
// quantile: n quasi-random N(0,1)^d vectors. The rng supplies a random
// Cranley–Patterson rotation so repeated calls give independent unbiased
// estimates (plain Sobol is deterministic).
func GaussianSobol(rng *RNG, n, d int) [][]float64 {
	return GaussianSobolInto(rng, n, d, &Matrix{})
}

// GaussianSobolInto is GaussianSobol writing into a reusable matrix,
// consuming the same rng stream (the shift is drawn before the points).
func GaussianSobolInto(rng *RNG, n, d int, m *Matrix) [][]float64 {
	shift := m.shiftBuf(d)
	for j := range shift {
		shift[j] = rng.Float64()
	}
	pts := SobolPointsInto(n, d, m)
	for _, row := range pts {
		for j, u := range row {
			u += shift[j]
			if u >= 1 {
				u -= 1
			}
			row[j] = stats.StdNormQuantile(clampOpen(u))
		}
	}
	return pts
}
