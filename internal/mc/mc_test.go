package mc

import (
	"math"
	"testing"

	"lvf2/internal/stats"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(2)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	m := stats.Moments(xs)
	if math.Abs(m.Mean) > 0.01 {
		t.Errorf("norm mean %v", m.Mean)
	}
	if math.Abs(m.Std()-1) > 0.01 {
		t.Errorf("norm std %v", m.Std())
	}
	if math.Abs(m.Skewness) > 0.03 {
		t.Errorf("norm skew %v", m.Skewness)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(4)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children should differ")
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	r := NewRNG(5)
	n, d := 64, 3
	pts := LatinHypercube(r, n, d)
	if len(pts) != n || len(pts[0]) != d {
		t.Fatalf("shape %dx%d", len(pts), len(pts[0]))
	}
	// Exactly one point per stratum per dimension.
	for j := 0; j < d; j++ {
		hit := make([]bool, n)
		for i := 0; i < n; i++ {
			u := pts[i][j]
			if u < 0 || u >= 1 {
				t.Fatalf("point out of unit cube: %v", u)
			}
			s := int(u * float64(n))
			if hit[s] {
				t.Fatalf("dim %d stratum %d hit twice", j, s)
			}
			hit[s] = true
		}
	}
}

func TestLatinHypercubeDegenerate(t *testing.T) {
	if LatinHypercube(NewRNG(1), 0, 2) != nil {
		t.Error("n=0 should return nil")
	}
	if LatinHypercube(NewRNG(1), 2, 0) != nil {
		t.Error("d=0 should return nil")
	}
}

func TestGaussianLHSMoments(t *testing.T) {
	r := NewRNG(6)
	pts := GaussianLHS(r, 20000, 2)
	col := make([]float64, len(pts))
	for i, row := range pts {
		col[i] = row[0]
	}
	m := stats.Moments(col)
	// LHS means converge much faster than IID; tolerance is still loose.
	if math.Abs(m.Mean) > 0.005 {
		t.Errorf("LHS gaussian mean %v", m.Mean)
	}
	if math.Abs(m.Std()-1) > 0.01 {
		t.Errorf("LHS gaussian std %v", m.Std())
	}
}

// LHS should reduce the variance of a mean estimator vs IID sampling.
func TestLHSVarianceReduction(t *testing.T) {
	const trials, n = 60, 256
	est := func(sampler func(*RNG, int, int) [][]float64, seed uint64) float64 {
		var vs []float64
		for tr := 0; tr < trials; tr++ {
			r := NewRNG(seed + uint64(tr))
			pts := sampler(r, n, 1)
			var s float64
			for _, p := range pts {
				s += p[0] * p[0] // estimate E[Z²] = 1
			}
			vs = append(vs, s/float64(n))
		}
		return stats.Moments(vs).Variance
	}
	vLHS := est(GaussianLHS, 100)
	vIID := est(GaussianIID, 200)
	if vLHS >= vIID {
		t.Errorf("LHS variance %v should beat IID %v", vLHS, vIID)
	}
}

func TestSobolFirstPoints(t *testing.T) {
	// The 1-D Sobol (van der Corput) sequence in Gray-code order starts
	// 1/2, 3/4, 1/4, 3/8, 7/8, ...
	s := NewSobol(1)
	want := []float64{0.5, 0.75, 0.25, 0.375, 0.875}
	for i, w := range want {
		got := s.Next()[0]
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("point %d = %v want %v", i, got, w)
		}
	}
}

func TestSobolEquidistribution(t *testing.T) {
	// First 2^k points of any Sobol dimension hit each dyadic interval of
	// width 2^-k exactly once.
	// The generator skips the origin (index 0 maps to −∞ under the normal
	// quantile), so the equidistributed block is the origin plus the first
	// 2^k − 1 returned points.
	const k = 6
	n := 1 << k
	pts := SobolPoints(n-1, 4)
	for d := 0; d < 4; d++ {
		hit := make([]bool, n)
		hit[0] = true // the skipped origin
		for i := 0; i < n-1; i++ {
			c := int(pts[i][d] * float64(n))
			if c < 0 || c >= n || hit[c] {
				t.Fatalf("dim %d: cell %d hit twice or out of range", d, c)
			}
			hit[c] = true
		}
	}
}

func TestSobolDimensionClamping(t *testing.T) {
	if s := NewSobol(0); s.d != 1 {
		t.Errorf("d=0 clamp: %d", s.d)
	}
	if s := NewSobol(100); s.d != len(sobolDims)+1 {
		t.Errorf("d=100 clamp: %d", s.d)
	}
}

func TestGaussianSobolMoments(t *testing.T) {
	r := NewRNG(8)
	pts := GaussianSobol(r, 4096, 3)
	for d := 0; d < 3; d++ {
		col := make([]float64, len(pts))
		for i, row := range pts {
			col[i] = row[d]
		}
		m := stats.Moments(col)
		if math.Abs(m.Mean) > 0.01 {
			t.Errorf("dim %d mean %v", d, m.Mean)
		}
		if math.Abs(m.Std()-1) > 0.02 {
			t.Errorf("dim %d std %v", d, m.Std())
		}
	}
}

// QMC should beat IID MC variance on a smooth integrand.
func TestSobolVarianceReduction(t *testing.T) {
	const trials, n = 40, 256
	est := func(qmc bool, seed uint64) float64 {
		var vs []float64
		for tr := 0; tr < trials; tr++ {
			r := NewRNG(seed + uint64(tr))
			var pts [][]float64
			if qmc {
				pts = GaussianSobol(r, n, 2)
			} else {
				pts = GaussianIID(r, n, 2)
			}
			var s float64
			for _, p := range pts {
				s += p[0]*p[0] + p[1]*p[1] // E = 2
			}
			vs = append(vs, s/float64(n))
		}
		return stats.Moments(vs).Variance
	}
	vQ := est(true, 500)
	vI := est(false, 600)
	if vQ >= vI {
		t.Errorf("Sobol variance %v should beat IID %v", vQ, vI)
	}
}
