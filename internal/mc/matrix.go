package mc

import "sync"

// MatrixPool recycles Matrix buffers across goroutines. Every consumer of
// the Into sampler variants that draws sample blocks on demand — the
// spice characterisation workers, the rare-event yield estimators — used
// to carry its own sync.Pool of matrices; this is that pattern, named.
// The zero value is ready.
type MatrixPool struct{ p sync.Pool }

// Get returns a Matrix, allocating one only when the pool is empty.
func (mp *MatrixPool) Get() *Matrix {
	if m, ok := mp.p.Get().(*Matrix); ok {
		return m
	}
	return new(Matrix)
}

// Put returns a Matrix to the pool. The caller must not touch m (or rows
// returned from it) afterwards.
func (mp *MatrixPool) Put(m *Matrix) { mp.p.Put(m) }

// Matrix is a reusable n×d sample buffer for the Into sampler variants.
// The row slices and their flat backing array, the per-dimension
// permutation and the Sobol shift vector are all recycled across calls, so
// a characterisation worker that draws thousands of sample blocks performs
// no steady-state allocations. The zero value is ready; a Matrix is not
// safe for concurrent use.
type Matrix struct {
	rows  [][]float64
	flat  []float64
	perm  []int
	shift []float64
	// Cached shape of rows: a grid sweep draws hundreds of same-shaped
	// blocks through one matrix, so re-slicing n row headers per block is
	// planned once and skipped on every subsequent call.
	shapedN, shapedD int
}

// Rows returns the matrix shaped to n rows of d columns, reusing the
// backing storage when it is large enough. Row contents are unspecified on
// return (callers overwrite every cell). Rows are capacity-capped, so
// appending to one cannot clobber its neighbour. Repeated calls with the
// same shape return the cached row headers without re-slicing.
func (m *Matrix) Rows(n, d int) [][]float64 {
	if n <= 0 || d <= 0 {
		return nil
	}
	if n == m.shapedN && d == m.shapedD {
		return m.rows
	}
	if cap(m.flat) < n*d {
		m.flat = make([]float64, n*d)
	}
	if cap(m.rows) < n {
		m.rows = make([][]float64, n)
	}
	m.rows = m.rows[:n]
	flat := m.flat[:n*d]
	for i := range m.rows {
		m.rows[i], flat = flat[:d:d], flat[d:]
	}
	m.shapedN, m.shapedD = n, d
	return m.rows
}

// permBuf returns the permutation scratch sized to n.
func (m *Matrix) permBuf(n int) []int {
	if cap(m.perm) < n {
		m.perm = make([]int, n)
	}
	return m.perm[:n]
}

// shiftBuf returns the shift scratch sized to d.
func (m *Matrix) shiftBuf(d int) []float64 {
	if cap(m.shift) < d {
		m.shift = make([]float64, d)
	}
	return m.shift[:d]
}
