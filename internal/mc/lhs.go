package mc

import "lvf2/internal/stats"

// LatinHypercube generates n stratified samples in d dimensions on the
// unit hypercube: each dimension is divided into n equal strata, each
// stratum receives exactly one point at a uniformly random offset, and the
// strata are randomly permuted per dimension. Returns an n×d matrix.
//
// LHS is the paper's sampling scheme for the SPICE Monte Carlo runs; its
// stratification lowers the variance of bin-probability estimates compared
// to IID sampling at the same budget (see BenchmarkAblationLHS).
func LatinHypercube(rng *RNG, n, d int) [][]float64 {
	return LatinHypercubeInto(rng, n, d, &Matrix{})
}

// LatinHypercubeInto is LatinHypercube writing into a reusable matrix. The
// returned rows alias m and remain valid until its next use; the variate
// stream matches LatinHypercube exactly.
func LatinHypercubeInto(rng *RNG, n, d int, m *Matrix) [][]float64 {
	if n <= 0 || d <= 0 {
		return nil
	}
	out := m.Rows(n, d)
	perm := m.permBuf(n)
	for j := 0; j < d; j++ {
		rng.PermInto(perm)
		for i := 0; i < n; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(n)
			if u >= 1 {
				u = 1 - 1e-16
			}
			out[i][j] = u
		}
	}
	return out
}

// GaussianLHS maps LatinHypercube points through the standard normal
// quantile, producing n stratified N(0,1)^d process-parameter vectors.
func GaussianLHS(rng *RNG, n, d int) [][]float64 {
	return GaussianLHSInto(rng, n, d, &Matrix{})
}

// GaussianLHSInto is GaussianLHS writing into a reusable matrix.
func GaussianLHSInto(rng *RNG, n, d int, m *Matrix) [][]float64 {
	pts := LatinHypercubeInto(rng, n, d, m)
	for _, row := range pts {
		for j, u := range row {
			row[j] = stats.StdNormQuantile(clampOpen(u))
		}
	}
	return pts
}

// GaussianIID returns n IID N(0,1)^d vectors, the non-stratified baseline.
func GaussianIID(rng *RNG, n, d int) [][]float64 {
	return GaussianIIDInto(rng, n, d, &Matrix{})
}

// GaussianIIDInto is GaussianIID writing into a reusable matrix.
func GaussianIIDInto(rng *RNG, n, d int, m *Matrix) [][]float64 {
	if n <= 0 || d <= 0 {
		return nil
	}
	out := m.Rows(n, d)
	for _, row := range out {
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return out
}

func clampOpen(u float64) float64 {
	const eps = 1e-15
	if u < eps {
		return eps
	}
	if u > 1-eps {
		return 1 - eps
	}
	return u
}
