package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAllTasks(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), Options{Workers: 4}, 100, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
}

func TestPanicBecomesTypedError(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), Options{Workers: 2}, 10, func(ctx context.Context, i int) error {
		if i == 3 {
			panic("boom")
		}
		ran.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("expected an error from the panicking task")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if ran.Load() != 9 {
		t.Fatalf("non-panicking tasks ran %d times, want 9", ran.Load())
	}
}

func TestErrorsAreJoined(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForEach(context.Background(), Options{Workers: 2}, 4, func(ctx context.Context, i int) error {
		switch i {
		case 1:
			return errA
		case 2:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error %v does not contain both task errors", err)
	}
}

func TestCancellationStopsDispatchAndReportsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	p := New(ctx, Options{Workers: 2})
	for i := 0; i < 1000; i++ {
		serr := p.Submit(fmt.Sprintf("t%d", i), func(tctx context.Context) error {
			// Cancel once both workers are busy; tctx derives from the pool
			// context, so both blocked tasks are released by the cancel.
			if started.Add(1) == 2 {
				cancel()
			}
			<-tctx.Done() // block until cancellation propagates
			return tctx.Err()
		})
		if serr != nil {
			break // Submit refused after cancellation, as designed
		}
	}
	err := p.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 10 {
		t.Fatalf("%d tasks started after cancellation, dispatch did not stop promptly", n)
	}
}

func TestTaskTimeoutExpiresContext(t *testing.T) {
	var sawDeadline atomic.Bool
	err := ForEach(context.Background(), Options{Workers: 1, TaskTimeout: 5 * time.Millisecond}, 1,
		func(ctx context.Context, i int) error {
			select {
			case <-ctx.Done():
				sawDeadline.Store(true)
				return ctx.Err()
			case <-time.After(2 * time.Second):
				return nil
			}
		})
	if !sawDeadline.Load() {
		t.Fatal("task context never expired")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestProtectPassesThroughErrors(t *testing.T) {
	want := errors.New("plain")
	if got := Protect("x", func() error { return want }); got != want {
		t.Fatalf("Protect = %v, want %v", got, want)
	}
	if got := Protect("x", func() error { return nil }); got != nil {
		t.Fatalf("Protect = %v, want nil", got)
	}
}
