// Package pool provides the shared bounded worker pool used by every
// parallel stage of the characterisation → fit → emit pipeline. It exists
// because the pipeline must survive pathological inputs: a panicking task
// becomes a typed *PanicError instead of killing the process, a cancelled
// context stops dispatch promptly and surfaces as context.Canceled, and a
// per-task deadline bounds how long any single fit may run.
//
// Cancellation is cooperative: tasks receive a context and are expected to
// check it at natural boundaries (grid points, EM iterations). The pool
// guarantees that no new task starts after cancellation and that Wait
// reports the cancellation.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// PanicError is a recovered task panic, carrying the task label, the
// panic value and the stack at the panic site.
type PanicError struct {
	Task  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: task %q panicked: %v", e.Task, e.Value)
}

// Options tunes a pool. The zero value uses GOMAXPROCS workers and no
// per-task deadline.
type Options struct {
	// Workers is the number of concurrent workers (default GOMAXPROCS).
	Workers int
	// TaskTimeout bounds each task via a context deadline (0 = none).
	// Enforcement is cooperative: the task's context expires and the task
	// is expected to notice and return.
	TaskTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

type task struct {
	label string
	fn    func(context.Context) error
}

// Pool is a bounded worker pool bound to a context. Create with New,
// feed with Submit, finish with Wait.
type Pool struct {
	ctx   context.Context
	opts  Options
	tasks chan task
	wg    sync.WaitGroup

	mu   sync.Mutex
	errs []error
}

// New starts a pool of o.Workers workers bound to ctx.
func New(ctx context.Context, o Options) *Pool {
	o = o.withDefaults()
	p := &Pool{ctx: ctx, opts: o, tasks: make(chan task)}
	p.wg.Add(o.Workers)
	for w := 0; w < o.Workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		if p.ctx.Err() != nil {
			continue // drain without running: cancelled
		}
		tctx := p.ctx
		cancel := func() {}
		if p.opts.TaskTimeout > 0 {
			tctx, cancel = context.WithTimeout(p.ctx, p.opts.TaskTimeout)
		}
		err := Protect(t.label, func() error { return t.fn(tctx) })
		cancel()
		if err != nil {
			p.mu.Lock()
			p.errs = append(p.errs, err)
			p.mu.Unlock()
		}
	}
}

// Submit enqueues a task. It blocks until a worker is free and returns
// the context error (without enqueueing) once the pool's context is
// cancelled, so producers stop early.
func (p *Pool) Submit(label string, fn func(context.Context) error) error {
	select {
	case <-p.ctx.Done():
		return p.ctx.Err()
	case p.tasks <- task{label: label, fn: fn}:
		return nil
	}
}

// Wait closes the queue, waits for the workers to drain, and returns the
// joined task errors. If the pool's context was cancelled, the context
// error is included, so errors.Is(err, context.Canceled) reports
// cancellation.
func (p *Pool) Wait() error {
	close(p.tasks)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	errs := p.errs
	if cerr := p.ctx.Err(); cerr != nil {
		errs = append(errs, cerr)
	}
	return errors.Join(errs...)
}

// ForEach runs fn(ctx, i) for i in [0, n) on a bounded pool and returns
// the joined errors (nil when every task succeeded). Task panics become
// *PanicError values; cancellation surfaces as the context error.
func ForEach(ctx context.Context, o Options, n int, fn func(ctx context.Context, i int) error) error {
	p := New(ctx, o)
	for i := 0; i < n; i++ {
		i := i
		if err := p.Submit(fmt.Sprintf("task%d", i), func(tctx context.Context) error {
			return fn(tctx, i)
		}); err != nil {
			break
		}
	}
	return p.Wait()
}

// ForEachLabeled is ForEach with caller-supplied task labels, so a
// panic inside task i is attributed to labels[i] — an arc label or a
// checkpoint unit key — instead of a positional "task7" that means
// nothing in a crash report.
func ForEachLabeled(ctx context.Context, o Options, labels []string, fn func(ctx context.Context, i int) error) error {
	p := New(ctx, o)
	for i := range labels {
		i := i
		if err := p.Submit(labels[i], func(tctx context.Context) error {
			return fn(tctx, i)
		}); err != nil {
			break
		}
	}
	return p.Wait()
}

// Protect runs f, converting a panic into a *PanicError. It is exported
// so pipeline stages can recover at a finer grain than the pool's own
// per-task backstop and attribute the failure to a specific unit of work.
func Protect(label string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Task: label, Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}
