package obs

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics bundles the standard request-level series of one HTTP
// service: a request counter by (route, code), a latency histogram by
// route, and an in-flight gauge.
type HTTPMetrics struct {
	Requests *CounterVec
	Latency  *histVec
	InFlight *Gauge
	Timeouts *Counter
	Rejected *Counter
	Panics   *Counter
}

// histVec is a small per-route histogram family. Routes are registered
// up front by Wrap, so no locking discipline beyond CounterVec's is
// needed.
type histVec struct {
	reg     *Registry
	name    string
	help    string
	byRoute map[string]*Histogram
}

func (hv *histVec) route(route string) *Histogram {
	if h, ok := hv.byRoute[route]; ok {
		return h
	}
	h := NewHistogram(hv.reg, hv.name+"_"+sanitize(route), hv.help+" ("+route+")", nil)
	hv.byRoute[route] = h
	return h
}

// sanitize maps a route path to a metric-name-safe suffix.
func sanitize(route string) string {
	out := make([]byte, 0, len(route))
	for i := 0; i < len(route); i++ {
		c := route[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}

// NewHTTPMetrics registers the request series under the given prefix
// (e.g. "lvf2d").
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: NewCounterVec(r, prefix+"_requests_total",
			"HTTP requests by route and status code", "route", "code"),
		Latency: &histVec{reg: r, name: prefix + "_request_seconds",
			help: "request latency in seconds", byRoute: map[string]*Histogram{}},
		InFlight: NewGauge(r, prefix+"_in_flight_requests",
			"requests currently being served"),
		Timeouts: NewCounter(r, prefix+"_request_timeouts_total",
			"requests whose per-request deadline expired"),
		Rejected: NewCounter(r, prefix+"_requests_rejected_total",
			"requests rejected by the concurrency limiter"),
		Panics: NewCounter(r, prefix+"_handler_panics_total",
			"handler panics recovered into 500 responses"),
	}
}

// statusRecorder captures the response code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Wrap instruments a handler with the request counter, latency histogram
// and in-flight gauge for the given route label. Register each route once.
func (m *HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	lat := m.Latency.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.InFlight.Inc()
		defer m.InFlight.Dec()
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		h.ServeHTTP(sr, r)
		if sr.code == 0 {
			sr.code = http.StatusOK
		}
		lat.Observe(time.Since(start).Seconds())
		m.Requests.Inc(route, strconv.Itoa(sr.code))
	})
}

// Limit bounds handler concurrency with a semaphore. A request that
// cannot acquire a slot before its context is done is answered 503 with
// a Retry-After hint and counted in rejected (nil-safe). Overload is a
// transient condition, so well-behaved clients should back off and
// retry rather than treat it as a hard failure.
func Limit(n int, rejected *Counter, h http.Handler) http.Handler {
	if n <= 0 {
		return h
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			h.ServeHTTP(w, r)
		case <-r.Context().Done():
			if rejected != nil {
				rejected.Inc()
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded", http.StatusServiceUnavailable)
		}
	})
}

// Recover converts a handler panic into a clean 500 (when nothing has
// been written yet) and counts it (nil-safe), so one poisoned request
// cannot take down the connection-serving goroutine or, under direct
// ServeHTTP harnesses like the chaos suite, the whole process.
func Recover(panics *Counter, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if panics != nil {
					panics.Inc()
				}
				http.Error(w, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// Timeout applies a per-request deadline via the request context. The
// handler is responsible for honouring ctx cancellation; when it returns
// after the deadline with nothing written, the client sees 503 from the
// handler's own error path. The timeouts counter (nil-safe) records
// requests whose deadline expired.
func Timeout(d time.Duration, timeouts *Counter, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
		if ctx.Err() == context.DeadlineExceeded && timeouts != nil {
			timeouts.Inc()
		}
	})
}
