// Package obs is a dependency-free observability layer: counters, gauges
// and latency histograms collected in a Registry and exported in the
// Prometheus text exposition format. It exists so the serving daemon
// (cmd/lvf2d) and the long-running experiment pipelines can report
// request, latency, in-flight and cache series without pulling an
// external metrics dependency into a stdlib-only module.
//
// Registration is idempotent: asking a registry for a metric that already
// exists under the same name and type returns the existing instance, so
// packages can declare their metrics at init time and servers can be
// constructed repeatedly in tests against a shared registry.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one named series (or family of labelled series).
type metric interface {
	metricName() string
	metricType() string // counter | gauge | histogram
	write(w io.Writer)
}

// Registry is a set of metrics with stable, sorted text exposition.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]metric
	helpFor map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}, helpFor: map[string]string{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library packages (e.g.
// internal/experiments) register their metrics here; the daemon exposes
// it at /metrics alongside its own registry.
func Default() *Registry { return defaultRegistry }

// register adds m under name, or returns the existing metric when one of
// the same type is already present. A name collision across types panics:
// that is a programming error, not an operational condition.
func (r *Registry) register(name, help string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[name]; ok {
		if old.metricType() != m.metricType() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)",
				name, m.metricType(), old.metricType()))
		}
		return old
	}
	r.byName[name] = m
	r.helpFor[name] = help
	return m
}

// WritePrometheus emits every registered metric in the text exposition
// format, sorted by name for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	metrics := make([]metric, len(names))
	helps := make([]string, len(names))
	for i, name := range names {
		metrics[i] = r.byName[name]
		helps[i] = r.helpFor[name]
	}
	r.mu.Unlock()

	for i, m := range metrics {
		if helps[i] != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", names[i], helps[i])
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", names[i], m.metricType())
		m.write(w)
	}
}

// ----------------------------------------------------------------- counter

// Counter is a monotonically increasing integer series.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers (or fetches) a counter.
func NewCounter(r *Registry, name, help string) *Counter {
	return r.register(name, help, &Counter{name: name}).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep the series monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// ------------------------------------------------------------------- gauge

// Gauge is an integer level (in-flight requests, cache entries, ...).
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge registers (or fetches) a gauge.
func NewGauge(r *Registry, name, help string) *Gauge {
	return r.register(name, help, &Gauge{name: name}).(*Gauge)
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc and Dec move the level by ±1.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// FloatGauge is a float-valued level (ratios, byte fractions). It
// stores the float64 bits atomically, so Set/Value are safe from any
// goroutine without a lock.
type FloatGauge struct {
	name string
	bits atomic.Uint64
}

// NewFloatGauge registers (or fetches) a float gauge.
func NewFloatGauge(r *Registry, name, help string) *FloatGauge {
	return r.register(name, help, &FloatGauge{name: name}).(*FloatGauge)
}

// Set replaces the level.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FloatGauge) metricName() string { return g.name }
func (g *FloatGauge) metricType() string { return "gauge" }
func (g *FloatGauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

// GaugeFunc is a gauge whose value is computed at scrape time — the
// natural shape for cache sizes owned by another subsystem.
type GaugeFunc struct {
	name string
	fn   func() float64
}

// NewGaugeFunc registers a scrape-time gauge. Re-registering the same
// name keeps the first callback.
func NewGaugeFunc(r *Registry, name, help string, fn func() float64) *GaugeFunc {
	return r.register(name, help, &GaugeFunc{name: name, fn: fn}).(*GaugeFunc)
}

func (g *GaugeFunc) metricName() string { return g.name }
func (g *GaugeFunc) metricType() string { return "gauge" }
func (g *GaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// --------------------------------------------------------------- histogram

// DefaultLatencyBuckets spans 100µs .. ~100s in roughly 3× steps — wide
// enough for both cache hits (µs) and cold characterise-and-fit requests
// (tens of ms to seconds).
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100,
}

// DefaultRatioBuckets spans 0.1% .. 100% in roughly 2–3× steps, sized for
// dimensionless fractions such as confidence-interval half-widths and
// relative errors. The 0.01 boundary sits exactly on the yield engine's
// default ±1% CI contract, so "converged within contract" is one bucket
// lookup away.
var DefaultRatioBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket counts are cumulative, +Inf is implicit).
type Histogram struct {
	name    string
	uppers  []float64
	counts  []atomic.Int64 // one per upper bound
	all     atomic.Int64   // +Inf bucket (total observations)
	sumBits atomic.Uint64  // float64 sum, CAS-updated
}

// NewHistogram registers (or fetches) a histogram with the given upper
// bounds (must be sorted ascending; nil means DefaultLatencyBuckets).
func NewHistogram(r *Registry, name, help string, uppers []float64) *Histogram {
	if uppers == nil {
		uppers = DefaultLatencyBuckets
	}
	h := &Histogram{name: name, uppers: uppers, counts: make([]atomic.Int64, len(uppers))}
	return r.register(name, help, h).(*Histogram)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.uppers {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.all.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.all.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) write(w io.Writer) {
	var cum int64
	for i, ub := range h.uppers {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.all.Load())
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.all.Load())
}

// ------------------------------------------------------------ labelled vec

// CounterVec is a family of counters distinguished by label values, e.g.
// requests by (route, code).
type CounterVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*vecChild
}

type vecChild struct {
	labelStr string // rendered {k="v",...}
	v        atomic.Int64
}

// NewCounterVec registers (or fetches) a counter family.
func NewCounterVec(r *Registry, name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{name: name, labels: labels, kids: map[string]*vecChild{}}
	got := r.register(name, help, cv).(*CounterVec)
	if len(got.labels) != len(labels) {
		panic(fmt.Sprintf("obs: counter vec %q re-registered with different labels", name))
	}
	return got
}

func (cv *CounterVec) child(values []string) *vecChild {
	if len(values) != len(cv.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", cv.name, len(cv.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if k, ok := cv.kids[key]; ok {
		return k
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range cv.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l, values[i])
	}
	b.WriteByte('}')
	k := &vecChild{labelStr: b.String()}
	cv.kids[key] = k
	return k
}

// Value returns the current count for one label combination (0 when the
// combination has never been observed).
func (cv *CounterVec) Value(values ...string) int64 {
	return cv.child(values).v.Load()
}

// BoundCounter is one pre-resolved child of a CounterVec. Inc and Add are
// single atomic operations — no variadic slice, no label-key join, no map
// lookup — so hot paths (one event per fit) can count without allocating.
type BoundCounter struct{ c *vecChild }

// With resolves the child for the given label values once; the returned
// handle is safe for concurrent use and remains valid for the life of the
// process.
func (cv *CounterVec) With(values ...string) *BoundCounter {
	return &BoundCounter{c: cv.child(values)}
}

// Inc adds one.
func (b *BoundCounter) Inc() { b.c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep the series monotone).
func (b *BoundCounter) Add(n int64) {
	if n > 0 {
		b.c.v.Add(n)
	}
}

// Value returns the current count.
func (b *BoundCounter) Value() int64 { return b.c.v.Load() }

// Inc adds one to the child for the given label values.
func (cv *CounterVec) Inc(values ...string) { cv.child(values).v.Add(1) }

// Add adds n to the child for the given label values (negative deltas
// are ignored to keep the series monotone).
func (cv *CounterVec) Add(n int64, values ...string) {
	if n > 0 {
		cv.child(values).v.Add(n)
	}
}

func (cv *CounterVec) metricName() string { return cv.name }
func (cv *CounterVec) metricType() string { return "counter" }
func (cv *CounterVec) write(w io.Writer) {
	cv.mu.Lock()
	kids := make([]*vecChild, 0, len(cv.kids))
	for _, k := range cv.kids {
		kids = append(kids, k)
	}
	cv.mu.Unlock()
	sort.Slice(kids, func(a, b int) bool { return kids[a].labelStr < kids[b].labelStr })
	for _, k := range kids {
		fmt.Fprintf(w, "%s%s %d\n", cv.name, k.labelStr, k.v.Load())
	}
}

// FloatGaugeVec is a family of float gauges distinguished by label
// values — e.g. per-journal resume ratios, where a single unlabelled
// gauge would be silently overwritten by whichever journal reported
// last.
type FloatGaugeVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*floatVecChild
}

type floatVecChild struct {
	labelStr string
	bits     atomic.Uint64
}

// NewFloatGaugeVec registers (or fetches) a float gauge family.
func NewFloatGaugeVec(r *Registry, name, help string, labels ...string) *FloatGaugeVec {
	gv := &FloatGaugeVec{name: name, labels: labels, kids: map[string]*floatVecChild{}}
	got := r.register(name, help, gv).(*FloatGaugeVec)
	if len(got.labels) != len(labels) {
		panic(fmt.Sprintf("obs: gauge vec %q re-registered with different labels", name))
	}
	return got
}

func (gv *FloatGaugeVec) child(values []string) *floatVecChild {
	if len(values) != len(gv.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", gv.name, len(gv.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	gv.mu.Lock()
	defer gv.mu.Unlock()
	if k, ok := gv.kids[key]; ok {
		return k
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range gv.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l, values[i])
	}
	b.WriteByte('}')
	k := &floatVecChild{labelStr: b.String()}
	gv.kids[key] = k
	return k
}

// Set replaces the level for one label combination.
func (gv *FloatGaugeVec) Set(v float64, values ...string) {
	gv.child(values).bits.Store(math.Float64bits(v))
}

// Value returns the current level for one label combination (0 when the
// combination has never been set).
func (gv *FloatGaugeVec) Value(values ...string) float64 {
	return math.Float64frombits(gv.child(values).bits.Load())
}

func (gv *FloatGaugeVec) metricName() string { return gv.name }
func (gv *FloatGaugeVec) metricType() string { return "gauge" }
func (gv *FloatGaugeVec) write(w io.Writer) {
	gv.mu.Lock()
	kids := make([]*floatVecChild, 0, len(gv.kids))
	for _, k := range gv.kids {
		kids = append(kids, k)
	}
	gv.mu.Unlock()
	sort.Slice(kids, func(a, b int) bool { return kids[a].labelStr < kids[b].labelStr })
	for _, k := range kids {
		fmt.Fprintf(w, "%s%s %s\n", gv.name, k.labelStr, formatFloat(math.Float64frombits(k.bits.Load())))
	}
}

// formatFloat renders a float the way Prometheus expects (no exponent
// for common magnitudes, minimal digits).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
