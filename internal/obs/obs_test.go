package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(r, "test_total", "a counter")
	g := NewGauge(r, "test_level", "a gauge")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	g.Set(3)
	g.Dec()

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_total counter", "test_total 5",
		"# TYPE test_level gauge", "test_level 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := NewCounter(r, "same_total", "")
	b := NewCounter(r, "same_total", "")
	if a != b {
		t.Fatal("re-registration returned a new counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type re-registration did not panic")
		}
	}()
	NewGauge(r, "same_total", "")
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(r, "lat_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(r, "conc_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got < 7.999 || got > 8.001 {
		t.Fatalf("sum = %g, want 8", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	cv := NewCounterVec(r, "req_total", "", "route", "code")
	cv.Inc("/v1/a", "200")
	cv.Inc("/v1/a", "200")
	cv.Inc("/v1/a", "500")
	if got := cv.Value("/v1/a", "200"); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `req_total{route="/v1/a",code="200"} 2`) {
		t.Errorf("missing labelled sample:\n%s", out)
	}
	if !strings.Contains(out, `req_total{route="/v1/a",code="500"} 1`) {
		t.Errorf("missing labelled sample:\n%s", out)
	}
}

func TestHTTPWrapRecordsMetrics(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "svc")
	h := m.Wrap("/v1/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m.InFlight.Value() != 1 {
			t.Errorf("in-flight = %d inside handler, want 1", m.InFlight.Value())
		}
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("code = %d", rec.Code)
	}
	if got := m.Requests.Value("/v1/x", "418"); got != 1 {
		t.Fatalf("request counter = %d, want 1", got)
	}
	if m.InFlight.Value() != 0 {
		t.Fatalf("in-flight = %d after handler, want 0", m.InFlight.Value())
	}
	if m.Latency.route("/v1/x").Count() != 1 {
		t.Fatalf("latency observations = %d, want 1", m.Latency.route("/v1/x").Count())
	}
}

func TestLimitRejectsWhenSaturated(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "lim")
	block := make(chan struct{})
	entered := make(chan struct{})
	h := Limit(1, m.Rejected, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	}))

	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	<-entered

	// Second request with an already-cancelled context must be rejected.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", rec.Code)
	}
	// Overload is transient: the 503 must carry a Retry-After hint so
	// well-behaved clients back off instead of hammering.
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if m.Rejected.Value() != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected.Value())
	}
	close(block)
}

func TestRecoverConvertsPanicTo500(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "rec")
	h := Recover(m.Panics, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("poisoned request")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil)) // must not propagate
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if m.Panics.Value() != 1 {
		t.Fatalf("panics = %d, want 1", m.Panics.Value())
	}
	// Healthy handlers pass through untouched.
	ok := Recover(m.Panics, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rec = httptest.NewRecorder()
	ok.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusNoContent || m.Panics.Value() != 1 {
		t.Fatalf("healthy passthrough: code = %d panics = %d", rec.Code, m.Panics.Value())
	}
}

func TestTimeoutSetsDeadline(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "to")
	h := Timeout(time.Millisecond, m.Timeouts, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		http.Error(w, r.Context().Err().Error(), http.StatusServiceUnavailable)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", rec.Code)
	}
	if m.Timeouts.Value() != 1 {
		t.Fatalf("timeouts = %d, want 1", m.Timeouts.Value())
	}
}
