package ring

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, members []string, opts Options) *Ring {
	t.Helper()
	r, err := New(members, opts)
	if err != nil {
		t.Fatalf("New(%v): %v", members, err)
	}
	return r
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := New(nil, Options{}); err != ErrNoMembers {
		t.Fatalf("empty membership: got %v, want ErrNoMembers", err)
	}
	if _, err := New([]string{"a", ""}, Options{}); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, Options{}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// Placement is a pure function of (members, seed, vnodes): member order
// must not matter, and rebuilding must agree point for point.
func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	keys := testKeys(2000)
	a := mustRing(t, []string{"a", "b", "c"}, Options{Seed: 42})
	b := mustRing(t, []string{"c", "a", "b"}, Options{Seed: 42})
	c := mustRing(t, []string{"b", "c", "a"}, Options{Seed: 42})
	for _, k := range keys {
		if o := a.Owner(k); o != b.Owner(k) || o != c.Owner(k) {
			t.Fatalf("owner of %q depends on member order: %q / %q / %q",
				k, o, b.Owner(k), c.Owner(k))
		}
	}
	// Different seed must actually move keys.
	d := mustRing(t, []string{"a", "b", "c"}, Options{Seed: 43})
	moved := 0
	for _, k := range keys {
		if a.Owner(k) != d.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved zero keys")
	}
}

// Balance: with default vnodes no member's share strays further than
// 25% from fair over a large key population.
func TestRingBalance(t *testing.T) {
	members := []string{"replica-a", "replica-b", "replica-c"}
	r := mustRing(t, members, Options{Seed: 7})
	keys := testKeys(30000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		share := float64(counts[m]) / fair
		if share < 0.75 || share > 1.25 {
			t.Errorf("member %s owns %.0f%% of fair share (count %d)", m, share*100, counts[m])
		}
	}
}

// Minimal movement: removing one member only reassigns keys that member
// owned; every key owned by a survivor keeps its owner.
func TestRingMinimalMovementOnMemberLoss(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	full := mustRing(t, members, Options{Seed: 99})
	keys := testKeys(10000)
	for _, gone := range members {
		var rest []string
		for _, m := range members {
			if m != gone {
				rest = append(rest, m)
			}
		}
		shrunk := mustRing(t, rest, Options{Seed: 99})
		for _, k := range keys {
			before, after := full.Owner(k), shrunk.Owner(k)
			if before != gone && before != after {
				t.Fatalf("removing %s moved key %q from survivor %s to %s", gone, k, before, after)
			}
			if before == gone && after == gone {
				t.Fatalf("removed member %s still owns key %q", gone, k)
			}
		}
	}
}

// Adding a member back restores exactly the original assignment
// (membership + seed fully determine placement).
func TestRingMemberRejoinRestoresAssignment(t *testing.T) {
	members := []string{"a", "b", "c"}
	orig := mustRing(t, members, Options{Seed: 5})
	rejoined := mustRing(t, []string{"c", "b", "a"}, Options{Seed: 5})
	for _, k := range testKeys(5000) {
		if orig.Owner(k) != rejoined.Owner(k) {
			t.Fatalf("rejoin changed owner of %q: %s → %s", k, orig.Owner(k), rejoined.Owner(k))
		}
	}
}

// Derive advances the epoch by exactly one and keeps placement inputs
// (seed, vnodes) fixed, so the derived ring equals a fresh ring over the
// same members.
func TestRingDeriveEpochAndPlacement(t *testing.T) {
	r := mustRing(t, []string{"a", "b", "c"}, Options{Seed: 11, Epoch: 4})
	if r.Epoch() != 4 {
		t.Fatalf("Epoch() = %d, want 4", r.Epoch())
	}
	next, _, err := r.Derive([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if next.Epoch() != 5 {
		t.Fatalf("derived epoch = %d, want 5", next.Epoch())
	}
	if next.Seed() != r.Seed() || next.VirtualNodes() != r.VirtualNodes() {
		t.Fatal("Derive changed seed or vnodes")
	}
	fresh := mustRing(t, []string{"d", "c", "b", "a"}, Options{Seed: 11})
	for _, k := range testKeys(3000) {
		if next.Owner(k) != fresh.Owner(k) {
			t.Fatalf("derived ring disagrees with fresh ring on %q", k)
		}
	}
	if _, _, err := r.Derive(nil); err != ErrNoMembers {
		t.Fatalf("Derive(nil): got %v, want ErrNoMembers", err)
	}
}

// The moved ranges returned by Derive are exact: a key changes owner iff
// its hash falls inside a moved range, and the range's From/To match the
// two rings' owners. Owner is stable for every key outside the ranges.
func TestRingDeriveMovedRangesExact(t *testing.T) {
	cases := []struct{ before, after []string }{
		{[]string{"a", "b", "c", "d"}, []string{"a", "b", "c"}}, // drain d
		{[]string{"a", "b", "c"}, []string{"a", "b", "c", "d"}}, // join d
		{[]string{"a", "b", "c"}, []string{"a", "b", "e"}},      // replace c with e
		{[]string{"a"}, []string{"b"}},                          // full-circle handoff
		{[]string{"a", "b"}, []string{"a", "b"}},                // no-op
	}
	keys := testKeys(8000)
	for _, tc := range cases {
		old := mustRing(t, tc.before, Options{Seed: 23})
		next, moved, err := old.Derive(tc.after)
		if err != nil {
			t.Fatalf("Derive(%v → %v): %v", tc.before, tc.after, err)
		}
		inMoved := func(kh uint64) (RangeDesc, bool) {
			for _, d := range moved {
				if d.Contains(kh) {
					return d, true
				}
			}
			return RangeDesc{}, false
		}
		for _, k := range keys {
			kh := KeyHash(k)
			before, after := old.Owner(k), next.Owner(k)
			d, hit := inMoved(kh)
			if (before != after) != hit {
				t.Fatalf("%v → %v: key %q moved=%v but range hit=%v",
					tc.before, tc.after, k, before != after, hit)
			}
			if hit && (d.From != before || d.To != after) {
				t.Fatalf("%v → %v: key %q range says %s→%s, owners are %s→%s",
					tc.before, tc.after, k, d.From, d.To, before, after)
			}
		}
	}
}

// Minimal movement through Derive: draining one member must only report
// ranges moving away from it, and joining one member only ranges moving
// toward it.
func TestRingDeriveMinimalMovement(t *testing.T) {
	old := mustRing(t, []string{"a", "b", "c", "d"}, Options{Seed: 99})
	_, moved, err := old.Derive([]string{"a", "b", "c"})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if len(moved) == 0 {
		t.Fatal("draining a member moved zero ranges")
	}
	for _, d := range moved {
		if d.From != "d" {
			t.Fatalf("draining d moved range owned by survivor %s", d.From)
		}
		if d.To == "d" {
			t.Fatal("draining d assigned a range back to d")
		}
	}
	_, moved, err = old.Derive([]string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	for _, d := range moved {
		if d.To != "e" {
			t.Fatalf("joining e moved a range to incumbent %s", d.To)
		}
	}
}

// Satellite: a two-epoch round trip (remove a member, re-add it)
// restores the exact original ownership map, two epochs later.
func TestRingDeriveRoundTripRestoresOwnership(t *testing.T) {
	orig := mustRing(t, []string{"a", "b", "c"}, Options{Seed: 5, Epoch: 7})
	shrunk, _, err := orig.Derive([]string{"a", "c"})
	if err != nil {
		t.Fatalf("Derive shrink: %v", err)
	}
	restored, backMoved, err := shrunk.Derive([]string{"a", "b", "c"})
	if err != nil {
		t.Fatalf("Derive re-add: %v", err)
	}
	if restored.Epoch() != 9 {
		t.Fatalf("round-trip epoch = %d, want 9", restored.Epoch())
	}
	for _, k := range testKeys(8000) {
		if orig.Owner(k) != restored.Owner(k) {
			t.Fatalf("round trip changed owner of %q: %s → %s",
				k, orig.Owner(k), restored.Owner(k))
		}
	}
	for _, d := range backMoved {
		if d.To != "b" {
			t.Fatalf("re-adding b moved a range to %s", d.To)
		}
	}
}

func TestRangeDescContains(t *testing.T) {
	plain := RangeDesc{Lo: 100, Hi: 200}
	for kh, want := range map[uint64]bool{100: false, 101: true, 200: true, 201: false, 50: false} {
		if plain.Contains(kh) != want {
			t.Fatalf("plain.Contains(%d) = %v, want %v", kh, !want, want)
		}
	}
	wrap := RangeDesc{Lo: ^uint64(0) - 10, Hi: 5}
	for kh, want := range map[uint64]bool{^uint64(0): true, 0: true, 5: true, 6: false, ^uint64(0) - 10: false} {
		if wrap.Contains(kh) != want {
			t.Fatalf("wrap.Contains(%d) = %v, want %v", kh, !want, want)
		}
	}
	full := RangeDesc{Lo: 42, Hi: 42}
	for _, kh := range []uint64{0, 41, 42, 43, ^uint64(0)} {
		if !full.Contains(kh) {
			t.Fatalf("full-circle range must contain %d", kh)
		}
	}
}

func TestRingAccessors(t *testing.T) {
	r := mustRing(t, []string{"b", "a"}, Options{VirtualNodes: 16, Seed: 3})
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members() = %v, want sorted [a b]", got)
	}
	if r.VirtualNodes() != 16 {
		t.Fatalf("VirtualNodes() = %d, want 16", r.VirtualNodes())
	}
	if r.Seed() != 3 {
		t.Fatalf("Seed() = %d, want 3", r.Seed())
	}
	one := mustRing(t, []string{"solo"}, Options{})
	if one.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("default vnodes = %d, want %d", one.VirtualNodes(), DefaultVirtualNodes)
	}
	for _, k := range testKeys(100) {
		if one.Owner(k) != "solo" {
			t.Fatal("single-member ring must own every key")
		}
	}
}

// testKeys mimics the shape of real ring keys (arc coordinates with
// shared prefixes and binary suffixes) without depending on modelcache.
func testKeys(n int) []string {
	keys := make([]string, n)
	cells := []string{"INV", "NAND2", "NOR2", "XOR2", "DFF"}
	for i := range keys {
		keys[i] = fmt.Sprintf("libhash\x00%s\x00ZN\x00A\x00cell_rise\x00%d", cells[i%len(cells)], i)
	}
	return keys
}
