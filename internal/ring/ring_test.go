package ring

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, members []string, opts Options) *Ring {
	t.Helper()
	r, err := New(members, opts)
	if err != nil {
		t.Fatalf("New(%v): %v", members, err)
	}
	return r
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := New(nil, Options{}); err != ErrNoMembers {
		t.Fatalf("empty membership: got %v, want ErrNoMembers", err)
	}
	if _, err := New([]string{"a", ""}, Options{}); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, Options{}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// Placement is a pure function of (members, seed, vnodes): member order
// must not matter, and rebuilding must agree point for point.
func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	keys := testKeys(2000)
	a := mustRing(t, []string{"a", "b", "c"}, Options{Seed: 42})
	b := mustRing(t, []string{"c", "a", "b"}, Options{Seed: 42})
	c := mustRing(t, []string{"b", "c", "a"}, Options{Seed: 42})
	for _, k := range keys {
		if o := a.Owner(k); o != b.Owner(k) || o != c.Owner(k) {
			t.Fatalf("owner of %q depends on member order: %q / %q / %q",
				k, o, b.Owner(k), c.Owner(k))
		}
	}
	// Different seed must actually move keys.
	d := mustRing(t, []string{"a", "b", "c"}, Options{Seed: 43})
	moved := 0
	for _, k := range keys {
		if a.Owner(k) != d.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved zero keys")
	}
}

// Balance: with default vnodes no member's share strays further than
// 25% from fair over a large key population.
func TestRingBalance(t *testing.T) {
	members := []string{"replica-a", "replica-b", "replica-c"}
	r := mustRing(t, members, Options{Seed: 7})
	keys := testKeys(30000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		share := float64(counts[m]) / fair
		if share < 0.75 || share > 1.25 {
			t.Errorf("member %s owns %.0f%% of fair share (count %d)", m, share*100, counts[m])
		}
	}
}

// Minimal movement: removing one member only reassigns keys that member
// owned; every key owned by a survivor keeps its owner.
func TestRingMinimalMovementOnMemberLoss(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	full := mustRing(t, members, Options{Seed: 99})
	keys := testKeys(10000)
	for _, gone := range members {
		var rest []string
		for _, m := range members {
			if m != gone {
				rest = append(rest, m)
			}
		}
		shrunk := mustRing(t, rest, Options{Seed: 99})
		for _, k := range keys {
			before, after := full.Owner(k), shrunk.Owner(k)
			if before != gone && before != after {
				t.Fatalf("removing %s moved key %q from survivor %s to %s", gone, k, before, after)
			}
			if before == gone && after == gone {
				t.Fatalf("removed member %s still owns key %q", gone, k)
			}
		}
	}
}

// Adding a member back restores exactly the original assignment
// (membership + seed fully determine placement).
func TestRingMemberRejoinRestoresAssignment(t *testing.T) {
	members := []string{"a", "b", "c"}
	orig := mustRing(t, members, Options{Seed: 5})
	rejoined := mustRing(t, []string{"c", "b", "a"}, Options{Seed: 5})
	for _, k := range testKeys(5000) {
		if orig.Owner(k) != rejoined.Owner(k) {
			t.Fatalf("rejoin changed owner of %q: %s → %s", k, orig.Owner(k), rejoined.Owner(k))
		}
	}
}

func TestRingAccessors(t *testing.T) {
	r := mustRing(t, []string{"b", "a"}, Options{VirtualNodes: 16, Seed: 3})
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members() = %v, want sorted [a b]", got)
	}
	if r.VirtualNodes() != 16 {
		t.Fatalf("VirtualNodes() = %d, want 16", r.VirtualNodes())
	}
	if r.Seed() != 3 {
		t.Fatalf("Seed() = %d, want 3", r.Seed())
	}
	one := mustRing(t, []string{"solo"}, Options{})
	if one.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("default vnodes = %d, want %d", one.VirtualNodes(), DefaultVirtualNodes)
	}
	for _, k := range testKeys(100) {
		if one.Owner(k) != "solo" {
			t.Fatal("single-member ring must own every key")
		}
	}
}

// testKeys mimics the shape of real ring keys (arc coordinates with
// shared prefixes and binary suffixes) without depending on modelcache.
func testKeys(n int) []string {
	keys := make([]string, n)
	cells := []string{"INV", "NAND2", "NOR2", "XOR2", "DFF"}
	for i := range keys {
		keys[i] = fmt.Sprintf("libhash\x00%s\x00ZN\x00A\x00cell_rise\x00%d", cells[i%len(cells)], i)
	}
	return keys
}
