// Package ring implements a deterministic consistent-hash ring used to
// shard lvf2d's model cache across a static replica fleet.
//
// Each member contributes a fixed number of virtual nodes; a virtual
// node's position is the FNV-64a hash of the member name, the ring
// seed and the virtual-node index, so placement is a pure function of
// (members, seed, virtual nodes). Every replica in a fleet builds the
// same ring from the same -peers list and therefore agrees on key
// ownership without any coordination traffic.
//
// Lookup hashes the key with FNV-64a and walks clockwise to the first
// virtual node (binary search over the sorted point list). Removing a
// member only reassigns the keys that member owned — the minimal
// movement property the tests pin down.
package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual node count used when
// Options.VirtualNodes is zero. 128 vnodes keep the max/min ownership
// share within ~20% of fair for small fleets (see TestRingBalance).
const DefaultVirtualNodes = 128

// ErrNoMembers is returned by New when the member list is empty.
var ErrNoMembers = errors.New("ring: no members")

// Options configures ring construction.
type Options struct {
	// VirtualNodes is the number of points each member contributes.
	// Zero means DefaultVirtualNodes.
	VirtualNodes int
	// Seed perturbs every virtual-node position. All replicas of a
	// fleet must agree on it; changing it reshuffles the whole ring.
	Seed uint64
	// Epoch is the membership version this ring belongs to. It does
	// not affect placement — only (members, seed, vnodes) do — but a
	// fleet advances it by exactly one per reconfiguration so replicas
	// can order membership documents.
	Epoch uint64
}

// Ring is an immutable consistent-hash ring. It is safe for concurrent
// use after construction.
type Ring struct {
	members []string // sorted, unique
	points  []point  // sorted by (hash, member, vnode)
	vnodes  int
	seed    uint64
	epoch   uint64
}

type point struct {
	hash   uint64
	member int32 // index into members
	vnode  int32 // tiebreak only, keeps sort fully deterministic
}

// New builds a ring over members. Member order does not matter — the
// list is sorted internally so every replica derives the same ring from
// the same fleet. Empty and duplicate member names are rejected.
func New(members []string, opts Options) (*Ring, error) {
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	vnodes := opts.VirtualNodes
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, errors.New("ring: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
	}

	r := &Ring{
		members: sorted,
		points:  make([]point, 0, len(sorted)*vnodes),
		vnodes:  vnodes,
		seed:    opts.Seed,
		epoch:   opts.Epoch,
	}
	var buf [8]byte
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			binary.LittleEndian.PutUint64(buf[:], opts.Seed)
			h.Write(buf[:])
			h.Write([]byte(m))
			h.Write([]byte{0}) // separate name from index: "ab"+1 != "a"+"b1"
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
			r.points = append(r.points, point{hash: mix64(h.Sum64()), member: int32(mi), vnode: int32(v)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.member != b.member {
			return a.member < b.member
		}
		return a.vnode < b.vnode
	})
	return r, nil
}

// Owner returns the member that owns key: the member of the first
// virtual node clockwise from the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	return r.ownerAtHash(KeyHash(key))
}

// KeyHash returns the position a key occupies on the ring. Exposed so
// callers can relate keys to the hash ranges reported by Derive.
func KeyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// ownerAtHash resolves a raw ring position to its owning member.
func (r *Ring) ownerAtHash(kh uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// RangeDesc describes one arc of the hash circle whose owner changes
// between two consecutive ring epochs. The arc is the half-open
// interval (Lo, Hi]; Lo > Hi means it wraps past the top of the hash
// space, and Lo == Hi means the entire circle.
type RangeDesc struct {
	Lo   uint64 // exclusive lower bound
	Hi   uint64 // inclusive upper bound
	From string // owner in the ring Derive was called on
	To   string // owner in the derived ring
}

// Contains reports whether a ring position falls inside the arc.
func (d RangeDesc) Contains(kh uint64) bool {
	switch {
	case d.Lo < d.Hi:
		return kh > d.Lo && kh <= d.Hi
	case d.Lo > d.Hi: // wraps past the top of the hash space
		return kh > d.Lo || kh <= d.Hi
	default: // Lo == Hi: the whole circle
		return true
	}
}

// Derive builds the next-epoch ring over members — same seed and
// virtual-node count, epoch advanced by one — and reports exactly which
// hash ranges change owner. Keys outside every returned range keep
// their owner (see TestRingDeriveOwnerStableOutsideMoved); for keys
// inside a range, From is the owner under r and To the owner under the
// derived ring.
func (r *Ring) Derive(members []string) (*Ring, []RangeDesc, error) {
	next, err := New(members, Options{
		VirtualNodes: r.vnodes,
		Seed:         r.seed,
		Epoch:        r.epoch + 1,
	})
	if err != nil {
		return nil, nil, err
	}
	return next, movedRanges(r, next), nil
}

// movedRanges computes the arcs whose owner differs between two rings.
// The sorted union of both rings' virtual-node positions cuts the
// circle into elementary arcs with no interior point, so each ring's
// owner is constant across an arc and equals ownerAtHash(arc upper
// bound). Adjacent arcs with the same (From, To) pair are coalesced.
func movedRanges(old, next *Ring) []RangeDesc {
	bounds := make([]uint64, 0, len(old.points)+len(next.points))
	for _, p := range old.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range next.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != bounds[i-1] {
			uniq = append(uniq, b)
		}
	}
	bounds = uniq

	var moved []RangeDesc
	for i, hi := range bounds {
		lo := bounds[(i+len(bounds)-1)%len(bounds)] // wrap arc when i == 0
		from, to := old.ownerAtHash(hi), next.ownerAtHash(hi)
		if from == to {
			continue
		}
		if n := len(moved); n > 0 && moved[n-1].Hi == lo &&
			moved[n-1].From == from && moved[n-1].To == to {
			moved[n-1].Hi = hi
			continue
		}
		moved = append(moved, RangeDesc{Lo: lo, Hi: hi, From: from, To: to})
	}
	// The first emitted arc may be the wrap arc (Lo = top boundary);
	// if the last arc abuts it with the same owners, merge across the
	// wrap by extending the wrap arc downward.
	if n := len(moved); n > 1 {
		first, last := &moved[0], &moved[n-1]
		if first.Lo == last.Hi && first.From == last.From && first.To == last.To {
			first.Lo = last.Lo
			moved = moved[:n-1]
		}
	}
	return moved
}

// mix64 is the splitmix64 finalizer. FNV-64a alone leaves correlated
// low bits across inputs that share long prefixes (vnode points differ
// only in their trailing index; arc keys share library/cell prefixes),
// which clusters points and skews ownership shares badly; the finalizer
// restores full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Members returns the sorted member list. The caller must not mutate it.
func (r *Ring) Members() []string { return r.members }

// VirtualNodes returns the per-member virtual node count in effect.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Seed returns the placement seed the ring was built with.
func (r *Ring) Seed() uint64 { return r.seed }

// Epoch returns the membership epoch the ring was built at.
func (r *Ring) Epoch() uint64 { return r.epoch }
