// Package ring implements a deterministic consistent-hash ring used to
// shard lvf2d's model cache across a static replica fleet.
//
// Each member contributes a fixed number of virtual nodes; a virtual
// node's position is the FNV-64a hash of the member name, the ring
// seed and the virtual-node index, so placement is a pure function of
// (members, seed, virtual nodes). Every replica in a fleet builds the
// same ring from the same -peers list and therefore agrees on key
// ownership without any coordination traffic.
//
// Lookup hashes the key with FNV-64a and walks clockwise to the first
// virtual node (binary search over the sorted point list). Removing a
// member only reassigns the keys that member owned — the minimal
// movement property the tests pin down.
package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual node count used when
// Options.VirtualNodes is zero. 128 vnodes keep the max/min ownership
// share within ~20% of fair for small fleets (see TestRingBalance).
const DefaultVirtualNodes = 128

// ErrNoMembers is returned by New when the member list is empty.
var ErrNoMembers = errors.New("ring: no members")

// Options configures ring construction.
type Options struct {
	// VirtualNodes is the number of points each member contributes.
	// Zero means DefaultVirtualNodes.
	VirtualNodes int
	// Seed perturbs every virtual-node position. All replicas of a
	// fleet must agree on it; changing it reshuffles the whole ring.
	Seed uint64
}

// Ring is an immutable consistent-hash ring. It is safe for concurrent
// use after construction.
type Ring struct {
	members []string // sorted, unique
	points  []point  // sorted by (hash, member, vnode)
	vnodes  int
	seed    uint64
}

type point struct {
	hash   uint64
	member int32 // index into members
	vnode  int32 // tiebreak only, keeps sort fully deterministic
}

// New builds a ring over members. Member order does not matter — the
// list is sorted internally so every replica derives the same ring from
// the same fleet. Empty and duplicate member names are rejected.
func New(members []string, opts Options) (*Ring, error) {
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	vnodes := opts.VirtualNodes
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, errors.New("ring: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
	}

	r := &Ring{
		members: sorted,
		points:  make([]point, 0, len(sorted)*vnodes),
		vnodes:  vnodes,
		seed:    opts.Seed,
	}
	var buf [8]byte
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			binary.LittleEndian.PutUint64(buf[:], opts.Seed)
			h.Write(buf[:])
			h.Write([]byte(m))
			h.Write([]byte{0}) // separate name from index: "ab"+1 != "a"+"b1"
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
			r.points = append(r.points, point{hash: mix64(h.Sum64()), member: int32(mi), vnode: int32(v)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.member != b.member {
			return a.member < b.member
		}
		return a.vnode < b.vnode
	})
	return r, nil
}

// Owner returns the member that owns key: the member of the first
// virtual node clockwise from the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	kh := mix64(h.Sum64())
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// mix64 is the splitmix64 finalizer. FNV-64a alone leaves correlated
// low bits across inputs that share long prefixes (vnode points differ
// only in their trailing index; arc keys share library/cell prefixes),
// which clusters points and skews ownership shares badly; the finalizer
// restores full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Members returns the sorted member list. The caller must not mutate it.
func (r *Ring) Members() []string { return r.members }

// VirtualNodes returns the per-member virtual node count in effect.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Seed returns the placement seed the ring was built with.
func (r *Ring) Seed() uint64 { return r.seed }
