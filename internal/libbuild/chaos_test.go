package libbuild

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"lvf2/internal/checkpoint"
	"lvf2/internal/faultinject"
	"lvf2/internal/liberty"
	"lvf2/internal/mc"
)

// Checkpoint chaos harness. Each seed expands deterministically into a
// kill-and-resume script: the build is killed at a random unit count,
// the journal is then (randomly) left intact, torn a few bytes short,
// or rotted with a byte flip, and the next round reopens it — taking
// the documented recovery path (torn tail tolerated; ErrCorruptJournal
// → Reset → cold start) — until a round runs to completion. Invariants:
//
//   - the final library is bit-identical to an uninterrupted build,
//   - a resumed round never refits a unit its journal had terminal,
//   - a rotten journal surfaces as ErrCorruptJournal, never a panic, a
//     crash or a silent partial resume.
//
// On failure the expanded script plus the journal segment files are
// written under CHAOS_ARTIFACT_DIR (or the system temp dir) for replay
// with -ckptchaos.seed.
var (
	ckptChaosSeeds = flag.Int("ckptchaos.seeds", 2, "how many randomized kill-and-resume scripts TestChaosCheckpointResume replays")
	ckptChaosSeed  = flag.Int64("ckptchaos.seed", 0, "replay only this chaos seed (0 = run -ckptchaos.seeds scripts)")
)

type ckptChaosStep struct {
	Op   string `json:"op"` // kill, tear, rot, reset, resume, final
	At   int    `json:"at,omitempty"`
	Path string `json:"path,omitempty"`
	Note string `json:"note,omitempty"`
}

type ckptChaosScript struct {
	Seed  uint64          `json:"seed"`
	Steps []ckptChaosStep `json:"steps"`
}

// chaosGolden computes the uninterrupted reference bytes once per test
// binary (the build is deterministic, so every seed shares it).
var chaosGolden struct {
	once sync.Once
	lib  []byte
}

func TestChaosCheckpointResume(t *testing.T) {
	seeds := make([]uint64, 0, *ckptChaosSeeds)
	if *ckptChaosSeed != 0 {
		seeds = append(seeds, uint64(*ckptChaosSeed))
	} else {
		for i := 0; i < *ckptChaosSeeds; i++ {
			seeds = append(seeds, uint64(4000+13*i))
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCkptChaosScript(t, seed)
		})
	}
}

func runCkptChaosScript(t *testing.T, seed uint64) {
	chaosGolden.once.Do(func() {
		chaosGolden.lib, _ = buildBytes(t, context.Background(), testConfig())
	})
	golden := chaosGolden.lib

	script := &ckptChaosScript{Seed: seed}
	fsys := faultinject.NewMemFS()
	defer func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("CHAOS_ARTIFACT_DIR")
		if dir == "" {
			dir = os.TempDir()
		}
		_ = os.MkdirAll(dir, 0o755)
		path := filepath.Join(dir, fmt.Sprintf("ckpt-chaos-failure-seed-%d.json", seed))
		b, _ := json.MarshalIndent(script, "", "  ")
		if err := os.WriteFile(path, b, 0o644); err == nil {
			t.Logf("chaos: failing script written to %s (replay with -ckptchaos.seed=%d)", path, seed)
		}
		// The journal segments themselves are the other half of the
		// artifact: the exact bytes the failing replay resumed from.
		for _, p := range fsys.Paths() {
			seg, err := fsys.ReadFile(p)
			if err != nil {
				continue
			}
			out := filepath.Join(dir, fmt.Sprintf("ckpt-chaos-seed-%d-%s", seed, filepath.Base(p)))
			if err := os.WriteFile(out, seg, 0o644); err == nil {
				t.Logf("chaos: journal segment preserved as %s", out)
			}
		}
	}()

	rng := mc.NewRNG(seed)
	step := func(s ckptChaosStep) { script.Steps = append(script.Steps, s) }

	const maxRounds = 6
	for round := 0; round < maxRounds; round++ {
		cfg := testConfig()
		j, err := checkpoint.Open(fsys, "ckpt", cfg.Fingerprint(), checkpoint.Options{FlushEvery: 4})
		if errors.Is(err, checkpoint.ErrCorruptJournal) {
			// The documented recovery: typed error, reset, cold start.
			step(ckptChaosStep{Op: "reset", Note: err.Error()})
			if err := checkpoint.Reset(fsys, "ckpt"); err != nil {
				t.Fatalf("Reset: %v", err)
			}
			j, err = checkpoint.Open(fsys, "ckpt", cfg.Fingerprint(), checkpoint.Options{FlushEvery: 4})
		}
		if err != nil {
			t.Fatalf("round %d: Open: %v", round, err)
		}
		terminal := make(map[checkpoint.Key]bool)
		for _, rec := range j.Records() {
			if rec.Status == checkpoint.StatusDone || rec.Status == checkpoint.StatusQuarantined {
				terminal[rec.Key] = true
			}
		}
		cfg.Journal = j
		cfg.fitHook = func(k checkpoint.Key) {
			if terminal[k] {
				t.Errorf("round %d: journaled unit %s refitted", round, k)
			}
		}

		final := round == maxRounds-1
		ctx, cancel := context.WithCancel(context.Background())
		if !final {
			killAt := 1 + int(rng.Uint64()%34) // anywhere in the 32-unit build, sometimes past it
			step(ckptChaosStep{Op: "kill", At: killAt})
			var fits atomic.Int64
			hook := cfg.fitHook
			cfg.fitHook = func(k checkpoint.Key) {
				hook(k)
				if int(fits.Add(1)) == killAt {
					cancel()
				}
			}
		} else {
			step(ckptChaosStep{Op: "final"})
		}

		lib, _, err := Build(ctx, cfg)
		cancel()
		j.Close()
		if err == nil {
			var buf bytes.Buffer
			if werr := liberty.WriteLibrary(&buf, lib); werr != nil {
				t.Fatalf("round %d: write: %v", round, werr)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Fatalf("round %d: completed library differs from golden (%d vs %d bytes)",
					round, buf.Len(), len(golden))
			}
			return // a completed round with golden bytes is the pass condition
		}
		if final {
			t.Fatalf("final uninterrupted round failed: %v", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: build failed with %v, want the injected cancellation", round, err)
		}

		// Post-kill damage: sometimes tear the newest segment, sometimes
		// rot a random one, sometimes leave the journal clean.
		paths := fsys.Paths()
		if len(paths) == 0 {
			continue
		}
		switch rng.Uint64() % 4 {
		case 0: // torn tail in the newest segment
			p := paths[len(paths)-1]
			b, _ := fsys.ReadFile(p)
			if n := len(b) - (1 + int(rng.Uint64()%16)); n > 0 {
				fsys.Truncate(p, n)
				step(ckptChaosStep{Op: "tear", Path: p, At: n})
			}
		case 1: // single-byte rot anywhere
			p := paths[int(rng.Uint64()%uint64(len(paths)))]
			b, _ := fsys.ReadFile(p)
			off := int(rng.Uint64() % uint64(len(b)))
			fsys.FlipByte(p, off)
			step(ckptChaosStep{Op: "rot", Path: p, At: off})
		default:
			step(ckptChaosStep{Op: "resume"})
		}
	}
	t.Fatalf("no round completed within %d attempts", maxRounds)
}
