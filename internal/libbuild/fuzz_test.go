package libbuild

import (
	"bytes"
	"math"
	"testing"

	"lvf2/internal/core"
	"lvf2/internal/fit"
)

// FuzzDecodeUnit hardens the unit-payload decoder against malformed
// journal bytes. A segment CRC only vouches that the bytes are what the
// writer sealed, not that the writer was sane — and over the
// distributed protocol a payload arrives with no CRC at all — so the
// decoder must reject truncated, oversized and length-corrupted
// payloads with an error, never a panic or a huge allocation, and must
// stay canonical: any accepted payload re-encodes to exactly the same
// bytes.
func FuzzDecodeUnit(f *testing.F) {
	m := core.Model{Lambda: 0.4,
		Theta1: core.Theta{Mean: 1.2e-2, Sigma: 4e-4, Skew: -0.3},
		Theta2: core.Theta{Mean: 1.9e-2, Sigma: 7e-4, Skew: 0.9}}
	valid := encodeUnit(0.0123, m, "INV/arc00 (1,2): LVF2→Gaussian", fit.WarmHit)
	f.Add(valid)
	f.Add(encodeUnit(math.NaN(), m, "", fit.WarmCold))
	f.Add(valid[:len(valid)-1])                       // provenance byte stripped (pre-warm-start layout)
	f.Add(valid[:len(valid)-3])                       // truncated note
	f.Add(valid[:unitFloats*8])                       // missing length word
	f.Add([]byte{})                                   // empty
	f.Add(bytes.Repeat([]byte{0xff}, unitFloats*8+4)) // note length 2^32-1, no note bytes
	invalidWarm := append([]byte{}, valid...)
	invalidWarm[len(invalidWarm)-1] = 0x7f
	f.Add(invalidWarm) // out-of-range warm-start outcome
	tooLong := append(append([]byte{}, valid...), bytes.Repeat([]byte{0}, maxUnitPayload)...)
	f.Add(tooLong) // oversized payload past the cap

	f.Fuzz(func(t *testing.T, b []byte) {
		nom, model, note, warm, err := decodeUnit(b)
		if err != nil {
			return
		}
		if len(b) > maxUnitPayload {
			t.Fatalf("oversized payload of %d bytes accepted", len(b))
		}
		// Canonical: an accepted payload round-trips bit-exactly, so a
		// journaled record and its re-encoding are interchangeable.
		if re := encodeUnit(nom, model, note, warm); !bytes.Equal(re, b) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", b, re)
		}
	})
}
