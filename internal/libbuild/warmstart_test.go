package libbuild

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/core"
	"lvf2/internal/faultinject"
	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// TestBuildWarmStartStats: a default (warm) build seeds every non-anchor
// LVF² fit and reports the outcomes; a ColdStart build seeds nothing.
func TestBuildWarmStartStats(t *testing.T) {
	_, warm := buildBytes(t, context.Background(), testConfig())
	if warm.WarmHits == 0 {
		t.Errorf("warm build produced no warm-start hits: %+v", warm)
	}
	// testConfig is 4 arcs × 2×2 grid × 2 kinds = 32 units. Only each
	// arc-kind's first-row anchor must start cold (8 units); every other
	// unit — second-row anchors included, via the column-0 chain — may be
	// seeded, so at most 24 fits can report a warm outcome.
	if got := warm.WarmHits + warm.WarmRejected; got > 24 {
		t.Errorf("%d seeded outcomes, want <= 24 (first-row anchors can never be seeded)", got)
	}

	cold := testConfig()
	cold.ColdStart = true
	_, cstats := buildBytes(t, context.Background(), cold)
	if cstats.WarmHits != 0 || cstats.WarmRejected != 0 {
		t.Errorf("cold build reported warm outcomes: %+v", cstats)
	}
}

// TestBuildWarmDeterminismAcrossWorkers: the warm-started library must
// be bit-identical regardless of worker parallelism — the row-anchor
// scheme makes every seed a pure function of the journal-payload domain,
// never of scheduling. Run under -race -cpu 1,4,8 by the CI target.
func TestBuildWarmDeterminismAcrossWorkers(t *testing.T) {
	base := testConfig()
	base.Char.Workers = 1
	golden, gstats := buildBytes(t, context.Background(), base)
	if gstats.WarmHits == 0 {
		t.Fatalf("determinism test needs warm hits to be meaningful: %+v", gstats)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg := testConfig()
		cfg.Char.Workers = workers
		out, stats := buildBytes(t, context.Background(), cfg)
		if !bytes.Equal(out, golden) {
			t.Errorf("Workers=%d library differs from Workers=1", workers)
		}
		if stats.WarmHits != gstats.WarmHits || stats.WarmRejected != gstats.WarmRejected {
			t.Errorf("Workers=%d warm stats (%d,%d) differ from Workers=1 (%d,%d)",
				workers, stats.WarmHits, stats.WarmRejected, gstats.WarmHits, gstats.WarmRejected)
		}
	}
}

// TestBuildPoisonAnchorColdRow poisons every Delay row anchor of one
// arc: the build must still complete with the anchors quarantined in
// the unchanged note format, and — because a quarantined anchor cannot
// seed — the rest of that arc's Delay rows must cold-start, while the
// arc's Transition units and every other arc keep warm-starting.
func TestBuildPoisonAnchorColdRow(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := testConfig()
	j := openTestJournal(t, fsys, cfg)
	cfg.Journal = j
	cfg.fitErr = func(k checkpoint.Key) error {
		if k.Arc == "INV/arc00" && k.Kind == "Delay" && k.Load == 0 {
			return errors.New("injected poison anchor")
		}
		return nil
	}
	var logBuf bytes.Buffer
	cfg.Log = &logBuf

	out, stats := buildBytes(t, context.Background(), cfg)
	if stats.Quarantined != 2 { // two rows → two poisoned Delay anchors
		t.Errorf("stats.Quarantined = %d, want 2", stats.Quarantined)
	}
	text := string(out)
	if !strings.Contains(text, "ocv_fallback_note") {
		t.Error("quarantined build emitted no ocv_fallback_note attribute")
	}
	if !strings.Contains(text, "quarantined after 2 attempts") {
		t.Error("quarantine note format changed")
	}

	// Inspect per-unit provenance straight from the journal payloads.
	warmOf := func(k checkpoint.Key) fit.WarmOutcome {
		rec, ok := j.Lookup(k)
		if !ok || rec.Payload == nil {
			t.Fatalf("unit %s not journaled with a payload", k)
		}
		_, _, _, warm, err := decodeUnit(rec.Payload)
		if err != nil {
			t.Fatalf("unit %s payload: %v", k, err)
		}
		return warm
	}
	for _, si := range []int{0, 4} {
		// The poisoned arc's non-anchor Delay units must have cold-started.
		k := checkpoint.Key{Cell: "INV", Pin: "A", Arc: "INV/arc00", Slew: si, Load: 4, Kind: "Delay"}
		if got := warmOf(k); got != fit.WarmCold {
			t.Errorf("unit %s after poisoned anchor: warm outcome %v, want cold", k, got)
		}
		// Its Transition siblings have healthy anchors and must be seeded.
		k.Kind = "Transition"
		if got := warmOf(k); got == fit.WarmCold {
			t.Errorf("unit %s with healthy anchor: warm outcome cold, want seeded", k)
		}
	}
	if stats.WarmHits == 0 {
		t.Errorf("unpoisoned arcs produced no warm hits: %+v", stats)
	}

	// Resume after the poisoned run: bit-identical, nothing refitted —
	// warm provenance restores from the journal like every other payload.
	j.Close()
	j2 := openTestJournal(t, fsys, cfg)
	cfg2 := testConfig()
	cfg2.Journal = j2
	cfg2.fitErr = cfg.fitErr
	cfg2.fitHook = func(k checkpoint.Key) { t.Errorf("unit %s refitted after full run", k) }
	resumed, _ := buildBytes(t, context.Background(), cfg2)
	if !bytes.Equal(resumed, out) {
		t.Error("resumed poisoned-anchor library differs")
	}
}

// TestWarmColdAccuracyGolden is the accuracy gate of the warm-start
// scheme on real characterised samples: for every non-anchor grid entry
// of an arc, the seeded fit's CDF must stay within tolerance of the cold
// fit's over the distribution's bulk.
func TestWarmColdAccuracyGolden(t *testing.T) {
	inv, _ := cells.CellByName("INV")
	arc := inv.Arcs()[0]
	charCfg := cells.CharConfig{Samples: 2000, Seed: 7, GridStride: 2}
	dists := cells.CharacterizeArc(charCfg, arc)

	byPoint := make(map[[2]int][]float64)
	for _, d := range dists {
		if d.Kind == cells.Delay {
			byPoint[[2]int{d.SlewIdx, d.LoadIdx}] = d.Samples
		}
	}

	const tol = 0.02
	checked := 0
	for _, p := range charCfg.SweepPoints() {
		if p.Col == 0 {
			continue
		}
		anchor := byPoint[[2]int{p.SlewIdx, 0}]
		xs := byPoint[[2]int{p.SlewIdx, p.LoadIdx}]
		coldAnchor, err := fit.FitLVF2(anchor, fit.Options{})
		if err != nil {
			t.Fatalf("anchor (%d,0): %v", p.SlewIdx, err)
		}
		coldHere, err := fit.FitLVF2(xs, fit.Options{})
		if err != nil {
			t.Fatalf("cold (%d,%d): %v", p.SlewIdx, p.LoadIdx, err)
		}
		warmHere, _, err := fit.FitLVF2Seeded(xs, fit.SeedOf(coldAnchor), fit.Options{})
		if err != nil {
			t.Fatalf("warm (%d,%d): %v", p.SlewIdx, p.LoadIdx, err)
		}
		if rmse := timingCDFRMSE(t, warmHere.Dist(), coldHere.Dist(), xs); rmse > tol {
			t.Errorf("(%d,%d): warm-vs-cold CDF RMSE %.4f > %.2f", p.SlewIdx, p.LoadIdx, rmse, tol)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no non-anchor points checked")
	}
}

// timingCDFRMSE evaluates the CDF gap over the sample's own range.
func timingCDFRMSE(t *testing.T, a, b stats.Dist, xs []float64) float64 {
	t.Helper()
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	const pts = 201
	var sum float64
	for i := 0; i < pts; i++ {
		x := lo + (hi-lo)*float64(i)/(pts-1)
		d := a.CDF(x) - b.CDF(x)
		sum += d * d
	}
	return math.Sqrt(sum / pts)
}

// TestFingerprintSeparatesWarmAndCold: a journal written in one start
// mode must not resume in the other — the payload streams differ.
func TestFingerprintSeparatesWarmAndCold(t *testing.T) {
	warm := testConfig()
	cold := testConfig()
	cold.ColdStart = true
	if warm.Fingerprint() == cold.Fingerprint() {
		t.Fatal("warm and cold configurations share a fingerprint")
	}

	fsys := faultinject.NewMemFS()
	j := openTestJournal(t, fsys, warm)
	warm.Journal = j
	buildBytes(t, context.Background(), warm)
	j.Close()
	if _, err := checkpoint.Open(fsys, "ckpt", cold.Fingerprint(), checkpoint.Options{}); !errors.Is(err, checkpoint.ErrFingerprintMismatch) {
		t.Fatalf("cold Open over warm journal = %v, want ErrFingerprintMismatch", err)
	}
}

// TestSeedFromModelUsesPayloadBits: the seed is a pure function of the
// decoded payload floats, so two decodes of the same payload (original
// run and resume) derive identical seeds.
func TestSeedFromModelUsesPayloadBits(t *testing.T) {
	m := core.Model{Lambda: 0.31,
		Theta1: core.Theta{Mean: 1.27e-2, Sigma: 3.1e-4, Skew: -0.42},
		Theta2: core.Theta{Mean: 1.81e-2, Sigma: 8.7e-4, Skew: 0.95}}
	payload := encodeUnit(1, m, "", fit.WarmCold)
	_, m1, _, _, err1 := decodeUnit(payload)
	_, m2, _, _, err2 := decodeUnit(append([]byte{}, payload...))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	s1, s2 := seedFromModel(m1), seedFromModel(m2)
	if *s1 != *s2 {
		t.Errorf("seeds from identical payloads differ: %+v vs %+v", s1, s2)
	}
}
