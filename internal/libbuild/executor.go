package libbuild

import (
	"context"
	"fmt"
	"sync"

	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/fit"
)

// UnitRef locates one work unit in the deterministic build plan: its
// checkpoint key plus the arc it characterises.
type UnitRef struct {
	Key checkpoint.Key
	Arc cells.Arc
}

// Plan enumerates every work unit of cfg in deterministic build order:
// arcs in library order, grid points in sweep order, Delay before
// Transition at each point. The distributed coordinator leases from
// exactly this sequence, so every process — coordinator, worker,
// single-machine build — agrees on the unit universe and its order.
func Plan(cfg Config) ([]UnitRef, error) {
	if len(cfg.Types) == 0 {
		return nil, fmt.Errorf("libbuild: no cell types")
	}
	cfg.Char = cfg.Char.WithDefaults()
	jobs, _ := planJobs(cfg)
	points := gridPoints(cfg.Char)
	refs := make([]UnitRef, 0, len(jobs)*len(points)*2)
	for _, j := range jobs {
		for _, p := range points {
			for _, kind := range [...]cells.Kind{cells.Delay, cells.Transition} {
				refs = append(refs, UnitRef{
					Key: checkpoint.Key{Cell: j.arc.Cell, Pin: j.pin, Arc: j.arc.Label,
						Slew: p.si, Load: p.li, Kind: kind.String()},
					Arc: j.arc,
				})
			}
		}
	}
	return refs, nil
}

// arcCoord indexes an executor's plan by the key fields that name an arc.
type arcCoord struct{ cell, pin, arc string }

// pointSamples is one characterised grid point: the two distributions
// (Delay, Transition) its pair of units fit from.
type pointSamples struct {
	coord  arcCoord
	si, li int
	byKind map[string]cells.Distribution
}

// Executor computes work-unit payloads outside the in-process build
// loop — the seam a distributed worker runs leased checkpoint units
// through. Execute characterises the unit's grid point on demand and
// fits through the same code path as Build, so a payload computed
// remotely is bit-identical to one computed locally. A small cache of
// characterised points lets the sibling unit of a pair lease (Delay and
// Transition of one grid point) reuse the Monte-Carlo pass, mirroring
// the MC sharing of the single-process build.
type Executor struct {
	// FitHook observes every primary fit attempt before it runs; FitErr
	// injects a unit fault. Both are test seams, mirroring the Config
	// ones the in-process build uses.
	FitHook func(checkpoint.Key)
	FitErr  func(checkpoint.Key) error

	cfg  Config
	jobs map[arcCoord]arcJob

	mu    sync.Mutex
	cache []pointSamples
	seeds map[seedCoord]*fit.Seed
}

// seedCoord names one link of the warm-start seed chains: the arc, the
// grid point and the fitted kind.
type seedCoord struct {
	coord  arcCoord
	si, li int
	kind   string
}

// executorCachePoints bounds the characterised-point cache. Leases
// arrive point by point, so a worker only ever needs the last few.
const executorCachePoints = 4

// NewExecutor builds the executor for one build configuration. The
// configuration must match the coordinator's bit for bit (same
// fingerprint) or the fitted payloads would diverge.
func NewExecutor(cfg Config) (*Executor, error) {
	if len(cfg.Types) == 0 {
		return nil, fmt.Errorf("libbuild: executor: no cell types")
	}
	cfg.Char = cfg.Char.WithDefaults()
	jobs, _ := planJobs(cfg)
	byCoord := make(map[arcCoord]arcJob, len(jobs))
	for _, j := range jobs {
		byCoord[arcCoord{cell: j.arc.Cell, pin: j.pin, arc: j.arc.Label}] = j
	}
	return &Executor{cfg: cfg, jobs: byCoord}, nil
}

// Fingerprint is the executor's configuration fingerprint, stamped on
// every distributed result submission.
func (e *Executor) Fingerprint() checkpoint.Fingerprint { return e.cfg.Fingerprint() }

// point returns the characterised distributions of one grid point,
// running the Monte-Carlo pass on a cache miss.
func (e *Executor) point(ctx context.Context, job arcJob, coord arcCoord, si, li int) (map[string]cells.Distribution, error) {
	e.mu.Lock()
	for _, p := range e.cache {
		if p.coord == coord && p.si == si && p.li == li {
			byKind := p.byKind
			e.mu.Unlock()
			return byKind, nil
		}
	}
	e.mu.Unlock()

	charCfg := e.cfg.Char
	charCfg.Skip = func(_ cells.Arc, psi, pli int) bool { return psi != si || pli != li }
	dists, err := cells.CharacterizeArcCtx(ctx, charCfg, job.arc)
	if err != nil {
		return nil, err
	}
	byKind := make(map[string]cells.Distribution, len(dists))
	for _, d := range dists {
		byKind[d.Kind.String()] = d
	}

	e.mu.Lock()
	e.cache = append(e.cache, pointSamples{coord: coord, si: si, li: li, byKind: byKind})
	if len(e.cache) > executorCachePoints {
		e.cache = e.cache[len(e.cache)-executorCachePoints:]
	}
	e.mu.Unlock()
	return byKind, nil
}

// lookup resolves a unit key against the build plan.
func (e *Executor) lookup(k checkpoint.Key) (arcJob, arcCoord, error) {
	coord := arcCoord{cell: k.Cell, pin: k.Pin, arc: k.Arc}
	job, ok := e.jobs[coord]
	if !ok {
		return arcJob{}, coord, fmt.Errorf("libbuild: executor: unit %s is not in the build plan", k)
	}
	if k.Slew < 0 || k.Slew >= len(e.cfg.Char.Grid.Slews) || k.Load < 0 || k.Load >= len(e.cfg.Char.Grid.Loads) {
		return arcJob{}, coord, fmt.Errorf("libbuild: executor: unit %s addresses an off-grid point", k)
	}
	return job, coord, nil
}

// Execute characterises and fits one work unit, returning the payload
// the journal would hold for a Done record.
func (e *Executor) Execute(ctx context.Context, k checkpoint.Key) ([]byte, error) {
	job, coord, err := e.lookup(k)
	if err != nil {
		return nil, err
	}
	if e.FitHook != nil {
		e.FitHook(k)
	}
	if e.FitErr != nil {
		if ferr := e.FitErr(k); ferr != nil {
			return nil, ferr
		}
	}
	byKind, err := e.point(ctx, job, coord, k.Slew, k.Load)
	if err != nil {
		return nil, err
	}
	d, have := byKind[k.Kind]
	if !have {
		return nil, fmt.Errorf("libbuild: executor: no samples for unit %s", k)
	}
	seed, err := e.unitSeed(ctx, job, coord, k)
	if err != nil {
		return nil, err
	}
	requested := requestedModel(e.cfg)
	return fitUnitPayload(requested, e.cfg.Char.GridStride, k, d, seed)
}

// seedCacheEntries bounds the seed-chain cache. Leases arrive in plan
// order, so a worker only ever revisits the last few rows; the bound
// just keeps a long-lived worker from accumulating every link it has
// ever fitted.
const seedCacheEntries = 512

// unitSeed derives the warm-start seed for unit k. A worker cannot read
// the coordinator's journal, so it recomputes what the in-process build
// would have journaled: every fit along the way is a pure function of
// the arc configuration and the point's deterministic samples, which
// makes the recomputed seed — and therefore the submitted payload —
// bit-identical to what an in-process build derives from its own
// journal. A column-0 (anchor) unit is seeded by the previous row's
// anchor, the column-0 chain walked from the arc's first row, which
// always fits cold; any other unit is seeded by its nearest fitted left
// neighbour in the row. Non-LVF² builds and ColdStart builds seed nil.
func (e *Executor) unitSeed(ctx context.Context, job arcJob, coord arcCoord, k checkpoint.Key) (*fit.Seed, error) {
	if requestedModel(e.cfg) != fit.ModelLVF2 || e.cfg.ColdStart {
		return nil, nil
	}
	if k.Load == 0 {
		return e.seedAfter(ctx, job, coord, k, k.Slew-e.gridStride(), 0)
	}
	return e.seedAfter(ctx, job, coord, k, k.Slew, k.Load-e.gridStride())
}

// gridStride is the slew/load index step between swept grid points.
func (e *Executor) gridStride() int {
	if s := e.cfg.Char.GridStride; s > 0 {
		return s
	}
	return 1
}

// seedAfter returns the seed available after the fit of point (si, li)
// of k's arc and kind — i.e. what the in-process build's rowSeed (or,
// at li == 0, its column-0 anchor) holds once that unit resolves: the
// unit's own decoded model when the fit is clean; past a dirty mid-row
// unit, the nearest clean left neighbour passes through; a dirty anchor
// yields nil (both chains cold-start). It recurses left along the row
// and up the column-0 chain, reusing cached links.
func (e *Executor) seedAfter(ctx context.Context, job arcJob, coord arcCoord, k checkpoint.Key, si, li int) (*fit.Seed, error) {
	if si < 0 {
		return nil, nil
	}
	ck := seedCoord{coord: coord, si: si, li: li, kind: k.Kind}
	e.mu.Lock()
	seed, cached := e.seeds[ck]
	e.mu.Unlock()
	if cached {
		return seed, nil
	}

	var prior *fit.Seed
	var err error
	if li == 0 {
		prior, err = e.seedAfter(ctx, job, coord, k, si-e.gridStride(), 0)
	} else {
		prior, err = e.seedAfter(ctx, job, coord, k, si, li-e.gridStride())
		seed = prior // a dirty mid-row fit passes its left neighbour through
	}
	if err != nil {
		return nil, err
	}
	byKind, err := e.point(ctx, job, coord, si, li)
	if err != nil {
		return nil, err
	}
	if d, have := byKind[k.Kind]; have {
		uk := checkpoint.Key{Cell: k.Cell, Pin: k.Pin, Arc: k.Arc, Slew: si, Load: li, Kind: k.Kind}
		if payload, ferr := fitUnitPayload(fit.ModelLVF2, e.cfg.Char.GridStride, uk, d, prior); ferr == nil {
			if _, m, note, _, derr := decodeUnit(payload); derr == nil && note == "" {
				seed = seedFromModel(m)
			}
		}
	}

	e.mu.Lock()
	if e.seeds == nil || len(e.seeds) >= seedCacheEntries {
		e.seeds = make(map[seedCoord]*fit.Seed, 16)
	}
	e.seeds[ck] = seed
	e.mu.Unlock()
	return seed, nil
}

// Salvage runs the quarantine ladder for a poison unit, returning the
// degraded payload and the rung that produced it. The floored-Gaussian
// terminal rung cannot fail, so Salvage only errors on cancellation or
// a unit outside the plan.
func (e *Executor) Salvage(ctx context.Context, k checkpoint.Key) (payload []byte, rung string, err error) {
	job, coord, err := e.lookup(k)
	if err != nil {
		return nil, "", err
	}
	byKind, err := e.point(ctx, job, coord, k.Slew, k.Load)
	if err != nil {
		return nil, "", err
	}
	d, have := byKind[k.Kind]
	payload, rung = salvageUnitPayload(d, have)
	return payload, rung, nil
}
