package libbuild

import (
	"context"
	"testing"

	"lvf2/internal/cells"
)

// benchConfig is the library-scale workload of the cells/sec benchmark:
// four cell types on a 4×4 subsampled grid — 128 grid points, 256 LVF²
// fits per build — enough rows for the warm-start scheme to amortise its
// per-row cold anchors.
func benchConfig(short bool) Config {
	names := []string{"INV", "BUFF", "NAND2", "NOR2"}
	cfg := Config{
		ArcsPer: 2,
		Char: cells.CharConfig{
			Samples:    1500,
			Seed:       42,
			GridStride: 2,
		},
		LVF2: true,
	}
	if short {
		// The -short smoke pass only guards against bench-code rot; a
		// two-cell 2×2 sweep exercises every path in seconds.
		names = names[:2]
		cfg.ArcsPer = 1
		cfg.Char.Samples = 400
		cfg.Char.GridStride = 4
	}
	for _, n := range names {
		ct, _ := cells.CellByName(n)
		cfg.Types = append(cfg.Types, ct)
	}
	return cfg
}

// runCharLib measures full library builds — characterise, fit, assemble —
// and reports throughput as cells/sec, the tracked metric of the
// warm-start optimisation (acceptance: warm ≥2× cold).
func runCharLib(b *testing.B, coldStart bool) {
	cfg := benchConfig(testing.Short())
	cfg.ColdStart = coldStart
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	var warmHits, warmRejected int
	for i := 0; i < b.N; i++ {
		_, stats, err := Build(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		warmHits, warmRejected = stats.WarmHits, stats.WarmRejected
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(len(cfg.Types)*b.N)/secs, "cells/sec")
	}
	b.ReportMetric(float64(warmHits), "warm-hits")
	b.ReportMetric(float64(warmRejected), "warm-rejected")
}

// BenchmarkCharLibWarm is the optimised path: neighbour-seeded fits over
// the deterministic sweep order.
func BenchmarkCharLibWarm(b *testing.B) { runCharLib(b, false) }

// BenchmarkCharLibCold is the baseline: every fit multi-starts from
// scratch, as every build did before warm-start characterisation.
func BenchmarkCharLibCold(b *testing.B) { runCharLib(b, true) }
