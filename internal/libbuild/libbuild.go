// Package libbuild is the characterise → fit → emit engine behind the
// libgen CLI: it builds the Liberty library for a set of cell types,
// one journaled work unit per (arc, slew, load, kind) fit. Extracting
// it from the CLI lets the checkpoint tests drive the real emission
// path in-process — kill a build mid-run, reopen the journal, and
// assert the resumed library is bit-identical to an uninterrupted one.
//
// Work units go through checkpoint.Runner: a unit already journaled as
// done or quarantined is restored (never refitted — its payload holds
// the fitted model parameters bit-exactly), a failing unit is retried
// with jittered backoff, and a poison unit is quarantined with a
// degraded emission from the fit.FitRobust ladder so one bad arc never
// blocks the other 24 cell types. Monte-Carlo evaluation is shared per
// grid point and skipped entirely when both of the point's units are
// already resolved.
package libbuild

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/pool"
)

// TemplateName is the lu_table_template of the emitted library.
const TemplateName = "delay_template_8x8"

// LibraryName is the emitted library's name attribute.
const LibraryName = "lvf2_synth22"

// Config controls one library build.
type Config struct {
	// Types are the cell types to characterise (required).
	Types []cells.CellType
	// ArcsPer is the requested arcs per cell type. Every input pin needs
	// at least one timing arc or downstream STA paths would silently
	// truncate, so the effective count is max(ArcsPer, input pins).
	ArcsPer int
	// Char configures the Monte-Carlo characterisation (samples, seed,
	// grid stride, corner). Its Skip field is owned by the build.
	Char cells.CharConfig
	// LVF2 selects the paper's LVF² attribute set; false emits classic
	// LVF only.
	LVF2 bool
	// ColdStart disables warm-start seeding: every LVF² fit runs the full
	// exploratory multi-start. Warm and cold libraries agree to the
	// accuracy tolerance (the warm gate enforces it) but are not
	// byte-identical; the determinism guarantee — same bytes across
	// Workers counts, resume and distribution — holds separately within
	// each mode. This knob exists for the cells/sec baseline benchmark
	// and for bisecting fit regressions.
	ColdStart bool
	// Journal, when non-nil, makes the build resumable: every unit
	// outcome is journaled and terminal units are restored on the next
	// run instead of recomputed.
	Journal *checkpoint.Journal
	// Retry tunes the per-unit retry/backoff/quarantine policy.
	Retry checkpoint.RetryPolicy
	// Log receives fallback and quarantine notes (default: discarded).
	Log io.Writer

	// Test seams: fitHook observes every fresh (non-restored) fit attempt
	// before it runs; fitErr injects a unit fault. Both see the unit key.
	fitHook func(checkpoint.Key)
	fitErr  func(checkpoint.Key) error
}

// Fingerprint canonicalises the configuration fields that must match
// for journaled results to be bit-identical to recomputation.
func (c Config) Fingerprint() checkpoint.Fingerprint {
	ch := c.Char.WithDefaults()
	names := make([]string, len(c.Types))
	for i, t := range c.Types {
		names[i] = t.Name
	}
	format := "lvf"
	if c.LVF2 {
		format = "lvf2"
	}
	// warm-nn names the nearest-left-neighbour seeding scheme; journals
	// written by the older row-anchor scheme ("warm") fit different
	// payload bits mid-row and must not resume under this one.
	start := "warm-nn"
	if c.ColdStart {
		start = "cold"
	}
	return checkpoint.Fingerprint{
		Library:    fmt.Sprintf("%s/%s/arcs=%d", LibraryName, strings.Join(names, ","), c.ArcsPer),
		Seed:       ch.Seed,
		Samples:    ch.Samples,
		GridStride: ch.GridStride,
		// start matters because warm and cold payloads differ: a journal
		// written in one mode must not be resumed in the other.
		Options: fmt.Sprintf("format=%s,start=%s", format, start),
	}
}

// Stats summarises a build for logs and the resume-skip-ratio gauge.
type Stats struct {
	Units       int // work units resolved (2 per visited grid point)
	Restored    int // units restored from the journal, not recomputed
	Quarantined int // units emitted by a quarantine salvage rung
	Fallbacks   int // units carrying a fallback/quarantine note
	// Warm-start outcomes of the fresh (non-restored) fits: a hit skipped
	// the exploratory multi-start, a rejection paid one gate check on top
	// of the cold fit it fell back to. Fresh fits minus the two are
	// unseeded cold fits (first-row anchors, units downstream of a broken
	// seed chain, non-LVF² rungs, ColdStart builds).
	WarmHits     int
	WarmRejected int
}

// arcJob is one arc's slot in deterministic library order.
type arcJob struct {
	typeIdx int
	arc     cells.Arc
	pin     string // related input pin (checkpoint key + Liberty related_pin)
}

// arcTables is the per-arc build product, assembled after the pool so
// the emitted library is independent of worker scheduling.
type arcTables struct {
	delay, trans *liberty.TimingModel
	stats        Stats
}

// planJobs enumerates the arcs of a build in deterministic library
// order, together with each cell type's input pin names. Build and the
// distributed plan/executor share it so every process agrees on the
// unit universe.
func planJobs(cfg Config) (jobs []arcJob, pinsOf [][]string) {
	pinsOf = make([][]string, len(cfg.Types))
	for ti, ct := range cfg.Types {
		pins := InputPins(ct.Inputs)
		pinsOf[ti] = pins
		arcList := ct.Arcs()
		want := cfg.ArcsPer
		if want < len(pins) {
			want = len(pins)
		}
		if want > 0 && len(arcList) > want {
			arcList = arcList[:want]
		}
		for _, arc := range arcList {
			jobs = append(jobs, arcJob{typeIdx: ti, arc: arc, pin: pins[arc.Index%len(pins)]})
		}
	}
	return jobs, pinsOf
}

// Build characterises cfg.Types and returns the Liberty library group,
// ready for liberty.WriteLibrary. On error (including cancellation) the
// journal still holds every unit sealed so far, so a rerun against the
// same journal resumes instead of restarting.
func Build(ctx context.Context, cfg Config) (*liberty.Group, Stats, error) {
	cfg.Char = cfg.Char.WithDefaults()
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if len(cfg.Types) == 0 {
		return nil, Stats{}, errors.New("libbuild: no cell types")
	}
	// Seal whatever the run produced even on the error paths: resumability
	// of a failed run is the whole point of the journal.
	defer cfg.Journal.Flush()

	jobs, pinsOf := planJobs(cfg)
	results := make([]arcTables, len(jobs))
	labels := make([]string, len(jobs))
	for i, j := range jobs {
		labels[i] = j.arc.Label
	}
	runner := &checkpoint.Runner{Journal: cfg.Journal, Policy: cfg.Retry}
	err := pool.ForEachLabeled(ctx, pool.Options{Workers: cfg.Char.Workers, TaskTimeout: cfg.Char.ArcTimeout}, labels,
		func(tctx context.Context, i int) error {
			t, berr := buildArc(tctx, cfg, runner, jobs[i].arc, jobs[i].pin)
			if berr != nil {
				return berr
			}
			results[i] = t
			return nil
		})

	var stats Stats
	for _, r := range results {
		stats.Units += r.stats.Units
		stats.Restored += r.stats.Restored
		stats.Quarantined += r.stats.Quarantined
		stats.Fallbacks += r.stats.Fallbacks
		stats.WarmHits += r.stats.WarmHits
		stats.WarmRejected += r.stats.WarmRejected
	}
	cfg.Journal.SetResumeSkipRatio(stats.Restored, stats.Units)
	if err != nil {
		return nil, stats, err
	}

	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{
		Name:        LibraryName,
		Voltage:     cfg.Char.Corner.VDD,
		TempC:       cfg.Char.Corner.TempC,
		ProcessName: "synthetic22-TTGlobal_LocalMC",
	}, TemplateName, cfg.Char.Grid.Slews, cfg.Char.Grid.Loads)
	job := 0
	for ti, ct := range cfg.Types {
		outPin := liberty.AddCell(lib, ct.Name, pinsOf[ti], ct.Base.CapIn, "ZN", "")
		for ; job < len(jobs) && jobs[job].typeIdx == ti; job++ {
			timing := liberty.AddTiming(outPin, jobs[job].pin, "positive_unate")
			results[job].delay.AppendTo(timing, TemplateName, cfg.LVF2)
			results[job].trans.AppendTo(timing, TemplateName, cfg.LVF2)
		}
	}
	return lib, stats, nil
}

// gridPoint is one visited (slew, load) coordinate: raw grid indices
// (the checkpoint key / RNG seed domain) and matrix indices (the
// emitted table domain).
type gridPoint struct {
	si, li int // raw grid indices
	mi, mj int // matrix (table) indices: raw / stride
}

type distKey struct {
	si, li int
	kind   cells.Kind
}

// gridPoints enumerates the visited (slew, load) coordinates of a
// characterisation grid in deterministic sweep order.
func gridPoints(char cells.CharConfig) []gridPoint {
	stride := char.GridStride
	var points []gridPoint
	for si := 0; si < len(char.Grid.Slews); si += stride {
		for li := 0; li < len(char.Grid.Loads); li += stride {
			points = append(points, gridPoint{si: si, li: li, mi: si / stride, mj: li / stride})
		}
	}
	return points
}

// buildArc resolves one arc's units and assembles its delay/transition
// timing models. Notes are accumulated in grid order (the order the
// sequential pipeline produced them), so a resumed build emits the
// same ocv_fallback_note_* strings as an uninterrupted one.
func buildArc(ctx context.Context, cfg Config, runner *checkpoint.Runner, arc cells.Arc, pin string) (arcTables, error) {
	grid := cfg.Char.Grid
	stride := cfg.Char.GridStride
	var idx1, idx2 []float64
	for i := 0; i < len(grid.Slews); i += stride {
		idx1 = append(idx1, grid.Slews[i])
	}
	for j := 0; j < len(grid.Loads); j += stride {
		idx2 = append(idx2, grid.Loads[j])
	}
	points := gridPoints(cfg.Char)

	key := func(p gridPoint, kind cells.Kind) checkpoint.Key {
		return checkpoint.Key{Cell: arc.Cell, Pin: pin, Arc: arc.Label,
			Slew: p.si, Load: p.li, Kind: kind.String()}
	}
	terminal := func(k checkpoint.Key) bool {
		rec, ok := runner.Journal.Lookup(k)
		return ok && (rec.Status == checkpoint.StatusDone || rec.Status == checkpoint.StatusQuarantined)
	}
	// MC evaluation is shared by a point's two units: skip it only when
	// BOTH are terminal (a point with one unit still pending recomputes
	// its samples — cheap relative to losing the resume guarantee).
	skip := make(map[[2]int]bool, len(points))
	for _, p := range points {
		skip[[2]int{p.si, p.li}] = terminal(key(p, cells.Delay)) && terminal(key(p, cells.Transition))
	}
	charCfg := cfg.Char
	charCfg.Skip = func(_ cells.Arc, si, li int) bool { return skip[[2]int{si, li}] }
	dists, err := cells.CharacterizeArcCtx(ctx, charCfg, arc)
	if err != nil {
		return arcTables{}, err
	}
	byPoint := make(map[distKey]cells.Distribution, len(dists))
	for _, d := range dists {
		byPoint[distKey{si: d.SlewIdx, li: d.LoadIdx, kind: d.Kind}] = d
	}

	mk := func() ([][]float64, [][]core.Model) {
		nom := make([][]float64, len(idx1))
		mods := make([][]core.Model, len(idx1))
		for i := range nom {
			nom[i] = make([]float64, len(idx2))
			mods[i] = make([]core.Model, len(idx2))
		}
		return nom, mods
	}
	nomD, modD := mk()
	nomT, modT := mk()
	var notesD, notesT []string

	requested := requestedModel(cfg)
	warmable := requested == fit.ModelLVF2 && !cfg.ColdStart
	// anchors holds the column-0 warm-start seeds, one per kind. The
	// first point of a row (lowest load) is the row anchor: it is seeded
	// from the previous row's anchor — a column-0 chain down the slew
	// axis, so only the very first row of an arc pays a cold multi-start.
	// Within a row, every other entry is seeded by its *nearest fitted
	// left neighbour* (rowSeed): a clean fit anywhere in the row becomes
	// the seed for the next column, so the seed tracks the slow drift of
	// the delay surface along the load axis instead of stretching one
	// row-anchor seed across far columns — which is what turned the far
	// columns' gate checks into rejections. A broken link (quarantined or
	// degraded unit) is skipped over mid-row and cold-starts the next
	// anchor at column 0; the chains self-heal on the next clean fit.
	// Seeds are derived from the *decoded payload* model, never the
	// in-memory fit result, so a resumed or distributed build derives
	// bit-identical seeds from the journal and the assembled library does
	// not depend on which process fitted the neighbour.
	anchors := make(map[cells.Kind]*fit.Seed, 2)
	prevAnchors := make(map[cells.Kind]*fit.Seed, 2)
	rowSeed := make(map[cells.Kind]*fit.Seed, 2)
	row := -1
	var stats Stats
	for _, p := range points {
		if p.mi != row {
			row = p.mi
			prevAnchors[cells.Delay], prevAnchors[cells.Transition] = anchors[cells.Delay], anchors[cells.Transition]
			anchors[cells.Delay], anchors[cells.Transition] = nil, nil
			rowSeed[cells.Delay], rowSeed[cells.Transition] = nil, nil
		}
		for _, kind := range [...]cells.Kind{cells.Delay, cells.Transition} {
			k := key(p, kind)
			d, haveDist := byPoint[distKey{si: p.si, li: p.li, kind: kind}]
			var seed *fit.Seed
			if warmable {
				if p.mj != 0 {
					seed = rowSeed[kind]
				} else {
					seed = prevAnchors[kind]
				}
			}
			unit, uerr := resolveUnit(ctx, cfg, runner, k, requested, d, haveDist, seed)
			if uerr != nil && !errors.Is(uerr, checkpoint.ErrUnitDropped) {
				return arcTables{}, uerr
			}
			stats.Units++
			if unit.Restored {
				stats.Restored++
			}
			if unit.Quarantined {
				stats.Quarantined++
			}
			nom, model, note, warm, perr := unitResult(cfg, unit, arc, p, kind)
			if perr != nil {
				return arcTables{}, perr
			}
			if !unit.Restored {
				switch warm {
				case fit.WarmHit:
					stats.WarmHits++
				case fit.WarmRejected:
					stats.WarmRejected++
				}
			}
			if warmable {
				// A quarantined, dropped or fallback-noted unit cannot
				// seed: its model is a salvage rung, not a converged LVF²
				// neighbour. Mid-row the previous clean neighbour keeps
				// seeding past it; a dirty anchor breaks the column-0
				// chain (and, since rowSeed was just reset, cold-starts
				// the next column too).
				clean := unit.Payload != nil && !unit.Quarantined && note == ""
				if clean {
					rowSeed[kind] = seedFromModel(model)
				}
				if p.mj == 0 {
					if clean {
						anchors[kind] = rowSeed[kind]
					} else {
						anchors[kind] = nil
					}
				}
			}
			if note != "" {
				stats.Fallbacks++
				fmt.Fprintf(cfg.Log, "libbuild: fallback: %s\n", note)
				if kind == cells.Delay {
					notesD = append(notesD, note)
				} else {
					notesT = append(notesT, note)
				}
			}
			if kind == cells.Delay {
				nomD[p.mi][p.mj], modD[p.mi][p.mj] = nom, model
			} else {
				nomT[p.mi][p.mj], modT[p.mi][p.mj] = nom, model
			}
		}
	}

	tmD := liberty.TimingModelFromFits("cell_rise", idx1, idx2, nomD, modD)
	tmD.FallbackNote = strings.Join(notesD, "; ")
	tmT := liberty.TimingModelFromFits("rise_transition", idx1, idx2, nomT, modT)
	tmT.FallbackNote = strings.Join(notesT, "; ")
	return arcTables{delay: tmD, trans: tmT, stats: stats}, nil
}

// requestedModel is the fit model a configuration asks for.
func requestedModel(cfg Config) fit.Model {
	if cfg.LVF2 {
		return fit.ModelLVF2
	}
	return fit.ModelLVF
}

// seedFromModel transports a decoded unit payload into a warm-start
// seed. Deriving the seed from the payload's raw IEEE-754 floats (rather
// than the fitter's in-memory result, whose SkewNormal → Theta → SN
// round-trip is not bit-exact) is what makes warm-started fits a pure
// function of the journal: resume and distribution reproduce them
// bit for bit.
func seedFromModel(m core.Model) *fit.Seed {
	return &fit.Seed{Lambda: m.Lambda, C1: m.Theta1.SN(), C2: m.Theta2.SN()}
}

// fitUnitPayload fits one unit's samples with the requested model —
// warm-started from seed when non-nil — and encodes the journal payload.
// The in-process build path and the distributed worker executor share
// it, so a payload computed remotely is bit-identical to one computed
// locally.
func fitUnitPayload(requested fit.Model, gridStride int, k checkpoint.Key, d cells.Distribution, seed *fit.Seed) ([]byte, error) {
	o := fit.RobustOptions{}
	o.Options.Seed = seed
	m, rep, err := core.FitKindRobust(requested, d.Samples, o)
	if err != nil {
		return nil, fmt.Errorf("fit %s: %w", k, err)
	}
	var note string
	if rep.Fallback || rep.Degenerate || rep.Dropped > 0 {
		note = fmt.Sprintf("%s (%d,%d): %s", k.Arc, k.Slew/gridStride, k.Load/gridStride, rep)
	}
	return encodeUnit(d.NomDelay, m, note, rep.Warm), nil
}

// salvageUnitPayload is the quarantine ladder shared by the build path
// and the distributed worker: a Gaussian fit of the unit's samples when
// they exist, else the ultimate rung — a floored Gaussian at the nominal
// value, which is always constructible, so a poison unit still emits a
// valid table entry.
func salvageUnitPayload(d cells.Distribution, haveDist bool) (payload []byte, rung string) {
	if haveDist {
		if m, rep, err := core.FitKindRobust(fit.ModelGaussian, d.Samples, fit.RobustOptions{}); err == nil {
			return encodeUnit(d.NomDelay, m, "", fit.WarmCold), rep.Used.String()
		}
	}
	nom := d.NomDelay
	m := core.FromLVF(core.Theta{Mean: nom, Sigma: math.Max(math.Abs(nom)*1e-9, 1e-12)})
	return encodeUnit(nom, m, "", fit.WarmCold), "floored-gaussian"
}

// resolveUnit runs one work unit through the checkpoint runner: restore
// if terminal, otherwise fit with retry and quarantine salvage.
func resolveUnit(ctx context.Context, cfg Config, runner *checkpoint.Runner, k checkpoint.Key, requested fit.Model, d cells.Distribution, haveDist bool, seed *fit.Seed) (checkpoint.Unit, error) {
	run := func(context.Context) ([]byte, error) {
		if cfg.fitHook != nil {
			cfg.fitHook(k)
		}
		if cfg.fitErr != nil {
			if err := cfg.fitErr(k); err != nil {
				return nil, err
			}
		}
		if !haveDist {
			// Unreachable: a point is only skipped when both its units are
			// terminal, and terminal units are restored before run is called.
			return nil, fmt.Errorf("libbuild: no samples for unit %s", k)
		}
		return fitUnitPayload(requested, cfg.Char.GridStride, k, d, seed)
	}
	salvage := func(error) ([]byte, string, error) {
		payload, rung := salvageUnitPayload(d, haveDist)
		return payload, rung, nil
	}
	return runner.Do(ctx, k, run, salvage)
}

// unitResult turns a resolved unit into the (nominal, model, note, warm
// outcome) tuple the table assembly consumes.
func unitResult(cfg Config, unit checkpoint.Unit, arc cells.Arc, p gridPoint, kind cells.Kind) (float64, core.Model, string, fit.WarmOutcome, error) {
	if unit.Payload == nil {
		// A dropped unit (quarantined with no salvage payload) still needs
		// a finite table entry; reconstruct the nominal deterministically.
		nd, nt := arc.Elec.NominalEval(cfg.Char.Corner, cfg.Char.Grid.Slews[p.si], cfg.Char.Grid.Loads[p.li])
		nom := nd
		if kind == cells.Transition {
			nom = nt
		}
		m := core.FromLVF(core.Theta{Mean: nom, Sigma: math.Max(math.Abs(nom)*1e-9, 1e-12)})
		note := fmt.Sprintf("%s (%d,%d): %s [dropped]", arc.Label, p.mi, p.mj, unit.Note)
		return nom, m, note, fit.WarmCold, nil
	}
	nom, model, note, warm, err := decodeUnit(unit.Payload)
	if err != nil {
		return 0, core.Model{}, "", fit.WarmCold, fmt.Errorf("libbuild: unit %s payload: %w", unit.Key, err)
	}
	if unit.Quarantined {
		note = fmt.Sprintf("%s (%d,%d): %s [%s]", arc.Label, p.mi, p.mj, unit.Note, unit.Rung)
	}
	return nom, model, note, warm, nil
}

// -------------------------------------------------- unit payload codec

// unitFloats is the fixed numeric prefix of a unit payload: the nominal
// value followed by the seven model parameters, each as raw IEEE-754
// bits so a restored model is bit-identical to the fitted one. The
// prefix is followed by a length-framed fallback note and one trailing
// warm-start provenance byte; the byte is mandatory, so pre-warm-start
// journals fail decoding loudly instead of silently dropping provenance.
const unitFloats = 8

func encodeUnit(nom float64, m core.Model, note string, warm fit.WarmOutcome) []byte {
	b := make([]byte, 0, unitFloats*8+4+len(note)+1)
	for _, v := range [...]float64{nom, m.Lambda,
		m.Theta1.Mean, m.Theta1.Sigma, m.Theta1.Skew,
		m.Theta2.Mean, m.Theta2.Sigma, m.Theta2.Skew} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(note)))
	b = append(b, note...)
	return append(b, byte(warm))
}

// maxUnitPayload bounds a decodable unit payload. encodeUnit only ever
// produces the fixed float prefix plus a short fallback note, so
// anything larger is a malformed journal record — rejected up front,
// before the note allocation, rather than trusted because its segment
// CRC happened to verify (or because it arrived over the distributed
// protocol, where no CRC vouches for it at all).
const maxUnitPayload = 1 << 16

func decodeUnit(b []byte) (nom float64, m core.Model, note string, warm fit.WarmOutcome, err error) {
	if len(b) < unitFloats*8+4 {
		return 0, core.Model{}, "", fit.WarmCold, fmt.Errorf("short payload (%d bytes)", len(b))
	}
	if len(b) > maxUnitPayload {
		return 0, core.Model{}, "", fit.WarmCold, fmt.Errorf("oversized payload (%d bytes exceeds cap %d)", len(b), maxUnitPayload)
	}
	var f [unitFloats]float64
	for i := range f {
		f[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	nom = f[0]
	m = core.Model{Lambda: f[1],
		Theta1: core.Theta{Mean: f[2], Sigma: f[3], Skew: f[4]},
		Theta2: core.Theta{Mean: f[5], Sigma: f[6], Skew: f[7]}}
	n := binary.LittleEndian.Uint32(b[unitFloats*8:])
	rest := b[unitFloats*8+4:]
	if uint64(len(rest)) != uint64(n)+1 {
		return 0, core.Model{}, "", fit.WarmCold, fmt.Errorf("note length %d does not match %d remaining bytes", n, len(rest))
	}
	if warm = fit.WarmOutcome(rest[n]); warm > fit.WarmRejected {
		return 0, core.Model{}, "", fit.WarmCold, fmt.Errorf("invalid warm-start outcome %d", rest[n])
	}
	return nom, m, string(rest[:n]), warm, nil
}

// InputPins names a cell's input pins A, B, C, ... (at most six).
func InputPins(n int) []string {
	names := []string{"A", "B", "C", "D", "E", "F"}
	if n > len(names) {
		n = len(names)
	}
	if n < 1 {
		n = 1
	}
	return names[:n]
}
