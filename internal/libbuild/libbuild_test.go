package libbuild

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/core"
	"lvf2/internal/faultinject"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
)

// fastRetry is a retry policy with an instant fake clock, so quarantine
// paths run without real backoff sleeps.
var fastRetry = checkpoint.RetryPolicy{
	MaxAttempts: 2,
	Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
}

// testConfig is a small but non-trivial build: two cell types, two arcs
// each, a 2×2 subsampled grid — 32 work units total.
func testConfig() Config {
	inv, _ := cells.CellByName("INV")
	nand, _ := cells.CellByName("NAND2")
	return Config{
		Types:   []cells.CellType{inv, nand},
		ArcsPer: 2,
		Char: cells.CharConfig{
			Samples:    400,
			Seed:       99,
			GridStride: 4,
			Workers:    2,
		},
		LVF2:  true,
		Retry: fastRetry,
	}
}

func buildBytes(t *testing.T, ctx context.Context, cfg Config) ([]byte, Stats) {
	t.Helper()
	lib, stats, err := Build(ctx, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := liberty.WriteLibrary(&buf, lib); err != nil {
		t.Fatalf("WriteLibrary: %v", err)
	}
	return buf.Bytes(), stats
}

func openTestJournal(t *testing.T, fsys checkpoint.FS, cfg Config) *checkpoint.Journal {
	t.Helper()
	j, err := checkpoint.Open(fsys, "ckpt", cfg.Fingerprint(), checkpoint.Options{FlushEvery: 4})
	if err != nil {
		t.Fatalf("Open journal: %v", err)
	}
	return j
}

// TestBuildGoldenKillAndResume is the package's headline guarantee: a
// build killed mid-run and resumed against its journal emits a library
// bit-identical to an uninterrupted build, and no unit the journal
// already resolved is ever refitted.
func TestBuildGoldenKillAndResume(t *testing.T) {
	golden, gstats := buildBytes(t, context.Background(), testConfig())
	if gstats.Units != 32 {
		t.Fatalf("golden units = %d, want 32", gstats.Units)
	}

	// Interrupted run: cancel the context after 10 fits, mid-build.
	fsys := faultinject.NewMemFS()
	cfg := testConfig()
	j := openTestJournal(t, fsys, cfg)
	cfg.Journal = j
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fits atomic.Int64
	cfg.fitHook = func(checkpoint.Key) {
		if fits.Add(1) == 10 {
			cancel()
		}
	}
	if _, _, err := Build(ctx, cfg); err == nil {
		t.Fatal("interrupted build should return the cancellation error")
	}
	j.Close()

	// Snapshot the units the journal resolved before the resume.
	j2 := openTestJournal(t, fsys, cfg)
	doneBefore := make(map[checkpoint.Key]bool)
	for _, rec := range j2.Records() {
		if rec.Status == checkpoint.StatusDone || rec.Status == checkpoint.StatusQuarantined {
			doneBefore[rec.Key] = true
		}
	}
	if len(doneBefore) == 0 {
		t.Fatal("kill landed before any unit sealed; cancel point too early for this test")
	}

	// Resume: no resolved unit may be refitted, and the bytes must match.
	var mu sync.Mutex
	var refitted []checkpoint.Key
	cfg2 := testConfig()
	cfg2.Journal = j2
	cfg2.fitHook = func(k checkpoint.Key) {
		if doneBefore[k] {
			mu.Lock()
			refitted = append(refitted, k)
			mu.Unlock()
		}
	}
	resumed, rstats := buildBytes(t, context.Background(), cfg2)
	if len(refitted) > 0 {
		t.Errorf("%d journaled units refitted on resume: %v", len(refitted), refitted)
	}
	if rstats.Restored != len(doneBefore) {
		t.Errorf("stats.Restored = %d, want %d", rstats.Restored, len(doneBefore))
	}
	if !bytes.Equal(resumed, golden) {
		t.Errorf("resumed library differs from golden (%d vs %d bytes)", len(resumed), len(golden))
	}
}

// TestBuildResumeAfterTornTail drops the newest sealed segment's tail
// (the shape a crash mid-append leaves) and checks the resumed build
// still converges to the golden bytes: lost units are just recomputed.
func TestBuildResumeAfterTornTail(t *testing.T) {
	golden, _ := buildBytes(t, context.Background(), testConfig())

	fsys := faultinject.NewMemFS()
	cfg := testConfig()
	j := openTestJournal(t, fsys, cfg)
	cfg.Journal = j
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fits atomic.Int64
	cfg.fitHook = func(checkpoint.Key) {
		if fits.Add(1) == 12 {
			cancel()
		}
	}
	Build(ctx, cfg)
	j.Close()

	// Tear the newest segment a few bytes short.
	paths := fsys.Paths()
	if len(paths) == 0 {
		t.Fatal("no sealed segments to tear")
	}
	last := paths[len(paths)-1]
	b, _ := fsys.ReadFile(last)
	fsys.Truncate(last, len(b)-5)

	j2 := openTestJournal(t, fsys, cfg)
	if st := j2.Stats(); st.TornRecords == 0 {
		t.Logf("note: truncation fell on a record boundary (stats %+v)", st)
	}
	cfg2 := testConfig()
	cfg2.Journal = j2
	resumed, _ := buildBytes(t, context.Background(), cfg2)
	if !bytes.Equal(resumed, golden) {
		t.Error("resumed library after torn tail differs from golden")
	}
}

// TestBuildQuarantinePoisonArc injects a permanent fit fault into one
// arc's units: the build must complete, quarantine those units onto a
// degraded rung, note them in the Liberty output, and leave every other
// arc untouched.
func TestBuildQuarantinePoisonArc(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := testConfig()
	j := openTestJournal(t, fsys, cfg)
	cfg.Journal = j
	cfg.fitErr = func(k checkpoint.Key) error {
		if k.Arc == "INV/arc00" && k.Kind == "Delay" {
			return errors.New("injected poison fit")
		}
		return nil
	}
	var logBuf bytes.Buffer
	cfg.Log = &logBuf

	out, stats := buildBytes(t, context.Background(), cfg)
	if stats.Quarantined != 4 { // 2×2 grid → 4 Delay units on the poison arc
		t.Errorf("stats.Quarantined = %d, want 4", stats.Quarantined)
	}
	text := string(out)
	if !strings.Contains(text, "ocv_fallback_note") {
		t.Error("quarantined build emitted no ocv_fallback_note attribute")
	}
	if !strings.Contains(text, "quarantined after 2 attempts") {
		t.Error("quarantine note missing from library output")
	}
	if !strings.Contains(logBuf.String(), "INV/arc00") {
		t.Error("quarantine not logged")
	}

	// The journal carries the rung so a resume restores the same salvage.
	rungs := 0
	for _, rec := range j.Records() {
		if rec.Status == checkpoint.StatusQuarantined {
			if rec.Rung == "" {
				t.Errorf("quarantined record %s has no rung", rec.Key)
			}
			rungs++
		}
	}
	if rungs != 4 {
		t.Errorf("journaled quarantined records = %d, want 4", rungs)
	}

	// Resume after quarantine: bit-identical, nothing refitted.
	j.Close()
	j2 := openTestJournal(t, fsys, cfg)
	cfg2 := testConfig()
	cfg2.Journal = j2
	cfg2.fitErr = cfg.fitErr
	cfg2.fitHook = func(k checkpoint.Key) { t.Errorf("unit %s refitted after full run", k) }
	resumed, rstats := buildBytes(t, context.Background(), cfg2)
	if !bytes.Equal(resumed, out) {
		t.Error("resumed quarantined library differs")
	}
	if rstats.Restored != rstats.Units {
		t.Errorf("resume after complete run restored %d of %d units", rstats.Restored, rstats.Units)
	}
}

// TestBuildCorruptJournalColdStart rots a mid-journal segment: Open must
// refuse with ErrCorruptJournal, and the documented recovery (Reset +
// cold build) must still produce the golden bytes.
func TestBuildCorruptJournalColdStart(t *testing.T) {
	golden, _ := buildBytes(t, context.Background(), testConfig())

	fsys := faultinject.NewMemFS()
	cfg := testConfig()
	j := openTestJournal(t, fsys, cfg)
	cfg.Journal = j
	buildBytes(t, context.Background(), cfg)
	j.Close()

	paths := fsys.Paths()
	if len(paths) < 2 {
		t.Fatalf("want ≥2 segments to corrupt mid-journal, have %d", len(paths))
	}
	b, _ := fsys.ReadFile(paths[0])
	fsys.FlipByte(paths[0], len(b)/2)

	_, err := checkpoint.Open(fsys, "ckpt", cfg.Fingerprint(), checkpoint.Options{})
	if !errors.Is(err, checkpoint.ErrCorruptJournal) {
		t.Fatalf("Open over rotten journal = %v, want ErrCorruptJournal", err)
	}
	if err := checkpoint.Reset(fsys, "ckpt"); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	j2 := openTestJournal(t, fsys, cfg)
	cfg2 := testConfig()
	cfg2.Journal = j2
	cold, stats := buildBytes(t, context.Background(), cfg2)
	if stats.Restored != 0 {
		t.Errorf("cold start restored %d units", stats.Restored)
	}
	if !bytes.Equal(cold, golden) {
		t.Error("cold rebuild differs from golden")
	}
}

// TestBuildFingerprintMismatch: a journal from a different configuration
// must not resume.
func TestBuildFingerprintMismatch(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := testConfig()
	j := openTestJournal(t, fsys, cfg)
	cfg.Journal = j
	buildBytes(t, context.Background(), cfg)
	j.Close()

	other := testConfig()
	other.Char.Seed++
	_, err := checkpoint.Open(fsys, "ckpt", other.Fingerprint(), checkpoint.Options{})
	if !errors.Is(err, checkpoint.ErrFingerprintMismatch) {
		t.Fatalf("Open with changed seed = %v, want ErrFingerprintMismatch", err)
	}
}

func TestUnitCodecRoundtrip(t *testing.T) {
	m := core.Model{Lambda: 0.3,
		Theta1: core.Theta{Mean: 1.25e-2, Sigma: 3.5e-4, Skew: -0.7},
		Theta2: core.Theta{Mean: 1.75e-2, Sigma: 9e-4, Skew: 1.1}}
	for _, note := range []string{"", "INV/arc00 (0,1): LVF2→Gaussian"} {
		for _, warm := range []fit.WarmOutcome{fit.WarmCold, fit.WarmHit, fit.WarmRejected} {
			b := encodeUnit(0.0123, m, note, warm)
			nom, got, gotNote, gotWarm, err := decodeUnit(b)
			if err != nil {
				t.Fatalf("decodeUnit: %v", err)
			}
			if nom != 0.0123 || got != m || gotNote != note || gotWarm != warm {
				t.Errorf("roundtrip mismatch: %v %+v %q %v", nom, got, gotNote, gotWarm)
			}
		}
	}
	if _, _, _, _, err := decodeUnit([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
	long := encodeUnit(1, m, "note", fit.WarmCold)
	if _, _, _, _, err := decodeUnit(long[:len(long)-2]); err == nil {
		t.Error("truncated note accepted")
	}
	if _, _, _, _, err := decodeUnit(long[:len(long)-1]); err == nil {
		t.Error("payload without provenance byte accepted")
	}
	bad := encodeUnit(1, m, "", 99)
	if _, _, _, _, err := decodeUnit(bad); err == nil {
		t.Error("out-of-range warm outcome accepted")
	}
	if !math.IsNaN(func() float64 {
		nom, _, _, _, _ := decodeUnit(encodeUnit(math.NaN(), m, "", fit.WarmHit))
		return nom
	}()) {
		t.Error("NaN nominal not bit-preserved")
	}
}
