package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lvf2/internal/mc"
)

// NetFaults tunes the per-request fault probabilities of a
// FaultTransport. All probabilities are independent draws in [0, 1].
type NetFaults struct {
	// PErrBefore fails the request before it reaches the server — a
	// connection refused / reset. The server never sees the request.
	PErrBefore float64
	// PDropAfter delivers the request, lets the server act on it, then
	// discards the response and surfaces a transport error — the
	// fault that generates duplicate submissions: the client cannot
	// tell a dropped response from a dropped request.
	PDropAfter float64
	// PCorruptBody delivers the response with one body byte flipped.
	PCorruptBody float64
	// PShortBody truncates the response body mid-stream.
	PShortBody float64
	// PStall delays the request by Stall before sending — simulates a
	// wedged link that outlives heartbeat deadlines.
	PStall float64
	// Stall is the PStall delay (default 50ms).
	Stall time.Duration
}

// FaultTransport is an http.RoundTripper that injects seeded,
// deterministic network faults around an inner transport. It is safe
// for concurrent use; the draw sequence depends on request arrival
// order, so end-to-end tests that need exact reproducibility must also
// pin their scheduling (the chaos suites replay by seed, accepting that
// concurrent arrival order varies — the assertions are
// order-independent).
type FaultTransport struct {
	Inner  http.RoundTripper
	Faults NetFaults

	mu          sync.Mutex
	rng         *mc.RNG
	partitioned map[string]bool
	injected    atomic.Int64
}

// NewFaultTransport wraps inner (nil = http.DefaultTransport) with
// seeded fault injection.
func NewFaultTransport(inner http.RoundTripper, faults NetFaults, seed uint64) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if faults.Stall <= 0 {
		faults.Stall = 50 * time.Millisecond
	}
	return &FaultTransport{Inner: inner, Faults: faults, rng: mc.NewRNG(seed | 1)}
}

// Injected reports how many faults have fired so far — chaos suites use
// it to confirm a round actually exercised the fault paths.
func (t *FaultTransport) Injected() int64 { return t.injected.Load() }

// SetPartition replaces the set of partitioned hosts: every subsequent
// request whose URL host is listed fails with a connection error before
// delivery, while requests to other hosts proceed normally — an
// asymmetric partition (A cannot reach B, but B can still reach A if
// B's transport is not partitioned). Pass no hosts to heal. Partition
// checks happen before any probability draw, so toggling a partition
// never shifts the seeded fault sequence of the surviving hosts.
func (t *FaultTransport) SetPartition(hosts ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(hosts) == 0 {
		t.partitioned = nil
		return
	}
	t.partitioned = make(map[string]bool, len(hosts))
	for _, h := range hosts {
		t.partitioned[h] = true
	}
}

// Partitioned reports whether host is currently unreachable.
func (t *FaultTransport) Partitioned(host string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partitioned[host]
}

// SetFaults replaces the fault probabilities under the transport lock,
// so a chaos script can reshape the fault mix while requests are in
// flight (the churn suite flips between faulty and quiet phases this
// way). The draw RNG keeps its position: changing probabilities does
// not replay past draws.
func (t *FaultTransport) SetFaults(f NetFaults) {
	if f.Stall <= 0 {
		f.Stall = 50 * time.Millisecond
	}
	t.mu.Lock()
	t.Faults = f
	t.mu.Unlock()
}

// draw samples the per-request fault decisions under one lock so
// concurrent requests never interleave within a single draw, and
// returns the stall duration alongside so RoundTrip never reads
// t.Faults unguarded.
func (t *FaultTransport) draw() (errBefore, dropAfter, corrupt, short bool, stall time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.Faults
	errBefore = t.rng.Float64() < f.PErrBefore
	dropAfter = t.rng.Float64() < f.PDropAfter
	corrupt = t.rng.Float64() < f.PCorruptBody
	short = t.rng.Float64() < f.PShortBody
	if t.rng.Float64() < f.PStall {
		stall = f.Stall
	}
	return
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Partitioned(req.URL.Host) {
		t.injected.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: host %s partitioned (%s %s)", req.URL.Host, req.Method, req.URL.Path)
	}
	errBefore, dropAfter, corrupt, short, stall := t.draw()
	if errBefore {
		t.injected.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: connection refused before delivery (%s %s)", req.Method, req.URL.Path)
	}
	if stall > 0 {
		t.injected.Add(1)
		select {
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-time.After(stall):
		}
	}
	resp, err := t.Inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if dropAfter {
		// The server processed the request; the client sees only a dead
		// link. Whatever side effect the request had (a result
		// submission, a lease grant) already happened.
		t.injected.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("faultinject: response dropped after delivery (%s %s)", req.Method, req.URL.Path)
	}
	if corrupt || short {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if corrupt && len(body) > 0 {
			t.injected.Add(1)
			t.mu.Lock()
			i := t.rng.Intn(len(body))
			t.mu.Unlock()
			body[i] ^= 0xff
		}
		if short && len(body) > 1 {
			t.injected.Add(1)
			t.mu.Lock()
			n := 1 + t.rng.Intn(len(body)-1)
			t.mu.Unlock()
			body = body[:n]
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}
