package faultinject

import (
	"context"
	"errors"
	"io/fs"
	"syscall"
	"testing"
	"time"
)

func TestMemFSRoundTrip(t *testing.T) {
	m := NewMemFS()
	if _, err := m.ReadFile("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ReadFile(missing) = %v, want fs.ErrNotExist", err)
	}
	f, err := m.CreateTemp("dir", "x.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("late")); !errors.Is(err, fs.ErrClosed) {
		t.Fatalf("write after close = %v, want fs.ErrClosed", err)
	}
	if err := m.Rename(f.Name(), "dir/final"); err != nil {
		t.Fatal(err)
	}
	b, err := m.ReadFile("dir/final")
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if _, err := m.ReadFile(f.Name()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("temp survived rename: %v", err)
	}
	if err := m.Remove("dir/final"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("dir/final"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("second remove = %v, want fs.ErrNotExist", err)
	}
}

func TestFaultFSInjectsEIO(t *testing.T) {
	m := NewMemFS()
	m.WriteFile("f", []byte("content"))
	ffs := NewFaultFS(m, DiskFaults{PReadErr: 1}, 1)
	_, err := ffs.ReadFile("f")
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadFile under PReadErr=1 = %v, want EIO", err)
	}
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *fs.PathError", err)
	}
}

func TestFaultFSShortWriteShape(t *testing.T) {
	m := NewMemFS()
	ffs := NewFaultFS(m, DiskFaults{PShortWrite: 1}, 1)
	f, err := ffs.CreateTemp("d", "t*")
	if err != nil {
		t.Fatal(err)
	}
	// The libc-realistic shape: n < len(b) with a nil error. Callers that
	// only check err would silently persist a torn file.
	n, err := f.Write([]byte("0123456789"))
	if err != nil || n >= 10 || n <= 0 {
		t.Fatalf("short write = (%d, %v), want 0 < n < 10 with nil error", n, err)
	}
}

func TestFaultFSCorruptsReads(t *testing.T) {
	m := NewMemFS()
	orig := []byte("pristine snapshot bytes")
	m.WriteFile("snap", orig)
	ffs := NewFaultFS(m, DiskFaults{PCorruptRead: 1}, 1)
	got, err := ffs.ReadFile("snap")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(orig) {
		t.Fatal("corrupt-on-read returned pristine bytes")
	}
	// The underlying file is untouched: corruption happens on the way out.
	if b, _ := m.ReadFile("snap"); string(b) != string(orig) {
		t.Fatal("corrupt-on-read damaged the stored file")
	}
}

func TestFaultFSDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		ffs := NewFaultFS(NewMemFS(), DiskFaults{PReadErr: 0.5}, seed)
		ffs.inner.(*MemFS).WriteFile("f", []byte("x"))
		outcomes := make([]bool, 32)
		for i := range outcomes {
			_, err := ffs.ReadFile("f")
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}

func TestFitFault(t *testing.T) {
	ff := NewFitFault(1, 0, 9)
	if err := ff.Inject(context.Background()); !errors.Is(err, ErrInjectedFit) {
		t.Fatalf("p=1 Inject = %v, want ErrInjectedFit", err)
	}
	ff.SetFailProb(0)
	if err := ff.Inject(context.Background()); err != nil {
		t.Fatalf("p=0 Inject = %v, want nil", err)
	}
	if ff.Fails() != 1 {
		t.Fatalf("Fails = %d, want 1", ff.Fails())
	}
	// A slow fit must honour context cancellation.
	slow := NewFitFault(0, time.Hour, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := slow.Inject(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Inject = %v, want context.Canceled", err)
	}
}

func TestClock(t *testing.T) {
	c := NewClock(time.Time{})
	start := c.Now()
	if start.IsZero() {
		t.Fatal("zero start should default to a fixed epoch")
	}
	c.Advance(90 * time.Second)
	if got := c.Now().Sub(start); got != 90*time.Second {
		t.Fatalf("advanced by %v, want 90s", got)
	}
}
