// Package faultinject provides seedable fault injectors for the
// characterisation → fit → emit pipeline's robustness tests: contaminated
// sample sets (NaN/Inf, all-identical, undersized, extreme outliers) and
// faulty Monte-Carlo evaluators (panicking, sample-corrupting). Every
// injector is deterministic given its seed and safe for concurrent use —
// shared state would make -race runs of the parallel pipeline flaky.
package faultinject

import (
	"hash/fnv"
	"math"

	"lvf2/internal/cells"
	"lvf2/internal/mc"
	"lvf2/internal/spice"
)

// ContaminateNaN returns a copy of xs with ~frac of the entries replaced
// by NaN at seeded-random positions (at least one when frac > 0).
func ContaminateNaN(xs []float64, frac float64, seed uint64) []float64 {
	return contaminate(xs, frac, seed, math.NaN())
}

// ContaminateInf returns a copy of xs with ~frac of the entries replaced
// by +Inf at seeded-random positions (at least one when frac > 0).
func ContaminateInf(xs []float64, frac float64, seed uint64) []float64 {
	return contaminate(xs, frac, seed, math.Inf(1))
}

func contaminate(xs []float64, frac float64, seed uint64, v float64) []float64 {
	out := append([]float64(nil), xs...)
	if len(out) == 0 || frac <= 0 {
		return out
	}
	k := int(frac * float64(len(out)))
	if k < 1 {
		k = 1
	}
	rng := mc.NewRNG(seed | 1)
	for _, i := range rng.Perm(len(out))[:min(k, len(out))] {
		out[i] = v
	}
	return out
}

// Outliers returns a copy of xs with ~frac of the entries scaled by the
// given factor — extreme factors (1e300) overflow downstream moment
// accumulators, moderate ones (1e3) stress mixture initialisation.
func Outliers(xs []float64, frac, factor float64, seed uint64) []float64 {
	out := append([]float64(nil), xs...)
	if len(out) == 0 || frac <= 0 {
		return out
	}
	k := int(frac * float64(len(out)))
	if k < 1 {
		k = 1
	}
	rng := mc.NewRNG(seed | 1)
	for _, i := range rng.Perm(len(out))[:min(k, len(out))] {
		out[i] *= factor
	}
	return out
}

// Identical builds the all-identical sample set that defeats every
// variance-based fitter.
func Identical(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Truncate keeps only the first n samples (n < 5 starves the fitters).
func Truncate(xs []float64, n int) []float64 {
	if n > len(xs) {
		n = len(xs)
	}
	return append([]float64(nil), xs[:n]...)
}

// PanicOnArcs wraps the default evaluator with one that panics for the
// listed arc labels — the simulated evaluator crash of the pipeline's
// panic-recovery tests.
func PanicOnArcs(labels ...string) cells.EvalFunc {
	set := make(map[string]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	return func(arc cells.Arc, corner spice.Corner, rng *mc.RNG, n int, slewNS, loadPF float64, s spice.Sampler) spice.MCResult {
		if set[arc.Label] {
			panic("faultinject: simulated evaluator crash on " + arc.Label)
		}
		return cells.DefaultEval(arc, corner, rng, n, slewNS, loadPF, s)
	}
}

// CorruptingEval wraps the default evaluator with one that NaN-floods a
// seeded fraction of every delay sample set. Each grid point derives its
// own RNG from the arc label, so concurrent arcs share no state.
func CorruptingEval(frac float64, seed uint64) cells.EvalFunc {
	return func(arc cells.Arc, corner spice.Corner, rng *mc.RNG, n int, slewNS, loadPF float64, s spice.Sampler) spice.MCResult {
		res := cells.DefaultEval(arc, corner, rng, n, slewNS, loadPF, s)
		res.Delays = ContaminateNaN(res.Delays, frac, seed^labelSeed(arc.Label))
		return res
	}
}

func labelSeed(label string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return h.Sum64()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
