package faultinject

import (
	"context"
	"errors"
	"sync"
	"time"

	"lvf2/internal/mc"
)

// ErrInjectedFit marks a fit failure manufactured by a FitFault.
var ErrInjectedFit = errors.New("faultinject: injected fit failure")

// FitFault injects slow and failing fits into the daemon's fit path
// (the server calls Inject at the head of every cache-miss fit). The
// failure probability can be changed mid-run, which is how chaos
// scripts model an outage that starts and then stops — the breaker must
// open during the outage and recover cleanly after it.
type FitFault struct {
	mu    sync.Mutex
	rng   *mc.RNG
	pFail float64
	delay time.Duration
	fails int64
}

// NewFitFault builds an injector failing fits with probability pFail
// and slowing every fit attempt by delay. Deterministic given the seed
// and call sequence.
func NewFitFault(pFail float64, delay time.Duration, seed uint64) *FitFault {
	return &FitFault{rng: mc.NewRNG(seed | 1), pFail: pFail, delay: delay}
}

// SetFailProb replaces the failure probability (1.0 = total outage,
// 0 = healthy).
func (f *FitFault) SetFailProb(p float64) {
	f.mu.Lock()
	f.pFail = p
	f.mu.Unlock()
}

// Fails returns how many fit failures were injected.
func (f *FitFault) Fails() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails
}

// Inject applies the configured delay (honouring ctx cancellation) and
// then either passes the fit through (nil) or fails it with
// ErrInjectedFit.
func (f *FitFault) Inject(ctx context.Context) error {
	f.mu.Lock()
	delay, p := f.delay, f.pFail
	f.mu.Unlock()
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if p > 0 {
		f.mu.Lock()
		hit := f.rng.Float64() < p
		if hit {
			f.fails++
		}
		f.mu.Unlock()
		if hit {
			return ErrInjectedFit
		}
	}
	return nil
}
