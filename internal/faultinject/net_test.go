package faultinject

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// okTransport answers every request with a 200 and the host name as the
// body, so a test can tell which requests got through.
type okTransport struct{ served int }

func (s *okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	s.served++
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(req.URL.Host)),
		Header:     http.Header{},
		Request:    req,
	}, nil
}

func get(t *testing.T, rt http.RoundTripper, rawURL string) (*http.Response, error) {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(&http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}})
}

// TestFaultTransportPartition pins the asymmetric-partition contract:
// requests to a partitioned host fail before delivery while requests to
// every other host succeed, healing restores traffic, and the partition
// check never consumes a seeded probability draw.
func TestFaultTransportPartition(t *testing.T) {
	inner := &okTransport{}
	ft := NewFaultTransport(inner, NetFaults{}, 42)

	ft.SetPartition("replica-b")
	if !ft.Partitioned("replica-b") || ft.Partitioned("replica-a") {
		t.Fatal("Partitioned() does not reflect SetPartition")
	}

	if _, err := get(t, ft, "http://replica-b/v1/arc/cdf"); err == nil {
		t.Fatal("request to partitioned host succeeded")
	} else if !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("partition error = %v, want a partition-tagged error", err)
	}
	if inner.served != 0 {
		t.Fatal("partitioned request reached the inner transport")
	}
	resp, err := get(t, ft, "http://replica-a/v1/arc/cdf")
	if err != nil {
		t.Fatalf("request to healthy host failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "replica-a" || inner.served != 1 {
		t.Fatalf("healthy host response = %q (served %d)", body, inner.served)
	}
	if got := ft.Injected(); got != 1 {
		t.Fatalf("Injected() = %d after one partition drop, want 1", got)
	}

	// Healing restores the blocked host.
	ft.SetPartition()
	if _, err := get(t, ft, "http://replica-b/v1/arc/cdf"); err != nil {
		t.Fatalf("request after heal failed: %v", err)
	}
}

// TestFaultTransportPartitionPreservesDrawSequence proves toggling a
// partition does not shift the seeded fault sequence seen by surviving
// hosts: two transports with the same seed, one of which also serves
// (blocked) partitioned traffic, inject faults on the same requests.
func TestFaultTransportPartitionPreservesDrawSequence(t *testing.T) {
	faults := NetFaults{PErrBefore: 0.5}
	const seed = 7
	plain := NewFaultTransport(&okTransport{}, faults, seed)
	parted := NewFaultTransport(&okTransport{}, faults, seed)
	parted.SetPartition("replica-x")

	for i := 0; i < 50; i++ {
		_, errPlain := get(t, plain, "http://replica-a/v1/arc/cdf")
		// Interleave partitioned traffic before the matching request.
		if _, err := get(t, parted, "http://replica-x/v1/peer/snapshot"); err == nil {
			t.Fatal("partitioned request succeeded")
		}
		_, errParted := get(t, parted, "http://replica-a/v1/arc/cdf")
		if (errPlain == nil) != (errParted == nil) {
			t.Fatalf("request %d: fault sequences diverged (plain err=%v, parted err=%v)",
				i, errPlain, errParted)
		}
	}
}
