package faultinject

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"lvf2/internal/mc"
	"lvf2/internal/modelcache"
)

// Disk-fault injection for the snapshot persistence path. MemFS is a
// minimal in-memory filesystem implementing modelcache.FS; FaultFS
// wraps any modelcache.FS with seeded probabilistic faults — short
// writes, EIO on write/sync/rename/read, and corrupt-on-read bit flips
// — so the chaos suite can exercise every failure branch of the atomic
// save and validated restore without touching a real disk.

// MemFS is an in-memory modelcache.FS. Safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
	seq   int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: map[string][]byte{}} }

func (m *MemFS) CreateTemp(dir, pattern string) (modelcache.File, error) {
	m.mu.Lock()
	m.seq++
	name := fmt.Sprintf("%s/%s.%d", dir, pattern, m.seq)
	m.files[name] = nil
	m.mu.Unlock()
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = b
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return &fs.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[path]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), b...), nil
}

// WriteFile installs content directly (test setup, e.g. planting a
// corrupt snapshot).
func (m *MemFS) WriteFile(path string, b []byte) {
	m.mu.Lock()
	m.files[path] = append([]byte(nil), b...)
	m.mu.Unlock()
}

// MkdirAll is a no-op: MemFS paths are flat strings, so directories
// exist implicitly (mirrors how the journal only needs the dir for
// namespacing).
func (m *MemFS) MkdirAll(string) error { return nil }

// ReadDir lists the base names of files directly under dir, so MemFS
// satisfies checkpoint.FS and the chaos suite can replay journals
// purely in memory.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == filepath.Clean(dir) {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Paths returns every stored path, sorted (test helper: finding the
// newest journal segment to tear or corrupt).
func (m *MemFS) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for path := range m.files {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// Truncate shortens a stored file to n bytes (test helper: simulating a
// torn tail the OS left behind after a crash mid-write).
func (m *MemFS) Truncate(path string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.files[path]; ok && n >= 0 && n < len(b) {
		m.files[path] = b[:n]
	}
}

// FlipByte XORs one byte of a stored file (test helper: segment rot).
func (m *MemFS) FlipByte(path string, off int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.files[path]; ok && off >= 0 && off < len(b) {
		b[off] ^= 0x41
	}
}

type memFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Write(b []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	f.fs.files[f.name] = append(f.fs.files[f.name], b...)
	return len(b), nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}

// DiskFaults is the per-operation fault plan of a FaultFS. Each field is
// an independent probability in [0, 1]; draws come from one seeded RNG,
// so a given (plan, seed, operation sequence) is fully deterministic.
type DiskFaults struct {
	// PWriteErr fails a File.Write with EIO.
	PWriteErr float64
	// PShortWrite truncates a File.Write (returns n < len(b), nil error —
	// the nastiest libc-realistic shape, which the saver must detect).
	PShortWrite float64
	// PSyncErr fails File.Sync with EIO.
	PSyncErr float64
	// PRenameErr fails Rename with EIO.
	PRenameErr float64
	// PReadErr fails ReadFile with EIO.
	PReadErr float64
	// PCorruptRead flips one byte of a successful ReadFile — the
	// stale/rotted-snapshot case the restore checksum must catch.
	PCorruptRead float64
}

// Uniform returns a plan with every fault class at probability p.
func Uniform(p float64) DiskFaults {
	return DiskFaults{PWriteErr: p, PShortWrite: p, PSyncErr: p, PRenameErr: p, PReadErr: p, PCorruptRead: p}
}

// FaultFS wraps an inner modelcache.FS with the DiskFaults plan.
type FaultFS struct {
	inner modelcache.FS
	plan  DiskFaults

	mu  sync.Mutex
	rng *mc.RNG

	// Injected counts one fault per class, so tests can assert a chaos
	// run actually exercised the branch it claims to cover.
	injected struct {
		writeErr, shortWrite, syncErr, renameErr, readErr, corruptRead int
	}
}

// NewFaultFS wraps inner with the given plan and seed.
func NewFaultFS(inner modelcache.FS, plan DiskFaults, seed uint64) *FaultFS {
	return &FaultFS{inner: inner, plan: plan, rng: mc.NewRNG(seed | 1)}
}

// Injected reports how many faults fired, by class, as a stable string
// for logs and failure artefacts.
func (f *FaultFS) Injected() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := f.injected
	return fmt.Sprintf("writeErr=%d shortWrite=%d syncErr=%d renameErr=%d readErr=%d corruptRead=%d",
		i.writeErr, i.shortWrite, i.syncErr, i.renameErr, i.readErr, i.corruptRead)
}

// draw is one seeded Bernoulli trial.
func (f *FaultFS) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	hit := f.rng.Float64() < p
	f.mu.Unlock()
	return hit
}

func eio(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: syscall.EIO}
}

func (f *FaultFS) CreateTemp(dir, pattern string) (modelcache.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.draw(f.plan.PRenameErr) {
		f.count(&f.injected.renameErr)
		return eio("rename", newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error { return f.inner.Remove(path) }

// dirFS is the directory half of checkpoint.FS.
type dirFS interface {
	MkdirAll(dir string) error
	ReadDir(dir string) ([]string, error)
}

// MkdirAll passes through when the inner FS supports directories (MemFS
// and checkpoint.OSFS both do); directory creation is not a fault class
// the journal distinguishes from an unwritable segment.
func (f *FaultFS) MkdirAll(dir string) error {
	if d, ok := f.inner.(dirFS); ok {
		return d.MkdirAll(dir)
	}
	return fmt.Errorf("faultinject: inner FS %T has no MkdirAll", f.inner)
}

// ReadDir passes through; segment *content* faults come from ReadFile.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if d, ok := f.inner.(dirFS); ok {
		return d.ReadDir(dir)
	}
	return nil, fmt.Errorf("faultinject: inner FS %T has no ReadDir", f.inner)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if f.draw(f.plan.PReadErr) {
		f.count(&f.injected.readErr)
		return nil, eio("read", path)
	}
	b, err := f.inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) > 0 && f.draw(f.plan.PCorruptRead) {
		f.count(&f.injected.corruptRead)
		f.mu.Lock()
		i := f.rng.Intn(len(b))
		f.mu.Unlock()
		b[i] ^= 0x20
	}
	return b, nil
}

func (f *FaultFS) count(n *int) {
	f.mu.Lock()
	*n++
	f.mu.Unlock()
}

type faultFile struct {
	modelcache.File
	fs *FaultFS
}

func (f *faultFile) Write(b []byte) (int, error) {
	if f.fs.draw(f.fs.plan.PWriteErr) {
		f.fs.count(&f.fs.injected.writeErr)
		return 0, eio("write", f.Name())
	}
	if len(b) > 1 && f.fs.draw(f.fs.plan.PShortWrite) {
		f.fs.count(&f.fs.injected.shortWrite)
		n, err := f.File.Write(b[:len(b)/2])
		if err != nil {
			return n, err
		}
		return n, nil
	}
	return f.File.Write(b)
}

func (f *faultFile) Sync() error {
	if f.fs.draw(f.fs.plan.PSyncErr) {
		f.fs.count(&f.fs.injected.syncErr)
		return eio("sync", f.Name())
	}
	return f.File.Sync()
}
