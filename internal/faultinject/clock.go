package faultinject

import (
	"sync"
	"time"
)

// Clock is a manually advanced clock for clock-free deterministic
// scheduling: components that take a `now func() time.Time` (the fit
// circuit breaker's backoff, snapshot timers in tests) can be driven
// through open→half-open transitions without sleeping, so chaos runs
// are reproducible under -race and fast.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock starts a clock at the given instant. A zero start uses an
// arbitrary fixed epoch so tests never depend on wall time.
func NewClock(start time.Time) *Clock {
	if start.IsZero() {
		start = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Clock{t: start}
}

// Now returns the current simulated instant (safe for concurrent use).
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
