package cells

import (
	"sort"
	"testing"

	"lvf2/internal/stats"
)

func adaptiveArc() Arc {
	// An arc whose confrontation diagonal crosses the grid interior so
	// both bimodal and unimodal points exist.
	ct, _ := CellByName("NAND2")
	arc := ct.Arcs()[0]
	arc.Elec.DiagOffset = 0
	arc.Elec.ModeGap = 0.25
	return arc
}

func TestPlanAdaptiveBudgetAccounting(t *testing.T) {
	cfg := AdaptiveConfig{
		CharConfig:   CharConfig{Samples: 1000, Seed: 3, GridStride: 2},
		PilotSamples: 300,
		TotalBudget:  16 * 1000,
	}
	plan := PlanAdaptive(cfg, adaptiveArc())
	if len(plan) != 16 {
		t.Fatalf("plan covers %d points, want 16", len(plan))
	}
	var total int
	for _, a := range plan {
		if a.Samples < 300 {
			t.Fatalf("allocation %d below floor", a.Samples)
		}
		total += a.Samples
	}
	// Rounding slack only.
	if total < 15500 || total > 16500 {
		t.Errorf("total allocation %d vs budget %d", total, cfg.TotalBudget)
	}
}

func TestAdaptiveConcentratesOnBimodalPoints(t *testing.T) {
	cfg := AdaptiveConfig{
		CharConfig:   CharConfig{Samples: 1500, Seed: 5, GridStride: 2},
		PilotSamples: 400,
	}
	arc := adaptiveArc()
	dists, plan := AdaptiveCharacterizeArc(cfg, arc)
	if len(dists) != 2*len(plan) {
		t.Fatalf("%d distributions for %d points", len(dists), len(plan))
	}
	// Ground truth: score every point from a large independent sample and
	// verify the allocation ranks agree — the top-half ground-truth
	// scorers must receive a larger average budget than the bottom half.
	truthScore := map[[2]int]float64{}
	big := CharConfig{Samples: 4000, Seed: 77, GridStride: 2}
	for _, d := range CharacterizeArc(big, arc) {
		if d.Kind == Delay {
			truthScore[[2]int{d.SlewIdx, d.LoadIdx}] = bimodalityScore(stats.Moments(d.Samples))
		}
	}
	type pt struct {
		score float64
		alloc int
	}
	pts := make([]pt, 0, len(plan))
	for _, a := range plan {
		pts = append(pts, pt{score: truthScore[[2]int{a.SlewIdx, a.LoadIdx}], alloc: a.Samples})
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].score > pts[b].score })
	half := len(pts) / 2
	var top, bottom float64
	for i, p := range pts {
		if i < half {
			top += float64(p.alloc)
		} else {
			bottom += float64(p.alloc)
		}
	}
	top /= float64(half)
	bottom /= float64(len(pts) - half)
	if pts[0].score < 0.1 {
		t.Skipf("no strongly non-Gaussian point on this subgrid (best score %v)", pts[0].score)
	}
	if top <= bottom {
		t.Errorf("top-half ground-truth scorers got %v samples on average, bottom half %v — no concentration", top, bottom)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	cfg := AdaptiveConfig{
		CharConfig:   CharConfig{Samples: 600, Seed: 9, GridStride: 4},
		PilotSamples: 200,
	}
	arc := adaptiveArc()
	_, p1 := AdaptiveCharacterizeArc(cfg, arc)
	_, p2 := AdaptiveCharacterizeArc(cfg, arc)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("adaptive plan not deterministic")
		}
	}
}

func TestBimodalityScore(t *testing.T) {
	// Gaussian: kurt 3, skew 0 → b = 1/3 < 5/9 → floor score.
	g := stats.SampleMoments{Kurtosis: 3}
	if s := bimodalityScore(g); s > 0.05 {
		t.Errorf("gaussian score %v", s)
	}
	// Hard two-point mixture: kurt 1, skew 0 → b = 1 → high score.
	b := stats.SampleMoments{Kurtosis: 1}
	if s := bimodalityScore(b); s < 0.4 {
		t.Errorf("bimodal score %v", s)
	}
	// Degenerate kurtosis guard.
	if s := bimodalityScore(stats.SampleMoments{}); s != 1 {
		t.Errorf("degenerate score %v", s)
	}
}
