package cells

import (
	"testing"

	"lvf2/internal/stats"
)

func TestLibraryMatchesTable2(t *testing.T) {
	lib := Library()
	if len(lib) != 25 {
		t.Fatalf("want 25 cell types, got %d", len(lib))
	}
	wantArcs := map[string]int{
		"INV": 24, "BUFF": 21, "NAND2": 57, "NAND3": 39, "NAND4": 28,
		"AND2": 20, "AND3": 22, "AND4": 11, "NOR2": 14, "NOR3": 13,
		"NOR4": 25, "OR2": 17, "OR3": 12, "OR4": 23, "XOR2": 32,
		"XOR3": 49, "XOR4": 74, "XNOR2": 30, "XNOR3": 48, "XNOR4": 45,
		"MUX2": 31, "MUX3": 40, "MUX4": 40, "FA": 25, "HA": 7,
	}
	var total int
	for _, c := range lib {
		w, ok := wantArcs[c.Name]
		if !ok {
			t.Errorf("unexpected cell %s", c.Name)
			continue
		}
		if c.ArcCount != w {
			t.Errorf("%s: %d arcs, want %d", c.Name, c.ArcCount, w)
		}
		total += c.ArcCount
	}
	if total != 747 {
		t.Errorf("total arcs %d, want 747 (Table 2)", total)
	}
}

func TestCellByName(t *testing.T) {
	c, ok := CellByName("NAND2")
	if !ok || c.Name != "NAND2" || c.Base.StackN != 2 {
		t.Errorf("NAND2 lookup: %+v ok=%v", c, ok)
	}
	if _, ok := CellByName("DFF"); ok {
		t.Error("sequential cells must not exist in this library")
	}
}

func TestDefaultGridShape(t *testing.T) {
	g := DefaultGrid()
	if len(g.Slews) != 8 || len(g.Loads) != 8 {
		t.Fatalf("grid %dx%d, want 8x8", len(g.Slews), len(g.Loads))
	}
	for i := 1; i < 8; i++ {
		if g.Slews[i] <= g.Slews[i-1] || g.Loads[i] <= g.Loads[i-1] {
			t.Fatal("grid axes must be strictly increasing")
		}
	}
}

func TestArcsDeterministicAndDistinct(t *testing.T) {
	c, _ := CellByName("NAND2")
	a1 := c.Arcs()
	a2 := c.Arcs()
	if len(a1) != c.ArcCount {
		t.Fatalf("arc count %d", len(a1))
	}
	for i := range a1 {
		if a1[i].Elec != a2[i].Elec {
			t.Fatal("arcs must be deterministic across calls")
		}
	}
	// Different arcs must differ electrically.
	if a1[0].Elec == a1[1].Elec {
		t.Error("distinct arcs should have distinct electrical params")
	}
	// Arc labels are unique.
	seen := map[string]bool{}
	for _, a := range a1 {
		if seen[a.Label] {
			t.Fatalf("duplicate label %s", a.Label)
		}
		seen[a.Label] = true
	}
}

func TestCharacterizeArcProducesBothKinds(t *testing.T) {
	c, _ := CellByName("INV")
	arc := c.Arcs()[0]
	cfg := CharConfig{Samples: 400, GridStride: 4}
	dists := CharacterizeArc(cfg, arc)
	// 2×2 grid points × 2 kinds.
	if len(dists) != 8 {
		t.Fatalf("got %d distributions, want 8", len(dists))
	}
	var sawDelay, sawTrans bool
	for _, d := range dists {
		if len(d.Samples) != 400 {
			t.Fatalf("sample count %d", len(d.Samples))
		}
		m := stats.Moments(d.Samples)
		if m.Std() <= 0 || m.Mean <= 0 {
			t.Fatalf("degenerate distribution at %d,%d kind %v", d.SlewIdx, d.LoadIdx, d.Kind)
		}
		if d.NomDelay <= 0 {
			t.Fatalf("nominal value missing")
		}
		switch d.Kind {
		case Delay:
			sawDelay = true
		case Transition:
			sawTrans = true
		}
	}
	if !sawDelay || !sawTrans {
		t.Error("both kinds must be characterised")
	}
}

func TestCharacterizeReproducible(t *testing.T) {
	c, _ := CellByName("NOR2")
	arc := c.Arcs()[3]
	cfg := CharConfig{Samples: 200, GridStride: 8, Seed: 99}
	d1 := CharacterizeArc(cfg, arc)
	d2 := CharacterizeArc(cfg, arc)
	for i := range d1 {
		for j := range d1[i].Samples {
			if d1[i].Samples[j] != d2[i].Samples[j] {
				t.Fatal("characterisation must be reproducible for a fixed seed")
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Delay.String() != "Delay" || Transition.String() != "Transition" {
		t.Error("kind names")
	}
}

func TestCharConfigDefaults(t *testing.T) {
	cfg := CharConfig{}.WithDefaults()
	if cfg.Samples != 5000 || cfg.GridStride != 1 || len(cfg.Grid.Slews) != 8 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.Corner.VDD != 0.8 {
		t.Errorf("corner default VDD %v", cfg.Corner.VDD)
	}
}
