package cells

import (
	"context"
	"errors"

	"lvf2/internal/pool"
)

// ArcResult is the outcome of characterising one arc: either its
// distributions or the arc-local fault (a recovered evaluator panic or an
// expired per-arc deadline). Faulty arcs do not abort the library run —
// the caller decides whether to drop, retry or substitute them.
type ArcResult struct {
	Arc   Arc
	Dists []Distribution
	Err   error
}

// CharacterizeLibrary characterises every arc of the given cell types on a
// bounded worker pool. Arc-local faults (evaluator panics, per-arc
// deadline expiry) are recorded in the matching ArcResult and do not stop
// the run; cancelling ctx stops dispatch promptly and is reported as the
// returned error (errors.Is(err, context.Canceled)).
//
// Results are indexed in deterministic library order regardless of worker
// scheduling: every arc of types[0], then types[1], and so on.
func CharacterizeLibrary(ctx context.Context, cfg CharConfig, types []CellType) ([]ArcResult, error) {
	cfg = cfg.WithDefaults()
	var arcs []Arc
	for _, t := range types {
		arcs = append(arcs, t.Arcs()...)
	}
	results := make([]ArcResult, len(arcs))
	labels := make([]string, len(arcs))
	for i, a := range arcs {
		labels[i] = a.Label
	}
	err := pool.ForEachLabeled(ctx, pool.Options{Workers: cfg.Workers, TaskTimeout: cfg.ArcTimeout}, labels,
		func(tctx context.Context, i int) error {
			arc := arcs[i]
			results[i].Arc = arc
			// Recover at arc grain so a panicking evaluator is attributed to
			// this arc instead of aborting the pool's view of the run.
			perr := pool.Protect(arc.Label, func() error {
				ds, derr := CharacterizeArcCtx(tctx, cfg, arc)
				if derr != nil {
					return derr
				}
				results[i].Dists = ds
				return nil
			})
			if perr == nil {
				return nil
			}
			if errors.Is(perr, context.Canceled) {
				// Run-level cancellation, not an arc fault: propagate so Wait
				// reports it.
				return perr
			}
			results[i].Err = perr
			return nil
		})
	return results, err
}
