package cells_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"lvf2/internal/cells"
	"lvf2/internal/faultinject"
	"lvf2/internal/pool"
)

// testConfig keeps the MC volume small: 2 grid points per arc, few samples.
func testConfig() cells.CharConfig {
	return cells.CharConfig{Samples: 60, GridStride: 7, Workers: 4}
}

func smallTypes(t *testing.T) []cells.CellType {
	t.Helper()
	var out []cells.CellType
	for _, name := range []string{"INV", "HA"} { // 24 + 7 arcs
		c, ok := cells.CellByName(name)
		if !ok {
			t.Fatalf("cell %s missing from library", name)
		}
		out = append(out, c)
	}
	return out
}

func TestCharacterizeLibraryCompletesAllArcs(t *testing.T) {
	types := smallTypes(t)
	res, err := cells.CharacterizeLibrary(context.Background(), testConfig(), types)
	if err != nil {
		t.Fatalf("CharacterizeLibrary: %v", err)
	}
	if len(res) != 31 {
		t.Fatalf("got %d arc results, want 31", len(res))
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("arc %s failed: %v", r.Arc.Label, r.Err)
		}
		if len(r.Dists) != 8 { // 2×2 grid points × (delay + transition)
			t.Fatalf("arc %s has %d distributions, want 8", r.Arc.Label, len(r.Dists))
		}
	}
	// Deterministic ordering: library order regardless of scheduling.
	if res[0].Arc.Label != "INV/arc00" || res[24].Arc.Label != "HA/arc00" {
		t.Fatalf("results out of library order: %s, %s", res[0].Arc.Label, res[24].Arc.Label)
	}
}

// The satellite requirement: injected evaluator panics must be confined to
// the faulty arcs while every other arc completes, under -race.
func TestCharacterizeLibrarySurvivesEvaluatorPanics(t *testing.T) {
	types := smallTypes(t)
	faulty := map[string]bool{"INV/arc03": true, "HA/arc05": true}
	cfg := testConfig()
	cfg.Eval = faultinject.PanicOnArcs("INV/arc03", "HA/arc05")

	res, err := cells.CharacterizeLibrary(context.Background(), cfg, types)
	if err != nil {
		t.Fatalf("CharacterizeLibrary aborted instead of confining the panics: %v", err)
	}
	for _, r := range res {
		if faulty[r.Arc.Label] {
			var pe *pool.PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("faulty arc %s: err = %v, want *pool.PanicError", r.Arc.Label, r.Err)
			}
			if pe.Task != r.Arc.Label {
				t.Fatalf("panic attributed to %q, want %q", pe.Task, r.Arc.Label)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("non-faulty arc %s failed: %v", r.Arc.Label, r.Err)
		}
		if len(r.Dists) == 0 {
			t.Fatalf("non-faulty arc %s produced no distributions", r.Arc.Label)
		}
	}
}

func TestCharacterizeLibraryCancellation(t *testing.T) {
	types := smallTypes(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: no arc should start
	res, err := cells.CharacterizeLibrary(ctx, testConfig(), types)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range res {
		if len(r.Dists) > 0 {
			t.Fatalf("arc %s ran after cancellation", r.Arc.Label)
		}
	}
}

func TestCharacterizeLibraryMidRunCancellation(t *testing.T) {
	types := smallTypes(t)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := testConfig()
	cfg.Workers = 2
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := cells.CharacterizeLibrary(ctx, cfg, types)
	<-done
	// The run either finished before the cancel landed (fast machines) or
	// reports the cancellation; it must never hang or panic.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
}

func TestCharacterizeArcCtxDeadline(t *testing.T) {
	types := smallTypes(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	dists, err := cells.CharacterizeArcCtx(ctx, testConfig(), types[0].Arcs()[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if len(dists) != 0 {
		t.Fatalf("characterised %d points past an expired deadline", len(dists))
	}
}

func TestCorruptingEvalInjectsNaNs(t *testing.T) {
	types := smallTypes(t)
	cfg := testConfig()
	cfg.Eval = faultinject.CorruptingEval(0.05, 99)
	dists, err := cells.CharacterizeArcCtx(context.Background(), cfg, types[0].Arcs()[0])
	if err != nil {
		t.Fatalf("CharacterizeArcCtx: %v", err)
	}
	sawNaN := false
	for _, d := range dists {
		if d.Kind != cells.Delay {
			continue
		}
		for _, x := range d.Samples {
			if x != x {
				sawNaN = true
			}
		}
	}
	if !sawNaN {
		t.Fatal("corrupting evaluator injected no NaNs")
	}
}
