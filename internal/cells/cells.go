// Package cells defines the synthetic standard-cell library that stands in
// for the paper's TSMC 22nm library: the same 25 combinational cell types
// with Table 2's timing-arc counts, 8×8 slew–load characterisation grids
// (axes taken from Fig. 4), and a characterisation driver that produces
// one delay and one transition distribution per (arc, slew, load) point by
// Monte-Carlo simulation of the electrical model in internal/spice.
package cells

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"lvf2/internal/mc"
	"lvf2/internal/spice"
)

// Grid is the slew–load characterisation grid. The paper uses 8×8
// non-linearly spaced entries; the load axis values are those visible on
// Fig. 4.
type Grid struct {
	Slews []float64 // input transition times, ns
	Loads []float64 // output capacitances, pF
}

// DefaultGrid returns the 8×8 grid of the paper's library.
func DefaultGrid() Grid {
	return Grid{
		Slews: []float64{0.00123, 0.00391, 0.00928, 0.02102,
			0.05005, 0.12145, 0.29535, 0.87315},
		Loads: []float64{0.00015, 0.00722, 0.02136, 0.04965,
			0.10623, 0.21938, 0.44569, 0.89830},
	}
}

// CellType is one of the 25 standard combinational cell types.
type CellType struct {
	Name     string
	Inputs   int
	ArcCount int // number of test timing arcs (Table 2 column 2)
	// Electrical template: per-arc models are derived from it with
	// deterministic jitter (drive strengths, mechanism offsets).
	Base spice.CellElectrical
}

// Library returns the 25 cell types with the paper's arc counts.
func Library() []CellType {
	mk := func(name string, inputs, arcs int, drive, capIn float64, stackN, stackP int, modeGap float64) CellType {
		return CellType{
			Name: name, Inputs: inputs, ArcCount: arcs,
			Base: spice.CellElectrical{
				Name: name, Drive: drive, CapIn: capIn,
				StackN: stackN, StackP: stackP,
				ModeGap: modeGap, MixSens: 2.2, DiagOffset: 0, TransGain: 1.5,
			},
		}
	}
	return []CellType{
		mk("INV", 1, 24, 1.0, 0.0009, 1, 1, 0.15),
		mk("BUFF", 1, 21, 1.4, 0.0010, 1, 1, 0.12),
		mk("NAND2", 2, 57, 1.0, 0.0011, 2, 1, 0.21),
		mk("NAND3", 3, 39, 1.0, 0.0012, 3, 1, 0.24),
		mk("NAND4", 4, 28, 1.0, 0.0013, 4, 1, 0.27),
		mk("AND2", 2, 20, 1.2, 0.0011, 2, 1, 0.18),
		mk("AND3", 3, 22, 1.2, 0.0012, 3, 1, 0.19),
		mk("AND4", 4, 11, 1.2, 0.0013, 4, 1, 0.21),
		mk("NOR2", 2, 14, 0.9, 0.0011, 1, 2, 0.21),
		mk("NOR3", 3, 13, 0.9, 0.0012, 1, 3, 0.24),
		mk("NOR4", 4, 25, 0.9, 0.0013, 1, 4, 0.27),
		mk("OR2", 2, 17, 1.1, 0.0011, 1, 2, 0.18),
		mk("OR3", 3, 12, 1.1, 0.0012, 1, 3, 0.19),
		mk("OR4", 4, 23, 1.1, 0.0013, 1, 4, 0.21),
		mk("XOR2", 2, 32, 0.8, 0.0015, 2, 2, 0.25),
		mk("XOR3", 3, 49, 0.8, 0.0017, 2, 2, 0.26),
		mk("XOR4", 4, 74, 0.8, 0.0019, 3, 3, 0.28),
		mk("XNOR2", 2, 30, 0.8, 0.0015, 2, 2, 0.25),
		mk("XNOR3", 3, 48, 0.8, 0.0017, 2, 2, 0.26),
		mk("XNOR4", 4, 45, 0.8, 0.0019, 3, 3, 0.28),
		mk("MUX2", 3, 31, 1.0, 0.0013, 2, 2, 0.22),
		mk("MUX3", 5, 40, 1.0, 0.0015, 2, 2, 0.23),
		mk("MUX4", 6, 40, 1.0, 0.0016, 3, 3, 0.23),
		mk("FA", 3, 25, 0.9, 0.0018, 3, 3, 0.26),
		mk("HA", 2, 7, 0.9, 0.0015, 2, 2, 0.22),
	}
}

// CellByName finds a cell type in the default library.
func CellByName(name string) (CellType, bool) {
	for _, c := range Library() {
		if c.Name == name {
			return c, true
		}
	}
	return CellType{}, false
}

// Arc is one concrete timing arc of a cell: an input-pin to output-pin
// path under one side-input condition, with its own electrical model.
type Arc struct {
	Cell  string
	Index int
	Label string
	Elec  spice.CellElectrical
}

// driveSteps are the drive-strength variants cycled across a type's arcs
// (X1/X2/X4-style sizing).
var driveSteps = []float64{0.8, 1.0, 1.5, 2.0, 3.0}

// Arcs derives the cell's ArcCount timing arcs. Per-arc electrical
// parameters are jittered deterministically (seeded by cell name and arc
// index) so every arc is distinct but the library is fully reproducible.
func (c CellType) Arcs() []Arc {
	arcs := make([]Arc, c.ArcCount)
	for i := range arcs {
		e := c.Base
		rng := mc.NewRNG(arcSeed(c.Name, i))
		e.Drive *= driveSteps[i%len(driveSteps)] * (0.95 + 0.1*rng.Float64())
		// Mechanism confrontation moves around the grid per arc; offsets
		// beyond ±1.6 leave some arcs essentially unimodal everywhere.
		e.DiagOffset = -2.0 + 4.0*rng.Float64()
		e.ModeGap *= 0.6 + 0.9*rng.Float64()
		e.MixSens = 1.8 + 0.8*rng.Float64()
		e.TransGain = 1.2 + 0.6*rng.Float64()
		arcs[i] = Arc{
			Cell:  c.Name,
			Index: i,
			Label: fmt.Sprintf("%s/arc%02d", c.Name, i),
			Elec:  e,
		}
	}
	return arcs
}

func arcSeed(name string, idx int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	fmt.Fprintf(h, "/%d", idx)
	return h.Sum64()
}

// Kind distinguishes the two characterised quantities.
type Kind int

const (
	// Delay is the input-to-output propagation delay distribution.
	Delay Kind = iota
	// Transition is the output transition-time distribution.
	Transition
)

// String names the kind as in the paper's tables.
func (k Kind) String() string {
	if k == Delay {
		return "Delay"
	}
	return "Transition"
}

// Distribution is one characterised timing distribution: the MC samples of
// one (arc, slew, load, kind) point.
type Distribution struct {
	Arc      Arc
	SlewIdx  int
	LoadIdx  int
	Slew     float64
	Load     float64
	Kind     Kind
	Samples  []float64
	NomDelay float64 // nominal (variation-free) value of this kind
}

// EvalFunc is the Monte-Carlo evaluator seam: it produces the sample sets
// of one (arc, slew, load) grid point. The default evaluates the arc's
// electrical model; fault-injection harnesses substitute contaminated or
// panicking evaluators to exercise the pipeline's failure paths.
type EvalFunc func(arc Arc, corner spice.Corner, rng *mc.RNG, n int, slewNS, loadPF float64, s spice.Sampler) spice.MCResult

// DefaultEval evaluates the arc's own electrical model.
func DefaultEval(arc Arc, corner spice.Corner, rng *mc.RNG, n int, slewNS, loadPF float64, s spice.Sampler) spice.MCResult {
	return arc.Elec.CharacterizeWith(corner, rng, n, slewNS, loadPF, s)
}

// CharConfig controls a characterisation run. The paper's full scale is
// Samples=50000 over all 64 grid points of every arc; the reduced defaults
// keep test runs fast while exercising identical code paths.
type CharConfig struct {
	Corner  spice.Corner
	Grid    Grid
	Samples int
	Seed    uint64
	// GridStride subsamples the grid (1 = all 8×8 points, 4 = 2×2).
	GridStride int
	// Sampler selects the process-space sampling scheme (default LHS,
	// the paper's choice).
	Sampler spice.Sampler
	// Workers bounds the parallelism of CharacterizeLibrary (default
	// GOMAXPROCS).
	Workers int
	// ArcTimeout bounds the wall time of a single arc's characterisation
	// (0 = none). Enforcement is cooperative at grid-point boundaries.
	ArcTimeout time.Duration
	// Eval overrides the Monte-Carlo evaluator. When nil the arc's own
	// electrical model is streamed through one reusable sample plan per
	// arc (bit-identical to DefaultEval, without the per-point matrix
	// pool round-trips); fault-injection harnesses substitute
	// contaminated or panicking evaluators here.
	Eval EvalFunc
	// Skip elides grid points before their Monte-Carlo evaluation runs.
	// It is the checkpoint-resume seam: a resumed run installs a filter
	// that skips every (slew, load) point whose units are already
	// journaled, so completed work is never recomputed. nil visits every
	// point.
	Skip func(arc Arc, slewIdx, loadIdx int) bool
}

// WithDefaults fills zero fields.
func (c CharConfig) WithDefaults() CharConfig {
	if c.Corner == (spice.Corner{}) {
		c.Corner = spice.TTCorner()
	}
	if len(c.Grid.Slews) == 0 {
		c.Grid = DefaultGrid()
	}
	if c.Samples <= 0 {
		c.Samples = 5000
	}
	if c.GridStride <= 0 {
		c.GridStride = 1
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// GridPoint is one visited coordinate of the characterisation sweep: the
// raw grid indices (the checkpoint-key and RNG-seed domain) and the
// dense matrix indices (raw index / stride — the emitted table domain).
type GridPoint struct {
	SlewIdx, LoadIdx int
	Row, Col         int
}

// SweepPoints enumerates the visited (slew, load) coordinates of the
// characterisation grid in the fixed deterministic sweep order: row-major
// from the nominal corner (lowest slew, lowest load), load index varying
// fastest, honouring GridStride. Every layer — characterisation, fitting,
// checkpoint planning and distributed leasing — iterates exactly this
// sequence; a single shared order is what lets warm-started fits seed
// from an already-visited neighbour and still produce bit-identical
// libraries across Workers counts, resume, and distribution.
func (c CharConfig) SweepPoints() []GridPoint {
	stride := c.GridStride
	if stride <= 0 {
		stride = 1
	}
	grid := c.Grid
	if len(grid.Slews) == 0 {
		grid = DefaultGrid()
	}
	var pts []GridPoint
	for si := 0; si < len(grid.Slews); si += stride {
		for li := 0; li < len(grid.Loads); li += stride {
			pts = append(pts, GridPoint{
				SlewIdx: si, LoadIdx: li,
				Row: si / stride, Col: li / stride,
			})
		}
	}
	return pts
}

// CharacterizeArc runs the MC characterisation of one arc over the grid,
// returning a delay and a transition distribution per visited point.
func CharacterizeArc(cfg CharConfig, arc Arc) []Distribution {
	out, _ := CharacterizeArcCtx(context.Background(), cfg, arc)
	return out
}

// CharacterizeArcCtx is CharacterizeArc with cooperative cancellation: the
// context is checked at every grid point and its error returned alongside
// the distributions characterised so far.
func CharacterizeArcCtx(ctx context.Context, cfg CharConfig, arc Arc) ([]Distribution, error) {
	cfg = cfg.WithDefaults()
	var out []Distribution
	var stream spice.ArcStream
	for _, p := range cfg.SweepPoints() {
		si, li := p.SlewIdx, p.LoadIdx
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if cfg.Skip != nil && cfg.Skip(arc, si, li) {
			continue
		}
		slew, load := cfg.Grid.Slews[si], cfg.Grid.Loads[li]
		rng := mc.NewRNG(cfg.Seed ^ arcSeed(arc.Label, si*8+li))
		var res spice.MCResult
		if cfg.Eval != nil {
			res = cfg.Eval(arc, cfg.Corner, rng, cfg.Samples, slew, load, cfg.Sampler)
		} else {
			res = arc.Elec.CharacterizeStream(cfg.Corner, rng, cfg.Samples, slew, load, cfg.Sampler, &stream)
		}
		nd, nt := arc.Elec.NominalEval(cfg.Corner, slew, load)
		out = append(out,
			Distribution{
				Arc: arc, SlewIdx: si, LoadIdx: li, Slew: slew, Load: load,
				Kind: Delay, Samples: res.Delays, NomDelay: nd,
			},
			Distribution{
				Arc: arc, SlewIdx: si, LoadIdx: li, Slew: slew, Load: load,
				Kind: Transition, Samples: res.Transitions, NomDelay: nt,
			})
	}
	return out, nil
}
