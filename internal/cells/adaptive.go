package cells

import (
	"math"

	"lvf2/internal/mc"
	"lvf2/internal/stats"
)

// Adaptive characterisation — the application the paper anticipates in
// §4.3/§5: "assuming such an accuracy pattern can provide significant
// insight to speed up the statistical characterisation that includes MC
// simulations across multiple slew-load pairs". Points whose distribution
// is multi-Gaussian need many samples for a faithful LVF² fit; unimodal
// points don't. A cheap pilot pass estimates each grid point's
// non-Gaussianity, the estimate is reinforced along slew–load diagonals
// (the paper's observed regularity), and the remaining sample budget is
// allocated proportionally.

// AdaptiveConfig controls the two-pass characterisation.
type AdaptiveConfig struct {
	CharConfig
	// PilotSamples per grid point in the first pass (default 400).
	PilotSamples int
	// TotalBudget is the total MC sample count across all grid points for
	// the second pass (default 64 × Samples of the base config).
	TotalBudget int
	// MinSamples floors the second-pass allocation per point (default
	// PilotSamples).
	MinSamples int
}

// WithDefaults fills zero fields.
func (c AdaptiveConfig) WithDefaults() AdaptiveConfig {
	c.CharConfig = c.CharConfig.WithDefaults()
	if c.PilotSamples <= 0 {
		c.PilotSamples = 400
	}
	points := gridPoints(c.CharConfig)
	if c.TotalBudget <= 0 {
		c.TotalBudget = points * c.Samples
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.PilotSamples
	}
	return c
}

func gridPoints(c CharConfig) int {
	n := 0
	for i := 0; i < len(c.Grid.Slews); i += c.GridStride {
		for j := 0; j < len(c.Grid.Loads); j += c.GridStride {
			n++
		}
	}
	return n
}

// bimodalityScore maps sample moments to a non-Gaussianity indicator.
// The LVF fit matches three moments exactly, so its residual error — and
// hence the value of extra characterisation effort — is predicted by the
// fourth moment: the gap between the sample kurtosis and the kurtosis the
// moment-matched skew-normal implies. Sarle's bimodality coefficient is
// blended in to also catch platykurtic two-peak shapes whose kurtosis gap
// is large and of known sign. A floor keeps every point funded.
func bimodalityScore(m stats.SampleMoments) float64 {
	if m.Kurtosis <= 0 {
		return 1
	}
	snImplied := stats.SNFromMoments(0, 1, m.Skewness)
	gap := math.Abs(m.Kurtosis - (snImplied.ExcessKurtosis() + 3))
	// Subtract the pilot sampling noise floor (SE of kurtosis ≈ √(24/n)).
	if m.N > 0 {
		gap -= 2 * math.Sqrt(24/float64(m.N))
	}
	if gap < 0 {
		gap = 0
	}
	return gap + 0.01
}

// AdaptiveAllocation is the per-point outcome of the pilot pass.
type AdaptiveAllocation struct {
	SlewIdx, LoadIdx int
	Score            float64 // smoothed non-Gaussianity
	Samples          int     // second-pass budget for this point
}

// PlanAdaptive runs the pilot pass for one arc and returns the budget
// allocation. Scores are reinforced along the (i−j) diagonals before
// allocation, exploiting the paper's observed diagonal regularity: a
// point's neighbours at (i±1, j±1) share its confrontation state even
// when the pilot sample was too small to show it.
func PlanAdaptive(cfg AdaptiveConfig, arc Arc) []AdaptiveAllocation {
	cfg = cfg.WithDefaults()
	pilotCfg := cfg.CharConfig
	pilotCfg.Samples = cfg.PilotSamples
	pilotCfg.Seed = cfg.Seed ^ 0xAD4F71

	type point struct {
		si, li int
		score  float64
	}
	idx := map[[2]int]int{}
	var pts []point
	for _, d := range CharacterizeArc(pilotCfg, arc) {
		if d.Kind != Delay {
			continue
		}
		m := stats.Moments(d.Samples)
		idx[[2]int{d.SlewIdx, d.LoadIdx}] = len(pts)
		pts = append(pts, point{si: d.SlewIdx, li: d.LoadIdx, score: bimodalityScore(m)})
	}

	// Diagonal reinforcement: blend with the mean of the (i±s, j±s)
	// neighbours (s = stride).
	s := cfg.GridStride
	smoothed := make([]float64, len(pts))
	for k, p := range pts {
		var nb []float64
		if q, ok := idx[[2]int{p.si - s, p.li - s}]; ok {
			nb = append(nb, pts[q].score)
		}
		if q, ok := idx[[2]int{p.si + s, p.li + s}]; ok {
			nb = append(nb, pts[q].score)
		}
		smoothed[k] = p.score
		if len(nb) > 0 {
			var mean float64
			for _, v := range nb {
				mean += v
			}
			mean /= float64(len(nb))
			if blended := 0.6*p.score + 0.4*mean; blended > smoothed[k] {
				smoothed[k] = blended
			}
		}
	}

	var total float64
	for _, v := range smoothed {
		total += v
	}
	spare := cfg.TotalBudget - cfg.MinSamples*len(pts)
	if spare < 0 {
		spare = 0
	}
	out := make([]AdaptiveAllocation, len(pts))
	for k, p := range pts {
		extra := 0
		if total > 0 {
			extra = int(math.Round(float64(spare) * smoothed[k] / total))
		}
		out[k] = AdaptiveAllocation{
			SlewIdx: p.si, LoadIdx: p.li,
			Score:   smoothed[k],
			Samples: cfg.MinSamples + extra,
		}
	}
	return out
}

// AdaptiveCharacterizeArc runs the full two-pass flow and returns the
// second-pass distributions (delay and transition per point, sized by the
// allocation) together with the plan.
func AdaptiveCharacterizeArc(cfg AdaptiveConfig, arc Arc) ([]Distribution, []AdaptiveAllocation) {
	cfg = cfg.WithDefaults()
	plan := PlanAdaptive(cfg, arc)
	var out []Distribution
	for _, a := range plan {
		slew := cfg.Grid.Slews[a.SlewIdx]
		load := cfg.Grid.Loads[a.LoadIdx]
		rng := mc.NewRNG(cfg.Seed ^ arcSeed(arc.Label, 4096+a.SlewIdx*8+a.LoadIdx))
		res := arc.Elec.Characterize(cfg.Corner, rng, a.Samples, slew, load)
		nd, nt := arc.Elec.NominalEval(cfg.Corner, slew, load)
		out = append(out,
			Distribution{
				Arc: arc, SlewIdx: a.SlewIdx, LoadIdx: a.LoadIdx,
				Slew: slew, Load: load, Kind: Delay,
				Samples: res.Delays, NomDelay: nd,
			},
			Distribution{
				Arc: arc, SlewIdx: a.SlewIdx, LoadIdx: a.LoadIdx,
				Slew: slew, Load: load, Kind: Transition,
				Samples: res.Transitions, NomDelay: nt,
			})
	}
	return out, plan
}
