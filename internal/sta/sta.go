// Package sta is a block-based statistical static timing analyser that
// consumes a Liberty library (with classic LVF and/or LVF² attributes)
// and a structural gate-level netlist. It propagates nominal arrivals and
// slews plus, per requested model family, a statistical timing variable
// through the design — the "SSTA tool that supports LVF²" of the paper's
// backward-compatibility story (§3.3): the same engine runs on LVF-only
// libraries (single-SN algebra) and LVF² libraries (skew-normal-mixture
// algebra) without any input changes.
package sta

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/netlist"
	"lvf2/internal/ssta"
	"lvf2/internal/stats"
)

// Options configures a timing run.
type Options struct {
	// InputSlew is the transition time assumed at primary inputs (ns).
	// Default 0.01.
	InputSlew float64
	// OutputLoad is the capacitance at primary outputs (pF). Default the
	// library INV input cap ×4, or 0.004 when no INV exists.
	OutputLoad float64
	// WireCapPerFanout adds routing capacitance per fanout pin (pF).
	WireCapPerFanout float64
	// AllowMissingArcs tolerates connected input pins that have no timing
	// arc to any output (e.g. non-timing pins). Default false: a missing
	// arc silently truncates a timing path, so it is treated as an error.
	AllowMissingArcs bool
	// Families selects the statistical views to propagate. Only LVF and
	// LVF² are representable from Liberty data; default is both.
	Families []fit.Model
}

func (o Options) withDefaults(lib *liberty.Library) Options {
	if o.InputSlew <= 0 {
		o.InputSlew = 0.01
	}
	if o.OutputLoad <= 0 {
		o.OutputLoad = 0.004
		if inv, ok := lib.Cells["INV"]; ok {
			for _, p := range inv.Pins {
				if p.Direction == "input" && p.Capacitance > 0 {
					o.OutputLoad = 4 * p.Capacitance
				}
			}
		}
	}
	if len(o.Families) == 0 {
		o.Families = []fit.Model{fit.ModelLVF, fit.ModelLVF2}
	}
	return o
}

// NetArrival is the timing state at one net.
type NetArrival struct {
	Nominal float64 // nominal arrival time, ns
	Slew    float64 // nominal transition time, ns
	Vars    map[fit.Model]ssta.Var
}

// Result holds the full analysis.
type Result struct {
	Module   string
	Arrivals map[string]NetArrival
	// CriticalOutput is the primary output with the largest nominal
	// arrival.
	CriticalOutput string
	// prev maps each driven net to the input net that set its nominal
	// arrival (the critical fan-in), enabling path tracing.
	prev map[string]string
	// prevInst names the instance along that critical edge.
	prevInst map[string]string
}

// Critical returns the arrival at the critical output.
func (r *Result) Critical() NetArrival {
	return r.Arrivals[r.CriticalOutput]
}

// Run analyses the module against the library.
func Run(lib *liberty.Library, m *netlist.Module, o Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults(lib)

	drivers := map[string]driverInfo{}
	loads := map[string]float64{}
	fanout := map[string]int{}

	// Resolve cells, find each net's unique driver, accumulate loads.
	for i := range m.Instances {
		inst := &m.Instances[i]
		cell, ok := lib.Cells[inst.Cell]
		if !ok {
			return nil, fmt.Errorf("sta: instance %q references unknown cell %q", inst.Name, inst.Cell)
		}
		for pinName, net := range inst.Conns {
			pin, ok := cell.Pins[pinName]
			if !ok {
				return nil, fmt.Errorf("sta: cell %s has no pin %q (instance %q)", cell.Name, pinName, inst.Name)
			}
			switch pin.Direction {
			case "output":
				if prev, dup := drivers[net]; dup {
					return nil, fmt.Errorf("sta: net %q driven by both %q and %q", net, prev.inst.Name, inst.Name)
				}
				drivers[net] = driverInfo{inst: inst, pin: pin}
			default:
				loads[net] += pin.Capacitance
				fanout[net]++
			}
		}
	}
	for _, p := range m.Ports {
		if p.Dir == netlist.Output {
			loads[p.Name] += o.OutputLoad
			fanout[p.Name]++
		}
	}
	for net, n := range fanout {
		loads[net] += o.WireCapPerFanout * float64(n)
	}
	for _, p := range m.Ports {
		if p.Dir == netlist.Input {
			if _, dup := drivers[p.Name]; dup {
				return nil, fmt.Errorf("sta: primary input %q is also driven by an instance", p.Name)
			}
		}
	}

	// Topological order over instances (Kahn on net dependencies).
	order, err := topoInstances(lib, m, drivers)
	if err != nil {
		return nil, err
	}

	arr := map[string]NetArrival{}
	prev := map[string]string{}
	prevInst := map[string]string{}
	for _, p := range m.Ports {
		if p.Dir == netlist.Input {
			arr[p.Name] = NetArrival{Nominal: 0, Slew: o.InputSlew, Vars: map[fit.Model]ssta.Var{}}
		}
	}

	for _, inst := range order {
		cell := lib.Cells[inst.Cell]
		if !o.AllowMissingArcs {
			if err := checkArcCoverage(inst, cell); err != nil {
				return nil, err
			}
		}
		for pinName, net := range inst.Conns {
			pin := cell.Pins[pinName]
			if pin.Direction != "output" {
				continue
			}
			na, critIn, err := evalOutput(inst, pin, net, loads[net], arr, o)
			if err != nil {
				return nil, err
			}
			arr[net] = na
			prev[net] = critIn
			prevInst[net] = inst.Name
		}
	}

	res := &Result{Module: m.Name, Arrivals: arr, prev: prev, prevInst: prevInst}
	worst := -1.0
	outs := m.Outputs()
	sort.Strings(outs)
	for _, out := range outs {
		if a, ok := arr[out]; ok && a.Nominal > worst {
			worst = a.Nominal
			res.CriticalOutput = out
		}
	}
	if res.CriticalOutput == "" {
		return nil, fmt.Errorf("sta: no primary output has a computed arrival")
	}
	return res, nil
}

// evalOutput computes the arrival at one instance output net: the
// statistical max over input arcs of (input arrival + arc delay). It also
// returns the input net that set the nominal arrival (the critical
// fan-in).
func evalOutput(inst *netlist.Instance, outPin *liberty.Pin, net string, load float64, arr map[string]NetArrival, o Options) (NetArrival, string, error) {
	out := NetArrival{Nominal: -1, Vars: map[fit.Model]ssta.Var{}}
	critIn := ""
	anyArc := false
	for _, arc := range outPin.Timings {
		inNet, connected := inst.Conns[arc.RelatedPin]
		if !connected {
			continue
		}
		in, ok := arr[inNet]
		if !ok {
			return out, "", fmt.Errorf("sta: instance %q input %s (net %q) has no arrival", inst.Name, arc.RelatedPin, inNet)
		}
		delayTM, ok := arc.Tables["cell_rise"]
		if !ok {
			continue
		}
		anyArc = true

		dNom := delayTM.NominalAtPoint(in.Slew, load)
		if cand := in.Nominal + dNom; cand > out.Nominal {
			out.Nominal = cand
			critIn = inNet
		}
		// Output slew: worst transition across arcs.
		if transTM, ok := arc.Tables["rise_transition"]; ok {
			if tr := transTM.NominalAtPoint(in.Slew, load); tr > out.Slew {
				out.Slew = tr
			}
		}

		for _, fam := range o.Families {
			v, err := arcVar(fam, delayTM, in.Slew, load)
			if err != nil {
				return out, "", fmt.Errorf("sta: instance %q arc %s->%s: %w", inst.Name, arc.RelatedPin, outPin.Name, err)
			}
			// Sum with the input arrival variable (if any), then max with
			// arrivals from other arcs.
			if prev, ok := in.Vars[fam]; ok && prev != nil {
				if v, err = prev.Sum(v); err != nil {
					return out, "", err
				}
			}
			if acc, ok := out.Vars[fam]; ok && acc != nil {
				if v, err = acc.Max(v); err != nil {
					return out, "", err
				}
			}
			out.Vars[fam] = v
		}
	}
	if !anyArc {
		return out, "", fmt.Errorf("sta: instance %q output %s has no usable timing arc", inst.Name, outPin.Name)
	}
	if out.Slew == 0 {
		out.Slew = o.InputSlew
	}
	return out, critIn, nil
}

// PathStep is one hop of a traced critical path.
type PathStep struct {
	Net      string
	Instance string // instance driving Net ("" for primary inputs)
	Arrival  float64
}

// CriticalPath traces the nominal critical path backwards from the given
// net (use Result.CriticalOutput for the worst path). The returned steps
// run input-to-output.
func (r *Result) CriticalPath(net string) []PathStep {
	var rev []PathStep
	seen := map[string]bool{}
	for net != "" && !seen[net] {
		seen[net] = true
		rev = append(rev, PathStep{
			Net:      net,
			Instance: r.prevInst[net],
			Arrival:  r.Arrivals[net].Nominal,
		})
		net = r.prev[net]
	}
	out := make([]PathStep, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// arcVar builds the family's timing variable for one arc at one operating
// point.
func arcVar(fam fit.Model, tm *liberty.TimingModel, slew, load float64) (ssta.Var, error) {
	switch fam {
	case fit.ModelLVF:
		th, err := tm.LVFAtPoint(slew, load)
		if err != nil {
			return nil, err
		}
		return ssta.SNVar{SN: th.SN()}, nil
	case fit.ModelLVF2:
		m, err := tm.ModelAtPoint(slew, load)
		if err != nil {
			return nil, err
		}
		return varFromModel(m), nil
	default:
		return nil, fmt.Errorf("sta: family %v is not representable from Liberty data", fam)
	}
}

// checkArcCoverage verifies every connected input pin reaches some output
// through a timing arc; a missing arc would silently truncate paths.
func checkArcCoverage(inst *netlist.Instance, cell *liberty.Cell) error {
	for pinName := range inst.Conns {
		pin := cell.Pins[pinName]
		if pin.Direction == "output" {
			continue
		}
		covered := false
		for _, out := range cell.OutputPins() {
			if _, ok := out.ArcTo(pinName); ok {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("sta: cell %s has no timing arc from input %s (instance %q); set AllowMissingArcs to tolerate",
				cell.Name, pinName, inst.Name)
		}
	}
	return nil
}

// driverInfo records which instance output drives a net.
type driverInfo struct {
	inst *netlist.Instance
	pin  *liberty.Pin
}

// varFromModel converts a core model to a skew-normal-mixture timing
// variable (single component when λ = 0, per eq. 10).
func varFromModel(m core.Model) ssta.Var {
	if m.IsLVF() {
		return ssta.SNMixVar{
			Weights:  []float64{1},
			Comps:    []stats.SkewNormal{m.Theta1.SN()},
			MaxComps: 2,
		}
	}
	return ssta.SNMixVar{
		Weights:  []float64{1 - m.Lambda, m.Lambda},
		Comps:    []stats.SkewNormal{m.Theta1.SN(), m.Theta2.SN()},
		MaxComps: 2,
	}
}

// topoInstances orders instances so every input net's driver precedes its
// loads (Kahn's algorithm over instance dependencies).
func topoInstances(lib *liberty.Library, m *netlist.Module, drivers map[string]driverInfo) ([]*netlist.Instance, error) {
	// Instance -> instances it feeds.
	indeg := make(map[*netlist.Instance]int, len(m.Instances))
	succs := make(map[*netlist.Instance][]*netlist.Instance)
	piNets := map[string]bool{}
	for _, p := range m.Ports {
		if p.Dir == netlist.Input {
			piNets[p.Name] = true
		}
	}
	ptrs := make([]*netlist.Instance, len(m.Instances))
	for i := range m.Instances {
		ptrs[i] = &m.Instances[i]
		indeg[ptrs[i]] = 0
	}
	for _, inst := range ptrs {
		cell := lib.Cells[inst.Cell]
		for pinName, net := range inst.Conns {
			if cell.Pins[pinName].Direction == "output" {
				continue
			}
			d, ok := drivers[net]
			if !ok {
				continue
			}
			// net is an input of inst driven by d.inst (possibly inst
			// itself — a self-loop, caught as a cycle below).
			succs[d.inst] = append(succs[d.inst], inst)
			indeg[inst]++
		}
	}
	var queue []*netlist.Instance
	for _, inst := range ptrs {
		if indeg[inst] == 0 {
			queue = append(queue, inst)
		}
	}
	var out []*netlist.Instance
	for len(queue) > 0 {
		sort.Slice(queue, func(a, b int) bool { return queue[a].Name < queue[b].Name })
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, s := range succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(ptrs) {
		var remaining []*netlist.Instance
		for _, inst := range ptrs {
			if indeg[inst] > 0 {
				remaining = append(remaining, inst)
			}
		}
		return nil, newLoopError(lib, drivers, remaining)
	}
	return out, nil
}

// ErrCombinationalLoop is the sentinel every combinational-cycle
// failure wraps; branch with errors.Is and inspect the *LoopError for
// the offending nets.
var ErrCombinationalLoop = errors.New("sta: combinational loop detected")

// LoopError reports one combinational cycle found during topological
// ordering: the nets and instances along the cycle, in walk order.
type LoopError struct {
	// Nets are the nets on the cycle; Nets[i] is the input net of
	// Insts[i], driven by Insts[(i+1) % len].
	Nets  []string
	Insts []string
}

func (e *LoopError) Error() string {
	return fmt.Sprintf("sta: combinational loop detected through net %q (cycle: %s)",
		e.Nets[0], strings.Join(e.Insts, " -> "))
}

// Unwrap makes errors.Is(err, ErrCombinationalLoop) true.
func (e *LoopError) Unwrap() error { return ErrCombinationalLoop }

// newLoopError extracts one concrete cycle from the instances Kahn's
// algorithm could not order. Every such instance has at least one input
// net driven by another unordered instance, so walking predecessors
// must revisit a node; the walk is deterministic (sorted pins, sorted
// start) so the reported cycle is stable across runs.
func newLoopError(lib *liberty.Library, drivers map[string]driverInfo, remaining []*netlist.Instance) *LoopError {
	sort.Slice(remaining, func(a, b int) bool { return remaining[a].Name < remaining[b].Name })
	rem := make(map[*netlist.Instance]bool, len(remaining))
	for _, inst := range remaining {
		rem[inst] = true
	}
	pred := func(inst *netlist.Instance) (string, *netlist.Instance) {
		cell := lib.Cells[inst.Cell]
		pins := make([]string, 0, len(inst.Conns))
		for p := range inst.Conns {
			pins = append(pins, p)
		}
		sort.Strings(pins)
		for _, p := range pins {
			if cell.Pins[p].Direction == "output" {
				continue
			}
			net := inst.Conns[p]
			if d, ok := drivers[net]; ok && rem[d.inst] {
				return net, d.inst
			}
		}
		return "", nil
	}
	seen := make(map[*netlist.Instance]int)
	var nets, names []string
	cur := remaining[0]
	for cur != nil {
		if i, ok := seen[cur]; ok {
			return &LoopError{Nets: nets[i:], Insts: names[i:]}
		}
		seen[cur] = len(names)
		net, p := pred(cur)
		if p == nil {
			break // unreachable: an unordered instance always has an unordered driver
		}
		names = append(names, cur.Name)
		nets = append(nets, net)
		cur = p
	}
	return &LoopError{Nets: []string{"?"}, Insts: []string{remaining[0].Name}}
}

// YieldAtClock estimates the chip-level timing yield at a clock target T
// for the given model view: the probability that every primary output
// arrives by T. Outputs are combined under the standard independence
// approximation (shared-path correlation makes the true yield no lower
// than the product for positively correlated arrivals, so this is a
// conservative estimate for typical netlists).
func (r *Result) YieldAtClock(m *netlist.Module, fam fit.Model, t float64) (float64, error) {
	yield := 1.0
	found := false
	for _, out := range m.Outputs() {
		a, ok := r.Arrivals[out]
		if !ok {
			continue
		}
		v, ok := a.Vars[fam]
		if !ok || v == nil {
			return 0, fmt.Errorf("sta: output %q has no %v arrival", out, fam)
		}
		found = true
		yield *= v.Dist().CDF(t)
	}
	if !found {
		return 0, fmt.Errorf("sta: no primary output arrivals")
	}
	return yield, nil
}
