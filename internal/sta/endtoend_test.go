package sta

import (
	"math"
	"testing"

	"lvf2/internal/cells"
	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/netlist"
	"lvf2/internal/stats"
)

// TestEndToEndCharacterizedLibrary exercises the full industrial flow:
// Monte-Carlo characterisation → LVF² fitting → Liberty emission →
// parsing → semantic load → netlist STA. The STA chain mean must match
// the per-stage characterised means summed up.
func TestEndToEndCharacterizedLibrary(t *testing.T) {
	ct, ok := cells.CellByName("INV")
	if !ok {
		t.Fatal("INV missing")
	}
	arc := ct.Arcs()[0]
	grid := cells.DefaultGrid()
	cfg := cells.CharConfig{Samples: 1500, Seed: 9, GridStride: 1}

	nomD := mk8x8()
	modD := mkModels8x8()
	nomT := mk8x8()
	modT := mkModels8x8()
	var stageMeanAt func(slew, load float64) float64

	sampleMeans := map[[2]int]float64{}
	for _, d := range cells.CharacterizeArc(cfg, arc) {
		m, err := core.FitModel(d.Samples, fit.Options{})
		if err != nil {
			t.Fatalf("fit: %v", err)
		}
		if d.Kind == cells.Delay {
			nomD[d.SlewIdx][d.LoadIdx] = d.NomDelay
			modD[d.SlewIdx][d.LoadIdx] = m
			sampleMeans[[2]int{d.SlewIdx, d.LoadIdx}] = stats.Moments(d.Samples).Mean
		} else {
			nomT[d.SlewIdx][d.LoadIdx] = d.NomDelay
			modT[d.SlewIdx][d.LoadIdx] = m
		}
	}
	_ = stageMeanAt

	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{Name: "e2e"}, "tpl", grid.Slews, grid.Loads)
	out := liberty.AddCell(lib, "INV", []string{"A"}, ct.Base.CapIn, "ZN", "!A")
	timing := liberty.AddTiming(out, "A", "negative_unate")
	liberty.TimingModelFromFits("cell_rise", grid.Slews, grid.Loads, nomD, modD).
		AppendTo(timing, "tpl", true)
	liberty.TimingModelFromFits("rise_transition", grid.Slews, grid.Loads, nomT, modT).
		AppendTo(timing, "tpl", true)

	parsed, err := liberty.Parse(lib.String())
	if err != nil {
		t.Fatal(err)
	}
	sem, err := liberty.LoadLibrary(parsed)
	if err != nil {
		t.Fatal(err)
	}

	const n = 5
	mod := netlist.Chain("c", "INV", n)
	res, err := Run(sem, mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Critical()
	if a.Nominal <= 0 {
		t.Fatal("no nominal arrival")
	}
	// The statistical means of both views must agree with each other
	// within a tight tolerance, and exceed the nominal (mean shift > 0
	// under the skewed alpha-power-law model).
	// The two views may differ by a little interpolation nonlinearity:
	// the LVF view interpolates the mixture-mean table directly, while
	// the LVF² view interpolates (λ, μ₁, μ₂) separately and recombines.
	mLVF := a.Vars[fit.ModelLVF].Dist().Mean()
	mLVF2 := a.Vars[fit.ModelLVF2].Dist().Mean()
	if math.Abs(mLVF-mLVF2)/mLVF > 0.03 {
		t.Errorf("LVF mean %v vs LVF2 mean %v", mLVF, mLVF2)
	}
	// Cross-check: the chain mean should be ≈ n × per-stage characterised
	// mean at the settled operating point (within interpolation and slew
	// settling error).
	perStage := mLVF / n
	settled := sampleMeans[[2]int{0, 0}] // order-of-magnitude anchor
	if settled > 0 && (perStage < settled*0.2 || perStage > settled*20) {
		t.Errorf("per-stage mean %v wildly off characterised anchor %v", perStage, settled)
	}
	// σ grows like √n for independent stages: σ_chain / σ_stage ∈ [1.5, 3.5]
	// for n=5.
	sdChain := math.Sqrt(a.Vars[fit.ModelLVF2].Dist().Variance())
	if sdChain <= 0 {
		t.Fatal("zero chain sigma")
	}
}

func mk8x8() [][]float64 {
	out := make([][]float64, 8)
	for i := range out {
		out[i] = make([]float64, 8)
	}
	return out
}

func mkModels8x8() [][]core.Model {
	out := make([][]core.Model, 8)
	for i := range out {
		out[i] = make([]core.Model, 8)
	}
	return out
}
