package sta

import (
	"errors"
	"math"
	"strings"
	"testing"

	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/netlist"
)

// constLib builds a library whose cells have flat (slew/load-independent)
// tables so analytical expectations are exact. Each cell's delay is
// N(mean, sd²) in the LVF view and, when lambda > 0, a two-component
// mixture in the LVF² view.
func constLib(t *testing.T) *liberty.Library {
	t.Helper()
	i1 := []float64{0.001, 1.0}
	i2 := []float64{0.0001, 1.0}
	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{Name: "const"}, "tpl", i1, i2)

	addCell := func(name string, inputs []string, mean, sd, lambda, mean2 float64) {
		out := liberty.AddCell(lib, name, inputs, 0.001, "ZN", "")
		for _, in := range inputs {
			timing := liberty.AddTiming(out, in, "positive_unate")
			nom := [][]float64{{mean, mean}, {mean, mean}}
			var models [][]core.Model
			for r := 0; r < 2; r++ {
				row := make([]core.Model, 2)
				for c := 0; c < 2; c++ {
					m := core.Model{Theta1: core.Theta{Mean: mean, Sigma: sd}}
					if lambda > 0 {
						m.Lambda = lambda
						m.Theta1 = core.Theta{Mean: mean, Sigma: sd}
						m.Theta2 = core.Theta{Mean: mean2, Sigma: sd}
					}
					row[c] = m
				}
				models = append(models, row)
			}
			tm := liberty.TimingModelFromFits("cell_rise", i1, i2, nom, models)
			tm.AppendTo(timing, "tpl", true)
			// Constant transition of 0.01 ns.
			tr := liberty.TimingModelFromFits("rise_transition", i1, i2,
				[][]float64{{0.01, 0.01}, {0.01, 0.01}},
				[][]core.Model{
					{core.FromLVF(core.Theta{Mean: 0.01, Sigma: 0.001}), core.FromLVF(core.Theta{Mean: 0.01, Sigma: 0.001})},
					{core.FromLVF(core.Theta{Mean: 0.01, Sigma: 0.001}), core.FromLVF(core.Theta{Mean: 0.01, Sigma: 0.001})},
				})
			tr.AppendTo(timing, "tpl", false)
		}
	}
	addCell("INV", []string{"A"}, 0.100, 0.010, 0, 0)
	addCell("NAND2", []string{"A", "B"}, 0.120, 0.012, 0, 0)
	addCell("BIMO", []string{"A"}, 0.100, 0.008, 0.3, 0.150)

	parsed, err := liberty.Parse(lib.String())
	if err != nil {
		t.Fatal(err)
	}
	sem, err := liberty.LoadLibrary(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return sem
}

func TestChainArrivalExact(t *testing.T) {
	lib := constLib(t)
	m := netlist.Chain("c3", "INV", 3)
	res, err := Run(lib, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalOutput != "out" {
		t.Fatalf("critical output %q", res.CriticalOutput)
	}
	a := res.Critical()
	// Nominal: 3 × 0.100.
	if math.Abs(a.Nominal-0.300) > 1e-9 {
		t.Errorf("nominal %v want 0.300", a.Nominal)
	}
	// LVF variance: 3 × 0.01².
	lvf := a.Vars[fit.ModelLVF].Dist()
	if math.Abs(lvf.Mean()-0.300) > 1e-9 {
		t.Errorf("LVF mean %v", lvf.Mean())
	}
	wantVar := 3 * 0.010 * 0.010
	if math.Abs(lvf.Variance()-wantVar) > 1e-12 {
		t.Errorf("LVF var %v want %v", lvf.Variance(), wantVar)
	}
	// LVF² view on a λ=0 library agrees with LVF exactly (eq. 10).
	lvf2 := a.Vars[fit.ModelLVF2].Dist()
	if math.Abs(lvf2.Mean()-lvf.Mean()) > 1e-9 || math.Abs(lvf2.Variance()-lvf.Variance()) > 1e-12 {
		t.Errorf("LVF2 view diverges on LVF-only data: %v/%v vs %v/%v",
			lvf2.Mean(), lvf2.Variance(), lvf.Mean(), lvf.Variance())
	}
}

func TestBimodalCellPropagation(t *testing.T) {
	lib := constLib(t)
	m := netlist.Chain("b2", "BIMO", 2)
	res, err := Run(lib, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Critical()
	// Mixture mean per stage: 0.7·0.100 + 0.3·0.150 = 0.115.
	want := 2 * 0.115
	lvf2 := a.Vars[fit.ModelLVF2].Dist()
	if math.Abs(lvf2.Mean()-want) > 1e-9 {
		t.Errorf("LVF2 mean %v want %v", lvf2.Mean(), want)
	}
	// Classic view stores the mixture's overall moments, so means agree;
	// but the LVF² CDF must be non-Gaussian (visible mixture structure) —
	// compare shape at the antimode region.
	lvf := a.Vars[fit.ModelLVF].Dist()
	if math.Abs(lvf.Mean()-want) > 1e-9 {
		t.Errorf("LVF mean %v want %v", lvf.Mean(), want)
	}
	var maxDiff float64
	for x := 0.20; x < 0.32; x += 0.005 {
		if d := math.Abs(lvf2.CDF(x) - lvf.CDF(x)); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.01 {
		t.Errorf("LVF2 and LVF CDFs identical (%v) on bimodal data — mixture lost", maxDiff)
	}
}

func TestReconvergentMax(t *testing.T) {
	lib := constLib(t)
	// a -> INV u1 -> n1 ; a -> NAND2 u2(B=b) -> n2 ; NAND2 u3(n1, n2) -> y.
	m := &netlist.Module{
		Name: "diamond",
		Ports: []netlist.Port{
			{Name: "a", Dir: netlist.Input},
			{Name: "b", Dir: netlist.Input},
			{Name: "y", Dir: netlist.Output},
		},
		Wires: []string{"n1", "n2"},
		Instances: []netlist.Instance{
			{Name: "u1", Cell: "INV", Conns: map[string]string{"A": "a", "ZN": "n1"}},
			{Name: "u2", Cell: "NAND2", Conns: map[string]string{"A": "a", "B": "b", "ZN": "n2"}},
			{Name: "u3", Cell: "NAND2", Conns: map[string]string{"A": "n1", "B": "n2", "ZN": "y"}},
		},
	}
	res, err := Run(lib, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Critical()
	// Nominal: max(0.100, 0.120) + 0.120 = 0.240.
	if math.Abs(a.Nominal-0.240) > 1e-9 {
		t.Errorf("nominal %v want 0.240", a.Nominal)
	}
	// Statistical mean exceeds nominal (max of two close Gaussians).
	lvf := a.Vars[fit.ModelLVF].Dist()
	if lvf.Mean() <= a.Nominal {
		t.Errorf("statistical mean %v should exceed nominal %v at a near-tie max", lvf.Mean(), a.Nominal)
	}
}

func TestRunErrors(t *testing.T) {
	lib := constLib(t)
	// Unknown cell.
	bad := netlist.Chain("x", "XYZ", 1)
	if _, err := Run(lib, bad, Options{}); err == nil {
		t.Error("unknown cell accepted")
	}
	// Unknown pin.
	m := &netlist.Module{
		Name:  "badpin",
		Ports: []netlist.Port{{Name: "a", Dir: netlist.Input}, {Name: "y", Dir: netlist.Output}},
		Instances: []netlist.Instance{
			{Name: "u", Cell: "INV", Conns: map[string]string{"Q": "a", "ZN": "y"}},
		},
	}
	if _, err := Run(lib, m, Options{}); err == nil {
		t.Error("unknown pin accepted")
	}
	// Double driver.
	dd := &netlist.Module{
		Name:  "dd",
		Ports: []netlist.Port{{Name: "a", Dir: netlist.Input}, {Name: "y", Dir: netlist.Output}},
		Instances: []netlist.Instance{
			{Name: "u1", Cell: "INV", Conns: map[string]string{"A": "a", "ZN": "y"}},
			{Name: "u2", Cell: "INV", Conns: map[string]string{"A": "a", "ZN": "y"}},
		},
	}
	if _, err := Run(lib, dd, Options{}); err == nil {
		t.Error("double-driven net accepted")
	}
	// Combinational loop.
	loop := &netlist.Module{
		Name:  "loop",
		Ports: []netlist.Port{{Name: "y", Dir: netlist.Output}},
		Wires: []string{"n1"},
		Instances: []netlist.Instance{
			{Name: "u1", Cell: "INV", Conns: map[string]string{"A": "n1", "ZN": "y"}},
			{Name: "u2", Cell: "INV", Conns: map[string]string{"A": "y", "ZN": "n1"}},
		},
	}
	if _, err := Run(lib, loop, Options{}); err == nil {
		t.Error("combinational loop accepted")
	}
	// Driven primary input.
	dpi := &netlist.Module{
		Name:  "dpi",
		Ports: []netlist.Port{{Name: "a", Dir: netlist.Input}, {Name: "y", Dir: netlist.Output}},
		Instances: []netlist.Instance{
			{Name: "u1", Cell: "INV", Conns: map[string]string{"A": "y", "ZN": "a"}},
			{Name: "u2", Cell: "INV", Conns: map[string]string{"A": "a", "ZN": "y"}},
		},
	}
	if _, err := Run(lib, dpi, Options{}); err == nil {
		t.Error("driven primary input accepted")
	}
}

func TestCombinationalLoopTypedError(t *testing.T) {
	lib := constLib(t)
	// Two-inverter ring hanging off a driven output: u1 and u2 form the
	// cycle through nets n1 and n2.
	loop := &netlist.Module{
		Name:  "ring2",
		Ports: []netlist.Port{{Name: "a", Dir: netlist.Input}, {Name: "y", Dir: netlist.Output}},
		Wires: []string{"n1", "n2"},
		Instances: []netlist.Instance{
			{Name: "u0", Cell: "INV", Conns: map[string]string{"A": "a", "ZN": "y"}},
			{Name: "u1", Cell: "INV", Conns: map[string]string{"A": "n2", "ZN": "n1"}},
			{Name: "u2", Cell: "INV", Conns: map[string]string{"A": "n1", "ZN": "n2"}},
		},
	}
	_, err := Run(lib, loop, Options{})
	if err == nil {
		t.Fatal("combinational loop accepted")
	}
	if !errors.Is(err, ErrCombinationalLoop) {
		t.Fatalf("error %v does not wrap ErrCombinationalLoop", err)
	}
	var le *LoopError
	if !errors.As(err, &le) {
		t.Fatalf("error %v is not a *LoopError", err)
	}
	if len(le.Nets) != 2 || len(le.Insts) != 2 {
		t.Fatalf("cycle = nets %v insts %v, want the 2-gate ring", le.Nets, le.Insts)
	}
	for _, net := range le.Nets {
		if net != "n1" && net != "n2" {
			t.Errorf("reported net %q is not on the cycle", net)
		}
	}
	for _, inst := range le.Insts {
		if inst != "u1" && inst != "u2" {
			t.Errorf("reported instance %q is not on the cycle", inst)
		}
	}
	if msg := err.Error(); !strings.Contains(msg, "n1") && !strings.Contains(msg, "n2") {
		t.Errorf("message %q names no cycle net", msg)
	}
}

func TestRippleCarryAdderSTA(t *testing.T) {
	lib := constLib(t)
	m := netlist.RippleCarryAdder(8)
	res, err := Run(lib, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Critical()
	// The carry chain is 2 NAND2 per bit (g is one level off-chain):
	// critical nominal ≥ 16 × 0.120 (chain) and < 20 × 0.120.
	if a.Nominal < 16*0.120-1e-9 || a.Nominal > 20*0.120 {
		t.Errorf("adder critical arrival %v outside expectation", a.Nominal)
	}
	// Statistical views propagate all the way.
	if a.Vars[fit.ModelLVF] == nil || a.Vars[fit.ModelLVF2] == nil {
		t.Fatal("missing statistical arrivals")
	}
	sd := math.Sqrt(a.Vars[fit.ModelLVF].Dist().Variance())
	if sd <= 0.012 || sd > 0.012*6 {
		t.Errorf("path sigma %v implausible", sd)
	}
}

func TestMissingArcDetected(t *testing.T) {
	// Build a library whose NAND2 has an arc from A only.
	i1 := []float64{0.001, 1.0}
	i2 := []float64{0.0001, 1.0}
	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{Name: "gap"}, "tpl", i1, i2)
	out := liberty.AddCell(lib, "NAND2", []string{"A", "B"}, 0.001, "ZN", "")
	timing := liberty.AddTiming(out, "A", "positive_unate")
	tm := liberty.TimingModelFromFits("cell_rise", i1, i2,
		[][]float64{{0.1, 0.1}, {0.1, 0.1}},
		[][]core.Model{
			{core.FromLVF(core.Theta{Mean: 0.1, Sigma: 0.01}), core.FromLVF(core.Theta{Mean: 0.1, Sigma: 0.01})},
			{core.FromLVF(core.Theta{Mean: 0.1, Sigma: 0.01}), core.FromLVF(core.Theta{Mean: 0.1, Sigma: 0.01})},
		})
	tm.AppendTo(timing, "tpl", false)
	parsed, err := liberty.Parse(lib.String())
	if err != nil {
		t.Fatal(err)
	}
	sem, err := liberty.LoadLibrary(parsed)
	if err != nil {
		t.Fatal(err)
	}
	m := &netlist.Module{
		Name:  "g",
		Ports: []netlist.Port{{Name: "a", Dir: netlist.Input}, {Name: "b", Dir: netlist.Input}, {Name: "y", Dir: netlist.Output}},
		Instances: []netlist.Instance{
			{Name: "u", Cell: "NAND2", Conns: map[string]string{"A": "a", "B": "b", "ZN": "y"}},
		},
	}
	// Strict mode: error out.
	if _, err := Run(sem, m, Options{}); err == nil {
		t.Fatal("missing arc not detected")
	}
	// Permissive mode: path through A still analysed.
	res, err := Run(sem, m, Options{AllowMissingArcs: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Critical().Nominal-0.1) > 1e-9 {
		t.Errorf("permissive arrival %v", res.Critical().Nominal)
	}
}

func TestCriticalPathTrace(t *testing.T) {
	lib := constLib(t)
	m := netlist.Chain("c4", "INV", 4)
	res, err := Run(lib, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := res.CriticalPath(res.CriticalOutput)
	// in -> n0 -> n1 -> n2 -> out.
	if len(path) != 5 {
		t.Fatalf("path length %d: %+v", len(path), path)
	}
	if path[0].Net != "in" || path[len(path)-1].Net != "out" {
		t.Errorf("endpoints: %+v", path)
	}
	// Arrivals increase monotonically along the path.
	for i := 1; i < len(path); i++ {
		if path[i].Arrival <= path[i-1].Arrival {
			t.Errorf("arrival not increasing at %d: %+v", i, path)
		}
	}
	// The driving instances are u0..u3 in order.
	if path[1].Instance != "u0" || path[4].Instance != "u3" {
		t.Errorf("instances: %+v", path)
	}
}

func TestCriticalPathThroughDiamond(t *testing.T) {
	lib := constLib(t)
	m := &netlist.Module{
		Name: "diamond2",
		Ports: []netlist.Port{
			{Name: "a", Dir: netlist.Input},
			{Name: "y", Dir: netlist.Output},
		},
		Wires: []string{"fast", "slow"},
		Instances: []netlist.Instance{
			{Name: "uf", Cell: "INV", Conns: map[string]string{"A": "a", "ZN": "fast"}},             // 0.100
			{Name: "us", Cell: "NAND2", Conns: map[string]string{"A": "a", "B": "a", "ZN": "slow"}}, // 0.120
			{Name: "uj", Cell: "NAND2", Conns: map[string]string{"A": "fast", "B": "slow", "ZN": "y"}},
		},
	}
	res, err := Run(lib, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := res.CriticalPath("y")
	// Critical fan-in of y is the slow branch.
	if len(path) != 3 || path[1].Net != "slow" {
		t.Errorf("critical path should go through the slow branch: %+v", path)
	}
}

func TestYieldAtClock(t *testing.T) {
	lib := constLib(t)
	m := netlist.Chain("c2", "INV", 2)
	res, err := Run(lib, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Chain of 2 × N(0.1, 0.01²): arrival N(0.2, σ=0.01414).
	sd := 0.01 * math.Sqrt2
	yMean, err := res.YieldAtClock(m, fit.ModelLVF, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(yMean-0.5) > 0.01 {
		t.Errorf("yield at mean %v want 0.5", yMean)
	}
	y3s, err := res.YieldAtClock(m, fit.ModelLVF, 0.2+3*sd)
	if err != nil {
		t.Fatal(err)
	}
	if y3s < 0.998 {
		t.Errorf("3σ yield %v", y3s)
	}
	// Unknown family errors.
	if _, err := res.YieldAtClock(m, fit.ModelLESN, 0.2); err == nil {
		t.Error("missing family accepted")
	}
	// Multi-output module: yield is the product across outputs.
	two := &netlist.Module{
		Name: "two",
		Ports: []netlist.Port{
			{Name: "a", Dir: netlist.Input},
			{Name: "y1", Dir: netlist.Output},
			{Name: "y2", Dir: netlist.Output},
		},
		Instances: []netlist.Instance{
			{Name: "u1", Cell: "INV", Conns: map[string]string{"A": "a", "ZN": "y1"}},
			{Name: "u2", Cell: "INV", Conns: map[string]string{"A": "a", "ZN": "y2"}},
		},
	}
	res2, err := Run(lib, two, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y, err := res2.YieldAtClock(two, fit.ModelLVF, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-0.25) > 0.01 {
		t.Errorf("two-output yield at both means %v want 0.25", y)
	}
}
