// Package opt provides the small derivative-free optimisers used by the
// model-fitting code: a Nelder–Mead simplex for multivariate minimisation
// (LESN moment matching, optional LVF² MLE polish) and scalar helpers.
package opt

import (
	"math"
)

// NelderMeadOptions configures the simplex search.
type NelderMeadOptions struct {
	// MaxIter bounds the number of iterations (default 400·dim).
	MaxIter int
	// TolF stops when the simplex function spread falls below it
	// (default 1e-10).
	TolF float64
	// TolX stops when the simplex diameter falls below it (default 1e-10).
	TolX float64
	// Step is the initial simplex displacement per coordinate
	// (default 5% of |x| or 0.05 for zero coordinates).
	Step float64
}

// Workspace holds the scratch buffers of one Nelder–Mead run so repeated
// searches of the same dimensionality (the EM/ECM fitting loops) perform
// no steady-state heap allocations. A Workspace is not safe for
// concurrent use; the zero value is ready.
type Workspace struct {
	dim  int
	pts  [][]float64
	vals []float64
	centroid, xr, xe, xc, best []float64
}

// grow (re)sizes the buffers for dimension n, reusing them when possible.
func (w *Workspace) grow(n int) {
	if w.dim == n && w.pts != nil {
		return
	}
	w.dim = n
	w.pts = make([][]float64, n+1)
	flat := make([]float64, (n+1)*n+5*n)
	for i := range w.pts {
		w.pts[i], flat = flat[:n:n], flat[n:]
	}
	w.centroid, flat = flat[:n:n], flat[n:]
	w.xr, flat = flat[:n:n], flat[n:]
	w.xe, flat = flat[:n:n], flat[n:]
	w.xc, flat = flat[:n:n], flat[n:]
	w.best = flat[:n:n]
	w.vals = make([]float64, n+1)
}

// NelderMead minimises f starting from x0 and returns the best point and
// value. f may return +Inf to reject infeasible points.
func NelderMead(f func([]float64) float64, x0 []float64, o NelderMeadOptions) ([]float64, float64) {
	var ws Workspace
	return NelderMeadWs(f, x0, o, &ws)
}

// NelderMeadWs is NelderMead reusing the given workspace buffers. The
// returned best point aliases the workspace and is valid until the next
// call with the same workspace.
func NelderMeadWs(f func([]float64) float64, x0 []float64, o NelderMeadOptions, ws *Workspace) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 400 * n
	}
	if o.TolF <= 0 {
		o.TolF = 1e-10
	}
	if o.TolX <= 0 {
		o.TolX = 1e-10
	}
	if o.Step <= 0 {
		o.Step = 0.05
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	if ws == nil {
		ws = &Workspace{}
	}
	ws.grow(n)

	// Initial simplex: x0 plus per-coordinate displacements.
	pts := ws.pts
	vals := ws.vals
	for i := range pts {
		p := pts[i]
		copy(p, x0)
		if i > 0 {
			j := i - 1
			d := o.Step * math.Abs(p[j])
			if d == 0 {
				d = o.Step
			}
			p[j] += d
		}
		vals[i] = f(p)
	}

	order := func() {
		// Insertion sort: the simplex is nearly sorted between iterations.
		for i := 1; i <= n; i++ {
			p, v := pts[i], vals[i]
			j := i - 1
			for j >= 0 && vals[j] > v {
				pts[j+1], vals[j+1] = pts[j], vals[j]
				j--
			}
			pts[j+1], vals[j+1] = p, v
		}
	}
	order()

	centroid, xr, xe, xc := ws.centroid, ws.xr, ws.xe, ws.xc

	for iter := 0; iter < o.MaxIter; iter++ {
		// Converged only when both the value spread and the simplex
		// diameter are small: points straddling a minimum can have equal
		// values while still being far from it.
		var diam float64
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(pts[i][j] - pts[0][j]); d > diam {
					diam = d
				}
			}
		}
		if math.Abs(vals[n]-vals[0]) < o.TolF && diam < o.TolX {
			break
		}

		// Centroid of all but the worst point.
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += pts[i][j]
			}
			centroid[j] = s / float64(n)
		}

		// Reflection.
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-pts[n][j])
		}
		fr := f(xr)
		switch {
		case fr < vals[0]:
			// Expansion.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			if fe := f(xe); fe < fr {
				copy(pts[n], xe)
				vals[n] = fe
			} else {
				copy(pts[n], xr)
				vals[n] = fr
			}
		case fr < vals[n-1]:
			copy(pts[n], xr)
			vals[n] = fr
		default:
			// Contraction (outside if fr better than worst, else inside).
			if fr < vals[n] {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + rho*(xr[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] - rho*(centroid[j]-pts[n][j])
				}
			}
			if fc := f(xc); fc < math.Min(fr, vals[n]) {
				copy(pts[n], xc)
				vals[n] = fc
			} else {
				// Shrink towards the best point.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
		order()
	}
	copy(ws.best, pts[0])
	return ws.best, vals[0]
}
