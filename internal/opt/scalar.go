package opt

import "math"

// Bisect finds a root of f in [a, b] assuming f(a) and f(b) bracket zero.
// It returns the midpoint of the final bracket. If the endpoints do not
// bracket a root, it returns NaN.
func Bisect(f func(float64) float64, a, b float64, iters int) float64 {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a
	}
	if fb == 0 {
		return b
	}
	if fa*fb > 0 || math.IsNaN(fa) || math.IsNaN(fb) {
		return math.NaN()
	}
	if iters <= 0 {
		iters = 100
	}
	for i := 0; i < iters; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 {
			return m
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	_ = fb
	return 0.5 * (a + b)
}

// GoldenSection minimises a unimodal scalar function on [a, b].
func GoldenSection(f func(float64) float64, a, b float64, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-10
	}
	const invPhi = 0.6180339887498949
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return 0.5 * (a + b)
}
