package opt

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	x, v := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 {
		t.Errorf("minimiser %v", x)
	}
	if v > 1e-7 {
		t.Errorf("min value %v", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _ := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000})
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock minimiser %v", x)
	}
}

func TestNelderMeadRejectsInfeasible(t *testing.T) {
	// Constrained region x > 0 enforced by +Inf.
	f := func(x []float64) float64 {
		if x[0] <= 0 {
			return math.Inf(1)
		}
		return (math.Log(x[0]) - 1) * (math.Log(x[0]) - 1)
	}
	x, _ := NelderMead(f, []float64{0.5}, NelderMeadOptions{MaxIter: 2000})
	if math.Abs(x[0]-math.E) > 1e-3 {
		t.Errorf("constrained minimiser %v want e", x[0])
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	called := false
	_, v := NelderMead(func(x []float64) float64 { called = true; return 42 }, nil, NelderMeadOptions{})
	if !called || v != 42 {
		t.Error("empty input should evaluate f once")
	}
}

func TestNelderMeadZeroStartingPoint(t *testing.T) {
	// Starting exactly at a coordinate of zero must still build a
	// non-degenerate simplex.
	f := func(x []float64) float64 { return (x[0] - 0.5) * (x[0] - 0.5) }
	x, _ := NelderMead(f, []float64{0}, NelderMeadOptions{})
	if math.Abs(x[0]-0.5) > 1e-5 {
		t.Errorf("minimiser %v", x[0])
	}
}

func TestBisect(t *testing.T) {
	r := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 200)
	if math.Abs(r-math.Sqrt2) > 1e-12 {
		t.Errorf("sqrt2 root %v", r)
	}
	if !math.IsNaN(Bisect(func(x float64) float64 { return 1 }, 0, 1, 10)) {
		t.Error("non-bracketing input must return NaN")
	}
	if got := Bisect(func(x float64) float64 { return x }, 0, 1, 10); got != 0 {
		t.Errorf("exact root at endpoint: %v", got)
	}
}

func TestGoldenSection(t *testing.T) {
	m := GoldenSection(func(x float64) float64 { return (x - 0.7) * (x - 0.7) }, -1, 2, 1e-10)
	if math.Abs(m-0.7) > 1e-8 {
		t.Errorf("golden minimiser %v", m)
	}
}
