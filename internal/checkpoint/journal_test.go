package checkpoint

import (
	"errors"
	"path/filepath"
	"testing"

	"lvf2/internal/faultinject"
	"lvf2/internal/modelcache"
)

var testFP = Fingerprint{Library: "testlib", Seed: 42, Samples: 1000, GridStride: 1, Options: "format=lvf2"}

func testKey(i int) Key {
	return Key{Cell: "INV_X1", Pin: "A", Arc: "arc", Slew: i, Load: i % 3, Kind: "delay"}
}

func mustOpen(t *testing.T, fsys FS, dir string, fp Fingerprint, opts Options) *Journal {
	t.Helper()
	j, err := Open(fsys, dir, fp, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func TestJournalRoundtrip(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})

	payload := []byte{1, 2, 3, 4}
	if err := j.Done(testKey(0), 1, payload); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := j.Failed(testKey(1), 2, "eval blew up"); err != nil {
		t.Fatalf("Failed: %v", err)
	}
	if err := j.Quarantined(testKey(2), 3, "gaussian", "poison arc", []byte{9}); err != nil {
		t.Fatalf("Quarantined: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	rec, ok := j2.Lookup(testKey(0))
	if !ok || rec.Status != StatusDone || rec.Attempts != 1 || string(rec.Payload) != string(payload) {
		t.Errorf("done record = %+v ok=%v", rec, ok)
	}
	rec, ok = j2.Lookup(testKey(1))
	if !ok || rec.Status != StatusFailed || rec.Attempts != 2 || rec.Note != "eval blew up" {
		t.Errorf("failed record = %+v ok=%v", rec, ok)
	}
	rec, ok = j2.Lookup(testKey(2))
	if !ok || rec.Status != StatusQuarantined || rec.Rung != "gaussian" || rec.Note != "poison arc" || string(rec.Payload) != "\x09" {
		t.Errorf("quarantined record = %+v ok=%v", rec, ok)
	}
	if st := j2.Stats(); st.Resolved != 2 || st.Segments != 1 || st.TornRecords != 0 {
		t.Errorf("stats = %+v, want Resolved=2 Segments=1", st)
	}
}

func TestJournalLatestRecordWins(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	k := testKey(0)
	j.Failed(k, 1, "first")
	j.Flush()
	j.Failed(k, 2, "second")
	j.Done(k, 3, []byte("final"))
	j.Close()

	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	rec, ok := j2.Lookup(k)
	if !ok || rec.Status != StatusDone || rec.Attempts != 3 || string(rec.Payload) != "final" {
		t.Errorf("latest record should win, got %+v ok=%v", rec, ok)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	j.Done(testKey(0), 1, []byte("seg0"))
	j.Flush()
	j.Done(testKey(1), 1, []byte("kept"))
	j.Done(testKey(2), 1, []byte("torn-away"))
	j.Close()

	// Tear the newest segment mid-way through its final record: the kept
	// record replays, the torn one is dropped, earlier segments intact.
	last := filepath.Join("ckpt", segName(1))
	b, err := fsys.ReadFile(last)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	fsys.Truncate(last, len(b)-3)

	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	if _, ok := j2.Lookup(testKey(0)); !ok {
		t.Error("record in sealed earlier segment lost")
	}
	if _, ok := j2.Lookup(testKey(1)); !ok {
		t.Error("valid record before the torn tail lost")
	}
	if _, ok := j2.Lookup(testKey(2)); ok {
		t.Error("torn record replayed")
	}
	if st := j2.Stats(); st.TornRecords == 0 {
		t.Errorf("stats = %+v, want TornRecords > 0", st)
	}
}

func TestJournalTornBeforeHeaderTolerated(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	j.Done(testKey(0), 1, nil)
	j.Flush()
	j.Done(testKey(1), 1, nil)
	j.Close()
	fsys.Truncate(filepath.Join("ckpt", segName(1)), segHeaderLen-5)

	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	if _, ok := j2.Lookup(testKey(0)); !ok {
		t.Error("earlier segment lost")
	}
	if _, ok := j2.Lookup(testKey(1)); ok {
		t.Error("record from headerless torn segment replayed")
	}
}

func TestJournalMidCorruptionIsFatal(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	j.Done(testKey(0), 1, []byte("seg0"))
	j.Flush()
	j.Done(testKey(1), 1, []byte("seg1"))
	j.Close()

	// Any malformation in a non-newest segment is corruption, not a torn
	// tail: flip a payload byte so its record checksum fails.
	first := filepath.Join("ckpt", segName(0))
	b, _ := fsys.ReadFile(first)
	fsys.FlipByte(first, len(b)-1)

	_, err := Open(fsys, "ckpt", testFP, Options{})
	if !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("Open = %v, want ErrCorruptJournal", err)
	}
	if errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("mid-segment rot misreported as fingerprint mismatch: %v", err)
	}
}

func TestJournalBadMagicIsFatal(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	j.Done(testKey(0), 1, nil)
	j.Flush()
	j.Done(testKey(1), 1, nil)
	j.Close()
	fsys.FlipByte(filepath.Join("ckpt", segName(0)), 0)

	if _, err := Open(fsys, "ckpt", testFP, Options{}); !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("Open = %v, want ErrCorruptJournal", err)
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	j.Done(testKey(0), 1, nil)
	j.Close()

	other := testFP
	other.Seed++
	_, err := Open(fsys, "ckpt", other, Options{})
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("Open = %v, want ErrFingerprintMismatch", err)
	}
	if !errors.Is(err, ErrCorruptJournal) {
		t.Fatal("ErrFingerprintMismatch must also read as ErrCorruptJournal")
	}
}

func TestJournalFlushEveryRotation(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{FlushEvery: 2})
	for i := 0; i < 5; i++ {
		j.Done(testKey(i), 1, nil)
	}
	// 5 records at FlushEvery=2: two auto-sealed segments, one pending.
	if st := j.Stats(); st.Segments != 2 {
		t.Errorf("segments before close = %d, want 2", st.Segments)
	}
	j.Close()
	if st := j.Stats(); st.Segments != 3 {
		t.Errorf("segments after close = %d, want 3", st.Segments)
	}

	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	if st := j2.Stats(); st.Resolved != 5 || st.Segments != 3 {
		t.Errorf("replay stats = %+v, want Resolved=5 Segments=3", st)
	}
}

func TestJournalReset(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	j.Done(testKey(0), 1, nil)
	j.Close()

	if err := Reset(fsys, "ckpt"); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	if st := j2.Stats(); st.Resolved != 0 || st.Segments != 0 {
		t.Errorf("post-reset stats = %+v, want cold start", st)
	}
	if err := Reset(fsys, "no-such-dir"); err != nil {
		t.Errorf("Reset on missing dir: %v", err)
	}
}

// flakyFS fails the first failN Rename calls, simulating a transiently
// full or erroring disk during segment installation.
type flakyFS struct {
	*faultinject.MemFS
	failN int
}

func (f *flakyFS) Rename(oldpath, newpath string) error {
	if f.failN > 0 {
		f.failN--
		return errors.New("injected rename failure")
	}
	return f.MemFS.Rename(oldpath, newpath)
}

func TestJournalSealFailureKeepsRecordsPending(t *testing.T) {
	fsys := &flakyFS{MemFS: faultinject.NewMemFS(), failN: 1}
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	j.Done(testKey(0), 1, []byte("survivor"))

	if err := j.Flush(); err == nil {
		t.Fatal("Flush should surface the seal failure")
	}
	if st := j.Stats(); st.AppendErrs != 1 || st.Segments != 0 {
		t.Errorf("stats after failed seal = %+v", st)
	}
	// The record stays pending and in the in-memory state…
	if _, ok := j.Lookup(testKey(0)); !ok {
		t.Fatal("record lost from memory after failed seal")
	}
	// …and the next Flush retries and lands it durably.
	if err := j.Close(); err != nil {
		t.Fatalf("Close retry: %v", err)
	}
	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	if rec, ok := j2.Lookup(testKey(0)); !ok || string(rec.Payload) != "survivor" {
		t.Errorf("record not durable after retried seal: %+v ok=%v", rec, ok)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Done(testKey(0), 1, nil); err != nil {
		t.Errorf("nil Done: %v", err)
	}
	if _, ok := j.Lookup(testKey(0)); ok {
		t.Error("nil Lookup found a record")
	}
	if err := j.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if recs := j.Records(); recs != nil {
		t.Errorf("nil Records = %v", recs)
	}
}

func TestJournalOSFS(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	var fsys FS = OSFS{OSFS: modelcache.OSFS{}}
	j := mustOpen(t, fsys, dir, testFP, Options{})
	j.Done(testKey(0), 1, []byte("on disk"))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2 := mustOpen(t, fsys, dir, testFP, Options{})
	if rec, ok := j2.Lookup(testKey(0)); !ok || string(rec.Payload) != "on disk" {
		t.Errorf("OSFS roundtrip: %+v ok=%v", rec, ok)
	}
}
