package checkpoint

import (
	"context"
	"errors"
	"fmt"

	"lvf2/internal/pool"
)

// ErrUnitDropped marks a unit whose run attempts were exhausted and
// whose salvage (quarantine emission) also failed or was not provided.
// The unit is journaled as quarantined with no payload, so the rest of
// the library proceeds and a resume does not retry it.
var ErrUnitDropped = errors.New("checkpoint: unit quarantined with no salvage result")

// Unit is the resolved outcome of one work unit.
type Unit struct {
	Key Key
	// Payload is the serialised unit result (nil only for a dropped
	// quarantined unit).
	Payload []byte
	// Restored reports the result came from the journal, not a fresh
	// computation.
	Restored bool
	// Quarantined reports the unit exhausted its retry budget and
	// Payload (if any) is a degraded salvage emission.
	Quarantined bool
	// Rung names the degradation rung that produced a quarantined
	// payload.
	Rung string
	// Note carries provenance (the last failure cause for quarantined
	// units), destined for the Liberty ocv_fallback_note_* attribute.
	Note string
	// Attempts is how many run attempts the unit consumed in total,
	// across restarts.
	Attempts int
}

// Runner executes work units with journaled resume, retry with jittered
// exponential backoff, and poison-unit quarantine. A nil Journal is
// valid: units then only get the retry/quarantine behaviour.
type Runner struct {
	Journal *Journal
	Policy  RetryPolicy
}

// Do resolves one unit.
//
//   - If the journal already holds a terminal record for k (Done or
//     Quarantined), its payload is returned with Restored set and run is
//     never invoked — the no-recompute guarantee of resume.
//   - Otherwise run is attempted up to Policy.MaxAttempts times (counting
//     failed attempts journaled by previous processes), with backoff
//     between attempts. Panics inside run are recovered into errors and
//     count as failures.
//   - When the budget is exhausted the unit is poison: salvage (if
//     non-nil) produces the degraded stand-in payload and the rung that
//     made it, which is journaled as quarantined so the rest of the run —
//     and every future resume — proceeds without re-touching the unit.
//
// Context cancellation is not a unit fault: Do returns the context
// error without journaling a failure, leaving the unit runnable after
// resume.
//
// Payload purity. The no-recompute guarantee only yields bit-identical
// resumes if run is a pure function of the unit key and the
// fingerprinted configuration. A run callback MAY derive state from
// *other units' journaled payloads* — libbuild's warm-start seeds are
// decoded from the anchor unit's payload bytes — provided the
// derivation itself is deterministic and the dependency always resolves
// through the payload (never a richer in-memory value a fresh process
// would not have), so a unit computed after a restore is byte-equal to
// one computed in the original run. Anything that would make payloads
// depend on scheduling, wall clock or process identity must instead go
// into the config fingerprint, the key, or a payload field.
func (r *Runner) Do(ctx context.Context, k Key, run func(context.Context) ([]byte, error), salvage func(lastErr error) (payload []byte, rung string, err error)) (Unit, error) {
	if rec, ok := r.Journal.Lookup(k); ok {
		switch rec.Status {
		case StatusDone:
			unitsRestored.Inc()
			return Unit{Key: k, Payload: rec.Payload, Restored: true, Attempts: rec.Attempts}, nil
		case StatusQuarantined:
			unitsRestored.Inc()
			return Unit{Key: k, Payload: rec.Payload, Restored: true, Quarantined: true,
				Rung: rec.Rung, Note: rec.Note, Attempts: rec.Attempts}, nil
		}
	}
	p := r.Policy.withDefaults()
	attempts := 0
	if rec, ok := r.Journal.Lookup(k); ok && rec.Status == StatusFailed {
		attempts = rec.Attempts
	}

	var lastErr error
	for attempts < p.MaxAttempts {
		if err := ctx.Err(); err != nil {
			return Unit{Key: k}, err
		}
		attempts++
		var payload []byte
		err := pool.Protect(k.String(), func() error {
			b, rerr := run(ctx)
			if rerr != nil {
				return rerr
			}
			payload = b
			return nil
		})
		if err == nil {
			r.Journal.Done(k, attempts, payload)
			unitsDone.Inc()
			return Unit{Key: k, Payload: payload, Attempts: attempts}, nil
		}
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			// The run observed our cancellation, not a unit fault.
			return Unit{Key: k}, cerr
		}
		lastErr = err
		r.Journal.Failed(k, attempts, err.Error())
		if attempts < p.MaxAttempts {
			unitsRetried.Inc()
			if serr := p.Sleep(ctx, p.Delay(k, attempts)); serr != nil {
				return Unit{Key: k}, serr
			}
		}
	}
	if lastErr == nil {
		// The journal said the budget was already spent before this
		// process saw a single failure.
		lastErr = fmt.Errorf("checkpoint: retry budget exhausted in a previous run")
	}

	unitsQuarantined.Inc()
	note := fmt.Sprintf("quarantined after %d attempts: %v", attempts, lastErr)
	if salvage == nil {
		r.Journal.Quarantined(k, attempts, "dropped", note, nil)
		return Unit{Key: k, Quarantined: true, Rung: "dropped", Note: note, Attempts: attempts},
			fmt.Errorf("%w: %s: %v", ErrUnitDropped, k, lastErr)
	}
	payload, rung, serr := salvage(lastErr)
	if serr != nil {
		note = fmt.Sprintf("%s; salvage failed: %v", note, serr)
		r.Journal.Quarantined(k, attempts, "dropped", note, nil)
		return Unit{Key: k, Quarantined: true, Rung: "dropped", Note: note, Attempts: attempts},
			fmt.Errorf("%w: %s: %v", ErrUnitDropped, k, serr)
	}
	r.Journal.Quarantined(k, attempts, rung, note, payload)
	return Unit{Key: k, Payload: payload, Quarantined: true, Rung: rung, Note: note, Attempts: attempts}, nil
}
