package checkpoint

import (
	"context"
	"os"
	"os/signal"
	"sync"
)

// SignalTrap cancels a context on SIGINT/SIGTERM (or any signal set) so
// the characterisation CLIs can stop dispatch, flush the journal and
// exit with a "resume with -resume" hint instead of losing the run. The
// first signal is remembered; a second signal restores default handling
// (Stop is deferred-safe), so a stuck pipeline can still be killed.
type SignalTrap struct {
	ch     chan os.Signal
	cancel context.CancelFunc
	done   chan struct{}

	mu  sync.Mutex
	got os.Signal
}

// TrapSignals returns a context cancelled when one of sigs arrives,
// plus the trap for inspecting which signal fired. Call Stop when the
// run finishes.
func TrapSignals(ctx context.Context, sigs ...os.Signal) (context.Context, *SignalTrap) {
	ctx, cancel := context.WithCancel(ctx)
	t := &SignalTrap{
		ch:     make(chan os.Signal, 1),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	signal.Notify(t.ch, sigs...)
	go func() {
		defer close(t.done)
		select {
		case s := <-t.ch:
			t.mu.Lock()
			t.got = s
			t.mu.Unlock()
			signal.Stop(t.ch) // a second signal gets default handling
			cancel()
		case <-ctx.Done():
			signal.Stop(t.ch)
		}
	}()
	return ctx, t
}

// Signal returns the trapped signal, or nil if none fired.
func (t *SignalTrap) Signal() os.Signal {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.got
}

// Stop deregisters the trap and releases its goroutine. The returned
// context is cancelled as a side effect.
func (t *SignalTrap) Stop() {
	signal.Stop(t.ch)
	t.cancel()
	<-t.done
}
