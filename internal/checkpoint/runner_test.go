package checkpoint

import (
	"context"
	"errors"
	"testing"
	"time"

	"lvf2/internal/faultinject"
)

// fakeSleep records requested backoff delays without waiting.
type fakeSleep struct{ delays []time.Duration }

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	return ctx.Err()
}

func testRunner(j *Journal, sl *fakeSleep) *Runner {
	return &Runner{Journal: j, Policy: RetryPolicy{MaxAttempts: 3, Sleep: sl.sleep}}
}

func TestRunnerDoneAndRestore(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	r := testRunner(j, &fakeSleep{})
	k := testKey(0)

	runs := 0
	run := func(context.Context) ([]byte, error) { runs++; return []byte("result"), nil }
	u, err := r.Do(context.Background(), k, run, nil)
	if err != nil || u.Restored || string(u.Payload) != "result" || u.Attempts != 1 {
		t.Fatalf("first Do = %+v, %v", u, err)
	}

	// Same process: the journal now answers without re-running.
	u, err = r.Do(context.Background(), k, run, nil)
	if err != nil || !u.Restored || string(u.Payload) != "result" {
		t.Fatalf("second Do = %+v, %v", u, err)
	}
	if runs != 1 {
		t.Errorf("run invoked %d times, want 1", runs)
	}

	// Fresh process over the sealed journal: still restored.
	j.Close()
	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	u, err = testRunner(j2, &fakeSleep{}).Do(context.Background(), k, run, nil)
	if err != nil || !u.Restored || string(u.Payload) != "result" {
		t.Fatalf("resumed Do = %+v, %v", u, err)
	}
	if runs != 1 {
		t.Errorf("terminal unit recomputed after resume (%d runs)", runs)
	}
}

func TestRunnerRetryThenQuarantineWithSalvage(t *testing.T) {
	j := mustOpen(t, faultinject.NewMemFS(), "ckpt", testFP, Options{})
	sl := &fakeSleep{}
	r := testRunner(j, sl)
	k := testKey(1)

	runs := 0
	run := func(context.Context) ([]byte, error) { runs++; return nil, errors.New("poison") }
	salvage := func(lastErr error) ([]byte, string, error) {
		if lastErr == nil {
			t.Error("salvage called with nil lastErr")
		}
		return []byte("degraded"), "floored-gaussian", nil
	}
	u, err := r.Do(context.Background(), k, run, salvage)
	if err != nil {
		t.Fatalf("Do with salvage: %v", err)
	}
	if !u.Quarantined || u.Rung != "floored-gaussian" || string(u.Payload) != "degraded" {
		t.Errorf("unit = %+v", u)
	}
	if runs != 3 {
		t.Errorf("run invoked %d times, want MaxAttempts=3", runs)
	}
	if len(sl.delays) != 2 {
		t.Errorf("slept %d times, want 2 (between 3 attempts)", len(sl.delays))
	}
	if rec, ok := j.Lookup(k); !ok || rec.Status != StatusQuarantined || rec.Rung != "floored-gaussian" {
		t.Errorf("journal record = %+v ok=%v", rec, ok)
	}

	// Quarantine is terminal: the next Do restores the salvage emission.
	u, err = r.Do(context.Background(), k, run, salvage)
	if err != nil || !u.Restored || !u.Quarantined || string(u.Payload) != "degraded" {
		t.Fatalf("restored quarantined unit = %+v, %v", u, err)
	}
	if runs != 3 {
		t.Errorf("quarantined unit re-ran (%d runs)", runs)
	}
}

func TestRunnerQuarantineDroppedWithoutSalvage(t *testing.T) {
	j := mustOpen(t, faultinject.NewMemFS(), "ckpt", testFP, Options{})
	r := testRunner(j, &fakeSleep{})
	k := testKey(2)

	run := func(context.Context) ([]byte, error) { return nil, errors.New("poison") }
	u, err := r.Do(context.Background(), k, run, nil)
	if !errors.Is(err, ErrUnitDropped) {
		t.Fatalf("Do = %v, want ErrUnitDropped", err)
	}
	if !u.Quarantined || u.Rung != "dropped" || u.Payload != nil {
		t.Errorf("unit = %+v", u)
	}
	if rec, ok := j.Lookup(k); !ok || rec.Status != StatusQuarantined || rec.Payload != nil {
		t.Errorf("journal record = %+v ok=%v", rec, ok)
	}
}

func TestRunnerFailedBudgetPersistsAcrossRestart(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{})
	k := testKey(3)

	// "Previous process": two failed attempts journaled, then a crash.
	j.Failed(k, 2, "eval blew up")
	j.Close()

	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{})
	runs := 0
	run := func(context.Context) ([]byte, error) { runs++; return nil, errors.New("still poison") }
	u, err := testRunner(j2, &fakeSleep{}).Do(context.Background(), k, run, nil)
	if !errors.Is(err, ErrUnitDropped) {
		t.Fatalf("Do = %v, want ErrUnitDropped", err)
	}
	if runs != 1 {
		t.Errorf("run invoked %d times, want 1 (2 of 3 attempts spent before restart)", runs)
	}
	if u.Attempts != 3 {
		t.Errorf("total attempts = %d, want 3", u.Attempts)
	}
}

func TestRunnerPanicIsAFailure(t *testing.T) {
	j := mustOpen(t, faultinject.NewMemFS(), "ckpt", testFP, Options{})
	r := testRunner(j, &fakeSleep{})
	k := testKey(4)

	runs := 0
	run := func(context.Context) ([]byte, error) {
		runs++
		if runs < 3 {
			panic("characterisation kernel exploded")
		}
		return []byte("recovered"), nil
	}
	u, err := r.Do(context.Background(), k, run, nil)
	if err != nil || string(u.Payload) != "recovered" || u.Attempts != 3 {
		t.Fatalf("Do = %+v, %v (runs=%d)", u, err, runs)
	}
}

func TestRunnerCancellationIsNotAUnitFault(t *testing.T) {
	j := mustOpen(t, faultinject.NewMemFS(), "ckpt", testFP, Options{})
	r := testRunner(j, &fakeSleep{})
	k := testKey(5)

	ctx, cancel := context.WithCancel(context.Background())
	run := func(c context.Context) ([]byte, error) {
		cancel() // the kill arrives mid-unit
		return nil, c.Err()
	}
	_, err := r.Do(ctx, k, run, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	// The unit must stay runnable after resume: no failure journaled.
	if rec, ok := j.Lookup(k); ok {
		t.Errorf("cancellation journaled as %v", rec.Status)
	}
}

// TestRunnerCancellationRacesLeaseExpiryRerunnable is the distributed
// re-lease scenario at the Runner level: a worker's context is
// cancelled mid-unit (its lease expired, or the process was told to
// die) while the same unit is being re-run elsewhere. The cancelled Do
// must journal the unit as neither Done nor Failed — across a seal and
// a reopen — and the unit must run cleanly on resume, producing exactly
// one terminal record in the full append history.
func TestRunnerCancellationRacesLeaseExpiryRerunnable(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{FlushEvery: 1})
	k := testKey(9)

	ctx, cancel := context.WithCancel(context.Background())
	_, err := testRunner(j, &fakeSleep{}).Do(ctx, k, func(c context.Context) ([]byte, error) {
		cancel() // lease expiry lands mid-computation
		return nil, c.Err()
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Do = %v, want context.Canceled", err)
	}
	j.Close()

	// The sealed journal must hold nothing for the unit: a cancelled run
	// is a scheduling event, not a unit outcome.
	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{FlushEvery: 1})
	if rec, ok := j2.Lookup(k); ok {
		t.Fatalf("cancelled unit journaled as %v", rec.Status)
	}

	// Resume: the unit runs cleanly, first attempt, full retry budget.
	u, err := testRunner(j2, &fakeSleep{}).Do(context.Background(), k,
		func(context.Context) ([]byte, error) { return []byte("redone"), nil }, nil)
	if err != nil || u.Restored || string(u.Payload) != "redone" || u.Attempts != 1 {
		t.Fatalf("re-run after cancellation = %+v, %v", u, err)
	}
	j2.Close()

	// The full append history holds exactly one terminal record for k.
	recs, err := ReplayRecords(fsys, "ckpt", testFP)
	if err != nil {
		t.Fatalf("ReplayRecords: %v", err)
	}
	terminal := 0
	for _, rec := range recs {
		if rec.Key == k && (rec.Status == StatusDone || rec.Status == StatusQuarantined) {
			terminal++
		}
	}
	if terminal != 1 {
		t.Errorf("append history holds %d terminal records for %s, want 1", terminal, k)
	}
}

// TestRunnerCancellationDuringBackoffRerunnable: a cancellation that
// lands in the backoff sleep (after a real failure was journaled) keeps
// the unit re-runnable — the failure record persists the spent attempt,
// but no terminal record exists, so resume retries with the remaining
// budget.
func TestRunnerCancellationDuringBackoffRerunnable(t *testing.T) {
	fsys := faultinject.NewMemFS()
	j := mustOpen(t, fsys, "ckpt", testFP, Options{FlushEvery: 1})
	k := testKey(10)

	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{Journal: j, Policy: RetryPolicy{
		MaxAttempts: 3,
		Sleep: func(c context.Context, _ time.Duration) error {
			cancel() // the kill arrives while the unit waits to retry
			return c.Err()
		},
	}}
	_, err := r.Do(ctx, k, func(context.Context) ([]byte, error) {
		return nil, errors.New("transient eval fault")
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	j.Close()

	j2 := mustOpen(t, fsys, "ckpt", testFP, Options{FlushEvery: 1})
	if rec, ok := j2.Lookup(k); !ok || rec.Status != StatusFailed || rec.Attempts != 1 {
		t.Fatalf("journal after backoff cancellation = %+v ok=%v, want Failed with 1 attempt", rec, ok)
	}
	runs := 0
	u, err := testRunner(j2, &fakeSleep{}).Do(context.Background(), k,
		func(context.Context) ([]byte, error) { runs++; return []byte("ok"), nil }, nil)
	if err != nil || string(u.Payload) != "ok" || u.Attempts != 2 {
		t.Fatalf("resumed Do = %+v, %v", u, err)
	}
	if runs != 1 {
		t.Errorf("resumed unit ran %d times, want 1", runs)
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.2, Seed: 7}
	k := testKey(6)
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := p.Delay(k, attempt)
		d2 := p.Delay(k, attempt)
		if d1 != d2 {
			t.Errorf("attempt %d: delay not deterministic (%v vs %v)", attempt, d1, d2)
		}
		nominal := 100 * time.Millisecond << (attempt - 1)
		if nominal > 5*time.Second {
			nominal = 5 * time.Second
		}
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if d1 < lo || d1 > hi {
			t.Errorf("attempt %d: delay %v outside jitter band [%v, %v]", attempt, d1, lo, hi)
		}
	}
	// Different keys must not synchronise their schedules.
	if p.Delay(testKey(6), 1) == p.Delay(testKey(7), 1) {
		t.Error("two keys drew identical jitter")
	}
}

func TestRunnerNilJournal(t *testing.T) {
	r := &Runner{Policy: RetryPolicy{MaxAttempts: 2, Sleep: (&fakeSleep{}).sleep}}
	u, err := r.Do(context.Background(), testKey(8),
		func(context.Context) ([]byte, error) { return []byte("ok"), nil }, nil)
	if err != nil || string(u.Payload) != "ok" {
		t.Fatalf("Do without journal = %+v, %v", u, err)
	}
}
