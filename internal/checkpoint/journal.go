// Package checkpoint makes the offline characterisation pipeline
// resumable: a durable journal of work-unit results keyed by the full
// arc coordinate (cell, pin, arc, slew, load, kind) plus a config
// fingerprint, so a crash, OOM kill or SIGTERM at minute 40 of a
// paper-scale library build loses at most one unsealed segment of work
// instead of everything. PR 4 gave the serving side (lvf2d) crash-safe
// snapshots; this package gives the same durability to the producers —
// cells characterisation, the Table 1/Table 2 experiment drivers and
// the libgen/exptables CLIs.
//
// Journal layout: a directory of sealed segments ckpt-NNNNNN.seg, each
// written as a temp file and atomically installed (write, fsync,
// rename) through the pluggable FS, so a reader never observes a
// half-written segment under POSIX rename semantics. Each segment is
//
//	offset  size  field
//	0       8     magic "LVF2JRN1"
//	8       4     format version (currently 1)
//	12      8     config fingerprint (FNV-64a of the canonical config)
//	20      ...   records
//
// and each record is
//
//	u32 body length | u32 CRC-32 (IEEE) of body | body
//
// Replay is all-or-nothing per segment and validated record by record:
// a torn tail (truncated record, bad final CRC — the shape a crashed
// write leaves behind) in the NEWEST segment is tolerated by truncating
// at the last valid checksum; any malformation elsewhere — bad magic,
// unsupported version, fingerprint mismatch, mid-journal CRC failure —
// returns a typed error (errors.Is ErrCorruptJournal) and installs
// nothing, so a rotten journal degrades to a clean cold start instead
// of resuming from lies.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"lvf2/internal/modelcache"
)

// journalMagic identifies a checkpoint journal segment.
const journalMagic = "LVF2JRN1"

// JournalVersion is the current segment format version. Decoders reject
// any other version: records carry fitted model parameters, and a
// silent cross-version reinterpretation would emit wrong timing.
const JournalVersion = 1

// maxRecordLen bounds a single record so a hostile length prefix cannot
// drive a huge allocation before its CRC is verified.
const maxRecordLen = 1 << 24

// segHeaderLen is the fixed segment header size.
const segHeaderLen = len(journalMagic) + 4 + 8

// ErrCorruptJournal is the base error of every replay failure beyond a
// tolerated torn tail. Callers branch with errors.Is: corrupt means
// "reset and cold-start", never "crash" and never "trust partially".
var ErrCorruptJournal = errors.New("checkpoint: corrupt journal")

// ErrFingerprintMismatch marks a journal written under a different
// configuration (seed, sample count, fit options, library). Resuming it
// would splice incompatible results, so it reads as corrupt.
var ErrFingerprintMismatch = fmt.Errorf("%w: config fingerprint mismatch", ErrCorruptJournal)

func badJournal(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptJournal, fmt.Sprintf(format, args...))
}

// Key is the full coordinate of one characterisation work unit.
type Key struct {
	Cell string
	Pin  string
	Arc  string
	Slew int // slew grid index
	Load int // load grid index
	Kind string
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s(%d,%d)/%s", k.Cell, k.Pin, k.Arc, k.Slew, k.Load, k.Kind)
}

// Status is the journaled outcome of a unit.
type Status uint8

// Unit statuses. Done and Quarantined are terminal (the unit is never
// recomputed on resume); Failed records an attempt count so the retry
// budget survives a restart.
const (
	StatusDone Status = iota + 1
	StatusFailed
	StatusQuarantined
)

// String names the status for logs.
func (s Status) String() string {
	switch s {
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Record is one journaled unit outcome.
type Record struct {
	Key      Key
	Status   Status
	Attempts int    // failed attempts so far (Failed) or total tries (terminal)
	Rung     string // degradation rung that produced a quarantined emission
	Note     string // provenance / cause, verbatim into ocv_fallback_note_*
	Payload  []byte // serialised unit result (Done, Quarantined)
}

// Fingerprint identifies the configuration a journal belongs to. Two
// runs may share a journal only when every field matches: a completed
// unit is only bit-identical to a recomputation under the same seed,
// sample count, grid and fit options.
type Fingerprint struct {
	Library    string // library / electrical-substrate identity
	Seed       uint64
	Samples    int
	GridStride int
	Options    string // canonical fit/format options string
}

// hash folds the fingerprint to the 8-byte segment-header form.
func (f Fingerprint) hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%s", f.Library, f.Seed, f.Samples, f.GridStride, f.Options)
	return h.Sum64()
}

// Hash exposes the folded fingerprint. The distributed protocol stamps
// it on every lease and result submission so a coordinator never
// accepts work computed under a different configuration.
func (f Fingerprint) Hash() uint64 { return f.hash() }

// FS is the filesystem seam of the journal: the snapshot FS of
// internal/modelcache plus the directory operations segment discovery
// needs. internal/faultinject's MemFS and FaultFS implement it, so the
// chaos suite can tear writes and rot segments under the real code.
type FS interface {
	modelcache.FS
	MkdirAll(dir string) error
	ReadDir(dir string) ([]string, error) // base names, any order
}

// OSFS is the real filesystem.
type OSFS struct{ modelcache.OSFS }

// MkdirAll creates dir and parents.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir lists the base names in dir.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// Options tunes a journal.
type Options struct {
	// FlushEvery seals a segment after this many appended records
	// (default 64). Records in the unsealed buffer are lost by a hard
	// kill; smaller values trade more segment files for a smaller
	// at-risk window. Flush/Close always seal the remainder.
	FlushEvery int
}

func (o Options) withDefaults() Options {
	if o.FlushEvery <= 0 {
		o.FlushEvery = 64
	}
	return o
}

// Stats reports journal health for logs and tests.
type Stats struct {
	Resolved    int   // units replayed as Done or Quarantined at Open
	TornRecords int   // tail records dropped at the last valid checksum
	Segments    int   // sealed segments on disk
	Bytes       int64 // sealed journal bytes
	AppendErrs  int   // failed seal attempts (records kept pending)
}

// Journal is a durable, append-only record of unit outcomes. Safe for
// concurrent use by the worker pool.
type Journal struct {
	fsys  FS
	dir   string
	label string // metrics label: the cleaned journal directory
	fp    uint64
	opts  Options

	mu       sync.Mutex
	state    map[Key]Record
	pending  []byte // encoded records awaiting a seal
	pendingN int
	seq      int // next segment number
	stats    Stats
	closed   bool
}

// segName formats the sealed segment file name for sequence number n.
func segName(n int) string { return fmt.Sprintf("ckpt-%06d.seg", n) }

// segSeq parses a segment file name, reporting ok=false for other files
// (temp files, strays).
func segSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(name, "ckpt-%06d.seg", &n); err != nil {
		return 0, false
	}
	return n, true
}

// Open replays the journal in dir (creating it if absent) and returns a
// journal positioned to append. Completed units are available through
// Lookup immediately. A malformed journal returns ErrCorruptJournal
// (ErrFingerprintMismatch for a config change) and no journal: the
// caller decides between aborting and Reset + cold start.
func Open(fsys FS, dir string, fp Fingerprint, opts Options) (*Journal, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: create journal dir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list journal dir: %w", err)
	}
	var seqs []int
	for _, name := range names {
		if n, ok := segSeq(name); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)

	j := &Journal{
		fsys: fsys, dir: dir, label: filepath.Clean(dir), fp: fp.hash(), opts: opts.withDefaults(),
		state: make(map[Key]Record),
	}
	for i, n := range seqs {
		path := filepath.Join(dir, segName(n))
		b, err := fsys.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
		}
		recs, torn, err := decodeSegment(b, j.fp, i == len(seqs)-1)
		if err != nil {
			return nil, fmt.Errorf("%w (%s)", err, segName(n))
		}
		for _, rec := range recs {
			j.state[rec.Key] = rec
		}
		j.stats.TornRecords += torn
		j.stats.Segments++
		j.stats.Bytes += int64(len(b))
		j.seq = n + 1
	}
	for _, rec := range j.state {
		if rec.Status == StatusDone || rec.Status == StatusQuarantined {
			j.stats.Resolved++
		}
	}
	journalBytes.Set(float64(j.stats.Bytes), j.label)
	return j, nil
}

// Label is the journal's metrics label (its cleaned directory path), the
// `journal` label value of the per-journal gauges.
func (j *Journal) Label() string {
	if j == nil {
		return ""
	}
	return j.label
}

// SetResumeSkipRatio publishes the fraction of this journal's units a
// resumed run restored instead of recomputing, as the per-journal series
// lvf2_ckpt_resume_skip_ratio{journal=...}. A process that resumes
// several journals (Table 1 + Table 2 drivers, a coordinator) reports
// each ratio independently.
func (j *Journal) SetResumeSkipRatio(restored, total int) {
	if j == nil || total <= 0 {
		return
	}
	resumeSkipRatio.Set(float64(restored)/float64(total), j.label)
}

// ReplayRecords decodes every sealed record in dir in append order,
// without collapsing later records over earlier ones the way Open does.
// It is the audit view of a journal: tests (and the distributed chaos
// suite) use it to assert invariants over the full append history —
// e.g. that no unit was ever journaled terminal twice. A torn tail in
// the newest segment is tolerated exactly as in Open.
func ReplayRecords(fsys FS, dir string, fp Fingerprint) ([]Record, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list journal dir: %w", err)
	}
	var seqs []int
	for _, name := range names {
		if n, ok := segSeq(name); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	var out []Record
	h := fp.hash()
	for i, n := range seqs {
		path := filepath.Join(dir, segName(n))
		b, err := fsys.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
		}
		recs, _, err := decodeSegment(b, h, i == len(seqs)-1)
		if err != nil {
			return nil, fmt.Errorf("%w (%s)", err, segName(n))
		}
		out = append(out, recs...)
	}
	return out, nil
}

// Reset removes every sealed segment in dir, so the next Open starts
// cold. Used after ErrCorruptJournal and by the CLIs' fresh (non
// -resume) runs.
func Reset(fsys FS, dir string) error {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, name := range names {
		if _, ok := segSeq(name); ok {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Lookup returns the journaled record of a unit.
func (j *Journal) Lookup(k Key) (Record, bool) {
	if j == nil {
		return Record{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.state[k]
	return rec, ok
}

// Records returns a snapshot of every journaled record (sealed and
// pending), in no particular order.
func (j *Journal) Records() []Record {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, 0, len(j.state))
	for _, rec := range j.state {
		out = append(out, rec)
	}
	return out
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Done journals a completed unit with its serialised result.
func (j *Journal) Done(k Key, attempts int, payload []byte) error {
	return j.append(Record{Key: k, Status: StatusDone, Attempts: attempts, Payload: payload})
}

// Failed journals one failed attempt, preserving the retry budget
// across a restart.
func (j *Journal) Failed(k Key, attempts int, cause string) error {
	return j.append(Record{Key: k, Status: StatusFailed, Attempts: attempts, Note: cause})
}

// Quarantined journals a poison unit together with the degraded
// emission that stands in for it (rung = the FitRobust ladder rung that
// produced payload; nil payload = the unit is dropped entirely).
func (j *Journal) Quarantined(k Key, attempts int, rung, note string, payload []byte) error {
	return j.append(Record{Key: k, Status: StatusQuarantined, Attempts: attempts, Rung: rung, Note: note, Payload: payload})
}

func (j *Journal) append(rec Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("checkpoint: journal closed")
	}
	j.state[rec.Key] = rec
	j.pending = appendRecord(j.pending, rec)
	j.pendingN++
	if j.pendingN >= j.opts.FlushEvery {
		return j.flushLocked()
	}
	return nil
}

// Flush seals the pending records into a new segment (write, fsync,
// rename). On failure the records stay pending and are retried by the
// next Flush/Close; the error is also counted in Stats.AppendErrs.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

// Close seals any pending records and bars further appends.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.flushLocked()
	j.closed = true
	return err
}

func (j *Journal) flushLocked() error {
	if j.pendingN == 0 {
		return nil
	}
	data := make([]byte, 0, segHeaderLen+len(j.pending))
	data = append(data, journalMagic...)
	data = binary.LittleEndian.AppendUint32(data, JournalVersion)
	data = binary.LittleEndian.AppendUint64(data, j.fp)
	data = append(data, j.pending...)

	if err := j.sealSegment(data); err != nil {
		j.stats.AppendErrs++
		return fmt.Errorf("checkpoint: seal segment %d: %w", j.seq, err)
	}
	j.seq++
	j.pending = j.pending[:0]
	j.pendingN = 0
	j.stats.Segments++
	j.stats.Bytes += int64(len(data))
	journalBytes.Set(float64(j.stats.Bytes), j.label)
	return nil
}

// sealSegment installs data as the next sealed segment atomically.
func (j *Journal) sealSegment(data []byte) error {
	f, err := j.fsys.CreateTemp(j.dir, segName(j.seq)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		j.fsys.Remove(tmp)
		return err
	}
	n, err := f.Write(data)
	if err == nil && n != len(data) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		j.fsys.Remove(tmp)
		return err
	}
	if err := j.fsys.Rename(tmp, filepath.Join(j.dir, segName(j.seq))); err != nil {
		j.fsys.Remove(tmp)
		return err
	}
	return nil
}

// -------------------------------------------------------- wire format

// appendRecord encodes rec as one length-prefixed, CRC-checksummed
// record.
func appendRecord(b []byte, rec Record) []byte {
	body := make([]byte, 0, 64+len(rec.Payload))
	body = append(body, byte(rec.Status))
	for _, s := range [...]string{rec.Key.Cell, rec.Key.Pin, rec.Key.Arc, rec.Key.Kind, rec.Rung, rec.Note} {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(s)))
		body = append(body, s...)
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(rec.Key.Slew))
	body = binary.LittleEndian.AppendUint32(body, uint32(rec.Key.Load))
	body = binary.LittleEndian.AppendUint32(body, uint32(rec.Attempts))
	body = append(body, rec.Payload...)

	b = binary.LittleEndian.AppendUint32(b, uint32(len(body)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(body))
	return append(b, body...)
}

// decodeSegment replays one sealed segment. In the last segment a torn
// tail — truncated length/CRC header, a length past EOF, or a checksum
// mismatch — truncates the replay at the last valid record and reports
// how many records were dropped; anywhere else it is corruption. A
// record whose CRC verifies but whose body does not parse is corruption
// regardless of position: the checksum says those bytes are exactly
// what the writer sealed, so the format itself is not trustworthy.
func decodeSegment(b []byte, fp uint64, last bool) (recs []Record, torn int, err error) {
	if len(b) < segHeaderLen {
		if last {
			return nil, 1, nil // a segment torn before its header holds nothing
		}
		return nil, 0, badJournal("segment truncated at %d bytes", len(b))
	}
	if string(b[:len(journalMagic)]) != journalMagic {
		return nil, 0, badJournal("bad magic %q", b[:len(journalMagic)])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != JournalVersion {
		return nil, 0, badJournal("unsupported version %d (this build reads %d)", v, JournalVersion)
	}
	if got := binary.LittleEndian.Uint64(b[12:]); got != fp {
		return nil, 0, ErrFingerprintMismatch
	}
	off := segHeaderLen
	for off < len(b) {
		if len(b)-off < 8 {
			return torn2(recs, last, badJournal("torn record header at offset %d", off))
		}
		blen := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if blen > maxRecordLen {
			return nil, 0, badJournal("record length %d exceeds cap %d", blen, maxRecordLen)
		}
		if len(b)-off-8 < blen {
			return torn2(recs, last, badJournal("torn record body at offset %d (want %d bytes, have %d)", off, blen, len(b)-off-8))
		}
		body := b[off+8 : off+8+blen]
		if crc32.ChecksumIEEE(body) != sum {
			return torn2(recs, last, badJournal("record checksum mismatch at offset %d", off))
		}
		rec, derr := decodeRecordBody(body)
		if derr != nil {
			return nil, 0, derr
		}
		recs = append(recs, rec)
		off += 8 + blen
	}
	return recs, 0, nil
}

// torn2 resolves a mid-decode failure: tolerated truncation in the last
// segment, corruption elsewhere.
func torn2(recs []Record, last bool, err error) ([]Record, int, error) {
	if last {
		return recs, 1, nil
	}
	return nil, 0, err
}

func decodeRecordBody(body []byte) (Record, error) {
	r := recReader{buf: body}
	var rec Record
	st, err := r.u8()
	if err != nil {
		return rec, err
	}
	rec.Status = Status(st)
	if rec.Status < StatusDone || rec.Status > StatusQuarantined {
		return rec, badJournal("unknown record status %d", st)
	}
	for _, dst := range [...]*string{&rec.Key.Cell, &rec.Key.Pin, &rec.Key.Arc, &rec.Key.Kind, &rec.Rung, &rec.Note} {
		if *dst, err = r.string(); err != nil {
			return rec, err
		}
	}
	var slew, load, attempts uint32
	for _, dst := range [...]*uint32{&slew, &load, &attempts} {
		if *dst, err = r.u32(); err != nil {
			return rec, err
		}
	}
	rec.Key.Slew, rec.Key.Load, rec.Attempts = int(slew), int(load), int(attempts)
	if r.rem() > 0 {
		rec.Payload = append([]byte(nil), r.buf[r.off:]...)
	}
	return rec, nil
}

// recReader is a bounds-checked cursor over one record body.
type recReader struct {
	buf []byte
	off int
}

func (r *recReader) rem() int { return len(r.buf) - r.off }

func (r *recReader) take(n int) ([]byte, error) {
	if n < 0 || r.rem() < n {
		return nil, badJournal("truncated record body (want %d bytes, have %d)", n, r.rem())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *recReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *recReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *recReader) string() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) > maxRecordLen {
		return "", badJournal("string length %d exceeds cap", n)
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
