package checkpoint

import "lvf2/internal/obs"

// Checkpoint metrics live in the process-wide default registry, so the
// daemon's /metrics (which exposes obs.Default()) and any scraper
// pointed at a long libgen/exptables run can watch durability health:
// units completing, the retry and quarantine pressure, journal growth,
// and how much of a resumed run was skipped.
var (
	unitsDone = obs.NewCounter(obs.Default(),
		"lvf2_ckpt_units_done_total", "characterisation work units completed and journaled")
	unitsRetried = obs.NewCounter(obs.Default(),
		"lvf2_ckpt_units_retried_total", "work-unit retries scheduled after a failed attempt")
	unitsQuarantined = obs.NewCounter(obs.Default(),
		"lvf2_ckpt_units_quarantined_total", "poison work units quarantined after exhausting retries")
	unitsRestored = obs.NewCounter(obs.Default(),
		"lvf2_ckpt_units_restored_total", "work units restored from the journal on resume")
	// journalBytes and resumeSkipRatio are per-journal series: the Table 1
	// and Table 2 drivers (and a distributed coordinator) can all hold
	// journals open in one process, and an unlabelled gauge would report
	// whichever journal wrote last.
	journalBytes = obs.NewFloatGaugeVec(obs.Default(),
		"lvf2_ckpt_journal_bytes", "sealed checkpoint journal bytes on disk", "journal")
	resumeSkipRatio = obs.NewFloatGaugeVec(obs.Default(),
		"lvf2_ckpt_resume_skip_ratio", "fraction of the last run's units restored from the journal", "journal")
)
