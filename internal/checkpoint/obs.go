package checkpoint

import "lvf2/internal/obs"

// Checkpoint metrics live in the process-wide default registry, so the
// daemon's /metrics (which exposes obs.Default()) and any scraper
// pointed at a long libgen/exptables run can watch durability health:
// units completing, the retry and quarantine pressure, journal growth,
// and how much of a resumed run was skipped.
var (
	unitsDone = obs.NewCounter(obs.Default(),
		"lvf2_ckpt_units_done_total", "characterisation work units completed and journaled")
	unitsRetried = obs.NewCounter(obs.Default(),
		"lvf2_ckpt_units_retried_total", "work-unit retries scheduled after a failed attempt")
	unitsQuarantined = obs.NewCounter(obs.Default(),
		"lvf2_ckpt_units_quarantined_total", "poison work units quarantined after exhausting retries")
	unitsRestored = obs.NewCounter(obs.Default(),
		"lvf2_ckpt_units_restored_total", "work units restored from the journal on resume")
	journalBytes = obs.NewGauge(obs.Default(),
		"lvf2_ckpt_journal_bytes", "sealed checkpoint journal bytes on disk")
	resumeSkipRatio = obs.NewFloatGauge(obs.Default(),
		"lvf2_ckpt_resume_skip_ratio", "fraction of the last run's units restored from the journal")
)
