package checkpoint

import (
	"context"
	"hash/fnv"
	"time"

	"lvf2/internal/mc"
)

// RetryPolicy is the jittered exponential backoff applied to failed
// work units before quarantine. Delay for attempt a (1-based) is
//
//	min(Base·2^(a−1), Max) · (1 + Jitter·u),  u ∈ [−1, 1)
//
// with u drawn from a seeded RNG keyed by (Seed, unit key, attempt), so
// a given schedule is fully deterministic and a retrying fleet does not
// synchronise its reattempts.
type RetryPolicy struct {
	// MaxAttempts is the total tries before a unit is quarantined
	// (default 3). The count persists in the journal, so a unit that
	// failed twice before a crash gets one more try after resume.
	MaxAttempts int
	// Base is the first retry delay (default 100ms).
	Base time.Duration
	// Max caps the exponential growth (default 5s).
	Max time.Duration
	// Jitter is the relative spread of the delay (default 0.2).
	Jitter float64
	// Seed makes the jitter deterministic (default 1).
	Seed uint64
	// Sleep is the injectable clock seam: it waits d or returns early
	// with ctx.Err() on cancellation. Tests substitute a fake clock so
	// backoff schedules run instantly and deterministically under -race.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = realSleep
	}
	return p
}

// realSleep is the wall-clock Sleep.
func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Delay returns the backoff before retry `attempt` (1-based: the delay
// after the attempt-th failure) of the unit k.
func (p RetryPolicy) Delay(k Key, attempt int) time.Duration {
	p = p.withDefaults()
	d := p.Base
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter <= 0 {
		return d
	}
	h := fnv.New64a()
	h.Write([]byte(k.String()))
	rng := mc.NewRNG(p.Seed ^ h.Sum64() ^ uint64(attempt)*0x9e3779b97f4a7c15)
	u := 2*rng.Float64() - 1
	d = time.Duration(float64(d) * (1 + p.Jitter*u))
	if d < 0 {
		d = 0
	}
	return d
}
