package checkpoint

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestTrapSignalsCancelsOnSignal(t *testing.T) {
	ctx, trap := TrapSignals(context.Background(), syscall.SIGUSR1)
	defer trap.Stop()

	if got := trap.Signal(); got != nil {
		t.Fatalf("signal before delivery = %v", got)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after signal")
	}
	// The trap goroutine records the signal just before cancelling, so it
	// is visible once ctx.Done() fires.
	if got := trap.Signal(); got != syscall.SIGUSR1 {
		t.Errorf("trapped signal = %v, want SIGUSR1", got)
	}
}

func TestTrapSignalsStopWithoutSignal(t *testing.T) {
	ctx, trap := TrapSignals(context.Background(), syscall.SIGUSR2)
	trap.Stop()
	select {
	case <-ctx.Done():
	default:
		t.Error("Stop should cancel the context")
	}
	if got := trap.Signal(); got != nil {
		t.Errorf("signal after plain Stop = %v", got)
	}
}

func TestTrapSignalsParentCancellation(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, trap := TrapSignals(parent, syscall.SIGUSR1)
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("child context not cancelled with parent")
	}
	trap.Stop()
}
