package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lvf2/internal/stats"
)

// Property: FitLVF reproduces the first three sample moments exactly
// (method of moments) whenever the sample skewness is SN-attainable.
func TestFitLVFMomentMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sn := stats.SNFromMoments(0.1+r.Float64(), 0.005+0.05*r.Float64(), 1.6*(r.Float64()-0.5))
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = sn.Sample(r)
		}
		res, err := FitLVF(xs)
		if err != nil {
			return false
		}
		got := res.Dist.(stats.SkewNormal)
		want := stats.Moments(xs)
		m, sd, g := got.Moments()
		if math.Abs(m-want.Mean) > 1e-9*(1+math.Abs(want.Mean)) {
			return false
		}
		if math.Abs(sd-want.Std()) > 1e-9*(1+want.Std()) {
			return false
		}
		// Skewness matches unless it was clamped.
		if math.Abs(want.Skewness) < stats.MaxSNSkewness && math.Abs(g-want.Skewness) > 1e-5 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(101))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the LVF² fit always achieves at least the single-SN
// log-likelihood (the mixture family contains it) up to a small numeric
// slack.
func TestLVF2AtLeastAsGoodAsLVFProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random mixture data.
		mix, err := stats.NewMixture(
			[]float64{0.6, 0.4},
			[]stats.Dist{
				stats.SNFromMoments(0.1, 0.004+0.01*r.Float64(), r.Float64()-0.5),
				stats.SNFromMoments(0.1+0.05*r.Float64(), 0.004+0.01*r.Float64(), r.Float64()-0.5),
			})
		if err != nil {
			return false
		}
		xs := make([]float64, 600)
		for i := range xs {
			xs[i] = mix.Sample(r)
		}
		r2, err := FitLVF2(xs, Options{})
		if err != nil {
			return false
		}
		r1, err := FitLVF(xs)
		if err != nil {
			return false
		}
		return r2.LogLik >= r1.LogLik-1.0
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(103))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the fitted λ respects the dominance convention and the
// mixture mean matches the sample mean closely.
func TestLVF2ConventionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 400)
		for i := range xs {
			if r.Float64() < 0.3 {
				xs[i] = 0.13 + 0.004*r.NormFloat64()
			} else {
				xs[i] = 0.10 + 0.005*r.NormFloat64()
			}
		}
		res, err := FitLVF2(xs, Options{})
		if err != nil {
			return false
		}
		if res.Lambda < 0 || res.Lambda > 0.5+1e-9 {
			return false
		}
		want := stats.Moments(xs).Mean
		got := res.Dist().Mean()
		return math.Abs(got-want) < 0.02*want
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(107))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatchLESNMomentsErrors(t *testing.T) {
	if _, err := MatchLESNMoments(stats.SampleMoments{Mean: -1, Variance: 1}); err == nil {
		t.Error("negative mean accepted")
	}
	if _, err := MatchLESNMoments(stats.SampleMoments{Mean: 1, Variance: 0}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestMatchLESNMomentsRecoversTarget(t *testing.T) {
	target := stats.SampleMoments{Mean: 0.2, Variance: 0.0004, Skewness: 0.6, Kurtosis: 3.8}
	l, err := MatchLESNMoments(target)
	if err != nil {
		t.Fatal(err)
	}
	got := stats.DistMoments(l)
	if math.Abs(got.Mean-target.Mean)/target.Mean > 0.01 {
		t.Errorf("mean %v want %v", got.Mean, target.Mean)
	}
	if math.Abs(got.Std()-math.Sqrt(target.Variance))/math.Sqrt(target.Variance) > 0.02 {
		t.Errorf("std %v want %v", got.Std(), math.Sqrt(target.Variance))
	}
	if math.Abs(got.Skewness-target.Skewness) > 0.05 {
		t.Errorf("skew %v want %v", got.Skewness, target.Skewness)
	}
}
