package fit

import (
	"math"
	"runtime"

	"lvf2/internal/stats"
)

// Warm-start fitting: characterisation sweeps fit thousands of LVF²
// distributions whose shapes vary smoothly across the slew–load grid, so
// the converged parameters of an already-fitted neighbour are an
// excellent starting basin for the next entry. A seeded fit skips the
// exploratory multi-start entirely — the dominant cost of a cold fit —
// and goes straight to the ECM refinement the cold path ends with,
// guarded by a validation gate that falls back to the full cold
// multi-start whenever the refined fit is not trustworthy.

// Seed carries the converged component parameters of a neighbouring
// LVF² fit. The seed is location/scale-free in effect: before refinement
// it is affinely transported so its mixture mean and standard deviation
// match the new sample's (the skew-normal family is closed under affine
// maps), so a neighbour whose nominal delay differs by an order of
// magnitude still seeds the right mixture shape.
type Seed struct {
	Lambda float64
	C1, C2 stats.SkewNormal
}

// SeedOf extracts the warm-start seed of a converged fit.
func SeedOf(r LVF2Result) Seed { return Seed{Lambda: r.Lambda, C1: r.C1, C2: r.C2} }

// WarmOutcome reports how a (possibly seeded) LVF² fit resolved. The
// zero value is WarmCold so unseeded results are labelled correctly by
// construction.
type WarmOutcome uint8

const (
	// WarmCold: no usable seed was supplied; the full multi-start ran.
	WarmCold WarmOutcome = iota
	// WarmHit: the seeded refinement passed the validation gate and the
	// multi-start was skipped.
	WarmHit
	// WarmRejected: the seeded refinement failed the gate (validation
	// breach or a score below the cold floor) and the full multi-start
	// ran as fallback.
	WarmRejected
)

// String names the outcome as in the lvf2_fit_warmstart_total label.
func (o WarmOutcome) String() string {
	switch o {
	case WarmHit:
		return "hit"
	case WarmRejected:
		return "rejected"
	default:
		return "cold"
	}
}

// warmECMRounds is the refinement budget of the warm path: the
// transported seed is already in the right basin, so a single ECM round
// — one responsibility pass plus one weighted-MLE polish per component —
// re-converges it. Each extra round costs as much as the first while the
// CDF no longer moves at metric resolution (the golden accuracy test
// pins this), and the rounds are what the warm path's speedup is made
// of: the cold multi-start it skips is only worth ~2–3 rounds of ECM.
const warmECMRounds = 1

// warmFloorSlack is the per-sample tolerance of the cold-floor gate, in
// nats. Real characterised delay distributions are often close enough to
// a single skew-normal that a freshly re-converged two-component fit
// scores a hair below the closed-form moment-matched floor without being
// wrong in any metric sense: empirically, warm fits within 0.01 nats per
// point of the floor stay within CDF RMSE ~0.012 of the corresponding
// cold fit — comfortably inside the 0.02 golden tolerance — while the
// genuinely wrong-basin cases sit several times further below. A strict
// floor (slack 0) rejects roughly half of all accurate warm fits on real
// arcs, and every rejection costs a wasted refinement plus the full cold
// multi-start, which is what the warm path exists to avoid.
const warmFloorSlack = 0.01

// warmSeedSkewCap pre-screens seeds whose component skewness is already
// near the SN moment-map clamp (|skewness| close to MaxSNSkewness): the
// weighted MLE refinement almost always walks such a component onto the
// rail, where ValidateResult rejects it — so attempting the warm fit
// just adds an ECM round on top of the inevitable cold fallback. Seeds
// past the cap skip straight to the multi-start instead.
const warmSeedSkewCap = 0.95 * stats.MaxSNSkewness

// FitLVF2Seeded fits LVF² warm-started from a neighbouring fit's
// converged parameters. Equivalent to FitLVF2 with Options.Seed set; the
// returned outcome reports whether the seed was accepted (WarmHit) or the
// cold multi-start ran as fallback (WarmRejected).
func FitLVF2Seeded(xs []float64, seed Seed, o Options) (LVF2Result, WarmOutcome, error) {
	o.Seed = &seed
	r, err := FitLVF2(xs, o)
	return r, r.Warm, err
}

// FitLVF2SeededWs is FitLVF2Seeded through caller-owned workspace
// buffers (see FitLVF2Ws).
func FitLVF2SeededWs(xs []float64, seed Seed, o Options, fw *Workspace) (LVF2Result, WarmOutcome, error) {
	o.Seed = &seed
	r, err := FitLVF2Ws(xs, o, fw)
	return r, r.Warm, err
}

// fitLVF2Seeded runs the warm path: transport the seed to the sample's
// location/scale, refine by ECM, and gate the result. A gate failure
// returns ok=false and the caller falls back to the cold multi-start.
// o.Seed has already been cleared by the caller.
func fitLVF2Seeded(xs []float64, seed Seed, o Options, fw *Workspace) (LVF2Result, bool) {
	n := len(xs)
	all := stats.Moments(xs)
	sdFloor := math.Max(all.Std()*1e-3, 1e-300)

	init, ok := transportSeed(seed, all, sdFloor)
	if !ok {
		return LVF2Result{}, false
	}
	r0 := LVF2Result{Lambda: init.lambda, C1: init.c1, C2: init.c2}
	r0.LogLik = mixLogLik(xs, r0.Lambda, r0.C1, r0.C2)
	if math.IsNaN(r0.LogLik) || math.IsInf(r0.LogLik, 1) {
		return LVF2Result{}, false
	}

	par := !o.Serial && n >= parallelMinN && runtime.GOMAXPROCS(0) > 1
	warm := ecmRefine(xs, r0, warmECMRounds, fw, par)
	warm.normalise()
	if o.Polish {
		warm = polishLVF2(xs, warm, o, fw)
	}

	// Validation gate: the warm fit must satisfy the same parameter and
	// CDF sanity checks FitRobust applies, and must not score below the
	// cold floor — the log-likelihood of the best cheap single-component
	// fit of this sample. A healthy two-component refinement always beats
	// a moment-matched single skew-normal; when it does not, the seed's
	// basin does not describe this grid point and the multi-start runs.
	if err := ValidateResult(warm.Result(), xs, o); err != nil {
		return LVF2Result{}, false
	}
	if warm.LogLik < warmFloorLogLik(xs, all, sdFloor)-warmFloorSlack*float64(n) {
		return LVF2Result{}, false
	}
	warm.Warm = WarmHit
	return warm, true
}

// transportSeed orients, repairs and affinely maps a neighbour seed onto
// the target sample: λ is clamped to (0, ½], a degenerate second
// component is re-split from the dominant one so the refinement can
// rediscover a second mode, and both components are shifted/scaled so
// the seed mixture's first two moments match the sample's.
func transportSeed(s Seed, all stats.SampleMoments, sdFloor float64) (lvf2Init, bool) {
	lam, c1, c2 := s.Lambda, s.C1, s.C2
	if !finiteSN(c1) || math.IsNaN(lam) || lam < 0 || lam > 1 {
		return lvf2Init{}, false
	}
	if lam > 0.5 {
		lam, c1, c2 = 1-lam, c2, c1
		if !finiteSN(c1) {
			return lvf2Init{}, false
		}
	}
	if c1.Omega <= 0 {
		return lvf2Init{}, false
	}
	if lam < 1e-3 || !finiteSN(c2) || c2.Omega <= 0 {
		// The neighbour collapsed to plain LVF (eq. 10). Seed a small
		// deterministic upper-mode split so the ECM can either re-collapse
		// or pick up a mode that only emerges at this grid point.
		lam = 0.05
		c2 = stats.SkewNormal{Xi: c1.Xi + 1.5*c1.Omega, Omega: c1.Omega, Alpha: 0}
	}
	if math.Abs(c1.Skewness()) >= warmSeedSkewCap || math.Abs(c2.Skewness()) >= warmSeedSkewCap {
		return lvf2Init{}, false
	}

	m1, v1 := snMeanVar(c1)
	m2, v2 := snMeanVar(c2)
	m0 := (1-lam)*m1 + lam*m2
	v0 := (1-lam)*(v1+(m1-m0)*(m1-m0)) + lam*(v2+(m2-m0)*(m2-m0))
	if !finite(m0) || !finite(v0) || v0 <= 0 {
		return lvf2Init{}, false
	}
	sd := math.Max(all.Std(), sdFloor)
	b := sd / math.Sqrt(v0)
	if !finite(b) || b <= 0 {
		return lvf2Init{}, false
	}
	a := all.Mean - b*m0
	tr := func(c stats.SkewNormal) stats.SkewNormal {
		return stats.SkewNormal{Xi: a + b*c.Xi, Omega: b * c.Omega, Alpha: c.Alpha}
	}
	return lvf2Init{lambda: lam, c1: tr(c1), c2: tr(c2)}, true
}

// warmFloorLogLik is the cold floor of the warm-start gate: the better
// of a moment-matched Gaussian and a moment-matched skew-normal — both
// closed-form, both one pass over the data — which any trustworthy
// two-component fit must dominate.
func warmFloorLogLik(xs []float64, all stats.SampleMoments, sdFloor float64) float64 {
	sd := math.Max(all.Std(), sdFloor)
	gauss := stats.Normal{Mu: all.Mean, Sigma: sd}
	var gaussLL float64
	for _, x := range xs {
		p := gauss.PDF(x)
		if p < 1e-300 {
			p = 1e-300
		}
		gaussLL += math.Log(p)
	}
	sn := snFromMomentsFloored(all, sdFloor)
	snLL := mixLogLik(xs, 0, sn, sn) // λ=0: single-component log-likelihood
	return math.Max(gaussLL, snLL)
}

func snMeanVar(c stats.SkewNormal) (mean, variance float64) {
	m, sd, _ := c.Moments()
	return m, sd * sd
}

func finiteSN(c stats.SkewNormal) bool {
	return finite(c.Xi) && finite(c.Omega) && finite(c.Alpha)
}
