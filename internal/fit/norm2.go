package fit

import (
	"math"

	"lvf2/internal/stats"
)

// Norm2Result holds the fitted parameters of the Norm² comparator model:
// a two-component Gaussian mixture (λ is the weight of the second
// component, matching the paper's convention for LVF²).
type Norm2Result struct {
	Lambda float64
	C1, C2 stats.Normal
	LogLik float64
	Iters  int
}

// Dist returns the fitted mixture as a stats.Dist.
func (r Norm2Result) Dist() stats.Mixture {
	m, _ := stats.NewMixture(
		[]float64{1 - r.Lambda, r.Lambda},
		[]stats.Dist{r.C1, r.C2})
	return m
}

// FitNorm2 fits the Norm² model with classical EM (closed-form M-step).
// Initialisation uses deterministic quantile-seeded K-means, matching the
// LVF² initialisation so the two mixtures differ only in component family.
func FitNorm2(xs []float64, o Options) (Result, error) {
	r, err := FitNorm2Params(xs, o)
	if err != nil {
		return Result{}, err
	}
	return Result{Model: ModelNorm2, Dist: r.Dist(), LogLik: r.LogLik, Iters: r.Iters}, nil
}

// FitNorm2Params is FitNorm2 exposing the fitted mixture parameters.
func FitNorm2Params(xs []float64, o Options) (Norm2Result, error) {
	fw := wsPool.Get().(*Workspace)
	r, err := fitNorm2(xs, o, fw)
	wsPool.Put(fw)
	return r, err
}

// fitNorm2 is the workspace-threaded Norm² EM. The E-step likelihood, the
// responsibility sum and the component-2 weighted power sums are fused
// into a single pass per iteration; component 1's sums follow by
// complementarity against the whole-sample totals, so the loop touches no
// per-point arrays at all.
func fitNorm2(xs []float64, o Options, fw *Workspace) (Norm2Result, error) {
	o = o.withDefaults()
	n := len(xs)
	if n < 8 {
		return Norm2Result{}, ErrNotEnoughData
	}
	if err := guardSamples(xs); err != nil {
		return Norm2Result{}, err
	}
	fw.grow(n)
	all := stats.Moments(xs)
	varFloor := math.Max(all.Variance*1e-6, 1e-300)

	// K-means + per-cluster moments initialisation.
	sorted := sortInto(fw.sorted, xs)
	cen0, cen1 := kMeans2(xs, sorted, fw.assign, 50)
	lambda, c1, c2 := normInitFromClusters(xs, fw.assign, cen0, cen1, all, varFloor)

	// Whole-sample pivot-shifted totals: with y = x − pivot,
	// Σwᵢyᵢ and Σwᵢyᵢ² for component 1 are the totals minus component 2's.
	pivot := all.Mean
	var t1, t2 float64
	for _, x := range xs {
		y := x - pivot
		t1 += y
		t2 += y * y
	}

	prevLL := math.Inf(-1)
	var iters int
	for iters = 0; iters < o.MaxIter; iters++ {
		// E-step (eq. 6 adapted) fused with the component-2 weighted sums.
		g1 := makeNormTerm(1-lambda, c1)
		g2 := makeNormTerm(lambda, c2)
		var ll, w2, s1, s2 float64
		for _, x := range xs {
			p1 := g1.pdf(x)
			p2 := g2.pdf(x)
			tot := p1 + p2
			if tot < 1e-300 {
				tot = 1e-300
				p2 = 0
			}
			r := p2 / tot
			y := x - pivot
			ry := r * y
			w2 += r
			s1 += ry
			s2 += ry * y
			ll += math.Log(tot)
		}
		if iters > 0 && math.Abs(ll-prevLL) <= o.Tol*(1+math.Abs(prevLL)) {
			prevLL = ll
			break
		}
		prevLL = ll

		// M-step: closed-form weighted Gaussian updates.
		lambda = w2 / float64(n)
		if lambda < 1e-9 || lambda > 1-1e-9 {
			// Collapsed to a single component.
			lambda = clamp01eps(lambda)
			break
		}
		w1 := float64(n) - w2
		mu1 := (t1 - s1) / w1
		mu2 := s1 / w2
		v1 := (t2-s2)/w1 - mu1*mu1
		v2 := s2/w2 - mu2*mu2
		c1 = stats.Normal{Mu: pivot + mu1, Sigma: math.Sqrt(math.Max(v1, varFloor))}
		c2 = stats.Normal{Mu: pivot + mu2, Sigma: math.Sqrt(math.Max(v2, varFloor))}
	}

	r := Norm2Result{Lambda: lambda, C1: c1, C2: c2, LogLik: prevLL, Iters: iters}
	r.normalise()
	return r, nil
}

// normalise enforces the convention that component 1 is dominant
// (λ ≤ 0.5), mirroring the Liberty backward-compatibility rule where the
// first component is the LVF-inherited one.
func (r *Norm2Result) normalise() {
	if r.Lambda > 0.5 {
		r.Lambda = 1 - r.Lambda
		r.C1, r.C2 = r.C2, r.C1
	}
}

// normTerm is one weighted Gaussian mixture component with 1/σ and the
// weight·φ prefactor hoisted out of the per-point loop. A non-positive σ
// falls back to the scalar PDF (which is Inf at μ, zero elsewhere).
type normTerm struct {
	weight, mu, invSigma, scale float64
	degenerate                  bool
	d                           stats.Normal
}

func makeNormTerm(weight float64, c stats.Normal) normTerm {
	if c.Sigma <= 0 {
		return normTerm{weight: weight, degenerate: true, d: c}
	}
	inv := 1 / c.Sigma
	return normTerm{weight: weight, mu: c.Mu, invSigma: inv, scale: weight * inv}
}

func (t normTerm) pdf(x float64) float64 {
	if t.degenerate {
		return t.weight * t.d.PDF(x)
	}
	z := (x - t.mu) * t.invSigma
	return t.scale * stats.StdNormPDF(z)
}

// normInitFromClusters derives the k-means start's component parameters,
// accumulating each cluster's moments in one pass pivoted at its centre.
func normInitFromClusters(xs []float64, assign []int, cen0, cen1 float64, all stats.SampleMoments, varFloor float64) (lambda float64, c1, c2 stats.Normal) {
	var a1, a2 stats.MomentAccumulator
	a1.Reset(cen0)
	a2.Reset(cen1)
	for i, x := range xs {
		if assign[i] == 0 {
			a1.Add(x)
		} else {
			a2.Add(x)
		}
	}
	if a1.Count() < 4 || a2.Count() < 4 {
		// Degenerate clustering: perturb the global fit.
		sd := all.Std()
		c1 = stats.Normal{Mu: all.Mean - 0.5*sd, Sigma: sd}
		c2 = stats.Normal{Mu: all.Mean + 0.5*sd, Sigma: sd}
		return 0.5, c1, c2
	}
	m1 := a1.Moments()
	m2 := a2.Moments()
	c1 = stats.Normal{Mu: m1.Mean, Sigma: math.Sqrt(math.Max(m1.Variance, varFloor))}
	c2 = stats.Normal{Mu: m2.Mean, Sigma: math.Sqrt(math.Max(m2.Variance, varFloor))}
	return float64(a2.Count()) / float64(len(xs)), c1, c2
}

func clamp01eps(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
