package fit

import (
	"math"

	"lvf2/internal/stats"
)

// Norm2Result holds the fitted parameters of the Norm² comparator model:
// a two-component Gaussian mixture (λ is the weight of the second
// component, matching the paper's convention for LVF²).
type Norm2Result struct {
	Lambda float64
	C1, C2 stats.Normal
	LogLik float64
	Iters  int
}

// Dist returns the fitted mixture as a stats.Dist.
func (r Norm2Result) Dist() stats.Mixture {
	m, _ := stats.NewMixture(
		[]float64{1 - r.Lambda, r.Lambda},
		[]stats.Dist{r.C1, r.C2})
	return m
}

// FitNorm2 fits the Norm² model with classical EM (closed-form M-step).
// Initialisation uses deterministic quantile-seeded K-means, matching the
// LVF² initialisation so the two mixtures differ only in component family.
func FitNorm2(xs []float64, o Options) (Result, error) {
	r, err := FitNorm2Params(xs, o)
	if err != nil {
		return Result{}, err
	}
	return Result{Model: ModelNorm2, Dist: r.Dist(), LogLik: r.LogLik, Iters: r.Iters}, nil
}

// FitNorm2Params is FitNorm2 exposing the fitted mixture parameters.
func FitNorm2Params(xs []float64, o Options) (Norm2Result, error) {
	o = o.withDefaults()
	n := len(xs)
	if n < 8 {
		return Norm2Result{}, ErrNotEnoughData
	}
	all := stats.Moments(xs)
	varFloor := math.Max(all.Variance*1e-6, 1e-300)

	// K-means + per-cluster moments initialisation.
	assign, _ := KMeans1D(xs, 2, 50)
	lambda, c1, c2 := normInitFromClusters(xs, assign, all, varFloor)

	resp := make([]float64, n) // responsibility of component 2
	prevLL := math.Inf(-1)
	var iters int
	for iters = 0; iters < o.MaxIter; iters++ {
		// E-step (eq. 6 adapted): posterior of component 2.
		var ll float64
		for i, x := range xs {
			p1 := (1 - lambda) * c1.PDF(x)
			p2 := lambda * c2.PDF(x)
			tot := p1 + p2
			if tot < 1e-300 {
				tot = 1e-300
				p2 = 0
			}
			resp[i] = p2 / tot
			ll += math.Log(tot)
		}
		if iters > 0 && math.Abs(ll-prevLL) <= o.Tol*(1+math.Abs(prevLL)) {
			prevLL = ll
			break
		}
		prevLL = ll

		// M-step: closed-form weighted Gaussian updates.
		var w2 float64
		for _, r := range resp {
			w2 += r
		}
		lambda = w2 / float64(n)
		if lambda < 1e-9 || lambda > 1-1e-9 {
			// Collapsed to a single component.
			lambda = clamp01eps(lambda)
			break
		}
		w1s := make([]float64, n)
		for i, r := range resp {
			w1s[i] = 1 - r
		}
		m1 := stats.WeightedMoments(xs, w1s)
		m2 := stats.WeightedMoments(xs, resp)
		c1 = stats.Normal{Mu: m1.Mean, Sigma: math.Sqrt(math.Max(m1.Variance, varFloor))}
		c2 = stats.Normal{Mu: m2.Mean, Sigma: math.Sqrt(math.Max(m2.Variance, varFloor))}
	}

	r := Norm2Result{Lambda: lambda, C1: c1, C2: c2, LogLik: prevLL, Iters: iters}
	r.normalise()
	return r, nil
}

// normalise enforces the convention that component 1 is dominant
// (λ ≤ 0.5), mirroring the Liberty backward-compatibility rule where the
// first component is the LVF-inherited one.
func (r *Norm2Result) normalise() {
	if r.Lambda > 0.5 {
		r.Lambda = 1 - r.Lambda
		r.C1, r.C2 = r.C2, r.C1
	}
}

func normInitFromClusters(xs []float64, assign []int, all stats.SampleMoments, varFloor float64) (lambda float64, c1, c2 stats.Normal) {
	var g1, g2 []float64
	for i, x := range xs {
		if assign[i] == 0 {
			g1 = append(g1, x)
		} else {
			g2 = append(g2, x)
		}
	}
	if len(g1) < 4 || len(g2) < 4 {
		// Degenerate clustering: perturb the global fit.
		sd := all.Std()
		c1 = stats.Normal{Mu: all.Mean - 0.5*sd, Sigma: sd}
		c2 = stats.Normal{Mu: all.Mean + 0.5*sd, Sigma: sd}
		return 0.5, c1, c2
	}
	m1 := stats.Moments(g1)
	m2 := stats.Moments(g2)
	c1 = stats.Normal{Mu: m1.Mean, Sigma: math.Sqrt(math.Max(m1.Variance, varFloor))}
	c2 = stats.Normal{Mu: m2.Mean, Sigma: math.Sqrt(math.Max(m2.Variance, varFloor))}
	return float64(len(g2)) / float64(len(xs)), c1, c2
}

func clamp01eps(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
