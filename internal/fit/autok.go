package fit

import (
	"math"
)

// Automatic component-count selection: the paper's §3.4 asks "when to
// switch from LVF² to the compatible LVF in order to save storage space
// and computational time"; the standard statistical answer is an
// information criterion. FitAutoK fits k = 1..maxK skew-normal mixtures
// and keeps the k with the best BIC (or AIC), so unimodal points store a
// plain-LVF entry and genuinely multi-Gaussian points pay for their
// extra components only when the data supports them.

// Criterion selects the model-selection penalty.
type Criterion int

// Model-selection criteria.
const (
	// BIC is the Bayesian information criterion k·ln(n) − 2·lnL
	// (consistent: picks the true k as n → ∞).
	BIC Criterion = iota
	// AIC is Akaike's 2·k − 2·lnL (efficient, less conservative).
	AIC
)

// paramCount returns the free-parameter count of a k-component SN
// mixture: 3 per component plus k−1 weights.
func paramCount(k int) int { return 3*k + (k - 1) }

// Score computes the criterion value (lower is better).
func (c Criterion) Score(logLik float64, k, n int) float64 {
	p := float64(paramCount(k))
	switch c {
	case AIC:
		return 2*p - 2*logLik
	default:
		return p*math.Log(float64(n)) - 2*logLik
	}
}

// AutoKResult is the selected mixture plus the per-k audit trail.
type AutoKResult struct {
	Best      SNMixResult
	K         int
	Criterion Criterion
	// Scores[k-1] is the criterion value for the k-component fit
	// (NaN if that fit failed).
	Scores []float64
}

// FitAutoK fits k = 1..maxK and selects by the criterion.
func FitAutoK(xs []float64, maxK int, crit Criterion, o Options) (AutoKResult, error) {
	if maxK < 1 {
		maxK = 1
	}
	out := AutoKResult{Criterion: crit, Scores: make([]float64, maxK)}
	bestScore := math.Inf(1)
	var lastErr error
	for k := 1; k <= maxK; k++ {
		r, err := FitSNMixK(xs, k, o)
		if err != nil {
			out.Scores[k-1] = math.NaN()
			lastErr = err
			continue
		}
		s := crit.Score(r.LogLik, k, len(xs))
		out.Scores[k-1] = s
		if s < bestScore {
			bestScore = s
			out.Best = r
			out.K = k
		}
	}
	if out.K == 0 {
		return out, lastErr
	}
	return out, nil
}
