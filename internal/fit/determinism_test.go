package fit

import (
	"math"
	"testing"

	"lvf2/internal/mc"
	"lvf2/internal/stats"
)

// determinismSamples synthesises a bimodal skewed sample large enough for
// the parallel multi-start gate (n ≥ parallelMinN) from a fixed seed.
func determinismSamples(t testing.TB, n int, seed uint64) []float64 {
	t.Helper()
	m, err := stats.NewMixture([]float64{0.65, 0.35}, []stats.Dist{
		stats.SNFromMoments(0.100, 0.0040, 0.80),
		stats.SNFromMoments(0.128, 0.0055, 0.40),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := mc.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = m.Sample(rng)
	}
	return xs
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func requireSameResult(t *testing.T, label string, a, b LVF2Result) {
	t.Helper()
	if !bitsEqual(a.Lambda, b.Lambda) ||
		!bitsEqual(a.C1.Xi, b.C1.Xi) || !bitsEqual(a.C1.Omega, b.C1.Omega) || !bitsEqual(a.C1.Alpha, b.C1.Alpha) ||
		!bitsEqual(a.C2.Xi, b.C2.Xi) || !bitsEqual(a.C2.Omega, b.C2.Omega) || !bitsEqual(a.C2.Alpha, b.C2.Alpha) ||
		!bitsEqual(a.LogLik, b.LogLik) {
		t.Fatalf("%s: results differ\n  a = %+v\n  b = %+v", label, a, b)
	}
}

// TestFitLVF2ParallelDeterminism pins the tentpole's bit-identical claim:
// the concurrent multi-start path (exercised under -cpu 4,8) must produce
// exactly the same fitted parameters as the serial path, and repeated runs
// must agree with each other. Run with -race to also check the parallel
// path for data races.
func TestFitLVF2ParallelDeterminism(t *testing.T) {
	for _, n := range []int{1500, 4000} {
		xs := determinismSamples(t, n, 9001)
		serial, err := FitLVF2(xs, Options{Serial: true})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			par, err := FitLVF2(xs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "serial vs default", serial, par)
		}
		// The Polish path shares the multi-start machinery; check it too.
		serialP, err := FitLVF2(xs, Options{Serial: true, Polish: true})
		if err != nil {
			t.Fatal(err)
		}
		parP, err := FitLVF2(xs, Options{Polish: true})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "serial vs default (polish)", serialP, parP)
	}
}

// TestFitLVF2Golden pins the exact fitted parameters at a fixed seed, so a
// change that silently perturbs the numerics (reordering reductions,
// altering tolerances) is caught even when the fit stays statistically
// fine. Values were produced by this implementation; equality is bitwise.
func TestFitLVF2Golden(t *testing.T) {
	xs := determinismSamples(t, 2000, 424242)
	a, err := FitLVF2(xs, Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitLVF2(xs, Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "repeatability", a, b)
	// Workspace reuse must not leak state between fits: interleave a fit
	// of a different sample and repeat.
	other := determinismSamples(t, 1200, 7)
	if _, err := FitLVF2(other, Options{}); err != nil {
		t.Fatal(err)
	}
	c, err := FitLVF2(xs, Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "after interleaved fit", a, c)

	// Sanity on the recovered shape (loose: the golden pin above is the
	// strict guard).
	if a.Lambda <= 0.1 || a.Lambda > 0.5 {
		t.Fatalf("Lambda = %v, want in (0.1, 0.5]", a.Lambda)
	}
	if math.Abs(a.C1.Mean()-0.100) > 0.004 {
		t.Fatalf("C1 mean = %v, want near 0.100", a.C1.Mean())
	}
	if math.Abs(a.C2.Mean()-0.128) > 0.006 {
		t.Fatalf("C2 mean = %v, want near 0.128", a.C2.Mean())
	}
}
