//go:build !race

package fit

import (
	"testing"
)

// allocBudget is the steady-state heap-allocation ceiling for one warm
// LVF² fit through a reused workspace. The pre-workspace implementation
// allocated 277 times per fit; the budget enforces the ≥10× reduction with
// headroom for the few remaining fixed allocations (closure headers on the
// first NM call of a fresh scratch, pool internals).
const allocBudget = 24

// TestFitLVF2AllocBudget pins the tentpole's zero-steady-state-allocation
// claim: after a warm-up fit, repeated serial fits through the same
// workspace must stay within allocBudget allocations each. (Skipped under
// -race, which inflates allocation counts.)
func TestFitLVF2AllocBudget(t *testing.T) {
	xs := determinismSamples(t, 3000, 1234)
	var fw Workspace
	o := Options{Serial: true}
	if _, err := FitLVF2Ws(xs, o, &fw); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := FitLVF2Ws(xs, o, &fw); err != nil {
			t.Fatal(err)
		}
	})
	if avg > allocBudget {
		t.Fatalf("FitLVF2Ws allocates %.1f times per warm fit, budget %d", avg, allocBudget)
	}
}

// TestFitNorm2AllocBudget does the same for the fused Norm² EM.
func TestFitNorm2AllocBudget(t *testing.T) {
	xs := determinismSamples(t, 3000, 1234)
	var fw Workspace
	if _, err := fitNorm2(xs, Options{}, &fw); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := fitNorm2(xs, Options{}, &fw); err != nil {
			t.Fatal(err)
		}
	})
	if avg > allocBudget {
		t.Fatalf("fitNorm2 allocates %.1f times per warm fit, budget %d", avg, allocBudget)
	}
}
