package fit

import (
	"math"
	"testing"

	"lvf2/internal/stats"
)

// seedTruth is a clearly bimodal skew-normal mixture, the shape the
// warm-start scheme is built for.
func seedTruth(shift, scale float64) stats.Mixture {
	m, _ := stats.NewMixture(
		[]float64{0.65, 0.35},
		[]stats.Dist{
			stats.SkewNormal{Xi: shift, Omega: 0.4 * scale, Alpha: 3},
			stats.SkewNormal{Xi: shift + 2.5*scale, Omega: 0.3 * scale, Alpha: -1},
		})
	return m
}

// cdfRMSE compares two fitted distributions over an evenly spaced grid
// spanning both supports — the metric of the warm-vs-cold accuracy gate.
func cdfRMSE(a, b stats.Dist, lo, hi float64) float64 {
	const pts = 201
	var sum float64
	for i := 0; i < pts; i++ {
		x := lo + (hi-lo)*float64(i)/(pts-1)
		d := a.CDF(x) - b.CDF(x)
		sum += d * d
	}
	return math.Sqrt(sum / pts)
}

func TestFitLVF2SeededHit(t *testing.T) {
	// Neighbouring grid entries: same mixture shape, shifted and scaled —
	// exactly what adjacent slew–load points look like.
	xsA := sampleDist(seedTruth(1.0, 1.0), 4000, 11)
	xsB := sampleDist(seedTruth(1.3, 1.15), 4000, 12)

	coldA, err := FitLVF2(xsA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldB, err := FitLVF2(xsB, Options{})
	if err != nil {
		t.Fatal(err)
	}

	warmB, outcome, err := FitLVF2Seeded(xsB, SeedOf(coldA), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != WarmHit {
		t.Fatalf("neighbour seed outcome = %v, want hit", outcome)
	}
	if warmB.Warm != WarmHit {
		t.Errorf("result.Warm = %v, want WarmHit", warmB.Warm)
	}

	// The warm fit must describe the sample essentially as well as the
	// cold fit: close in log-likelihood and in CDF.
	if warmB.LogLik < coldB.LogLik-0.01*math.Abs(coldB.LogLik) {
		t.Errorf("warm loglik %v well below cold %v", warmB.LogLik, coldB.LogLik)
	}
	if rmse := cdfRMSE(warmB.Dist(), coldB.Dist(), -1, 6); rmse > 0.01 {
		t.Errorf("warm-vs-cold CDF RMSE = %v, want <= 0.01", rmse)
	}
}

func TestFitLVF2SeededRejectedFallsBackCold(t *testing.T) {
	xs := sampleDist(seedTruth(0, 1), 2000, 21)
	cold, err := FitLVF2(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for name, seed := range map[string]Seed{
		"nan-xi":      {Lambda: 0.4, C1: stats.SkewNormal{Xi: math.NaN(), Omega: 1}},
		"bad-lambda":  {Lambda: math.Inf(1), C1: stats.SkewNormal{Omega: 1}},
		"zero-omega":  {Lambda: 0.4, C1: stats.SkewNormal{Xi: 1, Omega: 0}},
		"swapped-bad": {Lambda: 0.9, C1: stats.SkewNormal{Xi: 1, Omega: 1}, C2: stats.SkewNormal{Xi: math.Inf(-1), Omega: 1}},
	} {
		warm, outcome, err := FitLVF2Seeded(xs, seed, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if outcome != WarmRejected {
			t.Errorf("%s: outcome = %v, want rejected", name, outcome)
		}
		// The fallback is the cold multi-start itself: identical parameters
		// bit for bit, only the provenance label differs.
		if warm.Lambda != cold.Lambda || warm.C1 != cold.C1 || warm.C2 != cold.C2 {
			t.Errorf("%s: fallback fit differs from cold fit", name)
		}
		if warm.Warm != WarmRejected {
			t.Errorf("%s: result.Warm = %v, want WarmRejected", name, warm.Warm)
		}
	}
}

// TestFitLVF2SeededDeterminism pins the bit-identity contract: the
// seeded path must produce the same parameters through the serial and
// the concurrent refinement, and across repeated runs.
func TestFitLVF2SeededDeterminism(t *testing.T) {
	xsA := sampleDist(seedTruth(2, 0.8), 4000, 31)
	xsB := sampleDist(seedTruth(2.2, 0.9), 4000, 32)
	coldA, err := FitLVF2(xsA, Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	seed := SeedOf(coldA)

	serial, so, err := FitLVF2Seeded(xsB, seed, Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		par, po, err := FitLVF2Seeded(xsB, seed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if so != po {
			t.Fatalf("serial outcome %v != parallel outcome %v", so, po)
		}
		if serial != par {
			t.Fatalf("run %d: parallel seeded fit differs from serial:\n%+v\n%+v", i, par, serial)
		}
	}
}

// TestSeedIgnoredByOtherModels: Options.Seed is an LVF²-only contract.
func TestSeedIgnoredByOtherModels(t *testing.T) {
	xs := sampleDist(seedTruth(0, 1), 1000, 41)
	seed := Seed{Lambda: 0.3, C1: stats.SkewNormal{Xi: 0, Omega: 1}, C2: stats.SkewNormal{Xi: 2, Omega: 1}}
	o := Options{Seed: &seed}
	for _, m := range []Model{ModelLVF, ModelNorm2, ModelGaussian} {
		r, err := Fit(m, xs, o)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if r.Warm != WarmCold {
			t.Errorf("%s: Warm = %v, want WarmCold", m, r.Warm)
		}
	}
}

// TestWarmstartCounterWiring: every resolved LVF² fit lands in exactly
// one bucket of lvf2_fit_warmstart_total.
func TestWarmstartCounterWiring(t *testing.T) {
	xsA := sampleDist(seedTruth(1, 1), 3000, 51)
	xsB := sampleDist(seedTruth(1.1, 1.05), 3000, 52)
	coldA, err := FitLVF2(xsA, Options{})
	if err != nil {
		t.Fatal(err)
	}

	hit0, rej0, cold0 := warmstartHit.Value(), warmstartRejected.Value(), warmstartCold.Value()
	if _, outcome, err := FitLVF2Seeded(xsB, SeedOf(coldA), Options{}); err != nil || outcome != WarmHit {
		t.Fatalf("seeded fit: outcome %v, err %v", outcome, err)
	}
	bad := Seed{Lambda: 0.4, C1: stats.SkewNormal{Xi: math.NaN(), Omega: 1}}
	if _, outcome, err := FitLVF2Seeded(xsB, bad, Options{}); err != nil || outcome != WarmRejected {
		t.Fatalf("rejected fit: outcome %v, err %v", outcome, err)
	}
	if _, err := FitLVF2(xsB, Options{}); err != nil {
		t.Fatal(err)
	}
	// Other fit tests may run concurrently against the same process-wide
	// counters, so assert monotone growth, not exact deltas.
	if d := warmstartHit.Value() - hit0; d < 1 {
		t.Errorf("hit counter grew by %d, want >= 1", d)
	}
	if d := warmstartRejected.Value() - rej0; d < 1 {
		t.Errorf("rejected counter grew by %d, want >= 1", d)
	}
	if d := warmstartCold.Value() - cold0; d < 1 {
		t.Errorf("cold counter grew by %d, want >= 1", d)
	}
}
