package fit

import (
	"math/rand"
	"testing"
)

func TestKMeans1DTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, rng.NormFloat64()*0.1)
	}
	for i := 0; i < 300; i++ {
		xs = append(xs, 5+rng.NormFloat64()*0.1)
	}
	assign, centers := KMeans1D(xs, 2, 100)
	if len(centers) != 2 {
		t.Fatalf("centers: %v", centers)
	}
	if centers[0] > centers[1] {
		t.Errorf("centers not sorted: %v", centers)
	}
	if centers[0] < -0.5 || centers[0] > 0.5 || centers[1] < 4.5 || centers[1] > 5.5 {
		t.Errorf("centers off: %v", centers)
	}
	// All points near 0 in cluster 0, near 5 in cluster 1.
	for i, x := range xs {
		want := 0
		if x > 2.5 {
			want = 1
		}
		if assign[i] != want {
			t.Fatalf("point %v assigned to %d", x, assign[i])
		}
	}
}

func TestKMeans1DDegenerate(t *testing.T) {
	if a, c := KMeans1D(nil, 2, 10); a != nil || c != nil {
		t.Error("empty input")
	}
	// k > n collapses to k = n.
	a, c := KMeans1D([]float64{1, 2}, 5, 10)
	if len(c) != 2 || len(a) != 2 {
		t.Errorf("k>n: %v %v", a, c)
	}
	// Constant data: must terminate with valid assignments.
	a, c = KMeans1D([]float64{3, 3, 3, 3}, 2, 10)
	if len(a) != 4 || len(c) != 2 {
		t.Errorf("constant data: %v %v", a, c)
	}
}

func TestKMeans1DSingleCluster(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1.05, 0.95}
	assign, centers := KMeans1D(xs, 1, 10)
	if len(centers) != 1 {
		t.Fatalf("centers %v", centers)
	}
	for _, a := range assign {
		if a != 0 {
			t.Fatal("all points must be in cluster 0")
		}
	}
	if centers[0] < 0.9 || centers[0] > 1.1 {
		t.Errorf("center %v", centers[0])
	}
}
