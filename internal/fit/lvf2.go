package fit

import (
	"math"
	"sort"

	"lvf2/internal/mc"
	"lvf2/internal/opt"
	"lvf2/internal/stats"
)

// LVF2Result holds the fitted LVF² parameters of eq. (4):
// f(x) = (1−λ)·SN(x|θ₁) + λ·SN(x|θ₂). By convention component 1 is the
// dominant one (λ ≤ 0.5), which is also the component that inherits the
// classic LVF attributes in the Liberty encoding (§3.3).
type LVF2Result struct {
	Lambda float64
	C1, C2 stats.SkewNormal
	LogLik float64
	Iters  int
}

// Dist returns the fitted mixture.
func (r LVF2Result) Dist() stats.Mixture {
	m, _ := stats.NewMixture(
		[]float64{1 - r.Lambda, r.Lambda},
		[]stats.Dist{r.C1, r.C2})
	return m
}

// Result converts to the generic fit result.
func (r LVF2Result) Result() Result {
	return Result{Model: ModelLVF2, Dist: r.Dist(), LogLik: r.LogLik, Iters: r.Iters}
}

// IsDegenerate reports whether the fit collapsed to a single component
// (λ ≈ 0), i.e. the distribution is adequately described by plain LVF —
// the storage-saving switch §3.4 discusses.
func (r LVF2Result) IsDegenerate() bool { return r.Lambda < 1e-6 }

// FitLVF2 fits the paper's LVF² model by EM (§3.2):
//
//  1. Initialise by K-means (k=2) clustering and per-cluster method of
//     moments. Because the K-means location split is a poor start for
//     same-centre scale mixtures (the paper's Kurtosis scenario), two
//     additional deterministic starts are tried — a centre-vs-tails scale
//     split and a dominant-vs-upper-tail split — and the EM run with the
//     best final log-likelihood wins.
//  2. E-step: posterior responsibilities (eq. 6).
//  3. M-step: weighted method of moments per component — the exact M-step
//     for a skew-normal mixture has no closed form, so the expected
//     complete-data log-likelihood (eq. 7-9) is maximised approximately by
//     matching each component's three weighted sample moments through the
//     bijection g of eq. (2). With Options.Polish a Nelder–Mead ascent on
//     the true log-likelihood (eq. 5) refines all seven parameters.
func FitLVF2(xs []float64, o Options) (LVF2Result, error) {
	o = o.withDefaults()
	n := len(xs)
	if n < 8 {
		return LVF2Result{}, ErrNotEnoughData
	}
	all := stats.Moments(xs)
	sdFloor := math.Max(all.Std()*1e-3, 1e-300)

	inits := lvf2Inits(xs, all, sdFloor, o)
	best := LVF2Result{LogLik: math.Inf(-1)}
	bestInit := LVF2Result{LogLik: math.Inf(-1)}
	// Each start gets a bounded iteration budget: the winner is refined by
	// ECM below, so deep EM tails are wasted work.
	oStart := o
	if oStart.MaxIter > 60 {
		oStart.MaxIter = 60
	}
	for _, init := range inits {
		r := runLVF2EM(xs, init, oStart, sdFloor)
		if r.LogLik > best.LogLik {
			best = r
		}
		// Score the raw initialisation too: the moment M-step can drift
		// away from a good start when a component's weighted skewness
		// exceeds the SN-attainable range (sharp-edged peaks).
		raw := LVF2Result{Lambda: init.lambda, C1: init.c1, C2: init.c2}
		raw.LogLik = mixLogLik(xs, raw.Lambda, raw.C1, raw.C2)
		if raw.LogLik > bestInit.LogLik {
			bestInit = raw
		}
	}
	// ECM: proper weighted-MLE M-steps. A full rescue run from the best
	// raw initialisation is only needed when the moment-EM shows drift
	// symptoms — a component clamped at the skewness boundary, or a final
	// log-likelihood barely above (or below) an unconverged start. The
	// cheap single polish round always runs.
	clamped := math.Abs(best.C1.Skewness()) > 0.98 || math.Abs(best.C2.Skewness()) > 0.98
	if clamped || best.LogLik < bestInit.LogLik+float64(n)*1e-3 {
		if ecm := ecmRefine(xs, bestInit, 3); ecm.LogLik > best.LogLik {
			best = ecm
		}
	}
	best = ecmRefine(xs, best, 1)
	best.normalise()
	if o.Polish {
		best = polishLVF2(xs, best, o)
	}
	return best, nil
}

// ecmRefine runs `rounds` of expectation–conditional-maximisation: the
// E-step of eq. (6) followed by an exact weighted maximum-likelihood
// update of each skew-normal component (Nelder–Mead over (ξ, log ω, α),
// warm-started at the current parameters). The result is kept only if the
// final log-likelihood improves on the input.
func ecmRefine(xs []float64, r LVF2Result, rounds int) LVF2Result {
	if r.IsDegenerate() || r.Lambda > 1-1e-6 || r.C1.Omega <= 0 || r.C2.Omega <= 0 {
		return r
	}
	n := len(xs)
	lambda, c1, c2 := r.Lambda, r.C1, r.C2
	resp := make([]float64, n)
	w1s := make([]float64, n)
	for round := 0; round < rounds; round++ {
		var w2 float64
		for i, x := range xs {
			p1 := (1 - lambda) * c1.PDF(x)
			p2 := lambda * c2.PDF(x)
			tot := p1 + p2
			if tot < 1e-300 {
				tot = 1e-300
				p2 = 0
			}
			resp[i] = p2 / tot
			w1s[i] = 1 - resp[i]
			w2 += resp[i]
		}
		lambda = w2 / float64(n)
		if lambda < 1e-9 || lambda > 1-1e-9 {
			return r
		}
		c1 = weightedSNMLE(xs, w1s, c1)
		c2 = weightedSNMLE(xs, resp, c2)
	}
	ll := mixLogLik(xs, lambda, c1, c2)
	if ll <= r.LogLik {
		return r
	}
	return LVF2Result{Lambda: lambda, C1: c1, C2: c2, LogLik: ll, Iters: r.Iters}
}

// mixLogLik evaluates eq. (5) for a two-component skew-normal mixture.
func mixLogLik(xs []float64, lambda float64, c1, c2 stats.SkewNormal) float64 {
	var ll float64
	for _, x := range xs {
		t := (1-lambda)*c1.PDF(x) + lambda*c2.PDF(x)
		if t < 1e-300 {
			t = 1e-300
		}
		ll += math.Log(t)
	}
	return ll
}

// weightedSNMLE maximises Σ wᵢ log f_SN(xᵢ) over (ξ, log ω, α) from a warm
// start. For very large samples the objective is evaluated on a strided
// subsample (the optimum of the subsampled likelihood is statistically
// indistinguishable at this precision, and the final model is re-scored
// on the full data by the caller).
func weightedSNMLE(xs, ws []float64, init stats.SkewNormal) stats.SkewNormal {
	if init.Omega <= 0 {
		return init
	}
	const maxObjPoints = 6000
	if len(xs) > maxObjPoints {
		stride := (len(xs) + maxObjPoints - 1) / maxObjPoints
		var sx, sw []float64
		for i := 0; i < len(xs); i += stride {
			sx = append(sx, xs[i])
			sw = append(sw, ws[i])
		}
		xs, ws = sx, sw
	}
	// Analytic negative log-likelihood: with z = (x−ξ)/ω,
	// −log f = log ω + z²/2 − log Φ(αz) + const, which avoids the Exp of
	// the density and one Log per point in the Nelder–Mead hot loop.
	neg := func(p []float64) float64 {
		if math.Abs(p[2]) > 80 || p[1] > 50 || p[1] < -80 {
			return math.Inf(1)
		}
		xi, logOmega, alpha := p[0], p[1], p[2]
		invOmega := math.Exp(-logOmega)
		var s, wsum float64
		for i, x := range xs {
			w := ws[i]
			if w <= 1e-12 {
				continue
			}
			z := (x - xi) * invOmega
			phi := stats.StdNormCDF(alpha * z)
			if phi < 1e-300 {
				phi = 1e-300
			}
			s += w * (0.5*z*z - math.Log(phi))
			wsum += w
		}
		return s + wsum*logOmega
	}
	x0 := []float64{init.Xi, math.Log(init.Omega), init.Alpha}
	best, nll := opt.NelderMead(neg, x0, opt.NelderMeadOptions{
		MaxIter: 100,
		TolF:    1e-7,
		TolX:    1e-8,
	})
	if math.IsInf(nll, 1) {
		return init
	}
	return stats.SkewNormal{Xi: best[0], Omega: math.Exp(best[1]), Alpha: best[2]}
}

// lvf2Init is one EM starting point.
type lvf2Init struct {
	lambda float64
	c1, c2 stats.SkewNormal
}

// lvf2Inits builds the deterministic multi-start set. With
// Options.PerturbInit > 0 every start is jittered by a seeded RNG — the
// FitRobust retry path uses this to escape a bad basin deterministically.
func lvf2Inits(xs []float64, all stats.SampleMoments, sdFloor float64, o Options) []lvf2Init {
	var inits []lvf2Init

	// 1. K-means location split (§3.2's initialisation).
	assign, _ := KMeans1D(xs, 2, 50)
	lam, c1, c2 := snInitFromClusters(xs, assign, all, sdFloor)
	inits = append(inits, lvf2Init{lam, c1, c2})

	// 2. Scale split: centre 70% vs tails — the right start for
	// same-centre different-σ mixtures (Kurtosis scenario).
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	var inner, outer []float64
	cut := 1.0 * all.Std()
	for _, x := range xs {
		if math.Abs(x-med) <= cut {
			inner = append(inner, x)
		} else {
			outer = append(outer, x)
		}
	}
	if len(inner) >= 8 && len(outer) >= 8 {
		mi, mo := stats.Moments(inner), stats.Moments(outer)
		// Widen the tail component: its subset sd underestimates the
		// generating component's sd.
		inits = append(inits, lvf2Init{
			lambda: float64(len(outer)) / float64(len(xs)),
			c1:     snFromMomentsFloored(mi, sdFloor),
			c2:     stats.SNFromMoments(mo.Mean, mo.Std()*1.5, 0),
		})
	}

	// 3. Dominant-vs-upper-tail split (Minor Saddle shapes): lower 80%
	// against the top 20%.
	q80 := sorted[int(0.8*float64(len(sorted)-1))]
	var lo, hi []float64
	for _, x := range xs {
		if x <= q80 {
			lo = append(lo, x)
		} else {
			hi = append(hi, x)
		}
	}
	if len(lo) >= 8 && len(hi) >= 8 {
		ml, mh := stats.Moments(lo), stats.Moments(hi)
		inits = append(inits, lvf2Init{
			lambda: 0.2,
			c1:     snFromMomentsFloored(ml, sdFloor),
			c2:     stats.SNFromMoments(mh.Mean, mh.Std()*1.5, 0),
		})
	}

	// 4. The converged Norm² solution with zero skews: the SN mixture
	// family strictly contains the Gaussian mixture, so starting from the
	// best Gaussian fit guarantees LVF² does not trail Norm² merely for
	// optimisation reasons.
	if g, err := FitNorm2Params(xs, Options{}); err == nil && g.Lambda > 1e-9 {
		inits = append(inits, lvf2Init{
			lambda: g.Lambda,
			c1:     stats.SkewNormal{Xi: g.C1.Mu, Omega: g.C1.Sigma},
			c2:     stats.SkewNormal{Xi: g.C2.Mu, Omega: g.C2.Sigma},
		})
	}
	if o.PerturbInit > 0 {
		rng := mc.NewRNG(o.PerturbSeed | 1)
		sd := math.Max(all.Std(), sdFloor)
		jitterSN := func(c stats.SkewNormal) stats.SkewNormal {
			c.Xi += (2*rng.Float64() - 1) * o.PerturbInit * sd
			c.Omega *= math.Exp((2*rng.Float64() - 1) * o.PerturbInit)
			c.Alpha += (2*rng.Float64() - 1) * o.PerturbInit * 3
			return c
		}
		for i := range inits {
			inits[i].c1 = jitterSN(inits[i].c1)
			inits[i].c2 = jitterSN(inits[i].c2)
			lam := inits[i].lambda + (2*rng.Float64()-1)*o.PerturbInit*0.5
			inits[i].lambda = math.Min(math.Max(lam, 0.02), 0.5)
		}
	}
	return inits
}

// runLVF2EM runs the EM loop from one starting point.
func runLVF2EM(xs []float64, init lvf2Init, o Options, sdFloor float64) LVF2Result {
	n := len(xs)
	lambda, c1, c2 := init.lambda, init.c1, init.c2

	resp := make([]float64, n)
	w1s := make([]float64, n)
	var iters int
	for iters = 0; iters < o.MaxIter; iters++ {
		// E-step (eq. 6): responsibility of component 2 per point.
		// (Convergence is tested on the parameters, not the
		// log-likelihood, which keeps math.Log out of the hot loop.)
		for i, x := range xs {
			p1 := (1 - lambda) * c1.PDF(x)
			p2 := lambda * c2.PDF(x)
			tot := p1 + p2
			if tot < 1e-300 {
				p2 = 0
				tot = 1e-300
			}
			resp[i] = p2 / tot
		}

		// M-step: weighted method of moments per component.
		var w2 float64
		for _, r := range resp {
			w2 += r
		}
		newLambda := w2 / float64(n)
		if newLambda < 1e-9 || newLambda > 1-1e-9 {
			lambda = clamp01eps(newLambda)
			break
		}
		for i, r := range resp {
			w1s[i] = 1 - r
		}
		m1 := stats.WeightedMoments(xs, w1s)
		m2 := stats.WeightedMoments(xs, resp)
		newC1 := snFromMomentsFloored(m1, sdFloor)
		newC2 := snFromMomentsFloored(m2, sdFloor)

		// sdFloor is 1e-3 of the overall sample sd, so pTol is 1e-5 of the
		// data scale — below the ECM polish resolution downstream.
		pTol := sdFloor * 1e-2
		converged := iters > 0 &&
			math.Abs(newLambda-lambda) < 1e-6 &&
			math.Abs(newC1.Xi-c1.Xi) < pTol &&
			math.Abs(newC2.Xi-c2.Xi) < pTol &&
			math.Abs(newC1.Omega-c1.Omega) < pTol &&
			math.Abs(newC2.Omega-c2.Omega) < pTol
		lambda, c1, c2 = newLambda, newC1, newC2
		if converged {
			break
		}
	}

	return LVF2Result{
		Lambda: lambda, C1: c1, C2: c2,
		LogLik: mixLogLik(xs, lambda, c1, c2),
		Iters:  iters,
	}
}

func (r *LVF2Result) normalise() {
	if r.Lambda > 0.5 {
		r.Lambda = 1 - r.Lambda
		r.C1, r.C2 = r.C2, r.C1
	}
}

func snFromMomentsFloored(m stats.SampleMoments, sdFloor float64) stats.SkewNormal {
	sd := m.Std()
	if sd < sdFloor {
		sd = sdFloor
	}
	return stats.SNFromMoments(m.Mean, sd, m.Skewness)
}

func snInitFromClusters(xs []float64, assign []int, all stats.SampleMoments, sdFloor float64) (lambda float64, c1, c2 stats.SkewNormal) {
	var g1, g2 []float64
	for i, x := range xs {
		if assign[i] == 0 {
			g1 = append(g1, x)
		} else {
			g2 = append(g2, x)
		}
	}
	if len(g1) < 4 || len(g2) < 4 {
		sd := all.Std()
		c1 = stats.SNFromMoments(all.Mean-0.5*sd, sd, 0)
		c2 = stats.SNFromMoments(all.Mean+0.5*sd, sd, 0)
		return 0.5, c1, c2
	}
	m1 := stats.Moments(g1)
	m2 := stats.Moments(g2)
	return float64(len(g2)) / float64(len(xs)),
		snFromMomentsFloored(m1, sdFloor),
		snFromMomentsFloored(m2, sdFloor)
}

// polishLVF2 refines the EM solution with a bounded Nelder–Mead ascent on
// the exact log-likelihood (eq. 5) over the parameter vector
// (logit λ, ξ₁, log ω₁, α₁, ξ₂, log ω₂, α₂).
func polishLVF2(xs []float64, r LVF2Result, o Options) LVF2Result {
	if r.IsDegenerate() || r.C1.Omega <= 0 || r.C2.Omega <= 0 {
		return r
	}
	x0 := []float64{
		logit(r.Lambda),
		r.C1.Xi, math.Log(r.C1.Omega), r.C1.Alpha,
		r.C2.Xi, math.Log(r.C2.Omega), r.C2.Alpha,
	}
	neg := func(p []float64) float64 {
		lam := sigmoid(p[0])
		if lam < 1e-9 || lam > 1-1e-9 || math.Abs(p[3]) > 60 || math.Abs(p[6]) > 60 {
			return math.Inf(1)
		}
		c1 := stats.SkewNormal{Xi: p[1], Omega: math.Exp(p[2]), Alpha: p[3]}
		c2 := stats.SkewNormal{Xi: p[4], Omega: math.Exp(p[5]), Alpha: p[6]}
		var ll float64
		for _, x := range xs {
			t := (1-lam)*c1.PDF(x) + lam*c2.PDF(x)
			if t < 1e-300 {
				t = 1e-300
			}
			ll += math.Log(t)
		}
		return -ll
	}
	best, nll := opt.NelderMead(neg, x0, opt.NelderMeadOptions{
		MaxIter: 150 * len(x0),
		TolF:    1e-8,
		TolX:    1e-8,
	})
	if -nll <= r.LogLik {
		return r
	}
	out := LVF2Result{
		Lambda: sigmoid(best[0]),
		C1:     stats.SkewNormal{Xi: best[1], Omega: math.Exp(best[2]), Alpha: best[3]},
		C2:     stats.SkewNormal{Xi: best[4], Omega: math.Exp(best[5]), Alpha: best[6]},
		LogLik: -nll,
		Iters:  r.Iters,
	}
	out.normalise()
	return out
}

func logit(p float64) float64 {
	if p <= 0 {
		return -30
	}
	if p >= 1 {
		return 30
	}
	return math.Log(p / (1 - p))
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
