package fit

import (
	"context"
	"math"
	"runtime"

	"lvf2/internal/mc"
	"lvf2/internal/opt"
	"lvf2/internal/pool"
	"lvf2/internal/stats"
)

// LVF2Result holds the fitted LVF² parameters of eq. (4):
// f(x) = (1−λ)·SN(x|θ₁) + λ·SN(x|θ₂). By convention component 1 is the
// dominant one (λ ≤ 0.5), which is also the component that inherits the
// classic LVF attributes in the Liberty encoding (§3.3).
type LVF2Result struct {
	Lambda float64
	C1, C2 stats.SkewNormal
	LogLik float64
	Iters  int
	// Warm reports whether this fit was produced by an accepted warm
	// start (WarmHit), a rejected warm start that fell back to the cold
	// multi-start (WarmRejected), or an unseeded cold fit (WarmCold).
	Warm WarmOutcome
}

// Dist returns the fitted mixture.
func (r LVF2Result) Dist() stats.Mixture {
	m, _ := stats.NewMixture(
		[]float64{1 - r.Lambda, r.Lambda},
		[]stats.Dist{r.C1, r.C2})
	return m
}

// Result converts to the generic fit result.
func (r LVF2Result) Result() Result {
	return Result{Model: ModelLVF2, Dist: r.Dist(), LogLik: r.LogLik, Iters: r.Iters}
}

// IsDegenerate reports whether the fit collapsed to a single component
// (λ ≈ 0), i.e. the distribution is adequately described by plain LVF —
// the storage-saving switch §3.4 discusses.
func (r LVF2Result) IsDegenerate() bool { return r.Lambda < 1e-6 }

// maxStarts is the size of the deterministic multi-start set.
const maxStarts = 4

// parallelMinN is the sample count below which the concurrent multi-start
// path is not worth its goroutine setup.
const parallelMinN = 1024

// emMaxPoints caps the sample the exploratory multi-start EM iterates on.
// 4096 keeps the paper-scale scenario fits (2k–4k samples) on the exact
// full-sample path; only the larger characterisation sweeps subsample.
const emMaxPoints = 4096

// FitLVF2 fits the paper's LVF² model by EM (§3.2):
//
//  1. Initialise by K-means (k=2) clustering and per-cluster method of
//     moments. Because the K-means location split is a poor start for
//     same-centre scale mixtures (the paper's Kurtosis scenario), two
//     additional deterministic starts are tried — a centre-vs-tails scale
//     split and a dominant-vs-upper-tail split — and the EM run with the
//     best final log-likelihood wins.
//  2. E-step: posterior responsibilities (eq. 6).
//  3. M-step: weighted method of moments per component — the exact M-step
//     for a skew-normal mixture has no closed form, so the expected
//     complete-data log-likelihood (eq. 7-9) is maximised approximately by
//     matching each component's three weighted sample moments through the
//     bijection g of eq. (2). With Options.Polish a Nelder–Mead ascent on
//     the true log-likelihood (eq. 5) refines all seven parameters.
//
// The independent starts run concurrently on the shared worker pool when
// the sample is large enough and Options.Serial is unset; the winner is
// selected by log-likelihood with ties broken by start index, so the
// result is bit-identical to the serial path.
func FitLVF2(xs []float64, o Options) (LVF2Result, error) {
	fw := wsPool.Get().(*Workspace)
	r, err := FitLVF2Ws(xs, o, fw)
	wsPool.Put(fw)
	return r, err
}

// FitLVF2Ws is FitLVF2 fitting through caller-owned workspace buffers; a
// steady-state call allocates nothing. fw must not be shared between
// concurrent fits (nil falls back to a private workspace).
//
// With Options.Seed set, the warm-start path runs first (see
// FitLVF2Seeded); its validation gate falls back to the cold multi-start
// below, and the resolved outcome is recorded in LVF2Result.Warm and the
// lvf2_fit_warmstart_total counter.
func FitLVF2Ws(xs []float64, o Options, fw *Workspace) (LVF2Result, error) {
	o = o.withDefaults()
	n := len(xs)
	if n < 8 {
		return LVF2Result{}, ErrNotEnoughData
	}
	if err := guardSamples(xs); err != nil {
		return LVF2Result{}, err
	}
	if fw == nil {
		fw = &Workspace{}
	}
	fw.grow(n)

	start := nowFit()
	outcome := WarmCold
	if o.Seed != nil {
		seed := *o.Seed
		o.Seed = nil // the cold fallback below must not recurse
		if warm, ok := fitLVF2Seeded(xs, seed, o, fw); ok {
			observeFit(WarmHit, start)
			return warm, nil
		}
		outcome = WarmRejected
	}
	r, err := fitLVF2Cold(xs, o, fw)
	r.Warm = outcome
	if err == nil {
		observeFit(outcome, start)
	}
	return r, err
}

// fitLVF2Cold is the full multi-start EM pipeline (the pre-warm-start
// FitLVF2Ws body). xs and fw have been validated and grown by the caller.
func fitLVF2Cold(xs []float64, o Options, fw *Workspace) (LVF2Result, error) {
	n := len(xs)
	all := stats.Moments(xs)
	sdFloor := math.Max(all.Std()*1e-3, 1e-300)

	inits := lvf2Inits(xs, all, sdFloor, o, fw)
	// Each start gets a bounded iteration budget: the winner is refined by
	// ECM below, so deep EM tails are wasted work. For the same reason the
	// exploration EM runs on a deterministic strided subsample — the starts
	// only need to locate the right basin; every candidate is re-scored on
	// the full sample before selection and the ECM M-steps are exact.
	oStart := o
	if oStart.MaxIter > 60 {
		oStart.MaxIter = 60
	}
	emXs := xs
	if n > emMaxPoints {
		// fw.sorted is free once the initialisation splits are built.
		stride := (n + emMaxPoints - 1) / emMaxPoints
		m := 0
		for i := 0; i < n; i += stride {
			fw.sorted[m] = xs[i]
			m++
		}
		emXs = fw.sorted[:m]
	}
	runStart := func(i int) {
		init := inits[i]
		r := runLVF2EM(emXs, init, oStart, sdFloor, all.Mean)
		if len(emXs) != n {
			r.LogLik = mixLogLik(xs, r.Lambda, r.C1, r.C2)
		}
		fw.emRuns[i] = r
		// Score the raw initialisation too: the moment M-step can drift
		// away from a good start when a component's weighted skewness
		// exceeds the SN-attainable range (sharp-edged peaks).
		raw := LVF2Result{Lambda: init.lambda, C1: init.c1, C2: init.c2}
		raw.LogLik = mixLogLik(xs, raw.Lambda, raw.C1, raw.C2)
		fw.rawRuns[i] = raw
	}
	par := !o.Serial && len(inits) > 1 && n >= parallelMinN && runtime.GOMAXPROCS(0) > 1
	if par {
		err := pool.ForEach(context.Background(), pool.Options{Workers: len(inits)}, len(inits),
			func(_ context.Context, i int) error {
				runStart(i)
				return nil
			})
		if err != nil {
			// A start panicked (pure math — not expected): rerun serially so
			// the failure surfaces exactly as it would without the pool.
			for i := range inits {
				runStart(i)
			}
		}
	} else {
		for i := range inits {
			runStart(i)
		}
	}
	// Deterministic winner selection: scan in start order, replacing only
	// on a strictly better log-likelihood — identical to the serial loop
	// regardless of how the starts were scheduled.
	best := LVF2Result{LogLik: math.Inf(-1)}
	bestInit := LVF2Result{LogLik: math.Inf(-1)}
	for i := range inits {
		if fw.emRuns[i].LogLik > best.LogLik {
			best = fw.emRuns[i]
		}
		if fw.rawRuns[i].LogLik > bestInit.LogLik {
			bestInit = fw.rawRuns[i]
		}
	}
	// ECM: proper weighted-MLE M-steps. A full rescue run from the best
	// raw initialisation is only needed when the moment-EM shows drift
	// symptoms — a component clamped at the skewness boundary, or a final
	// log-likelihood barely above (or below) an unconverged start. The
	// cheap single polish round always runs.
	clamped := math.Abs(best.C1.Skewness()) > 0.98 || math.Abs(best.C2.Skewness()) > 0.98
	if clamped || best.LogLik < bestInit.LogLik+float64(n)*1e-3 {
		if ecm := ecmRefine(xs, bestInit, 3, fw, par); ecm.LogLik > best.LogLik {
			best = ecm
		}
	}
	best = ecmRefine(xs, best, 1, fw, par)
	best.normalise()
	if o.Polish {
		best = polishLVF2(xs, best, o, fw)
	}
	return best, nil
}

// ecmRefine runs `rounds` of expectation–conditional-maximisation: the
// E-step of eq. (6) followed by an exact weighted maximum-likelihood
// update of each skew-normal component (Nelder–Mead over (ξ, log ω, α),
// warm-started at the current parameters). The two component updates are
// independent given the responsibilities, so the parallel path runs them
// concurrently (each on its own mleScratch half). The result is kept only
// if the final log-likelihood improves on the input.
func ecmRefine(xs []float64, r LVF2Result, rounds int, fw *Workspace, par bool) LVF2Result {
	if r.IsDegenerate() || r.Lambda > 1-1e-6 || r.C1.Omega <= 0 || r.C2.Omega <= 0 {
		return r
	}
	n := len(xs)
	lambda, c1, c2 := r.Lambda, r.C1, r.C2
	resp := fw.resp
	w1s := fw.w1s
	for round := 0; round < rounds; round++ {
		t1 := makeSNTerm(1-lambda, c1)
		t2 := makeSNTerm(lambda, c2)
		var w2 float64
		for i, x := range xs {
			p1 := t1.pdf(x)
			p2 := t2.pdf(x)
			tot := p1 + p2
			if tot < 1e-300 {
				tot = 1e-300
				p2 = 0
			}
			ri := p2 / tot
			resp[i] = ri
			w1s[i] = 1 - ri
			w2 += ri
		}
		lambda = w2 / float64(n)
		if lambda < 1e-9 || lambda > 1-1e-9 {
			return r
		}
		if par {
			nc1, nc2 := c1, c2
			err := pool.ForEach(context.Background(), pool.Options{Workers: 2}, 2,
				func(_ context.Context, i int) error {
					if i == 0 {
						nc1 = weightedSNMLE(xs, w1s, c1, &fw.mle[0])
					} else {
						nc2 = weightedSNMLE(xs, resp, c2, &fw.mle[1])
					}
					return nil
				})
			if err != nil {
				// Surface a panic serially rather than dropping the update.
				nc1 = weightedSNMLE(xs, w1s, c1, &fw.mle[0])
				nc2 = weightedSNMLE(xs, resp, c2, &fw.mle[1])
			}
			c1, c2 = nc1, nc2
		} else {
			c1 = weightedSNMLE(xs, w1s, c1, &fw.mle[0])
			c2 = weightedSNMLE(xs, resp, c2, &fw.mle[1])
		}
	}
	ll := mixLogLik(xs, lambda, c1, c2)
	if ll <= r.LogLik {
		return r
	}
	return LVF2Result{Lambda: lambda, C1: c1, C2: c2, LogLik: ll, Iters: r.Iters}
}

// mixLogLik evaluates eq. (5) for a two-component skew-normal mixture.
func mixLogLik(xs []float64, lambda float64, c1, c2 stats.SkewNormal) float64 {
	t1 := makeSNTerm(1-lambda, c1)
	t2 := makeSNTerm(lambda, c2)
	var ll float64
	for _, x := range xs {
		t := t1.pdf(x) + t2.pdf(x)
		if t < 1e-300 {
			t = 1e-300
		}
		ll += math.Log(t)
	}
	return ll
}

// maxObjPoints caps the weighted-MLE objective subsample. The optimum of
// the subsampled likelihood is statistically indistinguishable at this
// precision (parameter noise ~σ/√maxObjPoints, far below the metric
// resolution), and every ECM candidate is accepted only after re-scoring
// on the full data.
const maxObjPoints = 2048

// weightedSNMLE maximises Σ wᵢ log f_SN(xᵢ) over (ξ, log ω, α) from a warm
// start. For large samples the objective is evaluated on a strided
// subsample; points with negligible weight are dropped at build time so
// the simplex inner loop is branch-free over contributing points only.
func weightedSNMLE(xs, ws []float64, init stats.SkewNormal, scr *mleScratch) stats.SkewNormal {
	if init.Omega <= 0 {
		return init
	}
	if scr == nil {
		scr = &mleScratch{}
	}
	stride := 1
	if len(xs) > maxObjPoints {
		stride = (len(xs) + maxObjPoints - 1) / maxObjPoints
	}
	scr.subX = scr.subX[:0]
	scr.subW = scr.subW[:0]
	var wsum float64
	for i := 0; i < len(xs); i += stride {
		if w := ws[i]; w > 1e-12 {
			scr.subX = append(scr.subX, xs[i])
			scr.subW = append(scr.subW, w)
			wsum += w
		}
	}
	if len(scr.subX) == 0 {
		return init
	}
	scr.wsum = wsum
	if scr.obj == nil {
		scr.obj = scr.objective
	}
	scr.x0 = [3]float64{init.Xi, math.Log(init.Omega), init.Alpha}
	best, nll := opt.NelderMeadWs(scr.obj, scr.x0[:], opt.NelderMeadOptions{
		MaxIter: 100,
		// The objective scales with the total weight, so an absolute spread
		// tolerance must too: 1e-9 per unit weight is ~1e-9 log-likelihood
		// per point — far below sampling noise, well past the precision the
		// full-data acceptance check downstream can distinguish.
		TolF: 1e-9 * (1 + wsum),
		TolX: 1e-8,
	}, &scr.nm)
	if math.IsInf(nll, 1) {
		return init
	}
	return stats.SkewNormal{Xi: best[0], Omega: math.Exp(best[1]), Alpha: best[2]}
}

// lvf2Init is one EM starting point.
type lvf2Init struct {
	lambda float64
	c1, c2 stats.SkewNormal
}

// lvf2Inits builds the deterministic multi-start set into fw.inits. With
// Options.PerturbInit > 0 every start is jittered by a seeded RNG — the
// FitRobust retry path uses this to escape a bad basin deterministically.
func lvf2Inits(xs []float64, all stats.SampleMoments, sdFloor float64, o Options, fw *Workspace) []lvf2Init {
	inits := fw.inits[:0]
	n := len(xs)
	sorted := sortInto(fw.sorted, xs)

	// 1. K-means location split (§3.2's initialisation).
	cen0, cen1 := kMeans2(xs, sorted, fw.assign, 50)
	lam, c1, c2 := snInitFromClusters(xs, fw.assign, cen0, cen1, all, sdFloor)
	inits = append(inits, lvf2Init{lam, c1, c2})

	// 2. Scale split: centre 70% vs tails — the right start for
	// same-centre different-σ mixtures (Kurtosis scenario).
	med := sorted[n/2]
	cut := 1.0 * all.Std()
	var inner, outer stats.MomentAccumulator
	inner.Reset(med)
	outer.Reset(med)
	for _, x := range xs {
		if math.Abs(x-med) <= cut {
			inner.Add(x)
		} else {
			outer.Add(x)
		}
	}
	if inner.Count() >= 8 && outer.Count() >= 8 {
		mi, mo := inner.Moments(), outer.Moments()
		// Widen the tail component: its subset sd underestimates the
		// generating component's sd.
		inits = append(inits, lvf2Init{
			lambda: float64(outer.Count()) / float64(n),
			c1:     snFromMomentsFloored(mi, sdFloor),
			c2:     stats.SNFromMoments(mo.Mean, mo.Std()*1.5, 0),
		})
	}

	// 3. Dominant-vs-upper-tail split (Minor Saddle shapes): lower 80%
	// against the top 20%.
	q80 := sorted[int(0.8*float64(n-1))]
	var lo, hi stats.MomentAccumulator
	lo.Reset(all.Mean)
	hi.Reset(q80)
	for _, x := range xs {
		if x <= q80 {
			lo.Add(x)
		} else {
			hi.Add(x)
		}
	}
	if lo.Count() >= 8 && hi.Count() >= 8 {
		ml, mh := lo.Moments(), hi.Moments()
		inits = append(inits, lvf2Init{
			lambda: 0.2,
			c1:     snFromMomentsFloored(ml, sdFloor),
			c2:     stats.SNFromMoments(mh.Mean, mh.Std()*1.5, 0),
		})
	}

	// 4. The converged Norm² solution with zero skews: the SN mixture
	// family strictly contains the Gaussian mixture, so starting from the
	// best Gaussian fit guarantees LVF² does not trail Norm² merely for
	// optimisation reasons. (Runs last: it reuses fw.sorted/fw.assign.)
	if g, err := fitNorm2(xs, Options{}, fw); err == nil && g.Lambda > 1e-9 {
		inits = append(inits, lvf2Init{
			lambda: g.Lambda,
			c1:     stats.SkewNormal{Xi: g.C1.Mu, Omega: g.C1.Sigma},
			c2:     stats.SkewNormal{Xi: g.C2.Mu, Omega: g.C2.Sigma},
		})
	}
	if o.PerturbInit > 0 {
		rng := mc.NewRNG(o.PerturbSeed | 1)
		sd := math.Max(all.Std(), sdFloor)
		jitterSN := func(c stats.SkewNormal) stats.SkewNormal {
			c.Xi += (2*rng.Float64() - 1) * o.PerturbInit * sd
			c.Omega *= math.Exp((2*rng.Float64() - 1) * o.PerturbInit)
			c.Alpha += (2*rng.Float64() - 1) * o.PerturbInit * 3
			return c
		}
		for i := range inits {
			inits[i].c1 = jitterSN(inits[i].c1)
			inits[i].c2 = jitterSN(inits[i].c2)
			lam := inits[i].lambda + (2*rng.Float64()-1)*o.PerturbInit*0.5
			inits[i].lambda = math.Min(math.Max(lam, 0.02), 0.5)
		}
	}
	return inits
}

// runLVF2EM runs the EM loop from one starting point. The E-step and the
// weighted-moment M-step are fused into a single pass: responsibilities
// feed two pivot-shifted moment accumulators directly (complementary
// weights), so no per-point arrays are touched at all.
func runLVF2EM(xs []float64, init lvf2Init, o Options, sdFloor, pivot float64) LVF2Result {
	n := len(xs)
	lambda, c1, c2 := init.lambda, init.c1, init.c2

	var a1, a2 stats.MomentAccumulator
	var iters int
	for iters = 0; iters < o.MaxIter; iters++ {
		// E-step (eq. 6): responsibility of component 2 per point.
		// (Convergence is tested on the parameters, not the
		// log-likelihood, which keeps math.Log out of the hot loop.)
		t1 := makeSNTerm(1-lambda, c1)
		t2 := makeSNTerm(lambda, c2)
		a1.Reset(pivot)
		a2.Reset(pivot)
		for _, x := range xs {
			p1 := t1.pdf(x)
			p2 := t2.pdf(x)
			tot := p1 + p2
			if tot < 1e-300 {
				p2 = 0
				tot = 1e-300
			}
			r := p2 / tot
			a1.AddWeighted(x, 1-r)
			a2.AddWeighted(x, r)
		}

		// M-step: weighted method of moments per component.
		newLambda := a2.WeightSum() / float64(n)
		if newLambda < 1e-9 || newLambda > 1-1e-9 {
			lambda = clamp01eps(newLambda)
			break
		}
		m1 := a1.Moments()
		m2 := a2.Moments()
		newC1 := snFromMomentsFloored(m1, sdFloor)
		newC2 := snFromMomentsFloored(m2, sdFloor)

		// sdFloor is 1e-3 of the overall sample sd, so pTol is 1e-5 of the
		// data scale — below the ECM polish resolution downstream.
		pTol := sdFloor * 1e-2
		converged := iters > 0 &&
			math.Abs(newLambda-lambda) < 1e-6 &&
			math.Abs(newC1.Xi-c1.Xi) < pTol &&
			math.Abs(newC2.Xi-c2.Xi) < pTol &&
			math.Abs(newC1.Omega-c1.Omega) < pTol &&
			math.Abs(newC2.Omega-c2.Omega) < pTol
		lambda, c1, c2 = newLambda, newC1, newC2
		if converged {
			break
		}
	}

	return LVF2Result{
		Lambda: lambda, C1: c1, C2: c2,
		LogLik: mixLogLik(xs, lambda, c1, c2),
		Iters:  iters,
	}
}

func (r *LVF2Result) normalise() {
	if r.Lambda > 0.5 {
		r.Lambda = 1 - r.Lambda
		r.C1, r.C2 = r.C2, r.C1
	}
}

func snFromMomentsFloored(m stats.SampleMoments, sdFloor float64) stats.SkewNormal {
	sd := m.Std()
	if sd < sdFloor {
		sd = sdFloor
	}
	return stats.SNFromMoments(m.Mean, sd, m.Skewness)
}

// snInitFromClusters derives the k-means start's component parameters from
// the cluster assignment, accumulating each cluster's moments in one pass
// (pivoted at its centre) instead of materialising per-cluster slices.
func snInitFromClusters(xs []float64, assign []int, cen0, cen1 float64, all stats.SampleMoments, sdFloor float64) (lambda float64, c1, c2 stats.SkewNormal) {
	var a1, a2 stats.MomentAccumulator
	a1.Reset(cen0)
	a2.Reset(cen1)
	for i, x := range xs {
		if assign[i] == 0 {
			a1.Add(x)
		} else {
			a2.Add(x)
		}
	}
	if a1.Count() < 4 || a2.Count() < 4 {
		sd := all.Std()
		c1 = stats.SNFromMoments(all.Mean-0.5*sd, sd, 0)
		c2 = stats.SNFromMoments(all.Mean+0.5*sd, sd, 0)
		return 0.5, c1, c2
	}
	return float64(a2.Count()) / float64(len(xs)),
		snFromMomentsFloored(a1.Moments(), sdFloor),
		snFromMomentsFloored(a2.Moments(), sdFloor)
}

// polishLVF2 refines the EM solution with a bounded Nelder–Mead ascent on
// the exact log-likelihood (eq. 5) over the parameter vector
// (logit λ, ξ₁, log ω₁, α₁, ξ₂, log ω₂, α₂).
func polishLVF2(xs []float64, r LVF2Result, o Options, fw *Workspace) LVF2Result {
	if r.IsDegenerate() || r.C1.Omega <= 0 || r.C2.Omega <= 0 {
		return r
	}
	x0 := [7]float64{
		logit(r.Lambda),
		r.C1.Xi, math.Log(r.C1.Omega), r.C1.Alpha,
		r.C2.Xi, math.Log(r.C2.Omega), r.C2.Alpha,
	}
	neg := func(p []float64) float64 {
		lam := sigmoid(p[0])
		if lam < 1e-9 || lam > 1-1e-9 || math.Abs(p[3]) > 60 || math.Abs(p[6]) > 60 {
			return math.Inf(1)
		}
		t1 := makeSNTerm(1-lam, stats.SkewNormal{Xi: p[1], Omega: math.Exp(p[2]), Alpha: p[3]})
		t2 := makeSNTerm(lam, stats.SkewNormal{Xi: p[4], Omega: math.Exp(p[5]), Alpha: p[6]})
		var ll float64
		for _, x := range xs {
			t := t1.pdf(x) + t2.pdf(x)
			if t < 1e-300 {
				t = 1e-300
			}
			ll += math.Log(t)
		}
		return -ll
	}
	best, nll := opt.NelderMeadWs(neg, x0[:], opt.NelderMeadOptions{
		MaxIter: 150 * len(x0),
		TolF:    1e-8,
		TolX:    1e-8,
	}, &fw.nm7)
	if -nll <= r.LogLik {
		return r
	}
	out := LVF2Result{
		Lambda: sigmoid(best[0]),
		C1:     stats.SkewNormal{Xi: best[1], Omega: math.Exp(best[2]), Alpha: best[3]},
		C2:     stats.SkewNormal{Xi: best[4], Omega: math.Exp(best[5]), Alpha: best[6]},
		LogLik: -nll,
		Iters:  r.Iters,
	}
	out.normalise()
	return out
}

func logit(p float64) float64 {
	if p <= 0 {
		return -30
	}
	if p >= 1 {
		return 30
	}
	return math.Log(p / (1 - p))
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
