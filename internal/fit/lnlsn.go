package fit

import (
	"math"

	"lvf2/internal/opt"
	"lvf2/internal/stats"
)

// Log-normal and log-skew-normal fitting — the earlier-generation delay
// models the paper's related work cites (Keller 2014 [5], Balef 2016 [6]).
// Both are special cases of the LogESN family (α = τ = 0 and τ = 0
// respectively), so the fitted distributions reuse stats.LogESN.

// FitLN fits a log-normal by closed-form moment matching:
// ω² = ln(1 + σ²/μ²), ξ = ln μ − ω²/2. Data must be positive.
func FitLN(xs []float64) (Result, error) {
	if len(xs) < 3 {
		return Result{}, ErrNotEnoughData
	}
	for _, x := range xs {
		if x <= 0 {
			return Result{}, ErrNonPositive
		}
	}
	m := stats.Moments(xs)
	cv2 := m.Variance / (m.Mean * m.Mean)
	w2 := math.Log(1 + cv2)
	l := stats.LogESN{W: stats.ExtendedSkewNormal{
		Xi:    math.Log(m.Mean) - 0.5*w2,
		Omega: math.Sqrt(w2),
	}}
	return Result{Model: ModelLN, Dist: l, LogLik: LogLikelihood(l, xs)}, nil
}

// FitLSN fits a log-skew-normal by matching the first three sample
// moments (mean, σ, skewness) with Nelder–Mead over (ξ, log ω, α),
// initialised from the log-normal fit.
func FitLSN(xs []float64, o Options) (Result, error) {
	o = o.withDefaults()
	if len(xs) < 8 {
		return Result{}, ErrNotEnoughData
	}
	for _, x := range xs {
		if x <= 0 {
			return Result{}, ErrNonPositive
		}
	}
	target := stats.Moments(xs)
	ln, err := FitLN(xs)
	if err != nil {
		return Result{}, err
	}
	w0 := ln.Dist.(stats.LogESN).W

	tm, tsd := target.Mean, target.Std()
	loss := func(p []float64) float64 {
		if math.Abs(p[2]) > 50 || p[1] > 50 || p[1] < -50 {
			return math.Inf(1)
		}
		l := stats.LogESN{W: stats.ExtendedSkewNormal{
			Xi: p[0], Omega: math.Exp(p[1]), Alpha: p[2],
		}}
		m := l.Mean()
		v := l.Variance()
		if math.IsNaN(m) || v <= 0 || math.IsNaN(v) {
			return math.Inf(1)
		}
		sk := l.Skewness()
		if math.IsNaN(sk) {
			return math.Inf(1)
		}
		em := (m - tm) / tsd
		es := (math.Sqrt(v) - tsd) / tsd
		eg := sk - target.Skewness
		return em*em + es*es + eg*eg
	}
	x0 := []float64{w0.Xi, math.Log(math.Max(w0.Omega, 1e-12)), 0.5}
	if target.Skewness < math.Sqrt(target.Variance)/target.Mean*(3+target.Variance/(target.Mean*target.Mean)) {
		x0[2] = -0.5
	}
	best, val := opt.NelderMead(loss, x0, opt.NelderMeadOptions{
		MaxIter: 250 * len(x0),
		TolF:    1e-12,
		TolX:    1e-10,
	})
	if math.IsInf(val, 1) {
		// Fall back to the log-normal.
		return Result{Model: ModelLSN, Dist: ln.Dist, LogLik: ln.LogLik}, nil
	}
	l := stats.LogESN{W: stats.ExtendedSkewNormal{
		Xi: best[0], Omega: math.Exp(best[1]), Alpha: best[2],
	}}
	return Result{Model: ModelLSN, Dist: l, LogLik: LogLikelihood(l, xs)}, nil
}
