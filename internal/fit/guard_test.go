package fit

import (
	"errors"
	"math"
	"testing"
)

// The direct fitter entry points (FitLVF2, FitNorm2Params) are called
// by pipelines that bypass the Fit dispatcher; they must reject
// contaminated or degenerate inputs with the typed taxonomy instead of
// running EM to the iteration cap and emitting NaN parameters.

func contaminated(bad float64) []float64 {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 1 + 0.01*float64(i)
	}
	xs[17] = bad
	return xs
}

func constantSamples() []float64 {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 3.25
	}
	return xs
}

func TestFitLVF2RejectsBadSamples(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want error
	}{
		{"NaN", contaminated(math.NaN()), ErrNonFinite},
		{"+Inf", contaminated(math.Inf(1)), ErrNonFinite},
		{"-Inf", contaminated(math.Inf(-1)), ErrNonFinite},
		{"constant", constantSamples(), ErrDegenerateData},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FitLVF2(tc.xs, Options{})
			if err == nil {
				t.Fatal("contaminated samples accepted")
			}
			if !errors.Is(err, ErrUnfittableSamples) {
				t.Errorf("error %v does not wrap ErrUnfittableSamples", err)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

func TestFitNorm2ParamsRejectsBadSamples(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want error
	}{
		{"NaN", contaminated(math.NaN()), ErrNonFinite},
		{"Inf", contaminated(math.Inf(1)), ErrNonFinite},
		{"constant", constantSamples(), ErrDegenerateData},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FitNorm2Params(tc.xs, Options{})
			if err == nil {
				t.Fatal("contaminated samples accepted")
			}
			if !errors.Is(err, ErrUnfittableSamples) {
				t.Errorf("error %v does not wrap ErrUnfittableSamples", err)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

// The guard must not regress the robust ladder: FitRobust cleans
// non-finite points before fitting, so a contaminated-but-salvageable
// set still fits (with the drop recorded), and a constant set still
// reaches the floored-Gaussian salvage.
func TestRobustLadderStillSalvagesGuardedInputs(t *testing.T) {
	r, rep, err := FitRobust(ModelLVF2, contaminated(math.NaN()), RobustOptions{})
	if err != nil {
		t.Fatalf("FitRobust on cleanable contamination: %v", err)
	}
	if rep.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", rep.Dropped)
	}
	if r.Dist == nil {
		t.Fatal("no distribution")
	}
	r, rep, err = FitRobust(ModelLVF2, constantSamples(), RobustOptions{})
	if err != nil {
		t.Fatalf("FitRobust on constant data: %v", err)
	}
	if !rep.Degenerate {
		t.Errorf("constant data should reach the degenerate salvage, got %s", rep)
	}
	if r.Dist == nil {
		t.Fatal("no distribution")
	}
}
