package fit

import (
	"math"
	"testing"

	"lvf2/internal/stats"
)

func TestFitSNMixKRecoversThreeComponents(t *testing.T) {
	truth, _ := stats.NewMixture(
		[]float64{0.5, 0.3, 0.2},
		[]stats.Dist{
			stats.SNFromMoments(0.10, 0.004, 0.4),
			stats.SNFromMoments(0.13, 0.004, 0.3),
			stats.SNFromMoments(0.16, 0.005, 0.2),
		})
	xs := sampleDist(truth, 30000, 11)
	r, err := FitSNMixK(xs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 3 {
		t.Fatalf("K = %d", r.K())
	}
	// Dominant-first ordering.
	if !(r.Weights[0] >= r.Weights[1] && r.Weights[1] >= r.Weights[2]) {
		t.Errorf("weights not sorted: %v", r.Weights)
	}
	if math.Abs(r.Weights[0]-0.5) > 0.05 {
		t.Errorf("w0 %v want ~0.5", r.Weights[0])
	}
	// Mixture CDF tracks the truth closely.
	d := r.Dist()
	for _, x := range []float64{0.095, 0.115, 0.135, 0.155, 0.17} {
		if diff := math.Abs(d.CDF(x) - truth.CDF(x)); diff > 0.015 {
			t.Errorf("CDF diff %v at %v", diff, x)
		}
	}
}

func TestFitSNMixK3BeatsK2OnThreePeaks(t *testing.T) {
	truth, _ := stats.NewMixture(
		[]float64{0.45, 0.35, 0.20},
		[]stats.Dist{
			stats.SNFromMoments(0.10, 0.003, 0.6),
			stats.SNFromMoments(0.125, 0.003, 0.6),
			stats.SNFromMoments(0.15, 0.004, 0.4),
		})
	xs := sampleDist(truth, 20000, 12)
	r3, err := FitSNMixK(xs, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FitLVF2(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r3.LogLik <= r2.LogLik {
		t.Errorf("k=3 loglik %v should beat k=2 %v on 3-peak data", r3.LogLik, r2.LogLik)
	}
}

func TestFitSNMixK1MatchesLVFClosely(t *testing.T) {
	truth := stats.SNFromMoments(0.1, 0.01, 0.5)
	xs := sampleDist(truth, 15000, 13)
	r1, err := FitSNMixK(xs, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lvf, err := FitLVF(xs)
	if err != nil {
		t.Fatal(err)
	}
	// k=1 (MLE) should be at least as good as the moment match.
	if r1.LogLik < lvf.LogLik-1 {
		t.Errorf("k=1 loglik %v far below LVF %v", r1.LogLik, lvf.LogLik)
	}
	if math.Abs(r1.Dist().Mean()-0.1) > 0.001 {
		t.Errorf("mean %v", r1.Dist().Mean())
	}
}

func TestFitSNMixKErrors(t *testing.T) {
	xs := sampleDist(stats.Normal{Mu: 1, Sigma: 1}, 10, 14)
	if _, err := FitSNMixK(xs, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FitSNMixK(xs, 5, Options{}); err == nil {
		t.Error("n < 4k accepted")
	}
}

func TestFitSNMixKWeightsNormalised(t *testing.T) {
	truth, _ := stats.NewMixture(
		[]float64{0.8, 0.2},
		[]stats.Dist{
			stats.Normal{Mu: 0, Sigma: 1},
			stats.Normal{Mu: 5, Sigma: 0.5},
		})
	xs := sampleDist(truth, 5000, 15)
	r, err := FitSNMixK(xs, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, w := range r.Weights {
		if w < 0 {
			t.Fatalf("negative weight %v", w)
		}
		s += w
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("weights sum %v", s)
	}
}
