package fit

import (
	"math"

	"lvf2/internal/stats"
)

func logf(x float64) float64 { return math.Log(x) }

// FitLVF fits the industry-standard LVF model — a single skew-normal —
// by the method of moments: the sample (mean, σ, skewness) vector θ maps
// to SN parameters Θ through the bijection g of eq. (2). Skewness outside
// the SN-attainable range is clamped.
func FitLVF(xs []float64) (Result, error) {
	if len(xs) < 3 {
		return Result{}, ErrNotEnoughData
	}
	m := stats.Moments(xs)
	sn := stats.SNFromMoments(m.Mean, m.Std(), m.Skewness)
	return Result{
		Model:  ModelLVF,
		Dist:   sn,
		LogLik: LogLikelihood(sn, xs),
	}, nil
}

// FitNormal fits a plain Gaussian — the terminal rung of the FitRobust
// degradation ladder and an SSTA degenerate case.
func FitNormal(xs []float64) (Result, error) {
	if len(xs) < 2 {
		return Result{}, ErrNotEnoughData
	}
	m := stats.Moments(xs)
	n := stats.Normal{Mu: m.Mean, Sigma: m.Std()}
	return Result{Model: ModelGaussian, Dist: n, LogLik: LogLikelihood(n, xs)}, nil
}
