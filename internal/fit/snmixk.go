package fit

import (
	"fmt"
	"math"

	"lvf2/internal/stats"
)

// K-component skew-normal mixtures: the paper's §3.3 notes that the LVF²
// library format "can easily be extended to support more components by
// following similar attribute naming conventions". This file provides the
// fitting side of that extension — EM over k weighted skew-normals with
// K-means initialisation, a weighted method-of-moments M-step and an ECM
// weighted-MLE polish, generalising FitLVF2 (which remains the paper's
// k=2 special case).

// SNMixResult is a fitted k-component skew-normal mixture. Weights are
// sorted descending so component 1 is always the dominant one.
type SNMixResult struct {
	Weights []float64
	Comps   []stats.SkewNormal
	LogLik  float64
	Iters   int
}

// Dist returns the fitted mixture.
func (r SNMixResult) Dist() stats.Mixture {
	ds := make([]stats.Dist, len(r.Comps))
	for i, c := range r.Comps {
		ds[i] = c
	}
	m, _ := stats.NewMixture(r.Weights, ds)
	return m
}

// K returns the component count.
func (r SNMixResult) K() int { return len(r.Comps) }

// FitSNMixK fits a k-component skew-normal mixture by EM. k must be at
// least 1; k=1 reduces to the LVF moment fit followed by an MLE polish.
func FitSNMixK(xs []float64, k int, o Options) (SNMixResult, error) {
	o = o.withDefaults()
	n := len(xs)
	if k < 1 {
		return SNMixResult{}, fmt.Errorf("fit: component count %d < 1", k)
	}
	if n < 4*k {
		return SNMixResult{}, ErrNotEnoughData
	}
	// k = 2 is the paper's LVF² case, which has the full multi-start +
	// ECM rescue machinery; reuse it rather than the generic EM below.
	if k == 2 && n >= 8 {
		r2, err := FitLVF2(xs, o)
		if err != nil {
			return SNMixResult{}, err
		}
		r := SNMixResult{
			Weights: []float64{1 - r2.Lambda, r2.Lambda},
			Comps:   []stats.SkewNormal{r2.C1, r2.C2},
			LogLik:  r2.LogLik,
			Iters:   r2.Iters,
		}
		r.sortByWeight()
		return r, nil
	}
	all := stats.Moments(xs)
	sdFloor := math.Max(all.Std()*1e-3, 1e-300)

	// K-means initialisation with per-cluster moments.
	assign, _ := KMeans1D(xs, k, 50)
	weights := make([]float64, k)
	comps := make([]stats.SkewNormal, k)
	groups := make([][]float64, k)
	for i, x := range xs {
		groups[assign[i]] = append(groups[assign[i]], x)
	}
	for c := 0; c < k; c++ {
		if len(groups[c]) < 4 {
			// Degenerate cluster: seed from the global fit, shifted.
			comps[c] = stats.SNFromMoments(
				all.Mean+(float64(c)-float64(k-1)/2)*all.Std(), all.Std(), 0)
			weights[c] = 1 / float64(k)
			continue
		}
		m := stats.Moments(groups[c])
		comps[c] = snFromMomentsFloored(m, sdFloor)
		weights[c] = float64(len(groups[c])) / float64(n)
	}
	normalizeWeights(weights)

	// EM with moment M-step.
	resp := make([][]float64, k)
	for c := range resp {
		resp[c] = make([]float64, n)
	}
	wbuf := make([]float64, k)
	var iters int
	for iters = 0; iters < o.MaxIter; iters++ {
		// E-step.
		for i, x := range xs {
			var tot float64
			for c := 0; c < k; c++ {
				p := weights[c] * comps[c].PDF(x)
				resp[c][i] = p
				tot += p
			}
			if tot < 1e-300 {
				tot = 1e-300
			}
			for c := 0; c < k; c++ {
				resp[c][i] /= tot
			}
		}
		// M-step.
		moved := false
		for c := 0; c < k; c++ {
			var w float64
			for _, r := range resp[c] {
				w += r
			}
			wbuf[c] = w / float64(n)
			if wbuf[c] < 1e-9 {
				continue
			}
			m := stats.WeightedMoments(xs, resp[c])
			nc := snFromMomentsFloored(m, sdFloor)
			if math.Abs(nc.Xi-comps[c].Xi) > sdFloor*1e-2 ||
				math.Abs(nc.Omega-comps[c].Omega) > sdFloor*1e-2 {
				moved = true
			}
			comps[c] = nc
		}
		copy(weights, wbuf)
		normalizeWeights(weights)
		if !moved && iters > 0 {
			break
		}
	}

	// ECM polish: rounds of (E-step, exact weighted MLE per component),
	// accepted only if the full-data likelihood improves (the MLE
	// objective may be evaluated on a subsample for large n).
	r := SNMixResult{Weights: weights, Comps: comps, Iters: iters}
	r.LogLik = LogLikelihood(r.Dist(), xs)
	var scr mleScratch
	for round := 0; round < 2; round++ {
		polished := SNMixResult{
			Weights: append([]float64(nil), r.Weights...),
			Comps:   append([]stats.SkewNormal(nil), r.Comps...),
			Iters:   r.Iters,
		}
		// E-step under the current best parameters.
		for i, x := range xs {
			var tot float64
			for c := 0; c < k; c++ {
				p := polished.Weights[c] * polished.Comps[c].PDF(x)
				resp[c][i] = p
				tot += p
			}
			if tot < 1e-300 {
				tot = 1e-300
			}
			for c := 0; c < k; c++ {
				resp[c][i] /= tot
			}
		}
		for c := 0; c < k; c++ {
			var w float64
			for _, rr := range resp[c] {
				w += rr
			}
			polished.Weights[c] = w / float64(n)
			if polished.Weights[c] > 1e-6 {
				polished.Comps[c] = weightedSNMLE(xs, resp[c], polished.Comps[c], &scr)
			}
		}
		normalizeWeights(polished.Weights)
		polished.LogLik = LogLikelihood(polished.Dist(), xs)
		if polished.LogLik <= r.LogLik {
			break
		}
		r = polished
	}
	r.sortByWeight()
	return r, nil
}

func normalizeWeights(ws []float64) {
	var s float64
	for _, w := range ws {
		s += w
	}
	if s <= 0 {
		for i := range ws {
			ws[i] = 1 / float64(len(ws))
		}
		return
	}
	for i := range ws {
		ws[i] /= s
	}
}

// sortByWeight orders components by descending weight (dominant first,
// matching the LVF² convention that component 1 inherits the LVF tables).
func (r *SNMixResult) sortByWeight() {
	for i := 1; i < len(r.Weights); i++ {
		w, c := r.Weights[i], r.Comps[i]
		j := i - 1
		for j >= 0 && r.Weights[j] < w {
			r.Weights[j+1], r.Comps[j+1] = r.Weights[j], r.Comps[j]
			j--
		}
		r.Weights[j+1], r.Comps[j+1] = w, c
	}
}
