// Package fit implements parameter estimation for the four statistical
// timing models the paper compares:
//
//   - LVF: a single skew-normal fitted by the method of moments (the
//     moments↔parameters bijection of eq. 2) — the industry baseline.
//   - Norm²: a two-component Gaussian mixture fitted by classical EM with
//     closed-form M-steps (Takahashi et al., DAC 2009).
//   - LESN: a log-extended-skew-normal fitted by matching the first four
//     sample moments including kurtosis (Jin et al., TCAS-II 2022).
//   - LVF²: the paper's contribution — a two-component skew-normal mixture
//     fitted by EM (§3.2): K-means + method-of-moments initialisation,
//     posterior-responsibility E-step (eq. 6), and a weighted
//     method-of-moments M-step with an optional maximum-likelihood polish
//     via Nelder–Mead on the full 7-parameter log-likelihood (eq. 5).
package fit
