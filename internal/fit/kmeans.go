package fit

import "sort"

// KMeans1D clusters one-dimensional data into k groups with Lloyd's
// algorithm. Initial centres are placed at the (i+0.5)/k sample quantiles,
// which is deterministic and well-suited to the bimodal timing data the
// LVF² initialisation targets. It returns the cluster assignment per point
// and the final centres (sorted ascending).
func KMeans1D(xs []float64, k, maxIter int) (assign []int, centers []float64) {
	n := len(xs)
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)

	centers = make([]float64, k)
	for i := range centers {
		q := (float64(i) + 0.5) / float64(k)
		centers[i] = sorted[int(q*float64(n-1))]
	}

	assign = make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, x := range xs {
			best, bestD := 0, absf(x-centers[0])
			for c := 1; c < k; c++ {
				if d := absf(x - centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for c := range counts {
			counts[c], sums[c] = 0, 0
		}
		for i, x := range xs {
			counts[assign[i]]++
			sums[assign[i]] += x
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	// Renumber clusters so centres are ascending (stable identity for the
	// "first"/"second" component convention).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return centers[order[a]] < centers[order[b]] })
	remap := make([]int, k)
	sortedCenters := make([]float64, k)
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
		sortedCenters[newIdx] = centers[oldIdx]
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	return assign, sortedCenters
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
