package fit

import (
	"math"
	"testing"

	"lvf2/internal/stats"
)

func TestFitAutoKPicksOneForUnimodal(t *testing.T) {
	truth := stats.SNFromMoments(0.1, 0.01, 0.4)
	xs := sampleDist(truth, 8000, 41)
	res, err := FitAutoK(xs, 3, BIC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("BIC picked k=%d on unimodal data (scores %v)", res.K, res.Scores)
	}
}

func TestFitAutoKPicksTwoForBimodal(t *testing.T) {
	truth, _ := stats.NewMixture(
		[]float64{0.6, 0.4},
		[]stats.Dist{
			stats.SNFromMoments(0.10, 0.004, 0.4),
			stats.SNFromMoments(0.13, 0.004, 0.3),
		})
	xs := sampleDist(truth, 8000, 42)
	res, err := FitAutoK(xs, 3, BIC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Errorf("BIC picked k=%d on bimodal data (scores %v)", res.K, res.Scores)
	}
}

func TestFitAutoKPicksThreeForTrimodal(t *testing.T) {
	truth, _ := stats.NewMixture(
		[]float64{0.4, 0.35, 0.25},
		[]stats.Dist{
			stats.SNFromMoments(0.10, 0.003, 0.3),
			stats.SNFromMoments(0.125, 0.003, 0.3),
			stats.SNFromMoments(0.15, 0.004, 0.2),
		})
	xs := sampleDist(truth, 12000, 43)
	res, err := FitAutoK(xs, 4, BIC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 3 {
		t.Errorf("BIC picked k=%d on trimodal data (scores %v)", res.K, res.Scores)
	}
}

func TestCriterionScores(t *testing.T) {
	// Same loglik: BIC penalises more than AIC for n > e².
	b := BIC.Score(-100, 2, 10000)
	a := AIC.Score(-100, 2, 10000)
	if b <= a {
		t.Errorf("BIC %v should exceed AIC %v at large n", b, a)
	}
	if paramCount(1) != 3 || paramCount(2) != 7 || paramCount(3) != 11 {
		t.Error("parameter counts")
	}
}

func TestFitAutoKErrorPath(t *testing.T) {
	if _, err := FitAutoK([]float64{1, 2, 3}, 3, BIC, Options{}); err == nil {
		t.Error("insufficient data accepted")
	}
	// Partial failure: n = 7 supports k=1 only (k≥2 needs 4k samples);
	// Best must be the surviving k=1.
	xs := sampleDist(stats.Normal{Mu: 1, Sigma: 0.1}, 7, 44)
	res, err := FitAutoK(xs, 3, AIC, Options{})
	if err != nil {
		t.Fatalf("k=1 should succeed: %v", err)
	}
	if res.K != 1 {
		t.Errorf("picked %d", res.K)
	}
	if !math.IsNaN(res.Scores[1]) || !math.IsNaN(res.Scores[2]) {
		t.Error("failed k should have NaN score")
	}
}
