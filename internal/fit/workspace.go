package fit

import (
	"math"
	"slices"
	"sync"

	"lvf2/internal/opt"
	"lvf2/internal/stats"
)

// Workspace holds every scratch buffer one EM/ECM fit needs —
// responsibilities, complement weights, the sorted copy used by the
// initialisation splits, k-means assignments, the per-component MLE
// scratch (subsample + simplex buffers) and the multi-start result slots
// — so a steady-state FitLVF2Ws/fitNorm2 call performs no heap
// allocations. A Workspace is not safe for concurrent use, but the two
// mleScratch halves may be driven by two goroutines at once (the parallel
// ECM path does exactly that). The zero value is ready.
type Workspace struct {
	resp   []float64 // responsibility of component 2 per point
	w1s    []float64 // complement weights (1 − resp)
	sorted []float64 // sorted copy of the sample for quantile splits
	assign []int     // k-means cluster assignment per point

	inits   [maxStarts]lvf2Init   // multi-start seeds
	emRuns  [maxStarts]LVF2Result // per-start EM outcomes
	rawRuns [maxStarts]LVF2Result // per-start raw-init scores

	mle    [2]mleScratch // per-component weighted-MLE scratch
	nm7    opt.Workspace // 7-parameter polish simplex
	lesnNM opt.Workspace // 4-parameter LESN moment-match simplex
}

// grow resizes the per-point buffers for a sample of length n.
func (fw *Workspace) grow(n int) {
	if cap(fw.resp) < n {
		fw.resp = make([]float64, n)
		fw.w1s = make([]float64, n)
		fw.sorted = make([]float64, n)
		fw.assign = make([]int, n)
		return
	}
	fw.resp = fw.resp[:n]
	fw.w1s = fw.w1s[:n]
	fw.sorted = fw.sorted[:n]
	fw.assign = fw.assign[:n]
}

// wsPool recycles workspaces behind the public FitLVF2/FitNorm2Params
// entry points, giving callers that cannot thread a workspace themselves
// (the experiment pipelines fit thousands of distributions through the
// generic Fit dispatch) steady-state buffer reuse for free.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// mleScratch is the per-component scratch of weightedSNMLE: the
// weight-filtered subsample, the warm-start vector, the Nelder–Mead
// buffers and the objective closure (built once so repeated calls do not
// re-allocate it).
type mleScratch struct {
	subX, subW []float64
	wsum       float64
	x0         [3]float64
	nm         opt.Workspace
	obj        func([]float64) float64
}

// objective is the negative weighted log-likelihood over the retained
// subsample: with z = (x−ξ)/ω, −log f = log ω + z²/2 − log Φ(αz) + const.
func (s *mleScratch) objective(p []float64) float64 {
	if math.Abs(p[2]) > 80 || p[1] > 50 || p[1] < -80 {
		return math.Inf(1)
	}
	xi, logOmega, alpha := p[0], p[1], p[2]
	invOmega := math.Exp(-logOmega)
	var sum float64
	subX, subW := s.subX, s.subW
	for i, x := range subX {
		z := (x - xi) * invOmega
		phi := stats.StdNormCDF(alpha * z)
		if phi < 1e-300 {
			phi = 1e-300
		}
		sum += subW[i] * (0.5*z*z - math.Log(phi))
	}
	return sum + s.wsum*logOmega
}

// snTerm is one weighted skew-normal mixture component with the
// per-distribution setup (1/ω, the combined weight·2/ω prefactor) hoisted
// out of the per-point loop, devirtualising what used to be a stats.Dist
// PDF call per sample.
type snTerm struct {
	xi, invOmega, alpha, scale float64
}

// makeSNTerm builds the hoisted form of weight·SN(c). A non-positive ω
// yields a zero term, matching SkewNormal.PDF.
func makeSNTerm(weight float64, c stats.SkewNormal) snTerm {
	if c.Omega <= 0 {
		return snTerm{xi: c.Xi}
	}
	inv := 1 / c.Omega
	return snTerm{xi: c.Xi, invOmega: inv, alpha: c.Alpha, scale: weight * 2 * inv}
}

func (t snTerm) pdf(x float64) float64 {
	z := (x - t.xi) * t.invOmega
	return t.scale * stats.StdNormPDF(z) * stats.StdNormCDF(t.alpha*z)
}

// kMeans2 is KMeans1D specialised to k=2 over pre-sorted data, writing
// assignments into assign (0 = lower-centre cluster) without allocating.
// It mirrors KMeans1D's quantile seeding, nearest-centre Lloyd iteration
// and ascending-centre renumbering.
func kMeans2(xs, sorted []float64, assign []int, maxIter int) (c0, c1 float64) {
	n := len(xs)
	c0 = sorted[int(0.25*float64(n-1))]
	c1 = sorted[int(0.75*float64(n-1))]
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		var n0, n1 int
		var s0, s1 float64
		for i, x := range xs {
			a := 0
			if absf(x-c1) < absf(x-c0) {
				a = 1
			}
			if assign[i] != a {
				assign[i] = a
				changed = true
			}
			if a == 0 {
				n0++
				s0 += x
			} else {
				n1++
				s1 += x
			}
		}
		if n0 > 0 {
			c0 = s0 / float64(n0)
		}
		if n1 > 0 {
			c1 = s1 / float64(n1)
		}
		if !changed && iter > 0 {
			break
		}
	}
	if c0 > c1 {
		c0, c1 = c1, c0
		for i := range assign {
			assign[i] = 1 - assign[i]
		}
	}
	return c0, c1
}

// sortInto copies xs into dst and sorts it ascending.
func sortInto(dst, xs []float64) []float64 {
	copy(dst, xs)
	slices.Sort(dst)
	return dst
}
