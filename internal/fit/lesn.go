package fit

import (
	"errors"
	"math"

	"lvf2/internal/opt"
	"lvf2/internal/stats"
)

// FitLESN fits the log-extended-skew-normal comparator model by matching
// the first four sample moments — mean, standard deviation, skewness and
// kurtosis — following the kurtosis-matching approach of Jin et al.
// (TCAS-II 2022). The match is found by Nelder–Mead over
// (ξ, log ω, α, τ) of W = log X, initialised from a lognormal moment fit.
// Data must be strictly positive.
func FitLESN(xs []float64, o Options) (Result, error) {
	o = o.withDefaults()
	if len(xs) < 8 {
		return Result{}, ErrNotEnoughData
	}
	for _, x := range xs {
		if x <= 0 {
			return Result{}, ErrNonPositive
		}
	}
	target := stats.Moments(xs)
	fw := wsPool.Get().(*Workspace)
	l, err := matchLESNMoments(target, &fw.lesnNM)
	wsPool.Put(fw)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Model:  ModelLESN,
		Dist:   l,
		LogLik: LogLikelihood(l, xs),
	}, nil
}

// MatchLESNMoments finds the LESN whose first four moments match the
// target as closely as possible. It is used both by FitLESN (target =
// sample moments) and by SSTA propagation (target = cumulant-summed
// moments of a path prefix). The target mean must be positive.
func MatchLESNMoments(target stats.SampleMoments) (stats.LogESN, error) {
	return matchLESNMoments(target, nil)
}

// matchLESNMoments is MatchLESNMoments optimising through a caller-owned
// Nelder–Mead workspace (nil allocates a private one).
func matchLESNMoments(target stats.SampleMoments, nm *opt.Workspace) (stats.LogESN, error) {
	if target.Mean <= 0 || target.Variance <= 0 {
		return stats.LogESN{}, errors.New("fit: LESN moment match needs positive mean and variance")
	}
	// Lognormal moment-match initialisation:
	// ω² = ln(1 + σ²/μ²), ξ = ln μ − ω²/2.
	cv2 := target.Variance / (target.Mean * target.Mean)
	w2 := math.Log(1 + cv2)
	xi0 := math.Log(target.Mean) - 0.5*w2
	alpha0 := 1.0
	if target.Skewness < math.Sqrt(cv2)*(3+cv2) { // below lognormal skew ⇒ pull left
		alpha0 = -1
	}
	x0 := []float64{xi0, 0.5 * math.Log(w2), alpha0, 0}

	tm, tsd := target.Mean, math.Sqrt(target.Variance)
	loss := func(p []float64) float64 {
		if math.Abs(p[2]) > 50 || math.Abs(p[3]) > 6 || p[1] > 50 || p[1] < -50 {
			return math.Inf(1)
		}
		l := stats.LogESN{W: stats.ExtendedSkewNormal{
			Xi: p[0], Omega: math.Exp(p[1]), Alpha: p[2], Tau: p[3],
		}}
		m := l.Mean()
		v := l.Variance()
		if math.IsNaN(m) || math.IsNaN(v) || v <= 0 {
			return math.Inf(1)
		}
		sk := l.Skewness()
		ku := l.ExcessKurtosis() + 3
		if math.IsNaN(sk) || math.IsNaN(ku) {
			return math.Inf(1)
		}
		em := (m - tm) / tsd
		es := (math.Sqrt(v) - tsd) / tsd
		eg := sk - target.Skewness
		ek := ku - target.Kurtosis
		// Kurtosis is down-weighted: it is the noisiest sample moment.
		return em*em + es*es + eg*eg + 0.25*ek*ek
	}
	best, val := opt.NelderMeadWs(loss, x0, opt.NelderMeadOptions{
		MaxIter: 300 * len(x0),
		TolF:    1e-12,
		TolX:    1e-10,
	}, nm)
	if math.IsInf(val, 1) {
		return stats.LogESN{}, errors.New("fit: LESN moment match did not find a feasible point")
	}
	return stats.LogESN{W: stats.ExtendedSkewNormal{
		Xi: best[0], Omega: math.Exp(best[1]), Alpha: best[2], Tau: best[3],
	}}, nil
}
