package fit

import (
	"math"
	"math/rand"
	"testing"

	"lvf2/internal/stats"
)

func sampleDist(d stats.Sampler, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	return xs
}

func TestFitLVFRecoversSN(t *testing.T) {
	truth := stats.SkewNormal{Xi: 1, Omega: 0.2, Alpha: 4}
	xs := sampleDist(truth, 50000, 1)
	r, err := FitLVF(xs)
	if err != nil {
		t.Fatal(err)
	}
	sn := r.Dist.(stats.SkewNormal)
	tm, tsd, tg := truth.Moments()
	fm, fsd, fg := sn.Moments()
	if math.Abs(tm-fm) > 0.005 || math.Abs(tsd-fsd) > 0.005 || math.Abs(tg-fg) > 0.08 {
		t.Errorf("moments: truth (%v,%v,%v) fit (%v,%v,%v)", tm, tsd, tg, fm, fsd, fg)
	}
}

func TestFitLVFNotEnoughData(t *testing.T) {
	if _, err := FitLVF([]float64{1, 2}); err != ErrNotEnoughData {
		t.Errorf("want ErrNotEnoughData, got %v", err)
	}
}

func TestFitNormal(t *testing.T) {
	truth := stats.Normal{Mu: -3, Sigma: 0.5}
	xs := sampleDist(truth, 20000, 2)
	r, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	n := r.Dist.(stats.Normal)
	if math.Abs(n.Mu+3) > 0.02 || math.Abs(n.Sigma-0.5) > 0.02 {
		t.Errorf("fit %+v", n)
	}
}

func TestFitNorm2RecoversBimodal(t *testing.T) {
	truth, _ := stats.NewMixture(
		[]float64{0.7, 0.3},
		[]stats.Dist{
			stats.Normal{Mu: 0, Sigma: 0.5},
			stats.Normal{Mu: 4, Sigma: 0.3},
		})
	xs := sampleDist(truth, 30000, 3)
	r, err := FitNorm2Params(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// λ convention: component 1 dominant.
	if r.Lambda > 0.5 {
		t.Errorf("lambda convention violated: %v", r.Lambda)
	}
	if math.Abs(r.Lambda-0.3) > 0.03 {
		t.Errorf("lambda %v want 0.3", r.Lambda)
	}
	if math.Abs(r.C1.Mu) > 0.1 || math.Abs(r.C2.Mu-4) > 0.1 {
		t.Errorf("means %v %v", r.C1.Mu, r.C2.Mu)
	}
	if math.Abs(r.C1.Sigma-0.5) > 0.05 || math.Abs(r.C2.Sigma-0.3) > 0.05 {
		t.Errorf("sigmas %v %v", r.C1.Sigma, r.C2.Sigma)
	}
}

func TestFitNorm2UnimodalCollapsesGracefully(t *testing.T) {
	truth := stats.Normal{Mu: 1, Sigma: 1}
	xs := sampleDist(truth, 20000, 4)
	r, err := FitNorm2(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The mixture must still describe the data at least as well as a
	// single Gaussian (EM never underfits the one-component solution by
	// much).
	single, _ := FitNormal(xs)
	if r.LogLik < single.LogLik-10 {
		t.Errorf("mixture loglik %v much worse than single %v", r.LogLik, single.LogLik)
	}
}

func TestFitLVF2RecoversSkewedBimodal(t *testing.T) {
	c1 := stats.SkewNormal{Xi: 0, Omega: 0.4, Alpha: 3}
	c2 := stats.SkewNormal{Xi: 3, Omega: 0.3, Alpha: -2}
	truth, _ := stats.NewMixture([]float64{0.65, 0.35}, []stats.Dist{c1, c2})
	xs := sampleDist(truth, 30000, 5)
	r, err := FitLVF2(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Lambda > 0.5 {
		t.Errorf("lambda convention violated: %v", r.Lambda)
	}
	if math.Abs(r.Lambda-0.35) > 0.04 {
		t.Errorf("lambda %v want 0.35", r.Lambda)
	}
	// Check mixture CDF against truth at several quantiles.
	d := r.Dist()
	for _, x := range []float64{0.2, 0.6, 1.5, 2.8, 3.4} {
		if diff := math.Abs(d.CDF(x) - truth.CDF(x)); diff > 0.01 {
			t.Errorf("CDF mismatch at %v: %v", x, diff)
		}
	}
}

func TestFitLVF2BeatsLVFOnBimodal(t *testing.T) {
	c1 := stats.SkewNormal{Xi: 0, Omega: 0.3, Alpha: 2}
	c2 := stats.SkewNormal{Xi: 2.5, Omega: 0.25, Alpha: 2}
	truth, _ := stats.NewMixture([]float64{0.6, 0.4}, []stats.Dist{c1, c2})
	xs := sampleDist(truth, 20000, 6)
	r2, err := FitLVF2(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := FitLVF(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r2.LogLik <= r1.LogLik {
		t.Errorf("LVF2 loglik %v should beat LVF %v on bimodal data", r2.LogLik, r1.LogLik)
	}
}

func TestFitLVF2BackwardCompatibleOnPureSN(t *testing.T) {
	truth := stats.SkewNormal{Xi: 1, Omega: 0.2, Alpha: 3}
	xs := sampleDist(truth, 20000, 7)
	r, err := FitLVF2(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// On single-SN data the mixture must still match the truth closely.
	d := r.Dist()
	for _, p := range []float64{0.05, 0.5, 0.95} {
		xt := truth.Quantile(p)
		if diff := math.Abs(d.CDF(xt) - p); diff > 0.01 {
			t.Errorf("quantile %v: CDF diff %v", p, diff)
		}
	}
}

func TestFitLVF2PolishImprovesOrKeepsLogLik(t *testing.T) {
	c1 := stats.SkewNormal{Xi: 0, Omega: 0.5, Alpha: 1}
	c2 := stats.SkewNormal{Xi: 1.8, Omega: 0.4, Alpha: -3}
	truth, _ := stats.NewMixture([]float64{0.55, 0.45}, []stats.Dist{c1, c2})
	xs := sampleDist(truth, 4000, 8)
	plain, err := FitLVF2(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	polished, err := FitLVF2(xs, Options{Polish: true})
	if err != nil {
		t.Fatal(err)
	}
	if polished.LogLik < plain.LogLik-1e-9 {
		t.Errorf("polish degraded loglik: %v < %v", polished.LogLik, plain.LogLik)
	}
}

func TestFitLESNRecoversLognormal(t *testing.T) {
	truth := stats.LogESN{W: stats.ExtendedSkewNormal{Xi: -2, Omega: 0.25, Alpha: 0, Tau: 0}}
	xs := sampleDist(truth, 40000, 9)
	r, err := FitLESN(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Moments(xs)
	got := stats.DistMoments(r.Dist)
	if math.Abs(got.Mean-want.Mean)/want.Mean > 0.01 {
		t.Errorf("mean %v want %v", got.Mean, want.Mean)
	}
	if math.Abs(got.Std()-want.Std())/want.Std() > 0.05 {
		t.Errorf("std %v want %v", got.Std(), want.Std())
	}
	if math.Abs(got.Skewness-want.Skewness) > 0.1 {
		t.Errorf("skew %v want %v", got.Skewness, want.Skewness)
	}
}

func TestFitLESNRejectsNonPositive(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) - 50
	}
	if _, err := FitLESN(xs, Options{}); err != ErrNonPositive {
		t.Errorf("want ErrNonPositive, got %v", err)
	}
}

func TestFitDispatch(t *testing.T) {
	truth := stats.SkewNormal{Xi: 1, Omega: 0.1, Alpha: 1}
	xs := sampleDist(truth, 5000, 10)
	for _, m := range AllModels {
		r, err := Fit(m, xs, Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if r.Model != m {
			t.Errorf("model tag %v want %v", r.Model, m)
		}
		if r.Dist == nil {
			t.Errorf("%v: nil dist", m)
		}
		// Every fitted model should put its mean near the sample mean.
		sm := stats.Moments(xs)
		if math.Abs(r.Dist.Mean()-sm.Mean) > 0.05*sm.Std()+0.02 {
			t.Errorf("%v: mean %v vs sample %v", m, r.Dist.Mean(), sm.Mean)
		}
	}
	if _, err := Fit(Model(99), xs, Options{}); err == nil {
		t.Error("unknown model must error")
	}
}

func TestModelString(t *testing.T) {
	cases := map[Model]string{
		ModelLVF: "LVF", ModelNorm2: "Norm2", ModelLESN: "LESN", ModelLVF2: "LVF2",
		Model(42): "Model(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q want %q", int(m), got, want)
		}
	}
}

func TestFitInsufficientData(t *testing.T) {
	short := []float64{1, 2, 3}
	for _, m := range []Model{ModelNorm2, ModelLVF2, ModelLESN} {
		if _, err := Fit(m, short, Options{}); err == nil {
			t.Errorf("%v: expected error on short data", m)
		}
	}
}
