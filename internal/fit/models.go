package fit

import (
	"errors"
	"fmt"

	"lvf2/internal/stats"
)

// Model enumerates the statistical timing models under comparison.
type Model int

const (
	// ModelLVF is the industry-standard single skew-normal (baseline).
	ModelLVF Model = iota
	// ModelNorm2 is the two-component Gaussian mixture of Takahashi 2009.
	ModelNorm2
	// ModelLESN is the log-extended-skew-normal of Jin 2022.
	ModelLESN
	// ModelLVF2 is the paper's two-component skew-normal mixture.
	ModelLVF2
	// ModelLN is the log-normal of Keller 2014 (paper ref. [5]) — an
	// extended comparator outside the paper's main four.
	ModelLN
	// ModelLSN is the log-skew-normal of Balef 2016 (paper ref. [6]).
	ModelLSN
	// ModelGaussian is the plain Gaussian — the terminal rung of the
	// FitRobust degradation ladder, not part of the paper's comparison.
	ModelGaussian
)

// AllModels lists the four models in the paper's comparison order.
var AllModels = []Model{ModelLVF2, ModelNorm2, ModelLESN, ModelLVF}

// ExtendedModels adds the earlier-generation log-domain models the paper
// cites as related work ([5], [6]) to the comparison set.
var ExtendedModels = []Model{ModelLVF2, ModelNorm2, ModelLESN, ModelLN, ModelLSN, ModelLVF}

// String returns the paper's name for the model.
func (m Model) String() string {
	switch m {
	case ModelLVF:
		return "LVF"
	case ModelNorm2:
		return "Norm2"
	case ModelLESN:
		return "LESN"
	case ModelLVF2:
		return "LVF2"
	case ModelLN:
		return "LN"
	case ModelLSN:
		return "LSN"
	case ModelGaussian:
		return "Gaussian"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Options tunes the iterative fitters. The zero value uses sane defaults.
type Options struct {
	// MaxIter bounds EM iterations (default 200).
	MaxIter int
	// Tol is the log-likelihood convergence threshold (default 1e-7
	// relative change).
	Tol float64
	// Polish enables a Nelder–Mead maximum-likelihood refinement after the
	// moment-based EM for LVF² (slower, slightly more accurate).
	Polish bool
	// PerturbInit jitters the deterministic EM starting points by this
	// relative amount (0 = none). FitRobust uses it to escape bad basins
	// on retry without sacrificing reproducibility.
	PerturbInit float64
	// PerturbSeed selects the deterministic jitter stream.
	PerturbSeed uint64
	// Serial disables the concurrent multi-start path of FitLVF2. The
	// fitted parameters are bit-identical either way; this exists for
	// callers that must not spawn goroutines (and for the determinism
	// tests that compare the two paths).
	Serial bool
	// Seed, when non-nil, warm-starts FitLVF2 from a neighbouring fit's
	// converged parameters: the exploratory multi-start is skipped and
	// the transported seed refined by ECM, falling back to the full cold
	// multi-start when the refinement fails the validation gate. Only
	// FitLVF2 consults it; every other fitter ignores it.
	Seed *Seed
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	return o
}

// Result is a fitted model: the distribution, the achieved log-likelihood
// and the iteration count of the inner algorithm (0 for closed forms).
type Result struct {
	Model  Model
	Dist   stats.Dist
	LogLik float64
	Iters  int
	// Warm is the warm-start outcome for LVF² fits (WarmCold for every
	// other model and for unseeded fits).
	Warm WarmOutcome
}

// ErrNotEnoughData is returned when a fitter needs more samples.
var ErrNotEnoughData = errors.New("fit: not enough data")

// ErrNonPositive is returned by the LESN fitter for data with values <= 0
// (its support is the positive half-line).
var ErrNonPositive = errors.New("fit: LESN requires strictly positive data")

// Fit dispatches to the model-specific fitter. Degenerate inputs (empty,
// single-point, all-identical or NaN/Inf-contaminated sample sets) are
// rejected with typed errors before any fitter runs, so no model ever
// returns NaN parameters.
func Fit(model Model, xs []float64, o Options) (Result, error) {
	if err := ValidateSamples(xs); err != nil {
		return Result{}, err
	}
	switch model {
	case ModelLVF:
		return FitLVF(xs)
	case ModelNorm2:
		return FitNorm2(xs, o)
	case ModelLESN:
		return FitLESN(xs, o)
	case ModelLVF2:
		r, err := FitLVF2(xs, o)
		if err != nil {
			return Result{}, err
		}
		res := r.Result()
		res.Warm = r.Warm
		return res, nil
	case ModelLN:
		return FitLN(xs)
	case ModelLSN:
		return FitLSN(xs, o)
	case ModelGaussian:
		return FitNormal(xs)
	default:
		return Result{}, fmt.Errorf("fit: unknown model %d", int(model))
	}
}

// LogLikelihood computes Σ log f(xᵢ) with densities floored at 1e-300.
func LogLikelihood(d stats.Dist, xs []float64) float64 {
	var ll float64
	for _, x := range xs {
		p := d.PDF(x)
		if p < 1e-300 {
			p = 1e-300
		}
		ll += logf(p)
	}
	return ll
}
