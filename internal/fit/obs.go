package fit

import (
	"time"

	"lvf2/internal/obs"
)

// Warm-start observability. The counters live in the process-wide
// default registry, so every fitting path — cells/libbuild library
// characterisation, the experiment drivers, and the lvf2d refit path —
// reports warm-start effectiveness and per-entry fit latency through the
// same two series without any per-caller wiring. The children are
// pre-resolved: one fit costs three atomic operations, keeping the
// steady-state allocation budget of FitLVF2Ws at zero.
var (
	warmstartVec = obs.NewCounterVec(obs.Default(),
		"lvf2_fit_warmstart_total",
		"LVF² fits by warm-start outcome (hit = seed accepted, rejected = gate fell back to cold, cold = unseeded)",
		"outcome")
	warmstartHit      = warmstartVec.With(WarmHit.String())
	warmstartRejected = warmstartVec.With(WarmRejected.String())
	warmstartCold     = warmstartVec.With(WarmCold.String())

	fitDuration = obs.NewHistogram(obs.Default(),
		"lvf2_fit_duration_seconds",
		"wall time of one LVF² fit (one characterised table entry)",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})
)

// nowFit stamps the start of one fit (a seam name so the hot path reads
// as instrumentation, not as time arithmetic).
func nowFit() time.Time { return time.Now() }

// observeFit records one resolved fit: its outcome counter and its
// duration bucket.
func observeFit(outcome WarmOutcome, start time.Time) {
	switch outcome {
	case WarmHit:
		warmstartHit.Inc()
	case WarmRejected:
		warmstartRejected.Inc()
	default:
		warmstartCold.Inc()
	}
	fitDuration.Observe(time.Since(start).Seconds())
}
