package fit

import (
	"errors"
	"fmt"
	"math"
)

// Typed failure taxonomy of the fitting layer. Every degenerate input or
// invalid fit maps to one of these sentinels (possibly several, combined
// with errors.Join) so callers can branch with errors.Is instead of
// probing for NaN parameters. ErrNotEnoughData and ErrNonPositive, the
// two pre-existing sentinels, live in models.go.
var (
	// ErrEmptyData marks an empty sample set. Always joined with
	// ErrNotEnoughData.
	ErrEmptyData = errors.New("fit: empty sample set")
	// ErrNonFinite marks NaN/Inf-contaminated samples.
	ErrNonFinite = errors.New("fit: non-finite (NaN/Inf) sample values")
	// ErrDegenerateData marks an all-identical (zero-variance) sample set.
	ErrDegenerateData = errors.New("fit: degenerate sample set (zero variance)")
	// ErrInvalidFit marks a fit whose parameters failed validation
	// (NaN/Inf parameters, weight outside [0,1], non-positive scale,
	// skewness clamp breach).
	ErrInvalidFit = errors.New("fit: invalid fitted parameters")
	// ErrNonMonotoneCDF marks a fitted distribution whose CDF is not
	// monotone non-decreasing (or does not cover the sample mass).
	ErrNonMonotoneCDF = errors.New("fit: fitted CDF is not a valid distribution function")
	// ErrNonConvergence marks an iterative fit that exhausted its
	// iteration budget without converging.
	ErrNonConvergence = errors.New("fit: iterative fit did not converge")
	// ErrAllModelsFailed marks a FitRobust call whose entire degradation
	// ladder failed, terminal Gaussian rung included.
	ErrAllModelsFailed = errors.New("fit: every fallback model failed")
	// ErrUnfittableSamples marks a sample set rejected by the pre-fit
	// guard of a direct fitter entry point (FitLVF2, FitNorm2Params):
	// NaN/Inf contamination, zero variance, or too few points. Always
	// joined with the specific cause (ErrNonFinite, ErrDegenerateData,
	// ErrNotEnoughData), so errors.Is on either level works.
	ErrUnfittableSamples = errors.New("fit: sample set cannot be fitted")
)

// guardSamples is the shared entry guard of the direct fitters: the
// ValidateSamples taxonomy wrapped under ErrUnfittableSamples. EM on
// contaminated data would otherwise run to the iteration cap and emit
// NaN parameters, which downstream table writers cannot represent.
func guardSamples(xs []float64) error {
	if err := ValidateSamples(xs); err != nil {
		return fmt.Errorf("%w: %w", ErrUnfittableSamples, err)
	}
	return nil
}

// ValidateSamples vets a sample set before fitting: empty and
// single-point sets, NaN/Inf contamination and zero-variance sets all
// return typed errors instead of flowing into the fitters and surfacing
// as NaN parameters.
func ValidateSamples(xs []float64) error {
	if len(xs) == 0 {
		return errors.Join(ErrNotEnoughData, ErrEmptyData)
	}
	if len(xs) == 1 {
		return fmt.Errorf("%w: single sample", ErrNotEnoughData)
	}
	bad := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%w: %d of %d", ErrNonFinite, bad, len(xs))
	}
	first := xs[0]
	identical := true
	for _, x := range xs[1:] {
		if x != first {
			identical = false
			break
		}
	}
	if identical {
		return fmt.Errorf("%w: all %d samples equal %g", ErrDegenerateData, len(xs), first)
	}
	return nil
}

// CleanSamples returns xs with non-finite values removed (a copy when
// anything was dropped) plus the drop count. It is the sanitisation step
// of FitRobust: contaminated characterisation data loses the bad points
// rather than poisoning the whole fit.
func CleanSamples(xs []float64) (clean []float64, dropped int) {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			dropped++
		}
	}
	if dropped == 0 {
		return xs, 0
	}
	clean = make([]float64, 0, len(xs)-dropped)
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			clean = append(clean, x)
		}
	}
	return clean, dropped
}
