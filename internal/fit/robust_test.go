package fit

import (
	"errors"
	"math"
	"testing"

	"lvf2/internal/mc"
	"lvf2/internal/stats"
)

// Every model must reject degenerate inputs with a typed error and never
// leak NaN parameters. The four canonical degeneracies are empty, single
// sample, all-identical and NaN/Inf-contaminated sets.
func TestFitRejectsDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want error
	}{
		{"empty", nil, ErrNotEnoughData},
		{"empty_is_also_empty_sentinel", []float64{}, ErrEmptyData},
		{"single", []float64{1.5}, ErrNotEnoughData},
		{"all_identical", []float64{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}, ErrDegenerateData},
		{"nan_contaminated", []float64{1, 2, math.NaN(), 3, 4, 5, 6, 7, 8}, ErrNonFinite},
		{"inf_contaminated", []float64{1, 2, math.Inf(1), 3, 4, 5, 6, 7, 8}, ErrNonFinite},
	}
	models := append([]Model{ModelGaussian}, ExtendedModels...)
	for _, m := range models {
		for _, tc := range cases {
			t.Run(m.String()+"/"+tc.name, func(t *testing.T) {
				r, err := Fit(m, tc.xs, Options{})
				if err == nil {
					t.Fatalf("Fit(%s, %s) succeeded, want typed error", m, tc.name)
				}
				if !errors.Is(err, tc.want) {
					t.Fatalf("Fit(%s, %s) = %v, want errors.Is(%v)", m, tc.name, err, tc.want)
				}
				if r.Dist != nil {
					t.Fatalf("Fit(%s, %s) returned a distribution alongside the error", m, tc.name)
				}
			})
		}
	}
}

func bimodalSamples(n int, seed uint64) []float64 {
	rng := mc.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		if rng.Float64() < 0.8 {
			xs[i] = 1.0 + 0.05*rng.NormFloat64()
		} else {
			xs[i] = 1.4 + 0.08*rng.NormFloat64()
		}
	}
	return xs
}

// exponentialClusters builds data whose per-cluster skewness (≈2) is far
// beyond the skew-normal attainable range (≈0.995), so any SN component
// fitted to it rails at the moment clamp — the deterministic trigger for
// the LVF² → Norm² degradation rung.
func exponentialClusters(n int, seed uint64) []float64 {
	rng := mc.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		c := 1.0
		if rng.Float64() < 0.3 {
			c = 2.0
		}
		xs[i] = c + 0.05*(-math.Log(rng.Float64()+1e-300))
	}
	return xs
}

func TestFitRobustNoFallbackOnCleanData(t *testing.T) {
	xs := bimodalSamples(4000, 7)
	r, rep, err := FitRobust(ModelLVF2, xs, RobustOptions{})
	if err != nil {
		t.Fatalf("FitRobust: %v", err)
	}
	if rep.Fallback || rep.Used != ModelLVF2 {
		t.Fatalf("clean bimodal data degraded: %s", rep)
	}
	if verr := ValidateResult(r, xs, Options{}); verr != nil {
		t.Fatalf("accepted result fails validation: %v", verr)
	}
}

// Each degradation rung must be reachable through a genuine input fault,
// not a test-only hook.
func TestFitRobustRungReachability(t *testing.T) {
	cases := []struct {
		name       string
		xs         []float64
		want       Model
		degenerate bool
	}{
		// Per-cluster skewness ≈ 2 rails every SN component at the moment
		// clamp; the Gaussian mixture has no skew parameter and absorbs the
		// shape with two components.
		{"norm2_rung_on_railed_skewness", exponentialClusters(4000, 11), ModelNorm2, false},
		// n < 8 starves both mixtures (they need ≥ 8 samples); the
		// three-moment LVF still fits.
		{"lvf_rung_on_tiny_sample", []float64{1.0, 1.1, 1.3, 1.02, 1.2}, ModelLVF, false},
		// n = 2 starves LVF too (needs ≥ 3); the Gaussian rung fits.
		{"gaussian_rung_on_two_samples", []float64{1.0, 1.2}, ModelGaussian, false},
		// All-identical data is rejected by every fitter; the terminal
		// salvage builds a floored Gaussian.
		{"salvage_on_identical_samples", []float64{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}, ModelGaussian, true},
		// Opposite-sign huge outliers keep the mean finite but overflow the
		// variance accumulator, poisoning every fitter; the salvage floors
		// the blown sigma.
		{"salvage_on_overflow_outliers", append(bimodalSamples(100, 3), 1e308, -1e308), ModelGaussian, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, rep, err := FitRobust(ModelLVF2, tc.xs, RobustOptions{})
			if err != nil {
				t.Fatalf("FitRobust: %v\nreport: %s", err, rep)
			}
			if rep.Used != tc.want {
				t.Fatalf("rung = %s, want %s\nreport: %+v", rep.Used, tc.want, rep)
			}
			if !rep.Fallback {
				t.Fatal("FitReport.Fallback not set on a degraded fit")
			}
			if rep.Degenerate != tc.degenerate {
				t.Fatalf("Degenerate = %v, want %v (%s)", rep.Degenerate, tc.degenerate, rep)
			}
			if r.Dist == nil {
				t.Fatal("no distribution returned")
			}
			assertFiniteDist(t, r.Dist)
		})
	}
}

func TestFitRobustNaNContaminationIsDroppedAndReported(t *testing.T) {
	xs := bimodalSamples(2000, 5)
	xs[3], xs[77], xs[500] = math.NaN(), math.Inf(1), math.Inf(-1)
	r, rep, err := FitRobust(ModelLVF2, xs, RobustOptions{})
	if err != nil {
		t.Fatalf("FitRobust: %v", err)
	}
	if rep.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", rep.Dropped)
	}
	assertFiniteDist(t, r.Dist)
}

func TestFitRobustAllNaNFails(t *testing.T) {
	xs := []float64{math.NaN(), math.NaN(), math.Inf(1)}
	_, rep, err := FitRobust(ModelLVF2, xs, RobustOptions{})
	if err == nil {
		t.Fatal("expected an error for an all-non-finite sample set")
	}
	if !errors.Is(err, ErrNotEnoughData) || !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want NotEnoughData and NonFinite", err)
	}
	if rep.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", rep.Dropped)
	}
}

func TestFitRobustSalvageHasFlooredSigma(t *testing.T) {
	r, rep, err := FitRobust(ModelLVF, []float64{5, 5, 5, 5, 5}, RobustOptions{})
	if err != nil {
		t.Fatalf("FitRobust: %v", err)
	}
	n, ok := r.Dist.(stats.Normal)
	if !ok {
		t.Fatalf("salvage dist is %T, want stats.Normal", r.Dist)
	}
	if !(n.Sigma > 0) || math.IsInf(n.Sigma, 0) {
		t.Fatalf("salvage sigma = %v, want a positive finite floor", n.Sigma)
	}
	if n.Mu != 5 {
		t.Fatalf("salvage mu = %v, want 5", n.Mu)
	}
	if !rep.Degenerate {
		t.Fatal("salvage not flagged Degenerate")
	}
}

func TestFallbackChainShapes(t *testing.T) {
	for _, m := range append([]Model{ModelGaussian}, ExtendedModels...) {
		chain := FallbackChain(m)
		if chain[0] != m {
			t.Fatalf("chain for %s starts at %s", m, chain[0])
		}
		if chain[len(chain)-1] != ModelGaussian {
			t.Fatalf("chain for %s does not terminate at Gaussian: %v", m, chain)
		}
	}
}

func TestValidateResultCatchesBadFits(t *testing.T) {
	xs := bimodalSamples(500, 1)
	cases := []struct {
		name string
		r    Result
		want error
	}{
		{"nil_dist", Result{}, ErrInvalidFit},
		{"nan_mu", Result{Dist: stats.Normal{Mu: math.NaN(), Sigma: 1}}, ErrInvalidFit},
		{"zero_sigma", Result{Dist: stats.Normal{Mu: 1, Sigma: 0}}, ErrInvalidFit},
		{"negative_omega", Result{Dist: stats.SkewNormal{Xi: 1, Omega: -2, Alpha: 0}}, ErrInvalidFit},
		{"lambda_above_one", Result{Dist: stats.Mixture{
			Components: []stats.Dist{stats.Normal{Mu: 1, Sigma: 0.1}, stats.Normal{Mu: 1.4, Sigma: 0.1}},
			Weights:    []float64{-0.2, 1.2},
		}}, ErrInvalidFit},
		{"weights_sum_off", Result{Dist: stats.Mixture{
			Components: []stats.Dist{stats.Normal{Mu: 1, Sigma: 0.1}, stats.Normal{Mu: 1.4, Sigma: 0.1}},
			Weights:    []float64{0.4, 0.4},
		}}, ErrInvalidFit},
		{"nan_loglik", Result{Dist: stats.Normal{Mu: 1.1, Sigma: 0.2}, LogLik: math.NaN()}, ErrInvalidFit},
		{"nonconvergent", Result{Dist: stats.Normal{Mu: 1.1, Sigma: 0.2}, Iters: 200}, ErrNonConvergence},
		{"offscale_dist", Result{Dist: stats.Normal{Mu: 1e9, Sigma: 0.1}}, ErrNonMonotoneCDF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateResult(tc.r, xs, Options{})
			if !errors.Is(err, tc.want) {
				t.Fatalf("ValidateResult = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
	good := Result{Dist: stats.Normal{Mu: stats.Moments(xs).Mean, Sigma: stats.Moments(xs).Std()}, Iters: 12}
	if err := ValidateResult(good, xs, Options{}); err != nil {
		t.Fatalf("good fit rejected: %v", err)
	}
}

func TestCleanSamples(t *testing.T) {
	xs := []float64{1, math.NaN(), 2, math.Inf(-1), 3}
	clean, dropped := CleanSamples(xs)
	if dropped != 2 || len(clean) != 3 {
		t.Fatalf("CleanSamples = %v (dropped %d)", clean, dropped)
	}
	// No mutation of the input, no copy when already clean.
	if xs[1] == xs[1] { // NaN stays NaN
		t.Fatal("input slice was mutated")
	}
	all := []float64{1, 2, 3}
	clean2, dropped2 := CleanSamples(all)
	if dropped2 != 0 || &clean2[0] != &all[0] {
		t.Fatal("CleanSamples copied an already-clean slice")
	}
}

func TestFitReportString(t *testing.T) {
	rep := FitReport{Requested: ModelLVF2, Used: ModelNorm2, Fallback: true, Dropped: 5,
		Attempts: []Attempt{{Model: ModelLVF2}, {Model: ModelLVF2, Retry: 1}, {Model: ModelNorm2}}}
	s := rep.String()
	for _, want := range []string{"LVF2", "Norm2", "2 failed attempts", "5 non-finite dropped"} {
		if !contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func assertFiniteDist(t *testing.T, d stats.Dist) {
	t.Helper()
	if err := validateDist(d); err != nil {
		t.Fatalf("distribution has invalid parameters: %v", err)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if x := stats.Quantile(d, q); math.IsNaN(x) {
			t.Fatalf("Quantile(%v) is NaN", q)
		}
	}
}
