package fit

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"lvf2/internal/stats"
)

// The graceful-degradation fallback chain. The paper's compatibility rule
// (eq. 10: λ = 0 reduces LVF² to plain LVF) is exactly a degradation
// path; FitRobust makes it an operational one. A fit that fails
// validation (NaN/Inf parameters, non-monotone CDF, λ outside [0,1],
// skewness clamp breach, EM non-convergence) is retried from perturbed
// deterministic starts with an escalating iteration budget, then degraded
// one model rung at a time:
//
//	LVF² → Norm² → LVF → plain Gaussian
//
// and the accepted rung is recorded in a typed FitReport, so callers (and
// the Liberty writer) know when a table entry is a fallback rather than
// the requested model.

// Attempt records one try of the robust ladder.
type Attempt struct {
	Model   Model
	Retry   int // 0 = first attempt at this rung, >0 = perturbed restart
	MaxIter int // iteration budget of this attempt
	Err     error
}

// FitReport is the provenance record of a robust fit.
type FitReport struct {
	// Requested is the model the caller asked for; Used is the rung that
	// produced the accepted fit.
	Requested Model
	Used      Model
	// Fallback reports Used != Requested (a degradation rung fired).
	Fallback bool
	// Degenerate reports the terminal salvage: the sample set was too
	// degenerate even for the Gaussian rung's fitter and a floored
	// moment-matched Gaussian was constructed directly.
	Degenerate bool
	// Dropped counts non-finite samples removed before fitting.
	Dropped int
	// Warm is the warm-start outcome of the accepted fit (meaningful for
	// the LVF² rung; every other rung reports WarmCold).
	Warm WarmOutcome
	// Attempts lists every try in ladder order (the last one succeeded
	// unless the whole ladder failed).
	Attempts []Attempt
}

// String summarises the report for logs: "LVF2→Norm2 (2 retries, 5 NaN dropped)".
func (r FitReport) String() string {
	var b strings.Builder
	b.WriteString(r.Requested.String())
	if r.Fallback {
		fmt.Fprintf(&b, "→%s", r.Used)
	}
	var notes []string
	if n := len(r.Attempts) - 1; n > 0 {
		notes = append(notes, fmt.Sprintf("%d failed attempts", n))
	}
	if r.Dropped > 0 {
		notes = append(notes, fmt.Sprintf("%d non-finite dropped", r.Dropped))
	}
	if r.Degenerate {
		notes = append(notes, "degenerate salvage")
	}
	if len(notes) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(notes, ", "))
	}
	return b.String()
}

// RobustOptions tunes FitRobust beyond the base fitter options.
type RobustOptions struct {
	Options
	// Retries is the number of perturbed restarts per rung before
	// degrading to the next model (default 2).
	Retries int
	// Seed makes the perturbed restarts deterministic (default 1).
	Seed uint64
}

func (o RobustOptions) withDefaults() RobustOptions {
	o.Options = o.Options.withDefaults()
	if o.Retries <= 0 {
		o.Retries = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// FallbackChain returns the degradation ladder starting at the requested
// model. Log-domain models degrade through LVF (their three-moment
// ancestor) rather than Norm².
func FallbackChain(m Model) []Model {
	switch m {
	case ModelLVF2:
		return []Model{ModelLVF2, ModelNorm2, ModelLVF, ModelGaussian}
	case ModelNorm2:
		return []Model{ModelNorm2, ModelLVF, ModelGaussian}
	case ModelLESN, ModelLN, ModelLSN:
		return []Model{m, ModelLVF, ModelGaussian}
	case ModelLVF:
		return []Model{ModelLVF, ModelGaussian}
	default:
		return []Model{m, ModelGaussian}
	}
}

// FitRobust fits the requested model with the full retry/degradation
// ladder. It never returns NaN parameters: either the Result passed
// ValidateResult on some rung, or the terminal degenerate salvage built a
// floored Gaussian, or an error is returned (only when the cleaned sample
// set is empty or every rung failed).
func FitRobust(model Model, xs []float64, o RobustOptions) (Result, FitReport, error) {
	o = o.withDefaults()
	rep := FitReport{Requested: model, Used: model}

	clean, dropped := CleanSamples(xs)
	rep.Dropped = dropped
	if len(clean) == 0 {
		err := errors.Join(ErrNotEnoughData, ErrEmptyData)
		if dropped > 0 {
			err = errors.Join(err, fmt.Errorf("%w: all %d samples", ErrNonFinite, dropped))
		}
		return Result{}, rep, err
	}

	var failures []error
	for _, rung := range FallbackChain(model) {
		for retry := 0; retry <= o.Retries; retry++ {
			opts := o.Options
			// Escalating iteration budget: 1×, 2×, 4×, ...
			opts.MaxIter = o.MaxIter << retry
			if retry > 0 {
				opts.PerturbInit = 0.08 * float64(retry)
				opts.PerturbSeed = o.Seed + uint64(retry)*0x9e3779b97f4a7c15
			}
			// A warm-start seed is consulted on the first LVF² attempt
			// only: a validation failure there means the seeded basin is
			// suspect, so perturbed restarts and degradation rungs must
			// explore cold exactly as an unseeded robust fit would.
			if rung != ModelLVF2 || retry > 0 {
				opts.Seed = nil
			}
			r, err := Fit(rung, clean, opts)
			if err == nil {
				err = ValidateResult(r, clean, opts)
			}
			rep.Attempts = append(rep.Attempts, Attempt{Model: rung, Retry: retry, MaxIter: opts.MaxIter, Err: err})
			if err == nil {
				rep.Used = rung
				rep.Fallback = rung != model
				rep.Warm = r.Warm
				return r, rep, nil
			}
			failures = append(failures, fmt.Errorf("%s retry %d: %w", rung, retry, err))
			// Degenerate inputs cannot be cured by restarts: skip straight
			// to the next rung (and ultimately the salvage below).
			if errors.Is(err, ErrNotEnoughData) || errors.Is(err, ErrDegenerateData) {
				break
			}
		}
	}

	// Terminal salvage: a moment-matched Gaussian with a floored sigma.
	// This is what keeps the characterisation pipeline emitting a valid
	// .lib for all-identical or near-empty sample sets.
	if g, ok := salvageGaussian(clean); ok {
		rep.Used = ModelGaussian
		rep.Fallback = true
		rep.Degenerate = true
		rep.Attempts = append(rep.Attempts, Attempt{Model: ModelGaussian, MaxIter: 0})
		return g, rep, nil
	}
	return Result{}, rep, errors.Join(append([]error{ErrAllModelsFailed}, failures...)...)
}

// snSkewBreach is the |skewness| above which a fitted skew-normal
// component is treated as railed at the moment clamp (MaxSNSkewness is
// the analytic supremum; fits this close to it mean the data's skewness
// is outside the representable range).
const snSkewBreach = 0.995 * stats.MaxSNSkewness

// salvageGaussian builds the floored moment-matched Gaussian of the
// terminal rung. The sigma floor keeps the density finite for
// zero-variance data while staying far below any physical timing scale;
// an overflowed (non-finite) variance also collapses to the floor rather
// than poisoning the salvage.
func salvageGaussian(xs []float64) (Result, bool) {
	m := stats.Moments(xs)
	if math.IsNaN(m.Mean) || math.IsInf(m.Mean, 0) {
		return Result{}, false
	}
	sd := m.Std()
	if math.IsNaN(sd) || math.IsInf(sd, 0) {
		sd = 0
	}
	if floor := math.Max(math.Abs(m.Mean)*1e-9, 1e-12); sd < floor {
		sd = floor
	}
	n := stats.Normal{Mu: m.Mean, Sigma: sd}
	return Result{Model: ModelGaussian, Dist: n, LogLik: LogLikelihood(n, xs)}, true
}

// ValidateResult vets a fitted Result: finite, in-range parameters, a
// finite log-likelihood, a monotone CDF that covers the sample mass, and
// a converged iteration count. Any breach returns a typed error so
// FitRobust can retry or degrade.
func ValidateResult(r Result, xs []float64, o Options) error {
	o = o.withDefaults()
	if r.Dist == nil {
		return fmt.Errorf("%w: nil distribution", ErrInvalidFit)
	}
	if err := validateDist(r.Dist); err != nil {
		return err
	}
	if math.IsNaN(r.LogLik) || math.IsInf(r.LogLik, 1) {
		return fmt.Errorf("%w: log-likelihood %v", ErrInvalidFit, r.LogLik)
	}
	if r.Iters > 0 && r.Iters >= o.MaxIter {
		return fmt.Errorf("%w: %d iterations (budget %d)", ErrNonConvergence, r.Iters, o.MaxIter)
	}
	return validateCDF(r.Dist, xs)
}

// validateDist checks the concrete parameterisation of the distributions
// the fitters produce.
func validateDist(d stats.Dist) error {
	switch v := d.(type) {
	case stats.SkewNormal:
		if !finite(v.Xi) || !finite(v.Omega) || !finite(v.Alpha) || v.Omega <= 0 {
			return fmt.Errorf("%w: SN(ξ=%v, ω=%v, α=%v)", ErrInvalidFit, v.Xi, v.Omega, v.Alpha)
		}
		// Skewness clamp breach: the moment map is only a bijection inside
		// the SN-attainable range. A fitted component railed at (or within
		// half a percent of) the clamp means the data's skewness exceeds
		// what a skew-normal can represent and the parameterisation is not
		// trustworthy — degrade rather than emit a railed fit.
		if s := v.Skewness(); math.IsNaN(s) || math.Abs(s) >= snSkewBreach {
			return fmt.Errorf("%w: SN skewness %v railed at clamp %v", ErrInvalidFit, s, stats.MaxSNSkewness)
		}
	case stats.Normal:
		if !finite(v.Mu) || !finite(v.Sigma) || v.Sigma <= 0 {
			return fmt.Errorf("%w: N(μ=%v, σ=%v)", ErrInvalidFit, v.Mu, v.Sigma)
		}
	case stats.Mixture:
		var sum float64
		for i, w := range v.Weights {
			if math.IsNaN(w) || w < 0 || w > 1 {
				return fmt.Errorf("%w: mixture weight λ=%v outside [0,1]", ErrInvalidFit, w)
			}
			sum += w
			if err := validateDist(v.Components[i]); err != nil {
				return err
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("%w: mixture weights sum to %v", ErrInvalidFit, sum)
		}
	case stats.LogESN:
		w := v.W
		if !finite(w.Xi) || !finite(w.Omega) || !finite(w.Alpha) || !finite(w.Tau) || w.Omega <= 0 {
			return fmt.Errorf("%w: LogESN(ξ=%v, ω=%v, α=%v, τ=%v)", ErrInvalidFit, w.Xi, w.Omega, w.Alpha, w.Tau)
		}
	default:
		// Unknown concrete type: the CDF sweep below is the only check.
	}
	return nil
}

// validateCDF sweeps the fitted CDF over the sample span (±4 sample sd)
// checking finiteness, range, monotonicity and mass coverage.
func validateCDF(d stats.Dist, xs []float64) error {
	m := stats.Moments(xs)
	sd := m.Std()
	if sd <= 0 || !finite(m.Mean) {
		return nil // degenerate inputs are caught upstream
	}
	const points = 33
	lo, hi := m.Mean-4*sd, m.Mean+4*sd
	prev := math.Inf(-1)
	for i := 0; i < points; i++ {
		x := lo + (hi-lo)*float64(i)/float64(points-1)
		c := d.CDF(x)
		if math.IsNaN(c) || c < -1e-9 || c > 1+1e-9 {
			return fmt.Errorf("%w: CDF(%g) = %v", ErrNonMonotoneCDF, x, c)
		}
		if c < prev-1e-9 {
			return fmt.Errorf("%w: CDF decreases at %g (%v -> %v)", ErrNonMonotoneCDF, x, prev, c)
		}
		if c > prev {
			prev = c
		}
	}
	if mass := d.CDF(hi) - d.CDF(lo); mass < 0.5 {
		return fmt.Errorf("%w: only %.3f probability mass over the sample span", ErrNonMonotoneCDF, mass)
	}
	return nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
