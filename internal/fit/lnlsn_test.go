package fit

import (
	"math"
	"testing"

	"lvf2/internal/stats"
)

func TestFitLNClosedForm(t *testing.T) {
	truth := stats.LogESN{W: stats.ExtendedSkewNormal{Xi: -2, Omega: 0.3}}
	xs := sampleDist(truth, 30000, 21)
	r, err := FitLN(xs)
	if err != nil {
		t.Fatal(err)
	}
	l := r.Dist.(stats.LogESN)
	if math.Abs(l.W.Xi+2) > 0.01 || math.Abs(l.W.Omega-0.3) > 0.01 {
		t.Errorf("LN params ξ=%v ω=%v", l.W.Xi, l.W.Omega)
	}
	if l.W.Alpha != 0 || l.W.Tau != 0 {
		t.Error("LN must have α = τ = 0")
	}
	// Moment match is exact for mean and variance.
	m := stats.Moments(xs)
	if math.Abs(l.Mean()-m.Mean)/m.Mean > 1e-9 {
		t.Errorf("LN mean %v want %v", l.Mean(), m.Mean)
	}
	if math.Abs(l.Variance()-m.Variance)/m.Variance > 1e-9 {
		t.Errorf("LN var %v want %v", l.Variance(), m.Variance)
	}
}

func TestFitLSNMatchesThreeMoments(t *testing.T) {
	truth := stats.LogESN{W: stats.ExtendedSkewNormal{Xi: -2.2, Omega: 0.2, Alpha: 2}}
	xs := sampleDist(truth, 30000, 22)
	r, err := FitLSN(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Moments(xs)
	got := stats.DistMoments(r.Dist)
	if math.Abs(got.Mean-want.Mean)/want.Mean > 0.005 {
		t.Errorf("mean %v want %v", got.Mean, want.Mean)
	}
	if math.Abs(got.Std()-want.Std())/want.Std() > 0.02 {
		t.Errorf("std %v want %v", got.Std(), want.Std())
	}
	if math.Abs(got.Skewness-want.Skewness) > 0.05 {
		t.Errorf("skew %v want %v", got.Skewness, want.Skewness)
	}
	// LSN (3 free moments) should beat LN (2) on skewed data in loglik.
	ln, err := FitLN(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r.LogLik < ln.LogLik-1 {
		t.Errorf("LSN loglik %v below LN %v", r.LogLik, ln.LogLik)
	}
}

func TestLNLSNRejectNonPositive(t *testing.T) {
	xs := []float64{1, 2, -1, 3, 4, 5, 6, 7, 8}
	if _, err := FitLN(xs); err != ErrNonPositive {
		t.Errorf("FitLN: %v", err)
	}
	if _, err := FitLSN(xs, Options{}); err != ErrNonPositive {
		t.Errorf("FitLSN: %v", err)
	}
	if _, err := FitLN([]float64{1}); err != ErrNotEnoughData {
		t.Errorf("FitLN short: %v", err)
	}
}

func TestExtendedModelsDispatch(t *testing.T) {
	truth := stats.SNFromMoments(0.1, 0.008, 0.4)
	xs := sampleDist(truth, 4000, 23)
	if len(ExtendedModels) != 6 {
		t.Fatalf("extended set size %d", len(ExtendedModels))
	}
	for _, m := range ExtendedModels {
		r, err := Fit(m, xs, Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.Abs(r.Dist.Mean()-0.1) > 0.005 {
			t.Errorf("%v mean %v", m, r.Dist.Mean())
		}
	}
	if ModelLN.String() != "LN" || ModelLSN.String() != "LSN" {
		t.Error("names")
	}
}
