package core

import (
	"errors"
	"fmt"
	"math"

	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// MixModel is the k-component generalisation of the LVF² Model, following
// §3.3's remark that the library format extends to more components "by
// following similar attribute naming conventions". Component 1 is the
// dominant, LVF-inherited one; Weights[i] is the weight of component i+2
// (so a MixModel with no Weights is plain LVF, and one Weight reproduces
// the two-component Model exactly).
type MixModel struct {
	Theta1  Theta
	Weights []float64 // weights λ₂, λ₃, … of the extra components
	Thetas  []Theta   // their moments vectors
}

// K returns the total component count.
func (m MixModel) K() int { return 1 + len(m.Weights) }

// Lambda1 returns the implied weight of component 1: 1 − Σλᵢ.
func (m MixModel) Lambda1() float64 {
	w := 1.0
	for _, l := range m.Weights {
		w -= l
	}
	return w
}

// Validate checks the weight simplex and parameter sanity.
func (m MixModel) Validate() error {
	if len(m.Weights) != len(m.Thetas) {
		return errors.New("core: mix model weights/thetas length mismatch")
	}
	var sum float64
	for i, l := range m.Weights {
		if l < 0 || l > 1 || math.IsNaN(l) {
			return fmt.Errorf("core: component %d weight %v out of [0,1]", i+2, l)
		}
		if m.Thetas[i].Sigma < 0 {
			return fmt.Errorf("core: component %d has negative sigma", i+2)
		}
		sum += l
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("core: extra component weights sum to %v > 1", sum)
	}
	if m.Theta1.Sigma < 0 {
		return errors.New("core: component 1 has negative sigma")
	}
	return nil
}

// Dist returns the mixture distribution.
func (m MixModel) Dist() stats.Dist {
	if len(m.Weights) == 0 {
		return m.Theta1.SN()
	}
	ws := make([]float64, 0, m.K())
	ds := make([]stats.Dist, 0, m.K())
	ws = append(ws, m.Lambda1())
	ds = append(ds, m.Theta1.SN())
	for i, l := range m.Weights {
		ws = append(ws, l)
		ds = append(ds, m.Thetas[i].SN())
	}
	mix, err := stats.NewMixture(ws, ds)
	if err != nil {
		return m.Theta1.SN()
	}
	return mix
}

// TwoComponent converts a k=2 MixModel to the paper's Model type.
func (m MixModel) TwoComponent() (Model, bool) {
	if len(m.Weights) == 0 {
		return FromLVF(m.Theta1), true
	}
	if len(m.Weights) != 1 {
		return Model{}, false
	}
	return Model{Lambda: m.Weights[0], Theta1: m.Theta1, Theta2: m.Thetas[0]}, true
}

// FitMixModel fits a k-component skew-normal mixture (k ≥ 1) by EM and
// converts to the moments parameterisation.
func FitMixModel(xs []float64, k int, o FitOptions) (MixModel, error) {
	r, err := fit.FitSNMixK(xs, k, o)
	if err != nil {
		return MixModel{}, err
	}
	m := MixModel{Theta1: ThetaOf(r.Comps[0])}
	for i := 1; i < len(r.Comps); i++ {
		m.Weights = append(m.Weights, r.Weights[i])
		m.Thetas = append(m.Thetas, ThetaOf(r.Comps[i]))
	}
	return m, nil
}
