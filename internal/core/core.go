// Package core defines the LVF² statistical timing model — the paper's
// primary contribution. A Model is the mixture of two weighted skew-normal
// distributions of eq. (4), parameterised the way the Liberty Variation
// Format parameterises distributions: by statistical-moment vectors
// θ = (μ, σ, γ) rather than by Azzalini parameters, with the bijection g
// of eq. (2) applied on demand.
//
// λ = 0 degenerates to the industry-standard LVF single skew-normal,
// which is the backward-compatibility rule of eq. (10).
package core

import (
	"errors"
	"fmt"
	"math"

	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// Theta is an LVF statistical-moments vector θ = (μ, σ, γ).
type Theta struct {
	Mean  float64 // μ
	Sigma float64 // σ
	Skew  float64 // γ
}

// SN converts θ to the corresponding skew-normal via the bijection g.
func (t Theta) SN() stats.SkewNormal {
	return stats.SNFromMoments(t.Mean, t.Sigma, t.Skew)
}

// ThetaOf extracts the moments vector of a skew-normal.
func ThetaOf(sn stats.SkewNormal) Theta {
	m, sd, g := sn.Moments()
	return Theta{Mean: m, Sigma: sd, Skew: g}
}

// Model is the LVF² timing model of eq. (4):
//
//	f(x) = (1−λ)·f_LVF(x|θ₁) + λ·f_LVF(x|θ₂).
//
// Theta1 is the dominant component and the one that inherits the classic
// LVF attributes in the Liberty encoding; λ ∈ [0, ½] by convention.
type Model struct {
	Lambda float64
	Theta1 Theta
	Theta2 Theta
}

// FromLVF lifts a plain LVF moments vector into LVF² (λ = 0; eq. 10).
func FromLVF(t Theta) Model {
	return Model{Lambda: 0, Theta1: t}
}

// IsLVF reports whether the model degenerates to single-component LVF.
func (m Model) IsLVF() bool { return m.Lambda < 1e-9 }

// Validate checks parameter sanity.
func (m Model) Validate() error {
	if m.Lambda < 0 || m.Lambda > 1 || math.IsNaN(m.Lambda) {
		return fmt.Errorf("core: weight λ=%v out of [0,1]", m.Lambda)
	}
	if m.Theta1.Sigma < 0 || (!m.IsLVF() && m.Theta2.Sigma < 0) {
		return errors.New("core: negative sigma")
	}
	return nil
}

// Dist returns the model's distribution: a single skew-normal when λ = 0,
// otherwise the two-component mixture.
func (m Model) Dist() stats.Dist {
	if m.IsLVF() {
		return m.Theta1.SN()
	}
	mix, err := stats.NewMixture(
		[]float64{1 - m.Lambda, m.Lambda},
		[]stats.Dist{m.Theta1.SN(), m.Theta2.SN()})
	if err != nil {
		// Only reachable with invalid λ; degrade to the dominant component.
		return m.Theta1.SN()
	}
	return mix
}

// PDF evaluates eq. (4) at x.
func (m Model) PDF(x float64) float64 { return m.Dist().PDF(x) }

// CDF evaluates the mixture CDF at x.
func (m Model) CDF(x float64) float64 { return m.Dist().CDF(x) }

// Mean returns the mixture mean (1−λ)μ₁ + λμ₂.
func (m Model) Mean() float64 {
	return (1-m.Lambda)*m.Theta1.Mean + m.Lambda*m.Theta2.Mean
}

// Moments returns the first four moments of the full mixture.
func (m Model) Moments() stats.SampleMoments {
	return stats.DistMoments(m.Dist())
}

// FitOptions re-exports the fitting options.
type FitOptions = fit.Options

// FitModel fits LVF² to samples by the EM algorithm of §3.2 and converts
// the result to the moments parameterisation.
func FitModel(xs []float64, o FitOptions) (Model, error) {
	r, err := fit.FitLVF2(xs, o)
	if err != nil {
		return Model{}, err
	}
	return FromFitResult(r), nil
}

// FromFitResult converts a fitted skew-normal mixture to a Model.
func FromFitResult(r fit.LVF2Result) Model {
	m := Model{
		Lambda: r.Lambda,
		Theta1: ThetaOf(r.C1),
	}
	if !r.IsDegenerate() {
		m.Theta2 = ThetaOf(r.C2)
	}
	return m
}

// ToFitResult converts back to the skew-normal parameterisation.
func (m Model) ToFitResult() fit.LVF2Result {
	return fit.LVF2Result{
		Lambda: m.Lambda,
		C1:     m.Theta1.SN(),
		C2:     m.Theta2.SN(),
	}
}

// FitLVFModel fits the plain LVF baseline (single SN moment match).
func FitLVFModel(xs []float64) (Model, error) {
	r, err := fit.FitLVF(xs)
	if err != nil {
		return Model{}, err
	}
	return FromLVF(ThetaOf(r.Dist.(stats.SkewNormal))), nil
}
