package core

import (
	"math"
	"math/rand"
	"testing"

	"lvf2/internal/stats"
)

func TestThetaSNRoundTrip(t *testing.T) {
	th := Theta{Mean: 0.1, Sigma: 0.01, Skew: 0.4}
	back := ThetaOf(th.SN())
	if math.Abs(back.Mean-th.Mean) > 1e-10 ||
		math.Abs(back.Sigma-th.Sigma) > 1e-10 ||
		math.Abs(back.Skew-th.Skew) > 1e-6 {
		t.Errorf("round trip: %+v -> %+v", th, back)
	}
}

func TestFromLVFBackwardCompatibility(t *testing.T) {
	// eq. (10): an LVF θ lifted to LVF² with λ=0 must have an identical
	// distribution.
	th := Theta{Mean: 0.2, Sigma: 0.02, Skew: -0.3}
	m := FromLVF(th)
	if !m.IsLVF() {
		t.Fatal("λ=0 model must report IsLVF")
	}
	sn := th.SN()
	for _, x := range []float64{0.15, 0.2, 0.25} {
		if math.Abs(m.PDF(x)-sn.PDF(x)) > 1e-13 {
			t.Errorf("PDF differs at %v", x)
		}
		if math.Abs(m.CDF(x)-sn.CDF(x)) > 1e-11 {
			t.Errorf("CDF differs at %v", x)
		}
	}
}

func TestModelValidate(t *testing.T) {
	good := Model{Lambda: 0.3, Theta1: Theta{1, 0.1, 0}, Theta2: Theta{2, 0.1, 0}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	if err := (Model{Lambda: -0.1}).Validate(); err == nil {
		t.Error("negative lambda accepted")
	}
	if err := (Model{Lambda: 1.5}).Validate(); err == nil {
		t.Error("lambda > 1 accepted")
	}
	if err := (Model{Lambda: math.NaN()}).Validate(); err == nil {
		t.Error("NaN lambda accepted")
	}
	bad := Model{Lambda: 0.5, Theta1: Theta{1, -1, 0}}
	if err := bad.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestModelMeanMatchesDist(t *testing.T) {
	m := Model{
		Lambda: 0.25,
		Theta1: Theta{Mean: 0.1, Sigma: 0.01, Skew: 0.3},
		Theta2: Theta{Mean: 0.15, Sigma: 0.02, Skew: -0.2},
	}
	if math.Abs(m.Mean()-m.Dist().Mean()) > 1e-12 {
		t.Errorf("Mean %v vs Dist().Mean %v", m.Mean(), m.Dist().Mean())
	}
}

func TestFitModelOnBimodal(t *testing.T) {
	truth, _ := stats.NewMixture(
		[]float64{0.7, 0.3},
		[]stats.Dist{
			stats.SNFromMoments(0.10, 0.005, 0.5),
			stats.SNFromMoments(0.13, 0.004, 0.5),
		})
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	m, err := FitModel(xs, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.IsLVF() {
		t.Fatal("bimodal data must yield a two-component fit")
	}
	if math.Abs(m.Lambda-0.3) > 0.05 {
		t.Errorf("lambda %v want ~0.3", m.Lambda)
	}
	if math.Abs(m.Theta1.Mean-0.10) > 0.003 || math.Abs(m.Theta2.Mean-0.13) > 0.003 {
		t.Errorf("component means %v %v", m.Theta1.Mean, m.Theta2.Mean)
	}
	// Model CDF tracks the truth.
	for _, x := range []float64{0.095, 0.11, 0.125, 0.14} {
		if d := math.Abs(m.CDF(x) - truth.CDF(x)); d > 0.015 {
			t.Errorf("CDF error %v at %v", d, x)
		}
	}
}

func TestFitLVFModel(t *testing.T) {
	sn := stats.SNFromMoments(0.1, 0.01, 0.6)
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = sn.Sample(rng)
	}
	m, err := FitLVFModel(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsLVF() {
		t.Error("LVF fit must be single-component")
	}
	if math.Abs(m.Theta1.Mean-0.1) > 0.001 || math.Abs(m.Theta1.Sigma-0.01) > 0.001 {
		t.Errorf("theta %+v", m.Theta1)
	}
}

func TestFitResultRoundTrip(t *testing.T) {
	m := Model{
		Lambda: 0.2,
		Theta1: Theta{0.1, 0.01, 0.3},
		Theta2: Theta{0.14, 0.008, -0.1},
	}
	back := FromFitResult(m.ToFitResult())
	if math.Abs(back.Lambda-m.Lambda) > 1e-12 ||
		math.Abs(back.Theta1.Mean-m.Theta1.Mean) > 1e-9 ||
		math.Abs(back.Theta2.Skew-m.Theta2.Skew) > 1e-6 {
		t.Errorf("round trip %+v -> %+v", m, back)
	}
}

func TestModelMomentsSaneForMixture(t *testing.T) {
	m := Model{
		Lambda: 0.4,
		Theta1: Theta{Mean: 1, Sigma: 0.1, Skew: 0},
		Theta2: Theta{Mean: 2, Sigma: 0.1, Skew: 0},
	}
	mom := m.Moments()
	// Mixture of well-separated equal-σ normals: mean = 1.4.
	if math.Abs(mom.Mean-1.4) > 1e-9 {
		t.Errorf("mean %v", mom.Mean)
	}
	// Var = w1σ² + w2σ² + w1w2(μ2−μ1)² = 0.01 + 0.24 = 0.25.
	if math.Abs(mom.Variance-0.25) > 1e-6 {
		t.Errorf("variance %v", mom.Variance)
	}
}

func TestFitMixModelThreeComponents(t *testing.T) {
	truth, _ := stats.NewMixture(
		[]float64{0.5, 0.3, 0.2},
		[]stats.Dist{
			stats.SNFromMoments(0.10, 0.004, 0.3),
			stats.SNFromMoments(0.13, 0.004, 0.3),
			stats.SNFromMoments(0.16, 0.005, 0.2),
		})
	rng := rand.New(rand.NewSource(31))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	m, err := FitMixModel(xs, 3, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 {
		t.Fatalf("K = %d", m.K())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	d := m.Dist()
	for _, x := range []float64{0.11, 0.14, 0.17} {
		if diff := math.Abs(d.CDF(x) - truth.CDF(x)); diff > 0.02 {
			t.Errorf("CDF diff %v at %v", diff, x)
		}
	}
	// λ1 is the dominant share.
	if m.Lambda1() < 0.35 {
		t.Errorf("lambda1 %v", m.Lambda1())
	}
}
