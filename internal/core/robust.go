package core

import (
	"fmt"
	"math"

	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// Robust fitting bridge: fit.FitRobust may accept any rung of the
// degradation ladder (LVF² → Norm² → LVF → Gaussian), so its Result can
// carry a skew-normal mixture, a Gaussian mixture, a single skew-normal
// or a plain Gaussian. All of them embed into the LVF² moments
// parameterisation — a Gaussian is a skew-normal with γ = 0, and a
// two-Gaussian mixture is eq. (4) with both skews zero — which is what
// lets one Liberty table schema hold every rung.

// ModelFromDist embeds a fitted distribution into the LVF² moments
// parameterisation. Supported shapes: Normal, SkewNormal, and mixtures
// of one or two Normal/SkewNormal components. The heavier component
// becomes θ₁ (the one that inherits the classic LVF attributes) so that
// λ ≤ ½ by construction.
func ModelFromDist(d stats.Dist) (Model, error) {
	switch v := d.(type) {
	case stats.Normal:
		return FromLVF(Theta{Mean: v.Mu, Sigma: v.Sigma}), nil
	case stats.SkewNormal:
		return FromLVF(ThetaOf(v)), nil
	case stats.Mixture:
		return modelFromMixture(v)
	default:
		return Model{}, fmt.Errorf("core: cannot embed %T into the LVF² parameterisation", d)
	}
}

func modelFromMixture(mix stats.Mixture) (Model, error) {
	thetas := make([]Theta, len(mix.Components))
	for i, c := range mix.Components {
		m, err := ModelFromDist(c)
		if err != nil {
			return Model{}, err
		}
		if !m.IsLVF() {
			return Model{}, fmt.Errorf("core: nested mixture component")
		}
		thetas[i] = m.Theta1
	}
	switch len(thetas) {
	case 1:
		return FromLVF(thetas[0]), nil
	case 2:
		dom, min := 0, 1
		if mix.Weights[1] > mix.Weights[0] {
			dom, min = 1, 0
		}
		return Model{Lambda: mix.Weights[min], Theta1: thetas[dom], Theta2: thetas[min]}, nil
	}
	return Model{}, fmt.Errorf("core: %d-component mixture does not fit the two-component LVF² schema", len(thetas))
}

// FitModelRobust fits LVF² through the full retry/degradation ladder and
// reports which rung produced the accepted model. The returned Model is
// always finite and Validate-clean when err is nil.
func FitModelRobust(xs []float64, o fit.RobustOptions) (Model, fit.FitReport, error) {
	return FitKindRobust(fit.ModelLVF2, xs, o)
}

// FitKindRobust is FitModelRobust for an arbitrary requested rung. Log-
// domain rungs (LESN/LN/LSN) have no moments embedding of their own; when
// one of those is accepted the model is rebuilt from the distribution's
// first three moments (an LVF view of the log-domain fit).
func FitKindRobust(kind fit.Model, xs []float64, o fit.RobustOptions) (Model, fit.FitReport, error) {
	r, rep, err := fit.FitRobust(kind, xs, o)
	if err != nil {
		return Model{}, rep, err
	}
	m, err := ModelFromDist(r.Dist)
	if err != nil {
		// Log-domain acceptance: represent by moment-matching a skew-normal.
		mom := stats.DistMoments(r.Dist)
		skew := mom.Skewness
		if math.IsNaN(skew) {
			skew = 0
		}
		skew = math.Max(-stats.MaxSNSkewness, math.Min(stats.MaxSNSkewness, skew))
		m = FromLVF(Theta{Mean: mom.Mean, Sigma: mom.Std(), Skew: skew})
	}
	if verr := m.Validate(); verr != nil {
		return Model{}, rep, verr
	}
	return m, rep, nil
}
