package spice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: delay and transition are positive and finite for any process
// sample within ±5σ, any grid-range slew/load, and any library-range
// electrical parameters.
func TestEvalAlwaysPhysicalProperty(t *testing.T) {
	c := TTCorner()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Params{
			VthN: 10 * (r.Float64() - 0.5),
			VthP: 10 * (r.Float64() - 0.5),
			Len:  10 * (r.Float64() - 0.5),
			MobN: 10 * (r.Float64() - 0.5),
			MobP: 10 * (r.Float64() - 0.5),
			Env:  10 * (r.Float64() - 0.5),
		}
		e := CellElectrical{
			Drive: 0.5 + 3*r.Float64(), CapIn: 0.001,
			StackN: 1 + r.Intn(4), StackP: 1 + r.Intn(4),
			ModeGap: 0.4 * r.Float64(), MixSens: 1.5 + r.Float64(),
			DiagOffset: 4 * (r.Float64() - 0.5), TransGain: 1 + r.Float64(),
		}
		slew := 0.001 + r.Float64()
		load := 0.0002 + r.Float64()
		d, tr := e.Eval(c, p, slew, load)
		// ±5σ mobility can make 1+σ·x slightly negative only beyond the
		// tested range; within it everything must stay physical.
		if math.Abs(p.MobN) < 5 && math.Abs(p.MobP) < 5 && math.Abs(p.Env) < 5 {
			return d > 0 && tr > 0 && !math.IsInf(d, 0) && !math.IsInf(tr, 0) &&
				!math.IsNaN(d) && !math.IsNaN(tr)
		}
		return !math.IsNaN(d) && !math.IsNaN(tr)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(109))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the deterministic part of the delay is monotone in V_th
// deviation when a single mechanism dominates.
func TestVthMonotoneProperty(t *testing.T) {
	c := TTCorner()
	e := CellElectrical{
		Drive: 1, CapIn: 0.001, StackN: 1, StackP: 1,
		ModeGap: 0.1, MixSens: 2.2, DiagOffset: -6, TransGain: 1.5,
	}
	f := func(aRaw, bRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 3)
		b := math.Mod(math.Abs(bRaw), 3)
		if a > b {
			a, b = b, a
		}
		// DiagOffset −6 keeps mechanism A dominant: delay rises with VthN.
		d1, _ := e.Eval(c, Params{VthN: a}, 0.02, 0.02)
		d2, _ := e.Eval(c, Params{VthN: b}, 0.02, 0.02)
		return d2 >= d1-1e-15
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(113))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
