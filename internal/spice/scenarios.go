package spice

import (
	"fmt"

	"lvf2/internal/mc"
	"lvf2/internal/stats"
)

// Scenario is one of the five representative non-Gaussian distribution
// shapes of Fig. 3 / Table 1. Dist is the ground-truth mixture the golden
// samples are drawn from; the names match the paper.
type Scenario struct {
	Name string
	Dist stats.Mixture
}

// Scenarios returns the paper's five scenarios (§4.1):
//
//	2 Peaks      — two prominent, well-separated, strongly skewed peaks
//	Multi-Peaks  — more than two components with significant skews
//	Saddle       — two similar peaks with slight skew and comparable σ
//	Minor Saddle — one Gaussian dominating another with deviated σ
//	Kurtosis     — same-centre components with different weights/σ
//
// Values are in nanoseconds, typical of a 22nm cell delay LUT entry.
// A malformed definition (weights not summing to one, component count
// mismatch) is reported as an error rather than a panic, so callers can
// degrade or skip the scenario study.
func Scenarios() ([]Scenario, error) {
	var buildErr error
	mix := func(ws []float64, cs ...stats.Dist) stats.Mixture {
		m, err := stats.NewMixture(ws, cs)
		if err != nil && buildErr == nil {
			buildErr = fmt.Errorf("spice: bad scenario definition: %w", err)
		}
		return m
	}
	// Every scenario carries a small wide "background" component (residual
	// variation mechanisms a 2-component model cannot absorb), so that no
	// fitted family contains the truth exactly — reductions stay finite
	// and at the paper's magnitude instead of saturating at the sampling
	// noise floor.
	bg := func(mean float64) stats.Dist {
		return stats.SNFromMoments(mean, 0.016, 0.2)
	}
	scs := []Scenario{
		{
			// Sharp edges (skewness near the SN maximum) are what make
			// skewless Norm² fail here — "skewness is an indispensable
			// parameter" (§4.1).
			Name: "2 Peaks",
			Dist: mix([]float64{0.54, 0.43, 0.03},
				stats.SNFromMoments(0.100, 0.0032, 0.93),
				stats.SNFromMoments(0.132, 0.0040, 0.93),
				bg(0.115),
			),
		},
		{
			// Two dominant, strongly skewed peaks plus a faint third —
			// LVF² "successfully identifies the two dominant peaks".
			Name: "Multi-Peaks",
			Dist: mix([]float64{0.48, 0.38, 0.11, 0.03},
				stats.SNFromMoments(0.100, 0.0038, 0.90),
				stats.SNFromMoments(0.126, 0.0036, 0.90),
				stats.SNFromMoments(0.150, 0.0060, 0.50),
				bg(0.125),
			),
		},
		{
			Name: "Saddle",
			Dist: mix([]float64{0.485, 0.485, 0.03},
				stats.SNFromMoments(0.100, 0.0068, 0.38),
				stats.SNFromMoments(0.122, 0.0074, 0.32),
				bg(0.111),
			),
		},
		{
			Name: "Minor Saddle",
			Dist: mix([]float64{0.76, 0.21, 0.03},
				stats.SNFromMoments(0.100, 0.0050, 0.30),
				stats.SNFromMoments(0.121, 0.0120, 0.45),
				bg(0.108),
			),
		},
		{
			Name: "Kurtosis",
			Dist: mix([]float64{0.58, 0.39, 0.03},
				stats.SNFromMoments(0.110, 0.0040, 0.35),
				stats.SNFromMoments(0.110, 0.0125, 0.30),
				bg(0.110),
			),
		},
	}
	if buildErr != nil {
		return nil, buildErr
	}
	return scs, nil
}

// GoldenSamples draws n samples from a scenario's ground-truth mixture —
// the stand-in for the paper's 50k-sample SPICE MC golden data.
func (s Scenario) GoldenSamples(rng *mc.RNG, n int) []float64 {
	return s.GoldenSamplesInto(rng, make([]float64, n))
}

// GoldenSamplesInto fills dst with golden samples, letting sweep drivers
// that redraw the same sample count per grid point reuse one buffer.
func (s Scenario) GoldenSamplesInto(rng *mc.RNG, dst []float64) []float64 {
	for i := range dst {
		dst[i] = s.Dist.Sample(rng)
	}
	return dst
}
