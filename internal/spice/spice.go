// Package spice is the project's substitute for the paper's HSPICE
// Monte-Carlo characterisation of TSMC 22nm standard cells (proprietary
// and unavailable): an analytic, variation-aware electrical model that
// exposes the same interface a SPICE MC run would — draw a process
// parameter vector, evaluate one timing arc at one slew–load point, get a
// (delay, transition) pair.
//
// The model combines
//
//   - an alpha-power-law MOSFET on-current I ∝ mob·drive·(V_DD−V_th)^α,
//     whose (V_DD−V_th)^−α nonlinearity turns Gaussian threshold-voltage
//     variation into the skewed delay distributions LVF was designed for;
//   - a stack factor raising both the nominal V_th and its sensitivity
//     for multi-input gates;
//   - an input-slope term coupling slew to V_th variation; and
//   - a *dual-mechanism regime switch*: each arc has two competing
//     conduction mechanisms (an N-network- and a P-network-dominated
//     one) and the process vector decides which wins. This is the paper's
//     own explanation for the multi-Gaussian phenomenon ("two variations
//     evenly matched against each other", §4.3). The confrontation point
//     moves with log(slew)−log(load), which reproduces the diagonal
//     accuracy pattern of Fig. 4.
//
// All delays and transitions are in nanoseconds, loads in picofarads.
package spice

import (
	"math"

	"lvf2/internal/mc"
)

// NumParams is the dimensionality of the process-parameter space:
// ΔVthN, ΔVthP, ΔLen, ΔMobN, ΔMobP, ΔEnv (all standardised N(0,1)).
const NumParams = 6

// Params is one process-variation sample in units of sigma.
type Params struct {
	VthN float64 // NMOS threshold-voltage deviation
	VthP float64 // PMOS threshold-voltage deviation
	Len  float64 // channel-length deviation
	MobN float64 // NMOS mobility deviation
	MobP float64 // PMOS mobility deviation
	Env  float64 // residual environmental noise (local IR drop etc.)
}

// ParamsFromVector builds Params from a standardised sample row.
func ParamsFromVector(v []float64) Params {
	var p Params
	if len(v) > 0 {
		p.VthN = v[0]
	}
	if len(v) > 1 {
		p.VthP = v[1]
	}
	if len(v) > 2 {
		p.Len = v[2]
	}
	if len(v) > 3 {
		p.MobN = v[3]
	}
	if len(v) > 4 {
		p.MobP = v[4]
	}
	if len(v) > 5 {
		p.Env = v[5]
	}
	return p
}

// Corner holds the PVT corner and variation magnitudes. The paper's
// experiments run at TTGlobal_LocalMC, 0.8 V, 25 °C.
type Corner struct {
	VDD      float64 // supply voltage, V
	TempC    float64 // temperature, °C
	VthN0    float64 // nominal NMOS threshold, V
	VthP0    float64 // nominal PMOS threshold (magnitude), V
	Alpha    float64 // alpha-power-law velocity-saturation exponent
	SigmaVth float64 // local V_th sigma, V
	SigmaMob float64 // relative mobility sigma
	SigmaLen float64 // relative channel-length sigma
	SigmaEnv float64 // relative residual noise sigma
}

// TTCorner returns the typical corner used throughout the paper's
// evaluation (0.8 V, 25 °C, local-MC variations on).
func TTCorner() Corner {
	return Corner{
		VDD:      0.8,
		TempC:    25,
		VthN0:    0.33,
		VthP0:    0.31,
		Alpha:    1.35,
		SigmaVth: 0.020,
		SigmaMob: 0.032,
		SigmaLen: 0.018,
		SigmaEnv: 0.009,
	}
}

// CellElectrical describes one cell's electrical behaviour for the
// analytic model. Cells in internal/cells embed one of these per arc.
type CellElectrical struct {
	Name   string
	Drive  float64 // output drive relative to a unit inverter
	CapIn  float64 // input pin capacitance, pF
	StackN int     // NMOS stack depth (series transistors)
	StackP int     // PMOS stack depth

	// Dual-mechanism regime-switch parameters.
	ModeGap    float64 // relative delay separation of the two mechanisms
	MixSens    float64 // confrontation sharpness along the slew–load diagonal
	DiagOffset float64 // where (in log10 slew−load units) the mechanisms tie
	TransGain  float64 // extra mode separation in transition vs delay
}

const (
	kDelay     = 2.4   // ns·(drive units)/(pF·V^(1−α)) load-to-delay gain
	kTransMult = 1.9   // transition time / delay load-term ratio
	kSlewDelay = 0.11  // slew feed-through into delay
	kSlewTrans = 0.16  // slew feed-through into transition
	modeKappa  = 0.22  // logistic sharpness of the regime switch (σ units)
	minVeff    = 0.08  // clamp for the effective overdrive voltage, V
	envGainD   = 0.015 // residual noise gain on delay
	envGainT   = 0.022 // residual noise gain on transition
)

// stackVth returns the effective nominal threshold and its sensitivity
// multiplier for a stack of depth n: stacking raises both the body-effect
// threshold and the variance contribution (√n uncorrelated devices).
func stackVth(vth0 float64, n int) (vthEff, sensMult float64) {
	if n < 1 {
		n = 1
	}
	return vth0 * (1 + 0.05*float64(n-1)), math.Sqrt(float64(n))
}

// mechanismDelay evaluates one conduction mechanism's load-dependent delay
// core: k·C_L·V_DD / (drive·mob·(V_DD−V_th)^α), alpha-power law.
func mechanismDelay(c Corner, drive, mob, vthEff float64, loadPF float64) float64 {
	veff := c.VDD - vthEff
	if veff < minVeff {
		veff = minVeff
	}
	i := drive * mob * math.Pow(veff, c.Alpha)
	return kDelay * loadPF * c.VDD / i
}

// Eval computes (delay, transition) in ns for one process sample at one
// slew–load point. slewNS is the input transition in ns; loadPF the output
// load in pF.
func (e CellElectrical) Eval(c Corner, p Params, slewNS, loadPF float64) (delay, trans float64) {
	// Mechanism A: N-network dominated.
	vthA0, sensA := stackVth(c.VthN0, e.StackN)
	vthA := vthA0 + c.SigmaVth*sensA*p.VthN
	mobA := (1 + c.SigmaMob*p.MobN) / (1 + c.SigmaLen*p.Len)
	dA := mechanismDelay(c, e.Drive, mobA, vthA, loadPF)

	// Mechanism B: P-network dominated, systematically slower by ModeGap.
	vthB0, sensB := stackVth(c.VthP0, e.StackP)
	vthB := vthB0 + c.SigmaVth*sensB*p.VthP
	mobB := (1 + c.SigmaMob*p.MobP) / (1 + c.SigmaLen*p.Len)
	dB := mechanismDelay(c, e.Drive*0.92, mobB, vthB, loadPF) * (1 + e.ModeGap)

	// Input-slope terms: slew couples to the (variation-dependent)
	// switching threshold.
	slopeA := slewNS * (kSlewDelay + 0.28*vthA/c.VDD)
	slopeB := slewNS * (kSlewDelay + 0.28*vthB/c.VDD)

	// Regime switch: which mechanism dominates depends on the
	// confrontation variable M; its deterministic part moves along the
	// log(slew)−log(load) diagonal.
	bias := e.MixSens * (math.Log10(slewNS/0.03) - math.Log10(loadPF/0.02) + e.DiagOffset)
	m := (p.VthN-p.VthP)/sqrt2 + bias
	s := 1 / (1 + math.Exp(-m/modeKappa))

	dTotA := dA + slopeA
	dTotB := dB + slopeB
	delay = (1-s)*dTotA + s*dTotB
	delay *= 1 + envGainD*p.Env

	// Transition time: same physics, larger load gain, larger mode
	// separation (the paper observes multi-Gaussian more often in
	// transition distributions).
	tA := kTransMult*dA + slewNS*kSlewTrans
	tB := kTransMult*dB*(1+e.TransGain*e.ModeGap) + slewNS*kSlewTrans
	trans = (1-s)*tA + s*tB
	trans *= 1 + envGainT*p.Env

	return delay, trans
}

// EvalVec evaluates the arc at one standardised process vector — the raw
// row form the mc samplers produce — without the caller spelling out the
// Params mapping. This is the seam the rare-event yield estimators drive:
// they walk the N(0,1)^NumParams space directly (shifted proposals,
// likelihood ratios) and only need "delay at this vector".
func (e CellElectrical) EvalVec(c Corner, x []float64, slewNS, loadPF float64) (delay, trans float64) {
	return e.Eval(c, ParamsFromVector(x), slewNS, loadPF)
}

// NominalEval evaluates the arc at the process nominal (all deviations 0).
func (e CellElectrical) NominalEval(c Corner, slewNS, loadPF float64) (delay, trans float64) {
	return e.Eval(c, Params{}, slewNS, loadPF)
}

// MCResult holds the Monte-Carlo sample vectors of one characterisation
// point.
type MCResult struct {
	Delays      []float64
	Transitions []float64
}

// Sampler selects the process-space sampling scheme.
type Sampler int

// Sampling schemes for Monte-Carlo characterisation.
const (
	// SamplerLHS is Latin Hypercube Sampling — the paper's scheme.
	SamplerLHS Sampler = iota
	// SamplerSobol is randomised quasi-Monte-Carlo (Sobol with a
	// Cranley-Patterson rotation).
	SamplerSobol
	// SamplerIID is plain Monte Carlo (the variance baseline).
	SamplerIID
)

// Characterize runs an n-sample LHS Monte-Carlo characterisation of the
// arc at one slew–load point, mirroring the paper's "LHS SPICE MC
// simulation with all variations turned on".
func (e CellElectrical) Characterize(c Corner, rng *mc.RNG, n int, slewNS, loadPF float64) MCResult {
	return e.CharacterizeWith(c, rng, n, slewNS, loadPF, SamplerLHS)
}

// samplePool recycles the process-sample matrices across characterisation
// calls: a library characterisation evaluates thousands of slew–load grid
// points, each drawing an n×NumParams block that is dead as soon as the
// delays are computed. Each pool worker grabs its own matrix, so the
// concurrent CharacterizeLibrary path reuses one buffer per worker.
var samplePool mc.MatrixPool

// CharacterizeWith runs the characterisation with an explicit sampling
// scheme.
func (e CellElectrical) CharacterizeWith(c Corner, rng *mc.RNG, n int, slewNS, loadPF float64, s Sampler) MCResult {
	m := samplePool.Get()
	defer samplePool.Put(m)
	return e.characterizeInto(c, rng, n, slewNS, loadPF, s, m)
}

// ArcStream plans one arc's grid sweep: a single reusable sample matrix
// streams every (slew, load) entry of the arc through one shaped plan,
// instead of re-planning (pool round-trip, row re-slicing) at each of
// the 64 grid points. The zero value is ready. Not safe for concurrent
// use — each characterisation worker owns one per arc.
type ArcStream struct{ m mc.Matrix }

// CharacterizeStream evaluates one grid entry of an arc sweep through
// the stream's plan. The drawn samples — and therefore the resulting
// delay/transition vectors — are bit-identical to CharacterizeWith with
// the same RNG state: only the buffer recycling differs.
func (e CellElectrical) CharacterizeStream(c Corner, rng *mc.RNG, n int, slewNS, loadPF float64, s Sampler, st *ArcStream) MCResult {
	return e.characterizeInto(c, rng, n, slewNS, loadPF, s, &st.m)
}

// characterizeInto draws the process-sample block into m and evaluates
// the arc at every sample. Only the output vectors are freshly
// allocated; they are retained by the caller as the characterised
// distribution.
func (e CellElectrical) characterizeInto(c Corner, rng *mc.RNG, n int, slewNS, loadPF float64, s Sampler, m *mc.Matrix) MCResult {
	var pts [][]float64
	switch s {
	case SamplerSobol:
		pts = mc.GaussianSobolInto(rng, n, NumParams, m)
	case SamplerIID:
		pts = mc.GaussianIIDInto(rng, n, NumParams, m)
	default:
		pts = mc.GaussianLHSInto(rng, n, NumParams, m)
	}
	res := MCResult{
		Delays:      make([]float64, n),
		Transitions: make([]float64, n),
	}
	for i, row := range pts {
		d, t := e.Eval(c, ParamsFromVector(row), slewNS, loadPF)
		res.Delays[i] = d
		res.Transitions[i] = t
	}
	return res
}

// SampleParams draws n LHS process vectors (shared across arcs when the
// same physical sample must be propagated through a path).
func SampleParams(rng *mc.RNG, n int) []Params {
	pts := mc.GaussianLHS(rng, n, NumParams)
	out := make([]Params, n)
	for i, row := range pts {
		out[i] = ParamsFromVector(row)
	}
	return out
}

const sqrt2 = 1.4142135623730951
