package spice

import (
	"math"
	"testing"

	"lvf2/internal/mc"
	"lvf2/internal/stats"
)

func testCell() CellElectrical {
	return CellElectrical{
		Name: "TESTINV", Drive: 1, CapIn: 0.0009,
		StackN: 1, StackP: 1,
		ModeGap: 0.12, MixSens: 2.2, DiagOffset: 0, TransGain: 1.5,
	}
}

func TestNominalEvalPositiveAndFinite(t *testing.T) {
	c := TTCorner()
	e := testCell()
	for _, slew := range []float64{0.001, 0.03, 0.9} {
		for _, load := range []float64{0.0002, 0.02, 0.9} {
			d, tr := e.NominalEval(c, slew, load)
			if !(d > 0) || !(tr > 0) || math.IsInf(d, 0) || math.IsInf(tr, 0) {
				t.Fatalf("slew=%v load=%v: d=%v tr=%v", slew, load, d, tr)
			}
		}
	}
}

func TestDelayMonotoneInLoad(t *testing.T) {
	c := TTCorner()
	e := testCell()
	prev := 0.0
	for _, load := range []float64{0.001, 0.01, 0.1, 0.5} {
		d, _ := e.NominalEval(c, 0.03, load)
		if d <= prev {
			t.Fatalf("delay not increasing with load at %v: %v <= %v", load, d, prev)
		}
		prev = d
	}
}

func TestDelayMonotoneInSlew(t *testing.T) {
	c := TTCorner()
	e := testCell()
	prev := 0.0
	for _, slew := range []float64{0.001, 0.01, 0.1, 0.5} {
		d, _ := e.NominalEval(c, slew, 0.02)
		if d <= prev {
			t.Fatalf("delay not increasing with slew at %v", slew)
		}
		prev = d
	}
}

func TestSlowerVthSlowsDelay(t *testing.T) {
	c := TTCorner()
	e := testCell()
	// Pick a point deep in mechanism A (bias << 0) so the N threshold acts
	// directly.
	slew, load := 0.001, 0.9
	d0, _ := e.Eval(c, Params{}, slew, load)
	dUp, _ := e.Eval(c, Params{VthN: 2}, slew, load)
	dDn, _ := e.Eval(c, Params{VthN: -2}, slew, load)
	if !(dUp > d0 && d0 > dDn) {
		t.Errorf("Vth ordering violated: %v %v %v", dDn, d0, dUp)
	}
}

func TestStackRaisesNominalDelay(t *testing.T) {
	c := TTCorner()
	e1 := testCell()
	e4 := testCell()
	e4.StackN, e4.StackP = 4, 4
	d1, _ := e1.NominalEval(c, 0.03, 0.02)
	d4, _ := e4.NominalEval(c, 0.03, 0.02)
	if d4 <= d1 {
		t.Errorf("4-stack delay %v should exceed 1-stack %v", d4, d1)
	}
}

func TestCharacterizeShapes(t *testing.T) {
	c := TTCorner()
	e := testCell()
	rng := mc.NewRNG(1)
	res := e.Characterize(c, rng, 2000, 0.03, 0.02)
	if len(res.Delays) != 2000 || len(res.Transitions) != 2000 {
		t.Fatal("sample counts")
	}
	md := stats.Moments(res.Delays)
	mt := stats.Moments(res.Transitions)
	if md.Std() <= 0 || mt.Std() <= 0 {
		t.Fatal("no variation in MC output")
	}
	// Transitions are systematically longer than delays at this point.
	if mt.Mean <= md.Mean {
		t.Errorf("transition mean %v should exceed delay mean %v", mt.Mean, md.Mean)
	}
}

// The regime switch must create genuine bimodality at the confrontation
// point (bias ≈ 0) and much weaker bimodality off the diagonal.
func TestRegimeSwitchCreatesBimodality(t *testing.T) {
	c := TTCorner()
	e := testCell()
	e.ModeGap = 0.22
	rng := mc.NewRNG(2)
	// On-diagonal: slew/load chosen so bias = 0.
	on := e.Characterize(c, rng.Split(), 6000, 0.03, 0.02)
	// Off-diagonal by two decades of load.
	off := e.Characterize(c, rng.Split(), 6000, 0.03, 0.9)

	kurtOn := stats.Moments(on.Delays)
	kurtOff := stats.Moments(off.Delays)
	// A 50/50 mixture of separated modes has kurtosis well below 3
	// (platykurtic); a single regime stays near 3.
	if kurtOn.Kurtosis >= kurtOff.Kurtosis {
		t.Errorf("on-diagonal kurtosis %v should be below off-diagonal %v",
			kurtOn.Kurtosis, kurtOff.Kurtosis)
	}
	// Bimodality ⇒ relative spread (coefficient of variation) inflates at
	// the confrontation point.
	cvOn := kurtOn.Std() / kurtOn.Mean
	cvOff := kurtOff.Std() / kurtOff.Mean
	if cvOn <= cvOff {
		t.Errorf("on-diagonal CV %v should exceed off-diagonal CV %v", cvOn, cvOff)
	}
}

func TestParamsFromVector(t *testing.T) {
	p := ParamsFromVector([]float64{1, 2, 3, 4, 5, 6})
	if p.VthN != 1 || p.VthP != 2 || p.Len != 3 || p.MobN != 4 || p.MobP != 5 || p.Env != 6 {
		t.Errorf("mapping wrong: %+v", p)
	}
	short := ParamsFromVector([]float64{1})
	if short.VthN != 1 || short.VthP != 0 {
		t.Errorf("short vector: %+v", short)
	}
}

func TestSampleParamsCount(t *testing.T) {
	ps := SampleParams(mc.NewRNG(3), 100)
	if len(ps) != 100 {
		t.Fatalf("count %d", len(ps))
	}
	var mean float64
	for _, p := range ps {
		mean += p.VthN
	}
	mean /= 100
	if math.Abs(mean) > 0.2 {
		t.Errorf("VthN mean %v too far from 0", mean)
	}
}

func TestScenariosShapes(t *testing.T) {
	scs, err := Scenarios()
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	if len(scs) != 5 {
		t.Fatalf("want 5 scenarios, got %d", len(scs))
	}
	names := map[string]bool{}
	for _, s := range scs {
		names[s.Name] = true
		// Ground truth must be a proper distribution.
		if s.Dist.Mean() <= 0 {
			t.Errorf("%s: non-positive mean", s.Name)
		}
		xs := s.GoldenSamples(mc.NewRNG(4), 5000)
		m := stats.Moments(xs)
		if math.Abs(m.Mean-s.Dist.Mean()) > 0.01*s.Dist.Mean()+0.002 {
			t.Errorf("%s: sample mean %v vs dist %v", s.Name, m.Mean, s.Dist.Mean())
		}
	}
	for _, want := range []string{"2 Peaks", "Multi-Peaks", "Saddle", "Minor Saddle", "Kurtosis"} {
		if !names[want] {
			t.Errorf("missing scenario %q", want)
		}
	}
}

// The Kurtosis scenario must actually be leptokurtic; the 2 Peaks scenario
// must be strongly bimodal (platykurtic).
func TestScenarioShapeProperties(t *testing.T) {
	scs, err := Scenarios()
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	for _, s := range scs {
		xs := s.GoldenSamples(mc.NewRNG(5), 40000)
		m := stats.Moments(xs)
		switch s.Name {
		case "Kurtosis":
			if m.Kurtosis < 3.3 {
				t.Errorf("Kurtosis scenario kurtosis %v, want > 3.3", m.Kurtosis)
			}
		case "2 Peaks":
			if m.Kurtosis > 2.5 {
				t.Errorf("2 Peaks kurtosis %v, want platykurtic (< 2.5)", m.Kurtosis)
			}
		}
	}
}

func TestCharacterizeWithSamplers(t *testing.T) {
	c := TTCorner()
	e := testCell()
	means := map[Sampler]float64{}
	for _, s := range []Sampler{SamplerLHS, SamplerSobol, SamplerIID} {
		res := e.CharacterizeWith(c, mc.NewRNG(7), 2000, 0.02, 0.02, s)
		if len(res.Delays) != 2000 {
			t.Fatalf("sampler %v: %d samples", s, len(res.Delays))
		}
		m := stats.Moments(res.Delays)
		if m.Std() <= 0 || m.Mean <= 0 {
			t.Fatalf("sampler %v: degenerate output", s)
		}
		means[s] = m.Mean
	}
	// All samplers estimate the same distribution: means agree within MC
	// noise.
	if math.Abs(means[SamplerSobol]-means[SamplerLHS])/means[SamplerLHS] > 0.02 {
		t.Errorf("sampler means diverge: %v", means)
	}
	// The default wrapper is LHS.
	def := e.Characterize(c, mc.NewRNG(7), 2000, 0.02, 0.02)
	lhs := e.CharacterizeWith(c, mc.NewRNG(7), 2000, 0.02, 0.02, SamplerLHS)
	for i := range def.Delays {
		if def.Delays[i] != lhs.Delays[i] {
			t.Fatal("Characterize must default to LHS")
		}
	}
}
