package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"lvf2/internal/faultinject"
	"lvf2/internal/obs"
)

func newTestBreakers(opts BreakerOptions) (*breakerSet[breakerKey], *faultinject.Clock) {
	clk := faultinject.NewClock(time.Time{})
	return newBreakerSet[breakerKey](opts, clk.Now, obs.NewRegistry(), "lvf2d_breaker", "fit"), clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	bs, _ := newTestBreakers(BreakerOptions{FailureThreshold: 3})
	k := breakerKey{libHash: "h", cell: "INV"}
	boom := errors.New("fit exploded")

	for i := 0; i < 2; i++ {
		if ok, _ := bs.allow(k); !ok {
			t.Fatalf("failure %d: breaker closed prematurely", i)
		}
		bs.done(k, false, boom)
	}
	if st := bs.stateOf(k); st != breakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	ok, _ := bs.allow(k)
	if !ok {
		t.Fatal("third attempt should be admitted")
	}
	bs.done(k, false, boom)
	if st := bs.stateOf(k); st != breakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", st)
	}
	if ok, _ := bs.allow(k); ok {
		t.Fatal("open breaker admitted a fit before the backoff elapsed")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	bs, _ := newTestBreakers(BreakerOptions{FailureThreshold: 3})
	k := breakerKey{libHash: "h", cell: "INV"}
	boom := errors.New("fit exploded")
	for round := 0; round < 4; round++ {
		bs.allow(k)
		bs.done(k, false, boom)
		bs.allow(k)
		bs.done(k, false, boom)
		bs.allow(k)
		bs.done(k, false, nil) // success wipes the streak
	}
	if st := bs.stateOf(k); st != breakerClosed {
		t.Fatalf("state = %v, want closed (failures never consecutive enough)", st)
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	bs, clk := newTestBreakers(BreakerOptions{FailureThreshold: 1, OpenBase: time.Second, OpenMax: 8 * time.Second})
	k := breakerKey{libHash: "h", cell: "INV"}
	boom := errors.New("fit exploded")

	bs.allow(k)
	bs.done(k, false, boom) // opens (threshold 1)
	if st := bs.stateOf(k); st != breakerOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Jitter spreads the open interval over [d, 1.5d); 1.5d always clears it.
	clk.Advance(1500 * time.Millisecond)
	ok, probe := bs.allow(k)
	if !ok || !probe {
		t.Fatalf("allow after backoff = (%v,%v), want (true,true) probe", ok, probe)
	}
	if st := bs.stateOf(k); st != breakerHalfOpen {
		t.Fatalf("state = %v, want half_open", st)
	}
	// Only one probe at a time.
	if ok, _ := bs.allow(k); ok {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe failure re-opens with doubled backoff.
	bs.done(k, true, boom)
	if st := bs.stateOf(k); st != breakerOpen {
		t.Fatalf("state = %v, want open after failed probe", st)
	}
	clk.Advance(1500 * time.Millisecond) // < 2s doubled backoff even unjittered
	if ok, _ := bs.allow(k); ok {
		t.Fatal("re-opened breaker admitted a probe before doubled backoff")
	}
	clk.Advance(1500 * time.Millisecond) // total 3s ≥ 1.5·2s
	ok, probe = bs.allow(k)
	if !ok || !probe {
		t.Fatalf("allow after doubled backoff = (%v,%v), want probe", ok, probe)
	}

	// Probe success closes and resets backoff to OpenBase.
	bs.done(k, true, nil)
	if st := bs.stateOf(k); st != breakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", st)
	}
	bs.allow(k)
	bs.done(k, false, boom) // re-open: backoff must be base again
	clk.Advance(1500 * time.Millisecond)
	if ok, _ := bs.allow(k); !ok {
		t.Fatal("backoff was not reset to OpenBase by the successful probe")
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	bs, clk := newTestBreakers(BreakerOptions{FailureThreshold: 1, OpenBase: time.Second, OpenMax: 4 * time.Second})
	k := breakerKey{libHash: "h", cell: "INV"}
	boom := errors.New("fit exploded")
	bs.allow(k)
	bs.done(k, false, boom)
	for i := 0; i < 6; i++ { // double past the cap
		clk.Advance(time.Hour)
		ok, probe := bs.allow(k)
		if !ok || !probe {
			t.Fatalf("round %d: probe not admitted", i)
		}
		bs.done(k, true, boom)
	}
	// Capped at 4s: 1.5·4s = 6s always clears it.
	clk.Advance(6 * time.Second)
	if ok, _ := bs.allow(k); !ok {
		t.Fatal("backoff exceeded OpenMax")
	}
}

func TestBreakerCancelledFitIsNeutral(t *testing.T) {
	bs, _ := newTestBreakers(BreakerOptions{FailureThreshold: 1})
	k := breakerKey{libHash: "h", cell: "INV"}
	bs.allow(k)
	bs.done(k, false, context.Canceled)
	if st := bs.stateOf(k); st != breakerClosed {
		t.Fatalf("state = %v: a client that went away must not open the breaker", st)
	}
	// A deadline expiry, by contrast, is a real failure.
	bs.allow(k)
	bs.done(k, false, context.DeadlineExceeded)
	if st := bs.stateOf(k); st != breakerOpen {
		t.Fatalf("state = %v: a fit that blew the deadline must count", st)
	}
}

func TestBreakerKeysAreIndependent(t *testing.T) {
	bs, _ := newTestBreakers(BreakerOptions{FailureThreshold: 1})
	bad := breakerKey{libHash: "h", cell: "NAND2"}
	good := breakerKey{libHash: "h", cell: "INV"}
	bs.allow(bad)
	bs.done(bad, false, errors.New("degenerate tables"))
	if st := bs.stateOf(bad); st != breakerOpen {
		t.Fatalf("bad cell state = %v, want open", st)
	}
	if ok, _ := bs.allow(good); !ok {
		t.Fatal("healthy cell was collateral damage of another cell's breaker")
	}
}
