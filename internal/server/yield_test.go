package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// latentTestServer uploads a library whose filler cell (BUF_X1) has no
// synthetic electrical model, forcing the estimator onto the
// fitted-model latent space.
func latentTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	s := newTestServer(t, mutate)
	if _, err := s.AddLibrary("latlib", libText(t, "latlib", 1,
		[]float64{0.01, 0.05}, []float64{0.002, 0.008})); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestYieldEstimatorLatent(t *testing.T) {
	s := latentTestServer(t, nil)
	h := s.Handler()
	rec, body := get(t, h,
		"/v1/yield?lib=latlib&cell=BUF_X1&sigma=4&estimator=mnis&ci=0.05")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[yieldResponse](t, body)
	if len(resp.Yield) == 0 {
		t.Fatal("analytic yield map missing")
	}
	est := resp.Estimate
	if est == nil {
		t.Fatal("estimator requested but estimate missing")
	}
	if est.Estimator != "mnis" || est.Space != "latent" {
		t.Fatalf("estimator/space = %s/%s, want mnis/latent", est.Estimator, est.Space)
	}
	if !est.Converged {
		t.Fatalf("latent 4σ contract should close: %+v", est)
	}
	if est.RelHalfWidth == nil || *est.RelHalfWidth > 0.05 {
		t.Fatalf("rel half-width = %v, want ≤ 0.05", est.RelHalfWidth)
	}
	if est.CILo > est.FailProb || est.FailProb > est.CIHi {
		t.Fatalf("CI [%g, %g] does not bracket %g", est.CILo, est.CIHi, est.FailProb)
	}
	if est.ESS <= 0 || est.Samples <= 0 || est.Failures <= 0 {
		t.Fatalf("empty estimate: %+v", est)
	}
	if got := est.Yield + est.FailProb; got < 0.999 || got > 1.001 {
		t.Fatalf("yield + fail_prob = %g, want 1", got)
	}
	if est.Degraded != nil {
		t.Fatalf("unexpected degradation: %+v", est.Degraded)
	}
	if rec.Header().Get(degradedHeader) != "" {
		t.Fatalf("unexpected degraded header %q", rec.Header().Get(degradedHeader))
	}
}

func TestYieldParamValidation(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	bad := []struct{ query, wantFrag string }{
		{"sigma=9", "out of range"},
		{"sigma=0.1", "out of range"},
		{"sigma=abc", "bad sigma"},
		{"sigma=3&clock=1", "mutually exclusive"},
		{"estimator=bogus", "unknown estimator"},
		{"estimator=mc&ci=0.7", "out of range"},
		{"estimator=mc&ci=-1", "out of range"},
		{"ci=0.01", "pass estimator"},
	}
	for _, tc := range bad {
		rec, body := get(t, h, "/v1/yield?lib=testlib&cell=INV&"+tc.query)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: code = %d, want 400: %s", tc.query, rec.Code, body)
		}
		if !strings.Contains(string(body), tc.wantFrag) {
			t.Fatalf("%s: body %q missing %q", tc.query, body, tc.wantFrag)
		}
	}
	// sigma alone (no estimator) stays a pure analytic answer.
	rec, body := get(t, h, "/v1/yield?lib=testlib&cell=INV&sigma=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("sigma-only: code = %d: %s", rec.Code, body)
	}
	if resp := decode[yieldResponse](t, body); resp.Estimate != nil {
		t.Fatal("sigma-only query should not run an estimator")
	}
}

// TestYieldEstimatorDegraded forces the failure-region search to come up
// empty: the synthetic INV electrical model cannot reach a 10 ns delay
// inside the searchable radius, so MNIS must degrade to the plain-MC
// partial answer, tagged in both body and header.
func TestYieldEstimatorDegraded(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.YieldMaxSamples = 1 << 16 })
	h := s.Handler()
	rec, body := get(t, h, "/v1/yield?lib=testlib&cell=INV&clock=10&estimator=mnis")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[yieldResponse](t, body)
	est := resp.Estimate
	if est == nil || est.Degraded == nil {
		t.Fatalf("expected degraded estimate, got %+v", est)
	}
	if est.Degraded.Rung != "mc" || est.Degraded.Requested != "mnis" {
		t.Fatalf("degraded = %+v, want mc for mnis", est.Degraded)
	}
	if est.Estimator != "mc" || est.Space != "process" {
		t.Fatalf("estimator/space = %s/%s, want mc/process", est.Estimator, est.Space)
	}
	if rec.Header().Get(degradedHeader) != "mc" {
		t.Fatalf("degraded header = %q, want mc", rec.Header().Get(degradedHeader))
	}
	// Zero observed failures: honest widened CI, no finite relative width.
	if est.Converged || est.FailProb != 0 || est.CIHi <= 0 || est.RelHalfWidth != nil {
		t.Fatalf("degraded zero-failure answer malformed: %+v", est)
	}
}

func TestNetlistYieldEstimator(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec, body := post(t, h, "/v1/yield",
		`{"lib":"testlib","builtin":"chain","n":2,"families":["lvf2"],"sigma":4,"estimator":"ais","ci":0.05}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[yieldResponse](t, body)
	if resp.Clock <= 0 {
		t.Fatalf("sigma target should resolve a clock, got %g", resp.Clock)
	}
	est := resp.Estimates["LVF2"]
	if est == nil {
		t.Fatalf("missing LVF2 estimate: %s", body)
	}
	if est.Outputs != 1 || est.Space != "latent" || est.Estimator != "ais" {
		t.Fatalf("estimate = %+v", est)
	}
	if !est.Converged || est.Yield <= 0 || est.Yield >= 1 {
		t.Fatalf("estimate did not converge sensibly: %+v", est)
	}
	if est.CILo > est.FailProb || est.FailProb > est.CIHi {
		t.Fatalf("CI [%g, %g] does not bracket %g", est.CILo, est.CIHi, est.FailProb)
	}
	// The sampled answer must agree with the analytic CDF product to CI
	// order (same fitted model, same clock).
	if analytic, ok := resp.Yield["LVF2"]; ok {
		if diff := est.Yield - analytic; diff > 0.01 || diff < -0.01 {
			t.Fatalf("sampled yield %g vs analytic %g", est.Yield, analytic)
		}
	}

	for _, tc := range []string{
		`{"lib":"testlib","builtin":"chain","estimator":"bogus","clock":1}`,
		`{"lib":"testlib","builtin":"chain","sigma":3,"clock":1}`,
		`{"lib":"testlib","builtin":"chain","estimator":"mc"}`,
	} {
		if rec, body := post(t, h, "/v1/yield", tc); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: code = %d, want 400: %s", tc, rec.Code, body)
		}
	}
}

// TestYieldEstimatorBudget pins the degraded-mode CI-contract story: a
// request whose budget runs out mid-estimate still answers 200 with the
// partial estimate and Converged=false rather than erroring.
func TestYieldEstimatorBudget(t *testing.T) {
	s := latentTestServer(t, func(c *Config) { c.YieldMaxSamples = 1 << 14 })
	h := s.Handler()
	// Plain MC cannot close a ±1% contract at 7.5σ inside a 16k budget.
	rec, body := get(t, h, fmt.Sprintf(
		"/v1/yield?lib=latlib&cell=BUF_X1&sigma=7.5&estimator=mc&ci=%g", 0.01))
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[yieldResponse](t, body)
	if resp.Estimate == nil || resp.Estimate.Converged {
		t.Fatalf("expected unconverged partial estimate, got %+v", resp.Estimate)
	}
}
