// Package server implements lvf2d, the long-lived timing-query daemon:
// an HTTP serving layer over the LVF² library that amortises Liberty
// parsing and statistical fitting across requests. One-shot CLI flows
// (cmd/timing, cmd/ssta) pay full characterisation cost per invocation;
// the daemon keeps parsed libraries and fitted per-arc models in an LRU
// (internal/modelcache) with singleflight coalescing, so a warm
// binning/yield query is a map lookup plus JSON encoding, and reuses the
// pooled fit.Workspace kernel so hot fits are allocation-free.
//
// Endpoint families:
//
//	GET  /v1/arc/cdf      per-arc distribution query (CDF/PDF points)
//	GET  /v1/arc/binning  speed-bin probabilities and expected revenue
//	GET  /v1/yield        per-arc 3σ-yield / yield at a clock target
//	POST /v1/yield        path-level yield over a netlist
//	POST /v1/ssta         block-based SSTA over built-in or uploaded netlists
//	POST /v1/libraries    upload a Liberty library (returns its content hash)
//	GET  /v1/libraries    list loaded libraries
//	GET  /metrics         Prometheus text exposition
//	GET  /healthz         liveness probe
//	     /debug/pprof/*   net/http/pprof (behind Config.EnablePprof)
package server

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lvf2/internal/liberty"
	"lvf2/internal/modelcache"
	"lvf2/internal/obs"
)

// Config tunes the daemon. The zero value serves with defaults and no
// preloaded libraries.
type Config struct {
	// Cache bounds the library/model LRUs.
	Cache modelcache.Options
	// RequestTimeout is the per-request deadline (default 30s).
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently served API requests (default 64).
	MaxInFlight int
	// MaxBodyBytes bounds uploaded bodies (default 16 MiB).
	MaxBodyBytes int64
	// FitSamples is the deterministic quantile-sample count used when a
	// query asks for a model kind that must be refitted from the arc
	// distribution (default 2048).
	FitSamples int
	// MaxUploadedLibraries bounds the uploaded-source table (default 32).
	MaxUploadedLibraries int
	// YieldMaxSamples caps the sample budget of one /v1/yield estimator
	// run (default 1<<22); the CI contract stops earlier when it closes.
	YieldMaxSamples int
	// YieldBatch is the estimator batch size between CI checks
	// (default 4096).
	YieldBatch int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Registry receives the daemon's metrics (default a fresh registry;
	// /metrics also exposes obs.Default() for library-level series).
	Registry *obs.Registry

	// SnapshotPath, when non-empty, enables model-cache persistence:
	// the LRU is restored from this file by Bootstrap and saved to it
	// atomically on a timer and on graceful drain.
	SnapshotPath string
	// SnapshotInterval is the periodic save cadence (default 30s when
	// SnapshotPath is set).
	SnapshotInterval time.Duration
	// FS is the filesystem snapshots go through (default the real OS;
	// the chaos harness injects disk faults here).
	FS modelcache.FS
	// Breaker tunes the per-(library,cell) fit circuit breaker.
	Breaker BreakerOptions
	// Replication configures consistent-hash sharded serving across a
	// static replica fleet (see DESIGN.md §16). The zero value (no
	// peers) serves standalone.
	Replication ReplicationOptions
	// Logger receives startup/snapshot/degradation events (default
	// slog.Default()).
	Logger *slog.Logger

	// testDelay slows every API request by this amount (honouring
	// context cancellation) so tests can hold requests in flight
	// deterministically. Not reachable from the CLI.
	testDelay time.Duration
	// now overrides the breaker clock for deterministic chaos tests.
	now func() time.Time
	// fitFault, when set, is called at the head of every cache-miss fit
	// (chaos fit-fault injection).
	fitFault func(ctx context.Context) error
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.FitSamples <= 0 {
		c.FitSamples = 2048
	}
	if c.MaxUploadedLibraries <= 0 {
		c.MaxUploadedLibraries = 32
	}
	if c.YieldMaxSamples <= 0 {
		c.YieldMaxSamples = 1 << 22
	}
	if c.YieldBatch <= 0 {
		c.YieldBatch = 4096
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.FS == nil {
		c.FS = modelcache.OSFS{}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// libSource is one loadable library: its raw text plus identity. Parsing
// is deferred to the cache so an evicted library transparently re-parses
// on next use.
type libSource struct {
	name string
	hash string
	text string
}

// Server is the daemon state shared across requests.
type Server struct {
	cfg      Config
	cache    *modelcache.Cache
	metrics  *obs.HTTPMetrics
	breakers *breakerSet[breakerKey]
	repl     *replication // nil when serving standalone
	fitCost  ewma         // observed fit latency, drives early shedding
	ready    atomic.Bool  // set by Bootstrap: library parsed + restore decided

	// Resilience counters (see DESIGN.md §11).
	shedTotal           *obs.Counter
	degradedTotal       *obs.CounterVec // by rung
	snapSaves           *obs.Counter
	snapSaveFailures    *obs.Counter
	snapRestores        *obs.Counter
	snapRestoreFailures *obs.Counter

	mu     sync.Mutex
	byName map[string]*libSource
	byHash map[string]*libSource
}

// New builds a Server. Add libraries with AddLibrary/AddLibraryFile or
// at runtime via POST /v1/libraries, then call Bootstrap to restore the
// model-cache snapshot (when configured) and mark the server ready.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   modelcache.New(cfg.Cache),
		metrics: obs.NewHTTPMetrics(cfg.Registry, "lvf2d"),
		byName:  map[string]*libSource{},
		byHash:  map[string]*libSource{},
	}
	s.breakers = newBreakerSet[breakerKey](cfg.Breaker, cfg.now, cfg.Registry, "lvf2d_breaker", "fit")
	s.repl = newReplication(cfg)
	r := cfg.Registry
	s.shedTotal = obs.NewCounter(r, "lvf2d_requests_shed_total",
		"requests shed early because the remaining deadline could not cover a fit")
	s.degradedTotal = obs.NewCounterVec(r, "lvf2d_degraded_answers_total",
		"answers served from the degradation ladder, by rung", "rung")
	s.snapSaves = obs.NewCounter(r, "lvf2d_snapshot_saves_total",
		"model-cache snapshots written successfully")
	s.snapSaveFailures = obs.NewCounter(r, "lvf2d_snapshot_save_failures_total",
		"model-cache snapshot writes that failed (previous snapshot kept)")
	s.snapRestores = obs.NewCounter(r, "lvf2d_snapshot_restores_total",
		"model-cache snapshots restored on boot")
	// Exact series name pinned by the acceptance criteria.
	s.snapRestoreFailures = obs.NewCounter(r, "lvf2_snapshot_restore_failures_total",
		"snapshot restores rejected (corrupt, truncated or version-skewed); the daemon booted cold")
	s.registerCacheMetrics()
	return s
}

// Bootstrap completes startup after libraries are registered: it
// restores the model-cache snapshot when one is configured, then marks
// the server ready (/readyz flips to 200). Restore failures never fail
// the boot — a corrupt, truncated or version-skewed snapshot logs its
// reason, increments lvf2_snapshot_restore_failures_total and leaves
// the cache cold; a missing file is the normal first-boot cold start.
func (s *Server) Bootstrap() {
	defer s.ready.Store(true)
	if s.cfg.SnapshotPath == "" {
		return
	}
	n, err := s.cache.RestoreSnapshot(s.cfg.FS, s.cfg.SnapshotPath)
	switch {
	case err == nil:
		s.snapRestores.Inc()
		s.cfg.Logger.Info("lvf2d: model cache restored from snapshot",
			"path", s.cfg.SnapshotPath, "models", n)
	case errors.Is(err, fs.ErrNotExist):
		s.cfg.Logger.Info("lvf2d: no snapshot; starting cold", "path", s.cfg.SnapshotPath)
	default:
		s.snapRestoreFailures.Inc()
		s.cfg.Logger.Warn("lvf2d: snapshot rejected; starting cold",
			"path", s.cfg.SnapshotPath, "reason", err.Error())
	}
}

// SaveSnapshot persists the model cache now (timer ticks, drain, and
// chaos tests call this). Failures keep the previous snapshot on disk.
func (s *Server) SaveSnapshot() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	err := s.cache.SaveSnapshot(s.cfg.FS, s.cfg.SnapshotPath)
	if err != nil {
		s.snapSaveFailures.Inc()
		s.cfg.Logger.Warn("lvf2d: snapshot save failed", "path", s.cfg.SnapshotPath, "reason", err.Error())
		return err
	}
	s.snapSaves.Inc()
	return nil
}

// Ready reports whether Bootstrap has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// Cache exposes the model cache (used by benchmarks to force cold paths).
func (s *Server) Cache() *modelcache.Cache { return s.cache }

// AddLibrary registers Liberty source text under the given name (the
// library's own name when empty). The text is parsed once to validate
// and to learn the name; the parsed form is owned by the cache.
func (s *Server) AddLibrary(name string, text []byte) (hash string, err error) {
	g, err := liberty.Parse(string(text))
	if err != nil {
		return "", err
	}
	lib, err := liberty.LoadLibrary(g)
	if err != nil {
		return "", err
	}
	if name == "" {
		name = lib.Name
	}
	if name == "" {
		return "", fmt.Errorf("server: library has no name; supply one")
	}
	src := &libSource{name: name, hash: modelcache.HashBytes(text), text: string(text)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.byHash) >= s.cfg.MaxUploadedLibraries {
		if _, exists := s.byHash[src.hash]; !exists {
			return "", fmt.Errorf("server: library table full (%d); raise -max-libraries", s.cfg.MaxUploadedLibraries)
		}
	}
	s.byName[name] = src
	s.byHash[src.hash] = src
	return src.hash, nil
}

// AddLibraryFile loads a .lib file from disk under the given name.
func (s *Server) AddLibraryFile(name, path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return s.AddLibrary(name, b)
}

// lookupSource resolves a library reference (name or content hash).
func (s *Server) lookupSource(ref string) (*libSource, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if src, ok := s.byName[ref]; ok {
		return src, true
	}
	src, ok := s.byHash[ref]
	return src, ok
}

// library resolves a reference to a parsed library through the cache.
func (s *Server) library(ref string) (*libSource, *liberty.Library, error) {
	src, ok := s.lookupSource(ref)
	if !ok {
		return nil, nil, &httpError{code: http.StatusNotFound,
			msg: fmt.Sprintf("unknown library %q (upload via POST /v1/libraries or name one loaded at startup)", ref)}
	}
	lib, err := s.cache.Library(src.hash, int64(len(src.text)), func() (*liberty.Library, error) {
		g, err := liberty.Parse(src.text)
		if err != nil {
			return nil, err
		}
		return liberty.LoadLibrary(g)
	})
	if err != nil {
		return nil, nil, err
	}
	return src, lib, nil
}

// registerCacheMetrics exports the cache counters as scrape-time series.
func (s *Server) registerCacheMetrics() {
	r := s.cfg.Registry
	series := func(prefix string, snap func() modelcache.Stats) {
		obs.NewGaugeFunc(r, prefix+"_hits", "cache hits", func() float64 { return float64(snap().Hits) })
		obs.NewGaugeFunc(r, prefix+"_misses", "cache misses", func() float64 { return float64(snap().Misses) })
		obs.NewGaugeFunc(r, prefix+"_evictions", "cache evictions", func() float64 { return float64(snap().Evictions) })
		obs.NewGaugeFunc(r, prefix+"_coalesced", "singleflight-coalesced lookups", func() float64 { return float64(snap().Coalesced) })
		obs.NewGaugeFunc(r, prefix+"_entries", "resident entries", func() float64 { return float64(snap().Entries) })
	}
	series("lvf2d_cache_library", s.cache.LibStats)
	series("lvf2d_cache_model", s.cache.ModelStats)
	obs.NewGaugeFunc(r, "lvf2d_cache_bytes", "bytes charged to the cache budget",
		func() float64 { return float64(s.cache.Bytes()) })
}

// Handler assembles the full route table with observability middleware:
// panic recovery, per-route request/latency metrics, an in-flight
// gauge, a concurrency limiter and a per-request timeout on the API
// surface. /metrics, /healthz and /readyz bypass the limiter so probes
// stay responsive under load.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	api := func(route string, h http.HandlerFunc) {
		wrapped := http.Handler(h)
		if s.cfg.testDelay > 0 {
			inner := wrapped
			wrapped = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				select {
				case <-time.After(s.cfg.testDelay):
				case <-r.Context().Done():
				}
				inner.ServeHTTP(w, r)
			})
		}
		wrapped = obs.Timeout(s.cfg.RequestTimeout, s.metrics.Timeouts, wrapped)
		wrapped = obs.Limit(s.cfg.MaxInFlight, s.metrics.Rejected, wrapped)
		wrapped = obs.Recover(s.metrics.Panics, wrapped)
		if s.repl != nil {
			// Checksum responses to forwarded requests so the sending
			// replica can detect a corrupted peer link.
			wrapped = s.peerIntegrity(wrapped)
		}
		mux.Handle(route, s.metrics.Wrap(route, wrapped))
	}
	api("/v1/arc/cdf", s.handleArcCDF)
	api("/v1/arc/binning", s.handleArcBinning)
	api("/v1/yield", s.handleYield)
	api("/v1/ssta", s.handleSSTA)
	api("/v1/libraries", s.handleLibraries)
	if s.repl != nil {
		// Peer-only surface: the snapshot export bypasses the limiter
		// (its payload carries its own checksum; a restarting peer must
		// be able to warm-seed from a replica that is busy serving).
		mux.Handle("/v1/peer/snapshot", s.metrics.Wrap("/v1/peer/snapshot",
			obs.Recover(s.metrics.Panics, http.HandlerFunc(s.handlePeerSnapshot))))
		mux.Handle("/v1/peer/digest", s.metrics.Wrap("/v1/peer/digest",
			obs.Recover(s.metrics.Panics, http.HandlerFunc(s.handlePeerDigest))))
		// Fleet admin surface: membership CAS and graceful drain also
		// bypass the limiter — reconfiguration must work on a saturated
		// fleet.
		mux.Handle("/v1/fleet/membership", s.metrics.Wrap("/v1/fleet/membership",
			obs.Recover(s.metrics.Panics, http.HandlerFunc(s.handleFleetMembership))))
		mux.Handle("/v1/fleet/drain", s.metrics.Wrap("/v1/fleet/drain",
			obs.Recover(s.metrics.Panics, http.HandlerFunc(s.handleFleetDrain))))
	}

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// Readiness is distinct from liveness: the process can be alive but
	// not yet serving (libraries unparsed, snapshot restore undecided).
	// Load balancers gate traffic on /readyz and restarts on /healthz.
	// The body is JSON carrying ring membership and per-peer link state
	// when replication is configured.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case !s.ready.Load():
			writeJSON(w, http.StatusServiceUnavailable, s.readyzBody("starting"))
		case s.repl != nil && s.repl.warming.Load():
			// A joining replica is alive but still pulling its newly
			// owned ranges; load balancers should hold client traffic.
			writeJSON(w, http.StatusServiceUnavailable, s.readyzBody("warming"))
		case s.repl != nil && s.repl.view().drained:
			// Still serving (everything forwards or computes locally),
			// but no longer a ring member; the status string lets
			// routing layers retire it at their own pace.
			writeJSON(w, http.StatusOK, s.readyzBody("drained"))
		default:
			writeJSON(w, http.StatusOK, s.readyzBody("ready"))
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.cfg.Registry.WritePrometheus(w)
		if s.cfg.Registry != obs.Default() {
			obs.Default().WritePrometheus(w)
		}
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Run serves on addr until ctx is cancelled, then drains in-flight
// requests gracefully for up to drain (Shutdown semantics: the listener
// closes immediately, live requests run to completion).
func (s *Server) Run(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.RunListener(ctx, ln, drain)
}

// RunListener is Run over an existing listener (tests use port 0).
// When snapshots are configured it also runs the periodic save loop and
// writes a final snapshot after the drain completes, so a SIGTERM
// restart boots warm.
func (s *Server) RunListener(ctx context.Context, ln net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if s.cfg.SnapshotPath != "" {
		snapCtx, stopSnap := context.WithCancel(ctx)
		defer stopSnap()
		go func() {
			t := time.NewTicker(s.cfg.SnapshotInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					_ = s.SaveSnapshot() // failure logged + counted; previous snapshot survives
				case <-snapCtx.Done():
					return
				}
			}
		}()
	}
	if s.repl != nil {
		bgCtx, stopBg := context.WithCancel(ctx)
		defer stopBg()
		o := s.repl.opts
		// Each loop starts after a deterministic per-replica jitter so a
		// fleet restarted together never probes or digest-sweeps in
		// lockstep (see loopJitter).
		go runJittered(bgCtx, s.repl.self, probeJitterSalt, o.ProbeInterval, s.ProbePeersOnce)
		go runJittered(bgCtx, s.repl.self, antiEntropyJitterSalt, o.AntiEntropyInterval,
			func(ctx context.Context) { s.AntiEntropyOnce(ctx) })
		if o.MembershipPath != "" {
			go runJittered(bgCtx, s.repl.self, membershipJitterSalt, o.MembershipPollInterval, s.CheckMembershipFile)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := hs.Shutdown(sctx)
	// The drain snapshot runs after in-flight fits have completed, so it
	// captures the fullest cache this process will ever have.
	_ = s.SaveSnapshot()
	return err
}

// ----------------------------------------------------------------- ewma

// ewma tracks an exponentially weighted moving average of observed fit
// latency (α = 0.3). The shed path compares a request's remaining
// deadline against this estimate: a request that cannot possibly cover
// a fit is answered 503 + Retry-After immediately instead of occupying
// a worker until its deadline kills it.
type ewma struct{ bits atomic.Uint64 }

func (e *ewma) observe(d time.Duration) {
	v := d.Seconds()
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		next := v
		if cur > 0 {
			next = 0.7*cur + 0.3*v
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (e *ewma) estimate() time.Duration {
	return time.Duration(math.Float64frombits(e.bits.Load()) * float64(time.Second))
}
