package server

import (
	"context"
	"math"
	"net/url"
	"strconv"
	"strings"

	"lvf2/internal/cells"
	"lvf2/internal/fit"
	"lvf2/internal/libbuild"
	"lvf2/internal/netlist"
	"lvf2/internal/spice"
	"lvf2/internal/sta"
	"lvf2/internal/stats"
	"lvf2/internal/yield"
)

// yieldParams is the estimator-selection surface of /v1/yield, shared by
// the GET query string and the POST body: the clock target (a sigma
// multiple of the model or an absolute clock), which rung of the
// estimator ladder to run, and the CI contract to run it under.
type yieldParams struct {
	sigma     float64
	hasSigma  bool
	clock     float64
	hasClock  bool
	estimator string // "" = analytic CDF answer (no sampling)
	ci        float64
}

// defaultYieldSigma keeps the historical GET default: the paper's
// 3σ-yield.
const defaultYieldSigma = 3.0

// validateYieldParams applies the shared range checks; every failure is
// a typed 400.
func (yp *yieldParams) validate() error {
	if yp.hasSigma && (yp.sigma < 0.5 || yp.sigma > 8) {
		return badRequest("sigma %g out of range [0.5, 8]", yp.sigma)
	}
	if yp.hasSigma && yp.hasClock {
		return badRequest("sigma and clock are mutually exclusive; pick one target")
	}
	if yp.estimator != "" {
		if _, err := yield.New(yp.estimator); err != nil {
			return badRequest("unknown estimator %q (want %s)", yp.estimator, strings.Join(yield.Names, "|"))
		}
	}
	if yp.ci != 0 {
		if yp.estimator == "" {
			return badRequest("ci sets the estimator CI contract; pass estimator=%s too", strings.Join(yield.Names, "|"))
		}
		if yp.ci <= 0 || yp.ci > 0.5 {
			return badRequest("ci %g out of range (0, 0.5]", yp.ci)
		}
	}
	return nil
}

// parseYieldParams decodes the GET query surface.
func parseYieldParams(q url.Values) (yieldParams, error) {
	var yp yieldParams
	if v := q.Get("sigma"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return yp, badRequest("bad sigma %q", v)
		}
		yp.sigma, yp.hasSigma = f, true
	}
	if v := q.Get("clock"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return yp, badRequest("bad clock %q", v)
		}
		yp.clock, yp.hasClock = f, true
	}
	if v := q.Get("estimator"); v != "" {
		yp.estimator = v
	}
	if v := q.Get("ci"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return yp, badRequest("bad ci %q", v)
		}
		yp.ci = f
	}
	return yp, yp.validate()
}

// yieldEstimateDTO is the estimator-ladder answer: the estimate itself
// plus everything needed to judge it — the confidence interval, the
// estimator variance, the effective sample size and whether the CI
// contract actually closed. RelHalfWidth is omitted when no failure was
// observed (it would be infinite; the CI bounds still apply).
type yieldEstimateDTO struct {
	Estimator    string       `json:"estimator"`
	Space        string       `json:"space"` // process | latent
	FailProb     float64      `json:"fail_prob"`
	Yield        float64      `json:"yield"`
	StdErr       float64      `json:"std_err"`
	Variance     float64      `json:"variance"`
	CILo         float64      `json:"ci_lo"`
	CIHi         float64      `json:"ci_hi"`
	CILevel      float64      `json:"ci_level"`
	RelHalfWidth *float64     `json:"rel_half_width,omitempty"`
	ESS          float64      `json:"ess"`
	Samples      int          `json:"samples"`
	SearchEvals  int          `json:"search_evals,omitempty"`
	Failures     int          `json:"failures"`
	Converged    bool         `json:"converged"`
	Outputs      int          `json:"outputs,omitempty"` // POST: primary outputs combined
	Degraded     *degradedDTO `json:"degraded,omitempty"`
}

func dtoFromEstimate(r yield.Result, space string) *yieldEstimateDTO {
	dto := &yieldEstimateDTO{
		Estimator:   r.Estimator,
		Space:       space,
		FailProb:    r.FailProb,
		Yield:       r.Yield,
		StdErr:      r.StdErr,
		Variance:    r.Variance,
		CILo:        r.CI.Lo,
		CIHi:        r.CI.Hi,
		CILevel:     r.CI.Level,
		ESS:         r.ESS,
		Samples:     r.Samples,
		SearchEvals: r.SearchEvals,
		Failures:    r.Failures,
		Converged:   r.Converged,
	}
	if !math.IsInf(r.RelHalfWidth, 1) {
		rel := r.RelHalfWidth
		dto.RelHalfWidth = &rel
	}
	return dto
}

// yieldContract builds the estimator contract from request parameters
// and server limits.
func (s *Server) yieldContract(yp yieldParams) yield.Contract {
	return yield.Contract{
		RelErr:     yp.ci, // 0 = package default ±1%
		MaxSamples: s.cfg.YieldMaxSamples,
		Batch:      s.cfg.YieldBatch,
	}
}

// processSpec reconstructs the synthetic electrical model behind a
// served arc, when there is one: the cell name must resolve in the
// synthetic cell set and the related pin must map back to an arc the way
// libbuild assigns pins. The estimate is then a golden-model tail
// probability over the full spice process space — independent of the
// fitted distribution the analytic answer uses. When several arcs share
// the related pin the lowest-indexed one is taken as the pin's
// representative; the corner is the TT corner every shipped library is
// characterised at. Uploaded third-party libraries have no electrical
// model and fall back to the fitted-model latent space.
func processSpec(ra *resolvedArc, aq arcQuery, clock float64) (yield.Spec, bool) {
	ct, ok := cells.CellByName(ra.cell.Name)
	if !ok {
		return yield.Spec{}, false
	}
	pinIdx := -1
	for i, p := range libbuild.InputPins(ct.Inputs) {
		if p == ra.arc.RelatedPin {
			pinIdx = i
			break
		}
	}
	arcs := ct.Arcs()
	if pinIdx < 0 || pinIdx >= len(arcs) {
		return yield.Spec{}, false
	}
	metric := yield.MetricDelay
	if strings.Contains(aq.base, "transition") {
		metric = yield.MetricTransition
	}
	return yield.FromArc(arcs[pinIdx].Elec, spice.TTCorner(), metric, aq.slew, aq.load, clock), true
}

// estimateArcYield runs the requested estimator for a GET /v1/yield
// query. An importance-sampling rung that cannot arm (no failure region
// within its search budget) degrades to a plain-MC partial estimate —
// tagged in the response and the X-LVF2-Degraded header — whose CI is
// the honest wide bound rather than a silent failure. Deadline expiry
// mid-estimate surfaces as Converged=false with the partial CI.
func (s *Server) estimateArcYield(ctx context.Context, ra *resolvedArc, aq arcQuery, d stats.Dist, clock float64, yp yieldParams) *yieldEstimateDTO {
	spec, space := processSpec(ra, aq, clock)
	spaceName := "process"
	if !space {
		spec = yield.FromDist(d, clock)
		spaceName = "latent"
	}
	contract := s.yieldContract(yp)
	est, _ := yield.New(yp.estimator)
	res, err := est.Estimate(ctx, spec, contract)
	var deg *degradedDTO
	if err != nil {
		deg = &degradedDTO{Rung: "mc", Requested: yp.estimator, Reason: err.Error()}
		s.degradedTotal.Inc("mc")
		mcEst, _ := yield.New("mc")
		res, _ = mcEst.Estimate(ctx, spec, contract)
	}
	dto := dtoFromEstimate(res, spaceName)
	dto.Degraded = deg
	return dto
}

// estimateNetlistYield combines per-output latent-space estimates into a
// chip-level yield for one model family, under the same independence
// approximation as sta.YieldAtClock: Y = Π yᵢ, with the interval
// propagated by the delta method (hw_Y = Y·√Σ(hwᵢ/yᵢ)²). Sample spend is
// summed; the answer converges only if every output converged.
func (s *Server) estimateNetlistYield(ctx context.Context, res *sta.Result, mod *netlist.Module, fam fit.Model, clock float64, yp yieldParams) (*yieldEstimateDTO, error) {
	contract := s.yieldContract(yp)
	est, _ := yield.New(yp.estimator)
	combined := &yieldEstimateDTO{
		Estimator: yp.estimator,
		Space:     "latent",
		Yield:     1,
		Converged: true,
		CILevel:   contract.WithDefaults().Level,
	}
	var relVar float64
	relFinite := true
	for _, out := range mod.Outputs() {
		a, ok := res.Arrivals[out]
		if !ok {
			continue
		}
		v, ok := a.Vars[fam]
		if !ok || v == nil {
			return nil, badRequest("output %q has no %v arrival", out, fam)
		}
		r, err := est.Estimate(ctx, yield.FromDist(v.Dist(), clock), contract)
		if err != nil {
			// Latent specs clamp their threshold inside the searchable
			// radius, so this is unreachable in practice; fail loudly if a
			// future spec breaks that invariant.
			return nil, err
		}
		combined.Outputs++
		combined.Yield *= r.Yield
		combined.Samples += r.Samples
		combined.SearchEvals += r.SearchEvals
		combined.Failures += r.Failures
		combined.ESS += r.ESS
		combined.Converged = combined.Converged && r.Converged
		if r.Yield > 0 {
			relVar += (r.HalfWidth / r.Yield) * (r.HalfWidth / r.Yield)
		} else {
			relFinite = false
		}
	}
	if combined.Outputs == 0 {
		return nil, badRequest("no primary output arrivals")
	}
	combined.FailProb = 1 - combined.Yield
	hw := combined.Yield * math.Sqrt(relVar)
	if !relFinite {
		hw = 1
	}
	combined.StdErr = hw / zScore95(combined.CILevel)
	combined.Variance = combined.StdErr * combined.StdErr
	combined.CILo = math.Max(0, combined.FailProb-hw)
	combined.CIHi = math.Min(1, combined.FailProb+hw)
	if combined.FailProb > 0 {
		rel := hw / combined.FailProb
		combined.RelHalfWidth = &rel
	}
	return combined, nil
}

// zScore95 is the two-sided normal critical value of the level (the
// yield package computes the same internally; the netlist combiner needs
// it to back out a standard error from a propagated half-width).
func zScore95(level float64) float64 {
	return stats.StdNormQuantile(0.5 + level/2)
}
