package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lvf2/internal/modelcache"
)

// fleetMembers builds a membership document over replica ids with the
// harness's synthetic URLs.
func fleetMembers(epoch uint64, ids ...string) Membership {
	m := Membership{Epoch: epoch}
	for _, id := range ids {
		m.Members = append(m.Members, Peer{ID: id, URL: replURL(id)})
	}
	return m
}

// postJSON drives one JSON POST through a handler.
func postJSON(t testing.TB, h http.Handler, url string, body []byte) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

// postMembershipDoc CAS-posts a membership document to one replica.
func postMembershipDoc(t testing.TB, h http.Handler, m Membership) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return postJSON(t, h, "/v1/fleet/membership", b)
}

// warmGridLocally computes the full replication grid on one replica via
// marked requests (which never forward), so its cache holds every key
// regardless of ownership.
func warmGridLocally(t testing.TB, s *Server) {
	t.Helper()
	for _, u := range replGridURLs() {
		req := httptest.NewRequest(http.MethodGet, u, nil)
		req.Header.Set(forwardedFromHeader, "test")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("warm query %s = %d", u, rec.Code)
		}
	}
}

// driveGrid sends the full grid through s as ordinary client traffic,
// failing on any non-200.
func driveGrid(t testing.TB, s *Server) {
	t.Helper()
	for _, u := range replGridURLs() {
		rec, body := get(t, s.Handler(), u)
		if rec.Code != http.StatusOK {
			t.Fatalf("grid query %s = %d: %s", u, rec.Code, body)
		}
	}
}

// ----------------------------------------------------------- document

func TestParseMembership(t *testing.T) {
	doc := []byte(`{"epoch": 3, "members": [
		{"id": "a", "url": "http://replica-a/"},
		{"id": "b", "url": "http://replica-b"}]}`)
	m, err := ParseMembership(doc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 3 || len(m.Members) != 2 {
		t.Fatalf("parsed %+v", m)
	}
	if m.Members[0].URL != "http://replica-a" {
		t.Fatalf("trailing slash survived: %q", m.Members[0].URL)
	}
	if !m.Has("a") || m.Has("z") {
		t.Fatal("Has is wrong")
	}

	bad := map[string]string{
		"no_members": `{"epoch": 1, "members": []}`,
		"no_id":      `{"epoch": 1, "members": [{"url": "http://x"}]}`,
		"dup_id":     `{"epoch": 1, "members": [{"id":"a","url":"http://x"},{"id":"a","url":"http://y"}]}`,
		"dup_url":    `{"epoch": 1, "members": [{"id":"a","url":"http://x"},{"id":"b","url":"http://x"}]}`,
		"bad_scheme": `{"epoch": 1, "members": [{"id":"a","url":"ftp://x"}]}`,
		"url_path":   `{"epoch": 1, "members": [{"id":"a","url":"http://x/api"}]}`,
		"not_json":   `epoch: 1`,
	}
	for name, doc := range bad {
		if _, err := ParseMembership([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMembershipEqual(t *testing.T) {
	a := fleetMembers(2, "a", "b")
	b := fleetMembers(2, "b", "a") // order must not matter
	if !a.equal(b) {
		t.Fatal("order-permuted documents compare unequal")
	}
	if a.equal(fleetMembers(3, "a", "b")) {
		t.Fatal("different epochs compare equal")
	}
	if a.equal(fleetMembers(2, "a", "c")) {
		t.Fatal("different member sets compare equal")
	}
}

// --------------------------------------------------------- CAS endpoint

// TestMembershipCAS pins the admin endpoint's contract: GET returns the
// installed document; POST accepts exactly epoch current+1, answers an
// identical redelivery idempotently, and rejects everything else with a
// 409 carrying the authoritative document.
func TestMembershipCAS(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b", "c"}, ft, ft, nil)
	a := f.server("a")

	rec, body := get(t, a.Handler(), "/v1/fleet/membership")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET membership = %d: %s", rec.Code, body)
	}
	cur := decode[Membership](t, body)
	if cur.Epoch != 0 || len(cur.Members) != 3 {
		t.Fatalf("boot membership = %+v", cur)
	}

	// Epoch skip: rejected with the current document in the body.
	rec, body = postMembershipDoc(t, a.Handler(), fleetMembers(2, "a", "b"))
	if rec.Code != http.StatusConflict {
		t.Fatalf("epoch-skip POST = %d, want 409", rec.Code)
	}
	conflict := decode[membershipConflict](t, body)
	if conflict.Current.Epoch != 0 {
		t.Fatalf("409 body carries epoch %d, want 0", conflict.Current.Epoch)
	}
	if a.repl.epoch() != 0 {
		t.Fatal("rejected POST still moved the epoch")
	}

	// The valid successor: epoch 1, c dropped.
	next := fleetMembers(1, "a", "b")
	rec, body = postMembershipDoc(t, a.Handler(), next)
	if rec.Code != http.StatusOK {
		t.Fatalf("CAS POST = %d: %s", rec.Code, body)
	}
	if a.repl.epoch() != 1 {
		t.Fatalf("epoch after CAS = %d, want 1", a.repl.epoch())
	}
	v := a.repl.view()
	if got := fmt.Sprint(v.ring.Members()); got != "[a b]" {
		t.Fatalf("ring members after CAS = %s", got)
	}
	if v.prev == nil {
		t.Fatal("CAS adoption did not open a transition window")
	}
	if n := a.repl.transitions.Value(); n != 1 {
		t.Fatalf("transitions counter = %d, want 1", n)
	}

	// Identical redelivery: acknowledged, no second transition.
	rec, _ = postMembershipDoc(t, a.Handler(), next)
	if rec.Code != http.StatusOK {
		t.Fatalf("redelivered POST = %d, want 200", rec.Code)
	}
	if n := a.repl.transitions.Value(); n != 1 {
		t.Fatalf("redelivery moved the transition counter to %d", n)
	}

	// Stale epoch: rejected.
	rec, _ = postMembershipDoc(t, a.Handler(), fleetMembers(0, "a", "b", "c"))
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale POST = %d, want 409", rec.Code)
	}

	// One anti-entropy round closes the transition window.
	a.AntiEntropyOnce(context.Background())
	if a.repl.view().prev != nil {
		t.Fatal("anti-entropy round left the transition window open")
	}
}

// --------------------------------------------------- epoch propagation

// TestEpochPropagationViaForwarding: a replica that adopted a newer
// membership stamps its epoch on forwarded requests; the lagging owner
// pulls the newer document before serving. No probe loop involved.
func TestEpochPropagationViaForwarding(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a, b := f.server("a"), f.server("b")

	// Only a learns of epoch 1 (same members, pure version bump).
	rec, _ := postMembershipDoc(t, a.Handler(), fleetMembers(1, "a", "b"))
	if rec.Code != http.StatusOK {
		t.Fatal("CAS on a failed")
	}
	if b.repl.epoch() != 0 {
		t.Fatal("b learned the epoch without any traffic")
	}
	// Any forwarded request from a carries the epoch; b adopts in-line.
	rec, _ = get(t, a.Handler(), urlOwnedBy(t, a, "b"))
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded query = %d", rec.Code)
	}
	if b.repl.epoch() != 1 {
		t.Fatalf("b epoch after forwarded request = %d, want 1", b.repl.epoch())
	}
}

// TestEpochPropagationViaProbe: the /readyz probe body advertises the
// epoch, so a lagging replica catches up on its next probe round even
// with zero client traffic.
func TestEpochPropagationViaProbe(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a, b := f.server("a"), f.server("b")

	rec, _ := postMembershipDoc(t, a.Handler(), fleetMembers(1, "a", "b"))
	if rec.Code != http.StatusOK {
		t.Fatal("CAS on a failed")
	}
	b.ProbePeersOnce(context.Background())
	if b.repl.epoch() != 1 {
		t.Fatalf("b epoch after probe round = %d, want 1", b.repl.epoch())
	}
	if a.repl.epoch() != 1 {
		t.Fatalf("a epoch moved to %d", a.repl.epoch())
	}
}

// ------------------------------------------------------- graceful join

// TestGracefulJoinWarmSeed runs the full join sequence: a new replica
// boots with an epoch-1 document including itself, announces it to the
// incumbents, pulls its newly-owned ranges from their previous owners,
// and serves them warm from the first request.
func TestGracefulJoinWarmSeed(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a, b := f.server("a"), f.server("b")
	driveGrid(t, a) // warm the epoch-0 fleet: every key sits with its owner

	// Boot d from the successor document. The harness fleet stays
	// untouched; d is wired onto the same transport.
	doc := fleetMembers(1, "a", "b", "d")
	cfg := Config{
		FitSamples: 300,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		now:        f.clk.Now,
		Replication: ReplicationOptions{
			SelfID:          "d",
			SelfURL:         replURL("d"),
			Membership:      &doc,
			ForwardTimeout:  2 * time.Second,
			ForwardAttempts: 2,
			RetryBase:       time.Millisecond,
			ProbeInterval:   time.Hour,
			Client:          f.client,
		},
	}
	d := New(cfg)
	if d.repl == nil {
		t.Fatal("membership boot did not enable replication")
	}
	if _, err := d.AddLibrary("testlib", testLibText(t, "testlib")); err != nil {
		t.Fatal(err)
	}
	d.Bootstrap()
	ft.set(replHost("d"), d.Handler())

	// While warming, load balancers must hold traffic.
	d.repl.warming.Store(true)
	rec, body := get(t, d.Handler(), "/readyz")
	if rec.Code != http.StatusServiceUnavailable || decode[readyzResponse](t, body).Status != "warming" {
		t.Fatalf("warming readyz = %d %s", rec.Code, body)
	}
	d.repl.warming.Store(false)

	n := d.JoinFleet(context.Background())
	if n == 0 {
		t.Fatal("join warm-seeded nothing")
	}
	// The announce moved the incumbents to epoch 1.
	if a.repl.epoch() != 1 || b.repl.epoch() != 1 {
		t.Fatalf("incumbent epochs after join = %d/%d, want 1/1", a.repl.epoch(), b.repl.epoch())
	}
	if got := fmt.Sprint(a.repl.view().ring.Members()); got != "[a b d]" {
		t.Fatalf("a's ring after join = %s", got)
	}

	// Every d-owned key must serve warm: minimal movement means each one
	// was owned (and warmed) by a or b at epoch 0 and travelled over in
	// the join pull.
	var dOwned []string
	for _, u := range replGridURLs() {
		if ownerOf(t, d, u) == "d" {
			dOwned = append(dOwned, u)
		}
	}
	if len(dOwned) == 0 {
		t.Fatal("grid has no d-owned URLs")
	}
	st := d.cache.ModelStats()
	for _, u := range dOwned {
		rec, _ := get(t, d.Handler(), u)
		if rec.Code != http.StatusOK {
			t.Fatalf("post-join query %s = %d", u, rec.Code)
		}
	}
	after := d.cache.ModelStats()
	if misses := after.Misses - st.Misses; misses != 0 {
		t.Fatalf("post-join replay of %d owned URLs recomputed %d keys; want all warm", len(dOwned), misses)
	}
}

// ------------------------------------------------------ graceful drain

// TestFleetDrainHandsOffKeys runs the graceful-leave sequence: the
// drained replica pushes every cached model to its next-epoch owner,
// the survivors adopt the shrunk membership, and the handed-off ranges
// stay warm — the whole fleet keeps answering 200 throughout.
func TestFleetDrainHandsOffKeys(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b", "c"}, ft, ft, nil)
	a, b, c := f.server("a"), f.server("b"), f.server("c")
	driveGrid(t, a) // every key warm at its epoch-0 owner

	rec, body := postJSON(t, c.Handler(), "/v1/fleet/drain", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("drain = %d: %s", rec.Code, body)
	}
	resp := decode[drainResponse](t, body)
	if resp.Epoch != 1 || resp.HandedOff == 0 || resp.PeersUpdated != 2 {
		t.Fatalf("drain response = %+v", resp)
	}
	if n := c.repl.handoffModels.Value(); int(n) != resp.HandedOff {
		t.Fatalf("handoff counter = %d, response says %d", n, resp.HandedOff)
	}
	if !c.repl.view().drained {
		t.Fatal("drained replica still thinks it is a member")
	}
	if a.repl.epoch() != 1 || b.repl.epoch() != 1 {
		t.Fatalf("survivor epochs = %d/%d, want 1/1", a.repl.epoch(), b.repl.epoch())
	}
	if got := fmt.Sprint(a.repl.view().ring.Members()); got != "[a b]" {
		t.Fatalf("survivor ring = %s", got)
	}

	// The drained replica's readyz stays 200 but flags the state.
	rec, body = get(t, c.Handler(), "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("drained readyz = %d", rec.Code)
	}
	if r := decode[readyzResponse](t, body); r.Status != "drained" || !r.Ring.Drained {
		t.Fatalf("drained readyz body = %s", body)
	}

	// Handed-off ranges serve warm: replaying the grid through a must
	// not trigger a single new fit anywhere in the fleet.
	missesBefore := a.cache.ModelStats().Misses + b.cache.ModelStats().Misses
	driveGrid(t, a)
	missesAfter := a.cache.ModelStats().Misses + b.cache.ModelStats().Misses
	if missesAfter != missesBefore {
		t.Fatalf("post-drain grid recomputed %d keys; handoff should have kept them warm", missesAfter-missesBefore)
	}

	// Drain is idempotent.
	rec, body = postJSON(t, c.Handler(), "/v1/fleet/drain", nil)
	if rec.Code != http.StatusOK || decode[drainResponse](t, body).Note == "" {
		t.Fatalf("second drain = %d %s", rec.Code, body)
	}

	// The drained replica still answers client traffic correctly — every
	// miss forwards to the current owner or computes locally.
	driveGrid(t, c)
}

// TestFleetDrainLastMemberRefused: the final member has nowhere to hand
// its keys; the drain is refused, the fleet document stands.
func TestFleetDrainLastMemberRefused(t *testing.T) {
	doc := fleetMembers(0, "a")
	cfg := Config{
		FitSamples: 300,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		Replication: ReplicationOptions{
			SelfID:     "a",
			SelfURL:    replURL("a"),
			Membership: &doc,
		},
	}
	s := New(cfg)
	if s.repl == nil {
		t.Fatal("single-member membership boot failed")
	}
	s.Bootstrap()
	rec, body := postJSON(t, s.Handler(), "/v1/fleet/drain", nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("last-member drain = %d: %s", rec.Code, body)
	}
	if s.repl.epoch() != 0 || s.repl.view().drained {
		t.Fatal("refused drain still mutated the fleet")
	}
}

// -------------------------------------------------------- anti-entropy

// TestAntiEntropyRepairsDivergence: a peer holds models this replica
// owns but lost; one digest-exchange round detects the divergence and
// re-seeds exactly once, after which repeated rounds are no-ops.
func TestAntiEntropyRepairsDivergence(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a, b := f.server("a"), f.server("b")
	warmGridLocally(t, b) // b holds everything, including a-owned keys

	if n := a.cache.ModelStats().Entries; n != 0 {
		t.Fatalf("a starts with %d entries", n)
	}
	repaired := a.AntiEntropyOnce(context.Background())
	if repaired == 0 {
		t.Fatal("anti-entropy repaired nothing")
	}
	if n := a.repl.aeRepaired.Value(); int(n) != repaired {
		t.Fatalf("aeRepaired counter = %d, want %d", n, repaired)
	}
	if a.repl.aeRounds.Value() != 1 {
		t.Fatalf("aeRounds = %d, want 1", a.repl.aeRounds.Value())
	}

	// Owned keys now serve warm.
	st := a.cache.ModelStats()
	for _, u := range replGridURLs() {
		if ownerOf(t, a, u) == "a" {
			rec, _ := get(t, a.Handler(), u)
			if rec.Code != http.StatusOK {
				t.Fatalf("post-repair query %s = %d", u, rec.Code)
			}
		}
	}
	if after := a.cache.ModelStats(); after.Misses != st.Misses {
		t.Fatalf("post-repair replay recomputed %d keys", after.Misses-st.Misses)
	}

	// Convergence: the next round finds identical digests and moves nothing.
	if again := a.AntiEntropyOnce(context.Background()); again != 0 {
		t.Fatalf("second round repaired %d models; want 0", again)
	}
}

// ------------------------------------------------------- config watch

// TestMembershipConfigWatch: an operator edit of the membership file is
// picked up by the poll (mtime + SHA-256), adopted locally and announced
// to the fleet; garbage in the file is rejected without touching the
// installed document.
func TestMembershipConfigWatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "membership.json")
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, func(id string, c *Config) {
		if id == "a" {
			c.Replication.MembershipPath = path
		}
	})
	a, b := f.server("a"), f.server("b")
	ctx := context.Background()

	a.CheckMembershipFile(ctx) // no file yet: a quiet no-op
	if a.repl.epoch() != 0 {
		t.Fatal("missing file moved the epoch")
	}

	doc, err := json.Marshal(fleetMembers(1, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	a.CheckMembershipFile(ctx)
	if a.repl.epoch() != 1 {
		t.Fatalf("a epoch after watch = %d, want 1", a.repl.epoch())
	}
	if b.repl.epoch() != 1 {
		t.Fatalf("watch adoption was not announced: b epoch = %d", b.repl.epoch())
	}
	// The adopted document is persisted back (restart boots at epoch 1).
	m, err := LoadMembershipFile(path)
	if err != nil || m.Epoch != 1 {
		t.Fatalf("persisted document = %+v, %v", m, err)
	}

	// Re-polling the same content is a no-op; garbage is rejected.
	a.CheckMembershipFile(ctx)
	if a.repl.epoch() != 1 {
		t.Fatal("re-poll moved the epoch")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	a.CheckMembershipFile(ctx)
	if a.repl.epoch() != 1 {
		t.Fatal("garbage file moved the epoch")
	}
}

// -------------------------------------------------------------- jitter

// TestLoopJitter pins the seeded startup jitter: deterministic per
// (replica, salt), inside [0, interval), and actually spread — distinct
// replicas and distinct loops must not fire in lockstep.
func TestLoopJitter(t *testing.T) {
	const interval = 2 * time.Second
	ids := []string{"replica-a", "replica-b", "replica-c", "replica-d"}
	seen := map[time.Duration]bool{}
	for _, id := range ids {
		j := loopJitter(id, probeJitterSalt, interval)
		if j != loopJitter(id, probeJitterSalt, interval) {
			t.Fatalf("jitter for %s is not deterministic", id)
		}
		if j < 0 || j >= interval {
			t.Fatalf("jitter for %s = %v outside [0, %v)", id, j, interval)
		}
		seen[j] = true
	}
	if len(seen) != len(ids) {
		t.Fatalf("only %d distinct jitters across %d replicas", len(seen), len(ids))
	}
	// Distinct loops of one replica land on distinct phases too.
	probe := loopJitter("replica-a", probeJitterSalt, interval)
	ae := loopJitter("replica-a", antiEntropyJitterSalt, interval)
	watch := loopJitter("replica-a", membershipJitterSalt, interval)
	if probe == ae || probe == watch || ae == watch {
		t.Fatalf("loop phases collide: probe=%v ae=%v watch=%v", probe, ae, watch)
	}
	if loopJitter("replica-a", probeJitterSalt, 0) != 0 {
		t.Fatal("zero interval must mean zero jitter")
	}
}

// --------------------------------------------------- snapshot size caps

// TestPeerSnapshotMaxBytes pins the bounded export: a capped GET stays
// under the cap, keeps the newest entries, still decodes, and counts the
// truncation.
func TestPeerSnapshotMaxBytes(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a := f.server("a")
	warmGridLocally(t, a)

	rec, full := get(t, a.Handler(), "/v1/peer/snapshot?owner=b")
	if rec.Code != http.StatusOK {
		t.Fatalf("uncapped export = %d", rec.Code)
	}
	fullEntries, err := modelcache.DecodeSnapshot(full)
	if err != nil || len(fullEntries) < 2 {
		t.Fatalf("uncapped export: %d entries, %v", len(fullEntries), err)
	}

	cap := len(full) - 1 // force at least one entry out
	rec, capped := get(t, a.Handler(), fmt.Sprintf("/v1/peer/snapshot?owner=b&max_bytes=%d", cap))
	if rec.Code != http.StatusOK {
		t.Fatalf("capped export = %d", rec.Code)
	}
	if len(capped) > cap {
		t.Fatalf("capped export is %d bytes, cap %d", len(capped), cap)
	}
	cappedEntries, err := modelcache.DecodeSnapshot(capped)
	if err != nil {
		t.Fatalf("capped export does not decode: %v", err)
	}
	if len(cappedEntries) == 0 || len(cappedEntries) >= len(fullEntries) {
		t.Fatalf("capped export kept %d of %d entries", len(cappedEntries), len(fullEntries))
	}
	// Newest-first: the kept entries are the tail of the full export.
	offset := len(fullEntries) - len(cappedEntries)
	for i, e := range cappedEntries {
		if e.Key != fullEntries[offset+i].Key {
			t.Fatalf("capped export is not the newest suffix (entry %d)", i)
		}
	}
	if n := a.repl.snapTruncated.Value(); n == 0 {
		t.Fatal("truncation counter did not move")
	}
	rec, _ = get(t, a.Handler(), "/v1/peer/snapshot?owner=b&max_bytes=0")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("max_bytes=0 = %d, want 400", rec.Code)
	}
}

// TestFetchSnapshotClientSideCap pins the client-side guard: a donor
// that ignores the cap — huge declared Content-Length or a huge
// undeclared body — is rejected before its payload can balloon the
// puller's heap.
func TestFetchSnapshotClientSideCap(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, func(id string, c *Config) {
		c.Replication.SnapshotMaxBytes = 4 << 10
	})
	a := f.server("a")

	// A rogue donor host that streams 1 MiB regardless of max_bytes.
	rogue := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(bytes.Repeat([]byte{0xAB}, 1<<20))
	})
	ft.set("replica-rogue", rogue)
	_, err := a.repl.fetchSnapshotSlice(context.Background(), Peer{ID: "rogue", URL: "http://replica-rogue"})
	if err == nil {
		t.Fatal("oversize donor body was accepted")
	}
}
