package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lvf2/internal/faultinject"
	"lvf2/internal/mc"
)

// Replicated-serving chaos harness. Each seed expands deterministically
// into a fault script replayed against a three-replica in-process fleet
// whose peer links run through a FaultTransport (refused connections,
// dropped responses, corrupted and truncated bodies, stalls, asymmetric
// partitions) while replicas are killed and restarted mid-flight. The
// invariant checked on every single client-facing response:
//
//   - the status is 200 — never a 5xx, no matter which replicas are
//     dead or partitioned (a single-replica outage must be invisible),
//   - the body is bit-identical to a single-process oracle server with
//     no replication and no faults: forwarding, checksum-guarded relay
//     and local fallback may change *where* a model is fitted but never
//     *what* comes back,
//   - no handler on any replica, past or present, ever panics.
//
// The deterministic epilogue is the acceptance sequence from the issue:
// warm the fleet, kill one replica, prove zero 5xx and oracle-identical
// bodies throughout the outage, restart the victim, and prove it
// recovers ≥90% of its owned keys warm via the peer snapshot seed.
//
// On failure the expanded script is written as JSON (CHAOS_ARTIFACT_DIR
// or the system temp dir) so the exact run can be replayed with
// -replchaos.seed.
var (
	replChaosSeeds = flag.Int("replchaos.seeds", 3, "how many randomized fleet chaos scripts TestChaosReplicatedServing replays")
	replChaosSeed  = flag.Int64("replchaos.seed", 0, "replay only this fleet chaos seed (0 = run -replchaos.seeds scripts)")
)

func TestChaosReplicatedServing(t *testing.T) {
	seeds := make([]uint64, 0, *replChaosSeeds)
	if *replChaosSeed != 0 {
		seeds = append(seeds, uint64(*replChaosSeed))
	} else {
		for i := 0; i < *replChaosSeeds; i++ {
			seeds = append(seeds, uint64(2000+7*i))
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runReplChaosScript(t, seed)
		})
	}
}

func runReplChaosScript(t *testing.T, seed uint64) {
	script := &chaosScript{Seed: seed}
	defer func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("CHAOS_ARTIFACT_DIR")
		if dir == "" {
			dir = os.TempDir()
		}
		_ = os.MkdirAll(dir, 0o755)
		path := filepath.Join(dir, fmt.Sprintf("replchaos-failure-seed-%d.json", seed))
		b, _ := json.MarshalIndent(script, "", "  ")
		if err := os.WriteFile(path, b, 0o644); err == nil {
			t.Logf("replchaos: failing fault script written to %s (replay with -replchaos.seed=%d)", path, seed)
		}
	}()

	rng := mc.NewRNG(seed)
	ids := []string{"a", "b", "c"}
	ft := newFleetTransport()
	faults := faultinject.NewFaultTransport(ft, faultinject.NetFaults{
		PErrBefore:   0.08,
		PDropAfter:   0.05,
		PCorruptBody: 0.08,
		PShortBody:   0.05,
		PStall:       0.03,
		Stall:        5 * time.Millisecond,
	}, rng.Uint64())
	f := newTestFleet(t, ids, ft, faults, nil)

	// Every server that ever lived, for the final no-panics sweep.
	var everyServer []*Server
	for _, id := range ids {
		everyServer = append(everyServer, f.server(id))
	}

	// The oracle: one standalone server, no replication, no faults,
	// same fit configuration. Replication must be invisible in the
	// bytes, so every fleet response is compared against it.
	solo := newTestServer(t, func(c *Config) { c.FitSamples = 300 })
	solo.Bootstrap()
	oracleMemo := map[string][]byte{}
	oracle := func(url string) []byte {
		if b, ok := oracleMemo[url]; ok {
			return b
		}
		rec, body := get(t, solo.Handler(), url)
		if rec.Code != http.StatusOK {
			t.Fatalf("oracle refused %s: %d %s", url, rec.Code, body)
		}
		oracleMemo[url] = body
		return body
	}

	grid := replGridURLs()
	randomURL := func() string { return grid[rng.Intn(len(grid))] }
	dead := "" // at most one replica down at a time
	live := func() []string {
		var out []string
		for _, id := range ids {
			if id != dead {
				out = append(out, id)
			}
		}
		return out
	}

	for step := 0; step < 30; step++ {
		switch p := rng.Float64(); {
		case p < 0.55: // concurrent traffic burst against random live replicas
			targets := live()
			urls := make([]string, 4)
			vias := make([]string, 4)
			for i := range urls {
				urls[i] = randomURL()
				vias[i] = targets[rng.Intn(len(targets))]
				oracle(urls[i]) // memoize serially, outside the goroutines
			}
			script.Steps = append(script.Steps, chaosStep{Op: "query", URLs: urls, Note: "via " + strings.Join(vias, ",")})
			recs := make([]*httptest.ResponseRecorder, len(urls))
			var wg sync.WaitGroup
			for i := range urls {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rec := httptest.NewRecorder()
					f.handler(vias[i]).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, urls[i], nil))
					recs[i] = rec
				}()
			}
			wg.Wait()
			for i, rec := range recs {
				checkReplChaosResponse(t, urls[i], vias[i], rec, oracle(urls[i]))
			}
		case p < 0.65: // asymmetric partition toggle
			var blocked []string
			for _, id := range live() {
				if rng.Float64() < 0.4 {
					blocked = append(blocked, replHost(id))
				}
			}
			faults.SetPartition(blocked...)
			script.Steps = append(script.Steps, chaosStep{Op: "set_partition", Note: strings.Join(blocked, ",")})
		case p < 0.75: // breaker clock jump
			d := time.Duration(200+rng.Intn(3000)) * time.Millisecond
			f.clk.Advance(d)
			script.Steps = append(script.Steps, chaosStep{Op: "advance_clock", Dur: d.String()})
		case p < 0.85: // health-probe tick on every live replica
			script.Steps = append(script.Steps, chaosStep{Op: "probe_tick"})
			for _, id := range live() {
				f.server(id).ProbePeersOnce(context.Background())
			}
		case p < 0.92: // periodic snapshot tick on one live replica
			targets := live()
			id := targets[rng.Intn(len(targets))]
			err := f.server(id).SaveSnapshot()
			note := id + ": ok"
			if err != nil {
				note = id + ": " + err.Error()
			}
			script.Steps = append(script.Steps, chaosStep{Op: "save_snapshot", Note: note})
		default: // kill -9 one replica, or bring the dead one back
			if dead == "" {
				targets := live()
				dead = targets[rng.Intn(len(targets))]
				f.kill(dead)
				script.Steps = append(script.Steps, chaosStep{Op: "kill", Note: dead})
			} else {
				everyServer = append(everyServer, f.restart(dead))
				script.Steps = append(script.Steps, chaosStep{Op: "restart", Note: dead})
				dead = ""
			}
		}
		if t.Failed() {
			return
		}
	}

	// ------------------------------------------------- acceptance epilogue

	// Heal everything: no partitions, full fleet, fresh probe round.
	script.Steps = append(script.Steps, chaosStep{Op: "epilogue_heal"})
	faults.SetPartition()
	if dead != "" {
		everyServer = append(everyServer, f.restart(dead))
		dead = ""
	}
	for _, id := range ids {
		f.server(id).ProbePeersOnce(context.Background())
	}

	// Warm pass: the whole grid through replica a. Every answer must
	// already be oracle-identical, faults and all.
	script.Steps = append(script.Steps, chaosStep{Op: "epilogue_warm_pass"})
	for _, u := range grid {
		rec, body := get(t, f.handler("a"), u)
		if rec.Code != http.StatusOK || !bytes.Equal(body, oracle(u)) {
			t.Fatalf("warm pass %s: code %d, oracle match %v", u, rec.Code, bytes.Equal(body, oracle(u)))
		}
	}

	// Kill one replica and replay the full grid through the survivors:
	// zero 5xx (zero non-200, in fact) and every body bit-identical.
	victim := ids[rng.Intn(len(ids))]
	script.Steps = append(script.Steps, chaosStep{Op: "epilogue_kill", Note: victim})
	f.kill(victim)
	dead = victim
	survivors := live()
	var victimOwned []string
	for _, u := range grid {
		if ownerOf(t, f.server(survivors[0]), u) == victim {
			victimOwned = append(victimOwned, u)
		}
	}
	if len(victimOwned) == 0 {
		t.Fatalf("ring assigned no grid keys to %s; widen the grid", victim)
	}
	for i, u := range grid {
		via := survivors[i%len(survivors)]
		rec, body := get(t, f.handler(via), u)
		if rec.Code != http.StatusOK {
			t.Fatalf("outage pass %s via %s: code %d (single-replica outage must be invisible): %s", u, via, rec.Code, body)
		}
		if !bytes.Equal(body, oracle(u)) {
			t.Fatalf("outage pass %s via %s: body differs from oracle", u, via)
		}
	}

	// Restart the victim. Warm-seed must pull its owned slice back from
	// the survivors' fallback caches, and replaying its owned URLs must
	// be ≥90% warm — no refits for keys the fleet already knows.
	script.Steps = append(script.Steps, chaosStep{Op: "epilogue_restart", Note: victim})
	restarted := f.restart(victim)
	everyServer = append(everyServer, restarted)
	if n := restarted.repl.warmSeeded.Value(); n == 0 {
		t.Fatal("restart warm-seed restored zero models from the survivors")
	}
	before := restarted.cache.ModelStats()
	for _, u := range victimOwned {
		rec, body := get(t, f.handler(victim), u)
		if rec.Code != http.StatusOK || !bytes.Equal(body, oracle(u)) {
			t.Fatalf("post-restart replay %s: code %d, oracle match %v", u, rec.Code, bytes.Equal(body, oracle(u)))
		}
	}
	after := restarted.cache.ModelStats()
	hits, misses := after.Hits-before.Hits, after.Misses-before.Misses
	if hits+misses == 0 || float64(hits)/float64(hits+misses) < 0.9 {
		t.Fatalf("post-restart warm-hit ratio %d/%d < 0.9: warm-seed did not recover the owned slice", hits, hits+misses)
	}

	// The fleet survived the whole script and no handler on any replica
	// generation ever panicked.
	for i, srv := range everyServer {
		if n := srv.metrics.Panics.Value(); n != 0 {
			t.Errorf("server %d recovered %d handler panics, want 0", i, n)
		}
	}
}

// checkReplChaosResponse enforces the per-response fleet invariant:
// always 200, always the oracle's bytes, and any forward tag must be a
// known outcome.
func checkReplChaosResponse(t *testing.T, url, via string, rec *httptest.ResponseRecorder, want []byte) {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Errorf("GET %s via %s: status %d (fleet must never surface a fault): %s", url, via, rec.Code, rec.Body.Bytes())
		return
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("GET %s via %s: body differs from single-process oracle\n got: %s\nwant: %s", url, via, rec.Body.Bytes(), want)
	}
	switch fwd := rec.Header().Get(forwardHeader); fwd {
	case "", forwardOutcomeForwarded, forwardOutcomeFallback:
	default:
		t.Errorf("GET %s via %s: unknown %s value %q", url, via, forwardHeader, fwd)
	}
}
