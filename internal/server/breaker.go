package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"lvf2/internal/mc"
	"lvf2/internal/obs"
)

// Fit circuit breaker. A burst of pathological fit requests (degenerate
// table points, contaminated refits) used to pin workers re-running the
// same doomed EM fits; the breaker short-circuits them. One breaker per
// (library hash, cell): a cell whose table data breaks the fitters is a
// persistent property of that cell, while the rest of the library keeps
// fitting normally.
//
// States follow the classic closed → open → half-open machine:
//
//	closed    fits run; FailureThreshold consecutive failures open it
//	open      fits are skipped and requests answer from the degraded
//	          ladder until the (jittered, exponentially backed-off)
//	          open interval elapses
//	half-open one probe fit is admitted; success closes the breaker,
//	          failure re-opens it with doubled backoff
//
// The clock is injectable (Config.now) so the chaos suite drives state
// transitions deterministically without sleeping, and the jitter RNG is
// seeded so a chaos run is reproducible from its seed alone.

// BreakerOptions tunes the per-(library,cell) fit circuit breaker.
// The zero value selects the defaults.
type BreakerOptions struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// OpenBase is the first open interval (default 1s). Each half-open
	// probe failure doubles it, capped at OpenMax.
	OpenBase time.Duration
	// OpenMax caps the exponential backoff (default 30s).
	OpenMax time.Duration
	// JitterSeed seeds the deterministic backoff jitter (default 1).
	JitterSeed uint64
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.OpenBase <= 0 {
		o.OpenBase = time.Second
	}
	if o.OpenMax <= 0 {
		o.OpenMax = 30 * time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	return o
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// breaker is the state of one (library, cell) fit path. All fields are
// guarded by the owning breakerSet's mutex: transitions are rare and
// cheap, and one lock keeps the jitter RNG draw atomic with the state
// change.
type breaker struct {
	state       breakerState
	consecFails int
	backoff     time.Duration
	openUntil   time.Time
	probing     bool // a half-open probe fit is in flight
}

// breakerSet owns every breaker plus the shared clock, jitter RNG and
// transition metrics. It is generic over the breaker key: the fit path
// keys breakers by (library hash, cell), the replication layer by peer
// ID — same state machine, different failure domain.
type breakerSet[K comparable] struct {
	mu    sync.Mutex
	byKey map[K]*breaker
	opts  BreakerOptions
	now   func() time.Time
	rng   *mc.RNG

	transitions *obs.CounterVec // by target state
}

type breakerKey struct{ libHash, cell string }

// newBreakerSet builds a breaker set registering metrics under
// <prefix>_transitions_total and <prefix>_open; what names one breaker's
// failure domain (a fit path, a peer link).
func newBreakerSet[K comparable](opts BreakerOptions, now func() time.Time, reg *obs.Registry, prefix, what string) *breakerSet[K] {
	opts = opts.withDefaults()
	bs := &breakerSet[K]{
		byKey: map[K]*breaker{},
		opts:  opts,
		now:   now,
		rng:   mc.NewRNG(opts.JitterSeed | 1),
		transitions: obs.NewCounterVec(reg, prefix+"_transitions_total",
			what+" circuit breaker transitions by target state", "state"),
	}
	obs.NewGaugeFunc(reg, prefix+"_open", what+" breakers currently open or half-open",
		func() float64 { return float64(bs.openCount()) })
	return bs
}

func (bs *breakerSet[K]) openCount() int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	n := 0
	for _, b := range bs.byKey {
		if b.state != breakerClosed {
			n++
		}
	}
	return n
}

// get returns the breaker for a (library, cell), creating it closed.
// Caller holds bs.mu.
func (bs *breakerSet[K]) get(k K) *breaker {
	b, ok := bs.byKey[k]
	if !ok {
		b = &breaker{backoff: bs.opts.OpenBase}
		bs.byKey[k] = b
	}
	return b
}

// jittered spreads an interval over [d, 1.5d) so a herd of breakers
// opened by one outage does not re-probe in lockstep. Caller holds bs.mu.
func (bs *breakerSet[K]) jittered(d time.Duration) time.Duration {
	return d + time.Duration(bs.rng.Float64()*0.5*float64(d))
}

// allow reports whether a fit may run for key right now. probe is true
// when the admitted fit is the single half-open probe; the caller must
// report its outcome via done so the probe slot is released.
func (bs *breakerSet[K]) allow(k K) (ok, probe bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(k)
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if bs.now().Before(b.openUntil) {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		bs.transitions.Inc(breakerHalfOpen.String())
		return true, true
	case breakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// done records the outcome of an admitted fit. Success closes the
// breaker; failure counts toward the threshold (closed) or re-opens
// with doubled backoff (half-open probe). A ctx-cancelled fit whose
// client simply went away is neutral — it neither heals nor damns the
// fit path — but a deadline expiry counts as a failure: slow fits are
// exactly what the breaker exists to shed.
func (bs *breakerSet[K]) done(k K, probe bool, err error) {
	neutral := errors.Is(err, context.Canceled)
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(k)
	if probe {
		b.probing = false
	}
	switch {
	case err == nil:
		if b.state != breakerClosed {
			bs.transitions.Inc(breakerClosed.String())
		}
		b.state = breakerClosed
		b.consecFails = 0
		b.backoff = bs.opts.OpenBase
	case neutral:
		// No state change; a half-open breaker will admit another probe.
	case b.state == breakerHalfOpen:
		if probe {
			b.backoff = min(2*b.backoff, bs.opts.OpenMax)
		}
		b.state = breakerOpen
		b.openUntil = bs.now().Add(bs.jittered(b.backoff))
		bs.transitions.Inc(breakerOpen.String())
	case b.state == breakerClosed:
		b.consecFails++
		if b.consecFails >= bs.opts.FailureThreshold {
			b.state = breakerOpen
			b.openUntil = bs.now().Add(bs.jittered(b.backoff))
			bs.transitions.Inc(breakerOpen.String())
		}
	}
}

// stateOf snapshots one breaker's state (tests and /metrics helpers).
func (bs *breakerSet[K]) stateOf(k K) breakerState {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if b, ok := bs.byKey[k]; ok {
		return b.state
	}
	return breakerClosed
}

// heal force-closes the breaker for k. The replication layer calls it
// when a background /readyz probe finds a peer alive again, so recovery
// latency is one probe interval rather than a full backoff window.
func (bs *breakerSet[K]) heal(k K) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.byKey[k]
	if !ok || b.state == breakerClosed {
		return
	}
	b.state = breakerClosed
	b.consecFails = 0
	b.backoff = bs.opts.OpenBase
	b.probing = false
	bs.transitions.Inc(breakerClosed.String())
}
