package server

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"lvf2/internal/faultinject"
)

// replayQueries is the fixed traffic mix the warm-restart test replays:
// refit kinds across both cells and grid points, so the snapshot has
// real fitted models to carry across the restart.
var replayQueries = []string{
	"/v1/arc/binning?lib=testlib&cell=INV&kind=norm2",
	"/v1/arc/binning?lib=testlib&cell=INV&kind=gaussian",
	"/v1/arc/binning?lib=testlib&cell=INV&kind=norm2&slew=0.05&load=0.008",
	"/v1/arc/binning?lib=testlib&cell=NAND2&kind=norm2",
	"/v1/arc/binning?lib=testlib&cell=NAND2&kind=ln",
	"/v1/arc/cdf?lib=testlib&cell=INV&kind=norm2&base=rise_transition",
	"/v1/yield?lib=testlib&cell=NAND2&kind=gaussian&from=B",
	"/v1/arc/cdf?lib=testlib&cell=NAND2&kind=lvf2",
}

func mustGet(t *testing.T, h http.Handler, url string) []byte {
	t.Helper()
	rec, body := get(t, h, url)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, rec.Code, body)
	}
	return body
}

func TestReadyzGatesOnBootstrap(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec, body := get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(string(body), "starting") {
		t.Fatalf("/readyz before Bootstrap = %d %q, want 503 starting", rec.Code, body)
	}
	// Liveness is unconditional: the process is up even while warming.
	if rec, _ := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200 regardless of readiness", rec.Code)
	}
	s.Bootstrap()
	rec, body = get(t, h, "/readyz")
	if rec.Code != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("/readyz after Bootstrap = %d %q, want 200 ready", rec.Code, body)
	}
}

// TestSnapshotWarmRestart is the kill(-9)-and-restart acceptance check:
// traffic warms the cache, a periodic snapshot lands, the process dies
// without a drain, and the restarted server must answer the same replay
// with a warm-hit ratio of at least 90% of the pre-kill warm replay.
func TestSnapshotWarmRestart(t *testing.T) {
	mfs := faultinject.NewMemFS()
	const snap = "state/models.lvf2snap"
	mkServer := func() *Server {
		return newTestServer(t, func(c *Config) {
			c.SnapshotPath = snap
			c.FS = mfs
		})
	}

	s1 := mkServer()
	s1.Bootstrap()
	h1 := s1.Handler()
	for _, q := range replayQueries {
		mustGet(t, h1, q)
	}
	// Pre-kill warm replay: every query hits.
	before := s1.cache.ModelStats().Hits
	for _, q := range replayQueries {
		mustGet(t, h1, q)
	}
	warmHits := s1.cache.ModelStats().Hits - before
	if warmHits != int64(len(replayQueries)) {
		t.Fatalf("warm replay hits = %d, want %d", warmHits, len(replayQueries))
	}
	// The periodic ticker fires...
	if err := s1.SaveSnapshot(); err != nil {
		t.Fatalf("snapshot save: %v", err)
	}
	// ...and then the process is killed: no drain, s1 is simply abandoned.

	s2 := mkServer()
	s2.Bootstrap()
	if got := s2.snapRestores.Value(); got != 1 {
		t.Fatalf("snapshot restores = %d, want 1", got)
	}
	h2 := s2.Handler()
	before = s2.cache.ModelStats().Hits
	for _, q := range replayQueries {
		body := mustGet(t, h2, q)
		if strings.Contains(string(body), `"degraded"`) {
			t.Fatalf("restored server degraded a replay query: %s", body)
		}
	}
	restoredHits := s2.cache.ModelStats().Hits - before
	if ratio := float64(restoredHits) / float64(warmHits); ratio < 0.9 {
		t.Fatalf("post-restore warm-hit ratio = %.2f (%d/%d), want >= 0.90",
			ratio, restoredHits, warmHits)
	}
}

// TestCorruptSnapshotBootsCold plants damaged snapshots and checks the
// daemon refuses them, counts the exact acceptance metric, and serves
// fresh fits anyway.
func TestCorruptSnapshotBootsCold(t *testing.T) {
	const snap = "state/models.lvf2snap"

	// Build one genuine snapshot to damage.
	mfs := faultinject.NewMemFS()
	s0 := newTestServer(t, func(c *Config) { c.SnapshotPath = snap; c.FS = mfs })
	s0.Bootstrap()
	mustGet(t, s0.Handler(), replayQueries[0])
	if err := s0.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	good, err := mfs.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"garbage":   []byte("LVF2SNAP but not really; definitely not a snapshot"),
		"truncated": good[:len(good)-7],
		"bitflip": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)/2] ^= 0x01
			return b
		}(),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			mfs := faultinject.NewMemFS()
			mfs.WriteFile(snap, data)
			s := newTestServer(t, func(c *Config) { c.SnapshotPath = snap; c.FS = mfs })
			s.Bootstrap() // must not panic or fail the boot
			if got := s.snapRestoreFailures.Value(); got != 1 {
				t.Fatalf("restore failures = %d, want 1", got)
			}
			h := s.Handler()
			_, metrics := get(t, h, "/metrics")
			if !strings.Contains(string(metrics), "lvf2_snapshot_restore_failures_total 1") {
				t.Fatalf("/metrics missing lvf2_snapshot_restore_failures_total 1:\n%s", metrics)
			}
			if st := s.cache.ModelStats(); st.Entries != 0 {
				t.Fatalf("cache has %d entries after rejected restore, want cold", st.Entries)
			}
			mustGet(t, h, replayQueries[0]) // cold but serving
		})
	}
}

// TestDegradedServingUnderFitOutage drives the fit path to a 100%
// injected failure rate: every answer must stay 200 with an explicit
// degraded tag, the breaker must open (stopping fit attempts), and once
// the outage ends the breaker must probe, close, and restore full fits.
func TestDegradedServingUnderFitOutage(t *testing.T) {
	ff := faultinject.NewFitFault(1.0, 0, 7)
	clk := faultinject.NewClock(time.Time{})
	s := newTestServer(t, func(c *Config) {
		c.fitFault = ff.Inject
		c.now = clk.Now
		c.Breaker = BreakerOptions{FailureThreshold: 2, OpenBase: time.Second, JitterSeed: 3}
	})
	s.Bootstrap()
	h := s.Handler()
	const q = "/v1/arc/binning?lib=testlib&cell=INV&kind=norm2"

	for i := 0; i < 10; i++ {
		rec, body := get(t, h, q)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d during outage: code = %d (want 200 degraded): %s", i, rec.Code, body)
		}
		if got := rec.Header().Get("X-LVF2-Degraded"); got != "LVF" {
			t.Fatalf("request %d: X-LVF2-Degraded = %q, want LVF", i, got)
		}
		resp := decode[binningResponse](t, body)
		if resp.Degraded == nil || resp.Degraded.Rung != "LVF" || resp.Degraded.Requested != "Norm2" {
			t.Fatalf("request %d: degraded tag = %+v", i, resp.Degraded)
		}
		if resp.Model.Kind != "LVF" {
			t.Fatalf("request %d: model kind = %s, want the degraded LVF", i, resp.Model.Kind)
		}
	}
	// The breaker opened at the threshold: only 2 fit attempts ever ran.
	if fails := ff.Fails(); fails != 2 {
		t.Fatalf("injected fit failures = %d, want exactly the breaker threshold 2", fails)
	}
	bk := breakerKey{libHash: s.byName["testlib"].hash, cell: "INV"}
	if st := s.breakers.stateOf(bk); st != breakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	_, metrics := get(t, h, "/metrics")
	if !strings.Contains(string(metrics), `lvf2d_degraded_answers_total{rung="LVF"} 10`) {
		t.Fatalf("/metrics missing degraded counter:\n%s", metrics)
	}

	// Outage ends; after the backoff the probe heals the breaker.
	ff.SetFailProb(0)
	clk.Advance(2 * time.Second)
	rec, body := get(t, h, q)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-outage probe: code = %d: %s", rec.Code, body)
	}
	if got := rec.Header().Get("X-LVF2-Degraded"); got != "" {
		t.Fatalf("post-outage answer still degraded: %q", got)
	}
	if resp := decode[binningResponse](t, body); resp.Model.Kind != "Norm2" || resp.Degraded != nil {
		t.Fatalf("post-outage model = %s degraded=%+v, want full Norm2", resp.Model.Kind, resp.Degraded)
	}
	if st := s.breakers.stateOf(bk); st != breakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", st)
	}
}

// TestShedWhenDeadlineCannotCoverFit: once the observed fit latency
// exceeds the remaining request budget, cold refits are answered 503 +
// Retry-After immediately; warm and table paths keep serving.
func TestShedWhenDeadlineCannotCoverFit(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RequestTimeout = 50 * time.Millisecond })
	s.Bootstrap()
	s.fitCost.observe(10 * time.Second) // pretend fits are slow
	h := s.Handler()

	rec, body := get(t, h, "/v1/arc/binning?lib=testlib&cell=INV&kind=norm2")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold refit code = %d, want 503 shed: %s", rec.Code, body)
	}
	ra := rec.Header().Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}
	if got := s.shedTotal.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	// Table-interpolated kinds carry no fit cost and must not shed.
	mustGet(t, h, "/v1/arc/binning?lib=testlib&cell=INV&kind=lvf2")
}
