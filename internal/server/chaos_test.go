package server

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lvf2/internal/faultinject"
	"lvf2/internal/mc"
)

// Chaos harness. Each seed expands deterministically into a fault
// script — a sequence of traffic bursts, fit outages, clock jumps,
// snapshot saves, snapshot corruptions and kill-and-restart events —
// replayed against a server whose filesystem and fit path are both
// fault-injected. The invariants checked on every single response:
//
//   - no panic escapes a handler (the process survives; the recovered
//     panic counter stays at zero),
//   - every response is a 200 that decodes to finite numbers (possibly
//     explicitly degraded, with body tag and header agreeing) or a
//     clean 503 — never a 500, never a torn body,
//   - a restart never serves stale-checksum snapshot data: a corrupted
//     snapshot boots cold and counts a restore failure.
//
// On failure the expanded script is written as JSON (CHAOS_ARTIFACT_DIR
// or the system temp dir) so the exact run can be studied and replayed
// with -chaos.seed.
var (
	chaosSeeds = flag.Int("chaos.seeds", 3, "how many randomized chaos scripts TestChaosServing replays")
	chaosSeed  = flag.Int64("chaos.seed", 0, "replay only this chaos seed (0 = run -chaos.seeds scripts)")
)

// chaosStep is one recorded script event (also the failure artifact).
type chaosStep struct {
	Op   string   `json:"op"`
	URLs []string `json:"urls,omitempty"`
	Prob float64  `json:"prob,omitempty"`
	Dur  string   `json:"dur,omitempty"`
	Note string   `json:"note,omitempty"`
}

type chaosScript struct {
	Seed  uint64      `json:"seed"`
	Steps []chaosStep `json:"steps"`
}

func TestChaosServing(t *testing.T) {
	seeds := make([]uint64, 0, *chaosSeeds)
	if *chaosSeed != 0 {
		seeds = append(seeds, uint64(*chaosSeed))
	} else {
		for i := 0; i < *chaosSeeds; i++ {
			seeds = append(seeds, uint64(1000+7*i))
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosScript(t, seed)
		})
	}
}

func runChaosScript(t *testing.T, seed uint64) {
	script := &chaosScript{Seed: seed}
	defer func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("CHAOS_ARTIFACT_DIR")
		if dir == "" {
			dir = os.TempDir()
		}
		_ = os.MkdirAll(dir, 0o755)
		path := filepath.Join(dir, fmt.Sprintf("chaos-failure-seed-%d.json", seed))
		b, _ := json.MarshalIndent(script, "", "  ")
		if err := os.WriteFile(path, b, 0o644); err == nil {
			t.Logf("chaos: failing fault script written to %s (replay with -chaos.seed=%d)", path, seed)
		}
	}()

	rng := mc.NewRNG(seed)
	mfs := faultinject.NewMemFS()
	ffs := faultinject.NewFaultFS(mfs, faultinject.DiskFaults{
		PWriteErr:    0.10,
		PShortWrite:  0.10,
		PSyncErr:     0.05,
		PRenameErr:   0.05,
		PReadErr:     0.10,
		PCorruptRead: 0.10,
	}, rng.Uint64())
	ff := faultinject.NewFitFault(0, 0, rng.Uint64())
	clk := faultinject.NewClock(time.Time{})
	const snap = "state/models.lvf2snap"

	var servers []*Server
	mkServer := func() *Server {
		s := newTestServer(t, func(c *Config) {
			c.FitSamples = 300
			c.SnapshotPath = snap
			c.FS = ffs
			c.fitFault = ff.Inject
			c.now = clk.Now
			c.Breaker = BreakerOptions{FailureThreshold: 2, OpenBase: time.Second, JitterSeed: rng.Uint64()}
		})
		servers = append(servers, s)
		return s
	}
	s := mkServer()
	s.Bootstrap()
	h := s.Handler()

	cells := []string{"INV", "NAND2"}
	kinds := []string{"lvf", "lvf2", "norm2", "gaussian", "ln", "lsn"}
	slews := []float64{0.01, 0.02, 0.05}
	loads := []float64{0.002, 0.004, 0.008}
	endpoints := []string{"/v1/arc/cdf", "/v1/arc/binning", "/v1/yield"}
	randomURL := func() string {
		url := fmt.Sprintf("%s?lib=testlib&cell=%s&kind=%s&slew=%g&load=%g",
			endpoints[rng.Intn(len(endpoints))], cells[rng.Intn(len(cells))],
			kinds[rng.Intn(len(kinds))], slews[rng.Intn(len(slews))], loads[rng.Intn(len(loads))])
		if rng.Float64() < 0.3 {
			url += "&base=rise_transition"
		}
		return url
	}

	corrupted := false // snapshot on disk is known-damaged
	for step := 0; step < 30; step++ {
		switch p := rng.Float64(); {
		case p < 0.60: // concurrent traffic burst
			urls := make([]string, 4)
			for i := range urls {
				urls[i] = randomURL()
			}
			script.Steps = append(script.Steps, chaosStep{Op: "query", URLs: urls})
			recs := make([]*httptest.ResponseRecorder, len(urls))
			var wg sync.WaitGroup
			for i, url := range urls {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
					recs[i] = rec
				}()
			}
			wg.Wait()
			for i, rec := range recs {
				checkChaosResponse(t, urls[i], rec)
			}
		case p < 0.70: // fit outage toggles
			prob := 0.0
			if rng.Float64() < 0.6 {
				prob = 1.0
			}
			ff.SetFailProb(prob)
			script.Steps = append(script.Steps, chaosStep{Op: "set_fit_fail_prob", Prob: prob})
		case p < 0.80: // breaker clock jump
			d := time.Duration(200+rng.Intn(3000)) * time.Millisecond
			clk.Advance(d)
			script.Steps = append(script.Steps, chaosStep{Op: "advance_clock", Dur: d.String()})
		case p < 0.88: // periodic snapshot tick (may hit disk faults)
			err := s.SaveSnapshot()
			note := "ok"
			if err != nil {
				note = err.Error()
			} else {
				corrupted = false
			}
			script.Steps = append(script.Steps, chaosStep{Op: "save_snapshot", Note: note})
		case p < 0.94: // corrupt whatever snapshot is on disk
			if b, err := mfs.ReadFile(snap); err == nil && len(b) > 0 {
				b[rng.Intn(len(b))] ^= 1 << uint(rng.Intn(8))
				mfs.WriteFile(snap, b)
				corrupted = true
				script.Steps = append(script.Steps, chaosStep{Op: "corrupt_snapshot"})
			}
		default: // kill -9 and restart
			script.Steps = append(script.Steps, chaosStep{Op: "kill_and_restart"})
			s = mkServer()
			s.Bootstrap()
			h = s.Handler()
			if corrupted && s.snapRestores.Value() > 0 {
				t.Fatalf("step %d: restart restored a snapshot with a bad checksum", step)
			}
			if corrupted {
				if st := s.cache.ModelStats(); st.Entries != 0 {
					t.Fatalf("step %d: %d cache entries served from damaged snapshot", step, st.Entries)
				}
				corrupted = false // restore path never rewrites; next save refreshes it
			}
		}
		if t.Failed() {
			return
		}
	}

	// Deterministic epilogue (the acceptance sequence): a total fit
	// outage must yield only explicitly-degraded 200s until the breaker
	// opens, and once the faults stop the breaker must probe, close, and
	// hand back full-fidelity answers.
	script.Steps = append(script.Steps, chaosStep{Op: "epilogue_outage_recovery"})
	ff.SetFailProb(1)
	bk := breakerKey{libHash: s.byName["testlib"].hash, cell: "INV"}
	for i := 0; i < 6; i++ {
		// Unique grid points force cold refits (cache hits would mask the outage).
		url := fmt.Sprintf("/v1/arc/binning?lib=testlib&cell=INV&kind=norm2&slew=%g", 0.0131+float64(i)*1e-4)
		rec, body := get(t, h, url)
		if rec.Code != http.StatusOK {
			t.Fatalf("epilogue outage query %d: code = %d (want 200 degraded, never 5xx): %s", i, rec.Code, body)
		}
		if rec.Header().Get("X-LVF2-Degraded") == "" {
			t.Fatalf("epilogue outage query %d: missing degraded tag: %s", i, body)
		}
	}
	if st := s.breakers.stateOf(bk); st != breakerOpen {
		t.Fatalf("breaker state after total outage = %v, want open", st)
	}
	ff.SetFailProb(0)
	clk.Advance(90 * time.Second) // clears any jittered backoff (OpenMax 30s default)
	rec, body := get(t, h, "/v1/arc/binning?lib=testlib&cell=INV&kind=norm2&slew=0.0199")
	if rec.Code != http.StatusOK || rec.Header().Get("X-LVF2-Degraded") != "" {
		t.Fatalf("post-outage probe = %d degraded=%q, want full-fidelity 200: %s",
			rec.Code, rec.Header().Get("X-LVF2-Degraded"), body)
	}
	if st := s.breakers.stateOf(bk); st != breakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", st)
	}

	// The process survived the whole script and no handler ever panicked.
	for i, srv := range servers {
		if n := srv.metrics.Panics.Value(); n != 0 {
			t.Errorf("server %d recovered %d handler panics, want 0", i, n)
		}
	}
}

// checkChaosResponse enforces the per-response chaos invariant.
func checkChaosResponse(t *testing.T, url string, rec *httptest.ResponseRecorder) {
	t.Helper()
	switch rec.Code {
	case http.StatusOK:
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Errorf("GET %s: 200 with undecodable body: %v\n%s", url, err, rec.Body.Bytes())
			return
		}
		if _, hasErr := m["error"]; hasErr {
			t.Errorf("GET %s: 200 carrying an error body: %s", url, rec.Body.Bytes())
		}
		for _, field := range []string{"mean", "std", "clock"} {
			if v, ok := m[field].(float64); ok && (math.IsNaN(v) || math.IsInf(v, 0)) {
				t.Errorf("GET %s: non-finite %s in 200 body: %v", url, field, v)
			}
		}
		hdr := rec.Header().Get("X-LVF2-Degraded")
		if deg, ok := m["degraded"].(map[string]any); ok {
			rung, _ := deg["rung"].(string)
			if rung == "" || hdr != rung {
				t.Errorf("GET %s: degraded body rung %q vs header %q", url, rung, hdr)
			}
		} else if hdr != "" {
			t.Errorf("GET %s: X-LVF2-Degraded=%q without a degraded body tag", url, hdr)
		}
	case http.StatusServiceUnavailable:
		// Clean shed/overload: allowed, body is JSON error or plain text.
	default:
		t.Errorf("GET %s: status %d (want 200 or clean 503): %s", url, rec.Code, rec.Body.Bytes())
	}
}
