package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lvf2/internal/faultinject"
	"lvf2/internal/mc"
)

// Fleet-churn chaos harness (the acceptance suite of DESIGN.md §17).
// Each seed expands deterministically into a script of membership events
// — graceful joins, graceful drains with key handoff, crash-leaves with
// operator-confirmed epoch bumps, kill/restart cycles — interleaved with
// concurrent client traffic over faulty peer links. The invariants, on
// every client-facing response across every epoch:
//
//   - the status is 200, no matter which replicas are mid-join,
//     mid-drain, dead or partitioned,
//   - the body is bit-identical to a single-process oracle with no
//     replication and no faults: reconfiguration may move where a model
//     is fitted, never what comes back,
//   - within one anti-entropy round of each rebalance, every live
//     replica serves ≥90% of its owned keys warm (no refits for keys
//     the fleet already knows),
//   - no handler on any replica generation ever panics.
//
// On failure the expanded script is written as JSON (CHAOS_ARTIFACT_DIR
// or the system temp dir) for replay with -churnchaos.seed.
var (
	churnChaosSeeds = flag.Int("churnchaos.seeds", 3, "how many randomized fleet-churn scripts TestChaosFleetChurn replays")
	churnChaosSeed  = flag.Int64("churnchaos.seed", 0, "replay only this fleet-churn seed (0 = run -churnchaos.seeds scripts)")
)

func TestChaosFleetChurn(t *testing.T) {
	seeds := make([]uint64, 0, *churnChaosSeeds)
	if *churnChaosSeed != 0 {
		seeds = append(seeds, uint64(*churnChaosSeed))
	} else {
		for i := 0; i < *churnChaosSeeds; i++ {
			seeds = append(seeds, uint64(5000+11*i))
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChurnChaosScript(t, seed)
		})
	}
}

// churnFaults is the fault mix applied during traffic phases. Membership
// operations run quiet (an operator reconfigures when the fleet is
// reachable); the crash-leave composite exercises the non-quiet path.
var churnFaults = faultinject.NetFaults{
	PErrBefore:   0.06,
	PDropAfter:   0.04,
	PCorruptBody: 0.06,
	PShortBody:   0.04,
	PStall:       0.02,
	Stall:        5 * time.Millisecond,
}

// churnFleet is a dynamically sized in-process fleet: replicas boot from
// epoch-versioned membership documents and enter or leave while traffic
// flows.
type churnFleet struct {
	t       testing.TB
	ft      *fleetTransport
	faults  *faultinject.FaultTransport
	client  *http.Client
	clk     *faultinject.Clock
	servers map[string]*Server // live replicas
	every   []*Server          // every generation, for the no-panics sweep
	doc     Membership         // the operator's latest membership document
	nextID  int
}

func newChurnFleet(t testing.TB, seed uint64) *churnFleet {
	ft := newFleetTransport()
	f := &churnFleet{
		t:       t,
		ft:      ft,
		faults:  faultinject.NewFaultTransport(ft, churnFaults, seed),
		clk:     faultinject.NewClock(time.Time{}),
		servers: map[string]*Server{},
		doc:     Membership{Epoch: 0},
	}
	f.client = &http.Client{Transport: f.faults}
	ids := []string{"a", "b", "c"}
	f.nextID = len(ids)
	for _, id := range ids {
		f.doc.Members = append(f.doc.Members, Peer{ID: id, URL: replURL(id)})
	}
	for _, id := range ids {
		f.boot(id, f.doc)
	}
	return f
}

// boot starts one replica from a membership document and registers it on
// the fleet network.
func (f *churnFleet) boot(id string, doc Membership) *Server {
	f.t.Helper()
	doc = doc.clone()
	cfg := Config{
		FitSamples: 300,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		now:        f.clk.Now,
		Replication: ReplicationOptions{
			SelfID:          id,
			SelfURL:         replURL(id),
			Membership:      &doc,
			ForwardTimeout:  2 * time.Second,
			ForwardAttempts: 2,
			RetryBase:       time.Millisecond,
			ProbeInterval:   time.Hour, // loops are driven explicitly
			Breaker:         BreakerOptions{FailureThreshold: 3, OpenBase: time.Second, JitterSeed: 1},
			Client:          f.client,
		},
	}
	s := New(cfg)
	if s.repl == nil {
		f.t.Fatalf("replica %s: membership boot failed", id)
	}
	if _, err := s.AddLibrary("testlib", testLibText(f.t, "testlib")); err != nil {
		f.t.Fatal(err)
	}
	s.Bootstrap()
	f.servers[id] = s
	f.every = append(f.every, s)
	f.ft.set(replHost(id), s.Handler())
	return s
}

func (f *churnFleet) kill(id string) {
	f.ft.set(replHost(id), nil)
	delete(f.servers, id)
}

func (f *churnFleet) live() []string {
	ids := make([]string, 0, len(f.servers))
	for id := range f.servers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (f *churnFleet) server(id string) *Server {
	s, ok := f.servers[id]
	if !ok {
		f.t.Fatalf("churn: replica %s is dead", id)
	}
	return s
}

// anyLive returns a deterministic live replica (the first in ID order).
func (f *churnFleet) anyLive() *Server { return f.server(f.live()[0]) }

// quiet clears peer-link faults (and partitions) for a membership
// operation; noisy restores the chaos mix.
func (f *churnFleet) quiet() {
	f.faults.SetFaults(faultinject.NetFaults{})
	f.faults.SetPartition()
}

func (f *churnFleet) noisy() { f.faults.SetFaults(churnFaults) }

// probeAll runs one probe round on every live replica — the epoch
// catch-up and breaker-heal path after any membership event.
func (f *churnFleet) probeAll(ctx context.Context) {
	for _, id := range f.live() {
		f.server(id).ProbePeersOnce(ctx)
	}
}

// antiEntropyAll runs one digest-exchange round on every live replica —
// the warmth-repair path the ≥90% invariant is measured after.
func (f *churnFleet) antiEntropyAll(ctx context.Context) {
	for _, id := range f.live() {
		f.server(id).AntiEntropyOnce(ctx)
	}
}

func runChurnChaosScript(t *testing.T, seed uint64) {
	script := &chaosScript{Seed: seed}
	defer func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("CHAOS_ARTIFACT_DIR")
		if dir == "" {
			dir = os.TempDir()
		}
		_ = os.MkdirAll(dir, 0o755)
		path := filepath.Join(dir, fmt.Sprintf("churnchaos-failure-seed-%d.json", seed))
		b, _ := json.MarshalIndent(script, "", "  ")
		if err := os.WriteFile(path, b, 0o644); err == nil {
			t.Logf("churnchaos: failing script written to %s (replay with -churnchaos.seed=%d)", path, seed)
		}
	}()

	rng := mc.NewRNG(seed)
	f := newChurnFleet(t, rng.Uint64())
	ctx := context.Background()

	// The oracle: one standalone server, no replication, no faults.
	solo := newTestServer(t, func(c *Config) { c.FitSamples = 300 })
	solo.Bootstrap()
	oracleMemo := map[string][]byte{}
	oracle := func(url string) []byte {
		if b, ok := oracleMemo[url]; ok {
			return b
		}
		rec, body := get(t, solo.Handler(), url)
		if rec.Code != http.StatusOK {
			t.Fatalf("oracle refused %s: %d %s", url, rec.Code, body)
		}
		oracleMemo[url] = body
		return body
	}
	grid := replGridURLs()

	// trafficBurst fires concurrent queries at random live replicas under
	// the active fault mix; every response must be a 200 with the
	// oracle's bytes.
	trafficBurst := func(n int) {
		targets := f.live()
		urls := make([]string, n)
		vias := make([]string, n)
		for i := range urls {
			urls[i] = grid[rng.Intn(len(grid))]
			vias[i] = targets[rng.Intn(len(targets))]
			oracle(urls[i]) // memoize serially, outside the goroutines
		}
		script.Steps = append(script.Steps, chaosStep{Op: "query", URLs: urls, Note: "via " + strings.Join(vias, ",")})
		recs := make([]*httptest.ResponseRecorder, n)
		var wg sync.WaitGroup
		for i := range urls {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rec := httptest.NewRecorder()
				f.server(vias[i]).Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, urls[i], nil))
				recs[i] = rec
			}()
		}
		wg.Wait()
		for i, rec := range recs {
			checkReplChaosResponse(t, urls[i], vias[i], rec, oracle(urls[i]))
		}
	}

	// checkWarmth enforces the post-rebalance invariant: one probe round,
	// one anti-entropy round, then every live replica must serve ≥90% of
	// its owned grid keys warm.
	checkWarmth := func(event string) {
		f.quiet()
		f.probeAll(ctx)
		f.antiEntropyAll(ctx)
		for _, id := range f.live() {
			s := f.server(id)
			var owned []string
			for _, u := range grid {
				if ownerOf(t, s, u) == id {
					owned = append(owned, u)
				}
			}
			if len(owned) == 0 {
				continue // tiny fleets can leave a member with no grid keys
			}
			before := s.cache.ModelStats()
			for _, u := range owned {
				rec, body := get(t, s.Handler(), u)
				if rec.Code != http.StatusOK || !bytes.Equal(body, oracle(u)) {
					t.Fatalf("%s: owned replay %s on %s: code %d, oracle match %v",
						event, u, id, rec.Code, bytes.Equal(body, oracle(u)))
				}
			}
			after := s.cache.ModelStats()
			hits, misses := after.Hits-before.Hits, after.Misses-before.Misses
			if hits+misses > 0 && float64(hits)/float64(hits+misses) < 0.9 {
				t.Fatalf("%s: replica %s warm-hit ratio %d/%d < 0.9 one anti-entropy round after the rebalance",
					event, id, hits, hits+misses)
			}
		}
		f.noisy()
	}

	// epochOf returns the operator's next epoch: one past the highest the
	// fleet has seen (drains advance it behind the operator's back).
	bumpDoc := func(members []Peer) Membership {
		high := f.doc.Epoch
		for _, id := range f.live() {
			if e := f.server(id).repl.epoch(); e > high {
				high = e
			}
		}
		return Membership{Epoch: high + 1, Members: members}
	}

	// outagePass serves the full grid through the survivors while a
	// replica is down: every answer must stay 200 and oracle-identical,
	// and the local fallbacks it forces are what keep the victim's keys
	// warm somewhere in the fleet for the recovery that follows.
	outagePass := func(event string) {
		survivors := f.live()
		for i, u := range grid {
			via := survivors[i%len(survivors)]
			rec, body := get(t, f.server(via).Handler(), u)
			if rec.Code != http.StatusOK || !bytes.Equal(body, oracle(u)) {
				t.Fatalf("%s outage %s via %s: code %d, oracle match %v",
					event, u, via, rec.Code, bytes.Equal(body, oracle(u)))
			}
		}
	}

	// Composite operations. Each models one operator runbook entry.

	// join: a brand-new replica enters via the graceful-join sequence.
	join := func() {
		id := fmt.Sprintf("j%d", f.nextID)
		f.nextID++
		f.quiet()
		doc := bumpDoc(append(append([]Peer(nil), currentMembers(f)...), Peer{ID: id, URL: replURL(id)}))
		s := f.boot(id, doc)
		script.Steps = append(script.Steps, chaosStep{Op: "join", Note: fmt.Sprintf("%s at epoch %d", id, doc.Epoch)})
		if n := s.JoinFleet(ctx); n == 0 {
			t.Fatalf("join %s: warm-seeded zero models from the incumbents", id)
		}
		f.doc = doc
		f.noisy()
		checkWarmth("join " + id)
	}

	// drain: a live replica hands off its keys and leaves gracefully.
	drain := func() {
		targets := f.live()
		victim := targets[rng.Intn(len(targets))]
		f.quiet()
		script.Steps = append(script.Steps, chaosStep{Op: "drain", Note: victim})
		rec, body := postJSON(t, f.server(victim).Handler(), "/v1/fleet/drain", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("drain %s = %d: %s", victim, rec.Code, body)
		}
		resp := decode[drainResponse](t, body)
		// The drained replica keeps serving until the operator retires
		// it; one last burst proves it still answers, then it goes away.
		recc, bodyc := get(t, f.server(victim).Handler(), grid[rng.Intn(len(grid))])
		if recc.Code != http.StatusOK {
			t.Fatalf("drained replica %s refused a client query: %d", victim, recc.Code)
		}
		_ = bodyc
		f.kill(victim)
		f.doc = bumpDocFromSurvivors(t, f, resp.Epoch)
		f.noisy()
		checkWarmth("drain " + victim)
	}

	// crashLeave: kill -9, survivors absorb the outage via local
	// fallback, then the operator confirms the leave with an epoch bump.
	crashLeave := func() {
		targets := f.live()
		victim := targets[rng.Intn(len(targets))]
		script.Steps = append(script.Steps, chaosStep{Op: "crash_leave", Note: victim})
		f.kill(victim)
		// Survivors take the full grid during the outage — victim-owned
		// keys land as local fallbacks, which is what keeps them warm for
		// the epoch bump that follows.
		outagePass("crash-leave")
		// Operator confirms the crash-leave: shrunk document, one epoch up.
		f.quiet()
		var rest []Peer
		for _, m := range f.doc.Members {
			if m.ID != victim {
				rest = append(rest, m)
			}
		}
		doc := bumpDoc(rest)
		rec, body := postMembershipDoc(t, f.anyLive().Handler(), doc)
		if rec.Code != http.StatusOK {
			t.Fatalf("crash-leave epoch bump = %d: %s", rec.Code, body)
		}
		f.probeAll(ctx) // spread the bump fleet-wide
		f.doc = doc
		f.noisy()
		checkWarmth("crash-leave " + victim)
	}

	// killRestart: same replica dies and comes back at the same epoch —
	// membership does not change, the restart protocol recovers warmth.
	killRestart := func() {
		targets := f.live()
		victim := targets[rng.Intn(len(targets))]
		script.Steps = append(script.Steps, chaosStep{Op: "kill_restart", Note: victim})
		f.kill(victim)
		outagePass("restart") // survivors absorb the full grid while it is down
		f.quiet()
		s := f.boot(victim, f.doc)
		s.WarmSeedFromPeers(ctx)
		s.ProbePeersOnce(ctx)
		f.noisy()
		checkWarmth("restart " + victim)
	}

	// Seed warmth: one quiet grid pass so epoch-0 owners hold their keys.
	f.quiet()
	for _, u := range grid {
		rec, body := get(t, f.anyLive().Handler(), u)
		if rec.Code != http.StatusOK || !bytes.Equal(body, oracle(u)) {
			t.Fatalf("seed pass %s: code %d", u, rec.Code)
		}
	}
	f.noisy()

	for step := 0; step < 12; step++ {
		switch p := rng.Float64(); {
		case p < 0.45:
			trafficBurst(4 + rng.Intn(4))
		case p < 0.55: // asymmetric partition toggle among live replicas
			var blocked []string
			for _, id := range f.live() {
				if rng.Float64() < 0.3 {
					blocked = append(blocked, replHost(id))
				}
			}
			f.faults.SetPartition(blocked...)
			script.Steps = append(script.Steps, chaosStep{Op: "set_partition", Note: strings.Join(blocked, ",")})
		case p < 0.62: // breaker clock jump
			d := time.Duration(200+rng.Intn(3000)) * time.Millisecond
			f.clk.Advance(d)
			script.Steps = append(script.Steps, chaosStep{Op: "advance_clock", Dur: d.String()})
		case p < 0.72:
			if len(f.live()) < 5 {
				join()
			} else {
				trafficBurst(4)
			}
		case p < 0.82:
			if len(f.live()) > 2 {
				drain()
			} else {
				join()
			}
		case p < 0.92:
			if len(f.live()) > 2 {
				crashLeave()
			} else {
				trafficBurst(4)
			}
		default:
			killRestart()
		}
		if t.Failed() {
			return
		}
	}

	// Epilogue: heal, converge, and prove the final fleet is coherent —
	// full grid 200 and oracle-identical through every live replica, all
	// replicas on one epoch, warm everywhere after one anti-entropy round.
	script.Steps = append(script.Steps, chaosStep{Op: "epilogue"})
	f.quiet()
	f.probeAll(ctx)
	f.antiEntropyAll(ctx)
	epochs := map[uint64]bool{}
	for _, id := range f.live() {
		epochs[f.server(id).repl.epoch()] = true
	}
	if len(epochs) != 1 {
		t.Fatalf("fleet did not converge on one epoch: %v", epochs)
	}
	for i, u := range grid {
		via := f.live()[i%len(f.live())]
		rec, body := get(t, f.server(via).Handler(), u)
		if rec.Code != http.StatusOK || !bytes.Equal(body, oracle(u)) {
			t.Fatalf("epilogue %s via %s: code %d, oracle match %v", u, via, rec.Code, bytes.Equal(body, oracle(u)))
		}
	}
	checkWarmth("epilogue")

	for i, srv := range f.every {
		if n := srv.metrics.Panics.Value(); n != 0 {
			t.Errorf("server generation %d recovered %d handler panics, want 0", i, n)
		}
	}
	_ = solo
}

// currentMembers returns the operator document's member list.
func currentMembers(f *churnFleet) []Peer { return f.doc.clone().Members }

// bumpDocFromSurvivors reads the post-drain document back from a
// survivor (the drain already advanced the fleet's epoch; the operator
// adopts the fleet's view rather than inventing a conflicting one).
func bumpDocFromSurvivors(t testing.TB, f *churnFleet, wantEpoch uint64) Membership {
	t.Helper()
	rec, body := get(t, f.anyLive().Handler(), "/v1/fleet/membership")
	if rec.Code != http.StatusOK {
		t.Fatalf("survivor membership GET = %d", rec.Code)
	}
	m := decode[Membership](t, body)
	if m.Epoch != wantEpoch {
		t.Fatalf("survivor membership epoch = %d, drain reported %d", m.Epoch, wantEpoch)
	}
	return m
}
