package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// BenchmarkServerBinningPostRebalance measures the serving path for a key
// that changed owner in a graceful drain: the previous owner handed its
// models to the next-epoch owners before leaving, so the new owner
// answers from its LRU — no refit. Read it against
// BenchmarkServerBinningWarm: a rebalance that preserves warmth should
// keep this stream at local-lookup cost, not cold-fit cost.
func BenchmarkServerBinningPostRebalance(b *testing.B) {
	ft := newFleetTransport()
	f := newTestFleet(b, []string{"a", "b", "c"}, ft, ft, nil)
	a := f.server("a")
	// Warm the whole fleet, note which grid keys c owns, then drain c so
	// its keys hand off to the epoch-1 owners.
	moved := []string{}
	for _, u := range replGridURLs() {
		if rec, body := get(b, a.Handler(), u); rec.Code != http.StatusOK {
			b.Fatalf("warm pass %s = %d: %s", u, rec.Code, body)
		}
		if ownerOf(b, a, u) == "c" {
			moved = append(moved, u)
		}
	}
	if rec, body := postJSON(b, f.server("c").Handler(), "/v1/fleet/drain", nil); rec.Code != http.StatusOK {
		b.Fatalf("drain = %d: %s", rec.Code, body)
	}
	a.ProbePeersOnce(context.Background())
	if len(moved) == 0 {
		b.Fatal("no grid keys owned by the drained replica")
	}
	url := moved[0]
	owner := f.server(ownerOf(b, a, url))
	before := owner.Cache().ModelStats()
	h := owner.Handler()
	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rec, _ := get(b, h, url)
		durs = append(durs, time.Since(t0))
		if rec.Code != http.StatusOK {
			b.Fatalf("iteration %d: code %d", i, rec.Code)
		}
	}
	b.StopTimer()
	if after := owner.Cache().ModelStats(); after.Misses != before.Misses {
		b.Fatalf("post-rebalance stream refitted %d models, want 0 (handoff must preserve warmth)",
			after.Misses-before.Misses)
	}
	b.ReportMetric(p50(durs), "p50-ms")
}

// benchURL is the acceptance-criteria query: a warm hit resolves entirely
// from the model LRU; a cold hit pays Liberty parse + load + model fit.
const benchURL = "/v1/arc/binning?lib=benchlib&cell=INV&slew=0.02&load=0.004"

// newBenchServer loads a realistically sized library — 24 cells over a
// 7x7 slew/load grid — so the cold path pays a representative Liberty
// parse + LVF² attribute load rather than a toy one.
func newBenchServer(b testing.TB) *Server {
	s := New(Config{FitSamples: 600})
	slews := []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32}
	loads := []float64{0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064}
	if _, err := s.AddLibrary("benchlib", libText(b, "benchlib", 22, slews, loads)); err != nil {
		b.Fatal(err)
	}
	return s
}

func benchRequest(b *testing.B, h http.Handler) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, benchURL, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("code = %d: %s", rec.Code, rec.Body.String())
	}
}

// p50 reports the median of the collected per-request durations.
func p50(durs []time.Duration) float64 {
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2].Seconds() * 1e3
}

// BenchmarkServerBinningWarm measures the steady-state serving path: the
// model is resident in the LRU, so each request is cache lookup + binning
// arithmetic + JSON encoding.
func BenchmarkServerBinningWarm(b *testing.B) {
	s := newBenchServer(b)
	h := s.Handler()
	benchRequest(b, h) // populate the cache
	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		benchRequest(b, h)
		durs = append(durs, time.Since(t0))
	}
	b.StopTimer()
	if st := s.Cache().ModelStats(); st.Misses != 1 {
		b.Fatalf("warm benchmark saw %d model misses, want 1", st.Misses)
	}
	b.ReportMetric(p50(durs), "p50-ms")
}

// BenchmarkServerBinningCold clears the caches before every request, so
// each iteration re-parses the library and re-fits the arc model — the
// cost a daemon-less client pays per query.
func BenchmarkServerBinningCold(b *testing.B) {
	s := newBenchServer(b)
	h := s.Handler()
	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.Cache().Clear()
		b.StartTimer()
		t0 := time.Now()
		benchRequest(b, h)
		durs = append(durs, time.Since(t0))
	}
	b.StopTimer()
	b.ReportMetric(p50(durs), "p50-ms")
}

// TestWarmCacheSpeedup pins the acceptance criterion outside the bench
// harness: warm p50 must undercut cold p50 by at least 10x.
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	s := newBenchServer(t)
	h := s.Handler()
	run := func() time.Duration {
		rec := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, benchURL, nil))
		d := time.Since(t0)
		if rec.Code != http.StatusOK {
			t.Fatalf("code = %d: %s", rec.Code, rec.Body.String())
		}
		return d
	}
	const rounds = 15
	cold := make([]time.Duration, rounds)
	warm := make([]time.Duration, rounds)
	for i := 0; i < rounds; i++ {
		s.Cache().Clear()
		cold[i] = run()
		warm[i] = run()
	}
	cp, wp := p50(cold), p50(warm)
	t.Logf("cold p50 = %.3fms, warm p50 = %.3fms (%.1fx)", cp, wp, cp/wp)
	if cp < 10*wp {
		t.Errorf("warm p50 %.3fms not 10x faster than cold p50 %.3fms", wp, cp)
	}
}

// BenchmarkServerBinningForwardedWarm measures the replicated hot path a
// non-owner pays: one checksum-verified forward hop to an owner whose
// model LRU is warm. Read it against BenchmarkServerBinningWarm (the
// owner's local lookup) and BenchmarkServerBinningCold (a full refit) —
// the gap between the three streams is the price of the hop versus the
// price of losing the fleet's warm state.
func BenchmarkServerBinningForwardedWarm(b *testing.B) {
	ft := newFleetTransport()
	f := newTestFleet(b, []string{"a", "b"}, ft, ft, nil)
	a := f.server("a")
	url := urlOwnedBy(b, a, "b")
	h := a.Handler()
	// One pass warms the owner's cache through the forward path.
	if rec, body := get(b, h, url); rec.Code != http.StatusOK {
		b.Fatalf("prime request = %d: %s", rec.Code, body)
	}
	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rec, _ := get(b, h, url)
		durs = append(durs, time.Since(t0))
		if rec.Code != http.StatusOK || rec.Header().Get(forwardHeader) != forwardOutcomeForwarded {
			b.Fatalf("iteration %d: code %d, %s=%q (stream must stay forwarded)",
				i, rec.Code, forwardHeader, rec.Header().Get(forwardHeader))
		}
	}
	b.StopTimer()
	if st := f.server("b").Cache().ModelStats(); st.Misses != 1 {
		b.Fatalf("owner saw %d model misses, want 1 (forwarded stream must stay warm)", st.Misses)
	}
	b.ReportMetric(p50(durs), "p50-ms")
}
