package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lvf2/internal/core"
	"lvf2/internal/liberty"
)

// testLibText builds a small deterministic LVF² library: INV (arc A→ZN)
// and NAND2 (arcs A→ZN, B→ZN) over a 2x2 slew/load grid, each point a
// genuinely bimodal mixture so every model kind has something to fit.
func testLibText(t testing.TB, name string) []byte {
	t.Helper()
	return libText(t, name, 0, []float64{0.01, 0.05}, []float64{0.002, 0.008})
}

// libText is the parameterized builder behind testLibText: filler extra
// single-input cells and an arbitrary slew/load grid let benchmarks use a
// realistically sized library while unit tests stay tiny.
func libText(t testing.TB, name string, filler int, slews, loads []float64) []byte {
	t.Helper()
	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{Name: name}, "tpl", slews, loads)

	addArc := func(timing *liberty.Group) {
		mk := func(base float64) ([][]float64, [][]core.Model) {
			nom := make([][]float64, len(slews))
			mods := make([][]core.Model, len(slews))
			for i, s := range slews {
				nom[i] = make([]float64, len(loads))
				mods[i] = make([]core.Model, len(loads))
				for j, l := range loads {
					n := base + s + 10*l
					nom[i][j] = n
					mods[i][j] = core.Model{
						Lambda: 0.25,
						Theta1: core.Theta{Mean: n + 0.005, Sigma: 0.004, Skew: 0.5},
						Theta2: core.Theta{Mean: n + 0.030, Sigma: 0.006, Skew: 0.2},
					}
				}
			}
			return nom, mods
		}
		nomD, modD := mk(0.05)
		liberty.TimingModelFromFits("cell_rise", slews, loads, nomD, modD).
			AppendTo(timing, "tpl", true)
		nomT, modT := mk(0.02)
		liberty.TimingModelFromFits("rise_transition", slews, loads, nomT, modT).
			AppendTo(timing, "tpl", true)
	}

	inv := liberty.AddCell(lib, "INV", []string{"A"}, 0.001, "ZN", "!A")
	addArc(liberty.AddTiming(inv, "A", "negative_unate"))
	nand := liberty.AddCell(lib, "NAND2", []string{"A", "B"}, 0.001, "ZN", "!(A&B)")
	addArc(liberty.AddTiming(nand, "A", "negative_unate"))
	addArc(liberty.AddTiming(nand, "B", "negative_unate"))
	for i := 0; i < filler; i++ {
		c := liberty.AddCell(lib, fmt.Sprintf("BUF_X%d", i+1), []string{"A"}, 0.001, "ZN", "A")
		addArc(liberty.AddTiming(c, "A", "positive_unate"))
	}
	return []byte(lib.String())
}

// newTestServer builds a server with the test library preloaded and
// startup/degradation logging silenced (chaos runs are deliberately
// noisy; the script artifact is the debugging surface, not the log).
func newTestServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{FitSamples: 600, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	if _, err := s.AddLibrary("testlib", testLibText(t, "testlib")); err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs a request against the in-process handler.
func get(t testing.TB, h http.Handler, url string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec, rec.Body.Bytes()
}

func post(t testing.TB, h http.Handler, url, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, strings.NewReader(body)))
	return rec, rec.Body.Bytes()
}

func decode[T any](t testing.TB, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad JSON response: %v\n%s", err, body)
	}
	return v
}

func TestArcCDFEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec, body := get(t, h, "/v1/arc/cdf?lib=testlib&cell=INV&slew=0.02&load=0.004&n=33")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[cdfResponse](t, body)
	if resp.Model.Kind != "LVF2" {
		t.Fatalf("kind = %s, want LVF2 default", resp.Model.Kind)
	}
	if resp.Model.Theta2 == nil || resp.Model.Lambda <= 0 {
		t.Fatalf("expected a two-component model, got %+v", resp.Model)
	}
	if len(resp.Points) != 33 {
		t.Fatalf("points = %d, want 33", len(resp.Points))
	}
	for i := 1; i < len(resp.Points); i++ {
		// Owen-T quadrature leaves ~1e-17 noise in the deep tails.
		if resp.Points[i].CDF < resp.Points[i-1].CDF-1e-12 {
			t.Fatalf("CDF not monotone at point %d", i)
		}
	}
	if last := resp.Points[len(resp.Points)-1].CDF; last < 0.99 {
		t.Fatalf("CDF at μ+4σ = %g, want ≈1", last)
	}
	// Explicit points are honoured.
	rec, body = get(t, h, "/v1/arc/cdf?lib=testlib&cell=INV&points=0.01,0.2")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	if resp := decode[cdfResponse](t, body); len(resp.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(resp.Points))
	}
}

func TestArcBinningEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec, body := get(t, h, "/v1/arc/binning?lib=testlib&cell=INV&slew=0.02&load=0.004")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[binningResponse](t, body)
	if len(resp.Boundaries) != 7 || len(resp.Probabilities) != 8 {
		t.Fatalf("got %d boundaries / %d bins, want 7/8", len(resp.Boundaries), len(resp.Probabilities))
	}
	var sum float64
	for _, p := range resp.Probabilities {
		if p < 0 {
			t.Fatalf("negative bin probability %g", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("bin probabilities sum to %g, want 1", sum)
	}
	if resp.Yield3Sigma < 0.95 || resp.Yield3Sigma > 1 {
		t.Fatalf("3σ-yield = %g", resp.Yield3Sigma)
	}

	// Expected revenue prices the 8 bins.
	rec, body = get(t, h, "/v1/arc/binning?lib=testlib&cell=INV&prices=0,1,2,3,4,5,6,7")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp = decode[binningResponse](t, body)
	if resp.ExpectedRevenue == nil || *resp.ExpectedRevenue <= 0 {
		t.Fatalf("expected revenue missing: %+v", resp)
	}
	// Wrong price count is a 400.
	if rec, _ := get(t, h, "/v1/arc/binning?lib=testlib&cell=INV&prices=1,2"); rec.Code != http.StatusBadRequest {
		t.Fatalf("short prices: code = %d, want 400", rec.Code)
	}
}

// TestArcModelKinds serves every refit-capable kind through the cache.
func TestArcModelKinds(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	for _, kind := range []string{"lvf", "lvf2", "norm2", "gaussian"} {
		rec, body := get(t, h, "/v1/arc/binning?lib=testlib&cell=INV&kind="+kind)
		if rec.Code != http.StatusOK {
			t.Fatalf("kind %s: code = %d: %s", kind, rec.Code, body)
		}
		resp := decode[binningResponse](t, body)
		if resp.Mean <= 0 {
			t.Fatalf("kind %s: mean = %g", kind, resp.Mean)
		}
	}
	// Second pass must be all cache hits (no new misses).
	misses := s.Cache().ModelStats().Misses
	for _, kind := range []string{"lvf", "lvf2", "norm2", "gaussian"} {
		if rec, body := get(t, h, "/v1/arc/binning?lib=testlib&cell=INV&kind="+kind); rec.Code != 200 {
			t.Fatalf("kind %s warm: code = %d: %s", kind, rec.Code, body)
		}
	}
	if got := s.Cache().ModelStats().Misses; got != misses {
		t.Fatalf("warm pass added %d misses", got-misses)
	}
}

func TestYieldArcEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec, body := get(t, h, "/v1/yield?lib=testlib&cell=INV&slew=0.02&load=0.004")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[yieldResponse](t, body)
	y, ok := resp.Yield["LVF2"]
	if !ok {
		t.Fatalf("no LVF2 yield in %+v", resp)
	}
	if y < 0.95 || y > 1 {
		t.Fatalf("yield at default μ+3σ clock = %g", y)
	}
	// An explicit far clock yields ≈1.
	rec, body = get(t, h, "/v1/yield?lib=testlib&cell=INV&clock=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	if resp := decode[yieldResponse](t, body); resp.Yield["LVF2"] < 0.9999 {
		t.Fatalf("yield at clock 10 = %g, want ≈1", resp.Yield["LVF2"])
	}
}

func TestSSTAEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec, body := post(t, h, "/v1/ssta",
		`{"lib":"testlib","builtin":"chain","n":4,"cell":"INV","clock":1.0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[sstaResponse](t, body)
	if resp.CriticalOutput != "out" {
		t.Fatalf("critical output = %q", resp.CriticalOutput)
	}
	if resp.Instances != 4 {
		t.Fatalf("instances = %d, want 4", resp.Instances)
	}
	a, ok := resp.Arrivals["out"]
	if !ok {
		t.Fatalf("no arrival for out: %+v", resp.Arrivals)
	}
	for _, fam := range []string{"LVF", "LVF2"} {
		d, ok := a.Families[fam]
		if !ok {
			t.Fatalf("no %s summary", fam)
		}
		if d.Mean <= a.Nominal {
			t.Fatalf("%s mean %g not above nominal %g (positive mean shift expected)", fam, d.Mean, a.Nominal)
		}
		if d.Q9987 <= d.Mean {
			t.Fatalf("%s q99.87 %g below mean %g", fam, d.Q9987, d.Mean)
		}
	}
	// 4 instances + the primary input = 5 path steps.
	if len(resp.CriticalPath) != 5 {
		t.Fatalf("critical path has %d steps, want 5", len(resp.CriticalPath))
	}
	if resp.Yield["LVF2"] < 0.99 {
		t.Fatalf("yield at slack clock = %g, want ≈1", resp.Yield["LVF2"])
	}

	// The rca16 builtin exercises the NAND2 arcs.
	rec, body = post(t, h, "/v1/ssta", `{"lib":"testlib","builtin":"rca16"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("rca16: code = %d: %s", rec.Code, body)
	}
	if resp := decode[sstaResponse](t, body); resp.CriticalOutput != "cout" {
		t.Fatalf("rca16 critical output = %q", resp.CriticalOutput)
	}
}

func TestSSTAUploadedNetlist(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	verilog := `module two_inv(in, out);
  input in; output out; wire w;
  INV u0 (.A(in), .ZN(w));
  INV u1 (.A(w), .ZN(out));
endmodule`
	reqBody, _ := json.Marshal(map[string]any{"lib": "testlib", "netlist": verilog})
	rec, body := post(t, h, "/v1/ssta", string(reqBody))
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[sstaResponse](t, body)
	if resp.Module != "two_inv" || resp.Instances != 2 {
		t.Fatalf("module %q instances %d", resp.Module, resp.Instances)
	}
}

func TestNetlistYieldEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec, body := post(t, h, "/v1/yield",
		`{"lib":"testlib","builtin":"chain","n":3,"cell":"INV","clock":2.0,"families":["lvf2"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	resp := decode[yieldResponse](t, body)
	if resp.Yield["LVF2"] < 0.9999 {
		t.Fatalf("yield = %g, want ≈1 at slack clock", resp.Yield["LVF2"])
	}
	// Missing clock is a 400.
	if rec, _ := post(t, h, "/v1/yield", `{"lib":"testlib","builtin":"chain"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing clock: code = %d, want 400", rec.Code)
	}
}

func TestLibraryUploadAndHashReference(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	text := testLibText(t, "uploaded")
	rec, body := post(t, h, "/v1/libraries", string(text))
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, body)
	}
	info := decode[libraryInfo](t, body)
	if info.Name != "uploaded" || info.Cells != 2 || len(info.Hash) != 64 {
		t.Fatalf("upload info = %+v", info)
	}
	// Query by content hash and by name both work.
	for _, ref := range []string{info.Hash, "uploaded"} {
		rec, body := get(t, h, "/v1/arc/cdf?lib="+ref+"&cell=NAND2&from=B")
		if rec.Code != http.StatusOK {
			t.Fatalf("ref %q: code = %d: %s", ref, rec.Code, body)
		}
	}
	// Listing shows both libraries.
	rec, body = get(t, h, "/v1/libraries")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: code = %d", rec.Code)
	}
	var list struct {
		Libraries []libraryInfo `json:"libraries"`
	}
	list = decode[struct {
		Libraries []libraryInfo `json:"libraries"`
	}](t, body)
	if len(list.Libraries) != 2 {
		t.Fatalf("listed %d libraries, want 2", len(list.Libraries))
	}
}

func TestErrorResponses(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	cases := []struct {
		url  string
		code int
	}{
		{"/v1/arc/cdf?cell=INV", http.StatusBadRequest},                       // missing lib
		{"/v1/arc/cdf?lib=testlib", http.StatusBadRequest},                    // missing cell
		{"/v1/arc/cdf?lib=nope&cell=INV", http.StatusNotFound},                // unknown library
		{"/v1/arc/cdf?lib=testlib&cell=XOR9", http.StatusNotFound},            // unknown cell
		{"/v1/arc/cdf?lib=testlib&cell=INV&from=Z", http.StatusNotFound},      // unknown arc
		{"/v1/arc/cdf?lib=testlib&cell=INV&kind=zipf", http.StatusBadRequest}, // unknown kind
		{"/v1/arc/cdf?lib=testlib&cell=INV&base=cell_fall", http.StatusNotFound},
		{"/v1/arc/cdf?lib=testlib&cell=INV&slew=x", http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec, body := get(t, h, tc.url)
		if rec.Code != tc.code {
			t.Errorf("%s: code = %d, want %d (%s)", tc.url, rec.Code, tc.code, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.url, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, body)
	}
}

// TestMetricsExposition checks the acceptance-criteria series: requests,
// latency, in-flight and cache hit/miss/eviction.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	get(t, h, "/v1/arc/binning?lib=testlib&cell=INV") // miss
	get(t, h, "/v1/arc/binning?lib=testlib&cell=INV") // hit
	get(t, h, "/v1/arc/cdf?lib=nope&cell=INV")        // 404

	rec, body := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: code = %d", rec.Code)
	}
	out := string(body)
	for _, want := range []string{
		`lvf2d_requests_total{route="/v1/arc/binning",code="200"} 2`,
		`lvf2d_requests_total{route="/v1/arc/cdf",code="404"} 1`,
		"lvf2d_in_flight_requests 0",
		"lvf2d_request_seconds_v1_arc_binning_count 2",
		"lvf2d_cache_model_hits 1",
		"lvf2d_cache_model_misses 1",
		"lvf2d_cache_model_evictions 0",
		"lvf2d_cache_library_misses 1",
		"lvf2d_cache_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

// TestGracefulDrain proves the SIGTERM contract: after cancellation the
// daemon stops accepting new connections but the in-flight request runs
// to completion with a full response.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.testDelay = 300 * time.Millisecond })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- s.RunListener(ctx, ln, 5*time.Second) }()

	url := fmt.Sprintf("http://%s/v1/arc/binning?lib=testlib&cell=INV", ln.Addr())
	type result struct {
		code int
		body []byte
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resCh <- result{code: resp.StatusCode, body: b, err: err}
	}()

	// Wait until the request is being served, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.InFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()

	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request code = %d during drain: %s", res.code, res.body)
	}
	var br binningResponse
	if err := json.Unmarshal(res.body, &br); err != nil {
		t.Fatalf("drained response truncated: %v\n%s", err, res.body)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("RunListener returned %v after drain, want nil", err)
	}
	// New connections must now be refused.
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
