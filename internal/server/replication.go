package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"lvf2/internal/mc"
	"lvf2/internal/modelcache"
	"lvf2/internal/obs"
	"lvf2/internal/ring"
)

// Replicated serving (DESIGN.md §16). A fleet of lvf2d replicas shards
// the fitted-model cache with a consistent-hash ring over the full arc
// coordinate: every replica builds the same ring from the same static
// -peers list, so all of them agree on which replica owns which key
// without coordination traffic. A request landing on a non-owner
// forwards to the owner (per-peer deadline, capped jittered retry,
// per-peer circuit breaker); when the owner is unreachable the replica
// computes the answer locally instead. The fitters are deterministic,
// so a local fallback is bit-identical to the owner's answer — just
// cold. A replica death therefore costs latency, never correctness.
//
// Forwarding headers:
//
//	X-LVF2-Forwarded-From  request: sender's peer ID; owners never
//	                       re-forward a marked request (single hop)
//	X-LVF2-Forward         response: "forwarded" | "local-fallback"
//	X-LVF2-Forward-Peer    response: the owner the request mapped to
//	X-LVF2-Body-SHA256     response: owner-computed body checksum; the
//	                       forwarding side re-verifies it so a corrupted
//	                       peer link degrades to local compute instead
//	                       of relaying garbage
const (
	forwardedFromHeader = "X-LVF2-Forwarded-From"
	forwardHeader       = "X-LVF2-Forward"
	forwardPeerHeader   = "X-LVF2-Forward-Peer"
	bodySumHeader       = "X-LVF2-Body-SHA256"

	forwardOutcomeForwarded = "forwarded"
	forwardOutcomeFallback  = "local-fallback"
)

// Peer identifies one remote replica.
type Peer struct {
	ID  string
	URL string // base URL, e.g. http://replica-b:8080
}

// PeerConfigError reports an invalid -peers / -peer-id configuration
// entry. It is typed so cmd/lvf2d can reject bad fleets before listen.
type PeerConfigError struct {
	Entry  string
	Reason string
}

func (e *PeerConfigError) Error() string {
	return fmt.Sprintf("peer config %q: %s", e.Entry, e.Reason)
}

// ParsePeers parses repeated -peers values. Each value holds one or
// more comma-separated id=url entries; URLs must be absolute http(s)
// with no path, query or fragment (forwarding appends request URIs).
func ParsePeers(specs []string) ([]Peer, error) {
	var peers []Peer
	for _, spec := range specs {
		for _, entry := range strings.Split(spec, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			id, rawURL, ok := strings.Cut(entry, "=")
			if !ok || id == "" {
				return nil, &PeerConfigError{Entry: entry, Reason: "want id=url"}
			}
			u, err := url.Parse(rawURL)
			if err != nil {
				return nil, &PeerConfigError{Entry: entry, Reason: fmt.Sprintf("bad URL: %v", err)}
			}
			if u.Scheme != "http" && u.Scheme != "https" {
				return nil, &PeerConfigError{Entry: entry, Reason: fmt.Sprintf("unsupported scheme %q (want http or https)", u.Scheme)}
			}
			if u.Host == "" {
				return nil, &PeerConfigError{Entry: entry, Reason: "missing host"}
			}
			if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
				return nil, &PeerConfigError{Entry: entry, Reason: "URL must be a bare base (no path, query or fragment)"}
			}
			peers = append(peers, Peer{ID: id, URL: strings.TrimSuffix(rawURL, "/")})
		}
	}
	return peers, nil
}

// ValidatePeerFleet vets a (self, peers) fleet: peers require an
// identity, self must not appear in its own peer list, and IDs and URLs
// must be unique. Returns a *PeerConfigError on the first violation.
func ValidatePeerFleet(selfID string, peers []Peer) error {
	if len(peers) == 0 {
		return nil
	}
	if selfID == "" {
		return &PeerConfigError{Entry: "-peer-id", Reason: "required when -peers is set"}
	}
	ids := map[string]bool{selfID: true}
	urls := map[string]bool{}
	for _, p := range peers {
		if p.ID == selfID {
			return &PeerConfigError{Entry: p.ID, Reason: "a replica must not list itself as a peer"}
		}
		if ids[p.ID] {
			return &PeerConfigError{Entry: p.ID, Reason: "duplicate peer ID"}
		}
		if urls[p.URL] {
			return &PeerConfigError{Entry: p.URL, Reason: "duplicate peer URL"}
		}
		ids[p.ID], urls[p.URL] = true, true
	}
	return nil
}

// ReplicationOptions configures the sharded-serving layer. The zero
// value (no peers) disables it: the server behaves exactly like a
// standalone lvf2d.
type ReplicationOptions struct {
	// SelfID is this replica's identity on the ring. Required when
	// Peers is non-empty.
	SelfID string
	// Peers is the static remote-replica list. The ring members are
	// SelfID plus every peer ID; all replicas must agree on the set.
	Peers []Peer
	// VirtualNodes and RingSeed tune ring placement (defaults
	// ring.DefaultVirtualNodes, 0). All replicas must agree.
	VirtualNodes int
	RingSeed     uint64
	// ForwardTimeout is the per-attempt deadline of one forwarded
	// request or probe (default 2s).
	ForwardTimeout time.Duration
	// ForwardAttempts bounds forward tries per request (default 3).
	ForwardAttempts int
	// RetryBase is the first retry backoff; each retry doubles it and
	// jitters over [d, 1.5d) (default 20ms).
	RetryBase time.Duration
	// ProbeInterval is the background /readyz probe cadence
	// (default 2s).
	ProbeInterval time.Duration
	// Breaker tunes the per-peer circuit breaker (defaults as
	// BreakerOptions; JitterSeed also seeds the retry jitter).
	Breaker BreakerOptions
	// Client issues forwarded requests and probes (default a dedicated
	// http.Client; the chaos suite injects a FaultTransport here).
	Client *http.Client
}

func (o ReplicationOptions) withDefaults() ReplicationOptions {
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 2 * time.Second
	}
	if o.ForwardAttempts <= 0 {
		o.ForwardAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 20 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// replication is the per-server sharding state.
type replication struct {
	self  string
	ring  *ring.Ring
	peers map[string]Peer
	order []string // sorted peer IDs, for deterministic iteration
	opts  ReplicationOptions

	breakers *breakerSet[string]

	mu      sync.Mutex
	rng     *mc.RNG         // retry-backoff jitter
	healthy map[string]bool // probe-driven liveness; true until proven dead

	reqs           *obs.CounterVec // by peer, outcome
	forwardSeconds *obs.Histogram
	warmSeeded     *obs.Counter
}

// newReplication builds the sharding state, or nil when cfg carries no
// peers. An invalid fleet (duplicate IDs etc.) disables replication and
// logs the reason rather than failing New — cmd/lvf2d validates the
// same fleet up front and exits 2, so this path only triggers for
// programmatic misconfiguration.
func newReplication(cfg Config) *replication {
	o := cfg.Replication
	if len(o.Peers) == 0 {
		return nil
	}
	if err := ValidatePeerFleet(o.SelfID, o.Peers); err != nil {
		cfg.Logger.Error("lvf2d: replication disabled", "reason", err.Error())
		return nil
	}
	o = o.withDefaults()
	members := make([]string, 0, len(o.Peers)+1)
	members = append(members, o.SelfID)
	peers := make(map[string]Peer, len(o.Peers))
	healthy := make(map[string]bool, len(o.Peers))
	for _, p := range o.Peers {
		members = append(members, p.ID)
		peers[p.ID] = p
		healthy[p.ID] = true
	}
	rg, err := ring.New(members, ring.Options{VirtualNodes: o.VirtualNodes, Seed: o.RingSeed})
	if err != nil {
		cfg.Logger.Error("lvf2d: replication disabled", "reason", err.Error())
		return nil
	}
	order := make([]string, 0, len(peers))
	for id := range peers {
		order = append(order, id)
	}
	sort.Strings(order)
	r := cfg.Registry
	opts := o.Breaker
	if opts.JitterSeed == 0 {
		opts.JitterSeed = 1
	}
	return &replication{
		self:     o.SelfID,
		ring:     rg,
		peers:    peers,
		order:    order,
		opts:     o,
		breakers: newBreakerSet[string](opts, cfg.now, r, "lvf2d_peer_breaker", "peer"),
		rng:      mc.NewRNG(opts.JitterSeed | 1),
		healthy:  healthy,
		reqs: obs.NewCounterVec(r, "lvf2d_peer_requests_total",
			"peer forwarding attempts by peer and outcome", "peer", "outcome"),
		forwardSeconds: obs.NewHistogram(r, "lvf2d_peer_forward_seconds",
			"latency of successful forwarded requests", nil),
		warmSeeded: obs.NewCounter(r, "lvf2d_peer_warm_seeded_models_total",
			"owned models warm-seeded from peer snapshot slices on boot"),
	}
}

func (p *replication) isHealthy(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy[id]
}

func (p *replication) setHealthy(id string, alive bool) {
	p.mu.Lock()
	p.healthy[id] = alive
	p.mu.Unlock()
}

// retryDelay is the capped jittered backoff before retry attempt n≥1:
// RetryBase·2^(n-1) spread over [d, 1.5d), capped at 16×RetryBase.
func (p *replication) retryDelay(attempt int) time.Duration {
	d := p.opts.RetryBase << (attempt - 1)
	if max := 16 * p.opts.RetryBase; d > max {
		d = max
	}
	p.mu.Lock()
	j := p.rng.Float64()
	p.mu.Unlock()
	return d + time.Duration(j*0.5*float64(d))
}

// maybeForward routes a resolved arc query to its ring owner. It
// returns true when the response has been fully written (a successful
// forward). Returning false means the caller must answer locally —
// either because this replica owns the key (or already has it warm),
// or because the owner is unreachable and the request degrades to a
// local-fallback compute (tagged via X-LVF2-Forward).
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, ra *resolvedArc, aq arcQuery) bool {
	p := s.repl
	if p == nil || r.Header.Get(forwardedFromHeader) != "" {
		return false
	}
	key := cacheKeyFor(ra, aq)
	owner := p.ring.Owner(key.RingKey())
	if owner == p.self {
		return false
	}
	// A locally warm key answers in a map lookup; a forward hop could
	// only be slower. Determinism makes the local copy just as correct.
	if _, ok := s.cache.Peek(key); ok {
		return false
	}
	if p.forward(w, r, owner) {
		return true
	}
	p.reqs.Inc(owner, "local_fallback")
	w.Header().Set(forwardHeader, forwardOutcomeFallback)
	w.Header().Set(forwardPeerHeader, owner)
	return false
}

// forward relays r to owner, returning true once the owner's verified
// response has been written to w. Any failure mode — probe-dead peer,
// open breaker, exhausted retries, checksum mismatch, request deadline
// — returns false and leaves w untouched.
func (p *replication) forward(w http.ResponseWriter, r *http.Request, owner string) bool {
	if !p.isHealthy(owner) {
		return false
	}
	ok, probe := p.breakers.allow(owner)
	if !ok {
		p.reqs.Inc(owner, "breaker_open")
		return false
	}
	var lastErr error = fmt.Errorf("no forward attempts")
	for attempt := 0; attempt < p.opts.ForwardAttempts; attempt++ {
		if attempt > 0 {
			p.reqs.Inc(owner, "retry")
			select {
			case <-r.Context().Done():
				p.breakers.done(owner, probe, r.Context().Err())
				return false
			case <-time.After(p.retryDelay(attempt)):
			}
		}
		status, header, body, err := p.forwardOnce(r, owner)
		if err == nil {
			p.breakers.done(owner, probe, nil)
			p.reqs.Inc(owner, "ok")
			relayResponse(w, status, header, body, owner)
			return true
		}
		lastErr = err
		if r.Context().Err() != nil {
			break
		}
	}
	p.breakers.done(owner, probe, lastErr)
	return false
}

// forwardOnce issues one forwarded request under the per-peer deadline
// and verifies the owner's body checksum, so a corrupted or truncated
// peer response surfaces as a retryable error instead of reaching the
// client.
func (p *replication) forwardOnce(r *http.Request, owner string) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(r.Context(), p.opts.ForwardTimeout)
	defer cancel()
	u := p.peers[owner].URL + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set(forwardedFromHeader, p.self)
	start := time.Now()
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, nil, err
	}
	// Only verified 200s relay. Anything else (the owner shedding,
	// degraded handling of our own bug, a proxy error page) answers
	// better from the local compute path.
	if resp.StatusCode != http.StatusOK {
		return 0, nil, nil, fmt.Errorf("owner %s answered %d", owner, resp.StatusCode)
	}
	sum := sha256.Sum256(body)
	if got := resp.Header.Get(bodySumHeader); got != hex.EncodeToString(sum[:]) {
		return 0, nil, nil, fmt.Errorf("owner %s body checksum mismatch (len %d)", owner, len(body))
	}
	p.forwardSeconds.Observe(time.Since(start).Seconds())
	return resp.StatusCode, resp.Header, body, nil
}

// relayResponse writes a verified owner response to the client,
// preserving the content type and degraded tag and stamping the
// forwarding headers.
func relayResponse(w http.ResponseWriter, status int, header http.Header, body []byte, owner string) {
	for _, h := range [...]string{"Content-Type", degradedHeader} {
		if v := header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(forwardHeader, forwardOutcomeForwarded)
	w.Header().Set(forwardPeerHeader, owner)
	w.WriteHeader(status)
	w.Write(body)
}

// peerIntegrity stamps X-LVF2-Body-SHA256 on responses to forwarded
// requests: the owner buffers the response, checksums it and sends the
// sum as a header, so the forwarding side can detect a corrupted link.
// Non-forwarded traffic streams through untouched.
func peerIntegrity(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedFromHeader) == "" {
			next.ServeHTTP(w, r)
			return
		}
		bw := &bufferedResponse{header: make(http.Header)}
		next.ServeHTTP(bw, r)
		for k, vs := range bw.header {
			w.Header()[k] = vs
		}
		sum := sha256.Sum256(bw.buf.Bytes())
		w.Header().Set(bodySumHeader, hex.EncodeToString(sum[:]))
		if bw.status == 0 {
			bw.status = http.StatusOK
		}
		w.WriteHeader(bw.status)
		w.Write(bw.buf.Bytes())
	})
}

// bufferedResponse captures a handler's response so a checksum header
// can precede the body on the wire.
type bufferedResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

// handlePeerSnapshot serves GET /v1/peer/snapshot?owner=ID: the slice
// of this replica's model cache owned by ID under the ring, in the
// snapshot wire format (which carries its own checksum trailer). A
// restarting replica pulls this from every live peer to warm-seed the
// keys it owns.
func (s *Server) handlePeerSnapshot(w http.ResponseWriter, r *http.Request) {
	p := s.repl
	if p == nil {
		fail(w, r, &httpError{code: http.StatusNotFound, msg: "replication is not configured"})
		return
	}
	owner := r.URL.Query().Get("owner")
	member := owner == p.self
	for _, m := range p.ring.Members() {
		member = member || m == owner
	}
	if owner == "" || !member {
		fail(w, r, badRequest("owner %q is not a ring member (members: %s)",
			owner, strings.Join(p.ring.Members(), ", ")))
		return
	}
	slice := s.cache.SnapshotModelsFiltered(func(k modelcache.ModelKey) bool {
		return p.ring.Owner(k.RingKey()) == owner
	})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(slice)
}

// WarmSeedFromPeers pulls this replica's owned-key snapshot slice from
// every peer and merges the entries into the model cache, returning the
// total restored. Entries are bit-identical across replicas (the
// fitters are deterministic), so merging overlapping slices is
// harmless. Peers that are down, partitioned or serving corrupt bytes
// are skipped after ForwardAttempts tries each; warm-seeding is an
// optimisation, never a boot dependency.
func (s *Server) WarmSeedFromPeers(ctx context.Context) int {
	p := s.repl
	if p == nil {
		return 0
	}
	total := 0
	for _, id := range p.order {
		slice, err := p.fetchSnapshotSlice(ctx, id)
		if err != nil {
			s.cfg.Logger.Warn("lvf2d: warm-seed skipped peer", "peer", id, "reason", err.Error())
			continue
		}
		n, err := s.cache.RestoreModels(slice)
		if err != nil {
			s.cfg.Logger.Warn("lvf2d: warm-seed slice rejected", "peer", id, "reason", err.Error())
			continue
		}
		total += n
	}
	if total > 0 {
		p.warmSeeded.Add(int64(total))
		s.cfg.Logger.Info("lvf2d: warm-seeded owned keys from peers", "models", total)
	}
	return total
}

// fetchSnapshotSlice retrieves one peer's owned-key export, retrying
// transport errors and corrupt payloads (the snapshot's own checksum
// catches those) under the usual per-attempt deadline.
func (p *replication) fetchSnapshotSlice(ctx context.Context, id string) ([]byte, error) {
	u := p.peers[id].URL + "/v1/peer/snapshot?owner=" + url.QueryEscape(p.self)
	var lastErr error
	for attempt := 0; attempt < p.opts.ForwardAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(p.retryDelay(attempt)):
			}
		}
		slice, err := p.fetchSnapshotOnce(ctx, u)
		if err == nil {
			return slice, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

func (p *replication) fetchSnapshotOnce(ctx context.Context, u string) ([]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, p.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	// Validate before accepting so a corrupted body retries here rather
	// than surfacing from RestoreModels after the retry budget is gone.
	if _, err := modelcache.DecodeSnapshot(body); err != nil {
		return nil, err
	}
	return body, nil
}

// ProbePeersOnce probes every peer's /readyz once, updating the
// probe-driven health map. A 200 also force-closes the peer's breaker,
// so recovery latency after a restart is one probe interval instead of
// a full backoff window. RunListener drives this on ProbeInterval; the
// chaos suite calls it directly.
func (s *Server) ProbePeersOnce(ctx context.Context) {
	p := s.repl
	if p == nil {
		return
	}
	for _, id := range p.order {
		alive := p.probeOne(ctx, id)
		p.setHealthy(id, alive)
		if alive {
			p.breakers.heal(id)
		}
	}
}

func (p *replication) probeOne(ctx context.Context, id string) bool {
	rctx, cancel := context.WithTimeout(ctx, p.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, p.peers[id].URL+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ------------------------------------------------------------- readyz DTO

// readyzRing and readyzPeer extend the /readyz body with ring
// membership and per-peer link state when replication is configured.
type readyzRing struct {
	Self         string   `json:"self"`
	Members      []string `json:"members"`
	VirtualNodes int      `json:"virtual_nodes"`
	Seed         uint64   `json:"seed"`
}

type readyzPeer struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Breaker string `json:"breaker"`
	Healthy bool   `json:"healthy"`
}

type readyzResponse struct {
	Status string       `json:"status"`
	Ring   *readyzRing  `json:"ring,omitempty"`
	Peers  []readyzPeer `json:"peers,omitempty"`
}

// readyzBody assembles the /readyz JSON for the current state.
func (s *Server) readyzBody(status string) readyzResponse {
	resp := readyzResponse{Status: status}
	p := s.repl
	if p == nil {
		return resp
	}
	resp.Ring = &readyzRing{
		Self:         p.self,
		Members:      p.ring.Members(),
		VirtualNodes: p.ring.VirtualNodes(),
		Seed:         p.ring.Seed(),
	}
	for _, id := range p.order {
		resp.Peers = append(resp.Peers, readyzPeer{
			ID:      id,
			URL:     p.peers[id].URL,
			Breaker: p.breakers.stateOf(id).String(),
			Healthy: p.isHealthy(id),
		})
	}
	return resp
}
