package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lvf2/internal/mc"
	"lvf2/internal/modelcache"
	"lvf2/internal/obs"
	"lvf2/internal/ring"
)

// Replicated serving (DESIGN.md §16). A fleet of lvf2d replicas shards
// the fitted-model cache with a consistent-hash ring over the full arc
// coordinate: every replica builds the same ring from the same static
// -peers list, so all of them agree on which replica owns which key
// without coordination traffic. A request landing on a non-owner
// forwards to the owner (per-peer deadline, capped jittered retry,
// per-peer circuit breaker); when the owner is unreachable the replica
// computes the answer locally instead. The fitters are deterministic,
// so a local fallback is bit-identical to the owner's answer — just
// cold. A replica death therefore costs latency, never correctness.
//
// Forwarding headers:
//
//	X-LVF2-Forwarded-From  request: sender's peer ID; owners never
//	                       re-forward a marked request (single hop)
//	X-LVF2-Forward         response: "forwarded" | "local-fallback"
//	X-LVF2-Forward-Peer    response: the owner the request mapped to
//	X-LVF2-Body-SHA256     response: owner-computed body checksum; the
//	                       forwarding side re-verifies it so a corrupted
//	                       peer link degrades to local compute instead
//	                       of relaying garbage
//	X-LVF2-Ring-Epoch      request and response: the sender's membership
//	                       epoch; a mismatch makes the lagging side pull
//	                       the newer membership from the other (epoch
//	                       propagation piggybacked on forwarding, no new
//	                       protocol)
const (
	forwardedFromHeader = "X-LVF2-Forwarded-From"
	forwardHeader       = "X-LVF2-Forward"
	forwardPeerHeader   = "X-LVF2-Forward-Peer"
	bodySumHeader       = "X-LVF2-Body-SHA256"
	ringEpochHeader     = "X-LVF2-Ring-Epoch"

	forwardOutcomeForwarded = "forwarded"
	forwardOutcomeFallback  = "local-fallback"
)

// Peer identifies one remote replica. The JSON tags are the membership
// document's wire format.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"` // base URL, e.g. http://replica-b:8080
}

// PeerConfigError reports an invalid -peers / -peer-id configuration
// entry. It is typed so cmd/lvf2d can reject bad fleets before listen.
type PeerConfigError struct {
	Entry  string
	Reason string
}

func (e *PeerConfigError) Error() string {
	return fmt.Sprintf("peer config %q: %s", e.Entry, e.Reason)
}

// ParsePeers parses repeated -peers values. Each value holds one or
// more comma-separated id=url entries; URLs must be absolute http(s)
// with no path, query or fragment (forwarding appends request URIs).
func ParsePeers(specs []string) ([]Peer, error) {
	var peers []Peer
	for _, spec := range specs {
		for _, entry := range strings.Split(spec, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			id, rawURL, ok := strings.Cut(entry, "=")
			if !ok || id == "" {
				return nil, &PeerConfigError{Entry: entry, Reason: "want id=url"}
			}
			u, err := url.Parse(rawURL)
			if err != nil {
				return nil, &PeerConfigError{Entry: entry, Reason: fmt.Sprintf("bad URL: %v", err)}
			}
			if u.Scheme != "http" && u.Scheme != "https" {
				return nil, &PeerConfigError{Entry: entry, Reason: fmt.Sprintf("unsupported scheme %q (want http or https)", u.Scheme)}
			}
			if u.Host == "" {
				return nil, &PeerConfigError{Entry: entry, Reason: "missing host"}
			}
			if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
				return nil, &PeerConfigError{Entry: entry, Reason: "URL must be a bare base (no path, query or fragment)"}
			}
			peers = append(peers, Peer{ID: id, URL: strings.TrimSuffix(rawURL, "/")})
		}
	}
	return peers, nil
}

// ValidatePeerFleet vets a (self, peers) fleet: peers require an
// identity, self must not appear in its own peer list, and IDs and URLs
// must be unique. Returns a *PeerConfigError on the first violation.
func ValidatePeerFleet(selfID string, peers []Peer) error {
	if len(peers) == 0 {
		return nil
	}
	if selfID == "" {
		return &PeerConfigError{Entry: "-peer-id", Reason: "required when -peers is set"}
	}
	ids := map[string]bool{selfID: true}
	urls := map[string]bool{}
	for _, p := range peers {
		if p.ID == selfID {
			return &PeerConfigError{Entry: p.ID, Reason: "a replica must not list itself as a peer"}
		}
		if ids[p.ID] {
			return &PeerConfigError{Entry: p.ID, Reason: "duplicate peer ID"}
		}
		if urls[p.URL] {
			return &PeerConfigError{Entry: p.URL, Reason: "duplicate peer URL"}
		}
		ids[p.ID], urls[p.URL] = true, true
	}
	return nil
}

// ReplicationOptions configures the sharded-serving layer. The zero
// value (no peers) disables it: the server behaves exactly like a
// standalone lvf2d.
type ReplicationOptions struct {
	// SelfID is this replica's identity on the ring. Required when
	// Peers is non-empty.
	SelfID string
	// SelfURL is this replica's own base URL as peers reach it. It is
	// embedded in membership documents so joins and drains can be
	// announced; optional for a static fleet that never reconfigures.
	SelfURL string
	// Peers is the boot-time remote-replica list. The initial ring
	// members are SelfID plus every peer ID at epoch 0; membership may
	// change afterwards (see Membership and /v1/fleet/membership).
	Peers []Peer
	// Membership, when non-nil, is the boot-time membership document
	// and overrides Peers: the ring members are the document's members
	// at its epoch, and SelfID must still be set. cmd/lvf2d loads it
	// from -membership.
	Membership *Membership
	// MembershipPath, when non-empty, enables the config-watch seam:
	// the file is polled (mtime, then SHA-256) and a strictly newer
	// membership document found there is adopted and announced to the
	// fleet; adopted memberships are persisted back to it.
	MembershipPath string
	// MembershipPollInterval is the file-watch cadence (default 2s).
	MembershipPollInterval time.Duration
	// VirtualNodes and RingSeed tune ring placement (defaults
	// ring.DefaultVirtualNodes, 0). All replicas must agree.
	VirtualNodes int
	RingSeed     uint64
	// ForwardTimeout is the per-attempt deadline of one forwarded
	// request or probe (default 2s).
	ForwardTimeout time.Duration
	// ForwardAttempts bounds forward tries per request (default 3).
	ForwardAttempts int
	// RetryBase is the first retry backoff; each retry doubles it and
	// jitters over [d, 1.5d) (default 20ms).
	RetryBase time.Duration
	// ProbeInterval is the background /readyz probe cadence
	// (default 2s).
	ProbeInterval time.Duration
	// AntiEntropyInterval is the background digest-exchange cadence
	// (default 30s).
	AntiEntropyInterval time.Duration
	// SnapshotMaxBytes caps one /v1/peer/snapshot transfer in both
	// directions: the server truncates its export (newest entries
	// kept) and the client refuses to read past it (default 64 MiB).
	SnapshotMaxBytes int64
	// Breaker tunes the per-peer circuit breaker (defaults as
	// BreakerOptions; JitterSeed also seeds the retry jitter).
	Breaker BreakerOptions
	// Client issues forwarded requests and probes (default a dedicated
	// http.Client; the chaos suite injects a FaultTransport here).
	Client *http.Client
}

func (o ReplicationOptions) withDefaults() ReplicationOptions {
	if o.MembershipPollInterval <= 0 {
		o.MembershipPollInterval = 2 * time.Second
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 2 * time.Second
	}
	if o.ForwardAttempts <= 0 {
		o.ForwardAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 20 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.AntiEntropyInterval <= 0 {
		o.AntiEntropyInterval = 30 * time.Second
	}
	if o.SnapshotMaxBytes <= 0 {
		o.SnapshotMaxBytes = 64 << 20
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// fleetView is one consistent read of the mutable membership state: the
// current ring, the previous-epoch ring while a transition window is
// open, and the remote members of the current epoch. The maps and
// slices it carries are copy-on-write — adoption installs fresh ones —
// so a view taken under the lock stays coherent without holding it.
type fleetView struct {
	epoch      uint64
	ring       *ring.Ring
	prev       *ring.Ring      // nil outside a transition window
	prevPeers  map[string]Peer // remote members of the previous epoch
	peers      map[string]Peer // remote members of the current epoch
	order      []string        // sorted remote member IDs
	membership Membership      // the installed document
	drained    bool            // self is not a member of the current epoch
}

// replication is the per-server sharding state.
type replication struct {
	self    string
	opts    ReplicationOptions
	logger  *slog.Logger
	warming atomic.Bool // joining replica: alive but not yet taking traffic

	breakers *breakerSet[string]

	mu         sync.Mutex
	rng        *mc.RNG         // retry-backoff jitter
	healthy    map[string]bool // probe-driven liveness; true until proven dead
	fleet      fleetView
	lastMerged map[string]uint64 // anti-entropy: last peer digest merged
	watchMod   time.Time         // config watcher: last seen mtime
	watchSum   [sha256.Size]byte // config watcher: last seen content hash

	reqs           *obs.CounterVec // by peer, outcome
	forwardSeconds *obs.Histogram
	warmSeeded     *obs.Counter
	transitions    *obs.Counter
	snapTruncated  *obs.Counter
	aeRounds       *obs.Counter
	aeRepaired     *obs.Counter
	handoffModels  *obs.Counter
}

// view returns a consistent snapshot of the fleet state.
func (p *replication) view() fleetView {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fleet
}

// epoch returns the current membership epoch.
func (p *replication) epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fleet.epoch
}

// newReplication builds the sharding state, or nil when cfg carries no
// fleet. An invalid fleet (duplicate IDs etc.) disables replication and
// logs the reason rather than failing New — cmd/lvf2d validates the
// same fleet up front and exits 2, so this path only triggers for
// programmatic misconfiguration.
func newReplication(cfg Config) *replication {
	o := cfg.Replication
	if len(o.Peers) == 0 && o.Membership == nil {
		return nil
	}
	var boot Membership
	if o.Membership != nil {
		boot = *o.Membership
		if o.SelfID == "" {
			cfg.Logger.Error("lvf2d: replication disabled", "reason", "SelfID required with a membership document")
			return nil
		}
	} else {
		if err := ValidatePeerFleet(o.SelfID, o.Peers); err != nil {
			cfg.Logger.Error("lvf2d: replication disabled", "reason", err.Error())
			return nil
		}
		boot = Membership{
			Epoch:   0,
			Members: append([]Peer{{ID: o.SelfID, URL: o.SelfURL}}, o.Peers...),
		}
	}
	if err := boot.Validate(); err != nil {
		cfg.Logger.Error("lvf2d: replication disabled", "reason", err.Error())
		return nil
	}
	o = o.withDefaults()
	r := cfg.Registry
	opts := o.Breaker
	if opts.JitterSeed == 0 {
		opts.JitterSeed = 1
	}
	p := &replication{
		self:       o.SelfID,
		opts:       o,
		logger:     cfg.Logger,
		breakers:   newBreakerSet[string](opts, cfg.now, r, "lvf2d_peer_breaker", "peer"),
		rng:        mc.NewRNG(opts.JitterSeed | 1),
		healthy:    map[string]bool{},
		lastMerged: map[string]uint64{},
		reqs: obs.NewCounterVec(r, "lvf2d_peer_requests_total",
			"peer forwarding attempts by peer and outcome", "peer", "outcome"),
		forwardSeconds: obs.NewHistogram(r, "lvf2d_peer_forward_seconds",
			"latency of successful forwarded requests", nil),
		warmSeeded: obs.NewCounter(r, "lvf2d_peer_warm_seeded_models_total",
			"owned models warm-seeded from peer snapshot slices on boot"),
		transitions: obs.NewCounter(r, "lvf2d_membership_transitions_total",
			"membership epochs adopted after boot"),
		snapTruncated: obs.NewCounter(r, "lvf2d_peer_snapshot_truncated_total",
			"peer snapshot exports truncated by the max_bytes cap (newest entries kept)"),
		aeRounds: obs.NewCounter(r, "lvf2d_antientropy_rounds_total",
			"anti-entropy digest-exchange rounds completed"),
		aeRepaired: obs.NewCounter(r, "lvf2d_antientropy_models_repaired_total",
			"models re-seeded from peers by anti-entropy repair"),
		handoffModels: obs.NewCounter(r, "lvf2d_handoff_models_total",
			"models pushed to next-epoch owners during a graceful drain"),
	}
	if err := p.install(boot, false); err != nil {
		cfg.Logger.Error("lvf2d: replication disabled", "reason", err.Error())
		return nil
	}
	obs.NewGaugeFunc(r, "lvf2d_ring_epoch", "current membership epoch",
		func() float64 { return float64(p.epoch()) })
	return p
}

// install builds and swaps in the fleet state for membership m. With
// transition set, the outgoing ring is retained as the previous-epoch
// ring (opening the dual-read window) and the transition counter moves;
// boot installs pass false. Callers must not hold p.mu.
func (p *replication) install(m Membership, transition bool) error {
	ids := make([]string, 0, len(m.Members))
	peers := make(map[string]Peer, len(m.Members))
	order := make([]string, 0, len(m.Members))
	selfIn := false
	for _, mem := range m.Members {
		ids = append(ids, mem.ID)
		if mem.ID == p.self {
			selfIn = true
			continue
		}
		peers[mem.ID] = mem
		order = append(order, mem.ID)
	}
	sort.Strings(order)
	rg, err := ring.New(ids, ring.Options{
		VirtualNodes: p.opts.VirtualNodes,
		Seed:         p.opts.RingSeed,
		Epoch:        m.Epoch,
	})
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Epoch-guarded swap: two concurrent adoptions (CAS post racing a
	// probe sync, say) serialise here, and the loser can never regress
	// the fleet to an older epoch.
	if transition && m.Epoch <= p.fleet.epoch {
		return fmt.Errorf("membership epoch %d is not newer than installed epoch %d", m.Epoch, p.fleet.epoch)
	}
	next := fleetView{
		epoch:      m.Epoch,
		ring:       rg,
		peers:      peers,
		order:      order,
		membership: m.clone(),
		drained:    !selfIn,
	}
	if transition {
		next.prev = p.fleet.ring
		next.prevPeers = p.fleet.peers
	}
	for id := range peers {
		if _, known := p.healthy[id]; !known {
			p.healthy[id] = true // new peers start presumed alive
		}
	}
	p.fleet = next
	if transition {
		p.transitions.Inc()
	}
	return nil
}

// clearTransition closes the dual-read window: after one anti-entropy
// round the current owners hold their ranges warm, so the
// previous-epoch ring is no longer worth consulting.
func (p *replication) clearTransition() {
	p.mu.Lock()
	p.fleet.prev = nil
	p.fleet.prevPeers = nil
	p.mu.Unlock()
}

func (p *replication) isHealthy(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy[id]
}

func (p *replication) setHealthy(id string, alive bool) {
	p.mu.Lock()
	p.healthy[id] = alive
	p.mu.Unlock()
}

// retryDelay is the capped jittered backoff before retry attempt n≥1:
// RetryBase·2^(n-1) spread over [d, 1.5d), capped at 16×RetryBase.
func (p *replication) retryDelay(attempt int) time.Duration {
	d := p.opts.RetryBase << (attempt - 1)
	if max := 16 * p.opts.RetryBase; d > max {
		d = max
	}
	p.mu.Lock()
	j := p.rng.Float64()
	p.mu.Unlock()
	return d + time.Duration(j*0.5*float64(d))
}

// maybeForward routes a resolved arc query to its ring owner. It
// returns true when the response has been fully written (a successful
// forward). Returning false means the caller must answer locally —
// either because this replica owns the key (or already has it warm),
// or because no owner is reachable and the request degrades to a
// local-fallback compute (tagged via X-LVF2-Forward).
//
// During a membership transition window the miss dual-reads: the
// current-epoch owner first, then the previous-epoch owner (which still
// holds the range warm until anti-entropy re-seeds the new owner), then
// the deterministic local compute — every failure mode degrades to a
// bit-identical answer, at worst a cold one.
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, ra *resolvedArc, aq arcQuery) bool {
	p := s.repl
	if p == nil || r.Header.Get(forwardedFromHeader) != "" {
		return false
	}
	v := p.view()
	key := cacheKeyFor(ra, aq)
	rk := key.RingKey()
	owner := v.ring.Owner(rk)
	if owner == p.self {
		return false
	}
	// A locally warm key answers in a map lookup; a forward hop could
	// only be slower. Determinism makes the local copy just as correct.
	if _, ok := s.cache.Peek(key); ok {
		return false
	}
	if peer, ok := v.peers[owner]; ok && p.forward(w, r, peer) {
		return true
	}
	if v.prev != nil {
		if prevOwner := v.prev.Owner(rk); prevOwner != owner && prevOwner != p.self {
			// The previous owner may already have left the current
			// membership (a drain), so resolve its URL against the
			// previous epoch's peer set as well.
			peer, ok := v.peers[prevOwner]
			if !ok {
				peer, ok = v.prevPeers[prevOwner]
			}
			if ok && p.forward(w, r, peer) {
				return true
			}
		}
	}
	p.reqs.Inc(owner, "local_fallback")
	w.Header().Set(forwardHeader, forwardOutcomeFallback)
	w.Header().Set(forwardPeerHeader, owner)
	return false
}

// forward relays r to the owner peer, returning true once the owner's
// verified response has been written to w. Any failure mode —
// probe-dead peer, open breaker, exhausted retries, checksum mismatch,
// request deadline — returns false and leaves w untouched.
func (p *replication) forward(w http.ResponseWriter, r *http.Request, peer Peer) bool {
	owner := peer.ID
	if !p.isHealthy(owner) {
		return false
	}
	ok, probe := p.breakers.allow(owner)
	if !ok {
		p.reqs.Inc(owner, "breaker_open")
		return false
	}
	var lastErr error = fmt.Errorf("no forward attempts")
	for attempt := 0; attempt < p.opts.ForwardAttempts; attempt++ {
		if attempt > 0 {
			p.reqs.Inc(owner, "retry")
			select {
			case <-r.Context().Done():
				p.breakers.done(owner, probe, r.Context().Err())
				return false
			case <-time.After(p.retryDelay(attempt)):
			}
		}
		status, header, body, err := p.forwardOnce(r, peer)
		if err == nil {
			p.breakers.done(owner, probe, nil)
			p.reqs.Inc(owner, "ok")
			relayResponse(w, status, header, body, owner)
			p.noteEpochHeader(header.Get(ringEpochHeader), peer)
			return true
		}
		lastErr = err
		if r.Context().Err() != nil {
			break
		}
	}
	p.breakers.done(owner, probe, lastErr)
	return false
}

// forwardOnce issues one forwarded request under the per-peer deadline
// and verifies the owner's body checksum, so a corrupted or truncated
// peer response surfaces as a retryable error instead of reaching the
// client.
func (p *replication) forwardOnce(r *http.Request, peer Peer) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(r.Context(), p.opts.ForwardTimeout)
	defer cancel()
	u := peer.URL + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set(forwardedFromHeader, p.self)
	req.Header.Set(ringEpochHeader, strconv.FormatUint(p.epoch(), 10))
	start := time.Now()
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, nil, err
	}
	// Only verified 200s relay. Anything else (the owner shedding,
	// degraded handling of our own bug, a proxy error page) answers
	// better from the local compute path.
	if resp.StatusCode != http.StatusOK {
		return 0, nil, nil, fmt.Errorf("owner %s answered %d", peer.ID, resp.StatusCode)
	}
	sum := sha256.Sum256(body)
	if got := resp.Header.Get(bodySumHeader); got != hex.EncodeToString(sum[:]) {
		return 0, nil, nil, fmt.Errorf("owner %s body checksum mismatch (len %d)", peer.ID, len(body))
	}
	p.forwardSeconds.Observe(time.Since(start).Seconds())
	return resp.StatusCode, resp.Header, body, nil
}

// noteEpochHeader reacts to a peer's advertised membership epoch after
// the client response is already written: when the peer is ahead, this
// replica pulls the newer membership from it. Lagging the fleet costs
// only extra forward hops (answers stay bit-identical), so the pull is
// best-effort and off the client's critical path.
func (p *replication) noteEpochHeader(value string, peer Peer) {
	if value == "" {
		return
	}
	theirs, err := strconv.ParseUint(value, 10, 64)
	if err != nil || theirs <= p.epoch() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.ForwardTimeout)
	defer cancel()
	p.syncMembershipFrom(ctx, peer)
}

// relayResponse writes a verified owner response to the client,
// preserving the content type and degraded tag and stamping the
// forwarding headers.
func relayResponse(w http.ResponseWriter, status int, header http.Header, body []byte, owner string) {
	for _, h := range [...]string{"Content-Type", degradedHeader} {
		if v := header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(forwardHeader, forwardOutcomeForwarded)
	w.Header().Set(forwardPeerHeader, owner)
	w.WriteHeader(status)
	w.Write(body)
}

// peerIntegrity stamps X-LVF2-Body-SHA256 on responses to forwarded
// requests: the owner buffers the response, checksums it and sends the
// sum as a header, so the forwarding side can detect a corrupted link.
// It also carries both legs of epoch propagation: the response
// advertises this replica's membership epoch, and a request stamped
// with a newer epoch makes this replica pull the sender's membership
// before serving, so the ownership decision below uses the freshest
// ring it can know. Non-forwarded traffic streams through untouched.
func (s *Server) peerIntegrity(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedFromHeader) == "" {
			next.ServeHTTP(w, r)
			return
		}
		if p := s.repl; p != nil {
			p.noteRequestEpoch(r)
			w.Header().Set(ringEpochHeader, strconv.FormatUint(p.epoch(), 10))
		}
		bw := &bufferedResponse{header: make(http.Header)}
		next.ServeHTTP(bw, r)
		for k, vs := range bw.header {
			w.Header()[k] = vs
		}
		sum := sha256.Sum256(bw.buf.Bytes())
		w.Header().Set(bodySumHeader, hex.EncodeToString(sum[:]))
		if bw.status == 0 {
			bw.status = http.StatusOK
		}
		w.WriteHeader(bw.status)
		w.Write(bw.buf.Bytes())
	})
}

// bufferedResponse captures a handler's response so a checksum header
// can precede the body on the wire.
type bufferedResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

// handlePeerSnapshot serves the peer warm-state surface.
//
// GET ?owner=ID[&max_bytes=N] exports the slice of this replica's model
// cache owned by ID under the current ring, in the snapshot wire format
// (which carries its own checksum trailer). The export is capped at
// min(max_bytes, SnapshotMaxBytes); a truncated export keeps the newest
// entries and increments lvf2d_peer_snapshot_truncated_total. A
// restarting replica pulls this from every live peer to warm-seed the
// keys it owns.
//
// POST ingests a snapshot slice pushed by a peer — the key-handoff leg
// of a graceful drain — and merges it into the model cache.
func (s *Server) handlePeerSnapshot(w http.ResponseWriter, r *http.Request) {
	p := s.repl
	if p == nil {
		fail(w, r, &httpError{code: http.StatusNotFound, msg: "replication is not configured"})
		return
	}
	if r.Method == http.MethodPost {
		s.handlePeerSnapshotIngest(w, r)
		return
	}
	v := p.view()
	owner := r.URL.Query().Get("owner")
	member := false
	for _, m := range v.ring.Members() {
		member = member || m == owner
	}
	if owner == "" || !member {
		fail(w, r, badRequest("owner %q is not a ring member (members: %s)",
			owner, strings.Join(v.ring.Members(), ", ")))
		return
	}
	maxBytes := p.opts.SnapshotMaxBytes
	if raw := r.URL.Query().Get("max_bytes"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || n <= 0 {
			fail(w, r, badRequest("max_bytes %q must be a positive integer", raw))
			return
		}
		if n < maxBytes {
			maxBytes = n
		}
	}
	slice, truncated := s.cache.SnapshotModelsCapped(func(k modelcache.ModelKey) bool {
		return v.ring.Owner(k.RingKey()) == owner
	}, int(maxBytes))
	if truncated {
		p.snapTruncated.Inc()
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(slice)))
	w.Header().Set(ringEpochHeader, strconv.FormatUint(v.epoch, 10))
	w.Write(slice)
}

// handlePeerSnapshotIngest merges a pushed snapshot slice (drain
// handoff) into the local cache. The slice's own checksum plus
// per-entry validation guard the merge; a bad body changes nothing.
func (s *Server) handlePeerSnapshotIngest(w http.ResponseWriter, r *http.Request) {
	p := s.repl
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.opts.SnapshotMaxBytes))
	if err != nil {
		fail(w, r, badRequest("snapshot body exceeds %d bytes or was cut short: %v", p.opts.SnapshotMaxBytes, err))
		return
	}
	n, err := s.cache.RestoreModels(body)
	if err != nil {
		fail(w, r, badRequest("snapshot rejected: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"restored": n})
}

// WarmSeedFromPeers pulls this replica's owned-key snapshot slice from
// every peer and merges the entries into the model cache, returning the
// total restored. Entries are bit-identical across replicas (the
// fitters are deterministic), so merging overlapping slices is
// harmless. Peers that are down, partitioned or serving corrupt bytes
// are skipped after ForwardAttempts tries each; warm-seeding is an
// optimisation, never a boot dependency.
func (s *Server) WarmSeedFromPeers(ctx context.Context) int {
	p := s.repl
	if p == nil {
		return 0
	}
	v := p.view()
	total := 0
	for _, id := range v.order {
		slice, err := p.fetchSnapshotSlice(ctx, v.peers[id])
		if err != nil {
			s.cfg.Logger.Warn("lvf2d: warm-seed skipped peer", "peer", id, "reason", err.Error())
			continue
		}
		n, err := s.cache.RestoreModels(slice)
		if err != nil {
			s.cfg.Logger.Warn("lvf2d: warm-seed slice rejected", "peer", id, "reason", err.Error())
			continue
		}
		total += n
	}
	if total > 0 {
		p.warmSeeded.Add(int64(total))
		s.cfg.Logger.Info("lvf2d: warm-seeded owned keys from peers", "models", total)
	}
	return total
}

// fetchSnapshotSlice retrieves one peer's owned-key export, retrying
// transport errors and corrupt payloads (the snapshot's own checksum
// catches those) under the usual per-attempt deadline.
func (p *replication) fetchSnapshotSlice(ctx context.Context, peer Peer) ([]byte, error) {
	u := peer.URL + "/v1/peer/snapshot?owner=" + url.QueryEscape(p.self) +
		"&max_bytes=" + strconv.FormatInt(p.opts.SnapshotMaxBytes, 10)
	var lastErr error
	for attempt := 0; attempt < p.opts.ForwardAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(p.retryDelay(attempt)):
			}
		}
		slice, err := p.fetchSnapshotOnce(ctx, u)
		if err == nil {
			return slice, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

func (p *replication) fetchSnapshotOnce(ctx context.Context, u string) ([]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, p.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	// Guard the read before it happens: a declared oversize body is
	// rejected on the Content-Length alone, and an undeclared one is cut
	// off by the LimitReader — a huge (or lying) donor can never balloon
	// a booting peer's heap past the configured cap.
	cap := p.opts.SnapshotMaxBytes
	if resp.ContentLength > cap {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1))
		resp.Body.Close()
		return nil, fmt.Errorf("peer snapshot declares %d bytes, cap is %d", resp.ContentLength, cap)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, cap+1))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > cap {
		return nil, fmt.Errorf("peer snapshot exceeds %d-byte cap", cap)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	// Validate before accepting so a corrupted body retries here rather
	// than surfacing from RestoreModels after the retry budget is gone.
	if _, err := modelcache.DecodeSnapshot(body); err != nil {
		return nil, err
	}
	return body, nil
}

// ProbePeersOnce probes every peer's /readyz once, updating the
// probe-driven health map. A 200 also force-closes the peer's breaker,
// so recovery latency after a restart is one probe interval instead of
// a full backoff window. A peer advertising a newer membership epoch in
// its probe body is synced from — crash-leave confirmations and
// operator epoch bumps reach partitioned stragglers this way.
// RunListener drives this on ProbeInterval; the chaos suite calls it
// directly.
func (s *Server) ProbePeersOnce(ctx context.Context) {
	p := s.repl
	if p == nil {
		return
	}
	v := p.view()
	for _, id := range v.order {
		alive, theirEpoch := p.probeOne(ctx, v.peers[id])
		p.setHealthy(id, alive)
		if alive {
			p.breakers.heal(id)
		}
		if theirEpoch > p.epoch() {
			p.syncMembershipFrom(ctx, v.peers[id])
		}
	}
}

// probeOne probes peer's /readyz, reporting liveness (a 200) and the
// membership epoch the peer advertises. A warming or draining peer
// answers non-200 — not forwardable — but its epoch still counts.
func (p *replication) probeOne(ctx context.Context, peer Peer) (bool, uint64) {
	rctx, cancel := context.WithTimeout(ctx, p.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, peer.URL+"/readyz", nil)
	if err != nil {
		return false, 0
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return false, 0
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return false, 0
	}
	var parsed readyzResponse
	var theirEpoch uint64
	if json.Unmarshal(body, &parsed) == nil && parsed.Ring != nil {
		theirEpoch = parsed.Ring.Epoch
	}
	return resp.StatusCode == http.StatusOK, theirEpoch
}

// ------------------------------------------------------------- readyz DTO

// readyzRing and readyzPeer extend the /readyz body with ring
// membership and per-peer link state when replication is configured.
type readyzRing struct {
	Self         string   `json:"self"`
	Members      []string `json:"members"`
	VirtualNodes int      `json:"virtual_nodes"`
	Seed         uint64   `json:"seed"`
	Epoch        uint64   `json:"epoch"`
	Drained      bool     `json:"drained,omitempty"`
}

type readyzPeer struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Breaker string `json:"breaker"`
	Healthy bool   `json:"healthy"`
}

type readyzResponse struct {
	Status string       `json:"status"`
	Ring   *readyzRing  `json:"ring,omitempty"`
	Peers  []readyzPeer `json:"peers,omitempty"`
}

// readyzBody assembles the /readyz JSON for the current state.
func (s *Server) readyzBody(status string) readyzResponse {
	resp := readyzResponse{Status: status}
	p := s.repl
	if p == nil {
		return resp
	}
	v := p.view()
	resp.Ring = &readyzRing{
		Self:         p.self,
		Members:      v.ring.Members(),
		VirtualNodes: v.ring.VirtualNodes(),
		Seed:         v.ring.Seed(),
		Epoch:        v.epoch,
		Drained:      v.drained,
	}
	for _, id := range v.order {
		resp.Peers = append(resp.Peers, readyzPeer{
			ID:      id,
			URL:     v.peers[id].URL,
			Breaker: p.breakers.stateOf(id).String(),
			Healthy: p.isHealthy(id),
		})
	}
	return resp
}
