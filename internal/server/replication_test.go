package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lvf2/internal/faultinject"
	"lvf2/internal/modelcache"
)

// ------------------------------------------------------------ fleet harness

// replHost is the stable fake host of one replica. Using synthetic
// hosts instead of httptest sockets keeps addresses identical across
// kill/restart cycles and keeps the whole fleet in-process and
// deterministic under -race.
func replHost(id string) string { return "replica-" + id }

func replURL(id string) string { return "http://" + replHost(id) }

// fleetTransport routes requests to per-host in-process handlers. A nil
// handler models a dead replica: connection refused. Handlers are
// swappable under the lock so a chaos script can kill and restart
// replicas mid-flight.
type fleetTransport struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
}

func newFleetTransport() *fleetTransport {
	return &fleetTransport{handlers: map[string]http.Handler{}}
}

func (f *fleetTransport) set(host string, h http.Handler) {
	f.mu.Lock()
	f.handlers[host] = h
	f.mu.Unlock()
}

func (f *fleetTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	h := f.handlers[req.URL.Host]
	f.mu.Unlock()
	if h == nil {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("fleet: connection refused to %s (%s %s)", req.URL.Host, req.Method, req.URL.Path)
	}
	rec := httptest.NewRecorder()
	clone := req.Clone(req.Context())
	if clone.Body == nil {
		clone.Body = http.NoBody
	}
	h.ServeHTTP(rec, clone)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// testFleet is an in-process replica fleet sharing one routing
// transport, one hand-advanced breaker clock and per-replica MemFS
// snapshot stores that survive kill/restart.
type testFleet struct {
	t       testing.TB
	ids     []string
	ft      *fleetTransport
	client  *http.Client
	clk     *faultinject.Clock
	servers map[string]*Server
	fss     map[string]*faultinject.MemFS
	mutate  func(id string, c *Config)
}

// newTestFleet builds (and starts) a fleet over ids. clientRT is the
// peer-client transport — pass ft itself for a clean network or a
// FaultTransport wrapping it for chaos. mutate tweaks each replica's
// config before start.
func newTestFleet(t testing.TB, ids []string, ft *fleetTransport, clientRT http.RoundTripper, mutate func(string, *Config)) *testFleet {
	t.Helper()
	f := &testFleet{
		t:       t,
		ids:     ids,
		ft:      ft,
		client:  &http.Client{Transport: clientRT},
		clk:     faultinject.NewClock(time.Time{}),
		servers: map[string]*Server{},
		fss:     map[string]*faultinject.MemFS{},
		mutate:  mutate,
	}
	for _, id := range ids {
		f.fss[id] = faultinject.NewMemFS()
	}
	for _, id := range ids {
		f.start(id)
	}
	return f
}

// start boots (or reboots) one replica: fresh Server over the replica's
// persistent MemFS, snapshot restore via Bootstrap, handler registered
// on the fleet. Peer warm-seeding is the caller's move (restart does it;
// initial boot has nothing to seed from).
func (f *testFleet) start(id string) *Server {
	f.t.Helper()
	var peers []Peer
	for _, other := range f.ids {
		if other != id {
			peers = append(peers, Peer{ID: other, URL: replURL(other)})
		}
	}
	cfg := Config{
		FitSamples:   300,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		FS:           f.fss[id],
		SnapshotPath: "state/" + id + ".lvf2snap",
		now:          f.clk.Now,
		Replication: ReplicationOptions{
			SelfID:          id,
			Peers:           peers,
			ForwardTimeout:  2 * time.Second,
			ForwardAttempts: 2,
			RetryBase:       time.Millisecond,
			ProbeInterval:   time.Hour, // probes are driven explicitly
			Breaker:         BreakerOptions{FailureThreshold: 3, OpenBase: time.Second, JitterSeed: 1},
			Client:          f.client,
		},
	}
	if f.mutate != nil {
		f.mutate(id, &cfg)
	}
	s := New(cfg)
	if _, err := s.AddLibrary("testlib", testLibText(f.t, "testlib")); err != nil {
		f.t.Fatal(err)
	}
	s.Bootstrap()
	f.servers[id] = s
	f.ft.set(replHost(id), s.Handler())
	return s
}

// kill models kill -9: the replica vanishes from the network without
// saving anything. Its MemFS (and whatever snapshot it last saved)
// survives for the next start.
func (f *testFleet) kill(id string) {
	f.ft.set(replHost(id), nil)
	delete(f.servers, id)
}

// restart boots a killed replica and runs the recovery protocol:
// snapshot restore (Bootstrap, inside start), peer warm-seed of owned
// keys, and a probe round so the replica sees its live peers.
func (f *testFleet) restart(id string) *Server {
	f.t.Helper()
	s := f.start(id)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.WarmSeedFromPeers(ctx)
	s.ProbePeersOnce(ctx)
	return s
}

func (f *testFleet) server(id string) *Server {
	s, ok := f.servers[id]
	if !ok {
		f.t.Fatalf("fleet: replica %s is dead", id)
	}
	return s
}

// handler returns the live handler for direct (client-side) traffic.
func (f *testFleet) handler(id string) http.Handler {
	f.ft.mu.Lock()
	defer f.ft.mu.Unlock()
	h := f.handlers()[replHost(id)]
	if h == nil {
		f.t.Fatalf("fleet: replica %s is dead", id)
	}
	return h
}

func (f *testFleet) handlers() map[string]http.Handler { return f.ft.handlers }

// ownerOf resolves the ring owner of one arc-query URL as seen by s.
func ownerOf(t testing.TB, s *Server, rawURL string) string {
	t.Helper()
	aq, err := parseArcQuery(httptest.NewRequest(http.MethodGet, rawURL, nil))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := s.resolveArc(aq)
	if err != nil {
		t.Fatal(err)
	}
	return s.repl.view().ring.Owner(cacheKeyFor(ra, aq).RingKey())
}

// urlOwnedBy finds a grid URL owned by want, as computed on s.
func urlOwnedBy(t testing.TB, s *Server, want string) string {
	t.Helper()
	for _, u := range replGridURLs() {
		if ownerOf(t, s, u) == want {
			return u
		}
	}
	t.Fatalf("no grid URL owned by %s", want)
	return ""
}

// replGridURLs is the deterministic query grid of the replication tests:
// every combination is a distinct model-cache key, spread across the
// ring by the key hash.
func replGridURLs() []string {
	var urls []string
	for _, cell := range []string{"INV", "NAND2"} {
		for _, kind := range []string{"lvf2", "norm2", "gaussian", "ln"} {
			for _, slew := range []float64{0.01, 0.02, 0.05} {
				for _, ep := range []string{"/v1/arc/cdf", "/v1/arc/binning"} {
					urls = append(urls, fmt.Sprintf("%s?lib=testlib&cell=%s&kind=%s&slew=%g&load=0.004", ep, cell, kind, slew))
				}
			}
		}
	}
	return urls
}

// --------------------------------------------------------- config parsing

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers([]string{"b=http://replica-b:8080", "c=http://replica-c:8080,d=https://replica-d"})
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{
		{ID: "b", URL: "http://replica-b:8080"},
		{ID: "c", URL: "http://replica-c:8080"},
		{ID: "d", URL: "https://replica-d"},
	}
	if len(peers) != len(want) {
		t.Fatalf("got %d peers, want %d", len(peers), len(want))
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peer %d = %+v, want %+v", i, peers[i], want[i])
		}
	}

	bad := []string{
		"http://no-id",            // missing id=
		"=http://empty-id",        // empty id
		"b=ftp://replica-b",       // bad scheme
		"b=http://",               // no host
		"b=http://replica-b/path", // path not allowed
		"b=http://replica-b?x=1",  // query not allowed
		"b=http://replica-b#frag", // fragment not allowed
		"b=://replica-b",          // unparsable
	}
	for _, spec := range bad {
		_, err := ParsePeers([]string{spec})
		var pce *PeerConfigError
		if !errors.As(err, &pce) {
			t.Errorf("ParsePeers(%q) err = %v, want *PeerConfigError", spec, err)
		}
	}
}

func TestValidatePeerFleet(t *testing.T) {
	ok := []Peer{{ID: "b", URL: "http://b"}, {ID: "c", URL: "http://c"}}
	if err := ValidatePeerFleet("a", ok); err != nil {
		t.Fatalf("valid fleet rejected: %v", err)
	}
	if err := ValidatePeerFleet("", nil); err != nil {
		t.Fatalf("standalone (no peers) rejected: %v", err)
	}
	cases := map[string]struct {
		self  string
		peers []Peer
	}{
		"missing_self":  {"", ok},
		"self_in_peers": {"b", ok},
		"dup_id":        {"a", []Peer{{ID: "b", URL: "http://b"}, {ID: "b", URL: "http://b2"}}},
		"dup_url":       {"a", []Peer{{ID: "b", URL: "http://b"}, {ID: "c", URL: "http://b"}}},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := ValidatePeerFleet(tc.self, tc.peers)
			var pce *PeerConfigError
			if !errors.As(err, &pce) {
				t.Fatalf("err = %v, want *PeerConfigError", err)
			}
		})
	}
}

// ------------------------------------------------------------- forwarding

// TestForwardToOwner pins the happy path: a query landing on a
// non-owner relays the owner's verified answer byte for byte, warms the
// owner's cache (not the forwarder's), and tags the response.
func TestForwardToOwner(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a, b := f.server("a"), f.server("b")
	url := urlOwnedBy(t, a, "b")

	rec, body := get(t, a.Handler(), url)
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded query = %d: %s", rec.Code, body)
	}
	if got := rec.Header().Get(forwardHeader); got != forwardOutcomeForwarded {
		t.Fatalf("%s = %q, want %q", forwardHeader, got, forwardOutcomeForwarded)
	}
	if got := rec.Header().Get(forwardPeerHeader); got != "b" {
		t.Fatalf("%s = %q, want b", forwardPeerHeader, got)
	}
	// Bit-identical to asking the owner directly (its cache is now warm).
	recB, bodyB := get(t, b.Handler(), url)
	if recB.Code != http.StatusOK || string(bodyB) != string(body) {
		t.Fatalf("relayed body differs from the owner's direct answer")
	}
	// The fit landed in the owner's cache; the forwarder stayed cold.
	if hits := b.cache.ModelStats().Hits; hits == 0 {
		t.Fatal("owner cache did not serve the repeat query warm")
	}
	if st := a.cache.ModelStats(); st.Entries != 0 {
		t.Fatalf("forwarder cached %d models for a key it does not own", st.Entries)
	}
	if n := a.repl.reqs.Value("b", "ok"); n != 1 {
		t.Fatalf("lvf2d_peer_requests_total{peer=b,outcome=ok} = %d, want 1", n)
	}
	if a.repl.forwardSeconds.Count() != 1 {
		t.Fatalf("forward histogram count = %d, want 1", a.repl.forwardSeconds.Count())
	}
}

// TestForwardSingleHop proves a forwarded request is never re-forwarded:
// the owner marker makes the receiver compute locally even for keys it
// does not own, and its response carries the integrity checksum.
func TestForwardSingleHop(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b", "c"}, ft, ft, nil)
	a := f.server("a")
	url := urlOwnedBy(t, a, "b")

	// Simulate a stale-ring peer forwarding a b-owned key to a.
	req := httptest.NewRequest(http.MethodGet, url, nil)
	req.Header.Set(forwardedFromHeader, "c")
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("marked request = %d: %s", rec.Code, rec.Body.Bytes())
	}
	if got := rec.Header().Get(forwardHeader); got != "" {
		t.Fatalf("marked request was forwarded again (%s=%q)", forwardHeader, got)
	}
	if rec.Header().Get(bodySumHeader) == "" {
		t.Fatal("response to a forwarded request is missing the body checksum")
	}
	// a computed (and cached) the answer itself.
	if st := a.cache.ModelStats(); st.Entries == 0 {
		t.Fatal("receiver did not compute the marked request locally")
	}
}

// TestForwardLocalFallbackWhenOwnerDead is the availability core of the
// design: with the owner gone, a non-owner answers 200 from its own
// compute — never a 5xx, never an error body.
func TestForwardLocalFallbackWhenOwnerDead(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a := f.server("a")
	url := urlOwnedBy(t, a, "b")
	f.kill("b")

	rec, body := get(t, a.Handler(), url)
	if rec.Code != http.StatusOK {
		t.Fatalf("query with dead owner = %d, want 200: %s", rec.Code, body)
	}
	if got := rec.Header().Get(forwardHeader); got != forwardOutcomeFallback {
		t.Fatalf("%s = %q, want %q", forwardHeader, got, forwardOutcomeFallback)
	}
	if n := a.repl.reqs.Value("b", "local_fallback"); n != 1 {
		t.Fatalf("local_fallback counter = %d, want 1", n)
	}
	if n := a.repl.reqs.Value("b", "retry"); n == 0 {
		t.Fatal("expected at least one counted retry before falling back")
	}
	// The fallback warmed the local cache: the repeat answers without
	// another forward attempt (Peek short-circuits maybeForward).
	before := a.repl.reqs.Value("b", "local_fallback")
	rec2, body2 := get(t, a.Handler(), url)
	if rec2.Code != http.StatusOK || string(body2) != string(body) {
		t.Fatalf("repeat fallback query changed: %d %s", rec2.Code, body2)
	}
	if rec2.Header().Get(forwardHeader) != "" {
		t.Fatal("warm local key still tried to forward")
	}
	if after := a.repl.reqs.Value("b", "local_fallback"); after != before {
		t.Fatal("warm repeat counted another fallback")
	}
}

// TestForwardBreakerOpensAndProbeHeals drives the peer breaker through
// its failure → open → probe-heal cycle.
func TestForwardBreakerOpensAndProbeHeals(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a := f.server("a")
	f.kill("b")

	// Distinct-key b-owned URLs (cdf only — cdf and binning URLs with
	// the same params share a ModelKey) so the local fallback cache
	// never short-circuits the forward attempt.
	var urls []string
	for _, u := range replGridURLs() {
		if strings.HasPrefix(u, "/v1/arc/cdf") && ownerOf(t, a, u) == "b" {
			urls = append(urls, u)
		}
	}
	if len(urls) < 5 {
		t.Fatalf("grid only has %d b-owned URLs", len(urls))
	}
	// FailureThreshold 3: the first three forwards fail and open the
	// breaker; later queries skip forwarding without touching the wire.
	for i := 0; i < 3; i++ {
		rec, _ := get(t, a.Handler(), urls[i])
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d during outage = %d, want 200", i, rec.Code)
		}
	}
	if st := a.repl.breakers.stateOf("b"); st != breakerOpen {
		t.Fatalf("peer breaker after %d failed forwards = %v, want open", 3, st)
	}
	rec, _ := get(t, a.Handler(), urls[3])
	if rec.Code != http.StatusOK || rec.Header().Get(forwardHeader) != forwardOutcomeFallback {
		t.Fatal("open-breaker query did not fall back locally")
	}
	if n := a.repl.reqs.Value("b", "breaker_open"); n == 0 {
		t.Fatal("breaker_open outcome was never counted")
	}

	// Restart b; one probe round heals the breaker and the health map,
	// and the next b-owned query forwards again.
	f.restart("b")
	a.ProbePeersOnce(context.Background())
	if st := a.repl.breakers.stateOf("b"); st != breakerClosed {
		t.Fatalf("peer breaker after probe heal = %v, want closed", st)
	}
	rec, _ = get(t, a.Handler(), urls[4])
	if rec.Code != http.StatusOK || rec.Header().Get(forwardHeader) != forwardOutcomeForwarded {
		t.Fatalf("post-heal query: code %d %s=%q, want forwarded 200",
			rec.Code, forwardHeader, rec.Header().Get(forwardHeader))
	}
}

// TestForwardChecksumGuard proves a corrupted peer link degrades to
// local compute instead of relaying damaged bytes: with every peer
// response body corrupted, answers still come back 200 and correct.
func TestForwardChecksumGuard(t *testing.T) {
	ft := newFleetTransport()
	corrupting := faultinject.NewFaultTransport(ft, faultinject.NetFaults{PCorruptBody: 1}, 11)
	f := newTestFleet(t, []string{"a", "b"}, ft, corrupting, nil)
	a := f.server("a")
	url := urlOwnedBy(t, a, "b")

	rec, body := get(t, a.Handler(), url)
	if rec.Code != http.StatusOK {
		t.Fatalf("query over corrupt link = %d: %s", rec.Code, body)
	}
	if got := rec.Header().Get(forwardHeader); got != forwardOutcomeFallback {
		t.Fatalf("%s = %q, want %q (corrupt bodies must never relay)", forwardHeader, got, forwardOutcomeFallback)
	}
	// The answer is the honest local compute, identical to a standalone
	// server's.
	solo := newTestServer(t, func(c *Config) { c.FitSamples = 300 })
	solo.Bootstrap()
	_, soloBody := get(t, solo.Handler(), url)
	if string(body) != string(soloBody) {
		t.Fatal("fallback body differs from standalone compute")
	}
}

// TestForwardPartitionAsymmetric exercises the split-brain shape: a can
// no longer reach b, but b still reaches a. Both keep answering 200 —
// a by local fallback, b by forwarding.
func TestForwardPartitionAsymmetric(t *testing.T) {
	ft := newFleetTransport()
	faults := faultinject.NewFaultTransport(ft, faultinject.NetFaults{}, 13)
	f := newTestFleet(t, []string{"a", "b"}, ft, faults, nil)
	a, b := f.server("a"), f.server("b")
	bOwned := urlOwnedBy(t, a, "b")
	aOwned := urlOwnedBy(t, a, "a")

	faults.SetPartition(replHost("b"))
	rec, _ := get(t, a.Handler(), bOwned)
	if rec.Code != http.StatusOK || rec.Header().Get(forwardHeader) != forwardOutcomeFallback {
		t.Fatalf("a→b during partition: code %d %s=%q, want fallback 200",
			rec.Code, forwardHeader, rec.Header().Get(forwardHeader))
	}
	// The partition is asymmetric: b's forwards to a share the same
	// transport, and the transport only blocks traffic TO replica-b.
	rec, _ = get(t, b.Handler(), aOwned)
	if rec.Code != http.StatusOK || rec.Header().Get(forwardHeader) != forwardOutcomeForwarded {
		t.Fatalf("b→a during partition: code %d %s=%q, want forwarded 200",
			rec.Code, forwardHeader, rec.Header().Get(forwardHeader))
	}
	faults.SetPartition()
}

// --------------------------------------------------- snapshot + warm-seed

// TestPeerSnapshotEndpoint pins the owned-slice export: only keys the
// requested owner owns, decodable, and guarded against non-members.
func TestPeerSnapshotEndpoint(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b", "c"}, ft, ft, nil)
	a := f.server("a")

	// Warm a's cache with everything it can hold, bypassing forwarding
	// (marked requests compute locally).
	for _, u := range replGridURLs() {
		req := httptest.NewRequest(http.MethodGet, u, nil)
		req.Header.Set(forwardedFromHeader, "test")
		rec := httptest.NewRecorder()
		a.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("warm query %s = %d", u, rec.Code)
		}
	}

	rec, body := get(t, a.Handler(), "/v1/peer/snapshot?owner=b")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot export = %d: %s", rec.Code, body)
	}
	entries, err := modelcache.DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("export does not decode: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("export is empty; expected b-owned keys from the warmed grid")
	}
	for _, e := range entries {
		if owner := a.repl.view().ring.Owner(e.Key.RingKey()); owner != "b" {
			t.Fatalf("export leaked a key owned by %s", owner)
		}
	}
	total := a.cache.ModelStats().Entries
	if len(entries) >= total {
		t.Fatalf("filter kept %d of %d entries; expected a strict slice", len(entries), total)
	}

	for _, bad := range []string{"", "nobody"} {
		rec, _ := get(t, a.Handler(), "/v1/peer/snapshot?owner="+bad)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("owner=%q = %d, want 400", bad, rec.Code)
		}
	}
}

// TestWarmSeedFromPeers proves the restart protocol end to end: while a
// replica is down its peers absorb its keys via local fallback, and on
// restart the replica pulls that owned slice back before taking traffic.
func TestWarmSeedFromPeers(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b"}, ft, ft, nil)
	a, b := f.server("a"), f.server("b")
	var aOwned []string
	for _, u := range replGridURLs() {
		if ownerOf(t, a, u) == "a" {
			aOwned = append(aOwned, u)
		}
	}

	// Kill a, then drive the full grid through b. The a-owned keys fail
	// to forward and land in b's cache as local fallbacks — exactly the
	// state a peer is in after surviving an outage.
	f.kill("a")
	for _, u := range replGridURLs() {
		rec, _ := get(t, b.Handler(), u)
		if rec.Code != http.StatusOK {
			t.Fatalf("grid query %s during outage = %d", u, rec.Code)
		}
	}

	// Restart a; its snapshot was never saved, so it boots cold and
	// recovery rides entirely on the peer warm-seed.
	a2 := f.restart("a")
	if n := a2.cache.ModelStats().Entries; n == 0 {
		t.Fatal("warm-seed restored nothing")
	}
	if v := a2.repl.warmSeeded.Value(); v == 0 {
		t.Fatal("warm-seed counter did not move")
	}
	// Every a-owned key answered from b's copy must now be warm: replay
	// the a-owned URLs and demand hits, not fits.
	st := a2.cache.ModelStats()
	for _, u := range aOwned {
		rec, _ := get(t, a2.Handler(), u)
		if rec.Code != http.StatusOK {
			t.Fatalf("replay %s = %d", u, rec.Code)
		}
	}
	after := a2.cache.ModelStats()
	hits, misses := after.Hits-st.Hits, after.Misses-st.Misses
	if misses != 0 {
		t.Fatalf("replay of %d owned URLs: %d hits, %d misses; want all warm", len(aOwned), hits, misses)
	}
}

// ----------------------------------------------------------------- readyz

func TestReadyzReplicationBody(t *testing.T) {
	ft := newFleetTransport()
	f := newTestFleet(t, []string{"a", "b", "c"}, ft, ft, nil)
	a := f.server("a")

	rec, body := get(t, a.Handler(), "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d: %s", rec.Code, body)
	}
	resp := decode[readyzResponse](t, body)
	if resp.Status != "ready" {
		t.Fatalf("status = %q", resp.Status)
	}
	if resp.Ring == nil || resp.Ring.Self != "a" {
		t.Fatalf("ring block = %+v", resp.Ring)
	}
	if got := strings.Join(resp.Ring.Members, ","); got != "a,b,c" {
		t.Fatalf("members = %q, want a,b,c", got)
	}
	if len(resp.Peers) != 2 {
		t.Fatalf("peers = %+v, want entries for b and c", resp.Peers)
	}
	for _, p := range resp.Peers {
		if p.Breaker != "closed" || !p.Healthy {
			t.Fatalf("peer %s: breaker=%s healthy=%v, want closed/healthy", p.ID, p.Breaker, p.Healthy)
		}
	}

	// Kill b, fail forwards until its breaker opens, and watch the body.
	f.kill("b")
	for _, u := range replGridURLs() {
		if ownerOf(t, a, u) == "b" {
			get(t, a.Handler(), u)
		}
	}
	_, body = get(t, a.Handler(), "/readyz")
	resp = decode[readyzResponse](t, body)
	for _, p := range resp.Peers {
		if p.ID == "b" && p.Breaker == "closed" {
			t.Fatalf("peer b breaker still closed after outage: %+v", resp.Peers)
		}
	}
}

// A standalone server keeps the plain JSON body with no ring block (and
// the legacy starting/ready substrings the probes grep for).
func TestReadyzStandaloneBody(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := get(t, s.Handler(), "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(string(body), "starting") {
		t.Fatalf("pre-bootstrap readyz = %d %s", rec.Code, body)
	}
	s.Bootstrap()
	rec, body = get(t, s.Handler(), "/readyz")
	if rec.Code != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("post-bootstrap readyz = %d %s", rec.Code, body)
	}
	resp := decode[readyzResponse](t, body)
	if resp.Ring != nil || len(resp.Peers) != 0 {
		t.Fatalf("standalone readyz carries replication state: %s", body)
	}
}
