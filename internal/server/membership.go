package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"lvf2/internal/mc"
	"lvf2/internal/modelcache"
)

// Dynamic fleet membership (DESIGN.md §17). The replica fleet advances
// through epoch-versioned membership documents, one epoch at a time —
// the reconfiguration discipline of replicated-state systems applied to
// a deterministic recompute-on-miss cache. A document reaches the fleet
// through three seams, all built on the existing protocol surface:
//
//   - POST /v1/fleet/membership — an epoch-guarded CAS admin endpoint:
//     only epoch == current+1 is accepted, so two racing operators
//     cannot fork the ring.
//   - the membership file watch (stdlib mtime + SHA-256 polling): an
//     operator edit is adopted locally and announced fleet-wide.
//   - epoch propagation piggybacked on forwarding (X-LVF2-Ring-Epoch)
//     and the /readyz probe loop: any replica that learns of a newer
//     epoch pulls the full document from the peer advertising it.
//
// Correctness never depends on how fast an epoch spreads: a lagging
// replica forwards to stale owners or computes locally, and the fitters
// are deterministic, so every answer stays bit-identical — staleness
// costs warmth, not truth.

// Membership is the epoch-versioned fleet document: the complete member
// list (IDs and base URLs) at a given epoch. All replicas build the
// same ring from the same document.
type Membership struct {
	Epoch   uint64 `json:"epoch"`
	Members []Peer `json:"members"`
}

// Validate vets a membership document: at least one member, non-empty
// unique IDs, and unique well-formed base URLs. An empty URL is
// tolerated (a static fleet never dials itself) but means the member
// cannot be announced to.
func (m Membership) Validate() error {
	if len(m.Members) == 0 {
		return &PeerConfigError{Entry: "membership", Reason: "no members"}
	}
	ids := map[string]bool{}
	urls := map[string]bool{}
	for _, mem := range m.Members {
		if mem.ID == "" {
			return &PeerConfigError{Entry: mem.URL, Reason: "member without an ID"}
		}
		if ids[mem.ID] {
			return &PeerConfigError{Entry: mem.ID, Reason: "duplicate member ID"}
		}
		ids[mem.ID] = true
		if mem.URL == "" {
			continue
		}
		if err := validateBaseURL(mem.URL); err != nil {
			return &PeerConfigError{Entry: mem.ID, Reason: err.Error()}
		}
		if urls[mem.URL] {
			return &PeerConfigError{Entry: mem.URL, Reason: "duplicate member URL"}
		}
		urls[mem.URL] = true
	}
	return nil
}

// clone deep-copies the document so an installed membership can never
// alias a caller's slice.
func (m Membership) clone() Membership {
	m.Members = append([]Peer(nil), m.Members...)
	return m
}

// Has reports whether id is a member.
func (m Membership) Has(id string) bool {
	for _, mem := range m.Members {
		if mem.ID == id {
			return true
		}
	}
	return false
}

// equal reports whether two documents agree on epoch and member set
// (order-independent).
func (m Membership) equal(other Membership) bool {
	if m.Epoch != other.Epoch || len(m.Members) != len(other.Members) {
		return false
	}
	byID := make(map[string]string, len(m.Members))
	for _, mem := range m.Members {
		byID[mem.ID] = mem.URL
	}
	for _, mem := range other.Members {
		u, ok := byID[mem.ID]
		if !ok || u != mem.URL {
			return false
		}
	}
	return true
}

// validateBaseURL enforces the bare-base-URL rule shared by -peers
// entries and membership documents: absolute http(s), no path, query
// or fragment (forwarding appends request URIs verbatim).
func validateBaseURL(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("bad URL: %v", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("unsupported scheme %q (want http or https)", u.Scheme)
	}
	if u.Host == "" {
		return fmt.Errorf("missing host")
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		return fmt.Errorf("URL must be a bare base (no path, query or fragment)")
	}
	return nil
}

// ParseMembership decodes and validates a membership document.
func ParseMembership(b []byte) (Membership, error) {
	var m Membership
	if err := json.Unmarshal(b, &m); err != nil {
		return Membership{}, fmt.Errorf("membership: %w", err)
	}
	for i := range m.Members {
		m.Members[i].URL = strings.TrimRight(m.Members[i].URL, "/")
	}
	if err := m.Validate(); err != nil {
		return Membership{}, err
	}
	return m, nil
}

// LoadMembershipFile reads and validates a membership document from
// disk (cmd/lvf2d's -membership flag and the config watcher use this).
func LoadMembershipFile(path string) (Membership, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Membership{}, err
	}
	return ParseMembership(b)
}

// ------------------------------------------------------- adoption paths

// adoptMembership installs m when it is strictly newer than the current
// epoch, opening a transition window (dual-read via the previous ring
// until the next anti-entropy round). This is the loose propagation
// path — probe piggyback, forwarding headers, config watch; the HTTP
// CAS endpoint enforces the stricter one-epoch-at-a-time rule.
func (p *replication) adoptMembership(m Membership, reason string) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	p.mu.Lock()
	stale := m.Epoch <= p.fleet.epoch
	p.mu.Unlock()
	if stale {
		return false, nil
	}
	if err := p.install(m, true); err != nil {
		return false, err
	}
	p.logger.Info("lvf2d: adopted membership",
		"epoch", m.Epoch, "members", len(m.Members), "reason", reason)
	p.persistMembership(m)
	return true, nil
}

// persistMembership writes the adopted document back to the membership
// file (when configured) so a restart boots at the latest epoch. Best
// effort: a write failure costs catch-up time on the next boot, nothing
// else.
func (p *replication) persistMembership(m Membership) {
	path := p.opts.MembershipPath
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		p.logger.Warn("lvf2d: membership persist failed", "path", path, "reason", err.Error())
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		p.logger.Warn("lvf2d: membership persist failed", "path", path, "reason", err.Error())
	}
}

// syncMembershipFrom pulls a peer's full membership document and adopts
// it when newer — the second leg of epoch propagation: the epoch header
// or probe body says "newer exists", this fetch says what it is.
func (p *replication) syncMembershipFrom(ctx context.Context, peer Peer) {
	if peer.URL == "" {
		return
	}
	rctx, cancel := context.WithTimeout(ctx, p.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, peer.URL+"/v1/fleet/membership", nil)
	if err != nil {
		return
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	m, err := ParseMembership(body)
	if err != nil {
		return
	}
	p.adoptMembership(m, "peer-sync:"+peer.ID)
}

// noteRequestEpoch reacts to the epoch a forwarding peer stamped on its
// request: when the sender is ahead, pull the newer membership from it
// before serving, so the ownership decision below uses the freshest
// ring this replica can know.
func (p *replication) noteRequestEpoch(r *http.Request) {
	value := r.Header.Get(ringEpochHeader)
	from := r.Header.Get(forwardedFromHeader)
	if value == "" || from == "" {
		return
	}
	theirs, err := strconv.ParseUint(value, 10, 64)
	if err != nil || theirs <= p.epoch() {
		return
	}
	v := p.view()
	peer, ok := v.peers[from]
	if !ok {
		peer, ok = v.prevPeers[from]
	}
	if !ok {
		return
	}
	p.syncMembershipFrom(r.Context(), peer)
}

// ------------------------------------------------------ config watcher

// CheckMembershipFile polls the membership file once: an mtime change
// triggers a read, a SHA-256 change triggers a parse, and a strictly
// newer valid document is adopted and announced to the fleet. The
// watcher is the operator seam — edit the file on any one replica and
// the whole fleet converges. RunListener drives this on
// MembershipPollInterval; tests call it directly.
func (s *Server) CheckMembershipFile(ctx context.Context) {
	p := s.repl
	if p == nil || p.opts.MembershipPath == "" {
		return
	}
	fi, err := os.Stat(p.opts.MembershipPath)
	if err != nil {
		return
	}
	p.mu.Lock()
	unchanged := fi.ModTime().Equal(p.watchMod)
	p.mu.Unlock()
	if unchanged {
		return
	}
	b, err := os.ReadFile(p.opts.MembershipPath)
	if err != nil {
		return
	}
	sum := sha256.Sum256(b)
	p.mu.Lock()
	sameSum := sum == p.watchSum
	p.watchMod = fi.ModTime()
	p.watchSum = sum
	p.mu.Unlock()
	if sameSum {
		return
	}
	m, err := ParseMembership(b)
	if err != nil {
		p.logger.Warn("lvf2d: membership file rejected",
			"path", p.opts.MembershipPath, "reason", err.Error())
		return
	}
	adopted, err := p.adoptMembership(m, "config-watch")
	if err != nil {
		p.logger.Warn("lvf2d: membership file rejected",
			"path", p.opts.MembershipPath, "reason", err.Error())
		return
	}
	if adopted {
		s.AnnounceMembership(ctx, m)
	}
}

// --------------------------------------------------- announce and join

// AnnounceMembership offers document m to every member (except self)
// over the CAS endpoint, returning how many accepted it. A peer that
// answers 409 with a newer document is synced from instead — announce
// never forces, it converges.
func (s *Server) AnnounceMembership(ctx context.Context, m Membership) int {
	p := s.repl
	if p == nil {
		return 0
	}
	body, err := json.Marshal(m)
	if err != nil {
		return 0
	}
	updated := 0
	for _, mem := range m.Members {
		if mem.ID == p.self || mem.URL == "" {
			continue
		}
		if p.postMembership(ctx, mem, body) {
			updated++
		}
	}
	return updated
}

// postMembership CAS-posts a document to one peer, retrying transport
// errors. On 409 it adopts the peer's answer when newer.
func (p *replication) postMembership(ctx context.Context, peer Peer, body []byte) bool {
	var lastErr error
	for attempt := 0; attempt < p.opts.ForwardAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return false
			case <-time.After(p.retryDelay(attempt)):
			}
		}
		accepted, conflict, err := p.postMembershipOnce(ctx, peer, body)
		if err == nil {
			if conflict != nil {
				p.adoptMembership(*conflict, "cas-conflict:"+peer.ID)
			}
			return accepted
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	p.logger.Warn("lvf2d: membership announce failed", "peer", peer.ID, "reason", lastErr.Error())
	return false
}

func (p *replication) postMembershipOnce(ctx context.Context, peer Peer, body []byte) (accepted bool, conflict *Membership, err error) {
	rctx, cancel := context.WithTimeout(ctx, p.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		peer.URL+"/v1/fleet/membership", bytes.NewReader(body))
	if err != nil {
		return false, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return false, nil, err
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return false, nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil, nil
	case http.StatusConflict:
		var cr membershipConflict
		if json.Unmarshal(respBody, &cr) == nil && cr.Current.Epoch > 0 {
			return false, &cr.Current, nil
		}
		return false, nil, nil
	default:
		return false, nil, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
}

// JoinFleet performs the graceful-join sequence for a replica booted
// with a membership document that already includes it at epoch N+1:
// enter the warming state (readyz answers 503 "warming" so load
// balancers hold traffic), announce the document to the incumbents,
// pull the newly-owned ranges from their previous owners via the
// snapshot machinery, then leave warming. Returns the number of models
// warm-seeded. Unreachable incumbents cost warmth, never correctness.
func (s *Server) JoinFleet(ctx context.Context) int {
	p := s.repl
	if p == nil {
		return 0
	}
	p.warming.Store(true)
	defer p.warming.Store(false)
	m := p.view().membership
	s.AnnounceMembership(ctx, m)
	return s.WarmSeedFromPeers(ctx)
}

// --------------------------------------------------------- HTTP surface

// membershipConflict is the 409 body of the CAS endpoint: the reason
// plus the authoritative current document, so the rejected poster can
// catch up and retry from the right epoch.
type membershipConflict struct {
	Error   string     `json:"error"`
	Current Membership `json:"membership"`
}

// handleFleetMembership serves the admin membership surface.
//
// GET returns the current document. POST is an epoch-guarded CAS:
// exactly epoch == current+1 is accepted (an identical redelivery of
// the current document is acknowledged idempotently); anything else
// answers 409 with the current document.
func (s *Server) handleFleetMembership(w http.ResponseWriter, r *http.Request) {
	p := s.repl
	if p == nil {
		fail(w, r, &httpError{code: http.StatusNotFound, msg: "replication is not configured"})
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, p.view().membership)
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			fail(w, r, badRequest("membership body: %v", err))
			return
		}
		m, err := ParseMembership(body)
		if err != nil {
			fail(w, r, badRequest("%v", err))
			return
		}
		cur := p.view().membership
		switch {
		case m.equal(cur):
			writeJSON(w, http.StatusOK, cur) // idempotent redelivery
		case m.Epoch == cur.Epoch+1:
			if err := p.install(m, true); err != nil {
				fail(w, r, badRequest("%v", err))
				return
			}
			p.logger.Info("lvf2d: adopted membership",
				"epoch", m.Epoch, "members", len(m.Members), "reason", "cas")
			p.persistMembership(m)
			writeJSON(w, http.StatusOK, m)
		default:
			writeJSON(w, http.StatusConflict, membershipConflict{
				Error: fmt.Sprintf("epoch %d does not follow current epoch %d (CAS advances one epoch at a time)",
					m.Epoch, cur.Epoch),
				Current: cur,
			})
		}
	default:
		fail(w, r, &httpError{code: http.StatusMethodNotAllowed, msg: "use GET or POST"})
	}
}

// drainResponse reports a completed graceful drain.
type drainResponse struct {
	Epoch        uint64 `json:"epoch"`
	HandedOff    int    `json:"handed_off"`
	PeersUpdated int    `json:"peers_updated"`
	Note         string `json:"note,omitempty"`
}

// handleFleetDrain serves POST /v1/fleet/drain: the graceful-leave
// sequence. Every locally cached model is pushed to its next-epoch
// owner (key handoff), the shrunk membership is announced to the
// survivors, and finally this replica adopts it too — leaving the ring
// while still serving (misses now always forward or compute locally).
func (s *Server) handleFleetDrain(w http.ResponseWriter, r *http.Request) {
	p := s.repl
	if p == nil {
		fail(w, r, &httpError{code: http.StatusNotFound, msg: "replication is not configured"})
		return
	}
	if r.Method != http.MethodPost {
		fail(w, r, &httpError{code: http.StatusMethodNotAllowed, msg: "use POST"})
		return
	}
	v := p.view()
	if v.drained {
		writeJSON(w, http.StatusOK, drainResponse{Epoch: v.epoch, Note: "already drained"})
		return
	}
	remaining := make([]Peer, 0, len(v.membership.Members))
	ids := make([]string, 0, len(v.membership.Members))
	for _, mem := range v.membership.Members {
		if mem.ID == p.self {
			continue
		}
		remaining = append(remaining, mem)
		ids = append(ids, mem.ID)
	}
	if len(remaining) == 0 {
		writeJSON(w, http.StatusConflict, membershipConflict{
			Error:   "cannot drain the last fleet member",
			Current: v.membership,
		})
		return
	}
	nextRing, _, err := v.ring.Derive(ids)
	if err != nil {
		fail(w, r, badRequest("%v", err))
		return
	}
	// Key handoff before the epoch flips: push every locally cached
	// model to the member that will own it under the next ring, so the
	// fleet stays warm through the drain.
	handed := 0
	for _, mem := range remaining {
		mem := mem
		keep := func(k modelcache.ModelKey) bool {
			return nextRing.Owner(k.RingKey()) == mem.ID
		}
		if n, _ := s.cache.DigestModels(keep); n == 0 || mem.URL == "" {
			continue
		}
		slice, truncated := s.cache.SnapshotModelsCapped(keep, int(p.opts.SnapshotMaxBytes))
		if truncated {
			p.snapTruncated.Inc()
		}
		handed += p.pushSnapshot(r.Context(), mem, slice)
	}
	p.handoffModels.Add(int64(handed))
	next := Membership{Epoch: v.epoch + 1, Members: remaining}
	updated := s.AnnounceMembership(r.Context(), next)
	if _, err := p.adoptMembership(next, "drain"); err != nil {
		fail(w, r, badRequest("%v", err))
		return
	}
	s.cfg.Logger.Info("lvf2d: drained from fleet",
		"epoch", next.Epoch, "handed_off", handed, "peers_updated", updated)
	writeJSON(w, http.StatusOK, drainResponse{
		Epoch: next.Epoch, HandedOff: handed, PeersUpdated: updated,
	})
}

// pushSnapshot POSTs a snapshot slice to a peer's ingest endpoint,
// returning how many models the peer reported restoring.
func (p *replication) pushSnapshot(ctx context.Context, peer Peer, slice []byte) int {
	var lastErr error
	for attempt := 0; attempt < p.opts.ForwardAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return 0
			case <-time.After(p.retryDelay(attempt)):
			}
		}
		n, err := p.pushSnapshotOnce(ctx, peer, slice)
		if err == nil {
			return n
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	p.logger.Warn("lvf2d: drain handoff failed", "peer", peer.ID, "reason", lastErr.Error())
	return 0
}

func (p *replication) pushSnapshotOnce(ctx context.Context, peer Peer, slice []byte) (int, error) {
	rctx, cancel := context.WithTimeout(ctx, p.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		peer.URL+"/v1/peer/snapshot", bytes.NewReader(slice))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	var out struct {
		Restored int `json:"restored"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return 0, err
	}
	return out.Restored, nil
}

// ---------------------------------------------------------- anti-entropy

// peerDigest is the cheap per-owner key-set comparison the anti-entropy
// loop exchanges before deciding to ship a snapshot slice. Digest is
// hex-encoded: a uint64 does not survive JSON's float64 numbers.
type peerDigest struct {
	Epoch  uint64 `json:"epoch"`
	Owner  string `json:"owner"`
	Count  int    `json:"count"`
	Digest string `json:"digest"`
}

// handlePeerDigest serves GET /v1/peer/digest?owner=ID: the count and
// order-independent digest of this replica's cached models owned by ID
// under the current ring.
func (s *Server) handlePeerDigest(w http.ResponseWriter, r *http.Request) {
	p := s.repl
	if p == nil {
		fail(w, r, &httpError{code: http.StatusNotFound, msg: "replication is not configured"})
		return
	}
	v := p.view()
	owner := r.URL.Query().Get("owner")
	member := false
	for _, m := range v.ring.Members() {
		member = member || m == owner
	}
	if owner == "" || !member {
		fail(w, r, badRequest("owner %q is not a ring member", owner))
		return
	}
	count, digest := s.cache.DigestModels(func(k modelcache.ModelKey) bool {
		return v.ring.Owner(k.RingKey()) == owner
	})
	writeJSON(w, http.StatusOK, peerDigest{
		Epoch: v.epoch, Owner: owner, Count: count,
		Digest: strconv.FormatUint(digest, 16),
	})
}

// fetchDigest pulls one peer's digest of this replica's owned keys.
func (p *replication) fetchDigest(ctx context.Context, peer Peer) (peerDigest, error) {
	rctx, cancel := context.WithTimeout(ctx, p.opts.ForwardTimeout)
	defer cancel()
	u := peer.URL + "/v1/peer/digest?owner=" + url.QueryEscape(p.self)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return peerDigest{}, err
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return peerDigest{}, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return peerDigest{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return peerDigest{}, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	var d peerDigest
	if err := json.Unmarshal(body, &d); err != nil {
		return peerDigest{}, err
	}
	return d, nil
}

// AntiEntropyOnce runs one repair round: for every healthy peer,
// compare its digest of this replica's owned keys against the local
// one, and merge the peer's slice when they diverge — re-seeding ranges
// that moved here in a rebalance or went stale across a partition. The
// round closes the transition window (the previous-epoch ring is
// dropped): after one round the current owners hold their ranges warm.
// Returns the number of models repaired. RunListener drives this on
// AntiEntropyInterval; tests and the chaos suite call it directly.
func (s *Server) AntiEntropyOnce(ctx context.Context) int {
	p := s.repl
	if p == nil {
		return 0
	}
	v := p.view()
	repaired := 0
	if !v.drained {
		keep := func(k modelcache.ModelKey) bool {
			return v.ring.Owner(k.RingKey()) == p.self
		}
		selfCount, selfDigest := s.cache.DigestModels(keep)
		for _, id := range v.order {
			peer := v.peers[id]
			if !p.isHealthy(id) || peer.URL == "" {
				continue
			}
			d, err := p.fetchDigest(ctx, peer)
			if err != nil {
				continue
			}
			if d.Epoch != v.epoch {
				// Epochs reconcile through probes and forwarding; a
				// cross-epoch digest compares different ownership maps.
				continue
			}
			theirs, err := strconv.ParseUint(d.Digest, 16, 64)
			if err != nil || d.Count == 0 {
				continue
			}
			if d.Count == selfCount && theirs == selfDigest {
				continue // identical owned sets
			}
			p.mu.Lock()
			seen := p.lastMerged[id] == theirs
			p.mu.Unlock()
			if seen {
				// Merging is monotone: once a peer's exact state has been
				// folded in, a repeat digest means we are a superset, not
				// divergent.
				continue
			}
			slice, err := p.fetchSnapshotSlice(ctx, peer)
			if err != nil {
				continue
			}
			n, err := s.cache.RestoreModels(slice)
			if err != nil {
				continue
			}
			repaired += n
			p.mu.Lock()
			p.lastMerged[id] = theirs
			p.mu.Unlock()
			selfCount, selfDigest = s.cache.DigestModels(keep)
		}
	}
	p.clearTransition()
	p.aeRounds.Inc()
	if repaired > 0 {
		p.aeRepaired.Add(int64(repaired))
		s.cfg.Logger.Info("lvf2d: anti-entropy repaired owned keys", "models", repaired)
	}
	return repaired
}

// ------------------------------------------------------------- jitter

// Background-loop jitter salts: one per loop so a replica's probe,
// anti-entropy and config-watch loops land on different phases too.
const (
	probeJitterSalt       = 0x9e3779b97f4a7c15
	antiEntropyJitterSalt = 0xbf58476d1ce4e5b9
	membershipJitterSalt  = 0x94d049bb133111eb
)

// loopJitter derives a deterministic per-replica startup delay in
// [0, interval): a fleet restarted together must not probe (or
// digest-sweep) in lockstep, and a restart of the same replica must
// keep the same phase so tests can pin it.
func loopJitter(selfID string, salt uint64, interval time.Duration) time.Duration {
	if interval <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(selfID))
	f := mc.NewRNG(h.Sum64() ^ salt).Float64()
	return time.Duration(f * float64(interval))
}

// runJittered sleeps the replica's deterministic jitter, then runs fn
// every interval until ctx ends.
func runJittered(ctx context.Context, selfID string, salt uint64, interval time.Duration, fn func(context.Context)) {
	select {
	case <-time.After(loopJitter(selfID, salt, interval)):
	case <-ctx.Done():
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fn(ctx)
		case <-ctx.Done():
			return
		}
	}
}
