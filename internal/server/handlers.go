package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"lvf2/internal/binning"
	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/modelcache"
	"lvf2/internal/netlist"
	"lvf2/internal/sta"
	"lvf2/internal/stats"
)

// httpError carries a status code (and optional Retry-After hint)
// through the handler error paths.
type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration // >0 sets a Retry-After header (shed/overload)
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// fail writes an error response as JSON, mapping typed httpErrors to
// their code and everything else to 500 (or 503 for a dead deadline, so
// per-request timeouts are distinguishable from server bugs). Shed
// responses carry Retry-After so clients back off instead of hammering.
func fail(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
		if he.retryAfter > 0 {
			secs := int64(he.retryAfter+time.Second-1) / int64(time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
	} else if r.Context().Err() != nil {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ----------------------------------------------------------- arc queries

// arcQuery is the decoded common query surface of the /v1/arc/* and GET
// /v1/yield endpoints.
type arcQuery struct {
	libRef string
	cell   string
	outPin string // optional: default first output pin with arcs
	from   string // optional: default first arc of the pin
	base   string
	slew   float64
	load   float64
	kind   fit.Model
}

// kindNames maps query spellings to model kinds. Only kinds with a
// moments embedding are servable.
var kindNames = map[string]fit.Model{
	"lvf": fit.ModelLVF, "lvf2": fit.ModelLVF2, "norm2": fit.ModelNorm2,
	"lesn": fit.ModelLESN, "ln": fit.ModelLN, "lsn": fit.ModelLSN,
	"gaussian": fit.ModelGaussian,
}

func parseKind(s string) (fit.Model, error) {
	if s == "" {
		return fit.ModelLVF2, nil
	}
	if k, ok := kindNames[strings.ToLower(s)]; ok {
		return k, nil
	}
	return 0, badRequest("unknown kind %q (want one of lvf|lvf2|norm2|lesn|ln|lsn|gaussian)", s)
}

func parseArcQuery(r *http.Request) (arcQuery, error) {
	q := r.URL.Query()
	aq := arcQuery{
		libRef: q.Get("lib"),
		cell:   q.Get("cell"),
		outPin: q.Get("out"),
		from:   q.Get("from"),
		base:   q.Get("base"),
		slew:   0.01,
		load:   0.004,
	}
	if aq.libRef == "" {
		return aq, badRequest("missing required parameter: lib")
	}
	if aq.cell == "" {
		return aq, badRequest("missing required parameter: cell")
	}
	if aq.base == "" {
		aq.base = "cell_rise"
	}
	var err error
	if v := q.Get("slew"); v != "" {
		if aq.slew, err = strconv.ParseFloat(v, 64); err != nil {
			return aq, badRequest("bad slew %q", v)
		}
	}
	if v := q.Get("load"); v != "" {
		if aq.load, err = strconv.ParseFloat(v, 64); err != nil {
			return aq, badRequest("bad load %q", v)
		}
	}
	if aq.kind, err = parseKind(q.Get("kind")); err != nil {
		return aq, err
	}
	return aq, nil
}

// resolvedArc binds a query to one Liberty timing table.
type resolvedArc struct {
	src  *libSource
	lib  *liberty.Library
	cell *liberty.Cell
	out  *liberty.Pin
	arc  *liberty.TimingArc
	tm   *liberty.TimingModel
}

// resolveArc finds the timing model a query addresses, with helpful 404s
// naming what exists when a level of the hierarchy does not resolve.
func (s *Server) resolveArc(aq arcQuery) (*resolvedArc, error) {
	src, lib, err := s.library(aq.libRef)
	if err != nil {
		return nil, err
	}
	cell, ok := lib.Cells[aq.cell]
	if !ok {
		names := make([]string, 0, len(lib.Cells))
		for n := range lib.Cells {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, &httpError{code: http.StatusNotFound,
			msg: fmt.Sprintf("library %s has no cell %q (cells: %s)", src.name, aq.cell, strings.Join(names, ", "))}
	}
	var out *liberty.Pin
	if aq.outPin != "" {
		p, ok := cell.Pins[aq.outPin]
		if !ok || p.Direction != "output" {
			return nil, &httpError{code: http.StatusNotFound,
				msg: fmt.Sprintf("cell %s has no output pin %q", cell.Name, aq.outPin)}
		}
		out = p
	} else {
		for _, p := range cell.OutputPins() {
			if len(p.Timings) > 0 {
				out = p
				break
			}
		}
		if out == nil {
			return nil, &httpError{code: http.StatusNotFound,
				msg: fmt.Sprintf("cell %s has no output pin with timing arcs", cell.Name)}
		}
	}
	var arc *liberty.TimingArc
	if aq.from != "" {
		a, ok := out.ArcTo(aq.from)
		if !ok {
			return nil, &httpError{code: http.StatusNotFound,
				msg: fmt.Sprintf("pin %s/%s has no arc from %q", cell.Name, out.Name, aq.from)}
		}
		arc = a
	} else if len(out.Timings) > 0 {
		arc = out.Timings[0]
	} else {
		return nil, &httpError{code: http.StatusNotFound,
			msg: fmt.Sprintf("pin %s/%s has no timing arcs", cell.Name, out.Name)}
	}
	tm, ok := arc.Tables[aq.base]
	if !ok {
		bases := make([]string, 0, len(arc.Tables))
		for b := range arc.Tables {
			bases = append(bases, b)
		}
		sort.Strings(bases)
		return nil, &httpError{code: http.StatusNotFound,
			msg: fmt.Sprintf("arc %s->%s has no %s table (tables: %s)", arc.RelatedPin, out.Name, aq.base, strings.Join(bases, ", "))}
	}
	return &resolvedArc{src: src, lib: lib, cell: cell, out: out, arc: arc, tm: tm}, nil
}

// degradedDTO is the explicit quality tag of a degraded-mode answer:
// the rung of the FitRobust ladder that actually answered, the kind the
// client asked for, and why the full fit was unavailable. The same rung
// is echoed in the X-LVF2-Degraded header so proxies and load tests can
// count degraded answers without parsing bodies.
type degradedDTO struct {
	Rung      string `json:"rung"`
	Requested string `json:"requested"`
	Reason    string `json:"reason"`
}

// degradedHeader names the served rung on degraded responses.
const degradedHeader = "X-LVF2-Degraded"

// modelFor builds (or fetches) the fitted model for a resolved arc at a
// query point. LVF and LVF² come straight from table interpolation; any
// other kind is refitted from a deterministic quantile sample of the
// arc's LVF² distribution — the expensive path the cache, singleflight,
// circuit breaker and degradation ladder exist for. The returned kind
// is the model actually served (it differs from aq.kind only when deg
// is non-nil).
//
// The refit path is fenced three ways:
//
//  1. Shedding: when the request's remaining deadline cannot cover the
//     observed fit latency (EWMA), it is answered 503 + Retry-After
//     immediately instead of burning a worker until the deadline kills
//     it. Cache hits are never shed.
//  2. Circuit breaker: per-(library,cell). While open, refits are
//     skipped entirely and the degradation ladder answers.
//  3. Deadline propagation: an admitted fit is raced against the
//     request context; expiry counts as a breaker failure and degrades
//     this answer. The fit itself keeps running and installs its result
//     in the cache for the next caller — work already paid for is not
//     discarded.
func (s *Server) modelFor(r *http.Request, ra *resolvedArc, aq arcQuery) (core.Model, fit.Model, *degradedDTO, error) {
	key := cacheKeyFor(ra, aq)
	if aq.kind == fit.ModelLVF || aq.kind == fit.ModelLVF2 {
		// Table interpolation: cheap, deterministic, no fitting — the
		// breaker and ladder never apply.
		m, err := s.cache.Model(key, func() (core.Model, error) {
			return s.tableModel(ra, aq)
		})
		return m, aq.kind, nil, err
	}
	return s.refitModel(r, ra, aq, key)
}

// cacheKeyFor is the full arc coordinate of a resolved query — the
// model-cache key and, via ModelKey.RingKey, the consistent-hash
// sharding key of the replicated serving layer.
func cacheKeyFor(ra *resolvedArc, aq arcQuery) modelcache.ModelKey {
	return modelcache.ModelKey{
		LibHash:    ra.src.hash,
		Cell:       ra.cell.Name,
		OutputPin:  ra.out.Name,
		RelatedPin: ra.arc.RelatedPin,
		Base:       aq.base,
		Slew:       aq.slew,
		Load:       aq.load,
		Kind:       aq.kind,
	}
}

// tableModel is the fit-free path: LVF/LVF² straight from the Liberty
// tables.
func (s *Server) tableModel(ra *resolvedArc, aq arcQuery) (core.Model, error) {
	if aq.kind == fit.ModelLVF {
		th, err := ra.tm.LVFAtPoint(aq.slew, aq.load)
		if err != nil {
			return core.Model{}, err
		}
		m := core.FromLVF(th)
		return m, m.Validate()
	}
	return ra.tm.ModelAtPoint(aq.slew, aq.load)
}

// refitModel serves a kind that needs an actual fit, applying the shed
// check, the circuit breaker and deadline propagation described on
// modelFor.
func (s *Server) refitModel(r *http.Request, ra *resolvedArc, aq arcQuery, key modelcache.ModelKey) (core.Model, fit.Model, *degradedDTO, error) {
	ctx := r.Context()
	bk := breakerKey{libHash: ra.src.hash, cell: ra.cell.Name}
	_, cached := s.cache.Peek(key)

	if !cached {
		// Early shed: compare the remaining budget against the observed
		// fit latency. Deadlines come from the real clock (obs.Timeout),
		// so this check does too.
		if dl, ok := ctx.Deadline(); ok {
			remaining := time.Until(dl)
			if est := s.fitCost.estimate(); remaining <= 0 || (est > 0 && remaining < est) {
				s.shedTotal.Inc()
				retry := max(est, time.Second)
				return core.Model{}, 0, nil, &httpError{
					code:       http.StatusServiceUnavailable,
					msg:        fmt.Sprintf("remaining deadline %v cannot cover a fit (observed ~%v); retry with more budget", remaining, est),
					retryAfter: retry,
				}
			}
		}
		ok, probe := s.breakers.allow(bk)
		if !ok {
			return s.degradedModel(ra, aq, "fit circuit breaker open")
		}
		return s.fitWithDeadline(ctx, ra, aq, key, bk, probe)
	}

	// Cached: serve it through the normal counting path (instant hit).
	m, err := s.cache.Model(key, func() (core.Model, error) {
		return core.Model{}, fmt.Errorf("cache entry for %v vanished", key.Kind)
	})
	if err != nil {
		return s.degradedModel(ra, aq, "cached model evicted mid-request")
	}
	return m, aq.kind, nil, nil
}

// fitWithDeadline runs the cache-miss fit, racing it against the
// request context and reporting the outcome to the breaker.
func (s *Server) fitWithDeadline(ctx context.Context, ra *resolvedArc, aq arcQuery, key modelcache.ModelKey, bk breakerKey, probe bool) (core.Model, fit.Model, *degradedDTO, error) {
	fitFn := func() (core.Model, error) {
		if s.cfg.fitFault != nil {
			if err := s.cfg.fitFault(ctx); err != nil {
				return core.Model{}, err
			}
		}
		start := time.Now()
		base, err := ra.tm.ModelAtPoint(aq.slew, aq.load)
		if err != nil {
			return core.Model{}, err
		}
		xs := quantileSamples(base.Dist(), s.cfg.FitSamples)
		m, _, err := core.FitKindRobust(aq.kind, xs, fit.RobustOptions{})
		if err == nil {
			s.fitCost.observe(time.Since(start))
		}
		return m, err
	}
	type out struct {
		m   core.Model
		err error
	}
	ch := make(chan out, 1)
	go func() {
		m, err := s.cache.Model(key, fitFn)
		ch <- out{m, err}
	}()
	select {
	case o := <-ch:
		s.breakers.done(bk, probe, o.err)
		if o.err != nil {
			return s.degradedModel(ra, aq, fmt.Sprintf("fit failed: %v", o.err))
		}
		return o.m, aq.kind, nil, nil
	case <-ctx.Done():
		// The fit goroutine keeps running and will populate the cache;
		// this request degrades now rather than blocking past its budget.
		s.breakers.done(bk, probe, context.DeadlineExceeded)
		return s.degradedModel(ra, aq, "fit exceeded the request deadline")
	}
}

// degradedModel walks the serving half of the FitRobust ladder
// (Norm² → LVF → Gaussian) and tags the answer with the rung used.
// While the fit path is suspect no new fit is started: the Norm² rung
// is served only if an earlier request already fitted it (cache peek),
// LVF comes from table interpolation (fit-free, the paper's λ=0
// backward-compatibility collapse), and the terminal Gaussian drops the
// skew from the LVF moments. Only when even the table lookup fails does
// the client see an error.
func (s *Server) degradedModel(ra *resolvedArc, aq arcQuery, reason string) (core.Model, fit.Model, *degradedDTO, error) {
	deg := func(rung fit.Model) *degradedDTO {
		s.degradedTotal.Inc(rung.String())
		return &degradedDTO{Rung: rung.String(), Requested: aq.kind.String(), Reason: reason}
	}
	if aq.kind != fit.ModelNorm2 {
		k := modelcache.ModelKey{
			LibHash: ra.src.hash, Cell: ra.cell.Name, OutputPin: ra.out.Name,
			RelatedPin: ra.arc.RelatedPin, Base: aq.base,
			Slew: aq.slew, Load: aq.load, Kind: fit.ModelNorm2,
		}
		if m, ok := s.cache.Peek(k); ok {
			return m, fit.ModelNorm2, deg(fit.ModelNorm2), nil
		}
	}
	th, err := ra.tm.LVFAtPoint(aq.slew, aq.load)
	if err != nil {
		// No usable table data at all: a clean error, not a panic.
		return core.Model{}, 0, nil, fmt.Errorf("degraded (%s) and no LVF table fallback: %w", reason, err)
	}
	if m := core.FromLVF(th); m.Validate() == nil && m.Theta1.Sigma > 0 {
		return m, fit.ModelLVF, deg(fit.ModelLVF), nil
	}
	// Terminal rung: moment-matched Gaussian with a floored sigma.
	sigma := math.Abs(th.Sigma)
	if floor := math.Max(math.Abs(th.Mean)*1e-9, 1e-12); sigma < floor {
		sigma = floor
	}
	g := core.FromLVF(core.Theta{Mean: th.Mean, Sigma: sigma})
	return g, fit.ModelGaussian, deg(fit.ModelGaussian), nil
}

// quantileSamples draws n deterministic samples from d via the midpoint
// quantile grid x_i = Q((i+½)/n) — reproducible by construction, which
// is what makes cached and fresh fits bit-identical.
func quantileSamples(d stats.Dist, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = stats.Quantile(d, (float64(i)+0.5)/float64(n))
	}
	return xs
}

// -------------------------------------------------------------- DTO types

type thetaDTO struct {
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
	Skew  float64 `json:"skew"`
}

type modelDTO struct {
	Kind   string    `json:"kind"`
	Lambda float64   `json:"lambda"`
	Theta1 thetaDTO  `json:"theta1"`
	Theta2 *thetaDTO `json:"theta2,omitempty"`
}

func dtoFromModel(kind fit.Model, m core.Model) modelDTO {
	out := modelDTO{
		Kind:   kind.String(),
		Lambda: m.Lambda,
		Theta1: thetaDTO{Mean: m.Theta1.Mean, Sigma: m.Theta1.Sigma, Skew: m.Theta1.Skew},
	}
	if !m.IsLVF() {
		out.Theta2 = &thetaDTO{Mean: m.Theta2.Mean, Sigma: m.Theta2.Sigma, Skew: m.Theta2.Skew}
	}
	return out
}

type arcDTO struct {
	Library    string  `json:"library"`
	LibHash    string  `json:"lib_hash"`
	Cell       string  `json:"cell"`
	OutputPin  string  `json:"output_pin"`
	RelatedPin string  `json:"related_pin"`
	Base       string  `json:"base"`
	Slew       float64 `json:"slew"`
	Load       float64 `json:"load"`
}

func dtoFromArc(ra *resolvedArc, aq arcQuery) arcDTO {
	return arcDTO{
		Library: ra.src.name, LibHash: ra.src.hash,
		Cell: ra.cell.Name, OutputPin: ra.out.Name, RelatedPin: ra.arc.RelatedPin,
		Base: aq.base, Slew: aq.slew, Load: aq.load,
	}
}

// ------------------------------------------------------------ /v1/arc/cdf

type cdfPoint struct {
	X   float64 `json:"x"`
	CDF float64 `json:"cdf"`
	PDF float64 `json:"pdf"`
}

type cdfResponse struct {
	Arc      arcDTO       `json:"arc"`
	Model    modelDTO     `json:"model"`
	Degraded *degradedDTO `json:"degraded,omitempty"`
	Mean     float64      `json:"mean"`
	Std      float64      `json:"std"`
	Points   []cdfPoint   `json:"points"`
}

func (s *Server) handleArcCDF(w http.ResponseWriter, r *http.Request) {
	aq, err := parseArcQuery(r)
	if err != nil {
		fail(w, r, err)
		return
	}
	ra, err := s.resolveArc(aq)
	if err != nil {
		fail(w, r, err)
		return
	}
	if s.maybeForward(w, r, ra, aq) {
		return
	}
	m, used, deg, err := s.modelFor(r, ra, aq)
	if err != nil {
		fail(w, r, err)
		return
	}
	if deg != nil {
		w.Header().Set(degradedHeader, deg.Rung)
	}
	d := m.Dist()
	mean, std := d.Mean(), stats.Std(d)

	var xs []float64
	if pts := r.URL.Query().Get("points"); pts != "" {
		if xs, err = parseFloats(pts); err != nil {
			fail(w, r, badRequest("bad points: %v", err))
			return
		}
	} else {
		n := 21
		if v := r.URL.Query().Get("n"); v != "" {
			if n, err = strconv.Atoi(v); err != nil || n < 2 || n > 4096 {
				fail(w, r, badRequest("bad n %q (want 2..4096)", v))
				return
			}
		}
		// Evenly spaced over mean ± 4σ: covers the binning range with
		// margin.
		xs = make([]float64, n)
		for i := range xs {
			xs[i] = mean - 4*std + 8*std*float64(i)/float64(n-1)
		}
	}
	resp := cdfResponse{
		Arc: dtoFromArc(ra, aq), Model: dtoFromModel(used, m), Degraded: deg,
		Mean: mean, Std: std,
		Points: make([]cdfPoint, len(xs)),
	}
	for i, x := range xs {
		resp.Points[i] = cdfPoint{X: x, CDF: d.CDF(x), PDF: d.PDF(x)}
	}
	writeJSON(w, http.StatusOK, resp)
}

// -------------------------------------------------------- /v1/arc/binning

type binningResponse struct {
	Arc             arcDTO       `json:"arc"`
	Model           modelDTO     `json:"model"`
	Degraded        *degradedDTO `json:"degraded,omitempty"`
	Mean            float64      `json:"mean"`
	Std             float64      `json:"std"`
	Boundaries      []float64    `json:"boundaries"`
	Probabilities   []float64    `json:"probabilities"`
	Yield3Sigma     float64      `json:"yield_3sigma"`
	ExpectedRevenue *float64     `json:"expected_revenue,omitempty"`
}

func (s *Server) handleArcBinning(w http.ResponseWriter, r *http.Request) {
	aq, err := parseArcQuery(r)
	if err != nil {
		fail(w, r, err)
		return
	}
	ra, err := s.resolveArc(aq)
	if err != nil {
		fail(w, r, err)
		return
	}
	if s.maybeForward(w, r, ra, aq) {
		return
	}
	m, used, deg, err := s.modelFor(r, ra, aq)
	if err != nil {
		fail(w, r, err)
		return
	}
	if deg != nil {
		w.Header().Set(degradedHeader, deg.Rung)
	}
	d := m.Dist()
	mean, std := d.Mean(), stats.Std(d)
	bounds := binning.SigmaBoundaries(mean, std)
	probs := binning.DistProbabilities(d, bounds)
	resp := binningResponse{
		Arc: dtoFromArc(ra, aq), Model: dtoFromModel(used, m), Degraded: deg,
		Mean: mean, Std: std,
		Boundaries:    bounds,
		Probabilities: probs,
		Yield3Sigma:   binning.Yield3Sigma(d.CDF, mean, std),
	}
	if pv := r.URL.Query().Get("prices"); pv != "" {
		prices, err := parseFloats(pv)
		if err != nil {
			fail(w, r, badRequest("bad prices: %v", err))
			return
		}
		if len(prices) != len(probs) {
			fail(w, r, badRequest("prices wants %d values (one per bin), got %d", len(probs), len(prices)))
			return
		}
		rev := binning.ExpectedRevenue(probs, prices)
		resp.ExpectedRevenue = &rev
	}
	writeJSON(w, http.StatusOK, resp)
}

// --------------------------------------------------------------- /v1/yield

type yieldResponse struct {
	Arc      *arcDTO      `json:"arc,omitempty"`
	Model    *modelDTO    `json:"model,omitempty"`
	Degraded *degradedDTO `json:"degraded,omitempty"`
	Clock    float64      `json:"clock"`
	// Yield is the analytic fitted-model answer (per model family); when
	// an estimator is requested Estimate/Estimates carry the sampled
	// rare-event answer with its confidence interval alongside it.
	Yield     map[string]float64           `json:"yield"`
	Estimate  *yieldEstimateDTO            `json:"estimate,omitempty"`
	Estimates map[string]*yieldEstimateDTO `json:"estimates,omitempty"`
}

// handleYield answers GET for per-arc yield at a clock target (default
// μ+3σ of the model — the paper's 3σ-yield) and POST for path-level
// yield over a netlist (product of per-output CDFs at the clock). With
// estimator=mc|mnis|ais the response additionally carries a sampled
// rare-event estimate run under the CI contract (relative half-width
// target from ci=, server-capped sample budget, request deadline).
func (s *Server) handleYield(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleNetlistYield(w, r)
		return
	}
	aq, err := parseArcQuery(r)
	if err != nil {
		fail(w, r, err)
		return
	}
	yp, err := parseYieldParams(r.URL.Query())
	if err != nil {
		fail(w, r, err)
		return
	}
	ra, err := s.resolveArc(aq)
	if err != nil {
		fail(w, r, err)
		return
	}
	if s.maybeForward(w, r, ra, aq) {
		return
	}
	m, used, deg, err := s.modelFor(r, ra, aq)
	if err != nil {
		fail(w, r, err)
		return
	}
	d := m.Dist()
	sigma := defaultYieldSigma
	if yp.hasSigma {
		sigma = yp.sigma
	}
	clock := d.Mean() + sigma*stats.Std(d)
	if yp.hasClock {
		clock = yp.clock
	}
	resp := yieldResponse{Degraded: deg, Clock: clock,
		Yield: map[string]float64{used.String(): d.CDF(clock)}}
	arc := dtoFromArc(ra, aq)
	model := dtoFromModel(used, m)
	resp.Arc, resp.Model = &arc, &model
	if yp.estimator != "" {
		resp.Estimate = s.estimateArcYield(r.Context(), ra, aq, d, clock, yp)
		if deg == nil && resp.Estimate.Degraded != nil {
			deg = resp.Estimate.Degraded
		}
	}
	if deg != nil {
		w.Header().Set(degradedHeader, deg.Rung)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleNetlistYield(w http.ResponseWriter, r *http.Request) {
	req, mod, lib, err := s.decodeNetlistRequest(r)
	if err != nil {
		fail(w, r, err)
		return
	}
	yp := yieldParams{
		sigma: req.Sigma, hasSigma: req.Sigma != 0,
		clock: req.Clock, hasClock: req.Clock > 0,
		estimator: req.Estimator, ci: req.CI,
	}
	if err := yp.validate(); err != nil {
		fail(w, r, err)
		return
	}
	if !yp.hasClock && !yp.hasSigma {
		fail(w, r, badRequest("netlist yield needs a positive clock (or sigma)"))
		return
	}
	fams, err := parseFamilies(req.Families)
	if err != nil {
		fail(w, r, err)
		return
	}
	res, err := sta.Run(lib, mod, sta.Options{InputSlew: req.Slew, Families: fams})
	if err != nil {
		fail(w, r, err)
		return
	}
	clock := req.Clock
	if !yp.hasClock {
		// sigma target: clock = critical-output μ+sσ under the first
		// requested family, shared by every family so the answers compare.
		if clock, err = criticalClock(res, mod, fams[0], yp.sigma); err != nil {
			fail(w, r, err)
			return
		}
	}
	resp := yieldResponse{Clock: clock, Yield: make(map[string]float64, len(fams))}
	for _, fam := range fams {
		y, err := res.YieldAtClock(mod, fam, clock)
		if err != nil {
			fail(w, r, err)
			return
		}
		resp.Yield[fam.String()] = y
	}
	if yp.estimator != "" {
		resp.Estimates = make(map[string]*yieldEstimateDTO, len(fams))
		for _, fam := range fams {
			est, err := s.estimateNetlistYield(r.Context(), res, mod, fam, clock, yp)
			if err != nil {
				fail(w, r, err)
				return
			}
			resp.Estimates[fam.String()] = est
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// criticalClock is the μ+sσ clock of the latest-arriving primary output
// under one model family — the sigma-target clock of POST /v1/yield.
func criticalClock(res *sta.Result, mod *netlist.Module, fam fit.Model, sigma float64) (float64, error) {
	clock, found := 0.0, false
	for _, out := range mod.Outputs() {
		a, ok := res.Arrivals[out]
		if !ok {
			continue
		}
		v, ok := a.Vars[fam]
		if !ok || v == nil {
			return 0, badRequest("output %q has no %v arrival", out, fam)
		}
		d := v.Dist()
		if t := d.Mean() + sigma*stats.Std(d); !found || t > clock {
			clock, found = t, true
		}
	}
	if !found {
		return 0, badRequest("no primary output arrivals")
	}
	return clock, nil
}

// ---------------------------------------------------------------- /v1/ssta

// netlistRequest is the shared body of POST /v1/ssta and POST /v1/yield.
type netlistRequest struct {
	Lib     string `json:"lib"`
	Netlist string `json:"netlist,omitempty"` // structural Verilog source
	Builtin string `json:"builtin,omitempty"` // chain | rca16 | buftree
	N       int    `json:"n,omitempty"`       // chain stages / tree depth
	Cell    string `json:"cell,omitempty"`    // chain cell type

	Slew     float64  `json:"slew,omitempty"`
	Families []string `json:"families,omitempty"`
	Clock    float64  `json:"clock,omitempty"`
	AllNets  bool     `json:"all_nets,omitempty"`

	// Rare-event estimator selection (POST /v1/yield only). Sigma sets
	// the clock at the critical output's μ+sσ when Clock is absent;
	// Estimator picks the ladder rung (mc|mnis|ais); CI overrides the
	// ±1% relative half-width contract.
	Sigma     float64 `json:"sigma,omitempty"`
	Estimator string  `json:"estimator,omitempty"`
	CI        float64 `json:"ci,omitempty"`
}

func (s *Server) decodeNetlistRequest(r *http.Request) (netlistRequest, *netlist.Module, *liberty.Library, error) {
	var req netlistRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		return req, nil, nil, err
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		return req, nil, nil, &httpError{code: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes)}
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, nil, nil, badRequest("bad JSON body: %v", err)
	}
	if req.Lib == "" {
		return req, nil, nil, badRequest("missing required field: lib")
	}
	if req.Slew <= 0 {
		req.Slew = 0.01
	}
	_, lib, err := s.library(req.Lib)
	if err != nil {
		return req, nil, nil, err
	}
	var mod *netlist.Module
	switch {
	case req.Netlist != "":
		if mod, err = netlist.Parse(req.Netlist); err != nil {
			return req, nil, nil, badRequest("netlist: %v", err)
		}
	case req.Builtin == "chain":
		n, cell := req.N, req.Cell
		if n <= 0 {
			n = 8
		}
		if cell == "" {
			cell = "INV"
		}
		mod = netlist.Chain("chain", cell, n)
	case req.Builtin == "rca16":
		mod = netlist.RippleCarryAdder(16)
	case req.Builtin == "buftree":
		n := req.N
		if n <= 0 {
			n = 4
		}
		mod = netlist.BufferTree(n)
	default:
		return req, nil, nil, badRequest("provide netlist source or builtin (chain|rca16|buftree)")
	}
	return req, mod, lib, nil
}

func parseFamilies(names []string) ([]fit.Model, error) {
	if len(names) == 0 {
		return []fit.Model{fit.ModelLVF, fit.ModelLVF2}, nil
	}
	fams := make([]fit.Model, 0, len(names))
	for _, n := range names {
		k, err := parseKind(n)
		if err != nil {
			return nil, err
		}
		if k != fit.ModelLVF && k != fit.ModelLVF2 {
			return nil, badRequest("family %q is not representable from Liberty data (want lvf|lvf2)", n)
		}
		fams = append(fams, k)
	}
	return fams, nil
}

type distSummary struct {
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Q9987 float64 `json:"q99_87"` // μ+3σ-equivalent yield point
}

type netArrivalDTO struct {
	Nominal  float64                `json:"nominal"`
	Slew     float64                `json:"slew"`
	Families map[string]distSummary `json:"families"`
}

type pathStepDTO struct {
	Net      string  `json:"net"`
	Instance string  `json:"instance,omitempty"`
	Arrival  float64 `json:"arrival"`
}

type sstaResponse struct {
	Module         string                   `json:"module"`
	Instances      int                      `json:"instances"`
	CriticalOutput string                   `json:"critical_output"`
	Arrivals       map[string]netArrivalDTO `json:"arrivals"`
	CriticalPath   []pathStepDTO            `json:"critical_path"`
	Yield          map[string]float64       `json:"yield,omitempty"`
}

func (s *Server) handleSSTA(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fail(w, r, &httpError{code: http.StatusMethodNotAllowed, msg: "POST a netlist request"})
		return
	}
	req, mod, lib, err := s.decodeNetlistRequest(r)
	if err != nil {
		fail(w, r, err)
		return
	}
	fams, err := parseFamilies(req.Families)
	if err != nil {
		fail(w, r, err)
		return
	}
	res, err := sta.Run(lib, mod, sta.Options{InputSlew: req.Slew, Families: fams})
	if err != nil {
		fail(w, r, err)
		return
	}
	nets := mod.Outputs()
	if req.AllNets {
		nets = mod.Nets()
	}
	resp := sstaResponse{
		Module: mod.Name, Instances: len(mod.Instances),
		CriticalOutput: res.CriticalOutput,
		Arrivals:       make(map[string]netArrivalDTO, len(nets)),
	}
	for _, net := range nets {
		a, ok := res.Arrivals[net]
		if !ok {
			continue
		}
		dto := netArrivalDTO{Nominal: a.Nominal, Slew: a.Slew,
			Families: make(map[string]distSummary, len(a.Vars))}
		for fam, v := range a.Vars {
			if v == nil {
				continue
			}
			d := v.Dist()
			dto.Families[fam.String()] = distSummary{
				Mean:  d.Mean(),
				Std:   math.Sqrt(d.Variance()),
				Q9987: stats.Quantile(d, 0.9987),
			}
		}
		resp.Arrivals[net] = dto
	}
	for _, step := range res.CriticalPath(res.CriticalOutput) {
		resp.CriticalPath = append(resp.CriticalPath, pathStepDTO{
			Net: step.Net, Instance: step.Instance, Arrival: step.Arrival,
		})
	}
	if req.Clock > 0 {
		resp.Yield = make(map[string]float64, len(fams))
		for _, fam := range fams {
			y, err := res.YieldAtClock(mod, fam, req.Clock)
			if err != nil {
				fail(w, r, err)
				return
			}
			resp.Yield[fam.String()] = y
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ----------------------------------------------------------- /v1/libraries

type libraryInfo struct {
	Name  string `json:"name"`
	Hash  string `json:"hash"`
	Bytes int    `json:"bytes"`
	Cells int    `json:"cells,omitempty"`
}

func (s *Server) handleLibraries(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		infos := make([]libraryInfo, 0, len(s.byHash))
		for _, src := range s.byHash {
			infos = append(infos, libraryInfo{Name: src.name, Hash: src.hash, Bytes: len(src.text)})
		}
		s.mu.Unlock()
		sort.Slice(infos, func(a, b int) bool { return infos[a].Name < infos[b].Name })
		writeJSON(w, http.StatusOK, map[string]any{"libraries": infos})
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
		if err != nil {
			fail(w, r, err)
			return
		}
		if int64(len(body)) > s.cfg.MaxBodyBytes {
			fail(w, r, &httpError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("library exceeds %d bytes", s.cfg.MaxBodyBytes)})
			return
		}
		name := r.URL.Query().Get("name")
		hash, err := s.AddLibrary(name, body)
		if err != nil {
			fail(w, r, badRequest("%v", err))
			return
		}
		src, _ := s.lookupSource(hash)
		_, lib, err := s.library(hash)
		if err != nil {
			fail(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, libraryInfo{
			Name: src.name, Hash: hash, Bytes: len(body), Cells: len(lib.Cells),
		})
	default:
		fail(w, r, &httpError{code: http.StatusMethodNotAllowed, msg: "GET or POST"})
	}
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
