package ssta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lvf2/internal/stats"
)

func randSNMix(r *rand.Rand) SNMixVar {
	w := 0.05 + 0.45*r.Float64()
	return SNMixVar{
		Weights: []float64{1 - w, w},
		Comps: []stats.SkewNormal{
			stats.SNFromMoments(0.05+0.2*r.Float64(), 0.002+0.01*r.Float64(), 1.6*(r.Float64()-0.5)),
			stats.SNFromMoments(0.05+0.2*r.Float64(), 0.002+0.01*r.Float64(), 1.6*(r.Float64()-0.5)),
		},
		MaxComps: 2,
	}
}

// Property: Sum preserves mean and variance exactly (independent sums add
// both), even through the 4→2 component reduction.
func TestSumPreservesMeanVarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSNMix(r), randSNMix(r)
		s, err := a.Sum(b)
		if err != nil {
			return false
		}
		da, db, ds := a.Dist(), b.Dist(), s.Dist()
		wantMean := da.Mean() + db.Mean()
		wantVar := da.Variance() + db.Variance()
		return math.Abs(ds.Mean()-wantMean) < 1e-9*(1+math.Abs(wantMean)) &&
			math.Abs(ds.Variance()-wantVar) < 1e-9*(1+wantVar)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(79))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Sum is commutative in distribution (mean/var/skew of a+b
// equals b+a).
func TestSumCommutativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSNMix(r), randSNMix(r)
		ab, err1 := a.Sum(b)
		ba, err2 := b.Sum(a)
		if err1 != nil || err2 != nil {
			return false
		}
		ma := stats.DistMoments(ab.Dist())
		mb := stats.DistMoments(ba.Dist())
		return math.Abs(ma.Mean-mb.Mean) < 1e-9 &&
			math.Abs(ma.Variance-mb.Variance) < 1e-12 &&
			math.Abs(ma.Skewness-mb.Skewness) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(83))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: max(A, B) stochastically dominates both A and B — its mean is
// at least each input's mean, and its CDF lies below both.
func TestMaxDominatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := SNVar{SN: stats.SNFromMoments(0.1+0.1*r.Float64(), 0.002+0.008*r.Float64(), 1.2*(r.Float64()-0.5))}
		b := SNVar{SN: stats.SNFromMoments(0.1+0.1*r.Float64(), 0.002+0.008*r.Float64(), 1.2*(r.Float64()-0.5))}
		mx, err := a.Max(b)
		if err != nil {
			return false
		}
		d := mx.Dist()
		if d.Mean() < a.SN.Mean()-1e-9 || d.Mean() < b.SN.Mean()-1e-9 {
			return false
		}
		// Spot-check CDF dominance at the inputs' quartiles — but only when
		// the exact max skewness is SN-attainable: beyond the clamp the
		// 3-moment refit cannot represent the shape and CDF dominance is
		// not guaranteed by construction.
		if m := MaxMoments(a.SN, b.SN); math.Abs(m.Skewness) < stats.MaxSNSkewness {
			for _, p := range []float64{0.25, 0.5, 0.75} {
				x := a.SN.Quantile(p)
				if d.CDF(x) > a.SN.CDF(x)+0.05 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(89))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the Gaussian-mixture reduction keeps weights normalised and
// components finite.
func TestGMixSumWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() GMixVar {
			w := 0.05 + 0.9*r.Float64()
			return GMixVar{
				Weights: []float64{w, 1 - w},
				Comps: []stats.Normal{
					{Mu: r.NormFloat64(), Sigma: 0.1 + r.Float64()},
					{Mu: r.NormFloat64(), Sigma: 0.1 + r.Float64()},
				},
				MaxComps: 2,
			}
		}
		s, err := mk().Sum(mk())
		if err != nil {
			return false
		}
		g := s.(GMixVar)
		var tot float64
		for i, w := range g.Weights {
			if w < 0 || math.IsNaN(w) {
				return false
			}
			if g.Comps[i].Sigma <= 0 || math.IsNaN(g.Comps[i].Mu) {
				return false
			}
			tot += w
		}
		return math.Abs(tot-1) < 1e-12 && len(g.Comps) <= 2
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(97))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
