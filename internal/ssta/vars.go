// Package ssta implements block-based statistical static timing analysis
// over the four timing models. Each model family gets a timing-variable
// type closed under the two SSTA operators:
//
//   - Sum (independent stage delays accumulate): cumulants of independent
//     sums add, so LVF adds three cumulants and refits a skew-normal,
//     LESN adds four and refits by moment matching, and the mixture models
//     convolve component-pairwise and then reduce back to two components
//     with a moment-preserving merge.
//   - Max (path convergence): for independent arrivals the density of the
//     maximum is f_A·F_B + F_A·f_B; its moments are integrated numerically
//     and the family is refitted (component-pairwise for mixtures). A
//     Clark-style Gaussian closed form is provided for reference.
//
// The package also exposes the Berry–Esseen bound of Theorem 1, which
// quantifies the O(1/√n) convergence of accumulated delay to a Gaussian —
// the reason LVF²'s advantage decays with logic depth (§3.4).
package ssta

import (
	"errors"
	"fmt"
	"math"

	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// Var is a statistical timing variable closed under Sum and Max.
type Var interface {
	// Dist returns the distribution this variable currently represents.
	Dist() stats.Dist
	// Sum returns the distribution of this + other (independent). The
	// other variable must be of the same concrete family.
	Sum(other Var) (Var, error)
	// Max returns the distribution of max(this, other) (independent).
	Max(other Var) (Var, error)
}

// errFamilyMismatch is returned when mixing variable families.
var errFamilyMismatch = errors.New("ssta: operands belong to different model families")

// ---------------------------------------------------------------- SNVar

// SNVar is the LVF timing variable: a single skew-normal.
type SNVar struct {
	SN stats.SkewNormal
}

// Dist returns the skew-normal.
func (v SNVar) Dist() stats.Dist { return v.SN }

// Sum adds the first three cumulants (exact) and refits a skew-normal;
// the skewness clamp makes the refit lossy only beyond the SN range.
func (v SNVar) Sum(other Var) (Var, error) {
	o, ok := other.(SNVar)
	if !ok {
		return nil, errFamilyMismatch
	}
	a1, a2, a3 := v.SN.Cumulants()
	b1, b2, b3 := o.SN.Cumulants()
	return SNVar{SN: stats.SNFromCumulants(a1+b1, a2+b2, a3+b3)}, nil
}

// Max computes the exact moments of max(A, B) by quadrature and refits.
func (v SNVar) Max(other Var) (Var, error) {
	o, ok := other.(SNVar)
	if !ok {
		return nil, errFamilyMismatch
	}
	m := MaxMoments(v.SN, o.SN)
	return SNVar{SN: stats.SNFromMoments(m.Mean, m.Std(), m.Skewness)}, nil
}

// ------------------------------------------------------------- GMixVar

// GMixVar is the Norm² timing variable: a Gaussian mixture with at most
// MaxComps components (2 in the paper's model).
type GMixVar struct {
	Weights  []float64
	Comps    []stats.Normal
	MaxComps int
}

// Dist returns the Gaussian mixture.
func (v GMixVar) Dist() stats.Dist {
	ds := make([]stats.Dist, len(v.Comps))
	for i, c := range v.Comps {
		ds[i] = c
	}
	m, err := stats.NewMixture(v.Weights, ds)
	if err != nil {
		// Unreachable for variables built by this package.
		return stats.Normal{}
	}
	return m
}

func (v GMixVar) maxComps() int {
	if v.MaxComps <= 0 {
		return 2
	}
	return v.MaxComps
}

// Sum convolves component-pairwise (Gaussian + Gaussian is exactly
// Gaussian) and reduces the component count back to MaxComps.
func (v GMixVar) Sum(other Var) (Var, error) {
	o, ok := other.(GMixVar)
	if !ok {
		return nil, errFamilyMismatch
	}
	var ws []float64
	var cs []stats.Normal
	for i, wa := range v.Weights {
		for j, wb := range o.Weights {
			ws = append(ws, wa*wb)
			cs = append(cs, stats.Normal{
				Mu:    v.Comps[i].Mu + o.Comps[j].Mu,
				Sigma: math.Hypot(v.Comps[i].Sigma, o.Comps[j].Sigma),
			})
		}
	}
	ws, cs = reduceGaussians(ws, cs, v.maxComps())
	return GMixVar{Weights: ws, Comps: cs, MaxComps: v.maxComps()}, nil
}

// Max applies the pairwise-max identity for mixtures of independent
// variables and refits each pairwise max as a Gaussian by moment match.
func (v GMixVar) Max(other Var) (Var, error) {
	o, ok := other.(GMixVar)
	if !ok {
		return nil, errFamilyMismatch
	}
	var ws []float64
	var cs []stats.Normal
	for i, wa := range v.Weights {
		for j, wb := range o.Weights {
			m := MaxMoments(v.Comps[i], o.Comps[j])
			ws = append(ws, wa*wb)
			cs = append(cs, stats.Normal{Mu: m.Mean, Sigma: m.Std()})
		}
	}
	ws, cs = reduceGaussians(ws, cs, v.maxComps())
	return GMixVar{Weights: ws, Comps: cs, MaxComps: v.maxComps()}, nil
}

// ------------------------------------------------------------ SNMixVar

// SNMixVar is the LVF² timing variable: a skew-normal mixture with at
// most MaxComps components (2 in the paper's model).
type SNMixVar struct {
	Weights  []float64
	Comps    []stats.SkewNormal
	MaxComps int
}

// Dist returns the skew-normal mixture.
func (v SNMixVar) Dist() stats.Dist {
	ds := make([]stats.Dist, len(v.Comps))
	for i, c := range v.Comps {
		ds[i] = c
	}
	m, err := stats.NewMixture(v.Weights, ds)
	if err != nil {
		return stats.SkewNormal{}
	}
	return m
}

func (v SNMixVar) maxComps() int {
	if v.MaxComps <= 0 {
		return 2
	}
	return v.MaxComps
}

// Sum convolves component-pairwise via cumulant addition (exact through
// the third cumulant) and reduces back to MaxComps components.
func (v SNMixVar) Sum(other Var) (Var, error) {
	o, ok := other.(SNMixVar)
	if !ok {
		return nil, errFamilyMismatch
	}
	var ws []float64
	var cs []stats.SkewNormal
	for i, wa := range v.Weights {
		for j, wb := range o.Weights {
			a1, a2, a3 := v.Comps[i].Cumulants()
			b1, b2, b3 := o.Comps[j].Cumulants()
			ws = append(ws, wa*wb)
			cs = append(cs, stats.SNFromCumulants(a1+b1, a2+b2, a3+b3))
		}
	}
	ws, cs = reduceSkewNormals(ws, cs, v.maxComps())
	return SNMixVar{Weights: ws, Comps: cs, MaxComps: v.maxComps()}, nil
}

// Max uses the pairwise-max identity and refits each pairwise max as a
// skew-normal from its exact moments.
func (v SNMixVar) Max(other Var) (Var, error) {
	o, ok := other.(SNMixVar)
	if !ok {
		return nil, errFamilyMismatch
	}
	var ws []float64
	var cs []stats.SkewNormal
	for i, wa := range v.Weights {
		for j, wb := range o.Weights {
			m := MaxMoments(v.Comps[i], o.Comps[j])
			ws = append(ws, wa*wb)
			cs = append(cs, stats.SNFromMoments(m.Mean, m.Std(), m.Skewness))
		}
	}
	ws, cs = reduceSkewNormals(ws, cs, v.maxComps())
	return SNMixVar{Weights: ws, Comps: cs, MaxComps: v.maxComps()}, nil
}

// ------------------------------------------------------------- LESNVar

// LESNVar is the LESN timing variable. Sums add all four cumulants (the
// model was designed to match kurtosis) and refit by moment matching.
type LESNVar struct {
	L stats.LogESN
}

// Dist returns the LESN distribution.
func (v LESNVar) Dist() stats.Dist { return v.L }

// Sum adds four cumulants and refits an LESN to the summed moments.
func (v LESNVar) Sum(other Var) (Var, error) {
	o, ok := other.(LESNVar)
	if !ok {
		return nil, errFamilyMismatch
	}
	a := stats.DistMoments(v.L)
	b := stats.DistMoments(o.L)
	a1, a2, a3, a4 := a.Cumulants4()
	b1, b2, b3, b4 := b.Cumulants4()
	target := stats.MomentsFromCumulants(a1+b1, a2+b2, a3+b3, a4+b4)
	l, err := fit.MatchLESNMoments(target)
	if err != nil {
		return nil, fmt.Errorf("ssta: LESN sum refit: %w", err)
	}
	return LESNVar{L: l}, nil
}

// Max computes max moments by quadrature and refits an LESN.
func (v LESNVar) Max(other Var) (Var, error) {
	o, ok := other.(LESNVar)
	if !ok {
		return nil, errFamilyMismatch
	}
	m := MaxMoments(v.L, o.L)
	l, err := fit.MatchLESNMoments(m)
	if err != nil {
		return nil, fmt.Errorf("ssta: LESN max refit: %w", err)
	}
	return LESNVar{L: l}, nil
}

// ---------------------------------------------------------- constructors

// VarFromSamples fits the given model family to stage samples and wraps
// the fit as a timing variable.
func VarFromSamples(family fit.Model, xs []float64, o fit.Options) (Var, error) {
	switch family {
	case fit.ModelLVF:
		r, err := fit.FitLVF(xs)
		if err != nil {
			return nil, err
		}
		return SNVar{SN: r.Dist.(stats.SkewNormal)}, nil
	case fit.ModelNorm2:
		r, err := fit.FitNorm2Params(xs, o)
		if err != nil {
			return nil, err
		}
		return GMixVar{
			Weights:  []float64{1 - r.Lambda, r.Lambda},
			Comps:    []stats.Normal{r.C1, r.C2},
			MaxComps: 2,
		}, nil
	case fit.ModelLVF2:
		r, err := fit.FitLVF2(xs, o)
		if err != nil {
			return nil, err
		}
		return SNMixVar{
			Weights:  []float64{1 - r.Lambda, r.Lambda},
			Comps:    []stats.SkewNormal{r.C1, r.C2},
			MaxComps: 2,
		}, nil
	case fit.ModelLESN:
		r, err := fit.FitLESN(xs, o)
		if err != nil {
			return nil, err
		}
		return LESNVar{L: r.Dist.(stats.LogESN)}, nil
	default:
		return nil, fmt.Errorf("ssta: unknown model family %v", family)
	}
}
