package ssta

import (
	"fmt"
	"sort"

	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// Graph is a timing DAG for block-based SSTA: edges carry stage-delay
// samples, nodes take the statistical maximum of incoming arrivals
// (Devgan & Kashyap block-based propagation). It generalises
// PropagateChain to reconvergent structures such as the adder's carry and
// sum paths.
type Graph struct {
	nodes map[string][]edge
	order []string // node insertion order for deterministic iteration
}

type edge struct {
	from    string
	samples []float64
}

// NewGraph returns an empty timing graph.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[string][]edge)}
}

// AddNode declares a node (sources have no incoming edges).
func (g *Graph) AddNode(name string) {
	if _, ok := g.nodes[name]; !ok {
		g.nodes[name] = nil
		g.order = append(g.order, name)
	}
}

// AddEdge adds a timing arc from -> to with the given MC delay samples.
func (g *Graph) AddEdge(from, to string, samples []float64) {
	g.AddNode(from)
	g.AddNode(to)
	g.nodes[to] = append(g.nodes[to], edge{from: from, samples: samples})
}

// topoSort returns a topological order or an error on cycles.
func (g *Graph) topoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for _, n := range g.order {
		indeg[n] = len(g.nodes[n])
	}
	var queue []string
	for _, n := range g.order {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	succs := make(map[string][]string)
	for _, n := range g.order {
		for _, e := range g.nodes[n] {
			succs[e.from] = append(succs[e.from], n)
		}
	}
	var out []string
	for len(queue) > 0 {
		sort.Strings(queue) // deterministic
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, s := range succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("ssta: timing graph has a cycle")
	}
	return out, nil
}

// ArrivalResult is the arrival-time distribution at one node.
type ArrivalResult struct {
	Golden *stats.Empirical
	Vars   map[fit.Model]Var
	// Criticality maps each predecessor node to the fraction of Monte
	// Carlo samples in which its path sets this node's arrival — the
	// statistical criticality of each fan-in (1.0 at single-input nodes).
	Criticality map[string]float64
}

// Propagate computes arrival times at every node: golden by per-sample
// max/sum, models by their Sum/Max algebra. All edges must carry the same
// sample count.
func (g *Graph) Propagate(families []fit.Model, o fit.Options) (map[string]ArrivalResult, error) {
	order, err := g.topoSort()
	if err != nil {
		return nil, err
	}
	var n int
	for _, node := range order {
		for _, e := range g.nodes[node] {
			if n == 0 {
				n = len(e.samples)
			} else if len(e.samples) != n {
				return nil, fmt.Errorf("ssta: edge into %q has %d samples, want %d", node, len(e.samples), n)
			}
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("ssta: graph has no edges")
	}

	goldenArr := make(map[string][]float64)
	varArr := make(map[string]map[fit.Model]Var)
	out := make(map[string]ArrivalResult)

	for _, node := range order {
		in := g.nodes[node]
		if len(in) == 0 {
			// Source: arrival 0 (represented by nil, treated as zero).
			goldenArr[node] = nil
			varArr[node] = nil
			continue
		}
		// Golden: per-sample max over incoming (pred arrival + edge delay),
		// tracking which fan-in wins each sample (criticality).
		acc := make([]float64, n)
		winner := make([]int, n)
		for k, e := range in {
			pred := goldenArr[e.from]
			for i := 0; i < n; i++ {
				v := e.samples[i]
				if pred != nil {
					v += pred[i]
				}
				if k == 0 || v > acc[i] {
					acc[i] = v
					winner[i] = k
				}
			}
		}
		goldenArr[node] = acc
		crit := make(map[string]float64, len(in))
		for _, w := range winner {
			crit[in[w].from] += 1 / float64(n)
		}

		// Models: fit each edge, add the predecessor arrival, max across.
		vars := make(map[fit.Model]Var, len(families))
		for _, fam := range families {
			var merged Var
			for _, e := range in {
				ev, err := VarFromSamples(fam, e.samples, o)
				if err != nil {
					return nil, fmt.Errorf("ssta: fit edge %s->%s (%v): %w", e.from, node, fam, err)
				}
				if pv := varArr[e.from]; pv != nil {
					if prev, ok := pv[fam]; ok {
						if ev, err = prev.Sum(ev); err != nil {
							return nil, err
						}
					}
				}
				if merged == nil {
					merged = ev
				} else if merged, err = merged.Max(ev); err != nil {
					return nil, err
				}
			}
			vars[fam] = merged
		}
		varArr[node] = vars
		out[node] = ArrivalResult{
			Golden:      stats.NewEmpirical(acc),
			Vars:        vars,
			Criticality: crit,
		}
	}
	return out, nil
}
