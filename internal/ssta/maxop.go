package ssta

import (
	"math"

	"lvf2/internal/stats"
)

// MaxMoments computes the first four moments of max(A, B) for independent
// A, B by numeric quadrature of the max density
//
//	f_max(x) = f_A(x)·F_B(x) + F_A(x)·f_B(x)
//
// over the union of both supports (each truncated at ±10σ).
func MaxMoments(a, b stats.Dist) stats.SampleMoments {
	sa, sb := stats.Std(a), stats.Std(b)
	lo := math.Min(a.Mean()-10*sa, b.Mean()-10*sb)
	hi := math.Max(a.Mean()+10*sa, b.Mean()+10*sb)
	pdf := func(x float64) float64 {
		return a.PDF(x)*b.CDF(x) + a.CDF(x)*b.PDF(x)
	}
	moment := func(f func(float64) float64) float64 {
		return quadrature(f, lo, hi)
	}
	m1 := moment(func(x float64) float64 { return x * pdf(x) })
	m2 := moment(func(x float64) float64 { d := x - m1; return d * d * pdf(x) })
	m3 := moment(func(x float64) float64 { d := x - m1; return d * d * d * pdf(x) })
	m4 := moment(func(x float64) float64 { d := x - m1; return d * d * d * d * pdf(x) })
	sm := stats.SampleMoments{Mean: m1, Variance: m2}
	if m2 > 0 {
		sm.Skewness = m3 / math.Pow(m2, 1.5)
		sm.Kurtosis = m4 / (m2 * m2)
	} else {
		sm.Kurtosis = 3
	}
	return sm
}

// quadrature integrates f over [lo, hi] with 48 composite Simpson panels —
// sufficient for the smooth max densities handled here.
func quadrature(f func(float64) float64, lo, hi float64) float64 {
	const n = 192 // must be even
	h := (hi - lo) / n
	sum := f(lo) + f(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// ClarkMax returns the Clark (1961) closed-form mean and variance of
// max(A, B) for jointly Gaussian A, B with correlation rho — the classical
// block-based SSTA max of Devgan & Kashyap. Provided for reference and as
// a fast path for Gaussian variables; the generic quadrature above handles
// the non-Gaussian families.
func ClarkMax(mu1, var1, mu2, var2, rho float64) (mean, variance float64) {
	a2 := var1 + var2 - 2*rho*math.Sqrt(var1*var2)
	if a2 <= 0 {
		// Perfectly correlated equal-variance inputs: max is the larger.
		if mu1 >= mu2 {
			return mu1, var1
		}
		return mu2, var2
	}
	a := math.Sqrt(a2)
	alpha := (mu1 - mu2) / a
	phi := stats.StdNormPDF(alpha)
	Phi := stats.StdNormCDF(alpha)
	mean = mu1*Phi + mu2*(1-Phi) + a*phi
	ex2 := (var1+mu1*mu1)*Phi + (var2+mu2*mu2)*(1-Phi) + (mu1+mu2)*a*phi
	variance = ex2 - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}
