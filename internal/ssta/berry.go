package ssta

import "math"

// BerryEsseenConstant is the best published universal constant C for the
// Berry–Esseen inequality (Shevtsova 2011).
const BerryEsseenConstant = 0.4748

// BerryEsseenBound evaluates Theorem 1: for the standardised sum of n iid
// variables with third absolute standardised moment rho, the sup-distance
// between the sum's CDF and the standard normal CDF is at most C·ρ/√n.
// This is the O(1/√n) convergence rate that erodes LVF²'s advantage with
// logic depth (§3.4, Corollary 2).
func BerryEsseenBound(rho float64, n int) float64 {
	if n <= 0 || rho < 0 {
		return math.NaN()
	}
	return BerryEsseenConstant * rho / math.Sqrt(float64(n))
}

// AbsThirdStandardizedMoment estimates ρ = E[|X−μ|³]/σ³ from samples.
func AbsThirdStandardizedMoment(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var m2, a3 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		a3 += math.Abs(d * d * d)
	}
	m2 /= float64(n)
	a3 /= float64(n)
	if m2 <= 0 {
		return math.NaN()
	}
	return a3 / math.Pow(m2, 1.5)
}
