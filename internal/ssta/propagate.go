package ssta

import (
	"fmt"

	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// Stage is one element of a timing path: the Monte-Carlo samples of its
// delay (independent across stages under local variation) plus its
// nominal delay for FO4 bookkeeping.
type Stage struct {
	Label   string
	Samples []float64
	Nominal float64
}

// StageResult reports the state after accumulating a stage: the golden
// empirical distribution of the path prefix and each model's propagated
// variable.
type StageResult struct {
	Stage         Stage
	CumNominal    float64
	Golden        *stats.Empirical
	Vars          map[fit.Model]Var
	PropagateErrs map[fit.Model]error
}

// PropagateChain runs block-based SSTA along a chain of stages for the
// given model families:
//
//   - golden: sample-level accumulation (the MC reference of §4.4);
//   - models: each stage's samples are fitted into the family, then the
//     family's Sum operator folds the stage into the path variable.
//
// All stages must carry the same number of samples.
func PropagateChain(stages []Stage, families []fit.Model, o fit.Options) ([]StageResult, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("ssta: empty chain")
	}
	n := len(stages[0].Samples)
	for _, s := range stages {
		if len(s.Samples) != n {
			return nil, fmt.Errorf("ssta: stage %q has %d samples, want %d", s.Label, len(s.Samples), n)
		}
	}
	cum := make([]float64, n)
	acc := make(map[fit.Model]Var, len(families))
	dead := make(map[fit.Model]error, len(families))
	results := make([]StageResult, 0, len(stages))
	var cumNom float64

	for _, st := range stages {
		for i, v := range st.Samples {
			cum[i] += v
		}
		cumNom += st.Nominal

		stageVars := make(map[fit.Model]Var, len(families))
		errs := make(map[fit.Model]error, len(families))
		for _, fam := range families {
			if err, isDead := dead[fam]; isDead {
				errs[fam] = err
				continue
			}
			sv, err := VarFromSamples(fam, st.Samples, o)
			if err != nil {
				dead[fam] = fmt.Errorf("ssta: fit stage %q: %w", st.Label, err)
				errs[fam] = dead[fam]
				continue
			}
			if prev, ok := acc[fam]; ok {
				next, err := prev.Sum(sv)
				if err != nil {
					dead[fam] = fmt.Errorf("ssta: sum at stage %q: %w", st.Label, err)
					errs[fam] = dead[fam]
					continue
				}
				acc[fam] = next
			} else {
				acc[fam] = sv
			}
			stageVars[fam] = acc[fam]
		}
		results = append(results, StageResult{
			Stage:         st,
			CumNominal:    cumNom,
			Golden:        stats.NewEmpirical(cum),
			Vars:          stageVars,
			PropagateErrs: errs,
		})
	}
	return results, nil
}
