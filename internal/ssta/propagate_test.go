package ssta

import (
	"math"
	"math/rand"
	"testing"

	"lvf2/internal/binning"
	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

// makeStages builds nStages independent bimodal stage-delay sample sets.
func makeStages(nStages, nSamples int, seed int64) []Stage {
	rng := rand.New(rand.NewSource(seed))
	truth, _ := stats.NewMixture(
		[]float64{0.7, 0.3},
		[]stats.Dist{
			stats.SNFromMoments(0.020, 0.0012, 0.45),
			stats.SNFromMoments(0.026, 0.0010, 0.35),
		})
	stages := make([]Stage, nStages)
	for s := range stages {
		xs := make([]float64, nSamples)
		for i := range xs {
			xs[i] = truth.Sample(rng)
		}
		stages[s] = Stage{Label: "stage", Samples: xs, Nominal: 0.021}
	}
	return stages
}

func TestPropagateChainGoldenAccumulation(t *testing.T) {
	stages := makeStages(4, 3000, 1)
	res, err := PropagateChain(stages, []fit.Model{fit.ModelLVF}, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	// Golden mean grows additively.
	m1 := res[0].Golden.Mean()
	m4 := res[3].Golden.Mean()
	if math.Abs(m4-4*m1) > 0.02*m4 {
		t.Errorf("golden mean after 4 stages %v, want ~%v", m4, 4*m1)
	}
	// Nominal accumulates.
	if !almostEqual(res[3].CumNominal, 4*0.021, 1e-12) {
		t.Errorf("cumulative nominal %v", res[3].CumNominal)
	}
}

func TestPropagateChainModelTracksGolden(t *testing.T) {
	stages := makeStages(6, 4000, 2)
	fams := []fit.Model{fit.ModelLVF, fit.ModelLVF2}
	res, err := PropagateChain(stages, fams, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := res[len(res)-1]
	for _, fam := range fams {
		v, ok := last.Vars[fam]
		if !ok {
			t.Fatalf("%v: missing var (err: %v)", fam, last.PropagateErrs[fam])
		}
		d := v.Dist()
		gm := last.Golden.Mean()
		if math.Abs(d.Mean()-gm)/gm > 0.01 {
			t.Errorf("%v: propagated mean %v vs golden %v", fam, d.Mean(), gm)
		}
		gs := math.Sqrt(last.Golden.Variance())
		if math.Abs(math.Sqrt(d.Variance())-gs)/gs > 0.05 {
			t.Errorf("%v: propagated std %v vs golden %v", fam, math.Sqrt(d.Variance()), gs)
		}
	}
}

// The paper's CLT claim (§3.4 / Fig. 5): LVF²'s binning-error advantage
// over LVF decays as stages accumulate.
func TestAdvantageDecaysWithDepth(t *testing.T) {
	stages := makeStages(12, 6000, 3)
	fams := []fit.Model{fit.ModelLVF, fit.ModelLVF2}
	res, err := PropagateChain(stages, fams, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reduction := func(r StageResult) float64 {
		mLVF := binning.Evaluate(r.Vars[fit.ModelLVF].Dist(), r.Golden)
		mLVF2 := binning.Evaluate(r.Vars[fit.ModelLVF2].Dist(), r.Golden)
		return binning.Cap(binning.ErrorReduction(mLVF.BinErr, mLVF2.BinErr), 100)
	}
	early := reduction(res[0])
	late := reduction(res[len(res)-1])
	if early <= 1 {
		t.Errorf("stage-1 reduction %v should exceed 1 on bimodal stages", early)
	}
	if late >= early {
		t.Errorf("reduction should decay with depth: early %v late %v", early, late)
	}
}

func TestPropagateChainErrors(t *testing.T) {
	if _, err := PropagateChain(nil, nil, fit.Options{}); err == nil {
		t.Error("empty chain accepted")
	}
	bad := []Stage{
		{Label: "a", Samples: []float64{1, 2, 3}},
		{Label: "b", Samples: []float64{1, 2}},
	}
	if _, err := PropagateChain(bad, nil, fit.Options{}); err == nil {
		t.Error("mismatched sample counts accepted")
	}
}

func TestPropagateChainRecordsFitErrors(t *testing.T) {
	// LESN cannot fit non-positive samples; the chain must keep going and
	// record the error rather than fail.
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() // spans negative values
	}
	stages := []Stage{{Label: "s", Samples: xs}}
	res, err := PropagateChain(stages, []fit.Model{fit.ModelLESN, fit.ModelLVF}, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].PropagateErrs[fit.ModelLESN] == nil {
		t.Error("LESN fit error not recorded")
	}
	if _, ok := res[0].Vars[fit.ModelLVF]; !ok {
		t.Error("LVF should still propagate")
	}
}

func TestGraphChainMatchesPropagateChain(t *testing.T) {
	stages := makeStages(3, 2000, 5)
	g := NewGraph()
	g.AddEdge("n0", "n1", stages[0].Samples)
	g.AddEdge("n1", "n2", stages[1].Samples)
	g.AddEdge("n2", "n3", stages[2].Samples)
	arr, err := g.Propagate([]fit.Model{fit.ModelLVF}, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := PropagateChain(stages, []fit.Model{fit.ModelLVF}, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gm := arr["n3"].Golden.Mean()
	cm := chain[2].Golden.Mean()
	if !almostEqual(gm, cm, 1e-12) {
		t.Errorf("graph mean %v vs chain %v", gm, cm)
	}
	dv := arr["n3"].Vars[fit.ModelLVF].Dist()
	cv := chain[2].Vars[fit.ModelLVF].Dist()
	if !almostEqual(dv.Mean(), cv.Mean(), 1e-9) {
		t.Errorf("model mean %v vs %v", dv.Mean(), cv.Mean())
	}
}

func TestGraphReconvergence(t *testing.T) {
	// Diamond: src -> a -> sink, src -> b -> sink. Arrival at sink is the
	// max of two accumulated paths.
	rng := rand.New(rand.NewSource(6))
	mk := func(mu, sd float64) []float64 {
		xs := make([]float64, 4000)
		for i := range xs {
			xs[i] = mu + sd*rng.NormFloat64()
		}
		return xs
	}
	g := NewGraph()
	g.AddEdge("src", "a", mk(0.05, 0.004))
	g.AddEdge("src", "b", mk(0.055, 0.003))
	g.AddEdge("a", "sink", mk(0.02, 0.002))
	g.AddEdge("b", "sink", mk(0.018, 0.002))
	arr, err := g.Propagate([]fit.Model{fit.ModelLVF}, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := arr["sink"]
	d := sink.Vars[fit.ModelLVF].Dist()
	gm := sink.Golden.Mean()
	if math.Abs(d.Mean()-gm)/gm > 0.02 {
		t.Errorf("reconvergent mean %v vs golden %v", d.Mean(), gm)
	}
	// Max of two paths must exceed each path's own mean.
	if gm <= 0.055+0.018-0.001 {
		t.Errorf("golden max %v suspiciously low", gm)
	}
}

func TestGraphCycleDetected(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b", []float64{1})
	g.AddEdge("b", "a", []float64{1})
	if _, err := g.Propagate([]fit.Model{fit.ModelLVF}, fit.Options{}); err == nil {
		t.Error("cycle not detected")
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	g.AddNode("lonely")
	if _, err := g.Propagate(nil, fit.Options{}); err == nil {
		t.Error("edge-free graph accepted")
	}
	g2 := NewGraph()
	g2.AddEdge("a", "b", []float64{1, 2})
	g2.AddEdge("b", "c", []float64{1})
	if _, err := g2.Propagate(nil, fit.Options{}); err == nil {
		t.Error("mismatched edge sample counts accepted")
	}
}

func TestBerryEsseenBound(t *testing.T) {
	if !math.IsNaN(BerryEsseenBound(1, 0)) {
		t.Error("n=0 must be NaN")
	}
	b1 := BerryEsseenBound(2, 4)
	if !almostEqual(b1, BerryEsseenConstant, 1e-12) {
		t.Errorf("bound %v", b1)
	}
	// O(1/√n): quadrupling n halves the bound.
	if !almostEqual(BerryEsseenBound(2, 16), b1/2, 1e-12) {
		t.Error("bound does not scale as 1/sqrt(n)")
	}
}

func TestAbsThirdStandardizedMoment(t *testing.T) {
	// For a standard normal ρ = E|Z|³ = 2√(2/π) ≈ 1.5958.
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 400000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	rho := AbsThirdStandardizedMoment(xs)
	if math.Abs(rho-1.5958) > 0.02 {
		t.Errorf("rho %v want ~1.5958", rho)
	}
	if !math.IsNaN(AbsThirdStandardizedMoment(nil)) {
		t.Error("empty must be NaN")
	}
	if !math.IsNaN(AbsThirdStandardizedMoment([]float64{1, 1, 1})) {
		t.Error("constant must be NaN")
	}
}

func TestGraphCriticality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mk := func(mu, sd float64) []float64 {
		xs := make([]float64, 6000)
		for i := range xs {
			xs[i] = mu + sd*rng.NormFloat64()
		}
		return xs
	}
	g := NewGraph()
	// Slow branch dominates: should be critical in ~all samples.
	g.AddEdge("a", "sink", mk(0.10, 0.002))
	g.AddEdge("b", "sink", mk(0.07, 0.002))
	arr, err := g.Propagate([]fit.Model{fit.ModelLVF}, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	crit := arr["sink"].Criticality
	if crit["a"] < 0.999 {
		t.Errorf("dominant branch criticality %v", crit["a"])
	}
	// Balanced branches split criticality near 50/50.
	g2 := NewGraph()
	g2.AddEdge("x", "s", mk(0.10, 0.003))
	g2.AddEdge("y", "s", mk(0.10, 0.003))
	arr2, err := g2.Propagate([]fit.Model{fit.ModelLVF}, fit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := arr2["s"].Criticality
	if c2["x"] < 0.4 || c2["x"] > 0.6 {
		t.Errorf("balanced criticality %v", c2)
	}
	if d := c2["x"] + c2["y"]; math.Abs(d-1) > 1e-9 {
		t.Errorf("criticalities sum to %v", d)
	}
}
