package ssta

import (
	"math"

	"lvf2/internal/stats"
)

// Component-count reduction for the mixture timing variables: after a
// pairwise Sum/Max a 2×2 mixture has four components; the paper's LVF²
// library format stores exactly two, so we merge back down with a
// moment-preserving merge (the merged component matches the pooled first
// three moments of its parents). The pairing is chosen greedily by merging
// the two components with the closest means — the natural choice for the
// delay mixtures here, where components are separated along the delay
// axis.

// compMoments describes a weighted component by its first three moments.
type compMoments struct {
	w    float64
	mean float64
	vr   float64
	mu3  float64 // third central moment
}

// pool merges two weighted moment triples exactly.
func pool(a, b compMoments) compMoments {
	w := a.w + b.w
	if w <= 0 {
		return compMoments{}
	}
	fa, fb := a.w/w, b.w/w
	mean := fa*a.mean + fb*b.mean
	da, db := a.mean-mean, b.mean-mean
	vr := fa*(a.vr+da*da) + fb*(b.vr+db*db)
	// Third central moment of the pooled mixture about the pooled mean:
	// E[(X−m)³] = Σ fᵢ(μ3ᵢ + 3dᵢσᵢ² + dᵢ³).
	mu3 := fa*(a.mu3+3*da*a.vr+da*da*da) + fb*(b.mu3+3*db*b.vr+db*db*db)
	return compMoments{w: w, mean: mean, vr: vr, mu3: mu3}
}

// reduceMoments merges components until at most k remain, always merging
// the pair with the smallest absolute mean distance.
func reduceMoments(cs []compMoments, k int) []compMoments {
	for len(cs) > k {
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if d := math.Abs(cs[i].mean - cs[j].mean); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		merged := pool(cs[bi], cs[bj])
		out := make([]compMoments, 0, len(cs)-1)
		for i, c := range cs {
			if i != bi && i != bj {
				out = append(out, c)
			}
		}
		cs = append(out, merged)
	}
	return cs
}

// dropNegligible removes components whose weight is numerically zero.
func dropNegligible(cs []compMoments) []compMoments {
	out := cs[:0]
	for _, c := range cs {
		if c.w > 1e-12 {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return cs[:1]
	}
	return out
}

// reduceGaussians reduces a Gaussian mixture to at most k components.
// Gaussian components carry no third moment (it is zero); the merged
// component keeps the pooled mean/variance.
func reduceGaussians(ws []float64, comps []stats.Normal, k int) ([]float64, []stats.Normal) {
	cs := make([]compMoments, len(ws))
	for i := range ws {
		cs[i] = compMoments{w: ws[i], mean: comps[i].Mu, vr: comps[i].Sigma * comps[i].Sigma}
	}
	cs = reduceMoments(dropNegligible(cs), k)
	outW := make([]float64, len(cs))
	outC := make([]stats.Normal, len(cs))
	var tot float64
	for _, c := range cs {
		tot += c.w
	}
	for i, c := range cs {
		outW[i] = c.w / tot
		outC[i] = stats.Normal{Mu: c.mean, Sigma: math.Sqrt(math.Max(c.vr, 0))}
	}
	return outW, outC
}

// reduceSkewNormals reduces a skew-normal mixture to at most k components,
// preserving each merged component's first three pooled moments.
func reduceSkewNormals(ws []float64, comps []stats.SkewNormal, k int) ([]float64, []stats.SkewNormal) {
	cs := make([]compMoments, len(ws))
	for i := range ws {
		m, sd, g := comps[i].Moments()
		cs[i] = compMoments{w: ws[i], mean: m, vr: sd * sd, mu3: g * sd * sd * sd}
	}
	cs = reduceMoments(dropNegligible(cs), k)
	outW := make([]float64, len(cs))
	outC := make([]stats.SkewNormal, len(cs))
	var tot float64
	for _, c := range cs {
		tot += c.w
	}
	for i, c := range cs {
		outW[i] = c.w / tot
		sd := math.Sqrt(math.Max(c.vr, 0))
		var g float64
		if sd > 0 {
			g = c.mu3 / (sd * sd * sd)
		}
		outC[i] = stats.SNFromMoments(c.mean, sd, g)
	}
	return outW, outC
}
