package ssta

import (
	"math"
	"math/rand"
	"testing"

	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSNVarSumCumulantsExact(t *testing.T) {
	a := SNVar{SN: stats.SNFromMoments(1, 0.1, 0.4)}
	b := SNVar{SN: stats.SNFromMoments(2, 0.2, -0.2)}
	s, err := a.Sum(b)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.(SNVar).SN
	m, sd, g := sn.Moments()
	if !almostEqual(m, 3, 1e-9) {
		t.Errorf("sum mean %v", m)
	}
	wantVar := 0.1*0.1 + 0.2*0.2
	if !almostEqual(sd*sd, wantVar, 1e-9) {
		t.Errorf("sum var %v want %v", sd*sd, wantVar)
	}
	wantK3 := 0.4*math.Pow(0.1, 3) - 0.2*math.Pow(0.2, 3)
	if !almostEqual(g*sd*sd*sd, wantK3, 1e-9) {
		t.Errorf("sum k3 %v want %v", g*sd*sd*sd, wantK3)
	}
}

func TestSumFamilyMismatch(t *testing.T) {
	a := SNVar{SN: stats.SNFromMoments(1, 0.1, 0)}
	b := GMixVar{Weights: []float64{1}, Comps: []stats.Normal{{Mu: 1, Sigma: 1}}}
	if _, err := a.Sum(b); err == nil {
		t.Error("family mismatch accepted in SNVar.Sum")
	}
	if _, err := b.Sum(a); err == nil {
		t.Error("family mismatch accepted in GMixVar.Sum")
	}
	if _, err := a.Max(b); err == nil {
		t.Error("family mismatch accepted in SNVar.Max")
	}
	l := LESNVar{L: stats.LogESN{W: stats.ExtendedSkewNormal{Xi: 0, Omega: 0.1, Alpha: 0, Tau: 0}}}
	if _, err := l.Sum(a); err == nil {
		t.Error("family mismatch accepted in LESNVar.Sum")
	}
	sm := SNMixVar{Weights: []float64{1}, Comps: []stats.SkewNormal{stats.SNFromMoments(1, 0.1, 0)}}
	if _, err := sm.Sum(a); err == nil {
		t.Error("family mismatch accepted in SNMixVar.Sum")
	}
}

func TestGMixVarSumExactForGaussians(t *testing.T) {
	// Sum of two single Gaussians must be the exact Gaussian sum.
	a := GMixVar{Weights: []float64{1}, Comps: []stats.Normal{{Mu: 1, Sigma: 0.3}}}
	b := GMixVar{Weights: []float64{1}, Comps: []stats.Normal{{Mu: 2, Sigma: 0.4}}}
	s, err := a.Sum(b)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Dist()
	if !almostEqual(d.Mean(), 3, 1e-12) {
		t.Errorf("mean %v", d.Mean())
	}
	if !almostEqual(d.Variance(), 0.25, 1e-12) {
		t.Errorf("var %v", d.Variance())
	}
}

func TestGMixVarSumReducesTo2(t *testing.T) {
	a := GMixVar{
		Weights: []float64{0.5, 0.5},
		Comps:   []stats.Normal{{Mu: 0, Sigma: 0.1}, {Mu: 1, Sigma: 0.1}},
	}
	s, err := a.Sum(a)
	if err != nil {
		t.Fatal(err)
	}
	g := s.(GMixVar)
	if len(g.Comps) != 2 {
		t.Fatalf("reduced to %d comps, want 2", len(g.Comps))
	}
	// Mean/variance of the reduced mixture must match the exact 3-peak
	// result (mean 1, var = 0.02 + cross-term 0.5).
	d := s.Dist()
	if !almostEqual(d.Mean(), 1, 1e-12) {
		t.Errorf("mean %v", d.Mean())
	}
	exactVar := 0.02 + 0.5 // Σwσ² + spread of {0,1,1,2} around 1 = 0.5
	if !almostEqual(d.Variance(), exactVar, 1e-9) {
		t.Errorf("var %v want %v", d.Variance(), exactVar)
	}
}

func TestSNMixVarSumAgainstMonteCarlo(t *testing.T) {
	mk := func(ws []float64, comps ...stats.SkewNormal) SNMixVar {
		return SNMixVar{Weights: ws, Comps: comps, MaxComps: 2}
	}
	a := mk([]float64{0.6, 0.4},
		stats.SNFromMoments(0.10, 0.005, 0.4),
		stats.SNFromMoments(0.13, 0.004, 0.3))
	b := mk([]float64{1},
		stats.SNFromMoments(0.05, 0.003, 0.5))
	s, err := a.Sum(b)
	if err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo ground truth for the sum.
	rng := rand.New(rand.NewSource(1))
	n := 200000
	xs := make([]float64, n)
	da, db := a.Dist().(stats.Mixture), b.Dist().(stats.Mixture)
	for i := range xs {
		xs[i] = da.Sample(rng) + db.Sample(rng)
	}
	mcM := stats.Moments(xs)
	d := s.Dist()
	if !almostEqual(d.Mean(), mcM.Mean, 3e-4) {
		t.Errorf("mean %v vs MC %v", d.Mean(), mcM.Mean)
	}
	if !almostEqual(math.Sqrt(d.Variance()), mcM.Std(), 3e-4) {
		t.Errorf("std %v vs MC %v", math.Sqrt(d.Variance()), mcM.Std())
	}
	// CDF agreement at several points.
	emp := stats.NewEmpirical(xs)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		x := emp.QuantileValue(q)
		if diff := math.Abs(d.CDF(x) - q); diff > 0.01 {
			t.Errorf("CDF at q%v differs by %v", q, diff)
		}
	}
}

func TestLESNVarSumPreservesMeanVariance(t *testing.T) {
	a := LESNVar{L: stats.LogESN{W: stats.ExtendedSkewNormal{Xi: -2.3, Omega: 0.2, Alpha: 1, Tau: 0}}}
	b := LESNVar{L: stats.LogESN{W: stats.ExtendedSkewNormal{Xi: -2.0, Omega: 0.15, Alpha: -0.5, Tau: 0.5}}}
	s, err := a.Sum(b)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := a.L.Mean() + b.L.Mean()
	wantVar := a.L.Variance() + b.L.Variance()
	d := s.Dist()
	if math.Abs(d.Mean()-wantMean)/wantMean > 0.02 {
		t.Errorf("mean %v want %v", d.Mean(), wantMean)
	}
	if math.Abs(d.Variance()-wantVar)/wantVar > 0.08 {
		t.Errorf("var %v want %v", d.Variance(), wantVar)
	}
}

func TestMaxMomentsAgainstClark(t *testing.T) {
	// For Gaussians the quadrature max must agree with Clark's closed form.
	a := stats.Normal{Mu: 1, Sigma: 0.3}
	b := stats.Normal{Mu: 1.2, Sigma: 0.4}
	m := MaxMoments(a, b)
	cm, cv := ClarkMax(1, 0.09, 1.2, 0.16, 0)
	if !almostEqual(m.Mean, cm, 1e-6) {
		t.Errorf("max mean %v vs Clark %v", m.Mean, cm)
	}
	if !almostEqual(m.Variance, cv, 1e-6) {
		t.Errorf("max var %v vs Clark %v", m.Variance, cv)
	}
}

func TestClarkMaxDegenerate(t *testing.T) {
	// Perfectly correlated, equal variance: max = larger mean.
	m, v := ClarkMax(2, 0.25, 1, 0.25, 1)
	if m != 2 || v != 0.25 {
		t.Errorf("degenerate Clark: %v %v", m, v)
	}
	m, v = ClarkMax(1, 0.25, 3, 0.25, 1)
	if m != 3 || v != 0.25 {
		t.Errorf("degenerate Clark: %v %v", m, v)
	}
}

func TestSNVarMaxAgainstMonteCarlo(t *testing.T) {
	a := SNVar{SN: stats.SNFromMoments(1.0, 0.2, 0.5)}
	b := SNVar{SN: stats.SNFromMoments(1.1, 0.15, -0.3)}
	mx, err := a.Max(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n := 300000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Max(a.SN.Sample(rng), b.SN.Sample(rng))
	}
	mc := stats.Moments(xs)
	d := mx.Dist()
	if !almostEqual(d.Mean(), mc.Mean, 2e-3) {
		t.Errorf("max mean %v vs MC %v", d.Mean(), mc.Mean)
	}
	if !almostEqual(math.Sqrt(d.Variance()), mc.Std(), 2e-3) {
		t.Errorf("max std %v vs MC %v", math.Sqrt(d.Variance()), mc.Std())
	}
}

func TestVarFromSamplesAllFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := stats.SNFromMoments(0.1, 0.01, 0.5)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	for _, fam := range fit.AllModels {
		v, err := VarFromSamples(fam, xs, fit.Options{})
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		d := v.Dist()
		if math.Abs(d.Mean()-0.1) > 0.003 {
			t.Errorf("%v mean %v", fam, d.Mean())
		}
	}
	if _, err := VarFromSamples(fit.Model(77), xs, fit.Options{}); err == nil {
		t.Error("unknown family accepted")
	}
}
