package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegIncGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 − e^{−x}.
	for _, x := range []float64{0.1, 1, 2.5, 7} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaP(1, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("P(1,%v) = %v want %v", x, got, want)
		}
	}
	// P(1/2, x) = erf(√x).
	for _, x := range []float64{0.2, 1, 3} {
		want := math.Erf(math.Sqrt(x))
		if got := RegIncGammaP(0.5, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("P(0.5,%v) = %v want %v", x, got, want)
		}
	}
	if RegIncGammaP(2, 0) != 0 {
		t.Error("P(a,0) must be 0")
	}
	if !math.IsNaN(RegIncGammaP(-1, 1)) || !math.IsNaN(RegIncGammaP(1, -1)) {
		t.Error("invalid args must be NaN")
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Median of chi-square with k=2 is 2·ln2.
	if got := ChiSquareCDF(2*math.Ln2, 2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("median χ²(2): %v", got)
	}
	// 95th percentile of χ²(1) ≈ 3.841.
	if got := ChiSquareCDF(3.841458820694124, 1); !almostEqual(got, 0.95, 1e-9) {
		t.Errorf("χ²(1) at 3.8415: %v", got)
	}
	// 95th percentile of χ²(10) ≈ 18.307.
	if got := ChiSquareCDF(18.307038053275146, 10); !almostEqual(got, 0.95, 1e-9) {
		t.Errorf("χ²(10) at 18.307: %v", got)
	}
	if ChiSquareCDF(-1, 3) != 0 || ChiSquareCDF(1, 0) != 0 {
		t.Error("edge cases")
	}
}

func TestChiSquareGOFAcceptsTrueModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Normal{Mu: 2, Sigma: 0.5}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	res := ChiSquareGOF(d, xs, 20, 0)
	if res.PValue < 0.01 {
		t.Errorf("true model rejected: p=%v stat=%v", res.PValue, res.Statistic)
	}
	if res.DoF != 19 {
		t.Errorf("dof %d", res.DoF)
	}
}

func TestChiSquareGOFRejectsWrongModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := Normal{Mu: 2, Sigma: 0.5}
	wrong := Normal{Mu: 2.2, Sigma: 0.5}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	res := ChiSquareGOF(wrong, xs, 20, 0)
	if res.PValue > 1e-6 {
		t.Errorf("wrong model accepted: p=%v", res.PValue)
	}
}

func TestChiSquareGOFDegenerate(t *testing.T) {
	d := Normal{Mu: 0, Sigma: 1}
	if !math.IsNaN(ChiSquareGOF(d, make([]float64, 10), 20, 0).PValue) {
		t.Error("too-few samples should be NaN")
	}
	if !math.IsNaN(ChiSquareGOF(d, make([]float64, 100), 1, 0).PValue) {
		t.Error("nbins < 2 should be NaN")
	}
}

func TestKSPValue(t *testing.T) {
	// Tiny distance on many samples: p ≈ 1.
	if p := KSPValue(1e-6, 1000); p < 0.999 {
		t.Errorf("tiny distance p=%v", p)
	}
	// Large distance: p ≈ 0.
	if p := KSPValue(0.5, 1000); p > 1e-10 {
		t.Errorf("huge distance p=%v", p)
	}
	// Monotone in d.
	if KSPValue(0.02, 2000) <= KSPValue(0.04, 2000) {
		t.Error("p-value must decrease with distance")
	}
	if KSPValue(0, 100) != 1 || KSPValue(0.1, 0) != 1 {
		t.Error("edge cases")
	}
	// KS of the true model on real data yields a non-extreme p-value.
	rng := rand.New(rand.NewSource(3))
	d := Normal{Mu: 0, Sigma: 1}
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	emp := NewEmpirical(xs)
	p := KSPValue(emp.KSDistance(d), len(xs))
	if p < 0.001 {
		t.Errorf("true model KS p=%v", p)
	}
}
