package stats

import "math"

// ExtendedSkewNormal is the four-parameter extension ESN(ξ, ω, α, τ) of the
// skew-normal with density
//
//	f(x) = φ(z) Φ(τ√(1+α²) + αz) / (ω Φ(τ)),  z = (x−ξ)/ω.
//
// τ = 0 recovers SN(ξ, ω, α). The fourth parameter frees the kurtosis,
// which is what the LESN comparator model (Jin et al., TCAS-II 2022)
// exploits to match the 4th moment of near-threshold delay distributions.
type ExtendedSkewNormal struct {
	Xi    float64
	Omega float64
	Alpha float64
	Tau   float64
}

// PDF returns the ESN density at x.
func (e ExtendedSkewNormal) PDF(x float64) float64 {
	if e.Omega <= 0 {
		return 0
	}
	z := (x - e.Xi) / e.Omega
	ph := StdNormCDF(e.Tau)
	if ph <= 0 {
		return 0
	}
	return StdNormPDF(z) * StdNormCDF(e.Tau*math.Sqrt(1+e.Alpha*e.Alpha)+e.Alpha*z) /
		(e.Omega * ph)
}

// CDF integrates the density numerically from ξ − 12ω.
func (e ExtendedSkewNormal) CDF(x float64) float64 {
	if e.Omega <= 0 {
		if x < e.Xi {
			return 0
		}
		return 1
	}
	lo := e.Xi - 12*e.Omega
	if x <= lo {
		return 0
	}
	hi := e.Xi + 12*e.Omega
	if x >= hi {
		return 1
	}
	c := integrate(e.PDF, lo, x, 24)
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// zeta1 is ζ₁(τ) = φ(τ)/Φ(τ), the inverse Mills ratio.
func zeta1(tau float64) float64 {
	ph := StdNormCDF(tau)
	if ph <= 0 {
		// Asymptotic: φ(τ)/Φ(τ) → −τ as τ → −∞.
		return -tau
	}
	return StdNormPDF(tau) / ph
}

// Mean returns ξ + ωδζ₁(τ) with δ = α/√(1+α²).
func (e ExtendedSkewNormal) Mean() float64 {
	d := e.Alpha / math.Sqrt(1+e.Alpha*e.Alpha)
	return e.Xi + e.Omega*d*zeta1(e.Tau)
}

// Variance returns ω²(1 + δ²ζ₂) where ζ₂ = −ζ₁(τ)(τ+ζ₁(τ)).
func (e ExtendedSkewNormal) Variance() float64 {
	d := e.Alpha / math.Sqrt(1+e.Alpha*e.Alpha)
	z1 := zeta1(e.Tau)
	z2 := -z1 * (e.Tau + z1)
	return e.Omega * e.Omega * (1 + d*d*z2)
}

// Skewness returns the third standardised cumulant (closed form via the
// ζ derivatives of the cumulant generating function).
func (e ExtendedSkewNormal) Skewness() float64 {
	d := e.Alpha / math.Sqrt(1+e.Alpha*e.Alpha)
	z1 := zeta1(e.Tau)
	z2 := -z1 * (e.Tau + z1)
	z3 := -z2*(e.Tau+z1) - z1*(1+z2)
	v := 1 + d*d*z2
	return d * d * d * z3 / math.Pow(v, 1.5)
}

// ExcessKurtosis returns the fourth standardised cumulant.
func (e ExtendedSkewNormal) ExcessKurtosis() float64 {
	d := e.Alpha / math.Sqrt(1+e.Alpha*e.Alpha)
	z1 := zeta1(e.Tau)
	z2 := -z1 * (e.Tau + z1)
	z3 := -z2*(e.Tau+z1) - z1*(1+z2)
	z4 := -z3*(e.Tau+z1) - 2*z2*(1+z2) - z1*z3
	v := 1 + d*d*z2
	return d * d * d * d * z4 / (v * v)
}

// Quantile inverts the CDF numerically.
func (e ExtendedSkewNormal) Quantile(p float64) float64 { return Quantile(e, p) }

// Sample draws a variate by conditioning: with (U₀,U₁) bivariate normal of
// correlation δ, X | U₀ > −τ has the ESN law.
func (e ExtendedSkewNormal) Sample(src Source) float64 {
	d := e.Alpha / math.Sqrt(1+e.Alpha*e.Alpha)
	c := math.Sqrt(1 - d*d)
	for i := 0; i < 1_000_000; i++ {
		u0 := src.NormFloat64()
		if u0 > -e.Tau {
			u1 := src.NormFloat64()
			return e.Xi + e.Omega*(d*u0+c*u1)
		}
	}
	// Pathological τ: fall back to the mean.
	return e.Mean()
}
