package stats

import (
	"math"
)

// Dist is a univariate continuous probability distribution.
type Dist interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Mean returns the first moment.
	Mean() float64
	// Variance returns the second central moment.
	Variance() float64
}

// Sampler is implemented by distributions that can draw random variates.
// Source abstracts the random stream so both math/rand and the project's
// deterministic Monte-Carlo RNG can be used.
type Sampler interface {
	Sample(src Source) float64
}

// Source is the random-number source consumed by Sample methods.
// *math/rand.Rand satisfies it.
type Source interface {
	Float64() float64
	NormFloat64() float64
}

// Std returns the standard deviation of d.
func Std(d Dist) float64 { return math.Sqrt(d.Variance()) }

// Quantile numerically inverts d.CDF by bisection. p must be in (0,1).
// The search bracket is derived from the distribution's mean and standard
// deviation and widened geometrically until it encloses p.
func Quantile(d Dist, p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return math.NaN()
	}
	m, s := d.Mean(), Std(d)
	if s <= 0 || math.IsNaN(s) {
		return m
	}
	lo, hi := m-8*s, m+8*s
	for i := 0; d.CDF(lo) > p && i < 64; i++ {
		lo -= 8 * s
	}
	for i := 0; d.CDF(hi) < p && i < 64; i++ {
		hi += 8 * s
	}
	for i := 0; i < 200 && hi-lo > 1e-13*(1+math.Abs(lo)); i++ {
		mid := 0.5 * (lo + hi)
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// Interval returns P(a < X <= b) for the distribution d.
func Interval(d Dist, a, b float64) float64 {
	if b < a {
		return 0
	}
	p := d.CDF(b) - d.CDF(a)
	if p < 0 {
		return 0
	}
	return p
}

// CentralMoment integrates (x-mean)^k d.PDF(x) dx numerically over
// mean ± 12 standard deviations using composite Gauss-Legendre quadrature.
// It is used by distributions whose higher moments lack closed forms.
func CentralMoment(d Dist, k int) float64 {
	m, s := d.Mean(), Std(d)
	if s == 0 {
		return 0
	}
	lo, hi := m-12*s, m+12*s
	return integrate(func(x float64) float64 {
		return math.Pow(x-m, float64(k)) * d.PDF(x)
	}, lo, hi, 24)
}

// RawMoment integrates x^k d.PDF(x) dx numerically (support truncated to
// mean ± 12 standard deviations, floored at lo if floorAtZero).
func RawMoment(d Dist, k int, floorAtZero bool) float64 {
	m, s := d.Mean(), Std(d)
	lo, hi := m-12*s, m+12*s
	if floorAtZero && lo < 0 {
		lo = 0
	}
	return integrate(func(x float64) float64 {
		return math.Pow(x, float64(k)) * d.PDF(x)
	}, lo, hi, 24)
}
