package stats

import (
	"math"
	"testing"
)

// batchAlphas spans the shapes the fitters produce: symmetric, moderate,
// the ±MaxSNSkewness moment-match boundary, extreme and non-finite.
func batchAlphas() []float64 {
	bMax := SNFromMoments(0, 1, MaxSNSkewness)
	bMin := SNFromMoments(0, 1, -MaxSNSkewness)
	return []float64{0, 0.5, -0.5, 1, -1, 4, -4, bMax.Alpha, bMin.Alpha, 40, -40, math.Inf(1), math.Inf(-1)}
}

// batchGrid covers the bulk and the far tails (z beyond ±12).
func batchGrid(s SkewNormal) []float64 {
	var xs []float64
	for z := -14.0; z <= 14.0; z += 0.25 {
		xs = append(xs, s.Xi+z*s.Omega)
	}
	return xs
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	return d / math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-300)
}

// cdfClose allows either relative agreement or tiny absolute agreement:
// deep in the lower tail Φ(z) − 2T(z) cancels catastrophically, so two
// correct evaluation orders legitimately differ in relative terms while
// both are ~1e-17 with absolute agreement far below any metric resolution.
func cdfClose(a, b float64) bool {
	return relDiff(a, b) <= 1e-11 || math.Abs(a-b) <= 1e-14
}

// TestSkewNormalCDFsMatchesScalar cross-checks the batch CDF (shared
// Owen's-T kernel) against the scalar CDF over a wide shape × point grid.
// The two paths reassociate the 1/ω scaling, so agreement is relative.
func TestSkewNormalCDFsMatchesScalar(t *testing.T) {
	for _, alpha := range batchAlphas() {
		s := SkewNormal{Xi: 0.1, Omega: 0.01, Alpha: alpha}
		xs := batchGrid(s)
		got := s.CDFs(nil, xs)
		for i, x := range xs {
			want := s.CDF(x)
			if math.IsNaN(got[i]) || !cdfClose(got[i], want) {
				t.Fatalf("alpha=%v x=%v: CDFs=%v CDF=%v", alpha, x, got[i], want)
			}
		}
	}
}

// TestSkewNormalPDFsMatchesScalar cross-checks the batch PDF.
func TestSkewNormalPDFsMatchesScalar(t *testing.T) {
	for _, alpha := range batchAlphas() {
		if math.IsInf(alpha, 0) {
			continue // scalar PDF is also defined, but Φ(±Inf·0) at z=0 differs by convention
		}
		s := SkewNormal{Xi: 0.1, Omega: 0.01, Alpha: alpha}
		xs := batchGrid(s)
		got := s.PDFs(nil, xs)
		for i, x := range xs {
			want := s.PDF(x)
			if math.IsNaN(got[i]) || relDiff(got[i], want) > 1e-12 {
				t.Fatalf("alpha=%v x=%v: PDFs=%v PDF=%v", alpha, x, got[i], want)
			}
		}
	}
}

// TestSkewNormalLogPDFsMatchesScalar checks log f against log(PDF) where
// the scalar density has not underflowed, and finiteness everywhere.
func TestSkewNormalLogPDFsMatchesScalar(t *testing.T) {
	for _, alpha := range batchAlphas() {
		if math.IsInf(alpha, 0) {
			continue
		}
		s := SkewNormal{Xi: 0.1, Omega: 0.01, Alpha: alpha}
		xs := batchGrid(s)
		got := s.LogPDFs(nil, xs)
		for i, x := range xs {
			if math.IsNaN(got[i]) {
				t.Fatalf("alpha=%v x=%v: LogPDFs is NaN", alpha, x)
			}
			p := s.PDF(x)
			if p > 1e-250 {
				if math.Abs(got[i]-math.Log(p)) > 1e-9*math.Max(1, math.Abs(got[i])) {
					t.Fatalf("alpha=%v x=%v: LogPDFs=%v log(PDF)=%v", alpha, x, got[i], math.Log(p))
				}
			}
		}
	}
}

// TestBatchCDFDegenerate checks the ω ≤ 0 step-function branches.
func TestBatchCDFDegenerate(t *testing.T) {
	s := SkewNormal{Xi: 1, Omega: 0, Alpha: 2}
	cs := s.CDFs(nil, []float64{0.5, 1, 1.5})
	if cs[0] != 0 || cs[1] != 1 || cs[2] != 1 {
		t.Fatalf("degenerate SN CDFs = %v, want step at Xi", cs)
	}
	nrm := Normal{Mu: 1, Sigma: 0}
	cs = nrm.CDFs(cs, []float64{0.5, 1, 1.5})
	if cs[0] != 0 || cs[1] != 1 || cs[2] != 1 {
		t.Fatalf("degenerate Normal CDFs = %v, want step at Mu", cs)
	}
}

// TestNormalCDFsMatchesScalar cross-checks the Gaussian batch CDF.
func TestNormalCDFsMatchesScalar(t *testing.T) {
	nrm := Normal{Mu: 0.1, Sigma: 0.02}
	xs := []float64{-0.3, 0, 0.05, 0.1, 0.15, 0.4, 1}
	got := nrm.CDFs(nil, xs)
	for i, x := range xs {
		if relDiff(got[i], nrm.CDF(x)) > 1e-12 {
			t.Fatalf("x=%v: CDFs=%v CDF=%v", x, got[i], nrm.CDF(x))
		}
	}
}

// TestMixtureCDFsMatchesScalar cross-checks the mixture batch CDF, which
// exercises the per-component BatchCDF dispatch.
func TestMixtureCDFsMatchesScalar(t *testing.T) {
	m, err := NewMixture([]float64{0.6, 0.4}, []Dist{
		SNFromMoments(0.10, 0.005, 0.6),
		SNFromMoments(0.13, 0.004, -0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := batchGrid(SkewNormal{Xi: 0.115, Omega: 0.015})
	got := m.CDFs(nil, xs)
	for i, x := range xs {
		want := m.CDF(x)
		if !cdfClose(got[i], want) {
			t.Fatalf("x=%v: CDFs=%v CDF=%v", x, got[i], want)
		}
	}
}

// TestCDFsReusesDst checks the dst-reuse contract.
func TestCDFsReusesDst(t *testing.T) {
	s := SNFromMoments(0, 1, 0.5)
	buf := make([]float64, 8)
	out := s.CDFs(buf, []float64{-1, 0, 1})
	if &out[0] != &buf[0] || len(out) != 3 {
		t.Fatalf("CDFs did not reuse dst (len=%d)", len(out))
	}
}
