package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMomentsSimple(t *testing.T) {
	m := Moments([]float64{1, 2, 3, 4})
	if !almostEqual(m.Mean, 2.5, 1e-14) {
		t.Errorf("mean %v", m.Mean)
	}
	if !almostEqual(m.Variance, 1.25, 1e-14) {
		t.Errorf("var %v", m.Variance)
	}
	if !almostEqual(m.Skewness, 0, 1e-14) {
		t.Errorf("skew %v", m.Skewness)
	}
}

func TestMomentsEmptyAndConstant(t *testing.T) {
	if m := Moments(nil); m.N != 0 {
		t.Error("empty moments")
	}
	m := Moments([]float64{7, 7, 7})
	if m.Variance != 0 || m.Skewness != 0 || m.Kurtosis != 3 {
		t.Errorf("constant sample moments: %+v", m)
	}
}

func TestWeightedMomentsEqualWeights(t *testing.T) {
	xs := []float64{0.5, 1.5, -2, 4, 8, 1}
	ws := []float64{2, 2, 2, 2, 2, 2}
	a := Moments(xs)
	b := WeightedMoments(xs, ws)
	if !almostEqual(a.Mean, b.Mean, 1e-12) || !almostEqual(a.Variance, b.Variance, 1e-12) ||
		!almostEqual(a.Skewness, b.Skewness, 1e-12) || !almostEqual(a.Kurtosis, b.Kurtosis, 1e-12) {
		t.Errorf("weighted != unweighted: %+v vs %+v", a, b)
	}
}

func TestWeightedMomentsSubset(t *testing.T) {
	// Zero weights must exclude points entirely.
	xs := []float64{1, 2, 3, 100}
	ws := []float64{1, 1, 1, 0}
	m := WeightedMoments(xs, ws)
	want := Moments([]float64{1, 2, 3})
	if !almostEqual(m.Mean, want.Mean, 1e-12) || !almostEqual(m.Variance, want.Variance, 1e-12) {
		t.Errorf("subset moments %+v want %+v", m, want)
	}
}

func TestWeightedMomentsDegenerate(t *testing.T) {
	if m := WeightedMoments([]float64{1}, []float64{1, 2}); m.N != 0 {
		t.Error("length mismatch should return zero moments")
	}
	if m := WeightedMoments([]float64{1, 2}, []float64{0, 0}); m.N != 0 {
		t.Error("zero weights should return zero moments")
	}
}

func TestCumulantsRoundTrip(t *testing.T) {
	f := func(mean, vr, sk, kr float64) bool {
		v := math.Abs(math.Mod(vr, 10)) + 0.01
		s := math.Mod(sk, 2)
		k := math.Mod(kr, 5) + 3
		sm := SampleMoments{Mean: math.Mod(mean, 50), Variance: v, Skewness: s, Kurtosis: k}
		k1, k2, k3, k4 := sm.Cumulants4()
		back := MomentsFromCumulants(k1, k2, k3, k4)
		return almostEqual(back.Mean, sm.Mean, 1e-10) &&
			almostEqual(back.Variance, sm.Variance, 1e-10) &&
			almostEqual(back.Skewness, sm.Skewness, 1e-8) &&
			almostEqual(back.Kurtosis, sm.Kurtosis, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistMomentsClosedFormPath(t *testing.T) {
	s := SkewNormal{Xi: 0, Omega: 1, Alpha: 3}
	dm := DistMoments(s)
	if !almostEqual(dm.Skewness, s.Skewness(), 1e-12) {
		t.Errorf("DistMoments skew %v want %v", dm.Skewness, s.Skewness())
	}
	if !almostEqual(dm.Kurtosis, s.ExcessKurtosis()+3, 1e-12) {
		t.Errorf("DistMoments kurt %v want %v", dm.Kurtosis, s.ExcessKurtosis()+3)
	}
}

func TestDistMomentsQuadraturePath(t *testing.T) {
	// Mixture has no closed-form Skewness method; quadrature path is used.
	m := twoSN()
	dm := DistMoments(m)
	// Cross-check against a large sample.
	rng := rand.New(rand.NewSource(29))
	xs := make([]float64, 300000)
	for i := range xs {
		xs[i] = m.Sample(rng)
	}
	sm := Moments(xs)
	if !almostEqual(dm.Skewness, sm.Skewness, 0.02) {
		t.Errorf("mixture skew %v vs sampled %v", dm.Skewness, sm.Skewness)
	}
	if !almostEqual(dm.Kurtosis, sm.Kurtosis, 0.06) {
		t.Errorf("mixture kurt %v vs sampled %v", dm.Kurtosis, sm.Kurtosis)
	}
}
