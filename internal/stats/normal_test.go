package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestStdNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300945},
	}
	for _, c := range cases {
		if got := StdNormCDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("StdNormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestStdNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-4, 0.01, 0.1, 0.5, 0.9, 0.99, 0.9999, 1 - 1e-9} {
		x := StdNormQuantile(p)
		if got := StdNormCDF(x); !almostEqual(got, p, 1e-11) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestStdNormQuantileEdge(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if !math.IsNaN(StdNormQuantile(p)) {
			t.Errorf("StdNormQuantile(%v) should be NaN", p)
		}
	}
}

func TestNormalDist(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 3}
	if got := n.Mean(); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := n.Variance(); got != 9 {
		t.Errorf("Variance = %v", got)
	}
	if got := n.CDF(2); !almostEqual(got, 0.5, 1e-14) {
		t.Errorf("CDF(mu) = %v", got)
	}
	if got := n.Quantile(0.5); !almostEqual(got, 2, 1e-9) {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	// PDF integrates to 1.
	tot := integrate(n.PDF, 2-30, 2+30, 40)
	if !almostEqual(tot, 1, 1e-10) {
		t.Errorf("PDF integral = %v", tot)
	}
}

func TestNormalDegenerateSigma(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0}
	if n.CDF(0.999) != 0 || n.CDF(1.0) != 1 {
		t.Errorf("degenerate CDF: %v %v", n.CDF(0.999), n.CDF(1.0))
	}
	if n.PDF(0) != 0 {
		t.Errorf("degenerate PDF off-atom should be 0")
	}
}

func TestNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := Normal{Mu: -1, Sigma: 0.5}
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = n.Sample(rng)
	}
	m := Moments(xs)
	if !almostEqual(m.Mean, -1, 5e-3) {
		t.Errorf("sample mean %v", m.Mean)
	}
	if !almostEqual(m.Std(), 0.5, 5e-3) {
		t.Errorf("sample std %v", m.Std())
	}
}

// Property: CDF is monotone non-decreasing for arbitrary normals.
func TestNormalCDFMonotoneProperty(t *testing.T) {
	f := func(mu, sigmaRaw, a, b float64) bool {
		sigma := math.Abs(sigmaRaw) + 1e-6
		n := Normal{Mu: mu, Sigma: sigma}
		if b < a {
			a, b = b, a
		}
		return n.CDF(a) <= n.CDF(b)+1e-15
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
