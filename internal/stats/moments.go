package stats

import "math"

// SampleMoments holds the first four sample moments of a data set.
type SampleMoments struct {
	N        int
	Mean     float64
	Variance float64 // population (1/N) variance
	Skewness float64 // third standardised moment
	Kurtosis float64 // fourth standardised moment (not excess)
}

// Std returns the standard deviation.
func (s SampleMoments) Std() float64 { return math.Sqrt(s.Variance) }

// ExcessKurtosis returns kurtosis − 3.
func (s SampleMoments) ExcessKurtosis() float64 { return s.Kurtosis - 3 }

// Moments computes the first four sample moments of xs in a single pass
// over centred data (two passes total: mean first for numerical stability).
func Moments(xs []float64) SampleMoments {
	n := len(xs)
	if n == 0 {
		return SampleMoments{}
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	fn := float64(n)
	m2 /= fn
	m3 /= fn
	m4 /= fn
	sm := SampleMoments{N: n, Mean: mean, Variance: m2}
	if m2 > 0 {
		sm.Skewness = m3 / math.Pow(m2, 1.5)
		sm.Kurtosis = m4 / (m2 * m2)
	} else {
		sm.Kurtosis = 3
	}
	return sm
}

// WeightedMoments computes weighted sample moments, the workhorse of the
// method-of-moments M-step in the LVF² EM algorithm (responsibilities are
// the weights). Weights need not be normalised.
func WeightedMoments(xs, ws []float64) SampleMoments {
	if len(xs) != len(ws) || len(xs) == 0 {
		return SampleMoments{}
	}
	var wsum, mean float64
	for i, x := range xs {
		wsum += ws[i]
		mean += ws[i] * x
	}
	if wsum <= 0 {
		return SampleMoments{}
	}
	mean /= wsum
	var m2, m3, m4 float64
	for i, x := range xs {
		d := x - mean
		d2 := d * d
		m2 += ws[i] * d2
		m3 += ws[i] * d2 * d
		m4 += ws[i] * d2 * d2
	}
	m2 /= wsum
	m3 /= wsum
	m4 /= wsum
	sm := SampleMoments{N: len(xs), Mean: mean, Variance: m2}
	if m2 > 0 {
		sm.Skewness = m3 / math.Pow(m2, 1.5)
		sm.Kurtosis = m4 / (m2 * m2)
	} else {
		sm.Kurtosis = 3
	}
	return sm
}

// MomentAccumulator accumulates weighted power sums of pivot-shifted data
// in a single pass, so an EM E-step can compute both components' moments
// while it computes the responsibilities, without materialising weight
// arrays. Choose a pivot near the data mean to keep the shifted sums well
// conditioned (the EM loops use the overall sample mean).
type MomentAccumulator struct {
	Pivot              float64
	s0, s1, s2, s3, s4 float64
	n                  int
}

// Reset clears the accumulator and sets the pivot.
func (a *MomentAccumulator) Reset(pivot float64) {
	*a = MomentAccumulator{Pivot: pivot}
}

// Add accumulates one unit-weight observation.
func (a *MomentAccumulator) Add(x float64) { a.AddWeighted(x, 1) }

// AddWeighted accumulates one observation with weight w.
func (a *MomentAccumulator) AddWeighted(x, w float64) {
	y := x - a.Pivot
	wy := w * y
	wy2 := wy * y
	a.s0 += w
	a.s1 += wy
	a.s2 += wy2
	a.s3 += wy2 * y
	a.s4 += wy2 * y * y
	a.n++
}

// WeightSum returns the accumulated total weight.
func (a *MomentAccumulator) WeightSum() float64 { return a.s0 }

// Count returns the number of accumulated observations.
func (a *MomentAccumulator) Count() int { return a.n }

// Moments converts the shifted power sums to sample moments, matching the
// conventions of WeightedMoments (population variance, non-excess
// kurtosis, Kurtosis = 3 on zero variance).
func (a *MomentAccumulator) Moments() SampleMoments {
	if a.n == 0 || a.s0 <= 0 {
		return SampleMoments{}
	}
	m1 := a.s1 / a.s0
	r2 := a.s2 / a.s0
	r3 := a.s3 / a.s0
	r4 := a.s4 / a.s0
	m2 := r2 - m1*m1
	m3 := r3 - 3*m1*r2 + 2*m1*m1*m1
	m4 := r4 - 4*m1*r3 + 6*m1*m1*r2 - 3*m1*m1*m1*m1
	if m2 < 0 {
		m2 = 0
	}
	sm := SampleMoments{N: a.n, Mean: a.Pivot + m1, Variance: m2}
	if m2 > 0 {
		sm.Skewness = m3 / math.Pow(m2, 1.5)
		sm.Kurtosis = m4 / (m2 * m2)
	} else {
		sm.Kurtosis = 3
	}
	return sm
}

// WeightedMomentsPivot is the single-pass variant of WeightedMoments: one
// fused traversal accumulating pivot-shifted power sums. The two agree to
// floating-point conditioning; prefer a pivot near the weighted mean.
func WeightedMomentsPivot(xs, ws []float64, pivot float64) SampleMoments {
	if len(xs) != len(ws) || len(xs) == 0 {
		return SampleMoments{}
	}
	var a MomentAccumulator
	a.Reset(pivot)
	for i, x := range xs {
		a.AddWeighted(x, ws[i])
	}
	return a.Moments()
}

// Cumulants4 converts moments to the first four cumulants
// (κ₁, κ₂, κ₃, κ₄). Cumulants of independent sums add.
func (s SampleMoments) Cumulants4() (k1, k2, k3, k4 float64) {
	k1 = s.Mean
	k2 = s.Variance
	sd3 := math.Pow(s.Variance, 1.5)
	k3 = s.Skewness * sd3
	k4 = (s.Kurtosis - 3) * s.Variance * s.Variance
	return
}

// MomentsFromCumulants is the inverse of Cumulants4.
func MomentsFromCumulants(k1, k2, k3, k4 float64) SampleMoments {
	sm := SampleMoments{Mean: k1, Variance: k2}
	if k2 > 0 {
		sm.Skewness = k3 / math.Pow(k2, 1.5)
		sm.Kurtosis = k4/(k2*k2) + 3
	} else {
		sm.Kurtosis = 3
	}
	return sm
}

// DistMoments evaluates the first four moments of an arbitrary Dist,
// using closed forms when the distribution exposes Skewness/ExcessKurtosis
// and numerical quadrature otherwise.
func DistMoments(d Dist) SampleMoments {
	sm := SampleMoments{Mean: d.Mean(), Variance: d.Variance()}
	type skewer interface{ Skewness() float64 }
	type kurter interface{ ExcessKurtosis() float64 }
	if sk, ok := d.(skewer); ok {
		sm.Skewness = sk.Skewness()
	} else if sm.Variance > 0 {
		sm.Skewness = CentralMoment(d, 3) / math.Pow(sm.Variance, 1.5)
	}
	if ku, ok := d.(kurter); ok {
		sm.Kurtosis = ku.ExcessKurtosis() + 3
	} else if sm.Variance > 0 {
		sm.Kurtosis = CentralMoment(d, 4) / (sm.Variance * sm.Variance)
	} else {
		sm.Kurtosis = 3
	}
	return sm
}
