package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestESNReducesToSNAtTauZero(t *testing.T) {
	e := ExtendedSkewNormal{Xi: 0.3, Omega: 1.2, Alpha: 2, Tau: 0}
	s := SkewNormal{Xi: 0.3, Omega: 1.2, Alpha: 2}
	for _, x := range []float64{-3, 0, 0.3, 1, 4} {
		if !almostEqual(e.PDF(x), s.PDF(x), 1e-12) {
			t.Errorf("PDF mismatch at %v: %v vs %v", x, e.PDF(x), s.PDF(x))
		}
		if !almostEqual(e.CDF(x), s.CDF(x), 1e-8) {
			t.Errorf("CDF mismatch at %v: %v vs %v", x, e.CDF(x), s.CDF(x))
		}
	}
	if !almostEqual(e.Mean(), s.Mean(), 1e-12) {
		t.Errorf("Mean mismatch: %v vs %v", e.Mean(), s.Mean())
	}
	if !almostEqual(e.Variance(), s.Variance(), 1e-12) {
		t.Errorf("Variance mismatch: %v vs %v", e.Variance(), s.Variance())
	}
	if !almostEqual(e.Skewness(), s.Skewness(), 1e-10) {
		t.Errorf("Skewness mismatch: %v vs %v", e.Skewness(), s.Skewness())
	}
}

func TestESNPDFIntegratesToOne(t *testing.T) {
	for _, tau := range []float64{-2, -0.5, 0, 1, 3} {
		e := ExtendedSkewNormal{Xi: 0, Omega: 1, Alpha: 3, Tau: tau}
		tot := integrate(e.PDF, -16, 16, 64)
		if !almostEqual(tot, 1, 1e-8) {
			t.Errorf("tau=%v: integral %v", tau, tot)
		}
	}
}

func TestESNMomentsAgainstQuadrature(t *testing.T) {
	e := ExtendedSkewNormal{Xi: 1, Omega: 0.5, Alpha: -2, Tau: 0.8}
	lo, hi := 1-10.0, 1+10.0
	mQ := integrate(func(x float64) float64 { return x * e.PDF(x) }, lo, hi, 64)
	if !almostEqual(e.Mean(), mQ, 1e-8) {
		t.Errorf("Mean %v vs %v", e.Mean(), mQ)
	}
	vQ := integrate(func(x float64) float64 {
		d := x - e.Mean()
		return d * d * e.PDF(x)
	}, lo, hi, 64)
	if !almostEqual(e.Variance(), vQ, 1e-8) {
		t.Errorf("Var %v vs %v", e.Variance(), vQ)
	}
	sd := math.Sqrt(e.Variance())
	skQ := integrate(func(x float64) float64 {
		d := (x - e.Mean()) / sd
		return d * d * d * e.PDF(x)
	}, lo, hi, 64)
	if !almostEqual(e.Skewness(), skQ, 1e-6) {
		t.Errorf("Skew %v vs %v", e.Skewness(), skQ)
	}
	kuQ := integrate(func(x float64) float64 {
		d := (x - e.Mean()) / sd
		return d * d * d * d * e.PDF(x)
	}, lo, hi, 64)
	if !almostEqual(e.ExcessKurtosis()+3, kuQ, 1e-6) {
		t.Errorf("Kurt %v vs %v", e.ExcessKurtosis()+3, kuQ)
	}
}

func TestESNSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e := ExtendedSkewNormal{Xi: 0, Omega: 1, Alpha: 4, Tau: -1}
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = e.Sample(rng)
	}
	m := Moments(xs)
	if !almostEqual(m.Mean, e.Mean(), 8e-3) {
		t.Errorf("sample mean %v want %v", m.Mean, e.Mean())
	}
	if !almostEqual(m.Std(), math.Sqrt(e.Variance()), 8e-3) {
		t.Errorf("sample std %v want %v", m.Std(), math.Sqrt(e.Variance()))
	}
}

func TestLogESNClosedFormMoments(t *testing.T) {
	l := LogESN{W: ExtendedSkewNormal{Xi: -2, Omega: 0.2, Alpha: 1.5, Tau: 0.5}}
	// Cross-check E[X] and Var(X) against quadrature in log space.
	mQ := integrate(func(w float64) float64 {
		return math.Exp(w) * l.W.PDF(w)
	}, -2-8*0.2, -2+8*0.2, 48)
	if !almostEqual(l.Mean(), mQ, 1e-8) {
		t.Errorf("LESN mean %v vs %v", l.Mean(), mQ)
	}
	m2Q := integrate(func(w float64) float64 {
		return math.Exp(2*w) * l.W.PDF(w)
	}, -2-8*0.2, -2+8*0.2, 48)
	if !almostEqual(l.Variance(), m2Q-mQ*mQ, 1e-8) {
		t.Errorf("LESN var %v vs %v", l.Variance(), m2Q-mQ*mQ)
	}
}

func TestLogESNSupport(t *testing.T) {
	l := LogESN{W: ExtendedSkewNormal{Xi: 0, Omega: 1, Alpha: 0, Tau: 0}}
	if l.PDF(-1) != 0 || l.CDF(-1) != 0 || l.CDF(0) != 0 {
		t.Error("LESN must have support on positives only")
	}
	if !almostEqual(l.CDF(1), 0.5, 1e-8) {
		t.Errorf("CDF(1) for lognormal(0,1) = %v, want 0.5", l.CDF(1))
	}
}

func TestLogESNQuantileRoundTrip(t *testing.T) {
	l := LogESN{W: ExtendedSkewNormal{Xi: -1.5, Omega: 0.3, Alpha: 2, Tau: -0.5}}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		x := l.Quantile(p)
		if got := l.CDF(x); !almostEqual(got, p, 1e-6) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}
