package stats

import "math"

// Batch evaluation APIs. The fitting and binning hot loops evaluate the
// same distribution at thousands of points; the scalar PDF/CDF entry
// points redo per-distribution setup (1/ω, the Owen's-T reduction and its
// quadrature grid) for every sample and cost an interface dispatch per
// call when reached through Dist. The batch forms hoist that setup out of
// the inner loop and devirtualise the per-point calls.

// BatchCDF is implemented by distributions that can evaluate their CDF
// over a batch of points more cheaply than repeated scalar calls. dst is
// reused when it has sufficient capacity; the (possibly reallocated)
// slice is returned.
type BatchCDF interface {
	CDFs(dst, xs []float64) []float64
}

// ensureLen returns dst resized to n, reallocating only when needed.
func ensureLen(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// PDFs evaluates the skew-normal density at every xs[i] into dst.
func (s SkewNormal) PDFs(dst, xs []float64) []float64 {
	dst = ensureLen(dst, len(xs))
	if s.Omega <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	invOmega := 1 / s.Omega
	scale := 2 * invOmega
	alpha := s.Alpha
	for i, x := range xs {
		z := (x - s.Xi) * invOmega
		dst[i] = scale * StdNormPDF(z) * StdNormCDF(alpha*z)
	}
	return dst
}

// LogPDFs evaluates the skew-normal log-density at every xs[i] into dst,
// with Φ(αz) floored at 1e-300 (matching the fitters' likelihood floor)
// so the result is finite deep in the rejected tail.
func (s SkewNormal) LogPDFs(dst, xs []float64) []float64 {
	dst = ensureLen(dst, len(xs))
	if s.Omega <= 0 {
		for i := range dst {
			dst[i] = math.Inf(-1)
		}
		return dst
	}
	invOmega := 1 / s.Omega
	logNorm := math.Log(2 * invOmega * invSqrt2Pi)
	alpha := s.Alpha
	for i, x := range xs {
		z := (x - s.Xi) * invOmega
		phi := StdNormCDF(alpha * z)
		if phi < 1e-300 {
			phi = 1e-300
		}
		dst[i] = logNorm - 0.5*z*z + math.Log(phi)
	}
	return dst
}

// CDFs evaluates the skew-normal CDF at every xs[i] into dst. The Owen's-T
// argument reduction and Gauss-Legendre grid depend only on α, so they are
// built once per batch instead of once per point.
func (s SkewNormal) CDFs(dst, xs []float64) []float64 {
	dst = ensureLen(dst, len(xs))
	if s.Omega <= 0 {
		for i, x := range xs {
			if x < s.Xi {
				dst[i] = 0
			} else {
				dst[i] = 1
			}
		}
		return dst
	}
	invOmega := 1 / s.Omega
	if s.Alpha == 0 || math.IsNaN(s.Alpha) {
		for i, x := range xs {
			dst[i] = clamp01(StdNormCDF((x - s.Xi) * invOmega))
		}
		return dst
	}
	k := makeOwenKernel(s.Alpha)
	for i, x := range xs {
		z := (x - s.Xi) * invOmega
		dst[i] = clamp01(StdNormCDF(z) - 2*k.T(z))
	}
	return dst
}

func clamp01(c float64) float64 {
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// owenN is the total Gauss-Legendre node count of the Owen's-T quadrature
// (8 panels × 16 points, matching owenTCore).
const owenN = 128

// owenKernel is Owen's T(·, a) for one fixed a: the |a|≤1 argument
// reduction is decided and the quadrature nodes on the reduced interval
// are expanded once, leaving only the exp-sum per evaluation point.
type owenKernel struct {
	sign float64 // T is odd in a
	a    float64 // |a|
	inva float64 // 1/|a| when big
	inf  bool    // |a| = ∞: closed form
	big  bool    // |a| > 1: classical reduction identity
	c    [owenN]float64 // 1 + tᵢ² at each node of the reduced interval
	w    [owenN]float64 // node weight / (2π (1 + tᵢ²)), panel width folded in
}

// makeOwenKernel builds the kernel for shape parameter a (any sign).
func makeOwenKernel(a float64) owenKernel {
	k := owenKernel{sign: 1}
	if math.IsNaN(a) {
		return k // a == 0 path: T ≡ 0
	}
	if a < 0 {
		k.sign = -1
		a = -a
	}
	k.a = a
	if a == 0 {
		return k
	}
	if math.IsInf(a, 1) {
		k.inf = true
		return k
	}
	u := a
	if a > 1 {
		k.big = true
		k.inva = 1 / a
		u = k.inva
	}
	const panels = 8
	pw := u / panels
	hw := 0.5 * pw
	idx := 0
	for p := 0; p < panels; p++ {
		mid := (float64(p) + 0.5) * pw
		for i := 0; i < 16; i++ {
			t := mid + hw*glNodes16[i]
			ct := 1 + t*t
			k.c[idx] = ct
			k.w[idx] = hw * glWeights16[i] / (ct * 2 * math.Pi)
			idx++
		}
	}
	return k
}

// T evaluates Owen's T(h, a) for the kernel's a, matching OwenT.
func (k *owenKernel) T(h float64) float64 {
	if k.a == 0 || math.IsNaN(h) {
		return 0
	}
	if h < 0 {
		h = -h // T is even in h
	}
	var t float64
	switch {
	case k.inf:
		t = 0.5 * (1 - StdNormCDF(h))
	case k.big:
		ah := k.a * h
		t = 0.5*StdNormCDF(h) + 0.5*StdNormCDF(ah) -
			StdNormCDF(h)*StdNormCDF(ah) - k.core(ah)
	default:
		t = k.core(h)
	}
	return k.sign * t
}

// core is the reduced-range quadrature: Σ wᵢ exp(−½h²(1+tᵢ²)).
func (k *owenKernel) core(h float64) float64 {
	e := -0.5 * h * h
	var s float64
	for i := 0; i < owenN; i++ {
		s += k.w[i] * math.Exp(e*k.c[i])
	}
	return s
}

// CDFs evaluates the Gaussian CDF at every xs[i] into dst.
func (n Normal) CDFs(dst, xs []float64) []float64 {
	dst = ensureLen(dst, len(xs))
	if n.Sigma <= 0 {
		for i, x := range xs {
			if x < n.Mu {
				dst[i] = 0
			} else {
				dst[i] = 1
			}
		}
		return dst
	}
	invSigma := 1 / n.Sigma
	for i, x := range xs {
		dst[i] = StdNormCDF((x - n.Mu) * invSigma)
	}
	return dst
}

// CDFs evaluates the mixture CDF at every xs[i] into dst, using the
// components' batch forms when available (one interface dispatch per
// component per batch instead of one per point).
func (m Mixture) CDFs(dst, xs []float64) []float64 {
	dst = ensureLen(dst, len(xs))
	for i := range dst {
		dst[i] = 0
	}
	var tmp []float64
	for ci, w := range m.Weights {
		if bc, ok := m.Components[ci].(BatchCDF); ok {
			tmp = bc.CDFs(tmp, xs)
			for j, c := range tmp {
				dst[j] += w * c
			}
			continue
		}
		comp := m.Components[ci]
		for j, x := range xs {
			dst[j] += w * comp.CDF(x)
		}
	}
	return dst
}
