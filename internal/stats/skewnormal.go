package stats

import "math"

// MaxSNSkewness is the supremum of the absolute skewness attainable by a
// skew-normal distribution (≈ 0.99527 as α → ∞). Sample skewness is clamped
// just below it before the moments→parameters inversion.
const MaxSNSkewness = 0.995

// SkewNormal is Azzalini's skew-normal distribution SN(ξ, ω, α) with
// density (paper eq. 3)
//
//	f(x) = (2/ω) φ((x−ξ)/ω) Φ(α (x−ξ)/ω).
//
// α = 0 recovers N(ξ, ω²).
type SkewNormal struct {
	Xi    float64 // location ξ
	Omega float64 // scale ω > 0
	Alpha float64 // shape α
}

// delta returns δ = α/√(1+α²).
func (s SkewNormal) delta() float64 {
	return s.Alpha / math.Sqrt(1+s.Alpha*s.Alpha)
}

// PDF returns the skew-normal density at x.
func (s SkewNormal) PDF(x float64) float64 {
	if s.Omega <= 0 {
		return 0
	}
	z := (x - s.Xi) / s.Omega
	return 2 / s.Omega * StdNormPDF(z) * StdNormCDF(s.Alpha*z)
}

// CDF returns P(X <= x) = Φ(z) − 2·T(z, α).
func (s SkewNormal) CDF(x float64) float64 {
	if s.Omega <= 0 {
		if x < s.Xi {
			return 0
		}
		return 1
	}
	z := (x - s.Xi) / s.Omega
	c := StdNormCDF(z) - 2*OwenT(z, s.Alpha)
	// Guard tiny quadrature noise at the tails.
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// Mean returns ξ + ωδ√(2/π).
func (s SkewNormal) Mean() float64 {
	return s.Xi + s.Omega*s.delta()*sqrt2OverPi
}

// Variance returns ω²(1 − 2δ²/π).
func (s SkewNormal) Variance() float64 {
	d := s.delta()
	return s.Omega * s.Omega * (1 - 2*d*d/math.Pi)
}

// Skewness returns the third standardised moment γ₁.
func (s SkewNormal) Skewness() float64 {
	d := s.delta()
	num := (4 - math.Pi) / 2 * math.Pow(d*sqrt2OverPi, 3)
	den := math.Pow(1-2*d*d/math.Pi, 1.5)
	return num / den
}

// ExcessKurtosis returns γ₂ = E[(X−μ)⁴]/σ⁴ − 3.
func (s SkewNormal) ExcessKurtosis() float64 {
	d := s.delta()
	b := d * sqrt2OverPi
	num := 2 * (math.Pi - 3) * b * b * b * b
	den := math.Pow(1-2*d*d/math.Pi, 2)
	return num / den
}

// Moments returns the (mean, std-dev, skewness) vector θ of eq. (2).
func (s SkewNormal) Moments() (mean, sd, skew float64) {
	return s.Mean(), math.Sqrt(s.Variance()), s.Skewness()
}

// Quantile inverts the CDF numerically.
func (s SkewNormal) Quantile(p float64) float64 { return Quantile(s, p) }

// Sample draws a variate using the representation
// Z = δ|U₀| + √(1−δ²)·U₁ with U₀, U₁ iid standard normal.
func (s SkewNormal) Sample(src Source) float64 {
	d := s.delta()
	u0 := math.Abs(src.NormFloat64())
	u1 := src.NormFloat64()
	return s.Xi + s.Omega*(d*u0+math.Sqrt(1-d*d)*u1)
}

// Cumulants returns the first three cumulants (κ₁, κ₂, κ₃). Cumulants of
// independent sums add, which makes this the natural SSTA representation.
func (s SkewNormal) Cumulants() (k1, k2, k3 float64) {
	m, sd, g := s.Moments()
	return m, sd * sd, g * sd * sd * sd
}

// SNFromMoments inverts the moments→parameters bijection g of eq. (2):
// given a target mean, standard deviation and skewness it returns the
// skew-normal whose first three moments match. Skewness outside the
// attainable range (|γ| < MaxSNSkewness) is clamped to the boundary.
func SNFromMoments(mean, sd, skew float64) SkewNormal {
	if sd <= 0 {
		return SkewNormal{Xi: mean, Omega: 0, Alpha: 0}
	}
	g := skew
	if g > MaxSNSkewness {
		g = MaxSNSkewness
	}
	if g < -MaxSNSkewness {
		g = -MaxSNSkewness
	}
	ag := math.Abs(g)
	var delta float64
	if ag > 0 {
		g23 := math.Pow(ag, 2.0/3.0)
		c := math.Pow((4-math.Pi)/2, 2.0/3.0)
		delta = math.Sqrt(math.Pi / 2 * g23 / (g23 + c))
		// Numerical safety: |δ| must stay < 1.
		if delta > 0.999999 {
			delta = 0.999999
		}
		if g < 0 {
			delta = -delta
		}
	}
	omega := sd / math.Sqrt(1-2*delta*delta/math.Pi)
	xi := mean - omega*delta*sqrt2OverPi
	var alpha float64
	if math.Abs(delta) < 1 {
		alpha = delta / math.Sqrt(1-delta*delta)
	} else if delta > 0 {
		alpha = math.Inf(1)
	} else {
		alpha = math.Inf(-1)
	}
	return SkewNormal{Xi: xi, Omega: omega, Alpha: alpha}
}

// SNFromCumulants builds the SN matching the first three cumulants.
func SNFromCumulants(k1, k2, k3 float64) SkewNormal {
	if k2 <= 0 {
		return SkewNormal{Xi: k1}
	}
	sd := math.Sqrt(k2)
	return SNFromMoments(k1, sd, k3/(sd*sd*sd))
}
