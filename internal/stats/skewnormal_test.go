package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSkewNormalReducesToNormal(t *testing.T) {
	s := SkewNormal{Xi: 1, Omega: 2, Alpha: 0}
	n := Normal{Mu: 1, Sigma: 2}
	for _, x := range []float64{-4, 0, 1, 3.7, 9} {
		if !almostEqual(s.PDF(x), n.PDF(x), 1e-13) {
			t.Errorf("PDF mismatch at %v", x)
		}
		if !almostEqual(s.CDF(x), n.CDF(x), 1e-11) {
			t.Errorf("CDF mismatch at %v: %v vs %v", x, s.CDF(x), n.CDF(x))
		}
	}
	if s.Skewness() != 0 {
		t.Error("alpha=0 skewness must be 0")
	}
}

func TestSkewNormalPDFIntegratesToOne(t *testing.T) {
	for _, alpha := range []float64{-8, -1, 0, 0.5, 3, 20} {
		s := SkewNormal{Xi: 0.5, Omega: 1.3, Alpha: alpha}
		tot := integrate(s.PDF, 0.5-15*1.3, 0.5+15*1.3, 60)
		if !almostEqual(tot, 1, 1e-9) {
			t.Errorf("alpha=%v: integral = %v", alpha, tot)
		}
	}
}

func TestSkewNormalCDFMatchesIntegral(t *testing.T) {
	s := SkewNormal{Xi: -1, Omega: 0.7, Alpha: 4}
	lo := s.Xi - 14*s.Omega
	for _, x := range []float64{-2, -1.2, -0.8, -0.3, 0.5} {
		want := integrate(s.PDF, lo, x, 60)
		if got := s.CDF(x); !almostEqual(got, want, 1e-9) {
			t.Errorf("CDF(%v) = %v, integral %v", x, got, want)
		}
	}
}

func TestSkewNormalMomentsAgainstQuadrature(t *testing.T) {
	s := SkewNormal{Xi: 2, Omega: 0.9, Alpha: -3}
	mQ := integrate(func(x float64) float64 { return x * s.PDF(x) },
		2-15*0.9, 2+15*0.9, 60)
	if !almostEqual(s.Mean(), mQ, 1e-9) {
		t.Errorf("Mean %v vs quadrature %v", s.Mean(), mQ)
	}
	vQ := integrate(func(x float64) float64 {
		d := x - s.Mean()
		return d * d * s.PDF(x)
	}, 2-15*0.9, 2+15*0.9, 60)
	if !almostEqual(s.Variance(), vQ, 1e-9) {
		t.Errorf("Variance %v vs quadrature %v", s.Variance(), vQ)
	}
	skQ := integrate(func(x float64) float64 {
		d := (x - s.Mean()) / math.Sqrt(s.Variance())
		return d * d * d * s.PDF(x)
	}, 2-15*0.9, 2+15*0.9, 60)
	if !almostEqual(s.Skewness(), skQ, 1e-8) {
		t.Errorf("Skewness %v vs quadrature %v", s.Skewness(), skQ)
	}
}

func TestSNFromMomentsBijection(t *testing.T) {
	// Round trip: params -> moments -> params -> moments.
	for _, alpha := range []float64{-5, -1, -0.2, 0, 0.7, 2, 10} {
		orig := SkewNormal{Xi: 1.5, Omega: 0.25, Alpha: alpha}
		m, sd, g := orig.Moments()
		back := SNFromMoments(m, sd, g)
		m2, sd2, g2 := back.Moments()
		if !almostEqual(m, m2, 1e-9) || !almostEqual(sd, sd2, 1e-9) || !almostEqual(g, g2, 1e-6) {
			t.Errorf("alpha=%v: moments (%v,%v,%v) -> (%v,%v,%v)",
				alpha, m, sd, g, m2, sd2, g2)
		}
	}
}

func TestSNFromMomentsClampsSkewness(t *testing.T) {
	s := SNFromMoments(0, 1, 5) // unattainable skewness
	_, _, g := s.Moments()
	if g > MaxSNSkewness+1e-6 {
		t.Errorf("clamped skewness %v exceeds max", g)
	}
	if math.IsNaN(s.Xi) || math.IsNaN(s.Omega) || math.IsNaN(s.Alpha) {
		t.Errorf("NaN params after clamping: %+v", s)
	}
	neg := SNFromMoments(0, 1, -5)
	if _, _, gn := neg.Moments(); gn < -MaxSNSkewness-1e-6 {
		t.Errorf("negative clamp failed: %v", gn)
	}
}

func TestSNFromMomentsZeroSigma(t *testing.T) {
	s := SNFromMoments(3, 0, 0.5)
	if s.Xi != 3 || s.Omega != 0 {
		t.Errorf("degenerate fit: %+v", s)
	}
}

func TestSkewNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := SkewNormal{Xi: 0, Omega: 1, Alpha: 5}
	xs := make([]float64, 300000)
	for i := range xs {
		xs[i] = s.Sample(rng)
	}
	m := Moments(xs)
	if !almostEqual(m.Mean, s.Mean(), 5e-3) {
		t.Errorf("sample mean %v want %v", m.Mean, s.Mean())
	}
	if !almostEqual(m.Std(), math.Sqrt(s.Variance()), 5e-3) {
		t.Errorf("sample std %v want %v", m.Std(), math.Sqrt(s.Variance()))
	}
	if !almostEqual(m.Skewness, s.Skewness(), 2e-2) {
		t.Errorf("sample skew %v want %v", m.Skewness, s.Skewness())
	}
}

func TestSkewNormalQuantileRoundTrip(t *testing.T) {
	s := SkewNormal{Xi: 1, Omega: 0.1, Alpha: -2}
	for _, p := range []float64{0.001, 0.05, 0.5, 0.77, 0.999} {
		x := s.Quantile(p)
		if got := s.CDF(x); !almostEqual(got, p, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestSNCumulantsRoundTrip(t *testing.T) {
	s := SkewNormal{Xi: 0.2, Omega: 0.05, Alpha: 3}
	k1, k2, k3 := s.Cumulants()
	back := SNFromCumulants(k1, k2, k3)
	b1, b2, b3 := back.Cumulants()
	if !almostEqual(k1, b1, 1e-12) || !almostEqual(k2, b2, 1e-12) || !almostEqual(k3, b3, 1e-10) {
		t.Errorf("cumulant round trip: (%v,%v,%v) vs (%v,%v,%v)", k1, k2, k3, b1, b2, b3)
	}
}

// Property: for any moments with attainable skewness, SNFromMoments
// reproduces them.
func TestSNFromMomentsProperty(t *testing.T) {
	f := func(mr, sr, gr float64) bool {
		mean := math.Mod(mr, 100)
		sd := math.Abs(math.Mod(sr, 10)) + 1e-3
		g := math.Mod(gr, 0.99)
		s := SNFromMoments(mean, sd, g)
		m2, sd2, g2 := s.Moments()
		return almostEqual(mean, m2, 1e-8*(1+math.Abs(mean))) &&
			almostEqual(sd, sd2, 1e-8*(1+sd)) &&
			almostEqual(g, g2, 1e-5)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
