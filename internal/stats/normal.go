package stats

import "math"

const (
	invSqrt2Pi  = 0.3989422804014327 // 1/sqrt(2*pi)
	sqrt2       = 1.4142135623730951
	sqrt2OverPi = 0.7978845608028654 // sqrt(2/pi)
)

// StdNormPDF is the standard normal density φ(x).
func StdNormPDF(x float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// StdNormCDF is the standard normal cumulative Φ(x).
func StdNormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/sqrt2)
}

// StdNormQuantile inverts Φ using Acklam's rational approximation refined
// with one Halley step; absolute error is below 1e-13 over (0,1).
func StdNormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return math.NaN()
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// Halley refinement.
	e := StdNormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// Normal is the Gaussian distribution N(mu, sigma²).
type Normal struct {
	Mu    float64
	Sigma float64
}

// PDF returns the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return StdNormPDF(z) / n.Sigma
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return StdNormCDF((x - n.Mu) / n.Sigma)
}

// Mean returns mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns sigma².
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// Skewness of a Gaussian is zero.
func (n Normal) Skewness() float64 { return 0 }

// ExcessKurtosis of a Gaussian is zero.
func (n Normal) ExcessKurtosis() float64 { return 0 }

// Quantile inverts the CDF in closed form.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*StdNormQuantile(p)
}

// Sample draws one variate.
func (n Normal) Sample(src Source) float64 {
	return n.Mu + n.Sigma*src.NormFloat64()
}
