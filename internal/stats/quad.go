package stats

// Gauss-Legendre quadrature. The 16-point nodes and weights on [-1, 1] are
// tabulated; integrate applies them on a panelised interval, which keeps
// accuracy high even for peaked integrands (each panel resolves locally).

var glNodes16 = [16]float64{
	-0.9894009349916499, -0.9445750230732326, -0.8656312023878318,
	-0.7554044083550030, -0.6178762444026438, -0.4580167776572274,
	-0.2816035507792589, -0.0950125098376374,
	0.0950125098376374, 0.2816035507792589,
	0.4580167776572274, 0.6178762444026438,
	0.7554044083550030, 0.8656312023878318,
	0.9445750230732326, 0.9894009349916499,
}

var glWeights16 = [16]float64{
	0.0271524594117541, 0.0622535239386479, 0.0951585116824928,
	0.1246289712555339, 0.1495959888165767, 0.1691565193950025,
	0.1826034150449236, 0.1894506104550685,
	0.1894506104550685, 0.1826034150449236,
	0.1691565193950025, 0.1495959888165767,
	0.1246289712555339, 0.0951585116824928,
	0.0622535239386479, 0.0271524594117541,
}

// gauss16 integrates f over [a, b] with a single 16-point panel.
func gauss16(f func(float64) float64, a, b float64) float64 {
	h := 0.5 * (b - a)
	c := 0.5 * (a + b)
	var sum float64
	for i := 0; i < 16; i++ {
		sum += glWeights16[i] * f(c+h*glNodes16[i])
	}
	return h * sum
}

// integrate integrates f over [a, b] using `panels` equal-width 16-point
// Gauss-Legendre panels.
func integrate(f func(float64) float64, a, b float64, panels int) float64 {
	if panels < 1 {
		panels = 1
	}
	h := (b - a) / float64(panels)
	var sum float64
	for i := 0; i < panels; i++ {
		sum += gauss16(f, a+float64(i)*h, a+float64(i+1)*h)
	}
	return sum
}
