package stats

import (
	"math"
	"sort"
)

// Goodness-of-fit machinery: the regularised incomplete gamma function
// (hence the chi-square CDF) and two GOF tests used to score fitted
// timing models beyond the paper's three metrics — a binned chi-square
// test and the Kolmogorov–Smirnov p-value approximation.

// RegIncGammaP computes the regularised lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) via the standard series (x < a+1) or continued
// fraction (x ≥ a+1) — Numerical-Recipes-style, accurate to ~1e-12.
func RegIncGammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) = 1 − P(a,x) by continued fraction (Lentz).
func gammaCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF is P(X ≤ x) for a chi-square distribution with k degrees
// of freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 || k <= 0 {
		return 0
	}
	return RegIncGammaP(float64(k)/2, x/2)
}

// GOFResult is the outcome of a goodness-of-fit test.
type GOFResult struct {
	Statistic float64
	DoF       int
	PValue    float64
}

// ChiSquareGOF bins the samples into nbins equiprobable bins under the
// model (so expected counts are equal) and computes Pearson's chi-square
// statistic. dofPenalty is the number of parameters estimated from the
// data (subtracted from the degrees of freedom along with 1).
func ChiSquareGOF(model Dist, xs []float64, nbins, dofPenalty int) GOFResult {
	n := len(xs)
	if nbins < 2 || n < 5*nbins {
		return GOFResult{PValue: math.NaN()}
	}
	// Equiprobable bin edges from model quantiles.
	edges := make([]float64, nbins-1)
	for i := range edges {
		edges[i] = Quantile(model, float64(i+1)/float64(nbins))
	}
	counts := make([]int, nbins)
	for _, x := range xs {
		i := sort.SearchFloat64s(edges, x)
		counts[i]++
	}
	expected := float64(n) / float64(nbins)
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	dof := nbins - 1 - dofPenalty
	if dof < 1 {
		dof = 1
	}
	return GOFResult{
		Statistic: chi2,
		DoF:       dof,
		PValue:    1 - ChiSquareCDF(chi2, dof),
	}
}

// KSPValue approximates the Kolmogorov–Smirnov p-value for a distance d
// on n samples via the asymptotic Kolmogorov distribution
// Q(λ) = 2 Σ (−1)^{j−1} e^{−2 j² λ²} with the small-sample correction
// λ = (√n + 0.12 + 0.11/√n)·d.
func KSPValue(d float64, n int) float64 {
	if n <= 0 || d <= 0 {
		return 1
	}
	sn := math.Sqrt(float64(n))
	lambda := (sn + 0.12 + 0.11/sn) * d
	var p float64
	if lambda < 1.18 {
		// Small-λ theta-function form: the alternating series converges
		// hopelessly slowly here. CDF(λ) = (√(2π)/λ) Σ e^{−(2j−1)²π²/(8λ²)}.
		var cdf float64
		for j := 1; j <= 20; j++ {
			e := float64(2*j-1) * math.Pi / lambda
			cdf += math.Exp(-e * e / 8)
		}
		cdf *= math.Sqrt(2*math.Pi) / lambda
		p = 1 - cdf
	} else {
		var sum float64
		sign := 1.0
		for j := 1; j <= 100; j++ {
			term := math.Exp(-2 * float64(j*j) * lambda * lambda)
			sum += sign * term
			if term < 1e-12 {
				break
			}
			sign = -sign
		}
		p = 2 * sum
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
