package stats

import "math"

// OwenT computes Owen's T function
//
//	T(h, a) = 1/(2π) ∫₀ᵃ exp(−h²(1+t²)/2)/(1+t²) dt,
//
// which appears in the skew-normal CDF: F_SN(z; α) = Φ(z) − 2·T(z, α).
//
// The implementation reduces |a| to ≤ 1 with the classical identity
//
//	T(h, a) = ½Φ(h) + ½Φ(ah) − Φ(h)Φ(ah) − T(ah, 1/a)   (a > 0)
//
// and integrates the reduced range with panelised Gauss-Legendre
// quadrature; accuracy is ~1e-14 over the range exercised here.
func OwenT(h, a float64) float64 {
	if a == 0 || math.IsNaN(h) || math.IsNaN(a) {
		return 0
	}
	// Symmetries: T(h,a) is even in h and odd in a.
	if h < 0 {
		h = -h
	}
	if a < 0 {
		return -OwenT(h, -a)
	}
	if math.IsInf(a, 1) {
		// T(h, ∞) = (1 − Φ(h)) / 2 for h ≥ 0.
		return 0.5 * (1 - StdNormCDF(h))
	}
	if a > 1 {
		ah := a * h
		return 0.5*StdNormCDF(h) + 0.5*StdNormCDF(ah) -
			StdNormCDF(h)*StdNormCDF(ah) - owenTCore(ah, 1/a)
	}
	return owenTCore(h, a)
}

// owenTCore integrates the Owen integrand for 0 <= a <= 1, h >= 0.
func owenTCore(h, a float64) float64 {
	if a == 0 {
		return 0
	}
	f := func(t float64) float64 {
		return math.Exp(-0.5*h*h*(1+t*t)) / (1 + t*t)
	}
	// 8 panels of 16-point GL resolve the integrand to ~1e-15 on [0,1].
	return integrate(f, 0, a, 8) / (2 * math.Pi)
}
