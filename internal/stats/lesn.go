package stats

import "math"

// LogESN is the log-extended-skew-normal distribution: X = exp(W) with
// W ~ ESN(ξ, ω, α, τ). It is the state-of-the-art statistical-moments
// comparator model of the paper (LESN, [7]): the extra τ parameter lets the
// fit match the kurtosis of the delay distribution while the log transform
// captures the exponential dependence of delay on threshold voltage.
type LogESN struct {
	W ExtendedSkewNormal // distribution of log X
}

// PDF returns the density f_X(x) = f_W(ln x)/x for x > 0.
func (l LogESN) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return l.W.PDF(math.Log(x)) / x
}

// CDF returns P(X <= x) = F_W(ln x).
func (l LogESN) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return l.W.CDF(math.Log(x))
}

// rawMoment computes E[X^k] = E[e^{kW}] = e^{kξ + k²ω²/2} Φ(τ + kδω)/Φ(τ).
// This closed form comes from the ESN moment generating function.
func (l LogESN) rawMoment(k float64) float64 {
	w := l.W
	d := w.Alpha / math.Sqrt(1+w.Alpha*w.Alpha)
	ph := StdNormCDF(w.Tau)
	if ph <= 0 {
		return math.NaN()
	}
	return math.Exp(k*w.Xi+0.5*k*k*w.Omega*w.Omega) *
		StdNormCDF(w.Tau+k*d*w.Omega) / ph
}

// Mean returns E[X].
func (l LogESN) Mean() float64 { return l.rawMoment(1) }

// Variance returns Var(X) = E[X²] − E[X]².
func (l LogESN) Variance() float64 {
	m := l.rawMoment(1)
	v := l.rawMoment(2) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// Skewness returns the third standardised moment of X.
func (l LogESN) Skewness() float64 {
	m1 := l.rawMoment(1)
	m2 := l.rawMoment(2)
	m3 := l.rawMoment(3)
	v := m2 - m1*m1
	if v <= 0 {
		return 0
	}
	mu3 := m3 - 3*m1*m2 + 2*m1*m1*m1
	return mu3 / math.Pow(v, 1.5)
}

// ExcessKurtosis returns the fourth standardised central moment minus 3.
func (l LogESN) ExcessKurtosis() float64 {
	m1 := l.rawMoment(1)
	m2 := l.rawMoment(2)
	m3 := l.rawMoment(3)
	m4 := l.rawMoment(4)
	v := m2 - m1*m1
	if v <= 0 {
		return 0
	}
	mu4 := m4 - 4*m1*m3 + 6*m1*m1*m2 - 3*m1*m1*m1*m1
	return mu4/(v*v) - 3
}

// Quantile inverts the CDF via the closed-form log-space quantile search.
func (l LogESN) Quantile(p float64) float64 {
	return math.Exp(Quantile(l.W, p))
}

// Sample draws exp of an ESN variate.
func (l LogESN) Sample(src Source) float64 {
	return math.Exp(l.W.Sample(src))
}
