package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoSN() Mixture {
	m, _ := NewMixture(
		[]float64{0.6, 0.4},
		[]Dist{
			SkewNormal{Xi: 0, Omega: 1, Alpha: 2},
			SkewNormal{Xi: 5, Omega: 0.5, Alpha: -1},
		})
	return m
}

func TestNewMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture must error")
	}
	if _, err := NewMixture([]float64{1}, []Dist{Normal{}, Normal{}}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := NewMixture([]float64{-1, 2}, []Dist{Normal{}, Normal{}}); err == nil {
		t.Error("negative weight must error")
	}
	if _, err := NewMixture([]float64{0, 0}, []Dist{Normal{}, Normal{}}); err == nil {
		t.Error("zero-sum weights must error")
	}
	m, err := NewMixture([]float64{2, 2}, []Dist{Normal{Sigma: 1}, Normal{Mu: 1, Sigma: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Weights[0], 0.5, 1e-15) {
		t.Errorf("weights not normalised: %v", m.Weights)
	}
}

func TestMixturePDFCDFConsistency(t *testing.T) {
	m := twoSN()
	tot := integrate(m.PDF, -10, 12, 64)
	if !almostEqual(tot, 1, 1e-9) {
		t.Errorf("mixture PDF integral %v", tot)
	}
	for _, x := range []float64{-2, 0.5, 3, 5.5} {
		want := integrate(m.PDF, -12, x, 64)
		if got := m.CDF(x); !almostEqual(got, want, 1e-8) {
			t.Errorf("CDF(%v) = %v, integral %v", x, got, want)
		}
	}
}

func TestMixtureMeanVariance(t *testing.T) {
	m := twoSN()
	mQ := integrate(func(x float64) float64 { return x * m.PDF(x) }, -12, 14, 64)
	if !almostEqual(m.Mean(), mQ, 1e-8) {
		t.Errorf("Mean %v vs %v", m.Mean(), mQ)
	}
	vQ := integrate(func(x float64) float64 {
		d := x - m.Mean()
		return d * d * m.PDF(x)
	}, -12, 14, 64)
	if !almostEqual(m.Variance(), vQ, 1e-7) {
		t.Errorf("Var %v vs %v", m.Variance(), vQ)
	}
}

func TestMixtureSampleMatchesCDF(t *testing.T) {
	m := twoSN()
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = m.Sample(rng)
	}
	emp := NewEmpirical(xs)
	for _, x := range []float64{-1, 0, 1, 4, 5, 6} {
		if d := math.Abs(emp.CDF(x) - m.CDF(x)); d > 0.01 {
			t.Errorf("sample CDF deviates at %v by %v", x, d)
		}
	}
}

// Property: mixture CDF is bounded in [0,1] and monotone.
func TestMixtureCDFProperty(t *testing.T) {
	m := twoSN()
	f := func(ar, br float64) bool {
		a := math.Mod(ar, 20)
		b := math.Mod(br, 20)
		if b < a {
			a, b = b, a
		}
		ca, cb := m.CDF(a), m.CDF(b)
		return ca >= 0 && cb <= 1 && ca <= cb+1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
