package stats

import (
	"errors"
	"math"
)

// Mixture is a finite mixture of component distributions with
// non-negative weights summing to one.
type Mixture struct {
	Weights    []float64
	Components []Dist
}

// NewMixture validates and builds a mixture. Weights are normalised.
func NewMixture(weights []float64, comps []Dist) (Mixture, error) {
	if len(weights) != len(comps) {
		return Mixture{}, errors.New("stats: mixture weights/components length mismatch")
	}
	if len(comps) == 0 {
		return Mixture{}, errors.New("stats: empty mixture")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return Mixture{}, errors.New("stats: negative or NaN mixture weight")
		}
		sum += w
	}
	if sum <= 0 {
		return Mixture{}, errors.New("stats: mixture weights sum to zero")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	return Mixture{Weights: norm, Components: comps}, nil
}

// PDF is the weighted sum of component densities.
func (m Mixture) PDF(x float64) float64 {
	var p float64
	for i, w := range m.Weights {
		p += w * m.Components[i].PDF(x)
	}
	return p
}

// CDF is the weighted sum of component CDFs.
func (m Mixture) CDF(x float64) float64 {
	var c float64
	for i, w := range m.Weights {
		c += w * m.Components[i].CDF(x)
	}
	return c
}

// Mean returns Σ wᵢ μᵢ.
func (m Mixture) Mean() float64 {
	var mu float64
	for i, w := range m.Weights {
		mu += w * m.Components[i].Mean()
	}
	return mu
}

// Variance returns Σ wᵢ (σᵢ² + μᵢ²) − μ².
func (m Mixture) Variance() float64 {
	mu := m.Mean()
	var s float64
	for i, w := range m.Weights {
		mi := m.Components[i].Mean()
		s += w * (m.Components[i].Variance() + mi*mi)
	}
	v := s - mu*mu
	if v < 0 {
		return 0
	}
	return v
}

// Sample draws one variate: pick a component by weight, then sample it.
// Components must implement Sampler.
func (m Mixture) Sample(src Source) float64 {
	u := src.Float64()
	var acc float64
	for i, w := range m.Weights {
		acc += w
		if u <= acc || i == len(m.Weights)-1 {
			return m.Components[i].(Sampler).Sample(src)
		}
	}
	return m.Components[len(m.Components)-1].(Sampler).Sample(src)
}

// Quantile inverts the mixture CDF numerically.
func (m Mixture) Quantile(p float64) float64 { return Quantile(m, p) }
