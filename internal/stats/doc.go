// Package stats provides the probability distributions and moment
// machinery underlying the LVF² statistical timing model: the normal and
// skew-normal (SN) families used by the industrial Liberty Variation
// Format, the extended and log-extended skew-normal (LESN) comparator
// model, finite mixtures, Owen's T function, sample-moment and cumulant
// utilities, and empirical-distribution helpers.
//
// All distributions implement the Dist interface. Parameterisations follow
// Azzalini's conventions: an SN distribution has location ξ, scale ω and
// shape α, with the moments↔parameters bijection of the paper's eq. (2)
// provided by SNFromMoments and (SkewNormal).Moments.
package stats
