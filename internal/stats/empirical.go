package stats

import (
	"math"
	"sort"
)

// Empirical is the empirical distribution of a sample, used as the
// "golden" reference against which fitted models are scored.
type Empirical struct {
	sorted []float64
	mom    SampleMoments
}

// NewEmpirical copies and sorts xs.
func NewEmpirical(xs []float64) *Empirical {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &Empirical{sorted: s, mom: Moments(xs)}
}

// Len returns the sample count.
func (e *Empirical) Len() int { return len(e.sorted) }

// Sorted returns the sorted sample (shared slice; do not mutate).
func (e *Empirical) Sorted() []float64 { return e.sorted }

// CDF returns the fraction of samples <= x.
func (e *Empirical) CDF(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// over ties so the count includes samples equal to x.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// PDF estimates the density with a Gaussian kernel (Silverman bandwidth).
// It is O(n) per call and intended for plotting, not inner loops.
func (e *Empirical) PDF(x float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	h := e.Bandwidth()
	if h <= 0 {
		return 0
	}
	var s float64
	for _, xi := range e.sorted {
		s += StdNormPDF((x - xi) / h)
	}
	return s / (float64(n) * h)
}

// Bandwidth returns Silverman's rule-of-thumb kernel bandwidth.
func (e *Empirical) Bandwidth() float64 {
	n := len(e.sorted)
	if n < 2 {
		return 0
	}
	sd := e.mom.Std()
	iqr := e.QuantileValue(0.75) - e.QuantileValue(0.25)
	a := sd
	if iqr > 0 && iqr/1.34 < a {
		a = iqr / 1.34
	}
	if a <= 0 {
		return 0
	}
	return 0.9 * a * math.Pow(float64(n), -0.2)
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return e.mom.Mean }

// Variance returns the sample variance.
func (e *Empirical) Variance() float64 { return e.mom.Variance }

// Moments returns the cached sample moments.
func (e *Empirical) Moments() SampleMoments { return e.mom }

// QuantileValue returns the p-th sample quantile (nearest-rank with linear
// interpolation).
func (e *Empirical) QuantileValue(p float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[i]*(1-frac) + e.sorted[i+1]*frac
}

// Histogram bins the sample into nbins equal-width bins over [min, max]
// and returns bin centres and normalised densities.
func (e *Empirical) Histogram(nbins int) (centers, density []float64) {
	n := len(e.sorted)
	if n == 0 || nbins < 1 {
		return nil, nil
	}
	lo, hi := e.sorted[0], e.sorted[n-1]
	if hi <= lo {
		return []float64{lo}, []float64{math.Inf(1)}
	}
	w := (hi - lo) / float64(nbins)
	counts := make([]int, nbins)
	for _, x := range e.sorted {
		i := int((x - lo) / w)
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	centers = make([]float64, nbins)
	density = make([]float64, nbins)
	for i := range counts {
		centers[i] = lo + (float64(i)+0.5)*w
		density[i] = float64(counts[i]) / (float64(n) * w)
	}
	return centers, density
}

// KSDistance returns the Kolmogorov–Smirnov distance between the empirical
// CDF and a model CDF, evaluated at every sample point.
func (e *Empirical) KSDistance(model Dist) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	var worst float64
	for i, x := range e.sorted {
		fm := model.CDF(x)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if d := math.Abs(fm - lo); d > worst {
			worst = d
		}
		if d := math.Abs(fm - hi); d > worst {
			worst = d
		}
	}
	return worst
}
