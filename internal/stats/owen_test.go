package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOwenTKnownIdentities(t *testing.T) {
	// T(0, a) = atan(a) / (2π).
	for _, a := range []float64{0.1, 0.5, 1, 2, 10} {
		want := math.Atan(a) / (2 * math.Pi)
		if got := OwenT(0, a); !almostEqual(got, want, 1e-12) {
			t.Errorf("OwenT(0,%v) = %v, want %v", a, got, want)
		}
	}
	// T(h, 1) = Φ(h)(1 − Φ(h)) / 2.
	for _, h := range []float64{0, 0.3, 1, 2.5, 4} {
		ph := StdNormCDF(h)
		want := 0.5 * ph * (1 - ph)
		if got := OwenT(h, 1); !almostEqual(got, want, 1e-12) {
			t.Errorf("OwenT(%v,1) = %v, want %v", h, got, want)
		}
	}
}

func TestOwenTSymmetries(t *testing.T) {
	for _, h := range []float64{0.2, 1.1, 3} {
		for _, a := range []float64{0.4, 1.7, 6} {
			if got, want := OwenT(-h, a), OwenT(h, a); !almostEqual(got, want, 1e-13) {
				t.Errorf("even in h: T(%v,%v)", -h, a)
			}
			if got, want := OwenT(h, -a), -OwenT(h, a); !almostEqual(got, want, 1e-13) {
				t.Errorf("odd in a: T(%v,%v)", h, -a)
			}
		}
	}
	if OwenT(1, 0) != 0 {
		t.Error("T(h,0) must be 0")
	}
}

func TestOwenTInfiniteA(t *testing.T) {
	for _, h := range []float64{0, 0.5, 2} {
		want := 0.5 * (1 - StdNormCDF(h))
		if got := OwenT(h, math.Inf(1)); !almostEqual(got, want, 1e-13) {
			t.Errorf("T(%v, inf) = %v want %v", h, got, want)
		}
	}
}

// Property: 0 <= T(h,a) <= 1/4 for a >= 0 (bounds from the definition).
func TestOwenTBoundsProperty(t *testing.T) {
	f := func(hr, ar float64) bool {
		h := math.Mod(math.Abs(hr), 8)
		a := math.Mod(math.Abs(ar), 50)
		v := OwenT(h, a)
		return v >= -1e-15 && v <= 0.25+1e-12
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Cross-check against brute-force quadrature for moderate parameters.
func TestOwenTQuadratureCrossCheck(t *testing.T) {
	brute := func(h, a float64) float64 {
		return integrate(func(x float64) float64 {
			return math.Exp(-0.5*h*h*(1+x*x)) / (1 + x*x)
		}, 0, a, 64) / (2 * math.Pi)
	}
	for _, h := range []float64{0.1, 0.9, 2.2} {
		for _, a := range []float64{0.3, 0.9, 1.8, 5} {
			if got, want := OwenT(h, a), brute(h, a); !almostEqual(got, want, 1e-11) {
				t.Errorf("T(%v,%v) = %v, brute %v", h, a, got, want)
			}
		}
	}
}
