package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestEmpiricalCDF(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2, 2})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); got != c.want {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestEmpiricalQuantiles(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	e := NewEmpirical(xs)
	if got := e.QuantileValue(0.5); !almostEqual(got, 50, 1e-12) {
		t.Errorf("median %v", got)
	}
	if got := e.QuantileValue(0); got != 0 {
		t.Errorf("q0 %v", got)
	}
	if got := e.QuantileValue(1); got != 100 {
		t.Errorf("q1 %v", got)
	}
	if got := e.QuantileValue(0.25); !almostEqual(got, 25, 1e-12) {
		t.Errorf("q25 %v", got)
	}
}

func TestEmpiricalAgainstNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := Normal{Mu: 0, Sigma: 1}
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = n.Sample(rng)
	}
	e := NewEmpirical(xs)
	if d := e.KSDistance(n); d > 0.01 {
		t.Errorf("KS distance to truth too large: %v", d)
	}
	// PDF kernel estimate should be close to the true density near 0.
	if !almostEqual(e.PDF(0), n.PDF(0), 0.02) {
		t.Errorf("KDE at 0: %v want %v", e.PDF(0), n.PDF(0))
	}
}

func TestEmpiricalHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.9, 1.0}
	e := NewEmpirical(xs)
	centers, dens := e.Histogram(2)
	if len(centers) != 2 || len(dens) != 2 {
		t.Fatalf("histogram shape: %v %v", centers, dens)
	}
	// Total mass = sum(density * width) = 1.
	width := 0.5
	total := (dens[0] + dens[1]) * width
	if !almostEqual(total, 1, 1e-12) {
		t.Errorf("histogram mass %v", total)
	}
}

func TestEmpiricalDegenerate(t *testing.T) {
	e := NewEmpirical(nil)
	if e.CDF(0) != 0 || e.Len() != 0 {
		t.Error("empty empirical")
	}
	if !math.IsNaN(e.QuantileValue(0.5)) {
		t.Error("empty quantile should be NaN")
	}
	c := NewEmpirical([]float64{2, 2, 2})
	if c.Bandwidth() != 0 {
		t.Errorf("constant-sample bandwidth should be 0, got %v", c.Bandwidth())
	}
	cent, dens := c.Histogram(4)
	if len(cent) != 1 || !math.IsInf(dens[0], 1) {
		t.Errorf("constant-sample histogram: %v %v", cent, dens)
	}
}

func TestQuantileGenericMatchesClosedForm(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	for _, p := range []float64{0.01, 0.3, 0.5, 0.8, 0.99} {
		want := n.Quantile(p)
		got := Quantile(n, p)
		if !almostEqual(got, want, 1e-8) {
			t.Errorf("generic quantile %v: %v want %v", p, got, want)
		}
	}
	if !math.IsNaN(Quantile(n, 0)) || !math.IsNaN(Quantile(n, 1.2)) {
		t.Error("out-of-range p must be NaN")
	}
}

func TestIntervalHelper(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if got := Interval(n, -1, 1); !almostEqual(got, 0.6826894921370859, 1e-10) {
		t.Errorf("Interval = %v", got)
	}
	if Interval(n, 1, -1) != 0 {
		t.Error("reversed interval must be 0")
	}
}
