package liberty

import (
	"fmt"

	"lvf2/internal/core"
	"lvf2/internal/stats"
)

// BaseNames are the four timing quantities an LVF/LVF² timing group
// characterises. Each gets its own nominal LUT plus OCV attribute sets.
var BaseNames = []string{"cell_rise", "cell_fall", "rise_transition", "fall_transition"}

// LVF attribute names for a base quantity (§2.2), e.g. for cell_rise:
// ocv_mean_shift_cell_rise, ocv_std_dev_cell_rise, ocv_skewness_cell_rise.
func lvfAttr(prefix, base string) string { return "ocv_" + prefix + "_" + base }

// LVF² attribute names (§3.3). Note: the paper's text spells the first one
// "ocv_mean_shfit1_*" — an obvious typo we correct to "ocv_mean_shift1_*";
// the parser accepts both spellings for compatibility with the paper.
func lvf2Attr(prefix string, comp int, base string) string {
	return fmt.Sprintf("ocv_%s%d_%s", prefix, comp, base)
}

// TimingModel binds all the statistical tables of one base quantity within
// one timing() group. Nil pointers mean "attribute absent"; the §3.3
// default/inheritance rules are applied by ModelAt.
type TimingModel struct {
	Base    string
	Nominal Table

	// Classic LVF moment tables (offsets from nominal for the mean).
	MeanShift *Table
	StdDev    *Table
	Skewness  *Table

	// LVF² component-1 tables; absent tables inherit the LVF ones.
	MeanShift1 *Table
	StdDev1    *Table
	Skewness1  *Table

	// LVF² second component: weight λ and its moments.
	Weight2    *Table
	MeanShift2 *Table
	StdDev2    *Table
	Skewness2  *Table

	// FallbackNote records fit provenance when any grid point of this
	// quantity was produced by a degradation rung rather than the
	// requested model (see fit.FitReport). Emitted as a quoted simple
	// attribute ocv_fallback_note_<base>; tools that don't know it
	// ignore it, and Lint treats it as any other unknown attribute.
	FallbackNote string
}

// HasLVF reports whether classic LVF moment tables are present.
func (tm *TimingModel) HasLVF() bool {
	return tm.MeanShift != nil && tm.StdDev != nil
}

// HasLVF2 reports whether any LVF² attribute is present.
func (tm *TimingModel) HasLVF2() bool {
	return tm.Weight2 != nil || tm.MeanShift1 != nil || tm.StdDev1 != nil ||
		tm.Skewness1 != nil || tm.MeanShift2 != nil || tm.StdDev2 != nil ||
		tm.Skewness2 != nil
}

func tableAt(t *Table, i, j int) (float64, bool) {
	if t == nil || i >= len(t.Values) || j >= len(t.Values[i]) {
		return 0, false
	}
	return t.Values[i][j], true
}

// ModelAt assembles the LVF² model of one slew–load point, applying the
// backward-compatibility defaults of §3.3:
//
//   - mean₁ defaults to nominal + ocv_mean_shift (classic LVF);
//   - σ₁/γ₁ default to the classic std-dev/skewness tables;
//   - λ defaults to zero (pure LVF, eq. 10);
//   - the second component is only consulted when λ > 0.
func (tm *TimingModel) ModelAt(i, j int) (core.Model, error) {
	if i >= tm.Nominal.Rows() || j >= tm.Nominal.Cols() {
		return core.Model{}, fmt.Errorf("liberty: index (%d,%d) outside %dx%d table for %s",
			i, j, tm.Nominal.Rows(), tm.Nominal.Cols(), tm.Base)
	}
	nominal := tm.Nominal.At(i, j)

	var m core.Model
	// Component 1 with inheritance.
	shift, ok := tableAt(tm.MeanShift1, i, j)
	if !ok {
		shift, _ = tableAt(tm.MeanShift, i, j)
	}
	sd, ok := tableAt(tm.StdDev1, i, j)
	if !ok {
		sd, _ = tableAt(tm.StdDev, i, j)
	}
	skew, ok := tableAt(tm.Skewness1, i, j)
	if !ok {
		skew, _ = tableAt(tm.Skewness, i, j)
	}
	m.Theta1 = core.Theta{Mean: nominal + shift, Sigma: sd, Skew: skew}

	if lam, ok := tableAt(tm.Weight2, i, j); ok && lam > 0 {
		m.Lambda = lam
		shift2, _ := tableAt(tm.MeanShift2, i, j)
		sd2, _ := tableAt(tm.StdDev2, i, j)
		skew2, _ := tableAt(tm.Skewness2, i, j)
		m.Theta2 = core.Theta{Mean: nominal + shift2, Sigma: sd2, Skew: skew2}
	}
	if err := m.Validate(); err != nil {
		return core.Model{}, fmt.Errorf("liberty: %s at (%d,%d): %w", tm.Base, i, j, err)
	}
	return m, nil
}

// ExtractTimingModel pulls the tables for one base quantity out of a
// timing() group. Returns an error if the nominal table is missing.
func ExtractTimingModel(timing *Group, base string) (*TimingModel, error) {
	nomG, ok := timing.Group(base)
	if !ok {
		return nil, fmt.Errorf("liberty: timing group has no %s table", base)
	}
	nominal, err := TableFromGroup(nomG)
	if err != nil {
		return nil, err
	}
	tm := &TimingModel{Base: base, Nominal: nominal}

	grab := func(name string) (*Table, error) {
		g, ok := timing.Group(name)
		if !ok {
			return nil, nil
		}
		t, err := TableFromGroup(g)
		if err != nil {
			return nil, err
		}
		return &t, nil
	}
	type slot struct {
		dst  **Table
		name string
	}
	slots := []slot{
		{&tm.MeanShift, lvfAttr("mean_shift", base)},
		{&tm.StdDev, lvfAttr("std_dev", base)},
		{&tm.Skewness, lvfAttr("skewness", base)},
		{&tm.MeanShift1, lvf2Attr("mean_shift", 1, base)},
		{&tm.StdDev1, lvf2Attr("std_dev", 1, base)},
		{&tm.Skewness1, lvf2Attr("skewness", 1, base)},
		{&tm.Weight2, lvf2Attr("weight", 2, base)},
		{&tm.MeanShift2, lvf2Attr("mean_shift", 2, base)},
		{&tm.StdDev2, lvf2Attr("std_dev", 2, base)},
		{&tm.Skewness2, lvf2Attr("skewness", 2, base)},
	}
	for _, s := range slots {
		t, err := grab(s.name)
		if err != nil {
			return nil, err
		}
		*s.dst = t
	}
	// Accept the paper's misspelled attribute as an alias.
	if tm.MeanShift1 == nil {
		if t, err := grab("ocv_mean_shfit1_" + base); err == nil && t != nil {
			tm.MeanShift1 = t
		}
	}
	tm.FallbackNote = timing.SimpleValue("ocv_fallback_note_" + base)
	return tm, nil
}

// AppendTo emits the timing model's tables into a timing() group. When
// emitLVF2 is false only the nominal and classic LVF tables are written,
// producing a library older tools read unchanged; with emitLVF2 the seven
// §3.3 attributes are added for points where λ > 0.
func (tm *TimingModel) AppendTo(timing *Group, template string, emitLVF2 bool) {
	tm.Nominal.AppendToGroup(timing, tm.Base, template)
	if tm.FallbackNote != "" {
		timing.AddSimpleQuoted("ocv_fallback_note_"+tm.Base, tm.FallbackNote)
	}
	emit := func(t *Table, name string) {
		if t != nil {
			t.AppendToGroup(timing, name, template)
		}
	}
	emit(tm.MeanShift, lvfAttr("mean_shift", tm.Base))
	emit(tm.StdDev, lvfAttr("std_dev", tm.Base))
	emit(tm.Skewness, lvfAttr("skewness", tm.Base))
	if !emitLVF2 {
		return
	}
	emit(tm.MeanShift1, lvf2Attr("mean_shift", 1, tm.Base))
	emit(tm.StdDev1, lvf2Attr("std_dev", 1, tm.Base))
	emit(tm.Skewness1, lvf2Attr("skewness", 1, tm.Base))
	emit(tm.Weight2, lvf2Attr("weight", 2, tm.Base))
	emit(tm.MeanShift2, lvf2Attr("mean_shift", 2, tm.Base))
	emit(tm.StdDev2, lvf2Attr("std_dev", 2, tm.Base))
	emit(tm.Skewness2, lvf2Attr("skewness", 2, tm.Base))
}

// TimingModelFromFits builds the full table set from a grid of fitted
// LVF² models (models[i][j] for index point (i,j)) and the matching grid
// of nominal values. Classic LVF tables are always populated (from the
// dominant component, keeping old tools working); LVF² tables are
// populated whenever any grid point has λ > 0.
func TimingModelFromFits(base string, index1, index2 []float64, nominal [][]float64, models [][]core.Model) *TimingModel {
	rows, cols := len(index1), len(index2)
	tm := &TimingModel{Base: base, Nominal: Table{Index1: index1, Index2: index2, Values: nominal}}
	newT := func() *Table {
		t := NewTable(index1, index2)
		return &t
	}
	tm.MeanShift, tm.StdDev, tm.Skewness = newT(), newT(), newT()

	anyLVF2 := false
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !models[i][j].IsLVF() {
				anyLVF2 = true
			}
		}
	}
	if anyLVF2 {
		tm.MeanShift1, tm.StdDev1, tm.Skewness1 = newT(), newT(), newT()
		tm.Weight2, tm.MeanShift2, tm.StdDev2, tm.Skewness2 = newT(), newT(), newT(), newT()
	}

	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m := models[i][j]
			nom := nominal[i][j]
			// Classic LVF view: overall mixture moments keep old tools
			// accurate to three moments even for bimodal points. The
			// skewness attribute is defined as an SN skewness (eq. 2-3),
			// so mixture skews beyond the SN-attainable range are clamped
			// — exactly what a legacy reader would do anyway.
			mom := m.Moments()
			skew := mom.Skewness
			if skew > stats.MaxSNSkewness {
				skew = stats.MaxSNSkewness
			} else if skew < -stats.MaxSNSkewness {
				skew = -stats.MaxSNSkewness
			}
			tm.MeanShift.Set(i, j, mom.Mean-nom)
			tm.StdDev.Set(i, j, mom.Std())
			tm.Skewness.Set(i, j, skew)
			if !anyLVF2 {
				continue
			}
			tm.MeanShift1.Set(i, j, m.Theta1.Mean-nom)
			tm.StdDev1.Set(i, j, m.Theta1.Sigma)
			tm.Skewness1.Set(i, j, m.Theta1.Skew)
			tm.Weight2.Set(i, j, m.Lambda)
			if !m.IsLVF() {
				tm.MeanShift2.Set(i, j, m.Theta2.Mean-nom)
				tm.StdDev2.Set(i, j, m.Theta2.Sigma)
				tm.Skewness2.Set(i, j, m.Theta2.Skew)
			}
		}
	}
	return tm
}
