package liberty

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lvf2/internal/core"
)

// Property: for any random grid of LVF² models, building the Liberty
// tables, serialising, re-parsing and re-extracting reproduces every
// model's parameters to printed precision.
func TestLibertyModelRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		i1 := []float64{0.01, 0.05, 0.2}
		i2 := []float64{0.001, 0.01}
		nom := make([][]float64, len(i1))
		models := make([][]core.Model, len(i1))
		for i := range nom {
			nom[i] = make([]float64, len(i2))
			models[i] = make([]core.Model, len(i2))
			for j := range nom[i] {
				nom[i][j] = 0.05 + r.Float64()
				m := core.Model{
					Theta1: core.Theta{
						Mean:  nom[i][j] + 0.02*r.NormFloat64(),
						Sigma: 0.001 + 0.01*r.Float64(),
						Skew:  1.8 * (r.Float64() - 0.5),
					},
				}
				if r.Float64() < 0.5 {
					m.Lambda = 0.01 + 0.49*r.Float64()
					m.Theta2 = core.Theta{
						Mean:  nom[i][j] + 0.05*r.NormFloat64(),
						Sigma: 0.001 + 0.01*r.Float64(),
						Skew:  1.8 * (r.Float64() - 0.5),
					}
				}
				models[i][j] = m
			}
		}
		tm := TimingModelFromFits("cell_fall", i1, i2, nom, models)
		timing := &Group{Name: "timing"}
		tm.AppendTo(timing, "tpl", true)
		parsed, err := Parse(timing.String())
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		tm2, err := ExtractTimingModel(parsed, "cell_fall")
		if err != nil {
			t.Logf("extract: %v", err)
			return false
		}
		for i := range i1 {
			for j := range i2 {
				a, err1 := tm.ModelAt(i, j)
				b, err2 := tm2.ModelAt(i, j)
				if err1 != nil || err2 != nil {
					t.Logf("ModelAt: %v %v", err1, err2)
					return false
				}
				if math.Abs(a.Lambda-b.Lambda) > 1e-6 ||
					math.Abs(a.Theta1.Mean-b.Theta1.Mean) > 1e-6 ||
					math.Abs(a.Theta1.Sigma-b.Theta1.Sigma) > 1e-6 ||
					math.Abs(a.Theta1.Skew-b.Theta1.Skew) > 1e-6 ||
					math.Abs(a.Theta2.Mean-b.Theta2.Mean) > 1e-6 {
					t.Logf("(%d,%d): %+v != %+v", i, j, a, b)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: parsing arbitrary garbage never panics (it may error).
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		_, _ = Parse("library (x) { " + s + " }")
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
