package liberty

import (
	"fmt"
	"sort"

	"lvf2/internal/core"
)

// Semantic layer: a typed view of a parsed Liberty library, the interface
// an SSTA engine consumes. It resolves cells, pins and timing arcs, binds
// the LVF/LVF² statistical tables of every arc, and provides bilinear LUT
// interpolation so timing can be queried at arbitrary slew–load points —
// not just table corners.

// Library is the typed view of a `library` group.
type Library struct {
	Name  string
	Cells map[string]*Cell
	// Templates maps lu_table_template names to their default axes.
	Templates map[string]Table
}

// Cell is a standard cell with pins.
type Cell struct {
	Name string
	Pins map[string]*Pin
	// Order preserves pin declaration order.
	Order []string
}

// Pin is a cell pin with direction, capacitance and timing arcs (for
// output pins).
type Pin struct {
	Name        string
	Direction   string
	Capacitance float64
	Function    string
	Timings     []*TimingArc
}

// TimingArc is one timing() group: the arc from RelatedPin to this pin,
// with one TimingModel per characterised base quantity.
type TimingArc struct {
	RelatedPin string
	Sense      string
	Tables     map[string]*TimingModel // keyed by base name (cell_rise, ...)
}

// LoadLibrary converts a parsed `library` group into the typed view.
func LoadLibrary(g *Group) (*Library, error) {
	if g.Name != "library" {
		return nil, fmt.Errorf("liberty: top-level group is %q, want library", g.Name)
	}
	name := ""
	if len(g.Args) > 0 {
		name = g.Args[0]
	}
	lib := &Library{
		Name:      name,
		Cells:     make(map[string]*Cell),
		Templates: make(map[string]Table),
	}
	for _, tpl := range g.GroupsNamed("lu_table_template") {
		if len(tpl.Args) == 0 {
			continue
		}
		var t Table
		if a, ok := tpl.Attr("index_1"); ok && len(a.Values) > 0 {
			t.Index1, _ = parseFloatList(a.Values[0])
		}
		if a, ok := tpl.Attr("index_2"); ok && len(a.Values) > 0 {
			t.Index2, _ = parseFloatList(a.Values[0])
		}
		lib.Templates[tpl.Args[0]] = t
	}
	for _, cg := range g.GroupsNamed("cell") {
		if len(cg.Args) == 0 {
			return nil, fmt.Errorf("liberty: cell group without a name")
		}
		cell, err := loadCell(cg, lib)
		if err != nil {
			return nil, err
		}
		lib.Cells[cell.Name] = cell
	}
	return lib, nil
}

func loadCell(cg *Group, lib *Library) (*Cell, error) {
	cell := &Cell{Name: cg.Args[0], Pins: make(map[string]*Pin)}
	for _, pg := range cg.GroupsNamed("pin") {
		if len(pg.Args) == 0 {
			return nil, fmt.Errorf("liberty: cell %s has an unnamed pin", cell.Name)
		}
		pin := &Pin{
			Name:      pg.Args[0],
			Direction: pg.SimpleValue("direction"),
			Function:  pg.SimpleValue("function"),
		}
		if capStr := pg.SimpleValue("capacitance"); capStr != "" {
			if vs, err := parseFloatList(capStr); err == nil && len(vs) == 1 {
				pin.Capacitance = vs[0]
			}
		}
		for _, tg := range pg.GroupsNamed("timing") {
			arc := &TimingArc{
				RelatedPin: tg.SimpleValue("related_pin"),
				Sense:      tg.SimpleValue("timing_sense"),
				Tables:     make(map[string]*TimingModel),
			}
			for _, base := range BaseNames {
				if _, ok := tg.Group(base); !ok {
					continue
				}
				tm, err := ExtractTimingModel(tg, base)
				if err != nil {
					return nil, fmt.Errorf("liberty: cell %s pin %s: %w", cell.Name, pin.Name, err)
				}
				// Backfill missing axes from the template argument.
				if nomG, ok := tg.Group(base); ok && len(nomG.Args) > 0 {
					if tpl, ok := lib.Templates[nomG.Args[0]]; ok {
						if len(tm.Nominal.Index1) == 0 {
							tm.Nominal.Index1 = tpl.Index1
						}
						if len(tm.Nominal.Index2) == 0 {
							tm.Nominal.Index2 = tpl.Index2
						}
					}
				}
				arc.Tables[base] = tm
			}
			if len(arc.Tables) > 0 {
				pin.Timings = append(pin.Timings, arc)
			}
		}
		cell.Pins[pin.Name] = pin
		cell.Order = append(cell.Order, pin.Name)
	}
	return cell, nil
}

// OutputPins returns the cell's output pins in declaration order.
func (c *Cell) OutputPins() []*Pin {
	var out []*Pin
	for _, name := range c.Order {
		if p := c.Pins[name]; p.Direction == "output" {
			out = append(out, p)
		}
	}
	return out
}

// ArcTo finds the timing arc from the given input pin on an output pin.
func (p *Pin) ArcTo(relatedPin string) (*TimingArc, bool) {
	for _, t := range p.Timings {
		if t.RelatedPin == relatedPin {
			return t, true
		}
	}
	return nil, false
}

// ------------------------------------------------------ LUT interpolation

// interp1Weights locates x on a sorted axis, returning the bracketing
// indices and the interpolation fraction (clamped at the table edges, the
// standard Liberty extrapolation-free behaviour).
func interp1Weights(axis []float64, x float64) (i0, i1 int, frac float64) {
	n := len(axis)
	if n == 0 {
		return 0, 0, 0
	}
	if n == 1 || x <= axis[0] {
		return 0, 0, 0
	}
	if x >= axis[n-1] {
		return n - 1, n - 1, 0
	}
	i := sort.SearchFloat64s(axis, x)
	// axis[i-1] < x <= axis[i]
	i0, i1 = i-1, i
	frac = (x - axis[i0]) / (axis[i1] - axis[i0])
	return
}

// InterpolateTable bilinearly interpolates a LUT at (x1, x2) over
// (Index1, Index2), clamping outside the table range.
func InterpolateTable(t Table, x1, x2 float64) float64 {
	if len(t.Values) == 0 {
		return 0
	}
	a0, a1, fa := interp1Weights(t.Index1, x1)
	b0, b1, fb := interp1Weights(t.Index2, x2)
	if a1 >= len(t.Values) {
		a0, a1, fa = 0, 0, 0
	}
	v00 := t.Values[a0][b0]
	v01 := t.Values[a0][b1]
	v10 := t.Values[a1][b0]
	v11 := t.Values[a1][b1]
	return (1-fa)*((1-fb)*v00+fb*v01) + fa*((1-fb)*v10+fb*v11)
}

// interpTablePtr interpolates an optional table (0 when absent).
func interpTablePtr(t *Table, x1, x2 float64) (float64, bool) {
	if t == nil {
		return 0, false
	}
	return InterpolateTable(*t, x1, x2), true
}

// LVFAtPoint returns the classic-LVF view at an arbitrary (slew, load)
// point: the single-SN moments vector a legacy (non-LVF²) tool would use,
// built from the nominal and classic ocv_* tables only.
func (tm *TimingModel) LVFAtPoint(slew, load float64) (core.Theta, error) {
	if len(tm.Nominal.Values) == 0 {
		return core.Theta{}, fmt.Errorf("liberty: %s has no nominal table", tm.Base)
	}
	nominal := InterpolateTable(tm.Nominal, slew, load)
	shift, _ := interpTablePtr(tm.MeanShift, slew, load)
	sd, _ := interpTablePtr(tm.StdDev, slew, load)
	skew, _ := interpTablePtr(tm.Skewness, slew, load)
	return core.Theta{Mean: nominal + shift, Sigma: sd, Skew: skew}, nil
}

// NominalAtPoint interpolates just the nominal LUT.
func (tm *TimingModel) NominalAtPoint(slew, load float64) float64 {
	return InterpolateTable(tm.Nominal, slew, load)
}

// ModelAtPoint assembles the LVF² model at an arbitrary (slew, load)
// point by bilinearly interpolating every statistical table, with the
// same §3.3 inheritance rules as ModelAt. This is what a block-based SSTA
// engine calls while walking a netlist, where actual slews rarely land on
// table corners.
func (tm *TimingModel) ModelAtPoint(slew, load float64) (core.Model, error) {
	if len(tm.Nominal.Values) == 0 {
		return core.Model{}, fmt.Errorf("liberty: %s has no nominal table", tm.Base)
	}
	nominal := InterpolateTable(tm.Nominal, slew, load)

	var m core.Model
	shift, ok := interpTablePtr(tm.MeanShift1, slew, load)
	if !ok {
		shift, _ = interpTablePtr(tm.MeanShift, slew, load)
	}
	sd, ok := interpTablePtr(tm.StdDev1, slew, load)
	if !ok {
		sd, _ = interpTablePtr(tm.StdDev, slew, load)
	}
	skew, ok := interpTablePtr(tm.Skewness1, slew, load)
	if !ok {
		skew, _ = interpTablePtr(tm.Skewness, slew, load)
	}
	m.Theta1 = core.Theta{Mean: nominal + shift, Sigma: sd, Skew: skew}

	if lam, ok := interpTablePtr(tm.Weight2, slew, load); ok && lam > 0 {
		m.Lambda = lam
		shift2, _ := interpTablePtr(tm.MeanShift2, slew, load)
		sd2, _ := interpTablePtr(tm.StdDev2, slew, load)
		skew2, _ := interpTablePtr(tm.Skewness2, slew, load)
		m.Theta2 = core.Theta{Mean: nominal + shift2, Sigma: sd2, Skew: skew2}
	}
	if err := m.Validate(); err != nil {
		return core.Model{}, fmt.Errorf("liberty: %s at (%g,%g): %w", tm.Base, slew, load, err)
	}
	return m, nil
}
