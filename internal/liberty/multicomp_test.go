package liberty

import (
	"math"
	"testing"

	"lvf2/internal/core"
)

func threeCompFixture() (i1, i2 []float64, nom [][]float64, models [][]core.MixModel) {
	i1 = []float64{0.01, 0.1}
	i2 = []float64{0.002}
	nom = [][]float64{{0.10}, {0.20}}
	models = [][]core.MixModel{
		{{
			Theta1:  core.Theta{Mean: 0.101, Sigma: 0.004, Skew: 0.3},
			Weights: []float64{0.25, 0.15},
			Thetas: []core.Theta{
				{Mean: 0.130, Sigma: 0.005, Skew: 0.2},
				{Mean: 0.150, Sigma: 0.006, Skew: -0.1},
			},
		}},
		{{
			// Pure LVF point.
			Theta1: core.Theta{Mean: 0.203, Sigma: 0.006, Skew: 0.4},
		}},
	}
	return
}

func TestMultiCompRoundTrip(t *testing.T) {
	i1, i2, nom, models := threeCompFixture()
	mm, err := MultiTimingModelFromFits("cell_rise", i1, i2, nom, models)
	if err != nil {
		t.Fatal(err)
	}
	if mm.K() != 3 {
		t.Fatalf("K = %d want 3", mm.K())
	}
	timing := &Group{Name: "timing"}
	mm.AppendTo(timing, "tpl")

	parsed, err := Parse(timing.String())
	if err != nil {
		t.Fatal(err)
	}
	mm2, err := ExtractMultiTimingModel(parsed, "cell_rise")
	if err != nil {
		t.Fatal(err)
	}
	if mm2.K() != 3 {
		t.Fatalf("re-extracted K = %d", mm2.K())
	}
	// 3-component point round-trips.
	m, err := mm2.ModelAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 {
		t.Fatalf("point (0,0) K = %d", m.K())
	}
	if math.Abs(m.Weights[0]-0.25) > 1e-7 || math.Abs(m.Weights[1]-0.15) > 1e-7 {
		t.Errorf("weights %v", m.Weights)
	}
	if math.Abs(m.Thetas[1].Mean-0.150) > 1e-7 {
		t.Errorf("theta3 mean %v", m.Thetas[1].Mean)
	}
	if math.Abs(m.Lambda1()-0.6) > 1e-7 {
		t.Errorf("lambda1 %v", m.Lambda1())
	}
	// LVF point reads back as single component (zero extra weights drop).
	m, err = mm2.ModelAt(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Errorf("LVF point K = %d", m.K())
	}
	if math.Abs(m.Theta1.Mean-0.203) > 1e-7 {
		t.Errorf("LVF mean %v", m.Theta1.Mean)
	}
}

func TestMultiCompClassicInheritance(t *testing.T) {
	// A classic LVF-only timing group reads as a 1-component multi-model.
	src := `timing () {
	  cell_rise (tpl) { index_1("1"); index_2("1"); values ("0.1"); }
	  ocv_mean_shift_cell_rise (tpl) { values ("0.004"); }
	  ocv_std_dev_cell_rise (tpl) { values ("0.01"); }
	  ocv_skewness_cell_rise (tpl) { values ("0.3"); }
	}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := ExtractMultiTimingModel(g, "cell_rise")
	if err != nil {
		t.Fatal(err)
	}
	if mm.K() != 1 {
		t.Fatalf("K = %d", mm.K())
	}
	m, err := mm.ModelAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Theta1.Mean-0.104) > 1e-12 || math.Abs(m.Theta1.Sigma-0.01) > 1e-12 {
		t.Errorf("inherited θ1: %+v", m.Theta1)
	}
}

func TestMultiCompValidation(t *testing.T) {
	bad := core.MixModel{
		Theta1:  core.Theta{Mean: 1, Sigma: 0.1},
		Weights: []float64{0.7, 0.6}, // sum > 1
		Thetas:  []core.Theta{{Mean: 1, Sigma: 0.1}, {Mean: 1, Sigma: 0.1}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("weight simplex violation accepted")
	}
	mismatch := core.MixModel{Weights: []float64{0.2}}
	if err := mismatch.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	neg := core.MixModel{Theta1: core.Theta{Sigma: -1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	// ModelAt out of range.
	i1, i2, nom, models := threeCompFixture()
	mm, _ := MultiTimingModelFromFits("cell_rise", i1, i2, nom, models)
	if _, err := mm.ModelAt(9, 9); err == nil {
		t.Error("out-of-range accepted")
	}
	// FromFits validates inputs.
	models[0][0].Weights = []float64{1.4}
	models[0][0].Thetas = models[0][0].Thetas[:1]
	if _, err := MultiTimingModelFromFits("cell_rise", i1, i2, nom, models); err == nil {
		t.Error("invalid model grid accepted")
	}
}

func TestMixModelDistAndTwoComponent(t *testing.T) {
	m := core.MixModel{
		Theta1:  core.Theta{Mean: 0.1, Sigma: 0.01, Skew: 0},
		Weights: []float64{0.3},
		Thetas:  []core.Theta{{Mean: 0.15, Sigma: 0.01, Skew: 0}},
	}
	d := m.Dist()
	want := 0.7*0.1 + 0.3*0.15
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Errorf("mix mean %v want %v", d.Mean(), want)
	}
	two, ok := m.TwoComponent()
	if !ok || math.Abs(two.Lambda-0.3) > 1e-12 {
		t.Errorf("TwoComponent: %+v ok=%v", two, ok)
	}
	three := core.MixModel{
		Theta1:  core.Theta{Mean: 0.1, Sigma: 0.01},
		Weights: []float64{0.2, 0.1},
		Thetas:  []core.Theta{{Mean: 0.12, Sigma: 0.01}, {Mean: 0.14, Sigma: 0.01}},
	}
	if _, ok := three.TwoComponent(); ok {
		t.Error("3-component model converted to 2")
	}
	lvfOnly := core.MixModel{Theta1: core.Theta{Mean: 0.2, Sigma: 0.02}}
	two, ok = lvfOnly.TwoComponent()
	if !ok || !two.IsLVF() {
		t.Error("1-component conversion failed")
	}
}
