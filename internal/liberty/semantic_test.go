package liberty

import (
	"math"
	"testing"
)

const semanticLib = `
library (semlib) {
  delay_model : table_lookup;
  lu_table_template (tpl2x2) {
    variable_1 : input_net_transition;
    variable_2 : total_output_net_capacitance;
    index_1 ("0.01, 0.1");
    index_2 ("0.002, 0.02");
  }
  cell (ND2) {
    pin (A) { direction : input; capacitance : 0.0011; }
    pin (B) { direction : input; capacitance : 0.0012; }
    pin (ZN) {
      direction : output;
      function : "!(A & B)";
      timing () {
        related_pin : "A";
        timing_sense : negative_unate;
        cell_rise (tpl2x2) {
          index_1 ("0.01, 0.1");
          index_2 ("0.002, 0.02");
          values ("0.10, 0.20", "0.30, 0.40");
        }
        ocv_std_dev_cell_rise (tpl2x2) {
          index_1 ("0.01, 0.1");
          index_2 ("0.002, 0.02");
          values ("0.010, 0.012", "0.014, 0.016");
        }
        ocv_weight2_cell_rise (tpl2x2) {
          index_1 ("0.01, 0.1");
          index_2 ("0.002, 0.02");
          values ("0.0, 0.2", "0.3, 0.4");
        }
        ocv_std_dev2_cell_rise (tpl2x2) {
          index_1 ("0.01, 0.1");
          index_2 ("0.002, 0.02");
          values ("0.02, 0.02", "0.02, 0.02");
        }
      }
      timing () {
        related_pin : "B";
        cell_rise (tpl2x2) {
          values ("0.11, 0.21", "0.31, 0.41");
        }
      }
    }
  }
}
`

func loadSemantic(t *testing.T) *Library {
	t.Helper()
	g, err := Parse(semanticLib)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := LoadLibrary(g)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestLoadLibraryStructure(t *testing.T) {
	lib := loadSemantic(t)
	if lib.Name != "semlib" {
		t.Errorf("name %q", lib.Name)
	}
	cell, ok := lib.Cells["ND2"]
	if !ok {
		t.Fatal("ND2 missing")
	}
	if len(cell.Pins) != 3 {
		t.Fatalf("pins %d", len(cell.Pins))
	}
	a := cell.Pins["A"]
	if a.Direction != "input" || math.Abs(a.Capacitance-0.0011) > 1e-12 {
		t.Errorf("pin A: %+v", a)
	}
	outs := cell.OutputPins()
	if len(outs) != 1 || outs[0].Name != "ZN" {
		t.Fatalf("output pins: %v", outs)
	}
	if outs[0].Function != "!(A & B)" {
		t.Errorf("function %q", outs[0].Function)
	}
	if len(outs[0].Timings) != 2 {
		t.Fatalf("timings %d", len(outs[0].Timings))
	}
	arcA, ok := outs[0].ArcTo("A")
	if !ok || arcA.Sense != "negative_unate" {
		t.Fatalf("arc A: %+v ok=%v", arcA, ok)
	}
	if _, ok := outs[0].ArcTo("C"); ok {
		t.Error("phantom arc C")
	}
	// Arc B inherited its axes from the template.
	arcB, _ := outs[0].ArcTo("B")
	tmB := arcB.Tables["cell_rise"]
	if len(tmB.Nominal.Index1) != 2 || tmB.Nominal.Index1[0] != 0.01 {
		t.Errorf("template axis backfill failed: %+v", tmB.Nominal.Index1)
	}
}

func TestLoadLibraryErrors(t *testing.T) {
	g, _ := Parse(`cell (x) { }`)
	if _, err := LoadLibrary(g); err == nil {
		t.Error("non-library top group accepted")
	}
	g2, _ := Parse(`library (x) { cell () { } }`)
	if _, err := LoadLibrary(g2); err == nil {
		t.Error("unnamed cell accepted")
	}
	g3, _ := Parse(`library (x) { cell (c) { pin () { } } }`)
	if _, err := LoadLibrary(g3); err == nil {
		t.Error("unnamed pin accepted")
	}
}

func TestInterpolateTableCornersAndCenter(t *testing.T) {
	tab := Table{
		Index1: []float64{0.01, 0.1},
		Index2: []float64{0.002, 0.02},
		Values: [][]float64{{0.10, 0.20}, {0.30, 0.40}},
	}
	// Exact corners.
	cases := []struct{ x1, x2, want float64 }{
		{0.01, 0.002, 0.10},
		{0.01, 0.02, 0.20},
		{0.1, 0.002, 0.30},
		{0.1, 0.02, 0.40},
		// Midpoint of both axes: average of 4 corners.
		{0.055, 0.011, 0.25},
		// Clamping outside the grid.
		{0.001, 0.0001, 0.10},
		{1.0, 1.0, 0.40},
	}
	for _, c := range cases {
		if got := InterpolateTable(tab, c.x1, c.x2); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Interp(%v,%v) = %v want %v", c.x1, c.x2, got, c.want)
		}
	}
}

func TestInterpolateTableDegenerate(t *testing.T) {
	if InterpolateTable(Table{}, 1, 1) != 0 {
		t.Error("empty table should give 0")
	}
	one := Table{Index1: []float64{1}, Index2: []float64{1}, Values: [][]float64{{7}}}
	if InterpolateTable(one, 5, 5) != 7 {
		t.Error("1x1 table should clamp to its value")
	}
}

func TestModelAtPointInterpolatesStatistics(t *testing.T) {
	lib := loadSemantic(t)
	arc, _ := lib.Cells["ND2"].OutputPins()[0].ArcTo("A")
	tm := arc.Tables["cell_rise"]

	// Corner (1,1): λ=0.4, σ1=0.016, nominal 0.40.
	m, err := tm.ModelAtPoint(0.1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Lambda-0.4) > 1e-12 || math.Abs(m.Theta1.Sigma-0.016) > 1e-12 {
		t.Errorf("corner model: %+v", m)
	}
	if math.Abs(m.Theta1.Mean-0.40) > 1e-12 {
		t.Errorf("corner mean: %v", m.Theta1.Mean)
	}
	// Midpoint: all tables bilinear — λ = mean of {0, .2, .3, .4} = 0.225.
	m, err = tm.ModelAtPoint(0.055, 0.011)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Lambda-0.225) > 1e-12 {
		t.Errorf("mid λ: %v", m.Lambda)
	}
	if math.Abs(m.Theta1.Mean-0.25) > 1e-12 {
		t.Errorf("mid mean: %v", m.Theta1.Mean)
	}
	// λ=0 corner degenerates to LVF.
	m, err = tm.ModelAtPoint(0.01, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsLVF() {
		t.Errorf("λ=0 corner should be LVF: %+v", m)
	}
	// Missing nominal table errors.
	var empty TimingModel
	if _, err := empty.ModelAtPoint(0.01, 0.002); err == nil {
		t.Error("empty model accepted")
	}
}
