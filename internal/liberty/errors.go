package liberty

import "fmt"

// ParseError is a positional Liberty syntax error. Line and Col are
// 1-based and point at the offending token (for an unterminated group,
// the end of input); Msg carries the description without the position
// prefix. Retrieve it with errors.As to report precise locations.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("liberty: line %d, col %d: %s", e.Line, e.Col, e.Msg)
}

// perrAt builds a ParseError at an explicit position.
func perrAt(line, col int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// perr builds a ParseError at a token's position.
func perr(t token, format string, args ...any) *ParseError {
	return perrAt(t.line, t.col, format, args...)
}
