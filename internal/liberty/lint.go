package liberty

import (
	"fmt"
	"strings"
)

// Lint: structural and statistical sanity checks over a parsed library.
// Characterisation flows produce large generated .lib files; these checks
// catch the mistakes that silently corrupt downstream SSTA — mismatched
// table shapes, weights outside [0, 1], negative sigmas, skewness beyond
// the SN-representable range, missing arcs, and dangling templates.

// LintIssue is one finding.
type LintIssue struct {
	Severity string // "error" or "warning"
	Where    string // cell/pin/arc context
	Message  string
}

func (i LintIssue) String() string {
	return fmt.Sprintf("%s: %s: %s", i.Severity, i.Where, i.Message)
}

// Lint checks a parsed library group and returns all findings (empty =
// clean). It never fails on unknown constructs — Liberty is huge and this
// library only models a subset — but everything it does understand is
// verified.
func Lint(g *Group) []LintIssue {
	var issues []LintIssue
	add := func(sev, where, format string, args ...any) {
		issues = append(issues, LintIssue{Severity: sev, Where: where, Message: fmt.Sprintf(format, args...)})
	}
	if g.Name != "library" {
		add("error", g.Name, "top-level group is %q, want library", g.Name)
		return issues
	}

	templates := map[string]bool{}
	for _, tpl := range g.GroupsNamed("lu_table_template") {
		if len(tpl.Args) == 0 {
			add("error", "lu_table_template", "template without a name")
			continue
		}
		templates[tpl.Args[0]] = true
	}

	for _, cg := range g.GroupsNamed("cell") {
		if len(cg.Args) == 0 {
			add("error", "cell", "cell without a name")
			continue
		}
		cellName := cg.Args[0]
		hasOutput := false
		for _, pg := range cg.GroupsNamed("pin") {
			if len(pg.Args) == 0 {
				add("error", cellName, "pin without a name")
				continue
			}
			pinName := pg.Args[0]
			where := cellName + "/" + pinName
			dir := pg.SimpleValue("direction")
			switch dir {
			case "input", "output", "inout", "internal":
			case "":
				add("warning", where, "pin has no direction")
			default:
				add("error", where, "unknown direction %q", dir)
			}
			if dir == "output" {
				hasOutput = true
			}
			for _, tg := range pg.GroupsNamed("timing") {
				lintTiming(tg, where, templates, add)
			}
		}
		if !hasOutput {
			add("warning", cellName, "cell has no output pin")
		}
	}
	return issues
}

func lintTiming(tg *Group, where string, templates map[string]bool, add func(sev, where, format string, args ...any)) {
	rel := tg.SimpleValue("related_pin")
	if rel == "" {
		add("warning", where, "timing group without related_pin")
	} else {
		where = where + " (from " + rel + ")"
	}
	sawNominal := false
	for _, base := range BaseNames {
		if _, ok := tg.Group(base); !ok {
			continue
		}
		sawNominal = true
		tm, err := ExtractTimingModel(tg, base)
		if err != nil {
			add("error", where, "%s: %v", base, err)
			continue
		}
		lintTables(tm, where, add)
	}
	if !sawNominal {
		add("warning", where, "timing group has no delay/transition tables")
	}
	// Template references must exist.
	for _, child := range tg.Groups {
		if len(child.Args) == 1 && strings.Contains(child.Name, "_") {
			if len(templates) > 0 && !templates[child.Args[0]] {
				add("warning", where, "%s references unknown template %q", child.Name, child.Args[0])
			}
		}
	}
}

func lintTables(tm *TimingModel, where string, add func(sev, where, format string, args ...any)) {
	// Shape from the value matrix itself: index vectors are optional when
	// a template supplies them.
	rows := len(tm.Nominal.Values)
	cols := 0
	if rows > 0 {
		cols = len(tm.Nominal.Values[0])
	}
	checkShape := func(t *Table, name string) {
		if t == nil {
			return
		}
		if len(t.Values) != rows || (rows > 0 && len(t.Values[0]) != cols) {
			add("error", where, "%s/%s is %dx%d, nominal is %dx%d",
				tm.Base, name, len(t.Values), len(t.Values[0]), rows, cols)
		}
	}
	checkShape(tm.MeanShift, "ocv_mean_shift")
	checkShape(tm.StdDev, "ocv_std_dev")
	checkShape(tm.Skewness, "ocv_skewness")
	checkShape(tm.Weight2, "ocv_weight2")
	checkShape(tm.StdDev2, "ocv_std_dev2")

	inRange := func(t *Table, name string, lo, hi float64) {
		if t == nil {
			return
		}
		for i, row := range t.Values {
			for j, v := range row {
				if v < lo || v > hi {
					add("error", where, "%s/%s[%d][%d] = %v outside [%g, %g]",
						tm.Base, name, i, j, v, lo, hi)
				}
			}
		}
	}
	inRange(tm.Weight2, "ocv_weight2", 0, 1)
	inRange(tm.StdDev, "ocv_std_dev", 0, 1e9)
	inRange(tm.StdDev1, "ocv_std_dev1", 0, 1e9)
	inRange(tm.StdDev2, "ocv_std_dev2", 0, 1e9)
	inRange(tm.Skewness, "ocv_skewness", -1, 1)
	inRange(tm.Skewness1, "ocv_skewness1", -1, 1)
	inRange(tm.Skewness2, "ocv_skewness2", -1, 1)

	// Nominal timing values should be positive.
	for i, row := range tm.Nominal.Values {
		for j, v := range row {
			if v <= 0 {
				add("warning", where, "%s nominal[%d][%d] = %v is not positive", tm.Base, i, j, v)
			}
		}
	}
}

// HasErrors reports whether any finding is severity "error".
func HasErrors(issues []LintIssue) bool {
	for _, i := range issues {
		if i.Severity == "error" {
			return true
		}
	}
	return false
}
