package liberty

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a Liberty lookup table: two index vectors and a matrix of
// values indexed [index1][index2] (input slew × output load throughout
// this project).
type Table struct {
	Index1 []float64
	Index2 []float64
	Values [][]float64
}

// NewTable allocates a zero-filled table over the given axes.
func NewTable(index1, index2 []float64) Table {
	v := make([][]float64, len(index1))
	for i := range v {
		v[i] = make([]float64, len(index2))
	}
	return Table{Index1: index1, Index2: index2, Values: v}
}

// At returns Values[i][j].
func (t Table) At(i, j int) float64 { return t.Values[i][j] }

// Set assigns Values[i][j].
func (t *Table) Set(i, j int, v float64) { t.Values[i][j] = v }

// Rows and Cols return the table dimensions.
func (t Table) Rows() int { return len(t.Index1) }

// Cols returns the second-axis length.
func (t Table) Cols() int { return len(t.Index2) }

// parseFloatList parses a Liberty number list: comma and/or whitespace
// separated values within one string.
func parseFloatList(s string) ([]float64, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\\'
	})
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("liberty: bad number %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// TableFromGroup extracts a lookup table from a group such as
// `cell_rise (template) { index_1(...); index_2(...); values(...); }`.
func TableFromGroup(g *Group) (Table, error) {
	var t Table
	var err error
	if a, ok := g.Attr("index_1"); ok && len(a.Values) > 0 {
		if t.Index1, err = parseFloatList(strings.Join(a.Values, ",")); err != nil {
			return t, fmt.Errorf("%s index_1: %w", g.Name, err)
		}
	}
	if a, ok := g.Attr("index_2"); ok && len(a.Values) > 0 {
		if t.Index2, err = parseFloatList(strings.Join(a.Values, ",")); err != nil {
			return t, fmt.Errorf("%s index_2: %w", g.Name, err)
		}
	}
	a, ok := g.Attr("values")
	if !ok {
		return t, fmt.Errorf("liberty: group %q has no values attribute", g.Name)
	}
	rows := make([][]float64, 0, len(a.Values))
	for _, rv := range a.Values {
		row, err := parseFloatList(rv)
		if err != nil {
			return t, fmt.Errorf("%s values: %w", g.Name, err)
		}
		rows = append(rows, row)
	}
	// A single flat row with index_1 and index_2 present is reshaped.
	if len(rows) == 1 && len(t.Index1) > 1 && len(t.Index2) > 0 &&
		len(rows[0]) == len(t.Index1)*len(t.Index2) {
		flat := rows[0]
		rows = make([][]float64, len(t.Index1))
		for i := range rows {
			rows[i] = flat[i*len(t.Index2) : (i+1)*len(t.Index2)]
		}
	}
	t.Values = rows
	if err := t.validate(g.Name); err != nil {
		return t, err
	}
	return t, nil
}

func (t Table) validate(name string) error {
	if len(t.Values) == 0 {
		return fmt.Errorf("liberty: table %q is empty", name)
	}
	w := len(t.Values[0])
	for i, row := range t.Values {
		if len(row) != w {
			return fmt.Errorf("liberty: table %q row %d has %d values, want %d", name, i, len(row), w)
		}
	}
	if len(t.Index1) > 0 && len(t.Index1) != len(t.Values) {
		return fmt.Errorf("liberty: table %q: %d rows vs index_1 length %d", name, len(t.Values), len(t.Index1))
	}
	if len(t.Index2) > 0 && len(t.Index2) != w {
		return fmt.Errorf("liberty: table %q: %d cols vs index_2 length %d", name, w, len(t.Index2))
	}
	return nil
}

// formatFloats renders a float list Liberty-style.
func formatFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', 8, 64)
	}
	return strings.Join(parts, ", ")
}

// AppendToGroup emits the table as a child group of parent with the given
// group name and template argument.
func (t Table) AppendToGroup(parent *Group, name, template string) *Group {
	g := parent.AddGroup(name, template)
	if len(t.Index1) > 0 {
		g.AddComplex("index_1", formatFloats(t.Index1))
	}
	if len(t.Index2) > 0 {
		g.AddComplex("index_2", formatFloats(t.Index2))
	}
	rows := make([]string, len(t.Values))
	for i, r := range t.Values {
		rows[i] = formatFloats(r)
	}
	g.AddComplex("values", rows...)
	return g
}
