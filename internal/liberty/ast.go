package liberty

import (
	"fmt"
	"io"
	"strings"
)

// Attr is a Liberty attribute. Simple attributes have the form
// `name : value ;`; complex attributes have `name (v1, v2, ...) ;`.
type Attr struct {
	Name     string
	Simple   bool
	Value    string   // simple attribute value
	Values   []string // complex attribute arguments
	Quoted   bool     // simple value was quoted
	QuoteAll bool     // complex values are emitted quoted (e.g. values(...))
}

// Group is a Liberty group statement: `name (args) { ... }`.
type Group struct {
	Name   string
	Args   []string
	Attrs  []Attr
	Groups []*Group
}

// AddSimple appends a simple attribute.
func (g *Group) AddSimple(name, value string) {
	g.Attrs = append(g.Attrs, Attr{Name: name, Simple: true, Value: value})
}

// AddSimpleQuoted appends a simple attribute with a quoted value.
func (g *Group) AddSimpleQuoted(name, value string) {
	g.Attrs = append(g.Attrs, Attr{Name: name, Simple: true, Value: value, Quoted: true})
}

// AddComplex appends a complex attribute with quoted arguments.
func (g *Group) AddComplex(name string, values ...string) {
	g.Attrs = append(g.Attrs, Attr{Name: name, Values: values, QuoteAll: true})
}

// AddGroup appends and returns a nested group.
func (g *Group) AddGroup(name string, args ...string) *Group {
	child := &Group{Name: name, Args: args}
	g.Groups = append(g.Groups, child)
	return child
}

// Attr returns the first attribute with the given name.
func (g *Group) Attr(name string) (Attr, bool) {
	for _, a := range g.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attr{}, false
}

// SimpleValue returns the value of a simple attribute, or "" if absent.
func (g *Group) SimpleValue(name string) string {
	if a, ok := g.Attr(name); ok && a.Simple {
		return a.Value
	}
	return ""
}

// Group returns the first nested group with the given name.
func (g *Group) Group(name string) (*Group, bool) {
	for _, c := range g.Groups {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// GroupsNamed returns all nested groups with the given name.
func (g *Group) GroupsNamed(name string) []*Group {
	var out []*Group
	for _, c := range g.Groups {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Write serialises the group as Liberty text.
func (g *Group) Write(w io.Writer) error {
	return g.write(w, 0)
}

// String returns the Liberty text of the group.
func (g *Group) String() string {
	var b strings.Builder
	if err := g.write(&b, 0); err != nil {
		return ""
	}
	return b.String()
}

func (g *Group) write(w io.Writer, depth int) error {
	ind := strings.Repeat("  ", depth)
	if _, err := fmt.Fprintf(w, "%s%s (%s) {\n", ind, g.Name, strings.Join(g.Args, ", ")); err != nil {
		return err
	}
	inner := ind + "  "
	for _, a := range g.Attrs {
		var err error
		if a.Simple {
			if a.Quoted {
				_, err = fmt.Fprintf(w, "%s%s : \"%s\";\n", inner, a.Name, a.Value)
			} else {
				_, err = fmt.Fprintf(w, "%s%s : %s;\n", inner, a.Name, a.Value)
			}
		} else {
			vals := make([]string, len(a.Values))
			for i, v := range a.Values {
				if a.QuoteAll {
					vals[i] = "\"" + v + "\""
				} else {
					vals[i] = v
				}
			}
			sep := ", "
			if a.Name == "values" && len(vals) > 1 {
				// Emit one row per line, Liberty-style, with continuations.
				_, err = fmt.Fprintf(w, "%s%s ( \\\n%s%s%s );\n",
					inner, a.Name, inner+"  ",
					strings.Join(vals, ", \\\n"+inner+"  "), " \\\n"+inner)
				if err != nil {
					return err
				}
				continue
			}
			_, err = fmt.Fprintf(w, "%s%s (%s);\n", inner, a.Name, strings.Join(vals, sep))
		}
		if err != nil {
			return err
		}
	}
	for _, c := range g.Groups {
		if err := c.write(w, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s}\n", ind)
	return err
}
