package liberty

import (
	"math"
	"strings"
	"testing"

	"lvf2/internal/core"
)

// buildFixtureModels returns a 2×2 grid of models: three plain-LVF points
// and one genuinely bimodal point.
func buildFixtureModels() (index1, index2 []float64, nominal [][]float64, models [][]core.Model) {
	index1 = []float64{0.01, 0.1}
	index2 = []float64{0.002, 0.02}
	nominal = [][]float64{{0.10, 0.20}, {0.15, 0.30}}
	mk := func(mean, sd, skew float64) core.Model {
		return core.FromLVF(core.Theta{Mean: mean, Sigma: sd, Skew: skew})
	}
	models = [][]core.Model{
		{mk(0.102, 0.004, 0.3), mk(0.205, 0.006, 0.2)},
		{mk(0.153, 0.005, 0.4), {
			Lambda: 0.3,
			Theta1: core.Theta{Mean: 0.295, Sigma: 0.006, Skew: 0.25},
			Theta2: core.Theta{Mean: 0.330, Sigma: 0.008, Skew: -0.10},
		}},
	}
	return
}

func TestTimingModelFromFitsAndBack(t *testing.T) {
	i1, i2, nom, models := buildFixtureModels()
	tm := TimingModelFromFits("cell_rise", i1, i2, nom, models)
	if !tm.HasLVF() || !tm.HasLVF2() {
		t.Fatal("expected both LVF and LVF2 tables")
	}
	// Plain point: λ = 0, component 1 = model.
	m, err := tm.ModelAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsLVF() {
		t.Error("point (0,0) should be λ=0")
	}
	if math.Abs(m.Theta1.Mean-0.102) > 1e-9 {
		t.Errorf("mean1 %v", m.Theta1.Mean)
	}
	// Bimodal point round-trips both components.
	m, err = tm.ModelAt(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Lambda-0.3) > 1e-12 {
		t.Errorf("lambda %v", m.Lambda)
	}
	if math.Abs(m.Theta2.Mean-0.330) > 1e-9 || math.Abs(m.Theta2.Sigma-0.008) > 1e-12 {
		t.Errorf("theta2 %+v", m.Theta2)
	}
	// Classic LVF tables at the bimodal point carry mixture moments, not
	// component-1 moments.
	wantMean := 0.7*0.295 + 0.3*0.330
	if got := tm.Nominal.At(1, 1) + tm.MeanShift.At(1, 1); math.Abs(got-wantMean) > 1e-9 {
		t.Errorf("LVF mean at bimodal point %v want %v", got, wantMean)
	}
	// Out-of-range access errors.
	if _, err := tm.ModelAt(5, 0); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestLibraryRoundTripWithLVF2(t *testing.T) {
	i1, i2, nom, models := buildFixtureModels()
	tm := TimingModelFromFits("cell_rise", i1, i2, nom, models)

	lib := NewLibrary(LibraryHeaderOptions{
		Name: "lvf2demo", Voltage: 0.8, TempC: 25, ProcessName: "synthetic22",
	}, "tpl2x2", i1, i2)
	out := AddCell(lib, "NAND2", []string{"A", "B"}, 0.0011, "ZN", "!(A & B)")
	timing := AddTiming(out, "A", "negative_unate")
	tm.AppendTo(timing, "tpl2x2", true)

	var sb strings.Builder
	if err := WriteLibrary(&sb, lib); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("parse of generated library failed: %v\n%s", err, text)
	}
	cell, _ := parsed.Group("cell")
	var timingG *Group
	for _, pin := range cell.GroupsNamed("pin") {
		if tg, ok := pin.Group("timing"); ok {
			timingG = tg
		}
	}
	if timingG == nil {
		t.Fatal("timing group lost in round trip")
	}
	tm2, err := ExtractTimingModel(timingG, "cell_rise")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			a, err := tm.ModelAt(i, j)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tm2.ModelAt(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(a.Lambda-b.Lambda) > 1e-7 ||
				math.Abs(a.Theta1.Mean-b.Theta1.Mean) > 1e-7 ||
				math.Abs(a.Theta1.Sigma-b.Theta1.Sigma) > 1e-7 ||
				math.Abs(a.Theta2.Mean-b.Theta2.Mean) > 1e-7 {
				t.Errorf("(%d,%d): %+v != %+v", i, j, a, b)
			}
		}
	}
}

// Backward compatibility (eq. 10): a classic LVF-only library parsed by
// the LVF²-capable extractor yields λ=0 models identical to the LVF view.
func TestLVFOnlyLibraryReadsAsLVF2(t *testing.T) {
	i1, i2, nom, _ := buildFixtureModels()
	mkLVF := func(mean, sd, skew float64) core.Model {
		return core.FromLVF(core.Theta{Mean: mean, Sigma: sd, Skew: skew})
	}
	models := [][]core.Model{
		{mkLVF(0.102, 0.004, 0.3), mkLVF(0.205, 0.006, 0.2)},
		{mkLVF(0.153, 0.005, 0.4), mkLVF(0.305, 0.007, 0.1)},
	}
	tm := TimingModelFromFits("cell_fall", i1, i2, nom, models)
	if tm.HasLVF2() {
		t.Fatal("pure LVF fits must not create LVF2 tables")
	}
	lib := NewLibrary(LibraryHeaderOptions{Name: "lvfonly"}, "tpl", i1, i2)
	pin := AddCell(lib, "INV", []string{"A"}, 0.0009, "ZN", "!A")
	timing := AddTiming(pin, "A", "negative_unate")
	tm.AppendTo(timing, "tpl", false)

	parsed, err := Parse(lib.String())
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := parsed.Group("cell")
	var timingG *Group
	for _, p := range cell.GroupsNamed("pin") {
		if tg, ok := p.Group("timing"); ok {
			timingG = tg
		}
	}
	tm2, err := ExtractTimingModel(timingG, "cell_fall")
	if err != nil {
		t.Fatal(err)
	}
	if tm2.HasLVF2() {
		t.Error("LVF-only library must not expose LVF2 tables")
	}
	m, err := tm2.ModelAt(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsLVF() {
		t.Error("λ must default to 0 (eq. 10)")
	}
	if math.Abs(m.Theta1.Mean-0.153) > 1e-7 || math.Abs(m.Theta1.Skew-0.4) > 1e-6 {
		t.Errorf("LVF θ: %+v", m.Theta1)
	}
}

// The paper spells the first LVF² attribute "ocv_mean_shfit1"; the parser
// accepts that spelling as an alias.
func TestPaperTypoAlias(t *testing.T) {
	src := `timing () {
	  related_pin : "A";
	  cell_rise (tpl) { index_1("1"); index_2("1"); values ("0.1"); }
	  ocv_std_dev_cell_rise (tpl) { values ("0.01"); }
	  ocv_mean_shfit1_cell_rise (tpl) { values ("0.005"); }
	}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := ExtractTimingModel(g, "cell_rise")
	if err != nil {
		t.Fatal(err)
	}
	if tm.MeanShift1 == nil {
		t.Fatal("typo alias not recognised")
	}
	m, err := tm.ModelAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Theta1.Mean-0.105) > 1e-12 {
		t.Errorf("mean1 with alias shift: %v", m.Theta1.Mean)
	}
	// σ inherits from the classic LVF table.
	if math.Abs(m.Theta1.Sigma-0.01) > 1e-12 {
		t.Errorf("σ inheritance: %v", m.Theta1.Sigma)
	}
}

func TestExtractTimingModelMissingNominal(t *testing.T) {
	g, _ := Parse(`timing () { related_pin : "A"; }`)
	if _, err := ExtractTimingModel(g, "cell_rise"); err == nil {
		t.Error("missing nominal table accepted")
	}
}

func TestModelAtValidatesLambda(t *testing.T) {
	i1 := []float64{1}
	i2 := []float64{1}
	tm := &TimingModel{
		Base:    "cell_rise",
		Nominal: Table{Index1: i1, Index2: i2, Values: [][]float64{{0.1}}},
	}
	w := NewTable(i1, i2)
	w.Set(0, 0, 1.5) // invalid weight
	tm.Weight2 = &w
	if _, err := tm.ModelAt(0, 0); err == nil {
		t.Error("λ > 1 accepted")
	}
}
