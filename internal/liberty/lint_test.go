package liberty

import (
	"strings"
	"testing"
)

func TestLintCleanLibrary(t *testing.T) {
	g, err := Parse(tinyLib)
	if err != nil {
		t.Fatal(err)
	}
	issues := Lint(g)
	if HasErrors(issues) {
		t.Errorf("clean library has errors: %v", issues)
	}
}

func TestLintFindsProblems(t *testing.T) {
	src := `library (bad) {
	  lu_table_template (tpl) { index_1 ("1, 2"); }
	  cell (X) {
	    pin (A) { direction : sideways; }
	    pin (ZN) {
	      direction : output;
	      timing () {
	        related_pin : "A";
	        cell_rise (nosuchtpl) {
	          index_1 ("1, 2");
	          index_2 ("1, 2");
	          values ("0.1, -0.2", "0.3, 0.4");
	        }
	        ocv_weight2_cell_rise (tpl) {
	          values ("1.5, 0.2", "0.3, 0.4");
	        }
	        ocv_std_dev_cell_rise (tpl) {
	          values ("-0.01, 0.02", "0.03, 0.04");
	        }
	      }
	    }
	  }
	  cell (NOOUT) {
	    pin (B) { direction : input; }
	  }
	}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	issues := Lint(g)
	if !HasErrors(issues) {
		t.Fatal("broken library passed lint")
	}
	text := make([]string, len(issues))
	for i, is := range issues {
		text[i] = is.String()
	}
	all := strings.Join(text, "\n")
	for _, want := range []string{
		"unknown direction",      // pin A
		"ocv_weight2",            // 1.5 out of [0,1]
		"ocv_std_dev",            // negative sigma
		"not positive",           // negative nominal
		"unknown template",       // nosuchtpl
		"cell has no output pin", // NOOUT
	} {
		if !strings.Contains(all, want) {
			t.Errorf("missing finding %q in:\n%s", want, all)
		}
	}
}

func TestLintRejectsNonLibrary(t *testing.T) {
	g, _ := Parse(`cell (x) { }`)
	issues := Lint(g)
	if !HasErrors(issues) {
		t.Error("non-library top group passed")
	}
}

func TestLintShapeMismatch(t *testing.T) {
	src := `library (b) {
	  cell (X) {
	    pin (ZN) {
	      direction : output;
	      timing () {
	        related_pin : "A";
	        cell_rise (tpl) { values ("0.1, 0.2", "0.3, 0.4"); }
	        ocv_std_dev_cell_rise (tpl) { values ("0.01"); }
	      }
	    }
	  }
	}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	issues := Lint(g)
	found := false
	for _, is := range issues {
		if strings.Contains(is.Message, "nominal is 2x2") {
			found = true
		}
	}
	if !found {
		t.Errorf("shape mismatch not reported: %v", issues)
	}
}
