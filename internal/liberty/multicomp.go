package liberty

import (
	"fmt"

	"lvf2/internal/core"
)

// k-component Liberty binding: §3.3 notes the LVF² attribute set extends
// to more Gaussian components "by following similar attribute naming
// conventions" — ocv_weight3_cell_rise, ocv_mean_shift3_cell_rise, and so
// on. This file reads and writes that generalised form. Component 1
// always inherits the classic LVF tables; components 2..k carry explicit
// weight/mean-shift/std-dev/skewness tables.

// ComponentTables holds the four tables of one extra mixture component.
type ComponentTables struct {
	Index     int // component index (2, 3, ...)
	Weight    *Table
	MeanShift *Table
	StdDev    *Table
	Skewness  *Table
}

// MultiTimingModel binds a base quantity with an arbitrary component
// count.
type MultiTimingModel struct {
	Base    string
	Nominal Table

	// Component 1 (classic LVF / LVF² component-1 tables with
	// inheritance, as in TimingModel).
	MeanShift1 *Table
	StdDev1    *Table
	Skewness1  *Table

	Extras []ComponentTables // components 2..k in index order
}

// K returns the total component count.
func (mm *MultiTimingModel) K() int { return 1 + len(mm.Extras) }

// ExtractMultiTimingModel reads the generalised attribute set from a
// timing group, scanning component indices upward until one is absent.
func ExtractMultiTimingModel(timing *Group, base string) (*MultiTimingModel, error) {
	nomG, ok := timing.Group(base)
	if !ok {
		return nil, fmt.Errorf("liberty: timing group has no %s table", base)
	}
	nominal, err := TableFromGroup(nomG)
	if err != nil {
		return nil, err
	}
	mm := &MultiTimingModel{Base: base, Nominal: nominal}

	grab := func(name string) (*Table, error) {
		g, ok := timing.Group(name)
		if !ok {
			return nil, nil
		}
		t, err := TableFromGroup(g)
		if err != nil {
			return nil, err
		}
		return &t, nil
	}
	// Component 1: explicit *1 tables override the classic LVF tables.
	for _, s := range []struct {
		dst      **Table
		explicit string
		classic  string
	}{
		{&mm.MeanShift1, lvf2Attr("mean_shift", 1, base), lvfAttr("mean_shift", base)},
		{&mm.StdDev1, lvf2Attr("std_dev", 1, base), lvfAttr("std_dev", base)},
		{&mm.Skewness1, lvf2Attr("skewness", 1, base), lvfAttr("skewness", base)},
	} {
		t, err := grab(s.explicit)
		if err != nil {
			return nil, err
		}
		if t == nil {
			if t, err = grab(s.classic); err != nil {
				return nil, err
			}
		}
		*s.dst = t
	}
	for idx := 2; ; idx++ {
		w, err := grab(lvf2Attr("weight", idx, base))
		if err != nil {
			return nil, err
		}
		if w == nil {
			break
		}
		ct := ComponentTables{Index: idx, Weight: w}
		if ct.MeanShift, err = grab(lvf2Attr("mean_shift", idx, base)); err != nil {
			return nil, err
		}
		if ct.StdDev, err = grab(lvf2Attr("std_dev", idx, base)); err != nil {
			return nil, err
		}
		if ct.Skewness, err = grab(lvf2Attr("skewness", idx, base)); err != nil {
			return nil, err
		}
		mm.Extras = append(mm.Extras, ct)
	}
	return mm, nil
}

// ModelAt assembles the k-component model at a grid point.
func (mm *MultiTimingModel) ModelAt(i, j int) (core.MixModel, error) {
	if i >= mm.Nominal.Rows() || j >= mm.Nominal.Cols() {
		return core.MixModel{}, fmt.Errorf("liberty: index (%d,%d) outside %dx%d table for %s",
			i, j, mm.Nominal.Rows(), mm.Nominal.Cols(), mm.Base)
	}
	nominal := mm.Nominal.At(i, j)
	var m core.MixModel
	shift, _ := tableAt(mm.MeanShift1, i, j)
	sd, _ := tableAt(mm.StdDev1, i, j)
	skew, _ := tableAt(mm.Skewness1, i, j)
	m.Theta1 = core.Theta{Mean: nominal + shift, Sigma: sd, Skew: skew}
	for _, ct := range mm.Extras {
		lam, ok := tableAt(ct.Weight, i, j)
		if !ok || lam <= 0 {
			continue
		}
		s2, _ := tableAt(ct.MeanShift, i, j)
		sd2, _ := tableAt(ct.StdDev, i, j)
		g2, _ := tableAt(ct.Skewness, i, j)
		m.Weights = append(m.Weights, lam)
		m.Thetas = append(m.Thetas, core.Theta{Mean: nominal + s2, Sigma: sd2, Skew: g2})
	}
	if err := m.Validate(); err != nil {
		return core.MixModel{}, fmt.Errorf("liberty: %s at (%d,%d): %w", mm.Base, i, j, err)
	}
	return m, nil
}

// MultiTimingModelFromFits builds the generalised table set from a grid of
// k-component fits. All grid points must have the same component count k;
// points fitted with fewer effective components carry zero weights.
func MultiTimingModelFromFits(base string, index1, index2 []float64, nominal [][]float64, models [][]core.MixModel) (*MultiTimingModel, error) {
	rows, cols := len(index1), len(index2)
	maxK := 1
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if k := models[i][j].K(); k > maxK {
				maxK = k
			}
		}
	}
	mm := &MultiTimingModel{
		Base:    base,
		Nominal: Table{Index1: index1, Index2: index2, Values: nominal},
	}
	newT := func() *Table {
		t := NewTable(index1, index2)
		return &t
	}
	mm.MeanShift1, mm.StdDev1, mm.Skewness1 = newT(), newT(), newT()
	for idx := 2; idx <= maxK; idx++ {
		mm.Extras = append(mm.Extras, ComponentTables{
			Index: idx, Weight: newT(), MeanShift: newT(), StdDev: newT(), Skewness: newT(),
		})
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m := models[i][j]
			if err := m.Validate(); err != nil {
				return nil, fmt.Errorf("liberty: model at (%d,%d): %w", i, j, err)
			}
			nom := nominal[i][j]
			mm.MeanShift1.Set(i, j, m.Theta1.Mean-nom)
			mm.StdDev1.Set(i, j, m.Theta1.Sigma)
			mm.Skewness1.Set(i, j, m.Theta1.Skew)
			for c, ct := range mm.Extras {
				if c < len(m.Weights) {
					ct.Weight.Set(i, j, m.Weights[c])
					ct.MeanShift.Set(i, j, m.Thetas[c].Mean-nom)
					ct.StdDev.Set(i, j, m.Thetas[c].Sigma)
					ct.Skewness.Set(i, j, m.Thetas[c].Skew)
				}
			}
		}
	}
	return mm, nil
}

// AppendTo emits the generalised attribute set into a timing group.
func (mm *MultiTimingModel) AppendTo(timing *Group, template string) {
	mm.Nominal.AppendToGroup(timing, mm.Base, template)
	emit := func(t *Table, name string) {
		if t != nil {
			t.AppendToGroup(timing, name, template)
		}
	}
	emit(mm.MeanShift1, lvf2Attr("mean_shift", 1, mm.Base))
	emit(mm.StdDev1, lvf2Attr("std_dev", 1, mm.Base))
	emit(mm.Skewness1, lvf2Attr("skewness", 1, mm.Base))
	for _, ct := range mm.Extras {
		emit(ct.Weight, lvf2Attr("weight", ct.Index, mm.Base))
		emit(ct.MeanShift, lvf2Attr("mean_shift", ct.Index, mm.Base))
		emit(ct.StdDev, lvf2Attr("std_dev", ct.Index, mm.Base))
		emit(ct.Skewness, lvf2Attr("skewness", ct.Index, mm.Base))
	}
}
