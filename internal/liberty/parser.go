package liberty

import (
	"fmt"
	"io"
	"os"
)

// Parse reads Liberty text and returns the top-level group (usually
// `library`).
func Parse(src string) (*Group, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, perr(p.tok, "trailing content after top-level group: %s", p.tok)
	}
	return g, nil
}

// ParseReader parses Liberty text from r.
func ParseReader(r io.Reader) (*Group, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("liberty: read: %w", err)
	}
	return Parse(string(b))
}

// ParseFile parses a .lib file from disk.
func ParseFile(path string) (*Group, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("liberty: %w", err)
	}
	return Parse(string(b))
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.tok.kind != k {
		return token{}, perr(p.tok, "expected %s, got %s", what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

// parseGroup parses `name ( args ) { body }` with the name token current.
func (p *parser) parseGroup() (*Group, error) {
	name, err := p.expect(tIdent, "group name")
	if err != nil {
		return nil, err
	}
	args, _, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return nil, err
	}
	g := &Group{Name: name.text, Args: args}
	for p.tok.kind != tRBrace {
		if p.tok.kind == tEOF {
			return nil, perr(p.tok, "unexpected EOF in group %q opened at line %d: missing '}'", g.Name, name.line)
		}
		if err := p.parseStatement(g); err != nil {
			return nil, err
		}
	}
	return g, p.advance() // consume '}'
}

// parseArgs parses `( a, b, ... )`, allowing empty parens. quoted reports
// whether any argument was a quoted string, so emission can preserve the
// original quoting style (essential for `values` rows).
func (p *parser) parseArgs() (args []string, quoted bool, err error) {
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, false, err
	}
	for p.tok.kind != tRParen {
		switch p.tok.kind {
		case tIdent, tString:
			if p.tok.kind == tString {
				quoted = true
			}
			args = append(args, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, false, err
			}
		case tComma:
			if err := p.advance(); err != nil {
				return nil, false, err
			}
		default:
			return nil, false, perr(p.tok, "unexpected %s in argument list", p.tok)
		}
	}
	return args, quoted, p.advance() // consume ')'
}

// parseStatement parses one body statement into g: a simple attribute, a
// complex attribute, or a nested group.
func (p *parser) parseStatement(g *Group) error {
	name, err := p.expect(tIdent, "attribute or group name")
	if err != nil {
		return err
	}
	switch p.tok.kind {
	case tColon:
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tIdent && p.tok.kind != tString {
			return perr(p.tok, "expected value after %q:, got %s", name.text, p.tok)
		}
		g.Attrs = append(g.Attrs, Attr{
			Name: name.text, Simple: true,
			Value: p.tok.text, Quoted: p.tok.kind == tString,
		})
		if err := p.advance(); err != nil {
			return err
		}
		// Trailing semicolon is formally required; tolerate its absence
		// before '}' as many generators do.
		if p.tok.kind == tSemi {
			return p.advance()
		}
		return nil
	case tLParen:
		args, quoted, err := p.parseArgs()
		if err != nil {
			return err
		}
		switch p.tok.kind {
		case tLBrace:
			// Nested group: re-parse with collected pieces.
			if err := p.advance(); err != nil {
				return err
			}
			child := &Group{Name: name.text, Args: args}
			for p.tok.kind != tRBrace {
				if p.tok.kind == tEOF {
					return perr(p.tok, "unexpected EOF in group %q opened at line %d: missing '}'", child.Name, name.line)
				}
				if err := p.parseStatement(child); err != nil {
					return err
				}
			}
			if err := p.advance(); err != nil {
				return err
			}
			g.Groups = append(g.Groups, child)
			return nil
		case tSemi:
			g.Attrs = append(g.Attrs, Attr{Name: name.text, Values: args, QuoteAll: quoted})
			return p.advance()
		default:
			// Complex attribute without the formally required semicolon.
			g.Attrs = append(g.Attrs, Attr{Name: name.text, Values: args, QuoteAll: quoted})
			return nil
		}
	default:
		return perr(p.tok, "expected ':' or '(' after %q, got %s", name.text, p.tok)
	}
}
