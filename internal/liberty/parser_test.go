package liberty

import (
	"errors"
	"strings"
	"testing"
)

const tinyLib = `
/* comment */
library (demo) {
  delay_model : table_lookup;
  time_unit : "1ns";
  // line comment
  lu_table_template (tpl2x2) {
    variable_1 : input_net_transition;
    variable_2 : total_output_net_capacitance;
    index_1 ("0.01, 0.1");
    index_2 ("0.002, 0.02");
  }
  cell (INV) {
    area : 1.2;
    pin (A) { direction : input; capacitance : 0.0009; }
    pin (ZN) {
      direction : output;
      function : "!A";
      timing () {
        related_pin : "A";
        timing_sense : negative_unate;
        cell_rise (tpl2x2) {
          index_1 ("0.01, 0.1");
          index_2 ("0.002, 0.02");
          values ("0.10, 0.20", \
                  "0.15, 0.30");
        }
      }
    }
  }
}
`

func TestParseTinyLibrary(t *testing.T) {
	lib, err := Parse(tinyLib)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Name != "library" || len(lib.Args) != 1 || lib.Args[0] != "demo" {
		t.Fatalf("library header: %s %v", lib.Name, lib.Args)
	}
	if got := lib.SimpleValue("delay_model"); got != "table_lookup" {
		t.Errorf("delay_model = %q", got)
	}
	if got := lib.SimpleValue("time_unit"); got != "1ns" {
		t.Errorf("time_unit = %q", got)
	}
	cell, ok := lib.Group("cell")
	if !ok || cell.Args[0] != "INV" {
		t.Fatal("cell INV missing")
	}
	pins := cell.GroupsNamed("pin")
	if len(pins) != 2 {
		t.Fatalf("want 2 pins, got %d", len(pins))
	}
	out := pins[1]
	timing, ok := out.Group("timing")
	if !ok {
		t.Fatal("timing group missing")
	}
	if got := timing.SimpleValue("related_pin"); got != "A" {
		t.Errorf("related_pin %q", got)
	}
	cr, ok := timing.Group("cell_rise")
	if !ok {
		t.Fatal("cell_rise missing")
	}
	tab, err := TableFromGroup(cr)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 || tab.Cols() != 2 {
		t.Fatalf("table %dx%d", tab.Rows(), tab.Cols())
	}
	if tab.At(1, 1) != 0.30 {
		t.Errorf("values[1][1] = %v", tab.At(1, 1))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unterminated group", `library (x) { cell (y) { }`},
		{"missing value", `library (x) { foo : ; }`},
		{"garbage", `library (x) { @@@ }`},
		{"unterminated string", `library (x) { a : "bc }`},
		{"unterminated comment", `library (x) { /* }`},
		{"trailing content", "library (x) { }\ncell (y) { }"},
		{"bad arg list", `library (x) { t ( { ) ; }`},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected parse error", c.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error is %T, want *ParseError: %v", c.name, err, err)
		}
	}
}

// TestParseErrorPosition pins the typed positional error contract:
// unterminated groups report where the input ended AND which group (by
// its opening line) is missing its brace.
func TestParseErrorPosition(t *testing.T) {
	t.Run("unterminated nested group", func(t *testing.T) {
		src := "library (x) {\n  cell (y) {\n    area : 1;\n" // EOF inside cell
		_, err := Parse(src)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("error is %T, want *ParseError: %v", err, err)
		}
		if pe.Line != 4 || pe.Col != 1 {
			t.Errorf("position = line %d col %d, want line 4 col 1 (end of input)", pe.Line, pe.Col)
		}
		if !strings.Contains(pe.Msg, `"cell"`) || !strings.Contains(pe.Msg, "line 2") {
			t.Errorf("message %q should name group cell opened at line 2", pe.Msg)
		}
		if !strings.Contains(err.Error(), "line 4, col 1") {
			t.Errorf("Error() = %q lacks the position prefix", err)
		}
	})
	t.Run("unterminated top-level group", func(t *testing.T) {
		_, err := Parse("library (x) {\n  area : 1;")
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("error is %T, want *ParseError: %v", err, err)
		}
		if pe.Line != 2 {
			t.Errorf("line = %d, want 2", pe.Line)
		}
		if !strings.Contains(pe.Msg, `"library"`) || !strings.Contains(pe.Msg, "line 1") {
			t.Errorf("message %q should name group library opened at line 1", pe.Msg)
		}
	})
	t.Run("column points at offending token", func(t *testing.T) {
		// `foo :` is missing its value; the ';' on line 2 sits at column 9.
		_, err := Parse("library (x) {\n  foo : ; }")
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("error is %T, want *ParseError: %v", err, err)
		}
		if pe.Line != 2 || pe.Col != 9 {
			t.Errorf("position = line %d col %d, want line 2 col 9 (the ';')", pe.Line, pe.Col)
		}
	})
}

func TestParseToleratesMissingSemis(t *testing.T) {
	src := `library (x) { a : 1
  t (b) }`
	g, err := Parse(src)
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if g.SimpleValue("a") != "1" {
		t.Error("attr a lost")
	}
	if a, ok := g.Attr("t"); !ok || len(a.Values) != 1 || a.Values[0] != "b" {
		t.Error("complex attr t lost")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	lib, err := Parse(tinyLib)
	if err != nil {
		t.Fatal(err)
	}
	text := lib.String()
	again, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of emitted text failed: %v\n%s", err, text)
	}
	if again.String() != text {
		t.Error("serialisation is not a fixed point after one round trip")
	}
}

func TestParseReaderAndFile(t *testing.T) {
	if _, err := ParseReader(strings.NewReader(tinyLib)); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile("/nonexistent/file.lib"); err == nil {
		t.Error("missing file must error")
	}
}

func TestTableValidation(t *testing.T) {
	// Ragged rows rejected.
	src := `timing () { cell_rise (tpl) { values ("1, 2", "3"); } }`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cr, _ := g.Group("cell_rise")
	if _, err := TableFromGroup(cr); err == nil {
		t.Error("ragged table accepted")
	}
	// Missing values attribute rejected.
	src2 := `timing () { cell_rise (tpl) { index_1 ("1"); } }`
	g2, _ := Parse(src2)
	cr2, _ := g2.Group("cell_rise")
	if _, err := TableFromGroup(cr2); err == nil {
		t.Error("missing values accepted")
	}
	// Flat single-row values reshaped by index lengths.
	src3 := `timing () { cell_rise (tpl) {
	    index_1 ("1, 2");
	    index_2 ("10, 20, 30");
	    values ("1, 2, 3, 4, 5, 6");
	} }`
	g3, _ := Parse(src3)
	cr3, _ := g3.Group("cell_rise")
	tab, err := TableFromGroup(cr3)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 || tab.Cols() != 3 || tab.At(1, 0) != 4 {
		t.Errorf("reshape failed: %+v", tab)
	}
	// Index/shape mismatch rejected.
	src4 := `timing () { cell_rise (tpl) {
	    index_1 ("1, 2, 3");
	    values ("1, 2", "3, 4");
	} }`
	g4, _ := Parse(src4)
	cr4, _ := g4.Group("cell_rise")
	if _, err := TableFromGroup(cr4); err == nil {
		t.Error("index_1 mismatch accepted")
	}
}

func TestParseFloatListErrors(t *testing.T) {
	if _, err := parseFloatList("1, banana, 3"); err == nil {
		t.Error("bad number accepted")
	}
	vs, err := parseFloatList(" 1,2  3\n4 \\ 5")
	if err != nil || len(vs) != 5 {
		t.Errorf("mixed separators: %v %v", vs, err)
	}
}

// Real libraries carry constructs this project does not model (define,
// operating_conditions, bus groups); the parser must pass them through
// structurally.
func TestParseForeignConstructs(t *testing.T) {
	src := `library (big) {
	  define (my_attr, cell, string);
	  operating_conditions (slow) { process : 1; temperature : 125; voltage : 0.72; }
	  wire_load ("small") { resistance : 0.001; slope : 1.2; }
	  cell (RAM) {
	    my_attr : "hello";
	    bus (D) {
	      bus_type : bus8;
	      pin (D[0]) { direction : input; }
	    }
	  }
	}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := g.Attr("define"); !ok || len(a.Values) != 3 {
		t.Errorf("define lost: %+v", a)
	}
	oc, ok := g.Group("operating_conditions")
	if !ok || oc.SimpleValue("temperature") != "125" {
		t.Error("operating_conditions lost")
	}
	cell, _ := g.Group("cell")
	if cell.SimpleValue("my_attr") != "hello" {
		t.Error("custom attribute lost")
	}
	bus, ok := cell.Group("bus")
	if !ok {
		t.Fatal("bus group lost")
	}
	if _, ok := bus.Group("pin"); !ok {
		t.Error("bus pin lost")
	}
	// Round trip.
	if _, err := Parse(g.String()); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}
