// Package liberty implements a Liberty (.lib) file parser and writer with
// support for the classic LVF on-chip-variation attributes and the seven
// new LVF² attributes of the paper's §3.3. The subset implemented is the
// structural core of the format — groups, simple and complex attributes,
// lookup tables — which is everything statistical timing needs.
package liberty

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tEOF tokenKind = iota
	tIdent
	tString
	tLParen
	tRParen
	tLBrace
	tRBrace
	tColon
	tSemi
	tComma
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int // 1-based column of the token's first character
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "EOF"
	case tString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // pos of the first byte of the current line
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// col returns the 1-based column of the current position.
func (l *lexer) col() int {
	return l.pos - l.lineStart + 1
}

func (l *lexer) errorf(format string, args ...any) error {
	return perrAt(l.line, l.col(), format, args...)
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
			l.lineStart = l.pos
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '\\' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == '\n' || l.src[l.pos+1] == '\r'):
			// Line continuation.
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			if err := l.skipBlockComment(); err != nil {
				return token{}, err
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLineComment()
		default:
			goto tokenStart
		}
	}
	return token{kind: tEOF, line: l.line, col: l.col()}, nil

tokenStart:
	start := l.line
	startCol := l.col()
	switch c := l.src[l.pos]; c {
	case '(':
		l.pos++
		return token{tLParen, "(", start, startCol}, nil
	case ')':
		l.pos++
		return token{tRParen, ")", start, startCol}, nil
	case '{':
		l.pos++
		return token{tLBrace, "{", start, startCol}, nil
	case '}':
		l.pos++
		return token{tRBrace, "}", start, startCol}, nil
	case ':':
		l.pos++
		return token{tColon, ":", start, startCol}, nil
	case ';':
		l.pos++
		return token{tSemi, ";", start, startCol}, nil
	case ',':
		l.pos++
		return token{tComma, ",", start, startCol}, nil
	case '"':
		return l.lexString()
	default:
		if isIdentChar(rune(c)) {
			return l.lexIdent()
		}
		return token{}, l.errorf("unexpected character %q", c)
	}
}

func (l *lexer) skipBlockComment() error {
	l.pos += 2
	for l.pos+1 < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
			l.lineStart = l.pos + 1
		}
		if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
			l.pos += 2
			return nil
		}
		l.pos++
	}
	return l.errorf("unterminated block comment")
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.line
	startCol := l.col()
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{tString, b.String(), start, startCol}, nil
		case '\\':
			// Escaped newline inside a string (common in `values` rows):
			// swallow the backslash and the newline.
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '\n' || l.src[l.pos+1] == '\r') {
				l.pos += 2
				l.line++
				l.lineStart = l.pos
				continue
			}
			b.WriteByte(c)
			l.pos++
		case '\n':
			l.line++
			b.WriteByte(c)
			l.pos++
			l.lineStart = l.pos
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errorf("unterminated string")
}

// isIdentChar accepts Liberty bare-word characters: identifiers, numbers
// (with exponent and sign), units and dotted names.
func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		strings.ContainsRune("_.+-*!&|'[]<>=%$", r)
}

func (l *lexer) lexIdent() (token, error) {
	start := l.line
	startCol := l.col()
	begin := l.pos
	for l.pos < len(l.src) && isIdentChar(rune(l.src[l.pos])) {
		l.pos++
	}
	return token{tIdent, l.src[begin:l.pos], start, startCol}, nil
}
