package liberty

import (
	"strings"
	"testing"

	"lvf2/internal/core"
)

// Fuzzing the lexer/parser: the characterisation pipeline feeds generated
// Liberty text straight back into Parse (round trips, linting, extraction),
// so the parser must never panic on any input and the writer's output must
// be a parser fixed point.

// fuzzSeedLibrary builds a representative library through the writer —
// header, template, cell, timing group, LVF² tables and a fallback note —
// so the fuzzer starts from realistic generated text.
func fuzzSeedLibrary() string {
	lib := NewLibrary(LibraryHeaderOptions{
		Name: "seed", Voltage: 0.8, TempC: 25, ProcessName: "synthetic22",
	}, "tpl_2x2", []float64{0.01, 0.02}, []float64{0.001, 0.002})
	out := AddCell(lib, "INV", []string{"A"}, 0.0009, "ZN", "!A")
	timing := AddTiming(out, "A", "positive_unate")
	models := [][]core.Model{
		{
			{Lambda: 0.3,
				Theta1: core.Theta{Mean: 0.10, Sigma: 0.005, Skew: 0.2},
				Theta2: core.Theta{Mean: 0.13, Sigma: 0.004, Skew: -0.1}},
			core.FromLVF(core.Theta{Mean: 0.11, Sigma: 0.004, Skew: 0.1}),
		},
		{
			core.FromLVF(core.Theta{Mean: 0.12, Sigma: 0.006}),
			core.FromLVF(core.Theta{Mean: 0.14, Sigma: 0.005, Skew: 0.3}),
		},
	}
	tm := TimingModelFromFits("cell_rise",
		[]float64{0.01, 0.02}, []float64{0.001, 0.002},
		[][]float64{{0.10, 0.11}, {0.12, 0.14}}, models)
	tm.FallbackNote = "INV/arc00 (0,1): LVF2→Norm2 (2 failed attempts)"
	tm.AppendTo(timing, "tpl_2x2", true)
	return lib.String()
}

func fuzzSeeds() []string {
	return []string{
		fuzzSeedLibrary(),
		`library (x) { cell (C) { pin (P) { direction : input; } } }`,
		"library(a){t:1;}",
		"/* c */ library (x) { values (\"1, 2\", \\\n\"3, 4\"); }",
		`library (x) { q : "a b"; n : 1.5e-3; idx (1, 2, 3); }`,
		`library (x) { // line comment
		}`,
		"library (é) { note : \"→\"; }",
		`library () { }`,
		`library (x) { g (a b) { } }`,
		`library (x) { broken`,
		`not liberty at all`,
		``,
	}
}

// FuzzParse asserts Parse never panics, and that everything downstream of
// a successful parse (serialisation, linting) is panic-free too.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		_ = g.String()
		_ = Lint(g)
	})
}

// FuzzRoundTrip asserts write→parse→write stability. The first write may
// normalise lossy constructs (e.g. an unquoted group argument containing
// spaces is split into two arguments), so the fixed point is checked from
// the second serialisation onwards.
func FuzzRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		out1 := g.String()
		g2, err := Parse(out1)
		if err != nil {
			t.Fatalf("writer output must reparse: %v\n%s", err, out1)
		}
		out2 := g2.String()
		g3, err := Parse(out2)
		if err != nil {
			t.Fatalf("second-generation output must reparse: %v\n%s", err, out2)
		}
		if out3 := g3.String(); out3 != out2 {
			t.Errorf("write→parse→write not stable:\n--- out2:\n%s\n--- out3:\n%s", out2, out3)
		}
	})
}

// The fuzz targets double as regular tests over the seed corpus; this one
// additionally pins the FallbackNote round trip through real writer output.
func TestSeedLibraryRoundTripsFallbackNote(t *testing.T) {
	src := fuzzSeedLibrary()
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if issues := Lint(g); HasErrors(issues) {
		t.Fatalf("seed library must lint clean: %v", issues)
	}
	cell, _ := g.Group("cell")
	var pin *Group
	for _, p := range cell.GroupsNamed("pin") {
		if p.SimpleValue("direction") == "output" {
			pin = p
		}
	}
	if pin == nil {
		t.Fatal("no output pin")
	}
	timing, _ := pin.Group("timing")
	tm, err := ExtractTimingModel(timing, "cell_rise")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tm.FallbackNote, "LVF2→Norm2") {
		t.Errorf("FallbackNote lost in round trip: %q", tm.FallbackNote)
	}
}
