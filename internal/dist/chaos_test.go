package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lvf2/internal/checkpoint"
	"lvf2/internal/faultinject"
	"lvf2/internal/mc"
)

// Distributed chaos harness. Each seed expands deterministically into a
// schedule of worker kills and coordinator crash-restarts, run over a
// fleet whose HTTP transport injects seeded network faults (requests
// erroring before delivery, responses dropped after delivery — the
// duplicate generator — corrupt and truncated bodies, stalls). The
// fleet keeps being refilled until the build drains. Invariants:
//
//   - the library assembled from the surviving journal is bit-identical
//     to a single-process build,
//   - no unit is ever journaled terminal twice (idempotent completion),
//   - the run terminates: leases expire, workers respawn, the
//     coordinator restarts from the journal alone.
//
// On failure the expanded script, the journal segments and the
// coordinator/worker logs are written under CHAOS_ARTIFACT_DIR (or the
// system temp dir) for replay with -distchaos.seed.
var (
	distChaosSeeds = flag.Int("distchaos.seeds", 2, "how many randomized kill schedules TestChaosDistributedBuild replays")
	distChaosSeed  = flag.Int64("distchaos.seed", 0, "replay only this chaos seed (0 = run -distchaos.seeds schedules)")
)

type distChaosStep struct {
	Op     string `json:"op"` // spawn, kill, coordinator-restart, done
	Worker string `json:"worker,omitempty"`
	AtMs   int64  `json:"at_ms,omitempty"`
	Note   string `json:"note,omitempty"`
}

type distChaosScript struct {
	Seed     uint64          `json:"seed"`
	Steps    []distChaosStep `json:"steps"`
	Injected int64           `json:"net_faults_injected"`
}

// distChaosGolden is the uninterrupted single-process reference,
// computed once per test binary (the build config is constant).
var distChaosGolden struct {
	once sync.Once
	lib  []byte
}

// syncLog is a concurrency-safe log sink preserved as a failure
// artifact.
type syncLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *syncLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *syncLog) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf.Bytes()...)
}

func TestChaosDistributedBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not -short")
	}
	seeds := make([]uint64, 0, *distChaosSeeds)
	if *distChaosSeed != 0 {
		seeds = append(seeds, uint64(*distChaosSeed))
	} else {
		for i := 0; i < *distChaosSeeds; i++ {
			seeds = append(seeds, uint64(7000+17*i))
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDistChaos(t, seed)
		})
	}
}

func runDistChaos(t *testing.T, seed uint64) {
	distChaosGolden.once.Do(func() {
		goldenFS := faultinject.NewMemFS()
		cfg := testBuild(openJournal(t, goldenFS, "golden", testBuild(nil).Fingerprint()))
		distChaosGolden.lib = singleProcessLib(t, cfg)
	})
	golden := distChaosGolden.lib

	script := &distChaosScript{Seed: seed}
	logs := &syncLog{}
	fsys := faultinject.NewMemFS()
	start := time.Now()
	var scriptMu sync.Mutex
	step := func(s distChaosStep) {
		scriptMu.Lock()
		s.AtMs = time.Since(start).Milliseconds()
		script.Steps = append(script.Steps, s)
		scriptMu.Unlock()
	}
	defer func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("CHAOS_ARTIFACT_DIR")
		if dir == "" {
			dir = os.TempDir()
		}
		_ = os.MkdirAll(dir, 0o755)
		b, _ := json.MarshalIndent(script, "", "  ")
		path := filepath.Join(dir, fmt.Sprintf("dist-chaos-failure-seed-%d.json", seed))
		if err := os.WriteFile(path, b, 0o644); err == nil {
			t.Logf("chaos: failing script written to %s (replay with -distchaos.seed=%d)", path, seed)
		}
		logPath := filepath.Join(dir, fmt.Sprintf("dist-chaos-seed-%d.log", seed))
		if err := os.WriteFile(logPath, logs.Bytes(), 0o644); err == nil {
			t.Logf("chaos: coordinator/worker logs preserved as %s", logPath)
		}
		for _, p := range fsys.Paths() {
			seg, err := fsys.ReadFile(p)
			if err != nil {
				continue
			}
			out := filepath.Join(dir, fmt.Sprintf("dist-chaos-seed-%d-%s", seed, filepath.Base(p)))
			if err := os.WriteFile(out, seg, 0o644); err == nil {
				t.Logf("chaos: journal segment preserved as %s", out)
			}
		}
	}()

	rng := mc.NewRNG(seed)
	fp := testBuild(nil).Fingerprint()

	// The coordinator behind a swappable handler, so a "crash-restart"
	// keeps the fleet's URL stable while every piece of soft state —
	// leases, death counts, worker registry — is discarded and rebuilt
	// from the journal.
	var coordMu sync.Mutex
	var coord *Coordinator
	var journal *checkpoint.Journal
	newCoordinator := func() {
		coordMu.Lock()
		defer coordMu.Unlock()
		if journal != nil {
			journal.Close() // flush; a real crash would lose the unsealed tail instead
		}
		journal = openJournal(t, fsys, "ckpt", fp)
		cfg := testBuild(journal)
		c, err := NewCoordinator(CoordinatorConfig{
			Build:    cfg,
			LeaseTTL: 250 * time.Millisecond,
			PollWait: 10 * time.Millisecond,
			// Environmental deaths must never condemn a unit in this
			// suite: quarantine notes would (correctly) change the
			// emitted library, which is exactly what the bit-identical
			// assertion forbids for a fault-free unit.
			DeathBudget: 1 << 20,
			Log:         logs,
		})
		if err != nil {
			t.Fatalf("NewCoordinator: %v", err)
		}
		coord = c
	}
	current := func() *Coordinator {
		coordMu.Lock()
		defer coordMu.Unlock()
		return coord
	}
	newCoordinator()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current().Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	// The fleet: three slots, each slot refilled with a fresh worker
	// (new ID, new seeded fault transport) whenever its occupant exits
	// or is killed.
	faults := faultinject.NetFaults{
		PErrBefore:   0.05,
		PDropAfter:   0.05, // the duplicate-submission generator
		PCorruptBody: 0.03,
		PShortBody:   0.03,
		PStall:       0.02,
		Stall:        50 * time.Millisecond,
	}
	ctx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	const slots = 3
	type slot struct {
		cancel context.CancelFunc
		exited chan struct{}
		id     string
	}
	var (
		slotMu     sync.Mutex
		live       [slots]*slot
		gen        int
		transports []*faultinject.FaultTransport
	)
	spawn := func(i int) {
		slotMu.Lock()
		defer slotMu.Unlock()
		gen++
		id := fmt.Sprintf("w%d-g%d", i, gen)
		ft := faultinject.NewFaultTransport(nil, faults, seed^uint64(gen)*0x9e3779b97f4a7c15)
		transports = append(transports, ft)
		wctx, cancel := context.WithCancel(ctx)
		s := &slot{cancel: cancel, exited: make(chan struct{}), id: id}
		live[i] = s
		step(distChaosStep{Op: "spawn", Worker: id})
		go func() {
			defer close(s.exited)
			err := RunWorker(wctx, WorkerConfig{
				ID:      id,
				URL:     srv.URL,
				Client:  &http.Client{Transport: ft},
				Backoff: 20 * time.Millisecond,
				Log:     logs,
			})
			fmt.Fprintf(logs, "chaos: worker %s exited: %v\n", id, err)
		}()
	}
	for i := 0; i < slots; i++ {
		spawn(i)
	}

	// The chaos schedule: every 30–130ms, kill a random worker, restart
	// the coordinator, or do nothing; always refill empty slots.
	deadline := time.After(60 * time.Second)
	for !current().Done() {
		select {
		case <-deadline:
			t.Fatal("chaos: build did not drain within 60s")
		case <-time.After(time.Duration(30+rng.Uint64()%100) * time.Millisecond):
		}
		switch rng.Uint64() % 5 {
		case 0, 1: // kill a worker (no goodbye: its lease must expire)
			i := int(rng.Uint64() % slots)
			slotMu.Lock()
			s := live[i]
			slotMu.Unlock()
			if s != nil {
				step(distChaosStep{Op: "kill", Worker: s.id})
				s.cancel()
			}
		case 2: // coordinator crash-restart
			step(distChaosStep{Op: "coordinator-restart"})
			newCoordinator()
		}
		for i := 0; i < slots; i++ {
			slotMu.Lock()
			s := live[i]
			slotMu.Unlock()
			if s == nil {
				continue
			}
			select {
			case <-s.exited:
				spawn(i)
			default:
			}
		}
	}
	step(distChaosStep{Op: "done"})
	cancelAll()
	slotMu.Lock()
	for _, s := range live {
		if s != nil {
			<-s.exited
		}
	}
	for _, ft := range transports {
		script.Injected += ft.Injected()
	}
	slotMu.Unlock()

	// Final assembly from the journal alone must restore all 32 units
	// and match the single-process golden bit for bit.
	coordMu.Lock()
	journal.Close()
	journal = nil
	coordMu.Unlock()
	j := openJournal(t, fsys, "ckpt", fp)
	libBytes, stats := assembleLib(t, testBuild(j))
	j.Close()
	if stats.Restored != stats.Units || stats.Units != 32 {
		t.Errorf("assembly restored %d/%d units, want 32/32", stats.Restored, stats.Units)
	}
	if stats.Quarantined != 0 {
		t.Errorf("chaos run quarantined %d units; environmental faults must not condemn units", stats.Quarantined)
	}
	if !bytes.Equal(libBytes, golden) {
		t.Errorf("chaos library differs from single-process golden (%d vs %d bytes)", len(libBytes), len(golden))
	}
	assertOneTerminalPerKey(t, fsys, "ckpt", fp)
	t.Logf("chaos seed %d: %d schedule steps, %d net faults injected", seed, len(script.Steps), script.Injected)
}
